#!/usr/bin/env python3
"""Runs every paper-reproduction bench in parallel and aggregates their
per-bench BENCH_*.json reports into one BENCH_REPORT.json.

Each bench binary mirrors its tables to BENCH_<id>.json in its working
directory (see bench/bench_common.h); this driver gives every binary a
private scratch directory so concurrent runs cannot collide, then folds
the collected reports — plus run metadata (wall time, exit status) —
into a single document, ready for figure regeneration.

Usage:
    tools/bench_driver.py [--build-dir build] [--jobs N] [--output PATH]

The aggregate lands in <build-dir>/bench/BENCH_REPORT.json by default.
bench_micro (google-benchmark) is skipped: it has no JSON report and
measures wall-clock, which a saturated machine would distort.
"""

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SKIP = {"bench_micro"}


def discover(bench_dir: Path) -> list[Path]:
    benches = [
        path
        for path in sorted(bench_dir.glob("bench_*"))
        if path.is_file() and os.access(path, os.X_OK) and path.name not in SKIP
    ]
    if not benches:
        sys.exit(f"bench_driver: no bench binaries under {bench_dir} "
                 "(build them first: cmake --build <build-dir>)")
    return benches


def run_one(binary: Path) -> dict:
    started = time.monotonic()
    with tempfile.TemporaryDirectory(prefix=f"{binary.name}.") as scratch:
        try:
            proc = subprocess.run(
                [str(binary)],
                cwd=scratch,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            exit_code = proc.returncode
            output = proc.stdout
        except OSError as err:
            exit_code = -1
            output = str(err)
        reports = []
        for report_path in sorted(Path(scratch).glob("BENCH_*.json")):
            try:
                reports.append(json.loads(report_path.read_text()))
            except json.JSONDecodeError as err:
                exit_code = exit_code or 1
                output += f"\nbad JSON in {report_path.name}: {err}"
    return {
        "binary": binary.name,
        "exit_code": exit_code,
        "seconds": round(time.monotonic() - started, 3),
        "reports": reports,
        # stdout is mostly the rendered tables (already in the JSON);
        # keep a tail for diagnosing failures without bloating the file.
        "output_tail": output.splitlines()[-20:] if exit_code != 0 else [],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build", type=Path)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--output", type=Path, default=None,
                        help="default: <build-dir>/bench/BENCH_REPORT.json")
    args = parser.parse_args()

    bench_dir = args.build_dir / "bench"
    benches = discover(bench_dir)
    output = args.output or bench_dir / "BENCH_REPORT.json"

    print(f"bench_driver: {len(benches)} benches, {args.jobs} in parallel")
    started = time.monotonic()
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        results = list(pool.map(run_one, benches))
    elapsed = time.monotonic() - started

    failed = [r["binary"] for r in results if r["exit_code"] != 0]
    report = {
        "total_seconds": round(elapsed, 3),
        "bench_count": len(results),
        "failed": failed,
        "benches": results,
    }
    output.write_text(json.dumps(report, indent=1) + "\n")

    for r in results:
        status = "ok" if r["exit_code"] == 0 else f"FAILED ({r['exit_code']})"
        print(f"  {r['binary']:<32} {r['seconds']:>8.1f}s  {status}")
    print(f"bench_driver: wrote {output} in {elapsed:.1f}s")
    if failed:
        print(f"bench_driver: {len(failed)} bench(es) failed: "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
