#!/usr/bin/env python3
"""Runs every paper-reproduction bench in parallel and aggregates their
per-bench BENCH_*.json reports into one BENCH_REPORT.json.

Each bench binary mirrors its tables — and its free-form commentary
(the "Paper: ..." comparison footers and expected-shape notes, recorded
by bench::comment into the report's "comments" array) — to
BENCH_<id>.json in its working directory (see bench/bench_common.h);
this driver gives every binary a private scratch directory so
concurrent runs cannot collide, then folds the collected reports — plus
run metadata (wall time, exit status, worker-thread count, host core
count) — into a single document, ready for figure regeneration. The aggregate is self-describing: tables,
paper comparisons and commentary all ride in the JSON, so nothing of
the bench output lives only on stdout.

Usage:
    tools/bench_driver.py [--build-dir build] [--jobs N] [--output PATH]
                          [--baseline PATH] [--update-baseline PATH]
                          [--threshold PCT] [--allow-removed NAME ...]

The aggregate lands in <build-dir>/bench/BENCH_REPORT.json by default.
bench_micro (google-benchmark) is skipped: it has no JSON report and
measures wall-clock, which a saturated machine would distort.

With --baseline, every numeric table cell (leading number of each cell,
so "0.275 Mbps" and "10.9%" count) except machine-dependent wall-clock
columns is compared against the checked-in baseline, and the run fails
when any metric shifts by more than --threshold percent (default 15) in
either direction. The simulations are seeded and deterministic, so on
identical code the comparison is exact; any larger shift is a behaviour
change — either a regression to fix or an intentional improvement, in
which case --update-baseline regenerates the baseline file from the run
just made (commit it and say so in the PR).
"""

import argparse
import concurrent.futures
import functools
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

SKIP = {"bench_micro"}

# Columns whose values depend on the host machine rather than on the
# (deterministic) simulation — the only cells not worth pinning. Wall
# clock and peak RSS both vary with the host (RSS with allocator, page
# size and whatever ran earlier in the process).
EXCLUDE_HEADER = re.compile(r"wall|rss", re.IGNORECASE)

# Leading number of a cell: "0.275 Mbps" -> 0.275, "10.9%" -> 10.9,
# "chain-8" / "DBA" -> no match (labels are not metrics).
NUMBER_RE = re.compile(r"^-?\d+(?:\.\d+)?")


def cell_value(cell: str) -> float | None:
    match = NUMBER_RE.match(cell.strip())
    return float(match.group(0)) if match else None


def extract_metrics(results: list[dict]) -> dict[str, float]:
    """Flattens every guarded numeric cell out of the table reports.

    Key shape: "<bench id>/t<table#>/<row label>/c<col#>:<column header>";
    the row label is the row's first cell (the sweep variable), which the
    benches keep unique within a table, and the column index disambiguates
    tables that reuse a header (e.g. two "gain" columns).
    """
    metrics: dict[str, float] = {}
    for result in results:
        for report in result.get("reports", []):
            bench_id = report.get("bench", result["binary"])
            for ti, table in enumerate(report.get("tables", [])):
                headers = table.get("headers", [])
                for row in table.get("rows", []):
                    label = row[0] if row else ""
                    # Column 0 is the row label itself, not a result.
                    for ci, (header, cell) in enumerate(
                            zip(headers[1:], row[1:]), start=1):
                        if EXCLUDE_HEADER.search(header):
                            continue
                        value = cell_value(cell)
                        if value is None:
                            continue
                        key = f"{bench_id}/t{ti}/{label}/c{ci}:{header}"
                        if key in metrics:
                            # Silently overwriting would shrink baseline
                            # coverage; make the bench fix its row labels.
                            sys.exit(f"bench_driver: duplicate metric key "
                                     f"{key!r} — rows of one table need "
                                     "unique first cells")
                        metrics[key] = value
    return metrics


def check_baseline(metrics: dict[str, float], baseline: dict,
                   threshold_pct: float,
                   allow_removed: list[str] | None = None) -> list[str]:
    """Returns a list of failure messages (empty = within budget).

    A baseline metric with no counterpart in the run is normally a hard
    failure (a silently vanished metric would shrink coverage forever);
    names in `allow_removed` — exact metric keys or prefixes, as printed
    in the failure message — downgrade that to an audited notice for the
    run where a bench intentionally dropped or renamed a table.
    """
    reference: dict[str, float] = baseline["metrics"]
    allowed = tuple(allow_removed or [])
    failures = []
    for key, old in reference.items():
        new = metrics.get(key)
        if new is None:
            if allowed and (key in allowed or key.startswith(allowed)):
                print(f"bench_driver: allowed removed metric "
                      f"(was {old:g}): {key}")
                continue
            failures.append(f"missing metric (was {old:g}): {key}")
            continue
        if old == 0.0:
            if new != 0.0:
                failures.append(f"changed from 0: {key} -> {new:g}")
            continue
        shift_pct = abs(new - old) / abs(old) * 100.0
        if shift_pct > threshold_pct:
            failures.append(
                f"shifted {shift_pct:.1f}% (> {threshold_pct:g}%): {key} "
                f"{old:g} -> {new:g}")
    new_keys = sorted(set(metrics) - set(reference))
    if new_keys:
        print(f"bench_driver: {len(new_keys)} metric(s) not in baseline "
              "(new benches?); run --update-baseline to adopt them")
    return failures


def discover(bench_dir: Path) -> list[Path]:
    # Resolved to absolute paths: each bench runs with cwd set to a
    # scratch directory, where a relative --build-dir would not resolve.
    benches = [
        path.resolve()
        for path in sorted(bench_dir.glob("bench_*"))
        if path.is_file() and os.access(path, os.X_OK) and path.name not in SKIP
    ]
    if not benches:
        sys.exit(f"bench_driver: no bench binaries under {bench_dir} "
                 "(build them first: cmake --build <build-dir>)")
    return benches


def source_tree_hash(repo_root: Path) -> str:
    """Content fingerprint of the C++ sources under src/ and bench/ —
    everything that can change a simulation's outcome. Keys the
    persistent sweep-cache directory, so a code change starts from an
    empty cache and stale results can never leak into a regenerated
    figure. Only .cc/.h files count: hashing data files too would let
    `bench_baseline` rewriting bench/baseline.json invalidate the cache
    it just warmed."""
    digest = hashlib.sha256()
    for top in ("src", "bench"):
        base = repo_root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.is_file() and path.suffix in (".cc", ".h"):
                digest.update(str(path.relative_to(repo_root)).encode())
                digest.update(b"\0")
                digest.update(path.read_bytes())
                digest.update(b"\0")
    return digest.hexdigest()[:16]


def prepare_sweep_cache_dir(build_dir: Path, repo_root: Path) -> Path:
    """Creates <build>/bench/sweep_cache/<tree-hash> and prunes sibling
    directories keyed on older trees (their results are dead weight)."""
    cache_root = build_dir / "bench" / "sweep_cache"
    cache_dir = cache_root / source_tree_hash(repo_root)
    if cache_root.is_dir():
        for old in cache_root.iterdir():
            if old != cache_dir:
                shutil.rmtree(old, ignore_errors=True)
    cache_dir.mkdir(parents=True, exist_ok=True)
    return cache_dir


def run_one(binary: Path, env: dict[str, str]) -> dict:
    started = time.monotonic()
    with tempfile.TemporaryDirectory(prefix=f"{binary.name}.") as scratch:
        try:
            proc = subprocess.run(
                [str(binary)],
                cwd=scratch,
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            exit_code = proc.returncode
            output = proc.stdout
        except OSError as err:
            exit_code = -1
            output = str(err)
        reports = []
        for report_path in sorted(Path(scratch).glob("BENCH_*.json")):
            try:
                reports.append(json.loads(report_path.read_text()))
            except json.JSONDecodeError as err:
                exit_code = exit_code or 1
                output += f"\nbad JSON in {report_path.name}: {err}"
    return {
        "binary": binary.name,
        "exit_code": exit_code,
        "seconds": round(time.monotonic() - started, 3),
        # Worker threads the bench's parallel sections used (recorded by
        # bench::record_threads; 1 = serial). Wall columns are already
        # excluded from baseline diffs, but a human comparing reports
        # across machines needs to know which walls were parallel.
        "threads": max((r.get("threads", 1) for r in reports), default=1),
        "reports": reports,
        # stdout is the rendered tables and commentary (both already in
        # the JSON report); keep a tail for diagnosing failures without
        # bloating the file.
        "output_tail": output.splitlines()[-20:] if exit_code != 0 else [],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build", type=Path)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--output", type=Path, default=None,
                        help="default: <build-dir>/bench/BENCH_REPORT.json")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="compare throughput metrics against this "
                             "baseline JSON and fail on regression")
    parser.add_argument("--update-baseline", type=Path, default=None,
                        help="write the extracted metrics as a new baseline")
    parser.add_argument("--threshold", type=float, default=None,
                        help="max allowed metric shift in either direction, "
                             "percent (default: the baseline's recorded "
                             "threshold_pct, else 15)")
    parser.add_argument("--allow-removed", action="append", default=[],
                        metavar="NAME",
                        help="baseline metric key (or key prefix) that may "
                             "be absent from this run without failing the "
                             "gate; repeatable. For intentionally dropped "
                             "or renamed tables — follow up with "
                             "--update-baseline and commit it.")
    args = parser.parse_args()

    bench_dir = args.build_dir / "bench"
    benches = discover(bench_dir)
    output = args.output or bench_dir / "BENCH_REPORT.json"

    # Sweep-capable benches persist their SweepCache here, keyed on the
    # source tree, so rerunning the driver on unchanged code serves those
    # points from disk instead of re-simulating. An explicit
    # HYDRA_SWEEP_CACHE_DIR in the environment wins (set it to "" to
    # disable persistence for a timing run).
    env = dict(os.environ)
    if "HYDRA_SWEEP_CACHE_DIR" not in env:
        repo_root = Path(__file__).resolve().parent.parent
        env["HYDRA_SWEEP_CACHE_DIR"] = str(
            prepare_sweep_cache_dir(args.build_dir, repo_root))

    print(f"bench_driver: {len(benches)} benches, {args.jobs} in parallel")
    started = time.monotonic()
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        results = list(pool.map(functools.partial(run_one, env=env), benches))
    elapsed = time.monotonic() - started

    failed = [r["binary"] for r in results if r["exit_code"] != 0]
    # Fold the per-bench sweep-cache counters (bench::record_sweep_cache)
    # into one summary: how much of this run was served from the
    # persistent cache versus simulated from scratch.
    cache_totals = {"memory_hits": 0, "disk_hits": 0, "disk_stores": 0,
                    "misses": 0}
    cache_benches = 0
    for r in results:
        for rep in r["reports"]:
            counters = rep.get("sweep_cache")
            if counters:
                cache_benches += 1
                for key in cache_totals:
                    cache_totals[key] += counters.get(key, 0)
    report = {
        "total_seconds": round(elapsed, 3),
        "bench_count": len(results),
        # The host's core count: the denominator for interpreting the
        # per-bench "threads" metadata (a 4-thread bench on a 1-core
        # container cannot show a speedup).
        "host_cpus": os.cpu_count(),
        "failed": failed,
        "sweep_cache": {
            "dir": env.get("HYDRA_SWEEP_CACHE_DIR", ""),
            "benches": cache_benches,
            **cache_totals,
        },
        "benches": results,
    }
    output.write_text(json.dumps(report, indent=1) + "\n")
    if cache_benches:
        print(f"bench_driver: sweep cache served {cache_totals['disk_hits']} "
              f"point(s) from disk, simulated {cache_totals['misses']}, "
              f"stored {cache_totals['disk_stores']}")

    for r in results:
        status = "ok" if r["exit_code"] == 0 else f"FAILED ({r['exit_code']})"
        print(f"  {r['binary']:<32} {r['seconds']:>8.1f}s  {status}")
    print(f"bench_driver: wrote {output} in {elapsed:.1f}s")
    if failed:
        print(f"bench_driver: {len(failed)} bench(es) failed: "
              f"{', '.join(failed)}", file=sys.stderr)
        return 1

    metrics = extract_metrics(results)
    if args.update_baseline:
        args.update_baseline.write_text(json.dumps(
            {"threshold_pct": args.threshold if args.threshold is not None
                              else 15.0,
             "metrics": metrics},
            indent=1, sort_keys=True) + "\n")
        print(f"bench_driver: wrote baseline ({len(metrics)} metrics) "
              f"to {args.update_baseline}")
    if args.baseline:
        baseline = json.loads(args.baseline.read_text())
        threshold = (args.threshold if args.threshold is not None
                     else baseline.get("threshold_pct", 15.0))
        regressions = check_baseline(metrics, baseline, threshold,
                                     args.allow_removed)
        if regressions:
            print(f"bench_driver: {len(regressions)} metric shift(s) "
                  "vs baseline:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"bench_driver: all {len(metrics)} metrics within "
              f"{threshold:g}% of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
