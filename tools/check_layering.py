#!/usr/bin/env python3
"""Enforces the source layer DAG.

Layers, bottom to top:

    util -> sim -> proto -> phy -> core -> mac -> net -> transport
         -> stats -> topo -> app

Four rules, all fatal:

  1. No file under src/<layer>/ may #include a header from a layer above
     it (tests/, bench/ and examples/ sit on top of everything and are
     exempt).
  2. No src/<layer>/CMakeLists.txt may link a hydra::<layer> target from
     a layer above it.
  3. The retired compatibility aliases for the proto vocabulary
     (net::Packet, mac::MacAddress, phy::PhyMode, ...) must not be
     spelled anywhere — canonical proto:: names only. This covers
     tests/, bench/ and examples/ too, so the aliases cannot creep back
     through call sites.
  4. src/proto/ headers must not declare other hydra namespaces (that is
     how the aliases were implemented).

Run from anywhere: paths are resolved relative to the repo root (the
parent of this script's directory).
"""

import re
import sys
from pathlib import Path

LAYERS = [
    "util",
    "sim",
    "proto",
    "phy",
    "core",
    "mac",
    "net",
    "transport",
    "stats",
    "topo",
    "app",
]
RANK = {name: i for i, name in enumerate(LAYERS)}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)
LINK_RE = re.compile(r"hydra::(\w+)")

# The proto vocabulary that used to be re-exported under net::/mac::/phy::.
# These spellings are retired; only proto:: is canonical.
ALIAS_NAMES = {
    "net": [
        "Packet", "PacketPtr", "Ipv4Header", "TcpHeader", "TcpFlags",
        "UdpHeader", "DiscoveryHeader", "Ipv4Address", "Endpoint", "Port",
        "make_udp_packet", "make_tcp_packet", "make_flood_packet",
        "make_discovery_packet", "kProtoTcp", "kProtoUdp", "kProtoFlood",
        "kProtoDiscovery",
    ],
    "mac": [
        "MacAddress", "AggregateFrame", "ControlFrame", "FrameType",
        "MacSubframe", "subframe_wire_bytes", "encode_duration_us",
        "decode_duration_us", "kMacHeaderBytes", "kFcsBytes", "kEncapBytes",
        "kMinSubframeBytes", "kSubframeAlign", "kRtsBytes", "kCtsBytes",
        "kAckBytes", "kBlockAckBytes",
    ],
    "phy": [
        "PhyMode", "CodeRate", "Modulation", "base_mode", "hydra_modes",
        "mode_by_index", "mode_for_mbps_x100", "mode_index_of",
    ],
}
ALIAS_RE = re.compile(
    # The optional hydra:: prefix keeps fully-qualified spellings like
    # hydra::net::Packet from slipping past the lookbehind.
    r"(?<![:\w])(?:hydra::)?(?:"
    + "|".join(
        rf"{ns}::(?:{'|'.join(names)})\b" for ns, names in ALIAS_NAMES.items()
    )
    + ")"
)
# Rule 4: proto must not re-open other hydra namespaces.
PROTO_NAMESPACE_RE = re.compile(r"namespace\s+hydra::(?!proto\b)(\w+)")


def include_violations(src: Path) -> list[str]:
    problems = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        layer = path.relative_to(src).parts[0]
        if layer not in RANK:
            problems.append(f"{path}: unknown layer directory '{layer}'")
            continue
        for included in INCLUDE_RE.findall(path.read_text()):
            dep = included.split("/")[0]
            if dep not in RANK:
                continue  # system or third-party header
            if RANK[dep] > RANK[layer]:
                problems.append(
                    f"{path.relative_to(src.parent)}: includes "
                    f'"{included}" — {dep} is above {layer} in the DAG'
                )
    return problems


def link_violations(src: Path) -> list[str]:
    problems = []
    for layer in LAYERS:
        cmake = src / layer / "CMakeLists.txt"
        if not cmake.exists():
            problems.append(f"{cmake}: missing per-layer CMakeLists.txt")
            continue
        # Strip comments so prose mentioning a hydra::<layer> target does
        # not read as a link edge.
        code = "\n".join(
            line.split("#", 1)[0] for line in cmake.read_text().splitlines()
        )
        for dep in LINK_RE.findall(code):
            if dep not in RANK:
                problems.append(
                    f"{cmake.relative_to(src.parent)}: links unknown "
                    f"target hydra::{dep}"
                )
            elif RANK[dep] > RANK[layer]:
                problems.append(
                    f"{cmake.relative_to(src.parent)}: links hydra::{dep} "
                    f"— {dep} is above {layer} in the DAG"
                )
    return problems


def alias_violations(root: Path) -> list[str]:
    problems = []
    for tree in ("src", "tests", "bench", "examples"):
        base = root / tree
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                for match in ALIAS_RE.finditer(line):
                    problems.append(
                        f"{path.relative_to(root)}:{lineno}: retired alias "
                        f"spelling '{match.group(0)}' — use proto::"
                    )
    proto = root / "src" / "proto"
    for path in sorted(proto.rglob("*.h")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if match := PROTO_NAMESPACE_RE.search(line):
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: proto header opens "
                    f"namespace hydra::{match.group(1)} (alias re-export?)"
                )
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    src = root / "src"
    problems = (
        include_violations(src)
        + link_violations(src)
        + alias_violations(root)
    )
    for problem in problems:
        print(f"layering: {problem}", file=sys.stderr)
    if problems:
        print(f"layering: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print(f"layering: OK ({' -> '.join(LAYERS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
