#!/usr/bin/env python3
"""Enforces the source layer DAG.

Layers, bottom to top:

    util -> sim -> proto -> phy -> core -> mac -> net -> transport
         -> stats -> topo -> app

Two rules, both fatal:

  1. No file under src/<layer>/ may #include a header from a layer above
     it (tests/, bench/ and examples/ sit on top of everything and are
     exempt).
  2. No src/<layer>/CMakeLists.txt may link a hydra::<layer> target from
     a layer above it.

Run from anywhere: paths are resolved relative to the repo root (the
parent of this script's directory).
"""

import re
import sys
from pathlib import Path

LAYERS = [
    "util",
    "sim",
    "proto",
    "phy",
    "core",
    "mac",
    "net",
    "transport",
    "stats",
    "topo",
    "app",
]
RANK = {name: i for i, name in enumerate(LAYERS)}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)
LINK_RE = re.compile(r"hydra::(\w+)")


def include_violations(src: Path) -> list[str]:
    problems = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        layer = path.relative_to(src).parts[0]
        if layer not in RANK:
            problems.append(f"{path}: unknown layer directory '{layer}'")
            continue
        for included in INCLUDE_RE.findall(path.read_text()):
            dep = included.split("/")[0]
            if dep not in RANK:
                continue  # system or third-party header
            if RANK[dep] > RANK[layer]:
                problems.append(
                    f"{path.relative_to(src.parent)}: includes "
                    f'"{included}" — {dep} is above {layer} in the DAG'
                )
    return problems


def link_violations(src: Path) -> list[str]:
    problems = []
    for layer in LAYERS:
        cmake = src / layer / "CMakeLists.txt"
        if not cmake.exists():
            problems.append(f"{cmake}: missing per-layer CMakeLists.txt")
            continue
        # Strip comments so prose mentioning a hydra::<layer> target does
        # not read as a link edge.
        code = "\n".join(
            line.split("#", 1)[0] for line in cmake.read_text().splitlines()
        )
        for dep in LINK_RE.findall(code):
            if dep not in RANK:
                problems.append(
                    f"{cmake.relative_to(src.parent)}: links unknown "
                    f"target hydra::{dep}"
                )
            elif RANK[dep] > RANK[layer]:
                problems.append(
                    f"{cmake.relative_to(src.parent)}: links hydra::{dep} "
                    f"— {dep} is above {layer} in the DAG"
                )
    return problems


def main() -> int:
    src = Path(__file__).resolve().parent.parent / "src"
    problems = include_violations(src) + link_violations(src)
    for problem in problems:
        print(f"layering: {problem}", file=sys.stderr)
    if problems:
        print(f"layering: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print(f"layering: OK ({' -> '.join(LAYERS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
