#!/usr/bin/env python3
"""Enforces the source layer DAG.

Layers, bottom to top:

    util -> sim -> proto -> phy -> core -> mac -> net -> transport
         -> stats -> topo -> app

Four rules, all fatal:

  1. No file under src/<layer>/ may #include a header from a layer above
     it (tests/, bench/ and examples/ sit on top of everything and are
     exempt).
  2. No src/<layer>/CMakeLists.txt may link a hydra::<layer> target from
     a layer above it.
  3. The retired compatibility aliases for the proto vocabulary
     (net::Packet, mac::MacAddress, phy::PhyMode, ...) must not be
     spelled anywhere — canonical proto:: names only. This covers
     tests/, bench/ and examples/ too, so the aliases cannot creep back
     through call sites.
  4. src/proto/ headers must not declare other hydra namespaces (that is
     how the aliases were implemented).

Run from anywhere: paths are resolved relative to the repo root (the
parent of this script's directory). `--self-test` builds a throwaway
tree containing one instance of each violation kind, asserts all four
are flagged, then repairs the tree and asserts it comes back clean —
so a regex change that silently stops a rule from firing fails in CI
before it ships.
"""

import argparse
import re
import sys
import tempfile
from pathlib import Path

LAYERS = [
    "util",
    "sim",
    "proto",
    "phy",
    "core",
    "mac",
    "net",
    "transport",
    "stats",
    "topo",
    "app",
]
RANK = {name: i for i, name in enumerate(LAYERS)}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)
LINK_RE = re.compile(r"hydra::(\w+)")

# The proto vocabulary that used to be re-exported under net::/mac::/phy::.
# These spellings are retired; only proto:: is canonical.
ALIAS_NAMES = {
    "net": [
        "Packet", "PacketPtr", "Ipv4Header", "TcpHeader", "TcpFlags",
        "UdpHeader", "DiscoveryHeader", "Ipv4Address", "Endpoint", "Port",
        "make_udp_packet", "make_tcp_packet", "make_flood_packet",
        "make_discovery_packet", "kProtoTcp", "kProtoUdp", "kProtoFlood",
        "kProtoDiscovery",
    ],
    "mac": [
        "MacAddress", "AggregateFrame", "ControlFrame", "FrameType",
        "MacSubframe", "subframe_wire_bytes", "encode_duration_us",
        "decode_duration_us", "kMacHeaderBytes", "kFcsBytes", "kEncapBytes",
        "kMinSubframeBytes", "kSubframeAlign", "kRtsBytes", "kCtsBytes",
        "kAckBytes", "kBlockAckBytes",
    ],
    "phy": [
        "PhyMode", "CodeRate", "Modulation", "base_mode", "hydra_modes",
        "mode_by_index", "mode_for_mbps_x100", "mode_index_of",
    ],
}
ALIAS_RE = re.compile(
    # The optional hydra:: prefix keeps fully-qualified spellings like
    # hydra::net::Packet from slipping past the lookbehind.
    r"(?<![:\w])(?:hydra::)?(?:"
    + "|".join(
        rf"{ns}::(?:{'|'.join(names)})\b" for ns, names in ALIAS_NAMES.items()
    )
    + ")"
)
# Rule 4: proto must not re-open other hydra namespaces.
PROTO_NAMESPACE_RE = re.compile(r"namespace\s+hydra::(?!proto\b)(\w+)")


def include_violations(src: Path) -> list[str]:
    problems = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        layer = path.relative_to(src).parts[0]
        if layer not in RANK:
            problems.append(f"{path}: unknown layer directory '{layer}'")
            continue
        for included in INCLUDE_RE.findall(path.read_text()):
            dep = included.split("/")[0]
            if dep not in RANK:
                continue  # system or third-party header
            if RANK[dep] > RANK[layer]:
                problems.append(
                    f"{path.relative_to(src.parent)}: includes "
                    f'"{included}" — {dep} is above {layer} in the DAG'
                )
    return problems


def link_violations(src: Path) -> list[str]:
    problems = []
    for layer in LAYERS:
        cmake = src / layer / "CMakeLists.txt"
        if not cmake.exists():
            problems.append(f"{cmake}: missing per-layer CMakeLists.txt")
            continue
        # Strip comments so prose mentioning a hydra::<layer> target does
        # not read as a link edge.
        code = "\n".join(
            line.split("#", 1)[0] for line in cmake.read_text().splitlines()
        )
        for dep in LINK_RE.findall(code):
            if dep not in RANK:
                problems.append(
                    f"{cmake.relative_to(src.parent)}: links unknown "
                    f"target hydra::{dep}"
                )
            elif RANK[dep] > RANK[layer]:
                problems.append(
                    f"{cmake.relative_to(src.parent)}: links hydra::{dep} "
                    f"— {dep} is above {layer} in the DAG"
                )
    return problems


def alias_violations(root: Path) -> list[str]:
    problems = []
    for tree in ("src", "tests", "bench", "examples"):
        base = root / tree
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                for match in ALIAS_RE.finditer(line):
                    problems.append(
                        f"{path.relative_to(root)}:{lineno}: retired alias "
                        f"spelling '{match.group(0)}' — use proto::"
                    )
    proto = root / "src" / "proto"
    for path in sorted(proto.rglob("*.h")):
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if match := PROTO_NAMESPACE_RE.search(line):
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: proto header opens "
                    f"namespace hydra::{match.group(1)} (alias re-export?)"
                )
    return problems


def all_violations(root: Path) -> list[str]:
    src = root / "src"
    return (
        include_violations(src)
        + link_violations(src)
        + alias_violations(root)
    )


def self_test() -> int:
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        src = root / "src"
        for layer in LAYERS:
            (src / layer).mkdir(parents=True)
            (src / layer / "CMakeLists.txt").write_text(
                f"add_library(hydra_{layer} INTERFACE)\n"
            )
        tests = root / "tests"
        tests.mkdir()

        # One instance of each violation kind.
        (src / "util" / "bad.h").write_text('#include "sim/scheduler.h"\n')
        (src / "sim" / "CMakeLists.txt").write_text(
            "add_library(hydra_sim INTERFACE)\n"
            "target_link_libraries(hydra_sim INTERFACE hydra::app)\n"
        )
        (tests / "alias.cc").write_text("fixture::consume(net::Packet{});\n")
        (src / "proto" / "evil.h").write_text("namespace hydra::mac {}\n")

        problems = all_violations(root)
        checks = [
            ("upward #include", "sim is above util"),
            ("upward CMake link", "app is above sim"),
            ("retired alias spelling", "retired alias spelling 'net::Packet'"),
            ("proto namespace reopen", "namespace hydra::mac"),
        ]
        failures = [
            label
            for label, needle in checks
            if not any(needle in problem for problem in problems)
        ]
        for label in failures:
            print(
                f"layering self-test: '{label}' was not detected",
                file=sys.stderr,
            )
        if len(problems) != len(checks):
            print(
                f"layering self-test: expected exactly {len(checks)} "
                f"violations, got {len(problems)}:",
                file=sys.stderr,
            )
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            failures.append("violation count")

        # The same tree, repaired, must come back clean.
        (src / "util" / "bad.h").write_text('#include "util/task_pool.h"\n')
        (src / "sim" / "CMakeLists.txt").write_text(
            "add_library(hydra_sim INTERFACE)\n"
            "target_link_libraries(hydra_sim INTERFACE hydra::util)\n"
        )
        (tests / "alias.cc").write_text(
            "fixture::consume(proto::Packet{});\n"
        )
        (src / "proto" / "evil.h").write_text("namespace hydra::proto {}\n")
        for problem in all_violations(root):
            print(
                f"layering self-test: repaired tree still flagged: "
                f"{problem}",
                file=sys.stderr,
            )
            failures.append("repaired tree")

        if failures:
            return 1
        print(
            f"layering self-test: OK ({len(checks)}/{len(checks)} violation "
            "kinds detected, repaired tree passes)"
        )
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="assert every rule fires on a synthetic bad tree",
    )
    if parser.parse_args().self_test:
        return self_test()

    root = Path(__file__).resolve().parent.parent
    src = root / "src"
    problems = (
        include_violations(src)
        + link_violations(src)
        + alias_violations(root)
    )
    for problem in problems:
        print(f"layering: {problem}", file=sys.stderr)
    if problems:
        print(f"layering: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print(f"layering: OK ({' -> '.join(LAYERS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
