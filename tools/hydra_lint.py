#!/usr/bin/env python3
"""hydra-lint — the determinism linter.

The simulator's contract is that a (scenario, seed) pair produces
bit-identical traces and stats regardless of thread count, delivery
backend or host. That contract dies quietly: one hash-order walk or
wall-clock read in the schedule/trace/stats path and digests diverge
only on some standard library or some machine. This linter bans the
constructs that historically cause it, in src/ only (tests/, bench/
and examples/ sit outside the simulation core and may measure wall
time or iterate hash maps freely).

Rules:

  unordered-member  A named std::unordered_{map,set,multimap,multiset}
                    declaration. Hash containers are fine for O(1)
                    lookup but their iteration order is unspecified, so
                    every declaration must justify (via an allow
                    comment) that it is never iterated.
  unordered-iter    Range-for or .begin()/.cbegin()/.rbegin() over a
                    container that rule `unordered-member` saw declared
                    anywhere in the tree. Hash-order walks are how
                    nondeterminism actually leaks into event order.
  raw-rand          std::rand/std::srand/std::random_device. All
                    randomness flows through sim::Rng (seeded,
                    serialized on the shared turn); random_device is
                    nondeterministic by construction. sim/rng.* is
                    exempt — it owns the engine.
  wall-clock        std::chrono::{system,steady,high_resolution}_clock,
                    gettimeofday, clock_gettime, time(nullptr).
                    Simulation time is sim::TimePoint; host time in the
                    core makes results machine-dependent. sim/log.* is
                    exempt (diagnostic timestamps never feed state).
  thread-id         std::this_thread::get_id(). Thread identity varies
                    run to run; anything keyed or ordered by it is
                    nondeterministic under the parallel scheduler.
  ptr-order         Ordered containers keyed on pointers
                    (std::map<T*, ...>, std::set<T*>, std::less<T*>).
                    Pointer values depend on allocation order and
                    ASLR; iterating such a container is a hidden
                    address-order walk. Key on ids or attach order.
  raw-mutex         std::mutex / std::condition_variable / std::lock
                    wrappers. The concurrent core uses util::Mutex and
                    friends so clang -Wthread-safety can see every
                    acquire/release; a raw std::mutex is invisible to
                    the analysis. util/mutex.h is exempt — it is the
                    annotated wrapper.
  float-order       Reductions whose operand association the standard
                    leaves unspecified, applied to floating point.
                    std::reduce / std::transform_reduce may reassociate
                    (that is their point), and FP addition is not
                    associative, so the same data can sum to different
                    bits run to run — they are flagged always.
                    std::accumulate folds left-to-right and is flagged
                    only when its statement mentions float/double or a
                    floating literal: a float fold is one refactor away
                    from a reduce, and over any container whose order
                    is not pinned it is already nondeterministic.
                    Integer folds (e.g. summing wire bytes with a
                    std::size_t init) are associative and exact, and do
                    not fire.

Escape hatch (same line as the violation, or the line immediately
above; the reason is mandatory):

    // hydra-lint: allow(<rule>[, <rule>...]) — <why this is safe>

Self-test mode (`--self-test`) lints tests/lint_fixtures/ with the
path exemptions off and compares the findings against the fixtures'
`// hydra-lint-expect: <rule>[, <rule>...]` markers (a marker on a
comment-only line applies to the next line, otherwise to its own), so
the fixtures prove every rule still fires and the allow hatch still
suppresses.

Run from anywhere: paths resolve relative to the repo root (the parent
of this script's directory).
"""

import argparse
import re
import sys
from pathlib import Path

RULES = {
    "unordered-member": "named unordered container declaration",
    "unordered-iter": "iteration over an unordered container",
    "raw-rand": "non-seeded randomness outside sim::Rng",
    "wall-clock": "host clock read outside sim::log",
    "thread-id": "std::this_thread::get_id()",
    "ptr-order": "ordered container keyed on pointer values",
    "raw-mutex": "raw std::mutex outside util/mutex.h",
    "float-order": "order-sensitive floating-point reduction",
}

# Per-rule path exemptions, relative to the scanned tree. The exempted
# files are the sanctioned owners of the banned construct.
EXEMPT = {
    "raw-rand": {"sim/rng.h", "sim/rng.cc"},
    "wall-clock": {"sim/log.h", "sim/log.cc"},
    "raw-mutex": {"util/mutex.h"},
}

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<.*>\s*"
    r"([A-Za-z_]\w*)"
)
RAW_RAND_RE = re.compile(r"\bstd::s?rand\s*\(|\brandom_device\b")
WALL_CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\("
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"
)
THREAD_ID_RE = re.compile(r"\bthis_thread\s*::\s*get_id\b")
PTR_ORDER_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset)\s*<[^<>,]*\*"
    r"|\bstd::less\s*<[^<>]*\*\s*>"
)
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable"
    r"|condition_variable_any|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock)\b"
)
REDUCE_RE = re.compile(r"\bstd::(?:reduce|transform_reduce)\s*\(")
ACCUMULATE_RE = re.compile(r"\bstd::accumulate\s*\(")
# Floating-point hints inside an accumulate statement: a float/double
# mention, a decimal literal (1.0, 0.f) or an exponent literal (1e9).
FLOATISH_RE = re.compile(r"\b(?:float|double)\b|\d\.\d|\d\.f|\d[eE][-+]?\d")

ALLOW_RE = re.compile(
    r"hydra-lint:\s*allow\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)"
    r"\s*(?:—|--?)\s*(\S.*)"
)
ALLOW_MARKER_RE = re.compile(r"hydra-lint:\s*allow")
EXPECT_RE = re.compile(r"hydra-lint-expect:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")


def strip_line_comment(line: str) -> str:
    """Drops a trailing // comment so prose never reads as code."""
    return line.split("//", 1)[0]


def collect_unordered_names(files: list[Path]) -> set[str]:
    names = set()
    for path in files:
        for line in path.read_text().splitlines():
            code = strip_line_comment(line)
            names.update(UNORDERED_DECL_RE.findall(code))
    return names


def marker_lines(lines: list[str], regex: re.Pattern) -> dict[int, set[str]]:
    """Maps 1-based line numbers to the rule set a marker attaches to.

    A marker on a comment-only line governs the next line; a marker
    trailing code governs its own line.
    """
    attached: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = regex.search(line)
        if not match:
            continue
        rules = {r.strip() for r in match.group(1).split(",")}
        target = lineno + 1 if line.lstrip().startswith("//") else lineno
        attached.setdefault(target, set()).update(rules)
    return attached


def lint_file(
    path: Path,
    rel: str,
    unordered_names: set[str],
    exempt: bool = True,
) -> list[tuple[str, int, str, str]]:
    """Returns (rel, lineno, rule, detail) findings for one file."""
    lines = path.read_text().splitlines()
    allows = marker_lines(lines, ALLOW_RE)
    findings = []

    iter_res = []
    if unordered_names:
        alt = "|".join(sorted(map(re.escape, unordered_names)))
        iter_res = [
            re.compile(r"for\s*\([^;)]*:\s*(?:[\w.>\-]*[.\->])?(%s)\s*\)" % alt),
            re.compile(r"\b(%s)\s*\.\s*(?:c|r|cr)?begin\s*\(" % alt),
        ]

    def flag(lineno: int, rule: str, detail: str) -> None:
        if exempt and rel in EXEMPT.get(rule, ()):
            return
        if rule in allows.get(lineno, ()):
            return
        findings.append((rel, lineno, rule, detail))

    for lineno, line in enumerate(lines, start=1):
        # A malformed allow (missing rule list or the mandatory reason)
        # suppresses nothing; call it out so it cannot rot silently.
        if ALLOW_MARKER_RE.search(line) and not ALLOW_RE.search(line):
            findings.append(
                (rel, lineno, "bad-allow",
                 "malformed allow — need allow(<rule>) — <reason>")
            )
        code = strip_line_comment(line)
        for name in UNORDERED_DECL_RE.findall(code):
            flag(lineno, "unordered-member",
                 f"unordered container '{name}' — justify that it is "
                 "never iterated")
        for regex in iter_res:
            if m := regex.search(code):
                flag(lineno, "unordered-iter",
                     f"hash-order iteration over '{m.group(1)}'")
        if RAW_RAND_RE.search(code):
            flag(lineno, "raw-rand", "randomness outside sim::Rng")
        if WALL_CLOCK_RE.search(code):
            flag(lineno, "wall-clock", "host clock read in the core")
        if THREAD_ID_RE.search(code):
            flag(lineno, "thread-id", "thread identity is not stable")
        if PTR_ORDER_RE.search(code):
            flag(lineno, "ptr-order",
                 "pointer-keyed ordered container — key on ids instead")
        if RAW_MUTEX_RE.search(code):
            flag(lineno, "raw-mutex",
                 "use util::Mutex so -Wthread-safety can see the lock")
        if REDUCE_RE.search(code):
            flag(lineno, "float-order",
                 "std::reduce may reassociate operands — use an ordered "
                 "fold over a pinned range")
        if m := ACCUMULATE_RE.search(code):
            # Join the call statement across lines (balanced parens,
            # bounded) so an init value or lambda placed on a later
            # line still counts as part of this accumulate.
            span = code[m.start():]
            depth = span.count("(") - span.count(")")
            nxt = lineno  # enumerate starts at 1: lines[lineno] is next
            while depth > 0 and nxt < len(lines) and nxt < lineno + 8:
                more = strip_line_comment(lines[nxt])
                span += " " + more
                depth += more.count("(") - more.count(")")
                nxt += 1
            if FLOATISH_RE.search(span):
                flag(lineno, "float-order",
                     "floating-point accumulate — the sum is "
                     "order-sensitive; pin the range order or keep "
                     "integer units")
    return findings


def lint_tree(base: Path, exempt: bool = True) -> list[tuple[str, int, str, str]]:
    files = sorted(
        p for p in base.rglob("*") if p.suffix in (".h", ".cc")
    )
    names = collect_unordered_names(files)
    findings = []
    for path in files:
        rel = path.relative_to(base).as_posix()
        findings.extend(lint_file(path, rel, names, exempt=exempt))
    return findings


def self_test(fixtures: Path) -> int:
    if not fixtures.is_dir():
        print(f"hydra-lint: no fixture directory {fixtures}", file=sys.stderr)
        return 1
    found = {
        (rel, lineno, rule)
        for rel, lineno, rule, _ in lint_tree(fixtures, exempt=False)
    }
    expected = set()
    for path in sorted(fixtures.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(fixtures).as_posix()
        lines = path.read_text().splitlines()
        for lineno, rules in marker_lines(lines, EXPECT_RE).items():
            expected.update((rel, lineno, rule) for rule in rules)
    missing = sorted(expected - found)
    surprise = sorted(found - expected)
    for rel, lineno, rule in missing:
        print(
            f"hydra-lint self-test: {rel}:{lineno}: expected rule "
            f"'{rule}' did not fire",
            file=sys.stderr,
        )
    for rel, lineno, rule in surprise:
        print(
            f"hydra-lint self-test: {rel}:{lineno}: unexpected finding "
            f"'{rule}'",
            file=sys.stderr,
        )
    if missing or surprise:
        return 1
    n_files = sum(1 for p in fixtures.rglob("*") if p.suffix in (".h", ".cc"))
    print(
        f"hydra-lint self-test: OK ({len(expected)} expected findings "
        f"across {n_files} fixtures, no surprises)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repo root (default: the parent of tools/)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="lint tests/lint_fixtures/ against its expect markers",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root / "tests" / "lint_fixtures")

    findings = lint_tree(args.root / "src")
    for rel, lineno, rule, detail in findings:
        print(f"src/{rel}:{lineno}: [{rule}] {detail}", file=sys.stderr)
    if findings:
        print(
            f"hydra-lint: {len(findings)} finding(s) — fix, or annotate "
            "with '// hydra-lint: allow(<rule>) — <reason>'",
            file=sys.stderr,
        )
        return 1
    print(f"hydra-lint: OK ({len(RULES)} rules over src/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
