// The transport-scheme axis: which congestion control and which ACK
// policy a TcpConnection runs, plus the per-scheme knobs. Rides inside
// TcpConfig so every existing plumbing path (mux listen/connect, the
// file-transfer apps, topo::ExperimentConfig, the sweep grid) carries it
// without new parameters.
//
// The defaults reproduce the seed TCP exactly: NewReno congestion
// control and the strict immediate-ACK receiver (one ACK per data
// segment). `transport_differential_test` pins that equivalence — trace
// digests, stats tables and event counts — against a frozen copy of the
// seed implementation, so the seams provably cost nothing until a
// non-default scheme is selected.
#pragma once

#include <string>

#include "sim/time.h"

namespace hydra::transport {

// Congestion-control scheme (owns cwnd/ssthresh evolution).
enum class CcScheme {
  // Slow start, congestion avoidance, fast retransmit/recovery with
  // partial-ACK hole filling — the seed behaviour, extracted.
  kNewReno,
  // NewReno plus CERL-style loss differentiation: an RTT-threshold
  // estimate classifies each loss as channel (retransmit, no
  // multiplicative backoff) or congestion (normal NewReno reaction).
  kCerl,
};

// Receiver ACK policy (ack-now vs delay decisions + the delack timer).
enum class AckScheme {
  // One ACK per received data segment (the seed behaviour, and the 1:1
  // data/ACK pattern the paper's prototype observed).
  kImmediate,
  // Classic delayed ACKs: hold up to `max_pending_segments`, bounded by
  // a fixed delack timer.
  kDelayed,
  // Adaptive delayed ACKs (TCP-AAD style): measures the inter-segment
  // arrival gap — the MAC aggregation interval as seen at the receiver
  // — and stretches the delack deadline to just past it, so one ACK
  // covers a whole aggregate burst.
  kAdaptive,
};

inline std::string to_string(CcScheme scheme) {
  switch (scheme) {
    case CcScheme::kNewReno: return "newreno";
    case CcScheme::kCerl: return "cerl";
  }
  return "?";
}

inline std::string to_string(AckScheme scheme) {
  switch (scheme) {
    case AckScheme::kImmediate: return "ack-imm";
    case AckScheme::kDelayed: return "ack-del";
    case AckScheme::kAdaptive: return "ack-adpt";
  }
  return "?";
}

// CERL loss-differentiation knobs. The classifier keeps the minimum and
// maximum RTT samples seen so far; a loss detected while
//   srtt <= rtt_min + alpha * (rtt_max - rtt_min)
// reads as channel loss (the path shows no queue buildup, so the drop
// was corruption, not congestion). With no RTT sample yet every loss
// conservatively reads as congestion (exact NewReno behaviour).
struct CerlTuning {
  double alpha = 0.55;
};

// Delayed-ACK knobs (kDelayed and kAdaptive).
struct DelAckTuning {
  // kDelayed: the fixed delack timer. kAdaptive: the timer floor. Kept
  // well under TcpConfig::rto_min so a held ACK can never fire the
  // sender's retransmission timer.
  sim::Duration delay = sim::Duration::millis(100);
  // Ceiling for the adaptive timer.
  sim::Duration max_delay = sim::Duration::millis(200);
  // Stretch cap: in-order segments withheld before an ACK is forced.
  unsigned max_pending_segments = 2;
  // kAdaptive: delack deadline = clamp(gap_ewma * gap_multiplier,
  // delay, max_delay) — a little past the observed arrival gap, so the
  // timer only fires once a burst has actually ended.
  double gap_multiplier = 2.0;
};

struct TransportTuning {
  CcScheme cc = CcScheme::kNewReno;
  AckScheme ack = AckScheme::kImmediate;
  CerlTuning cerl;
  DelAckTuning delack;
};

// Compact axis label: "newreno+ack-imm".
inline std::string to_string(const TransportTuning& tuning) {
  return to_string(tuning.cc) + "+" + to_string(tuning.ack);
}

}  // namespace hydra::transport
