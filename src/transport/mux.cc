#include "transport/mux.h"

#include "util/assert.h"

namespace hydra::transport {

TransportMux::TransportMux(sim::Simulation& simulation,
                           proto::Ipv4Address local_ip)
    : sim_(simulation), local_ip_(local_ip) {}

UdpSocket& TransportMux::open_udp(proto::Port local_port) {
  HYDRA_ASSERT_MSG(!udp_.contains(local_port), "udp port in use");
  auto socket = std::make_unique<UdpSocket>(
      local_ip_, local_port,
      [this](proto::PacketPtr pkt) { send_packet(std::move(pkt)); });
  auto& ref = *socket;
  udp_.emplace(local_port, std::move(socket));
  return ref;
}

TcpConnection& TransportMux::create_connection(proto::Port local_port,
                                               proto::Endpoint remote,
                                               const TcpConfig& config) {
  auto conn = std::make_unique<TcpConnection>(
      sim_, config, proto::Endpoint{local_ip_, local_port}, remote,
      [this](proto::PacketPtr pkt) { send_packet(std::move(pkt)); });
  auto& ref = *conn;
  const auto [it, inserted] =
      connections_.emplace(ConnKey{local_port, remote}, std::move(conn));
  HYDRA_ASSERT_MSG(inserted, "duplicate tcp connection");
  (void)it;
  return ref;
}

TcpConnection& TransportMux::tcp_connect(proto::Endpoint remote,
                                         TcpConfig config) {
  const auto port = next_ephemeral_++;
  auto& conn = create_connection(port, remote, config);
  conn.connect();
  return conn;
}

void TransportMux::tcp_listen(proto::Port port, TcpConfig config,
                              std::function<void(TcpConnection&)> on_accept) {
  HYDRA_ASSERT_MSG(!listeners_.contains(port), "port already listening");
  listeners_.emplace(port, Listener{config, std::move(on_accept)});
}

void TransportMux::deliver(const proto::PacketPtr& packet) {
  HYDRA_ASSERT(packet != nullptr);
  if (packet->udp) {
    const auto it = udp_.find(packet->udp->dst_port);
    if (it == udp_.end()) {
      ++unmatched_;
      return;
    }
    it->second->deliver(*packet);
    return;
  }
  if (packet->tcp) {
    const auto& h = *packet->tcp;
    const ConnKey key{h.dst_port, {packet->ip.src, h.src_port}};
    if (const auto it = connections_.find(key); it != connections_.end()) {
      it->second->segment_arrived(*packet);
      return;
    }
    // New connection: a SYN for a listening port.
    if (h.flags.syn && !h.flags.ack) {
      if (const auto lit = listeners_.find(h.dst_port);
          lit != listeners_.end()) {
        auto& conn = create_connection(h.dst_port, key.remote,
                                       lit->second.config);
        conn.accept(h);
        if (lit->second.on_accept) lit->second.on_accept(conn);
        return;
      }
    }
    ++unmatched_;
    return;
  }
  ++unmatched_;
}

}  // namespace hydra::transport
