// A clean-room TCP, sufficient for the paper's workload: one-way bulk
// transfer with cumulative ACKs over a lossy multi-hop MAC.
//
// Implemented: three-way handshake, MSS-sized segmentation, cumulative
// acknowledgements, out-of-order reassembly, RTO per RFC 6298 with
// Karn's rule and exponential backoff, and FIN teardown.
//
// Congestion control and ACK policy are pluggable seams selected by
// TcpConfig::tuning (see transport/tuning.h):
//   - CongestionControl owns cwnd/ssthresh and the loss-recovery state
//     machine (default: NewReno — slow start, congestion avoidance,
//     fast retransmit/recovery with partial-ACK handling; alternative:
//     CERL-style channel-vs-congestion loss differentiation).
//   - AckPolicy decides ack-now vs delay per in-order data arrival and
//     supplies the delack deadline (default: immediate — one ACK per
//     received data segment, matching the prototype's observed 1:1
//     data/ACK pattern; alternatives: classic and adaptive delayed
//     ACKs). Out-of-order arrivals, hole fills and FINs always ACK
//     immediately, regardless of policy.
// The defaults are the seed behaviour extracted verbatim;
// transport_differential_test pins them bit-identical to a frozen copy
// of the pre-seam implementation.
//
// The payload is synthetic: send() appends a byte *count* to the stream;
// receivers observe in-order byte counts via on_data. Sequence numbers,
// segment boundaries and header fields are real and appear on the (MAC)
// wire — the MAC's ACK classifier reads them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "proto/packet.h"
#include "sim/simulation.h"
#include "sim/timer.h"
#include "transport/ack_policy.h"
#include "transport/congestion.h"
#include "transport/seq.h"
#include "transport/tuning.h"

namespace hydra::transport {

struct TcpConfig {
  std::uint32_t mss = 1357;  // the paper's segment size (§5)
  // Fixed advertised receive window.
  std::uint32_t recv_window = 16 * 1357;
  std::uint32_t initial_cwnd_segments = 2;
  sim::Duration rto_initial = sim::Duration::millis(1000);
  // Linux's 200 ms floor assumes commodity link speeds; the prototype's
  // PHY is 10x slower (a full-size data frame is ~18 ms on air and a
  // filled 16-segment window inflates the RTT to several hundred ms), so
  // the floor scales accordingly — otherwise queueing spikes fire
  // spurious retransmission timeouts.
  sim::Duration rto_min = sim::Duration::millis(400);
  sim::Duration rto_max = sim::Duration::seconds(60);
  unsigned max_retries = 12;
  // Which congestion-control / ACK-policy schemes this connection runs.
  TransportTuning tuning;
};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t bytes_acked = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dup_acks_seen = 0;
  std::uint64_t out_of_order_segments = 0;
  // ACKs the policy held back and later covered by a delack firing or a
  // forced ack-now (0 under the immediate policy).
  std::uint64_t acks_delayed = 0;
  std::uint64_t delack_fires = 0;
};

class TcpConnection {
 public:
  enum class State {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinSent,
    kClosedByPeer,
  };

  using SendPacket = std::function<void(proto::PacketPtr)>;

  TcpConnection(sim::Simulation& simulation, TcpConfig config,
                proto::Endpoint local, proto::Endpoint remote, SendPacket send);

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Active open: emit a SYN and run the handshake.
  void connect();
  // Passive open: called by the listener with the peer's SYN.
  void accept(const proto::TcpHeader& syn);

  // Appends `bytes` synthetic bytes to the outgoing stream.
  void send(std::uint64_t bytes);
  // Half-closes: a FIN follows once all queued data is acknowledged.
  void close();

  // Delivers an incoming segment addressed to this connection.
  void segment_arrived(const proto::Packet& packet);

  // --- callbacks --------------------------------------------------------
  std::function<void()> on_established;
  // In-order payload bytes became available (cumulative delta).
  std::function<void(std::uint64_t bytes)> on_data;
  // All sent data (and FIN, if closing) has been acknowledged.
  std::function<void()> on_send_complete;
  std::function<void()> on_peer_fin;

  // --- introspection -----------------------------------------------------
  State state() const { return state_; }
  std::uint32_t cwnd() const { return cc_->cwnd(); }
  std::uint32_t ssthresh() const { return cc_->ssthresh(); }
  std::uint64_t bytes_in_flight() const { return seq_diff(snd_nxt_, snd_una_); }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  const TcpStats& stats() const { return stats_; }
  proto::Endpoint local() const { return local_; }
  proto::Endpoint remote() const { return remote_; }
  sim::Duration current_rto() const { return rto_; }
  // The scheme instances behind the seams (for stats harvesting and
  // scheme-specific introspection in tests).
  const CongestionControl& congestion() const { return *cc_; }
  const AckPolicy& ack_policy() const { return *ack_policy_; }
  bool delack_pending() const { return delack_timer_.pending(); }

 private:
  // --- sender ---
  void try_transmit();
  void emit_segment(std::uint32_t seq, std::uint32_t len, bool is_retransmit);
  void retransmit_front();
  void handle_ack(const proto::TcpHeader& h);
  void on_rto();
  void arm_rto();
  void update_rtt(sim::Duration sample);
  std::uint32_t flight_size() const { return seq_diff(snd_nxt_, snd_una_); }
  std::uint32_t send_limit_seq() const;
  bool all_data_acked() const;
  void maybe_send_fin();
  CcView cc_view() const {
    return {.mss = config_.mss,
            .flight_size = flight_size(),
            .snd_nxt = snd_nxt_,
            .rtt_valid = rtt_valid_,
            .srtt = srtt_};
  }

  // --- receiver ---
  void handle_data(const proto::TcpHeader& h, std::uint32_t payload);
  void send_ack();
  void send_control(proto::TcpFlags flags, std::uint32_t seq);
  // Bookkeeping after any segment carrying a valid ack leaves: the
  // delack timer is moot and the pending-segment count restarts. A
  // no-op under the immediate policy (timer never armed, count 0).
  void ack_emitted();
  void delack_fired();

  sim::Simulation& sim_;
  TcpConfig config_;
  proto::Endpoint local_;
  proto::Endpoint remote_;
  SendPacket send_packet_;
  TcpStats stats_;

  State state_ = State::kClosed;

  // Send state (RFC 793 names).
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t high_water_ = 0;  // highest sequence ever sent
  std::uint32_t peer_window_ = 0;
  std::uint64_t app_bytes_ = 0;   // total stream bytes the app queued
  bool fin_requested_ = false;
  bool fin_sent_ = false;
  bool send_complete_fired_ = false;
  std::uint32_t fin_seq_ = 0;

  // Congestion control (owns cwnd/ssthresh/recovery state).
  std::unique_ptr<CongestionControl> cc_;

  // RTT estimation.
  bool rtt_valid_ = false;
  sim::Duration srtt_;
  sim::Duration rttvar_;
  sim::Duration rto_;
  bool timing_segment_ = false;
  std::uint32_t timed_seq_ = 0;
  sim::TimePoint timed_sent_at_;
  unsigned consecutive_timeouts_ = 0;

  sim::Timer rto_timer_;

  // Receive state.
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  bool peer_fin_seen_ = false;
  std::uint32_t peer_fin_seq_ = 0;
  // Out-of-order byte intervals [first, second), sorted, disjoint.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ooo_;

  // ACK policy (receiver side).
  std::unique_ptr<AckPolicy> ack_policy_;
  sim::Timer delack_timer_;
  // In-order data segments received since the last ACK left.
  unsigned segs_since_ack_ = 0;
};

}  // namespace hydra::transport
