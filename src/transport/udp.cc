#include "transport/udp.h"

#include "util/assert.h"

namespace hydra::transport {

UdpSocket::UdpSocket(proto::Ipv4Address local_ip, proto::Port local_port,
                     SendPacket send)
    : local_ip_(local_ip), local_port_(local_port), send_(std::move(send)) {
  HYDRA_ASSERT(send_ != nullptr);
}

void UdpSocket::send_to(proto::Endpoint dst, std::uint32_t payload_bytes) {
  ++sent_;
  send_(proto::make_udp_packet(local_ip_, dst.address, local_port_, dst.port,
                             payload_bytes));
}

void UdpSocket::deliver(const proto::Packet& packet) {
  ++received_;
  bytes_received_ += packet.payload_bytes;
  if (on_receive) on_receive(packet);
}

}  // namespace hydra::transport
