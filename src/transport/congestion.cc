#include "transport/congestion.h"

#include <algorithm>

#include "transport/seq.h"

namespace hydra::transport {

// ---------------------------------------------------------------------
// NewReno — the seed arithmetic, moved verbatim.
// ---------------------------------------------------------------------

bool NewRenoCc::on_ack(std::uint32_t ack, std::uint32_t newly,
                       const CcView& view) {
  if (in_recovery_) {
    if (seq_geq(ack, recover_)) {
      // Full recovery: deflate.
      in_recovery_ = false;
      dup_acks_ = 0;
      exit_recovery(view);
      return false;
    }
    // Partial ACK: deflate by the acked data, re-inflate one MSS; the
    // connection retransmits the next hole.
    cwnd_ = std::max(view.mss, cwnd_ - std::min(cwnd_, newly) + view.mss);
    return true;
  }
  dup_acks_ = 0;
  if (cwnd_ < ssthresh_) {
    cwnd_ += view.mss;  // slow start
  } else {
    cwnd_ += std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::uint64_t{view.mss} * view.mss /
                                      cwnd_));
  }
  return false;
}

CongestionControl::DupAckAction NewRenoCc::on_dup_ack(const CcView& view) {
  ++dup_acks_;
  if (!in_recovery_ && dup_acks_ == 3) {
    recover_ = view.snd_nxt;
    in_recovery_ = true;
    enter_recovery(view);
    return DupAckAction::kFastRetransmit;
  }
  if (in_recovery_) {
    cwnd_ += view.mss;  // inflate per extra duplicate
    return DupAckAction::kSendMore;
  }
  return DupAckAction::kNone;
}

void NewRenoCc::on_rto(const CcView& view) {
  in_recovery_ = false;
  dup_acks_ = 0;
  collapse_on_timeout(view);
}

void NewRenoCc::on_rtt_sample(sim::Duration, const CcView&) {}

void NewRenoCc::enter_recovery(const CcView& view) {
  ++congestion_losses_;
  ssthresh_ = std::max(view.flight_size / 2, 2 * view.mss);
  cwnd_ = ssthresh_ + 3 * view.mss;
}

void NewRenoCc::exit_recovery(const CcView& view) {
  cwnd_ = std::max(ssthresh_, view.mss);
}

void NewRenoCc::collapse_on_timeout(const CcView& view) {
  ++congestion_losses_;
  ssthresh_ = std::max(view.flight_size / 2, 2 * view.mss);
  cwnd_ = view.mss;
}

// ---------------------------------------------------------------------
// CERL
// ---------------------------------------------------------------------

void CerlCc::on_rtt_sample(sim::Duration sample, const CcView&) {
  if (!have_rtt_) {
    have_rtt_ = true;
    rtt_min_ = sample;
    rtt_max_ = sample;
    return;
  }
  rtt_min_ = std::min(rtt_min_, sample);
  rtt_max_ = std::max(rtt_max_, sample);
}

LossKind CerlCc::classify(const CcView& view) const {
  // No RTT evidence yet: conservatively congestion (exact NewReno).
  if (!have_rtt_ || !view.rtt_valid) return LossKind::kCongestion;
  // Threshold between the observed floor and ceiling. Integer-nanosecond
  // arithmetic; <= keeps a flat-RTT path (floor == ceiling) classified
  // as channel — no queue ever built, so the drop cannot be congestion.
  const double span =
      static_cast<double>((rtt_max_ - rtt_min_).ns()) * tuning_.alpha;
  const auto threshold =
      rtt_min_ + sim::Duration::nanos(static_cast<std::int64_t>(span));
  return view.srtt <= threshold ? LossKind::kChannel : LossKind::kCongestion;
}

void CerlCc::enter_recovery(const CcView& view) {
  if (classify(view) == LossKind::kChannel) {
    // Channel loss: retransmit (the caller does) but keep ssthresh and
    // remember today's cwnd — the window deflation on exit is skipped.
    ++channel_losses_;
    channel_episode_ = true;
    channel_exit_cwnd_ = cwnd_;
    // Inflate by the three duplicates already seen, mirroring NewReno's
    // entry inflation, so in-recovery transmission keeps flowing.
    cwnd_ += 3 * view.mss;
    return;
  }
  channel_episode_ = false;
  NewRenoCc::enter_recovery(view);
}

void CerlCc::exit_recovery(const CcView& view) {
  if (channel_episode_) {
    channel_episode_ = false;
    cwnd_ = std::max(channel_exit_cwnd_, view.mss);
    return;
  }
  NewRenoCc::exit_recovery(view);
}

void CerlCc::collapse_on_timeout(const CcView& view) {
  channel_episode_ = false;
  if (classify(view) == LossKind::kChannel) {
    // The ACK clock still has to be rebuilt after go-back-N, so cwnd
    // restarts, but ssthresh is untouched: slow start carries the
    // window straight back to where it was.
    ++channel_losses_;
    cwnd_ = view.mss;
    return;
  }
  NewRenoCc::collapse_on_timeout(view);
}

std::unique_ptr<CongestionControl> make_congestion_control(
    const TransportTuning& tuning) {
  switch (tuning.cc) {
    case CcScheme::kCerl:
      return std::make_unique<CerlCc>(tuning.cerl);
    case CcScheme::kNewReno:
      break;
  }
  return std::make_unique<NewRenoCc>();
}

}  // namespace hydra::transport
