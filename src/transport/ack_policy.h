// AckPolicy: the pluggable receiver-side seam deciding, per in-order
// data arrival, whether the cumulative ACK leaves now or waits on the
// delack timer. The connection keeps the mechanics — emitting ACKs,
// arming/cancelling the timer, flushing on piggyback — and consults the
// policy only for the now-vs-later decision and the timer deadline.
//
// Decisions the policy never sees (always ack-now, per RFC 5681 and the
// fast-retransmit machinery upstream): duplicate ACKs for out-of-order
// or stale segments, ACKs for segments that fill a reassembly hole, and
// FIN processing. A delayed scheme therefore can never starve the
// sender's loss detection.
#pragma once

#include <algorithm>
#include <memory>

#include "sim/time.h"
#include "transport/tuning.h"

namespace hydra::transport {

class AckPolicy {
 public:
  virtual ~AckPolicy() = default;

  virtual const char* name() const = 0;

  enum class Decision { kAckNow, kDelay };

  // An in-order data segment advanced rcv_nxt at `now`. `pending` is
  // the number of segments received since the last ACK left, this one
  // included. kDelay leaves the ACK to an already-armed delack timer
  // (or arms one `delay()` from now).
  virtual Decision on_in_order_data(sim::TimePoint now, unsigned pending) = 0;

  // Delack deadline distance, consulted when a kDelay decision finds no
  // timer pending.
  virtual sim::Duration delay() const = 0;
};

// The seed behaviour: every data segment is acknowledged immediately
// (the 1:1 data/ACK pattern of the paper's prototype). Never arms the
// delack timer, so scheduler event counts match the pre-seam TCP
// exactly.
class ImmediateAckPolicy final : public AckPolicy {
 public:
  const char* name() const override { return "ack-imm"; }
  Decision on_in_order_data(sim::TimePoint, unsigned) override {
    return Decision::kAckNow;
  }
  sim::Duration delay() const override { return sim::Duration::zero(); }
};

// Classic delayed ACKs: hold until `max_pending_segments` are unacked
// or the fixed delack timer fires.
class DelayedAckPolicy final : public AckPolicy {
 public:
  explicit DelayedAckPolicy(DelAckTuning tuning) : tuning_(tuning) {}
  const char* name() const override { return "ack-del"; }

  Decision on_in_order_data(sim::TimePoint, unsigned pending) override {
    return pending >= tuning_.max_pending_segments ? Decision::kAckNow
                                                   : Decision::kDelay;
  }
  sim::Duration delay() const override { return tuning_.delay; }

 private:
  DelAckTuning tuning_;
};

// Adaptive delayed ACKs: an EWMA over the in-order inter-segment
// arrival gap estimates the burst cadence the MAC's aggregation imposes
// at the receiver; the delack deadline stretches to gap_multiplier
// times that, clamped to [delay, max_delay]. Segments of one aggregate
// land near-back-to-back, so the timer outlives the intra-burst gap and
// one stretch ACK answers the whole aggregate; the stretch cap bounds
// how far the ACK clock thins.
class AdaptiveAckPolicy final : public AckPolicy {
 public:
  explicit AdaptiveAckPolicy(DelAckTuning tuning) : tuning_(tuning) {}
  const char* name() const override { return "ack-adpt"; }

  Decision on_in_order_data(sim::TimePoint now, unsigned pending) override {
    if (have_arrival_) {
      const auto gap = now - last_arrival_;
      // EWMA with the RTT estimator's 7/8 gain.
      gap_ewma_ = have_gap_ ? (7 * gap_ewma_ + gap) / 8 : gap;
      have_gap_ = true;
    }
    have_arrival_ = true;
    last_arrival_ = now;
    return pending >= tuning_.max_pending_segments ? Decision::kAckNow
                                                   : Decision::kDelay;
  }

  sim::Duration delay() const override {
    if (!have_gap_) return tuning_.delay;
    const auto stretched = sim::Duration::nanos(static_cast<std::int64_t>(
        static_cast<double>(gap_ewma_.ns()) * tuning_.gap_multiplier));
    return std::clamp(stretched, tuning_.delay, tuning_.max_delay);
  }

  // Introspection for tests: the measured arrival-gap estimate.
  sim::Duration gap_estimate() const { return gap_ewma_; }

 private:
  DelAckTuning tuning_;
  bool have_arrival_ = false;
  bool have_gap_ = false;
  sim::TimePoint last_arrival_;
  sim::Duration gap_ewma_;
};

// Builds the policy `tuning` selects.
std::unique_ptr<AckPolicy> make_ack_policy(const TransportTuning& tuning);

}  // namespace hydra::transport
