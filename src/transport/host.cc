#include "transport/host.h"

#include <memory>
#include <utility>

#include "net/node.h"

namespace hydra::transport {

TransportMux& mux_of(net::Node& node) {
  return node.attachment<TransportMux>([&node] {
    auto mux = std::make_unique<TransportMux>(node.simulation(), node.ip());
    auto& stack = node.stack();
    mux->send_packet = [&stack](proto::PacketPtr packet) {
      stack.send(std::move(packet));
    };
    // Chain rather than replace: trace capture (or another observer) may
    // already be installed, in either order relative to this call.
    stack.deliver_local = [mux = mux.get(),
                           prev = std::move(stack.deliver_local)](
                              const proto::PacketPtr& packet) {
      mux->deliver(packet);
      if (prev) prev(packet);
    };
    return mux;
  });
}

}  // namespace hydra::transport
