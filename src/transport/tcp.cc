#include "transport/tcp.h"

#include <algorithm>
#include <cstdlib>

#include "util/assert.h"

namespace hydra::transport {

namespace {
// Initial sequence numbers; fixed for reproducible traces.
constexpr std::uint32_t kClientIss = 10'000;
}  // namespace

TcpConnection::TcpConnection(sim::Simulation& simulation, TcpConfig config,
                             proto::Endpoint local, proto::Endpoint remote,
                             SendPacket send)
    : sim_(simulation),
      config_(config),
      local_(local),
      remote_(remote),
      send_packet_(std::move(send)),
      rto_(config.rto_initial),
      rto_timer_(simulation.scheduler(), [this] { on_rto(); }) {
  HYDRA_ASSERT(send_packet_ != nullptr);
  cwnd_ = config_.initial_cwnd_segments * config_.mss;
}

// -----------------------------------------------------------------------
// Connection management
// -----------------------------------------------------------------------

void TcpConnection::connect() {
  HYDRA_ASSERT(state_ == State::kClosed);
  iss_ = kClientIss;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN consumes one sequence number
  high_water_ = snd_nxt_;
  state_ = State::kSynSent;
  send_control({.syn = true}, iss_);
  arm_rto();
}

void TcpConnection::accept(const proto::TcpHeader& syn) {
  HYDRA_ASSERT(state_ == State::kClosed);
  HYDRA_ASSERT(syn.flags.syn);
  irs_ = syn.seq;
  rcv_nxt_ = irs_ + 1;
  peer_window_ = syn.window;
  iss_ = kClientIss + 10'000;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  high_water_ = snd_nxt_;
  state_ = State::kSynReceived;
  send_control({.syn = true, .ack = true}, iss_);
  arm_rto();
}

void TcpConnection::send(std::uint64_t bytes) {
  app_bytes_ += bytes;
  if (state_ == State::kEstablished) try_transmit();
}

void TcpConnection::close() {
  fin_requested_ = true;
  if (state_ == State::kEstablished) try_transmit();
}

// -----------------------------------------------------------------------
// Segment input
// -----------------------------------------------------------------------

void TcpConnection::segment_arrived(const proto::Packet& packet) {
  HYDRA_ASSERT(packet.tcp.has_value());
  const auto& h = *packet.tcp;
  ++stats_.segments_received;

  switch (state_) {
    case State::kClosed:
      return;
    case State::kSynSent: {
      if (h.flags.syn && h.flags.ack && h.ack == snd_nxt_) {
        irs_ = h.seq;
        rcv_nxt_ = irs_ + 1;
        snd_una_ = h.ack;
        peer_window_ = h.window;
        state_ = State::kEstablished;
        rto_timer_.cancel();
        rto_ = config_.rto_initial;
        consecutive_timeouts_ = 0;
        send_ack();
        if (on_established) on_established();
        try_transmit();
      }
      return;
    }
    case State::kSynReceived: {
      if (h.flags.syn && !h.flags.ack) {
        // Retransmitted SYN: our SYN-ACK was lost.
        send_control({.syn = true, .ack = true}, iss_);
        arm_rto();
        return;
      }
      if (h.flags.ack && seq_geq(h.ack, snd_nxt_)) {
        snd_una_ = h.ack;
        peer_window_ = h.window;
        state_ = State::kEstablished;
        rto_timer_.cancel();
        rto_ = config_.rto_initial;
        consecutive_timeouts_ = 0;
        if (on_established) on_established();
      } else {
        return;
      }
      break;  // fall through: the establishing segment may carry data
    }
    case State::kEstablished:
    case State::kFinSent:
    case State::kClosedByPeer:
      break;
  }

  if (h.flags.syn) return;  // stale handshake duplicate

  if (h.flags.ack) handle_ack(h);
  if (packet.payload_bytes > 0) handle_data(h, packet.payload_bytes);

  if (h.flags.fin) {
    const std::uint32_t fin_seq = h.seq + packet.payload_bytes;
    if (!peer_fin_seen_) {
      peer_fin_seen_ = true;
      peer_fin_seq_ = fin_seq;
    }
    if (rcv_nxt_ == peer_fin_seq_) {
      ++rcv_nxt_;
      if (state_ == State::kEstablished) state_ = State::kClosedByPeer;
      if (on_peer_fin) on_peer_fin();
    }
    send_ack();
  }
}

// -----------------------------------------------------------------------
// Sender
// -----------------------------------------------------------------------

std::uint32_t TcpConnection::send_limit_seq() const {
  const std::uint32_t window =
      std::min(cwnd_, peer_window_ == 0 ? config_.mss : peer_window_);
  return snd_una_ + window;
}

bool TcpConnection::all_data_acked() const {
  return snd_una_ == snd_nxt_;
}

void TcpConnection::try_transmit() {
  if (state_ != State::kEstablished && state_ != State::kFinSent &&
      state_ != State::kClosedByPeer) {
    return;
  }
  while (true) {
    const std::uint64_t offset = seq_diff(snd_nxt_, iss_ + 1);
    if (offset >= app_bytes_) break;  // nothing left to send
    const std::uint64_t available = app_bytes_ - offset;
    const std::uint32_t limit = send_limit_seq();
    if (!seq_lt(snd_nxt_, limit)) break;
    const std::uint32_t window_room = seq_diff(limit, snd_nxt_);
    const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {config_.mss, available, window_room}));
    if (len == 0) break;
    // Sender-side silly-window avoidance: never emit a sub-MSS segment
    // unless it is the final piece of the stream — a window-clipped
    // partial would misalign every subsequent segment boundary.
    if (len < config_.mss && len < available) break;
    // Segments below the high-water mark are go-back-N retransmissions
    // (Karn's rule: never RTT-time them).
    const bool is_retx = seq_lt(snd_nxt_, high_water_);
    emit_segment(snd_nxt_, len, is_retx);
    snd_nxt_ += len;
    if (seq_gt(snd_nxt_, high_water_)) high_water_ = snd_nxt_;
  }
  maybe_send_fin();
}

void TcpConnection::emit_segment(std::uint32_t seq, std::uint32_t len,
                                 bool is_retransmit) {
  auto pkt = proto::make_tcp_packet(local_.address, remote_.address, local_.port,
                                  remote_.port, seq, rcv_nxt_, {.ack = true},
                                  static_cast<std::uint16_t>(config_.recv_window),
                                  len);
  ++stats_.segments_sent;
  static const bool kTrace = getenv("HYDRA_TCP_TRACE") != nullptr;
  if (kTrace) {
    std::fprintf(stderr, "[%.4f] emit seq=%u len=%u retx=%d una=%u nxt=%u hw=%u cwnd=%u\n",
                 sim_.now().seconds_f(), seq - iss_, len, (int)is_retransmit,
                 snd_una_ - iss_, snd_nxt_ - iss_, high_water_ - iss_, cwnd_);
  }
  if (is_retransmit) {
    ++stats_.retransmits;
    // Karn's rule: never time a retransmitted segment.
    if (timing_segment_ && seq_leq(seq, timed_seq_)) timing_segment_ = false;
  } else if (!timing_segment_) {
    timing_segment_ = true;
    timed_seq_ = seq + len;  // sample when cumulative ACK covers the end
    timed_sent_at_ = sim_.now();
  }
  if (!rto_timer_.pending()) arm_rto();
  send_packet_(std::move(pkt));
}

void TcpConnection::maybe_send_fin() {
  if (!fin_requested_ || fin_sent_) return;
  const std::uint64_t offset = seq_diff(snd_nxt_, iss_ + 1);
  if (offset < app_bytes_) return;  // data still unsent
  fin_seq_ = snd_nxt_;
  fin_sent_ = true;
  state_ = State::kFinSent;
  send_control({.ack = true, .fin = true}, fin_seq_);
  snd_nxt_ = fin_seq_ + 1;
  if (seq_gt(snd_nxt_, high_water_)) high_water_ = snd_nxt_;
  arm_rto();
}

void TcpConnection::retransmit_front() {
  const std::uint64_t offset = seq_diff(snd_una_, iss_ + 1);
  if (offset < app_bytes_) {
    const std::uint64_t available = app_bytes_ - offset;
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.mss, available));
    emit_segment(snd_una_, len, /*is_retransmit=*/true);
  } else if (fin_sent_ && snd_una_ == fin_seq_) {
    ++stats_.retransmits;
    send_control({.ack = true, .fin = true}, fin_seq_);
    arm_rto();
  }
}

void TcpConnection::handle_ack(const proto::TcpHeader& h) {
  static const bool kTrace = getenv("HYDRA_TCP_TRACE") != nullptr;
  if (kTrace) {
    std::fprintf(stderr, "[%.4f] peer=%u rx-ack ack=%u una=%u nxt=%u\n",
                 sim_.now().seconds_f(), remote_.address.value() & 0xff, h.ack, snd_una_, snd_nxt_);
  }
  // Bound against the highest sequence ever transmitted, not snd_nxt:
  // during a go-back-N replay snd_nxt sits below data the receiver may
  // already hold, and its cumulative ACKs are entirely legitimate.
  if (seq_gt(h.ack, high_water_)) return;  // acks data we never sent

  if (seq_gt(h.ack, snd_una_)) {
    const std::uint32_t newly = seq_diff(h.ack, snd_una_);
    stats_.bytes_acked += newly;
    snd_una_ = h.ack;
    peer_window_ = h.window;
    consecutive_timeouts_ = 0;
    // During a go-back-N replay a cumulative ACK can overtake snd_nxt
    // (the receiver already had the replayed bytes — only their ACKs were
    // lost). Never resend below snd_una.
    if (seq_lt(snd_nxt_, snd_una_)) snd_nxt_ = snd_una_;

    if (timing_segment_ && seq_geq(h.ack, timed_seq_)) {
      timing_segment_ = false;
      update_rtt(sim_.now() - timed_sent_at_);
    }

    if (in_recovery_) {
      if (seq_geq(h.ack, recover_)) {
        // Full recovery (NewReno): deflate to ssthresh.
        in_recovery_ = false;
        dup_acks_ = 0;
        cwnd_ = std::max(ssthresh_, config_.mss);
      } else {
        // Partial ACK: retransmit the next hole, deflate by acked data.
        retransmit_front();
        cwnd_ = std::max(config_.mss, cwnd_ - std::min(cwnd_, newly) +
                                          config_.mss);
      }
    } else {
      dup_acks_ = 0;
      if (cwnd_ < ssthresh_) {
        cwnd_ += config_.mss;  // slow start
      } else {
        cwnd_ += std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   std::uint64_t{config_.mss} * config_.mss / cwnd_));
      }
    }

    if (all_data_acked()) {
      rto_timer_.cancel();
      const std::uint64_t offset = seq_diff(snd_nxt_, iss_ + 1);
      const bool stream_done =
          offset >= app_bytes_ + (fin_sent_ ? 1 : 0) &&
          (!fin_requested_ || fin_sent_);
      if (stream_done && app_bytes_ > 0 && !send_complete_fired_) {
        send_complete_fired_ = true;
        if (on_send_complete) on_send_complete();
      }
    } else {
      arm_rto();  // restart for the remaining flight
    }
    try_transmit();
    return;
  }

  // Possible duplicate ACK: pure, no payload, for the front of the flight.
  if (h.ack == snd_una_ && flight_size() > 0) {
    ++dup_acks_;
    ++stats_.dup_acks_seen;
    if (!in_recovery_ && dup_acks_ == 3) {
      enter_recovery();
    } else if (in_recovery_) {
      cwnd_ += config_.mss;  // inflate per extra duplicate
      try_transmit();
    }
  }
}

void TcpConnection::enter_recovery() {
  ssthresh_ = std::max(flight_size() / 2, 2 * config_.mss);
  recover_ = snd_nxt_;
  in_recovery_ = true;
  cwnd_ = ssthresh_ + 3 * config_.mss;
  ++stats_.fast_retransmits;
  retransmit_front();
}

void TcpConnection::on_rto() {
  ++stats_.timeouts;
  ++consecutive_timeouts_;
  if (consecutive_timeouts_ > config_.max_retries) {
    state_ = State::kClosed;  // give up
    return;
  }
  rto_ = std::min(rto_ * 2, config_.rto_max);

  switch (state_) {
    case State::kSynSent:
      ++stats_.retransmits;
      send_control({.syn = true}, iss_);
      break;
    case State::kSynReceived:
      ++stats_.retransmits;
      send_control({.syn = true, .ack = true}, iss_);
      break;
    case State::kEstablished:
    case State::kFinSent:
    case State::kClosedByPeer: {
      ssthresh_ = std::max(flight_size() / 2, 2 * config_.mss);
      cwnd_ = config_.mss;
      in_recovery_ = false;
      dup_acks_ = 0;
      timing_segment_ = false;
      // Go-back-N: without SACK, everything past the timeout hole must be
      // presumed lost; pull snd_nxt back so the normal send path (clocked
      // by returning cumulative ACKs in slow start) re-covers the gap.
      snd_nxt_ = snd_una_;
      if (fin_sent_) fin_sent_ = false;  // FIN re-emitted after the data
      try_transmit();
      break;
    }
    case State::kClosed:
      return;
  }
  arm_rto();
}

void TcpConnection::arm_rto() {
  rto_timer_.arm(std::clamp(rto_, config_.rto_min, config_.rto_max));
}

void TcpConnection::update_rtt(sim::Duration sample) {
  // RFC 6298.
  if (!rtt_valid_) {
    rtt_valid_ = true;
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const auto delta = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = (3 * rttvar_ + delta) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.rto_min, config_.rto_max);
}

// -----------------------------------------------------------------------
// Receiver
// -----------------------------------------------------------------------

void TcpConnection::handle_data(const proto::TcpHeader& h,
                                std::uint32_t payload) {
  const std::uint32_t end = h.seq + payload;
  static const bool kTrace = getenv("HYDRA_TCP_TRACE") != nullptr;
  if (kTrace) {
    std::fprintf(stderr, "[%.4f] peer=%u rx-data seq=%u end=%u rcv_nxt=%u\n",
                 sim_.now().seconds_f(), remote_.address.value() & 0xff, h.seq, end, rcv_nxt_);
  }
  if (seq_leq(end, rcv_nxt_)) {
    send_ack();  // stale retransmission
    return;
  }
  if (seq_gt(h.seq, rcv_nxt_)) {
    // Out of order: stash the interval and emit a duplicate ACK.
    ++stats_.out_of_order_segments;
    auto it = ooo_.begin();
    while (it != ooo_.end() && seq_lt(it->first, h.seq)) ++it;
    ooo_.insert(it, {h.seq, end});
    // Merge overlapping neighbours.
    for (std::size_t i = 0; i + 1 < ooo_.size();) {
      if (seq_geq(ooo_[i].second, ooo_[i + 1].first)) {
        ooo_[i].second = seq_gt(ooo_[i].second, ooo_[i + 1].second)
                             ? ooo_[i].second
                             : ooo_[i + 1].second;
        ooo_.erase(ooo_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      } else {
        ++i;
      }
    }
    send_ack();
    return;
  }

  // In order (possibly overlapping the left edge).
  const std::uint32_t before = rcv_nxt_;
  rcv_nxt_ = end;
  while (!ooo_.empty() && seq_leq(ooo_.front().first, rcv_nxt_)) {
    if (seq_gt(ooo_.front().second, rcv_nxt_)) {
      rcv_nxt_ = ooo_.front().second;
    }
    ooo_.erase(ooo_.begin());
  }
  const std::uint32_t delivered = seq_diff(rcv_nxt_, before);
  delivered_bytes_ += delivered;
  if (on_data) on_data(delivered);

  if (peer_fin_seen_ && rcv_nxt_ == peer_fin_seq_) {
    ++rcv_nxt_;
    if (state_ == State::kEstablished) state_ = State::kClosedByPeer;
    if (on_peer_fin) on_peer_fin();
  }
  send_ack();
}

void TcpConnection::send_ack() {
  ++stats_.acks_sent;
  auto pkt = proto::make_tcp_packet(
      local_.address, remote_.address, local_.port, remote_.port, snd_nxt_,
      rcv_nxt_, {.ack = true},
      static_cast<std::uint16_t>(config_.recv_window), 0);
  send_packet_(std::move(pkt));
}

void TcpConnection::send_control(proto::TcpFlags flags, std::uint32_t seq) {
  auto pkt = proto::make_tcp_packet(
      local_.address, remote_.address, local_.port, remote_.port, seq,
      flags.ack ? rcv_nxt_ : 0, flags,
      static_cast<std::uint16_t>(config_.recv_window), 0);
  ++stats_.segments_sent;
  send_packet_(std::move(pkt));
}

}  // namespace hydra::transport
