// Composition point between the net and transport layers.
//
// net::Node deliberately knows nothing about transport (the layer DAG
// points the other way); the mux attaches to a node from above, through
// the node's typed attachment slot and the stack's delivery callbacks.
#pragma once

#include "transport/mux.h"

namespace hydra::net {
class Node;
}  // namespace hydra::net

namespace hydra::transport {

// Returns the node's TransportMux, creating it and wiring it into the IP
// stack on first use. Every caller that opens sockets or connections on
// a node goes through here.
TransportMux& mux_of(net::Node& node);

}  // namespace hydra::transport
