// Minimal UDP socket: datagram in, datagram out, no state.
#pragma once

#include <cstdint>
#include <functional>

#include "proto/packet.h"

namespace hydra::transport {

class UdpSocket {
 public:
  using SendPacket = std::function<void(proto::PacketPtr)>;

  UdpSocket(proto::Ipv4Address local_ip, proto::Port local_port, SendPacket send);

  // Sends a datagram with a synthetic payload of `payload_bytes`.
  void send_to(proto::Endpoint dst, std::uint32_t payload_bytes);

  // Incoming datagram addressed to this socket.
  std::function<void(const proto::Packet&)> on_receive;

  proto::Port local_port() const { return local_port_; }
  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_received() const { return received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  // Called by the mux.
  void deliver(const proto::Packet& packet);

 private:
  proto::Ipv4Address local_ip_;
  proto::Port local_port_;
  SendPacket send_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace hydra::transport
