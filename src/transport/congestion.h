// CongestionControl: the pluggable seam that owns cwnd/ssthresh and the
// loss-recovery state machine of a TcpConnection. The connection drives
// it through four hooks — cumulative ACK advance, duplicate ACK,
// retransmission timeout, RTT sample — and obeys the returned actions
// (retransmit the front of the flight, try to transmit more). All
// sequence-number machinery (what to retransmit, go-back-N, Karn's
// rule) stays in the connection; the scheme only decides *how the
// window reacts*.
//
// NewRenoCc is the seed behaviour extracted verbatim; CerlCc layers
// RTT-threshold loss differentiation on top (channel losses retransmit
// without multiplicative backoff). The differential suite pins the
// NewReno default bit-identical to the pre-seam TCP.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/time.h"
#include "transport/tuning.h"

namespace hydra::transport {

// How a detected loss was classified (CERL; NewReno calls everything
// congestion).
enum class LossKind { kCongestion, kChannel };

// Read-only view of the connection state the schemes consult. The
// connection fills it immediately before every hook call, so the values
// are exact at the decision point (flight_size in particular is read
// *before* any go-back-N rewind).
struct CcView {
  std::uint32_t mss = 0;
  std::uint32_t flight_size = 0;  // snd_nxt - snd_una
  std::uint32_t snd_nxt = 0;
  bool rtt_valid = false;
  sim::Duration srtt;
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual const char* name() const = 0;

  // Called once, before the handshake.
  void init(std::uint32_t initial_cwnd) { cwnd_ = initial_cwnd; }

  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }
  bool in_recovery() const { return in_recovery_; }

  // Loss-classification tallies (CERL; NewReno counts every episode as
  // congestion). One increment per recovery entry or timeout, not per
  // retransmitted segment.
  std::uint64_t channel_losses() const { return channel_losses_; }
  std::uint64_t congestion_losses() const { return congestion_losses_; }

  // A cumulative ACK advanced snd_una by `newly` bytes to `ack`.
  // Returns true when the scheme wants the front of the flight
  // retransmitted (the NewReno partial-ACK hole fill).
  virtual bool on_ack(std::uint32_t ack, std::uint32_t newly,
                      const CcView& view) = 0;

  // What the connection should do after a duplicate ACK.
  enum class DupAckAction {
    kNone,
    // Third duplicate: recovery entered, retransmit the front segment.
    kFastRetransmit,
    // In recovery: the window inflated, try to transmit more.
    kSendMore,
  };
  virtual DupAckAction on_dup_ack(const CcView& view) = 0;

  // The retransmission timer fired (the connection performs the
  // go-back-N rewind itself, after this hook).
  virtual void on_rto(const CcView& view) = 0;

  // The RTT estimator accepted a sample (already Karn-filtered by the
  // connection). view.srtt is the post-update smoothed value.
  virtual void on_rtt_sample(sim::Duration sample, const CcView& view) = 0;

 protected:
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0xffffffff;
  bool in_recovery_ = false;
  std::uint64_t channel_losses_ = 0;
  std::uint64_t congestion_losses_ = 0;
};

// The seed scheme: RFC 6582 NewReno, extracted from the monolithic
// TcpConnection without behavioural change.
class NewRenoCc : public CongestionControl {
 public:
  const char* name() const override { return "newreno"; }

  bool on_ack(std::uint32_t ack, std::uint32_t newly,
              const CcView& view) override;
  DupAckAction on_dup_ack(const CcView& view) override;
  void on_rto(const CcView& view) override;
  void on_rtt_sample(sim::Duration sample, const CcView& view) override;

 protected:
  // Recovery entry/exit, virtual so CerlCc can divert the channel-loss
  // cases while sharing the whole dup-ack state machine.
  virtual void enter_recovery(const CcView& view);
  virtual void exit_recovery(const CcView& view);
  virtual void collapse_on_timeout(const CcView& view);

  unsigned dup_acks_ = 0;
  std::uint32_t recover_ = 0;  // NewReno recovery point (snd_nxt at entry)
};

// NewReno + CERL-style loss differentiation: tracks the RTT floor and
// ceiling; a loss detected while srtt sits within `alpha` of the floor
// is classified as channel loss and retransmitted without touching
// ssthresh (and, for fast retransmit, without deflating cwnd on exit).
// Congestion-classified losses react exactly like NewReno.
class CerlCc : public NewRenoCc {
 public:
  explicit CerlCc(CerlTuning tuning) : tuning_(tuning) {}

  const char* name() const override { return "cerl"; }

  void on_rtt_sample(sim::Duration sample, const CcView& view) override;

  // The classifier's current verdict for a loss detected now.
  LossKind classify(const CcView& view) const;
  sim::Duration rtt_floor() const { return rtt_min_; }
  sim::Duration rtt_ceiling() const { return rtt_max_; }

 protected:
  void enter_recovery(const CcView& view) override;
  void exit_recovery(const CcView& view) override;
  void collapse_on_timeout(const CcView& view) override;

 private:
  CerlTuning tuning_;
  bool have_rtt_ = false;
  sim::Duration rtt_min_;
  sim::Duration rtt_max_;
  // A channel-classified fast-retransmit episode keeps its windows: on
  // exit, cwnd returns to the value it had at loss detection instead of
  // deflating to ssthresh.
  bool channel_episode_ = false;
  std::uint32_t channel_exit_cwnd_ = 0;
};

// Builds the scheme `tuning` selects.
std::unique_ptr<CongestionControl> make_congestion_control(
    const TransportTuning& tuning);

}  // namespace hydra::transport
