#include "transport/ack_policy.h"

namespace hydra::transport {

std::unique_ptr<AckPolicy> make_ack_policy(const TransportTuning& tuning) {
  switch (tuning.ack) {
    case AckScheme::kDelayed:
      return std::make_unique<DelayedAckPolicy>(tuning.delack);
    case AckScheme::kAdaptive:
      return std::make_unique<AdaptiveAckPolicy>(tuning.delack);
    case AckScheme::kImmediate:
      break;
  }
  return std::make_unique<ImmediateAckPolicy>();
}

}  // namespace hydra::transport
