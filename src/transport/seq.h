// 32-bit TCP sequence-number arithmetic (wraparound-safe comparisons).
#pragma once

#include <cstdint>

namespace hydra::transport {

inline constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline constexpr bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) {
  return seq_lt(b, a);
}
inline constexpr bool seq_geq(std::uint32_t a, std::uint32_t b) {
  return seq_leq(b, a);
}
inline constexpr std::uint32_t seq_diff(std::uint32_t a, std::uint32_t b) {
  return a - b;  // modular distance from b to a
}

}  // namespace hydra::transport
