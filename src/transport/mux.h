// Per-node transport demultiplexer: owns UDP sockets and TCP connections,
// routes incoming L3 packets to them, and provides listen/connect.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "proto/packet.h"
#include "sim/simulation.h"
#include "transport/tcp.h"
#include "transport/udp.h"

namespace hydra::transport {

class TransportMux {
 public:
  TransportMux(sim::Simulation& simulation, proto::Ipv4Address local_ip);

  TransportMux(const TransportMux&) = delete;
  TransportMux& operator=(const TransportMux&) = delete;

  // Wired by the node: hands a fully-formed packet to the IP stack.
  std::function<void(proto::PacketPtr)> send_packet;

  // Incoming packet addressed to this node (from the IP stack).
  void deliver(const proto::PacketPtr& packet);

  // Opens a UDP socket on `local_port` (asserts the port is free).
  UdpSocket& open_udp(proto::Port local_port);

  // Active-opens a TCP connection from an ephemeral port.
  TcpConnection& tcp_connect(proto::Endpoint remote, TcpConfig config = {});

  // Accepts connections on `port`; `on_accept` fires per new connection.
  void tcp_listen(proto::Port port, TcpConfig config,
                  std::function<void(TcpConnection&)> on_accept);

  proto::Ipv4Address local_ip() const { return local_ip_; }
  std::uint64_t unmatched_packets() const { return unmatched_; }

 private:
  struct ConnKey {
    proto::Port local_port;
    proto::Endpoint remote;
    friend auto operator<=>(const ConnKey&, const ConnKey&) = default;
  };
  struct Listener {
    TcpConfig config;
    std::function<void(TcpConnection&)> on_accept;
  };

  TcpConnection& create_connection(proto::Port local_port, proto::Endpoint remote,
                                   const TcpConfig& config);

  sim::Simulation& sim_;
  proto::Ipv4Address local_ip_;
  std::map<proto::Port, std::unique_ptr<UdpSocket>> udp_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> connections_;
  std::map<proto::Port, Listener> listeners_;
  proto::Port next_ephemeral_ = 49152;
  std::uint64_t unmatched_ = 0;
};

}  // namespace hydra::transport
