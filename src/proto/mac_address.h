// Link-layer addressing.
//
// Addresses are 48-bit on the wire (standard 802.11 format) but the
// simulation only ever populates the low 16 bits, derived from node ids.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace hydra::proto {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::uint16_t value) : value_(value) {}

  // Link address of the node with the given index (0-based).
  constexpr static MacAddress for_node(std::uint32_t node_index) {
    return MacAddress(static_cast<std::uint16_t>(node_index + 1));
  }
  constexpr static MacAddress broadcast() { return MacAddress(0xffff); }

  constexpr std::uint16_t value() const { return value_; }
  constexpr bool is_broadcast() const { return value_ == 0xffff; }
  constexpr bool is_unspecified() const { return value_ == 0; }

  friend constexpr auto operator<=>(MacAddress, MacAddress) = default;

 private:
  std::uint16_t value_ = 0;
};

inline std::string to_string(MacAddress a) {
  if (a.is_broadcast()) return "ff:ff";
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02x:%02x", a.value() >> 8,
                a.value() & 0xff);
  return buf;
}

}  // namespace hydra::proto
