// Network-layer addressing: IPv4-style addresses and ports.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace hydra::proto {

// 32-bit IPv4-style address. Strongly typed; value 0 is "unspecified".
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr static Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | d);
  }
  // Address of the simulated node with the given index: 10.0.0.(index+1).
  constexpr static Ipv4Address for_node(std::uint32_t node_index) {
    return from_octets(10, 0, 0, static_cast<std::uint8_t>(node_index + 1));
  }
  constexpr static Ipv4Address broadcast() {
    return Ipv4Address(0xffffffffu);
  }

  constexpr std::uint32_t value() const { return value_; }
  constexpr bool is_broadcast() const { return value_ == 0xffffffffu; }
  constexpr bool is_unspecified() const { return value_ == 0; }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

std::string to_string(Ipv4Address addr);

using Port = std::uint16_t;

// (address, port) pair identifying a transport endpoint.
struct Endpoint {
  Ipv4Address address;
  Port port = 0;
  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) =
      default;
};

}  // namespace hydra::proto
