#include "proto/mode.h"

#include "util/assert.h"

namespace hydra::proto {
namespace {

constexpr std::array<PhyMode, 8> kModes = {{
    {Modulation::kBpsk, {1, 2}, BitRate::mbps_x100(65), 4.0},
    {Modulation::kQpsk, {1, 2}, BitRate::mbps_x100(130), 7.0},
    {Modulation::kQpsk, {3, 4}, BitRate::mbps_x100(195), 9.5},
    {Modulation::kQam16, {1, 2}, BitRate::mbps_x100(260), 13.0},
    {Modulation::kQam16, {3, 4}, BitRate::mbps_x100(390), 17.0},
    {Modulation::kQam64, {2, 3}, BitRate::mbps_x100(520), 25.5},
    {Modulation::kQam64, {3, 4}, BitRate::mbps_x100(585), 27.0},
    {Modulation::kQam64, {5, 6}, BitRate::mbps_x100(650), 28.5},
}};

}  // namespace

std::span<const PhyMode> hydra_modes() { return kModes; }

const PhyMode& base_mode() { return kModes[0]; }

std::optional<PhyMode> mode_for_mbps_x100(std::uint64_t hundredths) {
  for (const auto& m : kModes) {
    if (m.rate == BitRate::mbps_x100(hundredths)) return m;
  }
  return std::nullopt;
}

const PhyMode& mode_by_index(std::size_t index) {
  HYDRA_ASSERT(index < kModes.size());
  return kModes[index];
}

std::size_t mode_index_of(const PhyMode& mode) {
  for (std::size_t i = 0; i < kModes.size(); ++i) {
    if (kModes[i] == mode) return i;
  }
  HYDRA_UNREACHABLE("mode not in the rate table");
}

std::string to_string(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

std::string to_string(const PhyMode& mode) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s %u/%u (%.2f Mbps)",
                to_string(mode.modulation).c_str(), mode.code_rate.num,
                mode.code_rate.den, mode.rate.mbps());
  return buf;
}

}  // namespace hydra::proto
