// Hydra PHY transmission modes (modulation × convolutional code rate).
//
// The rate table mirrors the prototype in the paper (Table 1): 802.11n
// MCS 0–7 scaled to 1 MHz bandwidth, i.e. 0.65–6.5 Mbps SISO. The paper's
// experiments use the first four rates; the 64-QAM rates exist but are
// unreliable at the 25 dB operating SNR, as the paper observed.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "util/units.h"

namespace hydra::proto {

enum class Modulation : std::uint8_t { kBpsk, kQpsk, kQam16, kQam64 };

// Convolutional code rate as numerator/denominator (1/2, 2/3, 3/4, 5/6).
struct CodeRate {
  std::uint8_t num = 1;
  std::uint8_t den = 2;

  constexpr double value() const {
    return static_cast<double>(num) / static_cast<double>(den);
  }
  friend constexpr bool operator==(CodeRate, CodeRate) = default;
};

// One entry of the PHY rate table.
struct PhyMode {
  Modulation modulation = Modulation::kBpsk;
  CodeRate code_rate;
  BitRate rate;          // information bit rate
  double required_snr_db = 0.0;  // SNR for quasi-error-free operation

  constexpr unsigned bits_per_symbol() const {
    switch (modulation) {
      case Modulation::kBpsk: return 1;
      case Modulation::kQpsk: return 2;
      case Modulation::kQam16: return 4;
      case Modulation::kQam64: return 6;
    }
    return 1;
  }

  friend constexpr bool operator==(const PhyMode& a, const PhyMode& b) {
    return a.rate == b.rate;
  }
};

// Hydra SISO rate table, lowest to highest (Table 1 of the paper).
// Required-SNR values are calibrated so that at the paper's 25 dB
// operating point all non-64-QAM rates are reliable and all 64-QAM rates
// are not ("This SNR did not allow reliable operation of the rates that
// required 64-QAM").
std::span<const PhyMode> hydra_modes();

// Base (most robust) mode: BPSK 1/2 at 0.65 Mbps. Control frames and PHY
// headers use this.
const PhyMode& base_mode();

// Looks up a mode by rate in hundredths of Mbps (65 -> 0.65 Mbps).
// Returns nullopt if the table has no such rate.
std::optional<PhyMode> mode_for_mbps_x100(std::uint64_t hundredths);

// Convenience indexed accessor (0 == base mode). Asserts on range.
const PhyMode& mode_by_index(std::size_t index);

// Index of `mode` in the rate table (matched by rate). Asserts if the
// mode is not a table entry.
std::size_t mode_index_of(const PhyMode& mode);

std::string to_string(Modulation m);
std::string to_string(const PhyMode& mode);

}  // namespace hydra::proto
