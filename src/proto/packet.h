// The L3+ packet carried through the stack.
//
// Headers are real, field-accurate structures that serialize to their
// wire sizes (IPv4 20 B, TCP 20 B, UDP 8 B); payloads are synthetic byte
// counts (the experiments transfer files and CBR streams whose *content*
// is irrelevant, only their lengths and TCP sequence numbers matter).
// The MAC's TCP-ACK classifier — the paper's cross-layer hook — reads
// these headers directly.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "proto/ip_address.h"
#include "util/buffer.h"
#include "util/pool.h"

namespace hydra::proto {

inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;
// Raw datagrams used by the flooding generator (route-control stand-in).
inline constexpr std::uint8_t kProtoFlood = 253;
// Route discovery control messages (RREQ/RREP), AODV-style.
inline constexpr std::uint8_t kProtoDiscovery = 89;

struct Ipv4Header {
  static constexpr std::size_t kWireBytes = 20;

  Ipv4Address src;
  Ipv4Address dst;
  std::uint8_t protocol = 0;
  std::uint8_t ttl = 64;
  // Total length of the IP datagram (header + upper layers), as on wire.
  std::uint16_t total_length = 0;

  void serialize(BufferWriter& w) const;
  static std::optional<Ipv4Header> parse(BufferReader& r);
};

// TCP flag bits (subset the stack uses).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  std::uint8_t to_byte() const;
  static TcpFlags from_byte(std::uint8_t b);
  friend constexpr bool operator==(TcpFlags, TcpFlags) = default;
};

struct TcpHeader {
  static constexpr std::size_t kWireBytes = 20;

  Port src_port = 0;
  Port dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;
  std::uint16_t window = 0;

  void serialize(BufferWriter& w) const;
  static std::optional<TcpHeader> parse(BufferReader& r);
};

struct UdpHeader {
  static constexpr std::size_t kWireBytes = 8;

  Port src_port = 0;
  Port dst_port = 0;
  std::uint16_t length = 0;  // header + payload

  void serialize(BufferWriter& w) const;
  static std::optional<UdpHeader> parse(BufferReader& r);
};

// AODV-style route-discovery message (paper §3.2's motivating traffic:
// "dynamic source routing and ad-hoc on-demand distance vector routing
// protocols use broadcast frames for route discovery and maintenance").
struct DiscoveryHeader {
  static constexpr std::size_t kWireBytes = 12;

  enum class Kind : std::uint8_t { kRreq = 1, kRrep = 2 };

  Kind kind = Kind::kRreq;
  std::uint8_t hop_count = 0;
  std::uint16_t request_id = 0;
  Ipv4Address origin;  // the node searching for a route
  Ipv4Address target;  // the node being searched for

  void serialize(BufferWriter& w) const;
  static std::optional<DiscoveryHeader> parse(BufferReader& r);
};

// An L3 packet: IPv4 header, optional transport header, synthetic payload.
struct Packet {
  Ipv4Header ip;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<DiscoveryHeader> discovery;
  std::uint32_t payload_bytes = 0;

  // Size of the packet on the wire (headers + payload).
  std::size_t wire_size() const;

  // "Pure" TCP ACK per the paper's definition (§4.2.4): a TCP segment
  // carrying no data that is not part of connection setup or teardown.
  bool is_pure_tcp_ack() const;

  // Full byte serialization (payload rendered as zeros); parse() inverts
  // it. Used by the wire-format tests and the MAC frame serializer.
  Bytes serialize() const;
  static std::optional<Packet> parse(BufferReader& r);
  // Deserializes directly into `out` (which may hold a previous packet's
  // fields — every field is overwritten on success; contents are
  // unspecified on failure). The allocation-free core of parse().
  static bool parse_into(BufferReader& r, Packet& out);
  // Parses straight into pooled shared storage: one pooled allocation,
  // no intermediate stack Packet, no copy. nullptr on malformed input.
  static std::shared_ptr<const Packet> parse_shared(BufferReader& r);
};

using PacketPtr = std::shared_ptr<const Packet>;

// Pooled deep copy, for paths that must mutate a shared packet's
// headers (the forwarding TTL decrement). Everything that only reads a
// packet shares the PacketPtr instead.
std::shared_ptr<Packet> clone_packet(const Packet& p);

// Builds a UDP datagram packet.
PacketPtr make_udp_packet(Ipv4Address src, Ipv4Address dst, Port src_port,
                          Port dst_port, std::uint32_t payload_bytes);
// Builds a TCP segment.
PacketPtr make_tcp_packet(Ipv4Address src, Ipv4Address dst, Port src_port,
                          Port dst_port, std::uint32_t seq, std::uint32_t ack,
                          TcpFlags flags, std::uint16_t window,
                          std::uint32_t payload_bytes);
// Builds a broadcast flooding datagram (control-protocol stand-in).
PacketPtr make_flood_packet(Ipv4Address src, std::uint32_t payload_bytes);
// Builds a route-discovery message. RREQs are IP-broadcast; RREPs are
// unicast from the responder toward the origin. `ttl` bounds the flood
// (the hop limit travels with the packet, as in AODV).
PacketPtr make_discovery_packet(Ipv4Address src, Ipv4Address dst,
                                const DiscoveryHeader& header,
                                std::uint8_t ttl = 64);

}  // namespace hydra::proto
