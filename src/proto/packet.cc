#include "proto/packet.h"

#include <cstdio>

namespace hydra::proto {

std::string to_string(Ipv4Address addr) {
  char buf[20];
  const auto v = addr.value();
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (v >> 24) & 0xff,
                (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff);
  return buf;
}

void Ipv4Header::serialize(BufferWriter& w) const {
  w.write_u8(0x45);  // version 4, IHL 5
  w.write_u8(0);     // DSCP/ECN
  w.write_u16(total_length);
  w.write_u16(0);  // identification
  w.write_u16(0);  // flags/fragment offset
  w.write_u8(ttl);
  w.write_u8(protocol);
  w.write_u16(0);  // header checksum (unused in simulation; FCS covers us)
  w.write_u32(src.value());
  w.write_u32(dst.value());
}

std::optional<Ipv4Header> Ipv4Header::parse(BufferReader& r) {
  if (!r.can_read(kWireBytes)) return std::nullopt;
  const auto version_ihl = r.read_u8();
  if (version_ihl != 0x45) return std::nullopt;
  r.skip(1);
  Ipv4Header h;
  h.total_length = r.read_u16();
  r.skip(4);
  h.ttl = r.read_u8();
  h.protocol = r.read_u8();
  r.skip(2);
  h.src = Ipv4Address(r.read_u32());
  h.dst = Ipv4Address(r.read_u32());
  return h;
}

std::uint8_t TcpFlags::to_byte() const {
  std::uint8_t b = 0;
  if (fin) b |= 0x01;
  if (syn) b |= 0x02;
  if (rst) b |= 0x04;
  if (ack) b |= 0x10;
  return b;
}

TcpFlags TcpFlags::from_byte(std::uint8_t b) {
  TcpFlags f;
  f.fin = (b & 0x01) != 0;
  f.syn = (b & 0x02) != 0;
  f.rst = (b & 0x04) != 0;
  f.ack = (b & 0x10) != 0;
  return f;
}

void TcpHeader::serialize(BufferWriter& w) const {
  w.write_u16(src_port);
  w.write_u16(dst_port);
  w.write_u32(seq);
  w.write_u32(ack);
  w.write_u8(5 << 4);  // data offset 5 words
  w.write_u8(flags.to_byte());
  w.write_u16(window);
  w.write_u16(0);  // checksum
  w.write_u16(0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::parse(BufferReader& r) {
  if (!r.can_read(kWireBytes)) return std::nullopt;
  TcpHeader h;
  h.src_port = r.read_u16();
  h.dst_port = r.read_u16();
  h.seq = r.read_u32();
  h.ack = r.read_u32();
  const auto offset = r.read_u8();
  if ((offset >> 4) != 5) return std::nullopt;
  h.flags = TcpFlags::from_byte(r.read_u8());
  h.window = r.read_u16();
  r.skip(4);
  return h;
}

void UdpHeader::serialize(BufferWriter& w) const {
  w.write_u16(src_port);
  w.write_u16(dst_port);
  w.write_u16(length);
  w.write_u16(0);  // checksum
}

std::optional<UdpHeader> UdpHeader::parse(BufferReader& r) {
  if (!r.can_read(kWireBytes)) return std::nullopt;
  UdpHeader h;
  h.src_port = r.read_u16();
  h.dst_port = r.read_u16();
  h.length = r.read_u16();
  r.skip(2);
  return h;
}

void DiscoveryHeader::serialize(BufferWriter& w) const {
  w.write_u8(static_cast<std::uint8_t>(kind));
  w.write_u8(hop_count);
  w.write_u16(request_id);
  w.write_u32(origin.value());
  w.write_u32(target.value());
}

std::optional<DiscoveryHeader> DiscoveryHeader::parse(BufferReader& r) {
  if (!r.can_read(kWireBytes)) return std::nullopt;
  DiscoveryHeader h;
  const auto kind = r.read_u8();
  if (kind != 1 && kind != 2) return std::nullopt;
  h.kind = static_cast<Kind>(kind);
  h.hop_count = r.read_u8();
  h.request_id = r.read_u16();
  h.origin = Ipv4Address(r.read_u32());
  h.target = Ipv4Address(r.read_u32());
  return h;
}

std::size_t Packet::wire_size() const {
  std::size_t size = Ipv4Header::kWireBytes + payload_bytes;
  if (tcp) size += TcpHeader::kWireBytes;
  if (udp) size += UdpHeader::kWireBytes;
  if (discovery) size += DiscoveryHeader::kWireBytes;
  return size;
}

bool Packet::is_pure_tcp_ack() const {
  if (!tcp) return false;
  if (payload_bytes != 0) return false;
  const auto& f = tcp->flags;
  return f.ack && !f.syn && !f.fin && !f.rst;
}

Bytes Packet::serialize() const {
  BufferWriter w(wire_size());
  ip.serialize(w);
  if (tcp) tcp->serialize(w);
  if (udp) udp->serialize(w);
  if (discovery) discovery->serialize(w);
  w.write_zeros(payload_bytes);
  return w.take();
}

std::optional<Packet> Packet::parse(BufferReader& r) {
  Packet p;
  if (!parse_into(r, p)) return std::nullopt;
  return p;
}

bool Packet::parse_into(BufferReader& r, Packet& out) {
  out.tcp.reset();
  out.udp.reset();
  out.discovery.reset();
  const auto ip = Ipv4Header::parse(r);
  if (!ip) return false;
  out.ip = *ip;
  std::size_t header_bytes = Ipv4Header::kWireBytes;
  if (out.ip.protocol == kProtoTcp) {
    const auto tcp = TcpHeader::parse(r);
    if (!tcp) return false;
    out.tcp = *tcp;
    header_bytes += TcpHeader::kWireBytes;
  } else if (out.ip.protocol == kProtoUdp) {
    const auto udp = UdpHeader::parse(r);
    if (!udp) return false;
    out.udp = *udp;
    header_bytes += UdpHeader::kWireBytes;
  } else if (out.ip.protocol == kProtoDiscovery) {
    const auto disc = DiscoveryHeader::parse(r);
    if (!disc) return false;
    out.discovery = *disc;
    header_bytes += DiscoveryHeader::kWireBytes;
  }
  if (out.ip.total_length < header_bytes) return false;
  const std::size_t payload = out.ip.total_length - header_bytes;
  if (!r.can_read(payload)) return false;
  r.skip(payload);
  out.payload_bytes = static_cast<std::uint32_t>(payload);
  return true;
}

std::shared_ptr<const Packet> Packet::parse_shared(BufferReader& r) {
  auto p = util::make_pooled<Packet>();
  if (!parse_into(r, *p)) return nullptr;
  return p;
}

std::shared_ptr<Packet> clone_packet(const Packet& p) {
  return util::make_pooled<Packet>(p);
}

namespace {

Packet base_packet(Ipv4Address src, Ipv4Address dst, std::uint8_t protocol,
                   std::uint32_t payload_bytes) {
  Packet p;
  p.ip.src = src;
  p.ip.dst = dst;
  p.ip.protocol = protocol;
  p.payload_bytes = payload_bytes;
  return p;
}

}  // namespace

PacketPtr make_udp_packet(Ipv4Address src, Ipv4Address dst, Port src_port,
                          Port dst_port, std::uint32_t payload_bytes) {
  auto p = base_packet(src, dst, kProtoUdp, payload_bytes);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length =
      static_cast<std::uint16_t>(UdpHeader::kWireBytes + payload_bytes);
  p.udp = udp;
  p.ip.total_length = static_cast<std::uint16_t>(p.wire_size());
  return util::make_pooled<Packet>(std::move(p));
}

PacketPtr make_tcp_packet(Ipv4Address src, Ipv4Address dst, Port src_port,
                          Port dst_port, std::uint32_t seq, std::uint32_t ack,
                          TcpFlags flags, std::uint16_t window,
                          std::uint32_t payload_bytes) {
  auto p = base_packet(src, dst, kProtoTcp, payload_bytes);
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.seq = seq;
  tcp.ack = ack;
  tcp.flags = flags;
  tcp.window = window;
  p.tcp = tcp;
  p.ip.total_length = static_cast<std::uint16_t>(p.wire_size());
  return util::make_pooled<Packet>(std::move(p));
}

PacketPtr make_flood_packet(Ipv4Address src, std::uint32_t payload_bytes) {
  auto p = base_packet(src, Ipv4Address::broadcast(), kProtoFlood,
                       payload_bytes);
  p.ip.total_length = static_cast<std::uint16_t>(p.wire_size());
  return util::make_pooled<Packet>(std::move(p));
}

PacketPtr make_discovery_packet(Ipv4Address src, Ipv4Address dst,
                                const DiscoveryHeader& header,
                                std::uint8_t ttl) {
  auto p = base_packet(src, dst, kProtoDiscovery, 0);
  p.discovery = header;
  p.ip.ttl = ttl;
  p.ip.total_length = static_cast<std::uint16_t>(p.wire_size());
  return util::make_pooled<Packet>(std::move(p));
}

}  // namespace hydra::proto
