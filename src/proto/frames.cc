#include "proto/frames.h"

#include <numeric>

#include "util/assert.h"
#include "util/crc32.h"

namespace hydra::proto {
namespace {

// Frame control encoding: low 2 bits = type, bit 2 = retry.
std::uint16_t frame_control(FrameType type, bool retry) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(type) |
                                    (retry ? 0x04 : 0x00));
}

void write_mac_address(BufferWriter& w, MacAddress a) {
  // 6-byte wire format; the simulation uses the low 2 bytes.
  w.write_u32(0);
  w.write_u16(a.value());
}

MacAddress read_mac_address(BufferReader& r) {
  r.skip(4);
  return MacAddress(r.read_u16());
}

}  // namespace

Bytes MacSubframe::serialize() const {
  BufferWriter w(wire_bytes());
  w.write_u16(frame_control(type, retry));
  w.write_u16(duration_units);
  write_mac_address(w, receiver);
  write_mac_address(w, transmitter);
  write_mac_address(w, source);
  w.write_u16(sequence);
  const auto pkt_bytes = packet_bytes();
  w.write_u16(static_cast<std::uint16_t>(kEncapBytes + pkt_bytes));
  w.write_zeros(kEncapBytes);
  if (packet) w.write_bytes(packet->serialize());
  // FCS covers header + payload.
  const auto fcs = crc32(w.view());
  w.write_u32(fcs);
  const auto total = wire_bytes();
  HYDRA_ASSERT(w.size() <= total);
  w.write_zeros(total - w.size());
  return w.take();
}

std::optional<MacSubframe> MacSubframe::parse(BufferReader& r) {
  if (!r.can_read(kMacHeaderBytes)) return std::nullopt;
  const auto start = r.position();
  MacSubframe sf;
  const auto fc = r.read_u16();
  if ((fc & 0x03) != static_cast<std::uint16_t>(FrameType::kData)) {
    return std::nullopt;
  }
  sf.retry = (fc & 0x04) != 0;
  sf.duration_units = r.read_u16();
  sf.receiver = read_mac_address(r);
  sf.transmitter = read_mac_address(r);
  sf.source = read_mac_address(r);
  sf.sequence = r.read_u16();
  const auto payload_len = r.read_u16();
  if (payload_len < kEncapBytes) return std::nullopt;
  if (!r.can_read(payload_len + kFcsBytes)) return std::nullopt;
  r.skip(kEncapBytes);

  const std::size_t pkt_bytes = payload_len - kEncapBytes;
  if (pkt_bytes > 0) {
    const auto pkt_start = r.position();
    // Deserialize straight into pooled shared storage: one allocation,
    // no intermediate stack Packet.
    sf.packet = Packet::parse_shared(r);
    if (!sf.packet) return std::nullopt;
    if (r.position() - pkt_start != pkt_bytes) return std::nullopt;
  }

  // Verify the FCS over header + payload, exactly the span serialize()
  // covered.
  const auto covered = r.position() - start;
  const auto fcs = r.read_u32();
  if (fcs != crc32(r.slice(start, covered))) return std::nullopt;

  // Consume padding up to the wire size.
  const auto total = subframe_wire_bytes(pkt_bytes);
  const auto consumed = r.position() - start;
  if (consumed > total || !r.can_read(total - consumed)) return std::nullopt;
  r.skip(total - consumed);
  return sf;
}

std::size_t ControlFrame::wire_bytes() const {
  switch (type) {
    case FrameType::kRts: return kRtsBytes;
    case FrameType::kCts: return kCtsBytes;
    case FrameType::kAck: return has_block_ack ? kBlockAckBytes : kAckBytes;
    case FrameType::kData: break;
  }
  HYDRA_UNREACHABLE("data is not a control frame");
}

Bytes ControlFrame::serialize() const {
  BufferWriter w(wire_bytes());
  w.write_u16(frame_control(type, false));
  w.write_u16(duration_units);
  write_mac_address(w, receiver);
  if (type == FrameType::kRts) {
    write_mac_address(w, transmitter);
  }
  if (type == FrameType::kAck && has_block_ack) {
    w.write_u64(block_ack_bitmap);
  }
  // FCS over the body.
  const auto fcs = crc32(w.view());
  w.write_u32(fcs);
  HYDRA_ASSERT(w.size() == wire_bytes());
  return w.take();
}

std::optional<ControlFrame> ControlFrame::parse(BufferReader& r) {
  if (!r.can_read(4)) return std::nullopt;
  const auto start = r.position();
  ControlFrame f;
  const auto fc = r.read_u16();
  f.type = static_cast<FrameType>(fc & 0x03);
  if (f.type == FrameType::kData) return std::nullopt;
  f.duration_units = r.read_u16();
  if (!r.can_read(6)) return std::nullopt;
  f.receiver = read_mac_address(r);
  if (f.type == FrameType::kRts) {
    if (!r.can_read(6)) return std::nullopt;
    f.transmitter = read_mac_address(r);
  }
  // Distinguish plain ACK from block-ACK by remaining length.
  if (f.type == FrameType::kAck && r.remaining() >= 12) {
    f.has_block_ack = true;
    f.block_ack_bitmap = r.read_u64();
  }
  if (!r.can_read(kFcsBytes)) return std::nullopt;
  const auto covered = r.position() - start;
  const auto fcs = r.read_u32();
  if (fcs != crc32(r.slice(start, covered))) return std::nullopt;
  return f;
}

MacAddress AggregateFrame::unicast_receiver() const {
  HYDRA_ASSERT(has_unicast());
  return unicast.front().receiver;
}

std::size_t AggregateFrame::total_wire_bytes() const {
  const auto sum = [](std::size_t acc, const MacSubframe& sf) {
    return acc + sf.wire_bytes();
  };
  return std::accumulate(broadcast.begin(), broadcast.end(), std::size_t{0},
                         sum) +
         std::accumulate(unicast.begin(), unicast.end(), std::size_t{0}, sum);
}

}  // namespace hydra::proto
