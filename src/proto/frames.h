// MAC wire formats: the subframe layout of the paper's Fig. 4, control
// frames, and the aggregate (Fig. 1 / Fig. 2 payload carried by the PHY).
//
// Subframe layout on the wire:
//
//   | frame control (2) | duration (2) | addr1 (6) | addr2 (6) | addr3 (6)
//   | sequence control (2) | length (2) | encapsulation (34)
//   | L3 packet (length bytes) | FCS (4)
//   | PAD (to 4-byte boundary, minimum subframe 160 bytes) |
//
// The 34-byte encapsulation block and the 160-byte minimum are calibrated
// to the frame sizes the paper reports: a 1357-byte TCP MSS yields a
// 1464-byte MAC frame, a pure TCP ACK a 160-byte frame, and the UDP
// workload 1140-byte frames (paper §5).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "proto/mac_address.h"
#include "proto/packet.h"

namespace hydra::proto {

enum class FrameType : std::uint8_t { kData = 0, kRts = 1, kCts = 2, kAck = 3 };

// Fixed wire-size constants (bytes).
inline constexpr std::size_t kMacHeaderBytes = 26;  // FC+dur+3 addr+seq+len
inline constexpr std::size_t kFcsBytes = 4;
inline constexpr std::size_t kEncapBytes = 34;  // LLC + prototype shim
inline constexpr std::size_t kMinSubframeBytes = 160;
inline constexpr std::size_t kSubframeAlign = 4;
inline constexpr std::size_t kRtsBytes = 20;
inline constexpr std::size_t kCtsBytes = 14;
inline constexpr std::size_t kAckBytes = 14;
// Block-ACK response (extension): ACK + 8-byte subframe bitmap.
inline constexpr std::size_t kBlockAckBytes = 22;

// Wire size of a data subframe carrying `packet_bytes` of L3 packet.
constexpr std::size_t subframe_wire_bytes(std::size_t packet_bytes) {
  const std::size_t raw =
      kMacHeaderBytes + kEncapBytes + packet_bytes + kFcsBytes;
  const std::size_t padded = raw < kMinSubframeBytes ? kMinSubframeBytes : raw;
  return (padded + kSubframeAlign - 1) / kSubframeAlign * kSubframeAlign;
}

// Duration field: microseconds of medium reservation remaining after this
// frame, in units of 8 us (16-bit field covers the longest aggregates).
constexpr std::uint16_t encode_duration_us(std::int64_t us) {
  const std::int64_t units = (us + 7) / 8;
  return units > 0xffff ? 0xffff : static_cast<std::uint16_t>(units);
}
constexpr std::int64_t decode_duration_us(std::uint16_t units) {
  return std::int64_t{units} * 8;
}

// One MAC subframe: header fields + the L3 packet it carries.
struct MacSubframe {
  FrameType type = FrameType::kData;
  bool retry = false;
  std::uint16_t duration_units = 0;  // encode_duration_us
  MacAddress receiver;      // addr1: link-layer next hop
  MacAddress transmitter;   // addr2: link-layer sender
  MacAddress source;        // addr3: originating node
  // Per-transmitter sequence number; retransmissions keep it, so the
  // receiver can suppress duplicates after a lost link-level ACK.
  std::uint16_t sequence = 0;
  PacketPtr packet;

  std::size_t packet_bytes() const { return packet ? packet->wire_size() : 0; }
  std::size_t wire_bytes() const { return subframe_wire_bytes(packet_bytes()); }

  // Serializes the subframe, including a correct FCS and padding.
  Bytes serialize() const;
  // Parses one subframe; returns nullopt on truncation, malformed header
  // or FCS mismatch. Consumes exactly wire_bytes() on success.
  static std::optional<MacSubframe> parse(BufferReader& r);
};

// RTS / CTS / ACK / Block-ACK.
struct ControlFrame {
  FrameType type = FrameType::kAck;
  MacAddress receiver;
  MacAddress transmitter;  // absent on wire for CTS/ACK; kept for tracing
  std::uint16_t duration_units = 0;
  // Extension (paper §7 future work): per-subframe ACK bitmap. Bit i set
  // means unicast subframe i was received correctly. Only meaningful when
  // type == kAck and the block-ACK scheme is enabled.
  std::uint64_t block_ack_bitmap = 0;
  bool has_block_ack = false;

  std::size_t wire_bytes() const;
  Bytes serialize() const;
  static std::optional<ControlFrame> parse(BufferReader& r);
};

// The aggregate handed to the PHY: broadcast subframes first, then unicast
// subframes all addressed to one receiver (paper Fig. 2).
struct AggregateFrame {
  // Subframe storage recycles through the BufferPool: aggregates are
  // built and torn down once per transmission, squarely on the hot path.
  using SubframeVec = util::PooledVector<MacSubframe>;

  SubframeVec broadcast;
  SubframeVec unicast;

  bool has_unicast() const { return !unicast.empty(); }
  bool empty() const { return broadcast.empty() && unicast.empty(); }
  std::size_t subframe_count() const {
    return broadcast.size() + unicast.size();
  }
  // Receiver of the unicast portion (asserts has_unicast()).
  MacAddress unicast_receiver() const;
  // Total MAC bytes (all subframes with headers, FCS and padding).
  std::size_t total_wire_bytes() const;
};

}  // namespace hydra::proto
