// The forwarding plane: local delivery, multi-hop forwarding with TTL,
// and broadcast handling.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "mac/mac.h"
#include "net/routing.h"
#include "proto/packet.h"

namespace hydra::net {

class Ipv4Stack {
 public:
  Ipv4Stack(proto::Ipv4Address self, mac::Mac& mac, RoutingTable& routes);

  Ipv4Stack(const Ipv4Stack&) = delete;
  Ipv4Stack& operator=(const Ipv4Stack&) = delete;

  // From transport: route and hand to the MAC.
  void send(proto::PacketPtr packet);

  // From the MAC: deliver locally, forward, or hand to the flood sink.
  void on_mac_deliver(proto::PacketPtr packet, proto::MacAddress transmitter);

  // Locally-addressed unicast packets (to the transport mux).
  std::function<void(const proto::PacketPtr&)> deliver_local;
  // Link-broadcast datagrams (flooding traffic terminates here; the
  // paper's generators do not re-flood).
  std::function<void(const proto::PacketPtr&)> on_broadcast;

  // Per-protocol handler consulted before the default local/broadcast
  // delivery; receives the link-layer transmitter (previous hop). Route
  // discovery registers itself this way.
  using ProtocolHandler =
      std::function<void(const proto::PacketPtr&, proto::MacAddress from)>;
  void register_protocol(std::uint8_t protocol, ProtocolHandler handler);

  // Observer invoked for every packet this node forwards (previous hop
  // included); discovery snoops RREPs here to learn forward routes.
  std::function<void(const proto::PacketPtr&, proto::MacAddress from)> on_forward;

  // Loss-injection hook, consulted on every transmit (originated and
  // forwarded) with the packet and the resolved next hop. Returning true
  // drops the packet before it reaches the MAC — modelling a channel
  // loss the MAC never sees (no retries, no MAC-level recovery), which
  // is exactly the error class CERL's differentiator targets. Installed
  // by the experiment driver from ExperimentConfig::losses; must be
  // deterministic (counter-based, never random).
  using DropFilter =
      std::function<bool(const proto::Packet&, proto::Ipv4Address next_hop)>;
  DropFilter drop_filter;

  proto::Ipv4Address address() const { return self_; }
  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t ttl_drops() const { return ttl_drops_; }
  // Packets the drop_filter discarded on this node.
  std::uint64_t injected_drops() const { return injected_drops_; }
  // Packet deep copies this stack made because a header had to mutate
  // (TTL on forward). Read-only paths never clone, so this equals
  // forwarded(): the zero-copy regression tests pin both.
  std::uint64_t header_clones() const { return header_clones_; }

 private:
  void transmit(const proto::PacketPtr& packet);

  proto::Ipv4Address self_;
  mac::Mac& mac_;
  RoutingTable& routes_;
  std::map<std::uint8_t, ProtocolHandler> protocol_handlers_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t ttl_drops_ = 0;
  std::uint64_t header_clones_ = 0;
  std::uint64_t injected_drops_ = 0;
};

}  // namespace hydra::net
