#include "net/node.h"

namespace hydra::net {

namespace {

phy::PhyConfig make_phy_config(const NodeConfig& config) {
  phy::PhyConfig pc;
  pc.position = config.position;
  pc.tx_power_dbm = config.tx_power_dbm;
  return pc;
}

mac::MacConfig make_mac_config(std::uint32_t index, const NodeConfig& config) {
  mac::MacConfig mc;
  mc.address = proto::MacAddress::for_node(index);
  mc.policy = config.policy;
  mc.unicast_mode = config.unicast_mode;
  mc.broadcast_mode = config.broadcast_mode;
  mc.use_rts_cts = config.use_rts_cts;
  mc.queue_limit = config.queue_limit;
  mc.rate_adaptation = config.rate_adaptation;
  mc.neighbors = config.neighbors;
  return mc;
}

}  // namespace

Node::Node(sim::Simulation& simulation, phy::Medium& medium,
           std::uint32_t index, const NodeConfig& config)
    : sim_(simulation),
      index_(index),
      phy_(simulation, medium, make_phy_config(config), index),
      mac_(simulation, phy_, make_mac_config(index, config)),
      stack_(proto::Ipv4Address::for_node(index), mac_, routes_) {}

}  // namespace hydra::net
