// A complete simulated node: PHY, MAC (with aggregation), IP forwarding,
// transport mux. Construction wires every layer together.
#pragma once

#include <cstdint>
#include <memory>

#include "mac/mac.h"
#include "net/ipv4_stack.h"
#include "net/routing.h"
#include "phy/medium.h"
#include "phy/phy.h"
#include "sim/simulation.h"
#include "transport/mux.h"

namespace hydra::net {

struct NodeConfig {
  phy::Position position;
  core::AggregationPolicy policy;
  phy::PhyMode unicast_mode = phy::base_mode();
  phy::PhyMode broadcast_mode = phy::base_mode();
  bool use_rts_cts = true;
  std::size_t queue_limit = 64;
  double tx_power_dbm = 8.86;  // 7.7 mW
  mac::RateAdaptationScheme rate_adaptation = mac::RateAdaptationScheme::kNone;
  // Optional forced-topology link whitelist (see mac::MacConfig).
  std::vector<mac::MacAddress> neighbors;
};

class Node {
 public:
  Node(sim::Simulation& simulation, phy::Medium& medium, std::uint32_t index,
       const NodeConfig& config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  std::uint32_t index() const { return index_; }
  Ipv4Address ip() const { return Ipv4Address::for_node(index_); }
  mac::MacAddress link_address() const {
    return mac::MacAddress::for_node(index_);
  }

  phy::Phy& phy() { return phy_; }
  mac::Mac& mac() { return mac_; }
  Ipv4Stack& stack() { return stack_; }
  transport::TransportMux& transport() { return mux_; }
  RoutingTable& routes() { return routes_; }
  const mac::MacStats& mac_stats() const { return mac_.stats(); }

 private:
  std::uint32_t index_;
  phy::Phy phy_;
  mac::Mac mac_;
  RoutingTable routes_;
  Ipv4Stack stack_;
  transport::TransportMux mux_;
};

}  // namespace hydra::net
