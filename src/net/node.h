// A complete simulated node: PHY, MAC (with aggregation), IP forwarding.
// Construction wires the layers together; anything above the net layer
// (transport mux, applications) hooks in through the stack callbacks and
// the typed attachment slots, so this header never names upper layers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <typeindex>

#include "mac/mac.h"
#include "net/ipv4_stack.h"
#include "net/routing.h"
#include "phy/medium.h"
#include "phy/phy.h"
#include "sim/simulation.h"

namespace hydra::net {

struct NodeConfig {
  phy::Position position;
  core::AggregationPolicy policy;
  proto::PhyMode unicast_mode = proto::base_mode();
  proto::PhyMode broadcast_mode = proto::base_mode();
  bool use_rts_cts = true;
  std::size_t queue_limit = 64;
  double tx_power_dbm = 8.86;  // 7.7 mW
  mac::RateAdaptationScheme rate_adaptation = mac::RateAdaptationScheme::kNone;
  // Optional forced-topology link whitelist (see mac::MacConfig).
  std::vector<proto::MacAddress> neighbors;
};

class Node {
 public:
  Node(sim::Simulation& simulation, phy::Medium& medium, std::uint32_t index,
       const NodeConfig& config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  std::uint32_t index() const { return index_; }
  proto::Ipv4Address ip() const { return proto::Ipv4Address::for_node(index_); }
  proto::MacAddress link_address() const {
    return proto::MacAddress::for_node(index_);
  }

  sim::Simulation& simulation() { return sim_; }
  phy::Phy& phy() { return phy_; }
  mac::Mac& mac() { return mac_; }
  Ipv4Stack& stack() { return stack_; }
  RoutingTable& routes() { return routes_; }
  const mac::MacStats& mac_stats() const { return mac_.stats(); }

  // Typed per-node slot for upper-layer state (the transport mux, say):
  // the first call for a type T constructs it via `make` (returning a
  // unique_ptr<T>), later calls return the same instance. Attachments
  // share the node's lifetime. See transport::mux_of for the idiom.
  template <typename T, typename Make>
  T& attachment(Make&& make) {
    auto& slot = attachments_[std::type_index(typeid(T))];
    if (!slot) slot = std::shared_ptr<void>(make());
    return *static_cast<T*>(slot.get());
  }

 private:
  sim::Simulation& sim_;
  std::uint32_t index_;
  phy::Phy phy_;
  mac::Mac mac_;
  RoutingTable routes_;
  Ipv4Stack stack_;
  // Declared last: attachments wire themselves into stack_ callbacks, so
  // they must be destroyed before the layers they hook into.
  std::map<std::type_index, std::shared_ptr<void>> attachments_;
};

}  // namespace hydra::net
