#include "net/routing.h"

namespace hydra::net {

mac::MacAddress mac_for(Ipv4Address ip) {
  if (ip.is_broadcast()) return mac::MacAddress::broadcast();
  // Node i has IP 10.0.0.(i+1) and MAC address (i+1).
  return mac::MacAddress(static_cast<std::uint16_t>(ip.value() & 0xff));
}

void RoutingTable::add_route(Ipv4Address dst, Ipv4Address next_hop) {
  routes_[dst] = next_hop;
}

Ipv4Address RoutingTable::next_hop(Ipv4Address dst) const {
  if (const auto it = routes_.find(dst); it != routes_.end()) {
    return it->second;
  }
  return dst;
}

}  // namespace hydra::net
