#include "net/routing.h"

namespace hydra::net {

proto::MacAddress mac_for(proto::Ipv4Address ip) {
  if (ip.is_broadcast()) return proto::MacAddress::broadcast();
  // Node i has IP 10.0.0.(i+1) and MAC address (i+1).
  return proto::MacAddress(static_cast<std::uint16_t>(ip.value() & 0xff));
}

void RoutingTable::add_route(proto::Ipv4Address dst, proto::Ipv4Address next_hop) {
  routes_[dst] = next_hop;
}

proto::Ipv4Address RoutingTable::next_hop(proto::Ipv4Address dst) const {
  if (const auto it = routes_.find(dst); it != routes_.end()) {
    return it->second;
  }
  return dst;
}

}  // namespace hydra::net
