#include "net/ipv4_stack.h"

#include "util/assert.h"

namespace hydra::net {

Ipv4Stack::Ipv4Stack(proto::Ipv4Address self, mac::Mac& mac, RoutingTable& routes)
    : self_(self), mac_(mac), routes_(routes) {
  mac_.on_deliver = [this](proto::PacketPtr packet, proto::MacAddress transmitter) {
    on_mac_deliver(std::move(packet), transmitter);
  };
}

void Ipv4Stack::transmit(const proto::PacketPtr& packet) {
  const auto next_hop = routes_.next_hop(packet->ip.dst);
  if (drop_filter && drop_filter(*packet, next_hop)) {
    ++injected_drops_;
    return;
  }
  mac_.enqueue(packet, mac_for(next_hop), mac_for(packet->ip.src));
}

void Ipv4Stack::send(proto::PacketPtr packet) {
  HYDRA_ASSERT(packet != nullptr);
  transmit(packet);
}

void Ipv4Stack::register_protocol(std::uint8_t protocol,
                                  ProtocolHandler handler) {
  HYDRA_ASSERT(handler != nullptr);
  protocol_handlers_[protocol] = std::move(handler);
}

void Ipv4Stack::on_mac_deliver(proto::PacketPtr packet,
                               proto::MacAddress transmitter) {
  HYDRA_ASSERT(packet != nullptr);
  const bool local =
      packet->ip.dst.is_broadcast() || packet->ip.dst == self_;
  if (local) {
    if (const auto it = protocol_handlers_.find(packet->ip.protocol);
        it != protocol_handlers_.end()) {
      it->second(packet, transmitter);
      return;
    }
  }
  if (packet->ip.dst.is_broadcast()) {
    if (on_broadcast) on_broadcast(packet);
    return;
  }
  if (packet->ip.dst == self_) {
    if (deliver_local) deliver_local(packet);
    return;
  }
  // Forward: decrement TTL and re-route.
  if (packet->ip.ttl <= 1) {
    ++ttl_drops_;
    return;
  }
  if (on_forward) on_forward(packet, transmitter);
  // Copy-on-write: forwarding is the one path that mutates a shared
  // packet (the TTL decrement), so it takes exactly one pooled clone
  // per hop; local delivery, broadcast and protocol handlers above
  // share the incoming PacketPtr with zero copies. header_clones_
  // pins that contract (see the chain-forwarding regression test).
  auto copy = proto::clone_packet(*packet);
  copy->ip.ttl -= 1;
  ++forwarded_;
  ++header_clones_;
  transmit(std::move(copy));
}

}  // namespace hydra::net
