// Static routing, as in the paper's experiments ("we used static routing
// to force the topologies"): destination address -> next-hop address.
#pragma once

#include <map>
#include <optional>

#include "proto/ip_address.h"
#include "proto/mac_address.h"

namespace hydra::net {

// Maps a node's IP to its link-layer address (nodes are numbered, so the
// mapping is algebraic — no ARP needed).
mac::MacAddress mac_for(Ipv4Address ip);

class RoutingTable {
 public:
  // Installs or replaces the route `dst -> next_hop`.
  void add_route(Ipv4Address dst, Ipv4Address next_hop);

  // Next hop toward `dst`: an explicit route if present, otherwise `dst`
  // itself (direct neighbour delivery).
  Ipv4Address next_hop(Ipv4Address dst) const;

  bool has_route(Ipv4Address dst) const { return routes_.contains(dst); }
  std::size_t size() const { return routes_.size(); }

 private:
  std::map<Ipv4Address, Ipv4Address> routes_;
};

}  // namespace hydra::net
