// Static routing, as in the paper's experiments ("we used static routing
// to force the topologies"): destination address -> next-hop address.
#pragma once

#include <map>
#include <optional>

#include "proto/ip_address.h"
#include "proto/mac_address.h"

namespace hydra::net {

// Maps a node's IP to its link-layer address (nodes are numbered, so the
// mapping is algebraic — no ARP needed).
proto::MacAddress mac_for(proto::Ipv4Address ip);

class RoutingTable {
 public:
  // Installs or replaces the route `dst -> next_hop`.
  void add_route(proto::Ipv4Address dst, proto::Ipv4Address next_hop);

  // Next hop toward `dst`: an explicit route if present, otherwise `dst`
  // itself (direct neighbour delivery).
  proto::Ipv4Address next_hop(proto::Ipv4Address dst) const;

  bool has_route(proto::Ipv4Address dst) const { return routes_.contains(dst); }
  std::size_t size() const { return routes_.size(); }

 private:
  std::map<proto::Ipv4Address, proto::Ipv4Address> routes_;
};

}  // namespace hydra::net
