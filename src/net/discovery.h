// On-demand route discovery (AODV-style), the control protocol the paper
// cites as the motivation for broadcast aggregation (§3.2: "dynamic
// source routing and ad-hoc on-demand distance vector routing protocols
// use broadcast frames for route discovery and maintenance").
//
// Protocol:
//  - discover(target): broadcast an RREQ carrying (origin, target,
//    request id, hop count).
//  - Every node hearing a new RREQ installs a reverse route to the
//    origin via the previous hop and re-broadcasts once (duplicate
//    (origin, id) pairs are suppressed; a hop cap bounds the flood).
//  - The target answers with a unicast RREP routed back along the
//    reverse path; every node forwarding the RREP installs the forward
//    route to the target via the hop it heard the RREP from.
//  - The origin's pending request resolves when the RREP arrives, or
//    fails on timeout (with bounded retries).
//
// RREQ broadcasts are exactly the traffic class the paper's broadcast
// aggregation accelerates: with BA enabled they ride in the broadcast
// portion of whatever data frames are already flowing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>

#include "net/node.h"
#include "sim/timer.h"

namespace hydra::net {

struct DiscoveryConfig {
  std::uint8_t max_hops = 8;
  sim::Duration request_timeout = sim::Duration::millis(500);
  unsigned max_retries = 2;
};

class RouteDiscovery {
 public:
  using ResultCallback = std::function<void(bool found)>;

  RouteDiscovery(sim::Simulation& simulation, Node& node,
                 DiscoveryConfig config = {});

  RouteDiscovery(const RouteDiscovery&) = delete;
  RouteDiscovery& operator=(const RouteDiscovery&) = delete;

  // Starts (or restarts) discovery of a route to `target`. The callback
  // fires once: true when an RREP installed the route, false after the
  // retries are exhausted. A route that already exists resolves
  // immediately.
  void discover(proto::Ipv4Address target, ResultCallback on_result);

  // Counters.
  std::uint64_t rreqs_sent() const { return rreqs_sent_; }
  std::uint64_t rreqs_relayed() const { return rreqs_relayed_; }
  std::uint64_t rreqs_suppressed() const { return rreqs_suppressed_; }
  std::uint64_t rreps_sent() const { return rreps_sent_; }
  std::uint64_t routes_learned() const { return routes_learned_; }

 private:
  struct Pending {
    proto::Ipv4Address target;
    std::uint16_t request_id;
    unsigned attempts = 0;
    ResultCallback on_result;
  };

  void handle_message(const proto::PacketPtr& packet, proto::MacAddress from);
  void handle_rreq(const proto::Packet& packet, proto::MacAddress from);
  void handle_rrep(const proto::Packet& packet, proto::MacAddress from);
  void send_rreq();
  void on_timeout();
  void learn_route(proto::Ipv4Address dst, proto::MacAddress via);
  bool seen_before(proto::Ipv4Address origin, std::uint16_t id);

  sim::Simulation& sim_;
  Node& node_;
  DiscoveryConfig config_;

  std::uint16_t next_request_id_ = 1;
  std::optional<Pending> pending_;
  sim::Timer timeout_timer_;

  // Duplicate-RREQ suppression, bounded FIFO of (origin, id).
  std::set<std::uint64_t> seen_;
  std::deque<std::uint64_t> seen_fifo_;

  std::uint64_t rreqs_sent_ = 0;
  std::uint64_t rreqs_relayed_ = 0;
  std::uint64_t rreqs_suppressed_ = 0;
  std::uint64_t rreps_sent_ = 0;
  std::uint64_t routes_learned_ = 0;
};

// Link address -> node IP (inverse of mac_for).
proto::Ipv4Address ip_for(proto::MacAddress address);

}  // namespace hydra::net
