#include "net/discovery.h"

#include "util/assert.h"

namespace hydra::net {

proto::Ipv4Address ip_for(proto::MacAddress address) {
  HYDRA_ASSERT(!address.is_broadcast());
  // Node i has MAC (i+1) and IP 10.0.0.(i+1).
  return proto::Ipv4Address::from_octets(
      10, 0, 0, static_cast<std::uint8_t>(address.value() & 0xff));
}

RouteDiscovery::RouteDiscovery(sim::Simulation& simulation, Node& node,
                               DiscoveryConfig config)
    : sim_(simulation),
      node_(node),
      config_(config),
      timeout_timer_(simulation.scheduler(), [this] { on_timeout(); }) {
  timeout_timer_.set_affinity(node.phy().id());
  node_.stack().register_protocol(
      proto::kProtoDiscovery,
      [this](const proto::PacketPtr& packet, proto::MacAddress from) {
        handle_message(packet, from);
      });
  // Snoop forwarded RREPs to learn the forward route to the target.
  node_.stack().on_forward = [this](const proto::PacketPtr& packet,
                                    proto::MacAddress from) {
    if (packet->discovery &&
        packet->discovery->kind == proto::DiscoveryHeader::Kind::kRrep) {
      learn_route(packet->discovery->target, from);
    }
  };
}

void RouteDiscovery::discover(proto::Ipv4Address target, ResultCallback on_result) {
  HYDRA_ASSERT_MSG(!pending_.has_value(), "discovery already in progress");
  if (node_.routes().has_route(target) || target == node_.ip()) {
    if (on_result) on_result(true);
    return;
  }
  pending_ = Pending{target, next_request_id_++, 0, std::move(on_result)};
  send_rreq();
}

void RouteDiscovery::send_rreq() {
  HYDRA_ASSERT(pending_.has_value());
  ++pending_->attempts;
  ++rreqs_sent_;
  proto::DiscoveryHeader h;
  h.kind = proto::DiscoveryHeader::Kind::kRreq;
  h.request_id = pending_->request_id;
  h.origin = node_.ip();
  h.target = pending_->target;
  h.hop_count = 0;
  // Remember our own request so our re-broadcast suppression ignores
  // echoes of it.
  seen_before(h.origin, h.request_id);
  node_.stack().send(proto::make_discovery_packet(
      node_.ip(), proto::Ipv4Address::broadcast(), h, config_.max_hops));
  timeout_timer_.arm(config_.request_timeout);
}

void RouteDiscovery::on_timeout() {
  if (!pending_) return;
  if (pending_->attempts <= config_.max_retries) {
    // Retry under a fresh id so relays' duplicate suppression (which has
    // already seen the previous flood) lets it through.
    pending_->request_id = next_request_id_++;
    send_rreq();
    return;
  }
  auto cb = std::move(pending_->on_result);
  pending_.reset();
  if (cb) cb(false);
}

bool RouteDiscovery::seen_before(proto::Ipv4Address origin, std::uint16_t id) {
  const std::uint64_t key =
      (std::uint64_t{origin.value()} << 16) | id;
  if (!seen_.insert(key).second) return true;
  seen_fifo_.push_back(key);
  constexpr std::size_t kWindow = 512;
  if (seen_fifo_.size() > kWindow) {
    seen_.erase(seen_fifo_.front());
    seen_fifo_.pop_front();
  }
  return false;
}

void RouteDiscovery::learn_route(proto::Ipv4Address dst, proto::MacAddress via) {
  if (dst == node_.ip()) return;
  const auto next_hop = ip_for(via);
  if (next_hop == dst && node_.routes().has_route(dst)) return;
  node_.routes().add_route(dst, next_hop);
  ++routes_learned_;
}

void RouteDiscovery::handle_message(const proto::PacketPtr& packet,
                                    proto::MacAddress from) {
  HYDRA_ASSERT(packet->discovery.has_value());
  if (packet->discovery->kind == proto::DiscoveryHeader::Kind::kRreq) {
    handle_rreq(*packet, from);
  } else {
    handle_rrep(*packet, from);
  }
}

void RouteDiscovery::handle_rreq(const proto::Packet& packet, proto::MacAddress from) {
  const auto& h = *packet.discovery;
  if (h.origin == node_.ip()) return;  // echo of our own flood
  if (seen_before(h.origin, h.request_id)) {
    ++rreqs_suppressed_;
    return;
  }
  // Reverse route toward the origin via the node we heard this from.
  learn_route(h.origin, from);

  if (h.target == node_.ip()) {
    // We are the destination: answer along the reverse path.
    proto::DiscoveryHeader reply;
    reply.kind = proto::DiscoveryHeader::Kind::kRrep;
    reply.request_id = h.request_id;
    reply.origin = h.origin;
    reply.target = node_.ip();
    reply.hop_count = 0;
    ++rreps_sent_;
    node_.stack().send(proto::make_discovery_packet(node_.ip(), h.origin, reply));
    return;
  }
  // The flood's hop budget travels in the IP TTL (set by the origin).
  if (packet.ip.ttl <= 1) return;

  // Relay the flood once, with the hop count bumped.
  proto::DiscoveryHeader relayed = h;
  relayed.hop_count = static_cast<std::uint8_t>(h.hop_count + 1);
  ++rreqs_relayed_;
  node_.stack().send(proto::make_discovery_packet(
      packet.ip.src, proto::Ipv4Address::broadcast(), relayed,
      static_cast<std::uint8_t>(packet.ip.ttl - 1)));
}

void RouteDiscovery::handle_rrep(const proto::Packet& packet, proto::MacAddress from) {
  const auto& h = *packet.discovery;
  // Forward route to the target via whoever handed us the RREP.
  learn_route(h.target, from);
  if (!pending_ || pending_->target != h.target) return;
  timeout_timer_.cancel();
  auto cb = std::move(pending_->on_result);
  pending_.reset();
  if (cb) cb(true);
}

}  // namespace hydra::net
