#include "mac/rate_adaptation.h"

#include <algorithm>

#include "util/assert.h"

namespace hydra::mac {

ArfAdapter::ArfAdapter(ArfConfig config, std::size_t initial_index)
    : config_(config), index_(initial_index) {
  HYDRA_ASSERT(config.min_index <= config.max_index);
  HYDRA_ASSERT(config.max_index < proto::hydra_modes().size());
  index_ = std::clamp(index_, config_.min_index, config_.max_index);
}

void ArfAdapter::on_tx_result(bool success) {
  if (success) {
    probing_ = false;
    failures_ = 0;
    if (++successes_ >= config_.success_threshold &&
        index_ < config_.max_index) {
      ++index_;
      ++raises_;
      successes_ = 0;
      probing_ = true;  // next failure falls back immediately
    }
    return;
  }
  successes_ = 0;
  ++failures_;
  const bool fall = probing_ || failures_ >= config_.failure_threshold;
  probing_ = false;
  if (fall && index_ > config_.min_index) {
    --index_;
    ++falls_;
    failures_ = 0;
  }
}

SnrAdapter::SnrAdapter(SnrConfig config, std::size_t initial_index)
    : config_(config), index_(initial_index) {
  HYDRA_ASSERT(config.min_index <= config.max_index);
  HYDRA_ASSERT(config.max_index < proto::hydra_modes().size());
  index_ = std::clamp(index_, config_.min_index, config_.max_index);
}

void SnrAdapter::on_feedback_snr(double snr_db) {
  last_snr_db_ = snr_db;
  // Fastest mode whose required SNR clears the feedback by the margin,
  // selected by *rate*, not by table position: the mode table happens to
  // be rate-sorted today, but a reordered or extended table must never
  // make the adapter pick a slower qualifying mode. Falls back to
  // min_index when nothing qualifies.
  std::size_t best = config_.min_index;
  bool found = false;
  for (std::size_t i = config_.min_index; i <= config_.max_index; ++i) {
    const auto& mode = proto::mode_by_index(i);
    if (mode.required_snr_db + config_.margin_db > snr_db) continue;
    if (!found || mode.rate > proto::mode_by_index(best).rate) best = i;
    found = true;
  }
  index_ = best;
}

std::unique_ptr<RateAdapter> make_rate_adapter(RateAdaptationScheme scheme,
                                               std::size_t initial_index) {
  switch (scheme) {
    case RateAdaptationScheme::kNone:
      return nullptr;
    case RateAdaptationScheme::kArf:
      return std::make_unique<ArfAdapter>(ArfConfig{}, initial_index);
    case RateAdaptationScheme::kSnr:
      return std::make_unique<SnrAdapter>(SnrConfig{}, initial_index);
  }
  HYDRA_UNREACHABLE("bad rate adaptation scheme");
}

}  // namespace hydra::mac
