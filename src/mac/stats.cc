#include "mac/stats.h"

// Currently header-only accounting; this translation unit anchors the
// library and reserves a home for future stats serialization.
namespace hydra::mac {}  // namespace hydra::mac
