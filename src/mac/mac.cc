#include "mac/mac.h"

#include <algorithm>

#include "sim/log.h"
#include "util/assert.h"

namespace hydra::mac {

namespace {
constexpr const char* kLog = "mac";
}

Mac::Mac(sim::Simulation& simulation, phy::Phy& phy, MacConfig config)
    : sim_(simulation),
      phy_(phy),
      config_(config),
      classifier_(config.policy.tcp_ack_as_broadcast),
      queues_(config.queue_limit),
      aggregator_(config.policy),
      cw_(config.timings.cw_min),
      access_timer_(simulation.scheduler(), [this] { access_won(); }),
      nav_timer_(simulation.scheduler(), [this] { kick(); }),
      dba_timer_(simulation.scheduler(), [this] { kick(); }),
      response_timer_(simulation.scheduler(), [this] { response_timeout(); }),
      respond_timer_(simulation.scheduler(), [this] {
        HYDRA_ASSERT(pending_response_.has_value());
        auto [frame, kind] = *pending_response_;
        pending_response_.reset();
        transmit_control(frame, kind);
      }) {
  // All five timers drive this node's own state machine: pinning them to
  // the PHY id keeps every MAC event in the node's parallel-window group
  // even when armed from setup code or another node's delivery path.
  access_timer_.set_affinity(phy.id());
  nav_timer_.set_affinity(phy.id());
  dba_timer_.set_affinity(phy.id());
  response_timer_.set_affinity(phy.id());
  respond_timer_.set_affinity(phy.id());
  rate_adapter_ = make_rate_adapter(config_.rate_adaptation,
                                    proto::mode_index_of(config_.unicast_mode));
  aggregator_.set_modes(config_.broadcast_mode, config_.unicast_mode);
  phy_.on_rx = [this](const phy::RxReport& report) { on_rx(report); };
  phy_.on_tx_complete = [this] { on_tx_complete(); };
  phy_.on_cca_change = [this](bool busy) {
    if (busy) {
      pause_backoff();
    } else {
      kick();
    }
  };
}

// ---------------------------------------------------------------------
// Upper-layer interface
// ---------------------------------------------------------------------

void Mac::enqueue(proto::PacketPtr packet, proto::MacAddress next_hop,
                  proto::MacAddress source) {
  HYDRA_ASSERT(packet != nullptr);
  proto::MacSubframe sf;
  sf.receiver = next_hop;
  sf.transmitter = config_.address;
  sf.source = source;
  sf.sequence = next_sequence_++;
  sf.packet = std::move(packet);

  const auto cls =
      classifier_.classify(*sf.packet, next_hop.is_broadcast());
  const bool to_broadcast_queue = cls != core::TrafficClass::kUnicast;
  auto& queue = to_broadcast_queue ? queues_.broadcast() : queues_.unicast();
  if (!queue.push(std::move(sf), sim_.now())) {
    ++stats_.queue_drops;
    return;
  }
  kick();
}

// ---------------------------------------------------------------------
// Access engine
// ---------------------------------------------------------------------

bool Mac::nav_clear() const { return sim_.now() >= nav_until_; }

bool Mac::medium_free() const { return !phy_.cca_busy() && nav_clear(); }

void Mac::set_nav(sim::Duration reservation) {
  const auto until = sim_.now() + reservation;
  if (until <= nav_until_) return;
  nav_until_ = until;
  pause_backoff();
  nav_timer_.arm(reservation);
}

void Mac::kick() {
  if (phase_ != Phase::kIdle) return;
  if (tx_kind_ != TxKind::kNone) return;      // mid control transmission
  if (pending_response_.has_value()) return;  // owe a SIFS response

  bool want = !inflight_unicast_.empty();
  if (!want) {
    std::optional<sim::TimePoint> holdoff;
    want = aggregator_.may_transmit(queues_, sim_.now(), &holdoff);
    if (!want) {
      if (holdoff) dba_timer_.arm(*holdoff - sim_.now());
      return;
    }
  }
  if (!contending_) start_contention();
  if (contending_ && !access_timer_.pending()) resume_backoff();
}

void Mac::start_contention() {
  contending_ = true;
  if (backoff_slots_ < 0) {
    backoff_slots_ =
        static_cast<int>(sim_.rng().uniform_int(0, cw_));
  }
}

void Mac::resume_backoff() {
  if (!medium_free()) return;
  countdown_start_ = sim_.now();
  const auto wait =
      config_.timings.difs() + backoff_slots_ * config_.timings.slot;
  access_timer_.arm(wait);
}

void Mac::pause_backoff() {
  if (!access_timer_.pending()) return;
  access_timer_.cancel();
  const auto elapsed = sim_.now() - countdown_start_;
  const auto difs = config_.timings.difs();
  // Attribute the idle time we actually waited (Table 4 accounting) and
  // bank fully-elapsed backoff slots.
  if (elapsed <= difs) {
    stats_.time.ifs += elapsed;
  } else {
    stats_.time.ifs += difs;
    const auto in_backoff = elapsed - difs;
    stats_.time.backoff += in_backoff;
    const auto consumed =
        static_cast<int>(in_backoff.ns() / config_.timings.slot.ns());
    backoff_slots_ = std::max(0, backoff_slots_ - consumed);
  }
}

void Mac::access_won() {
  // The timer only fires after an uninterrupted DIFS + backoff; the
  // medium may have become busy in the same instant (synchronized
  // contenders), in which case we transmit anyway and collide, exactly
  // as the real protocol would.
  stats_.time.ifs += config_.timings.difs();
  stats_.time.backoff += backoff_slots_ * config_.timings.slot;
  contending_ = false;
  backoff_slots_ = -1;
  begin_sequence();
}

// ---------------------------------------------------------------------
// Transmit sequence
// ---------------------------------------------------------------------

sim::Duration Mac::control_airtime(std::size_t bytes) const {
  return phy_.config().timings.preamble +
         phy::payload_airtime(bytes, proto::base_mode());
}

sim::Duration Mac::ack_duration() const {
  const auto bytes =
      aggregator_.policy().block_ack ? proto::kBlockAckBytes : proto::kAckBytes;
  return control_airtime(bytes);
}

void Mac::begin_sequence() {
  if (rate_adapter_) {
    // Adopt the adapter's current choice for this sequence.
    config_.unicast_mode = rate_adapter_->current_mode();
    if (config_.adapt_broadcast_rate) {
      config_.broadcast_mode = config_.unicast_mode;
    }
    aggregator_.set_modes(config_.broadcast_mode, config_.unicast_mode);
  }
  proto::AggregateFrame frame;
  if (!inflight_unicast_.empty()) {
    frame = aggregator_.build_retry(queues_, inflight_unicast_);
  } else {
    frame = aggregator_.build(queues_);
    inflight_unicast_ = frame.unicast;
  }

  // Compute the frame timing once; duration fields and the ACK timeout
  // derive from it.
  const auto tentative_phy =
      to_phy_frame(MacPdu::make_aggregate(frame, config_.address),
                   config_.broadcast_mode, config_.unicast_mode);
  pending_timing_ = phy::frame_timing(tentative_phy.broadcast,
                                      tentative_phy.unicast,
                                      phy_.config().timings);

  // Medium reservation after the data frame ends: SIFS + ACK, if the
  // frame needs acknowledgement.
  const auto& t = config_.timings;
  sim::Duration after_data = sim::Duration::zero();
  if (frame.has_unicast()) after_data = t.sifs + ack_duration();
  const auto dur_units =
      proto::encode_duration_us((after_data).ns() / 1000);
  for (auto& sf : frame.broadcast) sf.duration_units = dur_units;
  for (auto& sf : frame.unicast) sf.duration_units = dur_units;

  pending_pdu_ = MacPdu::make_aggregate(std::move(frame), config_.address);

  const bool needs_rts =
      config_.use_rts_cts && pending_pdu_->aggregate.has_unicast();
  if (needs_rts) {
    send_rts();
  } else {
    send_data();
  }
}

void Mac::send_rts() {
  const auto& t = config_.timings;
  proto::ControlFrame rts;
  rts.type = proto::FrameType::kRts;
  rts.receiver = pending_pdu_->aggregate.unicast_receiver();
  rts.transmitter = config_.address;
  // Reservation: CTS + data + ACK, with the three SIFS gaps.
  const auto reservation = t.sifs + control_airtime(proto::kCtsBytes) + t.sifs +
                           pending_timing_.total + t.sifs + ack_duration();
  rts.duration_units = proto::encode_duration_us(reservation.ns() / 1000);
  phase_ = Phase::kTxRts;
  ++stats_.rts_tx;
  stats_.time.control += control_airtime(proto::kRtsBytes);
  transmit_control(rts, TxKind::kRts);
}

void Mac::send_data() {
  phase_ = Phase::kTxData;
  tx_kind_ = TxKind::kData;
  account_data_tx(pending_pdu_->aggregate, pending_timing_);
  phy_.transmit(to_phy_frame(pending_pdu_, config_.broadcast_mode,
                             config_.unicast_mode));
}

void Mac::transmit_control(proto::ControlFrame frame, TxKind kind) {
  tx_kind_ = kind;
  auto pdu = MacPdu::make_control(frame, config_.address);
  phy_.transmit(to_phy_frame(pdu, proto::base_mode(), proto::base_mode()));
}

void Mac::account_data_tx(const proto::AggregateFrame& frame,
                          const phy::FrameTiming& timing) {
  ++stats_.data_frames_tx;
  stats_.broadcast_subframes_tx += frame.broadcast.size();
  stats_.unicast_subframes_tx += frame.unicast.size();
  stats_.data_bytes_tx += frame.total_wire_bytes();
  stats_.time.phy_header += timing.header;

  const auto account_portion = [this](const proto::AggregateFrame::SubframeVec& sfs,
                                      const proto::PhyMode& mode) {
    for (const auto& sf : sfs) {
      const auto pkt_bytes = sf.packet_bytes();
      // Size overhead (Tables 3/6) counts every non-packet byte: header,
      // FCS, encapsulation and padding.
      stats_.mac_header_bytes_tx += sf.wire_bytes() - pkt_bytes;
      // Time overhead (Table 4) counts "MAC header" transmission time:
      // the Fig. 4 header and FCS. Encapsulation/padding bytes travel
      // with the payload and are accounted there.
      constexpr auto kHeaderOnly = proto::kMacHeaderBytes + proto::kFcsBytes;
      stats_.time.mac_header += phy::payload_airtime(kHeaderOnly, mode);
      stats_.time.payload +=
          phy::payload_airtime(sf.wire_bytes() - kHeaderOnly, mode);
    }
  };
  account_portion(frame.broadcast, config_.broadcast_mode);
  account_portion(frame.unicast, config_.unicast_mode);
}

void Mac::on_tx_complete() {
  const auto kind = tx_kind_;
  tx_kind_ = TxKind::kNone;
  const auto& t = config_.timings;

  switch (kind) {
    case TxKind::kRts:
      phase_ = Phase::kWaitCts;
      response_timer_.arm(t.sifs + control_airtime(proto::kCtsBytes) +
                          t.timeout_guard);
      return;
    case TxKind::kData:
      if (pending_pdu_->aggregate.has_unicast()) {
        phase_ = Phase::kWaitAck;
        response_timer_.arm(t.sifs + ack_duration() + t.timeout_guard);
      } else {
        // Pure broadcast frame: no acknowledgement, immediate success.
        sequence_succeeded();
      }
      return;
    case TxKind::kCts:
    case TxKind::kAck:
      // Responder duties done; resume our own business.
      kick();
      return;
    case TxKind::kNone:
      HYDRA_UNREACHABLE("tx completion without transmission");
  }
}

void Mac::response_timeout() {
  HYDRA_ASSERT(phase_ == Phase::kWaitCts || phase_ == Phase::kWaitAck);
  HYDRA_LOG_DEBUG(kLog, "node %u: %s timeout (retry %u)",
                  config_.address.value(),
                  phase_ == Phase::kWaitCts ? "CTS" : "ACK", retries_);
  sequence_failed();
}

void Mac::sequence_succeeded() {
  if (rate_adapter_ && !inflight_unicast_.empty()) {
    rate_adapter_->on_tx_result(true);
  }
  inflight_unicast_.clear();
  retries_ = 0;
  cw_ = config_.timings.cw_min;
  finish_sequence();
}

void Mac::sequence_failed() {
  if (rate_adapter_) rate_adapter_->on_tx_result(false);
  ++stats_.retries;
  ++retries_;
  cw_ = std::min(cw_ * 2 + 1, config_.timings.cw_max);
  if (retries_ > config_.timings.retry_limit) {
    stats_.retry_drops += inflight_unicast_.size();
    inflight_unicast_.clear();
    retries_ = 0;
    cw_ = config_.timings.cw_min;
  }
  finish_sequence();
}

void Mac::finish_sequence() {
  pending_pdu_.reset();
  response_timer_.cancel();
  phase_ = Phase::kIdle;
  kick();
}

// ---------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------

bool Mac::is_neighbor(proto::MacAddress transmitter) const {
  if (config_.neighbors.empty()) return true;
  for (const auto n : config_.neighbors) {
    if (n == transmitter) return true;
  }
  return false;
}

void Mac::on_rx(const phy::RxReport& report) {
  if (report.collided) {
    ++stats_.collisions;
    return;
  }
  const auto pdu = std::dynamic_pointer_cast<const MacPdu>(
      report.frame.payload);
  HYDRA_ASSERT_MSG(pdu != nullptr, "non-MAC payload on the medium");
  if (pdu->kind == MacPdu::Kind::kControl) {
    handle_control(pdu->control, report);
  } else {
    handle_aggregate(*pdu, report);
  }
}

void Mac::handle_control(const proto::ControlFrame& frame,
                         const phy::RxReport& report) {
  HYDRA_ASSERT(report.unicast_ok.size() == 1);
  if (!report.unicast_ok[0]) {
    ++stats_.crc_failures;
    return;
  }
  const bool for_me = frame.receiver == config_.address;
  const auto reservation =
      sim::Duration::micros(proto::decode_duration_us(frame.duration_units));

  switch (frame.type) {
    case proto::FrameType::kRts: {
      if (!for_me) {
        set_nav(reservation);
        return;
      }
      // Respond only when idle, the virtual carrier is clear, and the
      // requester is a configured neighbour.
      if (phase_ != Phase::kIdle || tx_kind_ != TxKind::kNone ||
          pending_response_.has_value() || !nav_clear() ||
          !is_neighbor(frame.transmitter)) {
        return;
      }
      proto::ControlFrame cts;
      cts.type = proto::FrameType::kCts;
      cts.receiver = frame.transmitter;
      cts.transmitter = config_.address;
      const auto remaining =
          reservation - config_.timings.sifs - control_airtime(proto::kCtsBytes);
      cts.duration_units = proto::encode_duration_us(
          std::max<std::int64_t>(0, remaining.ns() / 1000));
      ++stats_.cts_tx;
      schedule_response(cts, TxKind::kCts);
      return;
    }
    case proto::FrameType::kCts: {
      if (!for_me) {
        set_nav(reservation);
        return;
      }
      if (phase_ != Phase::kWaitCts) return;
      if (rate_adapter_) rate_adapter_->on_feedback_snr(report.snr_db);
      response_timer_.cancel();
      stats_.time.control += control_airtime(proto::kCtsBytes);
      stats_.time.ifs += 2 * config_.timings.sifs;  // before CTS and data
      phase_ = Phase::kTxData;
      // Data goes out SIFS after the CTS.
      sim_.scheduler().schedule_in(config_.timings.sifs,
                                   [this] { send_data(); });
      return;
    }
    case proto::FrameType::kAck: {
      if (!for_me || phase_ != Phase::kWaitAck) return;
      if (rate_adapter_) rate_adapter_->on_feedback_snr(report.snr_db);
      response_timer_.cancel();
      ++stats_.acks_rx;
      stats_.time.control += ack_duration();
      stats_.time.ifs += config_.timings.sifs;
      if (frame.has_block_ack) {
        // Extension: keep only unacknowledged subframes for retry.
        proto::AggregateFrame::SubframeVec remaining;
        for (std::size_t i = 0; i < inflight_unicast_.size(); ++i) {
          const bool acked =
              i < 64 && ((frame.block_ack_bitmap >> i) & 1) != 0;
          if (!acked) remaining.push_back(inflight_unicast_[i]);
        }
        if (remaining.empty()) {
          sequence_succeeded();
        } else {
          inflight_unicast_ = std::move(remaining);
          sequence_failed();
        }
      } else {
        sequence_succeeded();
      }
      return;
    }
    case proto::FrameType::kData:
      HYDRA_UNREACHABLE("data frame in control path");
  }
}

void Mac::handle_aggregate(const MacPdu& pdu, const phy::RxReport& report) {
  const auto& agg = pdu.aggregate;
  HYDRA_ASSERT(report.broadcast_ok.size() == agg.broadcast.size());
  HYDRA_ASSERT(report.unicast_ok.size() == agg.unicast.size());

  // Frames from non-neighbours still occupy the medium (CCA and NAV have
  // already been handled) but are never delivered or acknowledged.
  if (!is_neighbor(pdu.transmitter)) return;

  // Broadcast portion: per-subframe delivery as FCS passes (paper
  // §4.2.2). Subframes with unicast addresses (reclassified TCP ACKs)
  // are delivered only to the addressed node and silently dropped
  // elsewhere — never duplicated up the stack.
  for (std::size_t i = 0; i < agg.broadcast.size(); ++i) {
    if (!report.broadcast_ok[i]) {
      ++stats_.crc_failures;
      continue;
    }
    const auto& sf = agg.broadcast[i];
    if (sf.receiver.is_broadcast() || sf.receiver == config_.address) {
      ++stats_.delivered_up;
      if (on_deliver) on_deliver(sf.packet, sf.transmitter);
    } else {
      ++stats_.dropped_not_for_us;
    }
  }

  if (agg.unicast.empty()) return;

  if (agg.unicast_receiver() != config_.address) {
    // Reserve the medium for the remainder of this exchange (SIFS+ACK).
    set_nav(sim::Duration::micros(
        proto::decode_duration_us(agg.unicast.front().duration_units)));
    return;
  }

  if (pending_response_.has_value()) {
    // Already committed to a SIFS response for another exchange; we
    // cannot acknowledge, so we must not deliver either (the sender will
    // retransmit and dedup below would otherwise be the only guard).
    ++stats_.aggregate_discards;
    return;
  }

  const bool block_ack = aggregator_.policy().block_ack;
  if (block_ack) {
    // Extension: accept good subframes individually, report a bitmap.
    std::uint64_t bitmap = 0;
    for (std::size_t i = 0; i < agg.unicast.size(); ++i) {
      if (report.unicast_ok[i]) {
        if (i < 64) bitmap |= (std::uint64_t{1} << i);
        const auto& sf = agg.unicast[i];
        if (sf.retry && already_delivered(sf)) {
          ++stats_.duplicates_suppressed;
          continue;
        }
        remember_delivered(sf);
        ++stats_.delivered_up;
        if (on_deliver) on_deliver(sf.packet, sf.transmitter);
      } else {
        ++stats_.crc_failures;
      }
    }
    proto::ControlFrame ack;
    ack.type = proto::FrameType::kAck;
    ack.receiver = pdu.transmitter;
    ack.transmitter = config_.address;
    ack.has_block_ack = true;
    ack.block_ack_bitmap = bitmap;
    ++stats_.ack_tx;
    schedule_response(ack, TxKind::kAck);
    return;
  }

  // Paper behaviour: the unicast portion is all-or-nothing.
  if (!report.all_unicast_ok()) {
    for (const bool ok : report.unicast_ok) {
      if (!ok) ++stats_.crc_failures;
    }
    ++stats_.aggregate_discards;
    return;  // no ACK; the sender times out and retries
  }
  for (const auto& sf : agg.unicast) {
    if (sf.retry && already_delivered(sf)) {
      ++stats_.duplicates_suppressed;
      continue;  // retransmission of a subframe whose ACK was lost
    }
    remember_delivered(sf);
    ++stats_.delivered_up;
    if (on_deliver) on_deliver(sf.packet, sf.transmitter);
  }
  proto::ControlFrame ack;
  ack.type = proto::FrameType::kAck;
  ack.receiver = pdu.transmitter;
  ack.transmitter = config_.address;
  ++stats_.ack_tx;
  schedule_response(ack, TxKind::kAck);
}

void Mac::schedule_response(proto::ControlFrame frame, TxKind kind) {
  HYDRA_ASSERT(!pending_response_.has_value());
  pending_response_ = {frame, kind};
  respond_timer_.arm(config_.timings.sifs);
}

// ---------------------------------------------------------------------
// Receive-side duplicate suppression
// ---------------------------------------------------------------------
// A lost link-level ACK makes the sender retransmit subframes the
// receiver already accepted; as in 802.11, the (transmitter, sequence
// control) pair identifies the retransmission.

namespace {
std::uint32_t dedup_key(const proto::MacSubframe& sf) {
  return (std::uint32_t{sf.transmitter.value()} << 16) | sf.sequence;
}
}  // namespace

bool Mac::already_delivered(const proto::MacSubframe& sf) const {
  return dedup_set_.contains(dedup_key(sf));
}

void Mac::remember_delivered(const proto::MacSubframe& sf) {
  constexpr std::size_t kDedupWindow = 256;
  if (dedup_set_.insert(dedup_key(sf)).second) {
    dedup_fifo_.push_back(dedup_key(sf));
    if (dedup_fifo_.size() > kDedupWindow) {
      dedup_set_.erase(dedup_fifo_.front());
      dedup_fifo_.pop_front();
    }
  }
}

}  // namespace hydra::mac
