#include "mac/pdu.h"

#include "util/assert.h"

namespace hydra::mac {

std::shared_ptr<const MacPdu> MacPdu::make_control(proto::ControlFrame frame,
                                                   proto::MacAddress transmitter) {
  auto pdu = util::make_pooled<MacPdu>();
  pdu->kind = Kind::kControl;
  pdu->control = frame;
  pdu->transmitter = transmitter;
  return pdu;
}

std::shared_ptr<const MacPdu> MacPdu::make_aggregate(proto::AggregateFrame frame,
                                                     proto::MacAddress transmitter) {
  auto pdu = util::make_pooled<MacPdu>();
  pdu->kind = Kind::kAggregate;
  pdu->aggregate = std::move(frame);
  pdu->transmitter = transmitter;
  return pdu;
}

phy::PhyFrame to_phy_frame(const std::shared_ptr<const MacPdu>& pdu,
                           const proto::PhyMode& bcast_mode,
                           const proto::PhyMode& ucast_mode) {
  HYDRA_ASSERT(pdu != nullptr);
  phy::PhyFrame frame;
  frame.payload = pdu;
  if (pdu->kind == MacPdu::Kind::kControl) {
    frame.unicast.mode = proto::base_mode();
    frame.unicast.subframe_bytes.push_back(pdu->control.wire_bytes());
    return frame;
  }
  frame.broadcast.mode = bcast_mode;
  for (const auto& sf : pdu->aggregate.broadcast) {
    frame.broadcast.subframe_bytes.push_back(sf.wire_bytes());
  }
  frame.unicast.mode = ucast_mode;
  for (const auto& sf : pdu->aggregate.unicast) {
    frame.unicast.subframe_bytes.push_back(sf.wire_bytes());
  }
  return frame;
}

}  // namespace hydra::mac
