// The 802.11-style DCF MAC with the paper's aggregation extensions.
//
// Responsibilities:
//  - CSMA/CA access: DIFS + slotted binary-exponential backoff, paused and
//    resumed on carrier (CCA) and virtual-carrier (NAV) transitions.
//  - RTS/CTS exchange for frames with a unicast portion, single link-level
//    ACK per aggregate, timeout-driven retransmission with CW doubling.
//  - Transmit path (paper §4.2.3): classify outgoing packets into the dual
//    queues (pure TCP ACKs -> broadcast queue when enabled) and assemble
//    aggregates via the core Aggregator at each transmit opportunity.
//  - Receive path (paper §4.2.2): broadcast subframes are delivered
//    individually as their FCS passes; the unicast portion is
//    all-or-nothing (or per-subframe with the block-ACK extension) and
//    acknowledged after SIFS. Unicast-addressed broadcast subframes (TCP
//    ACKs) not addressed to this node are dropped at the MAC, never
//    duplicated up the stack.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/policy.h"
#include "core/queues.h"
#include "mac/pdu.h"
#include "mac/rate_adaptation.h"
#include "mac/stats.h"
#include "mac/timings.h"
#include "phy/phy.h"
#include "sim/simulation.h"
#include "sim/timer.h"

namespace hydra::mac {

struct MacConfig {
  proto::MacAddress address;
  MacTimings timings;
  core::AggregationPolicy policy;
  // Rate used for the unicast portion of aggregates.
  proto::PhyMode unicast_mode = proto::base_mode();
  // Rate used for the broadcast portion (the paper's Fig. 10 fixes this
  // independently of the unicast rate; Fig. 11+ set them equal).
  proto::PhyMode broadcast_mode = proto::base_mode();
  bool use_rts_cts = true;
  std::size_t queue_limit = 64;
  // Link rate adaptation (paper §4.1.2; disabled in the paper's
  // experiments). When active, the unicast portion's mode follows the
  // adapter; `adapt_broadcast_rate` makes the broadcast portion follow
  // too (the paper's §7 "rate-adaptive frame aggregation" future work).
  RateAdaptationScheme rate_adaptation = RateAdaptationScheme::kNone;
  bool adapt_broadcast_rate = true;
  // Link whitelist: when non-empty, frames from transmitters outside the
  // set are not delivered or responded to. This is how forced topologies
  // are built on testbeds where every node is in radio range (the paper
  // used static routing for the same purpose); physical carrier sense is
  // unaffected.
  std::vector<proto::MacAddress> neighbors;
};

class Mac {
 public:
  Mac(sim::Simulation& simulation, phy::Phy& phy, MacConfig config);

  Mac(const Mac&) = delete;
  Mac& operator=(const Mac&) = delete;

  // --- upper-layer interface ------------------------------------------
  // Queues `packet` for transmission to the link-layer `next_hop`
  // (proto::MacAddress::broadcast() for link broadcasts). `source` is the
  // originating node's link address (addr3).
  void enqueue(proto::PacketPtr packet, proto::MacAddress next_hop, proto::MacAddress source);

  // A subframe's packet was received and accepted for this node's stack.
  std::function<void(proto::PacketPtr, proto::MacAddress transmitter)> on_deliver;

  proto::MacAddress address() const { return config_.address; }
  // The rate adapter, if adaptation is enabled (for tests/benches).
  const RateAdapter* rate_adapter() const { return rate_adapter_.get(); }
  const MacConfig& config() const { return config_; }
  const MacStats& stats() const { return stats_; }
  const core::DualQueue& queues() const { return queues_; }
  const core::TcpAckClassifier& classifier() const { return classifier_; }
  core::AggregationPolicy& policy() { return aggregator_.policy(); }
  const core::AggregationPolicy& policy() const {
    return aggregator_.policy();
  }

 private:
  enum class Phase { kIdle, kTxRts, kWaitCts, kTxData, kWaitAck };
  enum class TxKind { kNone, kRts, kCts, kAck, kData };

  // --- access engine ---
  void kick();
  void start_contention();
  void pause_backoff();
  void resume_backoff();
  void access_won();
  bool medium_free() const;
  bool nav_clear() const;
  void set_nav(sim::Duration reservation);

  // --- transmit sequence ---
  void begin_sequence();
  void send_rts();
  void send_data();
  void transmit_control(proto::ControlFrame frame, TxKind kind);
  void on_tx_complete();
  void response_timeout();
  void sequence_succeeded();
  void sequence_failed();
  void finish_sequence();

  // --- receive path ---
  void on_rx(const phy::RxReport& report);
  void handle_control(const proto::ControlFrame& frame, const phy::RxReport& report);
  void handle_aggregate(const MacPdu& pdu, const phy::RxReport& report);
  void schedule_response(proto::ControlFrame frame, TxKind kind);

  // --- helpers ---
  sim::Duration control_airtime(std::size_t bytes) const;
  sim::Duration ack_duration() const;
  void account_data_tx(const proto::AggregateFrame& frame,
                       const phy::FrameTiming& timing);
  bool already_delivered(const proto::MacSubframe& sf) const;
  void remember_delivered(const proto::MacSubframe& sf);
  bool is_neighbor(proto::MacAddress transmitter) const;

  sim::Simulation& sim_;
  phy::Phy& phy_;
  MacConfig config_;

  core::TcpAckClassifier classifier_;
  core::DualQueue queues_;
  core::Aggregator aggregator_;
  std::unique_ptr<RateAdapter> rate_adapter_;
  MacStats stats_;

  Phase phase_ = Phase::kIdle;
  TxKind tx_kind_ = TxKind::kNone;

  // Contention state.
  bool contending_ = false;
  int backoff_slots_ = -1;  // -1: draw a fresh value on next contention
  unsigned cw_;
  sim::TimePoint countdown_start_;
  sim::Timer access_timer_;
  sim::Timer nav_timer_;
  sim::Timer dba_timer_;
  sim::TimePoint nav_until_;

  // Current transmit sequence.
  std::shared_ptr<const MacPdu> pending_pdu_;
  phy::FrameTiming pending_timing_;
  proto::AggregateFrame::SubframeVec inflight_unicast_;
  unsigned retries_ = 0;
  sim::Timer response_timer_;

  // Pending SIFS response (CTS or ACK we owe a peer).
  sim::Timer respond_timer_;
  std::optional<std::pair<proto::ControlFrame, TxKind>> pending_response_;

  // Outgoing subframe sequence numbers (802.11 sequence control).
  std::uint16_t next_sequence_ = 1;
  // Duplicate suppression for retransmitted unicast subframes, keyed on
  // (transmitter, sequence). The FIFO carries the eviction order, so
  // the set is pure membership.
  std::deque<std::uint32_t> dedup_fifo_;
  std::unordered_set<std::uint32_t> dedup_set_;  // hydra-lint: allow(unordered-member) — contains/insert/erase only; eviction iterates dedup_fifo_, never the set

};

}  // namespace hydra::mac
