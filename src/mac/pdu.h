// The bridge between the MAC's wire formats (proto/frames.h) and the
// PHY: the opaque payload the PHY carries, and the portion-spec layout
// it needs to time a transmission.
#pragma once

#include <memory>

#include "phy/frame.h"
#include "proto/frames.h"
#include "proto/mode.h"

namespace hydra::mac {

// What travels through the PHY: either a control frame or an aggregate.
struct MacPdu final : phy::Payload {
  enum class Kind { kControl, kAggregate };
  Kind kind = Kind::kControl;
  proto::ControlFrame control;
  proto::AggregateFrame aggregate;
  proto::MacAddress transmitter;

  static std::shared_ptr<const MacPdu> make_control(proto::ControlFrame frame,
                                                    proto::MacAddress transmitter);
  static std::shared_ptr<const MacPdu> make_aggregate(proto::AggregateFrame frame,
                                                      proto::MacAddress transmitter);
};

// Builds the PHY frame (portion specs + payload pointer) for a PDU.
// Control frames always use the base mode. `bcast_mode`/`ucast_mode`
// select the rates of the two aggregate portions (paper Fig. 2 allows
// them to differ).
phy::PhyFrame to_phy_frame(const std::shared_ptr<const MacPdu>& pdu,
                           const proto::PhyMode& bcast_mode,
                           const proto::PhyMode& ucast_mode);

}  // namespace hydra::mac
