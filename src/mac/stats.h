// Per-node MAC statistics: every quantity in the paper's Tables 2–8.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace hydra::mac {

// Time spent by this node's transfers, split into the categories the
// paper's Table 4 sums into "overhead": everything except payload bits.
struct TimeAccounting {
  sim::Duration payload;     // L3 packet bits inside data subframes
  sim::Duration mac_header;  // subframe headers, encapsulation, FCS, pad
  sim::Duration phy_header;  // preamble/PLCP of data frames
  sim::Duration control;     // RTS/CTS/ACK airtime incl. their preambles
  sim::Duration ifs;         // DIFS + SIFS gaps of this node's sequences
  sim::Duration backoff;     // contention slots actually waited

  sim::Duration overhead() const {
    return mac_header + phy_header + control + ifs + backoff;
  }
  sim::Duration total() const { return overhead() + payload; }
  // Fraction of transfer time that is overhead (Table 4).
  double overhead_fraction() const {
    const auto t = total();
    return t.is_zero() ? 0.0 : overhead() / t;
  }
};

struct MacStats {
  // --- transmit side ---
  std::uint64_t data_frames_tx = 0;      // data-bearing PHY frames
  std::uint64_t broadcast_subframes_tx = 0;
  std::uint64_t unicast_subframes_tx = 0;
  std::uint64_t data_bytes_tx = 0;       // MAC bytes of those frames
  std::uint64_t mac_header_bytes_tx = 0; // header+encap+FCS+pad share
  std::uint64_t rts_tx = 0;
  std::uint64_t cts_tx = 0;
  std::uint64_t ack_tx = 0;
  std::uint64_t retries = 0;
  std::uint64_t retry_drops = 0;   // unicast bursts dropped at retry limit
  std::uint64_t queue_drops = 0;   // enqueue rejected, queue full

  // --- receive side ---
  std::uint64_t delivered_up = 0;       // subframes handed to L3
  std::uint64_t dropped_not_for_us = 0; // unicast-addressed bcast subframes
  std::uint64_t crc_failures = 0;       // subframes with bad FCS
  std::uint64_t aggregate_discards = 0; // unicast portions discarded whole
  std::uint64_t duplicates_suppressed = 0;  // retransmissions filtered
  std::uint64_t acks_rx = 0;
  std::uint64_t collisions = 0;

  TimeAccounting time;

  std::uint64_t subframes_tx() const {
    return broadcast_subframes_tx + unicast_subframes_tx;
  }
  // Average MAC frame size (paper Tables 3, 5, 8).
  double avg_frame_bytes() const {
    return data_frames_tx == 0
               ? 0.0
               : static_cast<double>(data_bytes_tx) /
                     static_cast<double>(data_frames_tx);
  }
  // Header bytes / total bytes (paper Tables 3 and 6), MAC portion. The
  // experiment layer adds the PHY-header byte equivalent.
  double mac_size_overhead() const {
    return data_bytes_tx == 0
               ? 0.0
               : static_cast<double>(mac_header_bytes_tx) /
                     static_cast<double>(data_bytes_tx);
  }
};

}  // namespace hydra::mac
