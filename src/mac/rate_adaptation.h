// Link rate adaptation, as supported by the Hydra prototype (paper
// §4.1.2: "rate adaptation schemes including receiver based auto rate
// (RBAR) and auto rate fallback (ARF)"). The paper's experiments pin the
// rate; these adapters make the dimension available and are exercised by
// the rate-adaptation extension bench.
//
// Two schemes:
//  - ArfAdapter: Kamerman & Monteban's ARF — climb one rate after a run
//    of link-ACKed transmissions, fall one after consecutive failures
//    (with the classic immediate fallback if the probe transmission
//    right after a raise fails).
//  - SnrAdapter: RBAR-style explicit feedback — pick the fastest mode
//    whose required SNR clears the last measured feedback SNR by a
//    configured margin (Hydra measures this on the RTS/CTS exchange).
#pragma once

#include <cstdint>
#include <memory>

#include "proto/mode.h"

namespace hydra::mac {

// Interface consulted by the MAC around every unicast transmit sequence.
class RateAdapter {
 public:
  virtual ~RateAdapter() = default;

  // Outcome of a unicast sequence (link ACK received / retry exhausted a
  // transmission attempt).
  virtual void on_tx_result(bool success) = 0;
  // SNR observed on a frame from the peer (CTS/ACK), i.e. explicit
  // feedback about the reverse channel (assumed symmetric, as on the
  // prototype).
  virtual void on_feedback_snr(double snr_db) = 0;

  // Index into proto::hydra_modes() to use for the next unicast portion.
  virtual std::size_t mode_index() const = 0;

  const proto::PhyMode& current_mode() const {
    return proto::mode_by_index(mode_index());
  }
};

struct ArfConfig {
  unsigned success_threshold = 10;  // raise after this many successes
  unsigned failure_threshold = 2;   // fall after this many failures
  std::size_t min_index = 0;
  std::size_t max_index = 7;
};

class ArfAdapter final : public RateAdapter {
 public:
  ArfAdapter(ArfConfig config, std::size_t initial_index);

  void on_tx_result(bool success) override;
  void on_feedback_snr(double) override {}  // ARF ignores SNR
  std::size_t mode_index() const override { return index_; }

  std::uint64_t raises() const { return raises_; }
  std::uint64_t falls() const { return falls_; }

 private:
  ArfConfig config_;
  std::size_t index_;
  unsigned successes_ = 0;
  unsigned failures_ = 0;
  bool probing_ = false;  // the transmission right after a raise
  std::uint64_t raises_ = 0;
  std::uint64_t falls_ = 0;
};

struct SnrConfig {
  // Required-SNR clearance before a mode is considered usable.
  double margin_db = 2.0;
  std::size_t min_index = 0;
  std::size_t max_index = 7;
};

class SnrAdapter final : public RateAdapter {
 public:
  SnrAdapter(SnrConfig config, std::size_t initial_index);

  void on_tx_result(bool) override {}  // purely feedback-driven
  void on_feedback_snr(double snr_db) override;
  std::size_t mode_index() const override { return index_; }

  double last_snr_db() const { return last_snr_db_; }

 private:
  SnrConfig config_;
  std::size_t index_;
  double last_snr_db_ = 0.0;
};

enum class RateAdaptationScheme { kNone, kArf, kSnr };

// Factory; returns nullptr for kNone.
std::unique_ptr<RateAdapter> make_rate_adapter(RateAdaptationScheme scheme,
                                               std::size_t initial_index);

}  // namespace hydra::mac
