// DCF timing parameters.
//
// The prototype's PHY runs 10x slower than commercial 802.11, and its
// software MAC has correspondingly larger interframe spacings. These
// defaults are calibrated so the no-aggregation time-overhead column of
// the paper's Table 4 (22.4% at 0.65 Mbps rising to 52.1% at 2.6 Mbps)
// is reproduced in shape.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace hydra::mac {

struct MacTimings {
  sim::Duration slot = sim::Duration::micros(60);
  sim::Duration sifs = sim::Duration::micros(60);
  // DIFS = SIFS + 2 * slot, per the 802.11 DCF definition.
  sim::Duration difs() const { return sifs + 2 * slot; }

  // Contention window bounds (slots); CW doubles per retry.
  unsigned cw_min = 15;
  unsigned cw_max = 1023;
  // Retransmission attempts for a unicast burst before it is dropped.
  unsigned retry_limit = 7;

  // Extra guard added to control-response timeouts beyond the expected
  // SIFS + preamble + control-frame airtime.
  sim::Duration timeout_guard = sim::Duration::micros(120);
};

}  // namespace hydra::mac
