// Airtime and sample accounting for Hydra PHY frames.
//
// A PHY frame is: [preamble+PLCP header] [broadcast portion] [unicast
// portion]. The paper's broadcast-aggregation format adds a second
// (rate, length) field to the PLCP header so the two portions can use
// different modes (Fig. 2 of the paper); that field costs extra header
// airtime only when a broadcast portion is present.
//
// The PHY transmits complex baseband samples at 2 Msample/s (1 MHz
// bandwidth). "Samples" are the unit in which the paper observed its
// fixed ~120 Ksample aggregation limit; samples_for() exposes the same
// accounting.
#pragma once

#include <cstdint>

#include "proto/mode.h"
#include "sim/time.h"
#include "util/pool.h"

namespace hydra::phy {

struct PhyTimings {
  // Training sequences + base PLCP header (rate/length for the unicast
  // portion). 10x-scaled 802.11n-style preamble, per the prototype's
  // 10x-slower PHY.
  sim::Duration preamble = sim::Duration::micros(320);
  // Additional PLCP field carrying the broadcast portion's rate/length
  // (only present when the frame has a broadcast portion).
  sim::Duration broadcast_field = sim::Duration::micros(40);
  // Complex baseband sample rate (samples per second).
  std::int64_t sample_rate = 2'000'000;
};

// Returns the shared default timings (value semantics; copy freely).
const PhyTimings& default_timings();

// Time to transmit `bytes` of MAC payload at `mode`'s information rate.
sim::Duration payload_airtime(std::size_t bytes, const proto::PhyMode& mode);

// Description of one portion (broadcast or unicast) of a PHY frame:
// subframe byte lengths, all sent back-to-back at one mode.
struct PortionSpec {
  proto::PhyMode mode = proto::base_mode();
  // Pooled: one of these is built per transmission and copied into each
  // receiver's report, so the backing arrays recycle hard.
  util::PooledVector<std::size_t> subframe_bytes;

  std::size_t total_bytes() const;
  bool empty() const { return subframe_bytes.empty(); }
};

// Airtime layout of a full PHY frame.
struct FrameTiming {
  sim::Duration header;            // preamble (+ broadcast field if present)
  sim::Duration broadcast_portion; // airtime of all broadcast subframes
  sim::Duration unicast_portion;   // airtime of all unicast subframes
  sim::Duration total;             // sum of the above

  // End offset (from frame start) of each subframe, per portion; the error
  // model uses these to age the channel estimate across the frame.
  util::PooledVector<sim::Duration> broadcast_subframe_end;
  util::PooledVector<sim::Duration> unicast_subframe_end;
};

FrameTiming frame_timing(const PortionSpec& bcast, const PortionSpec& ucast,
                         const PhyTimings& t = default_timings());

// Number of baseband samples a transmission of duration `d` occupies.
std::int64_t samples_for(sim::Duration d,
                         const PhyTimings& t = default_timings());

}  // namespace hydra::phy
