#include "phy/error_model.h"

#include <algorithm>
#include <cmath>

namespace hydra::phy {

double ErrorModel::effective_snr_db(double snr_db,
                                    sim::Duration offset_in_frame) const {
  if (offset_in_frame <= config_.coherence_time) return snr_db;
  const double excess_ms =
      (offset_in_frame - config_.coherence_time).millis_f();
  return snr_db - config_.aging_db_per_ms * excess_ms;
}

double ErrorModel::bit_error_probability(const proto::PhyMode& mode,
                                         double eff_snr_db) const {
  const double margin_db = eff_snr_db - mode.required_snr_db;
  const double ber = config_.ber_at_required_snr *
                     std::pow(10.0, -margin_db / config_.ber_decade_per_db);
  return std::clamp(ber, 0.0, 0.5);
}

double ErrorModel::subframe_error_probability(const proto::PhyMode& mode,
                                              double snr_db,
                                              std::size_t bytes,
                                              sim::Duration end_offset) const {
  const double eff = effective_snr_db(snr_db, end_offset);
  const double p_bit = bit_error_probability(mode, eff);
  if (p_bit <= 0.0) return 0.0;
  const double bits = static_cast<double>(bytes) * 8.0;
  // 1 - (1 - p)^bits, computed stably via expm1/log1p.
  return -std::expm1(bits * std::log1p(-p_bit));
}

bool ErrorModel::draw_subframe_error(sim::Rng& rng, const proto::PhyMode& mode,
                                     double snr_db, std::size_t bytes,
                                     sim::Duration end_offset) const {
  return rng.bernoulli(
      subframe_error_probability(mode, snr_db, bytes, end_offset));
}

}  // namespace hydra::phy
