#include "phy/medium.h"

#include <cmath>

#include "phy/phy.h"
#include "util/assert.h"

namespace hydra::phy {

double distance_m(Position a, Position b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

Medium::Medium(sim::Simulation& simulation, MediumConfig config,
               ErrorModel error_model)
    : sim_(simulation), config_(config), error_model_(error_model) {}

void Medium::attach(Phy& phy) {
  for (const auto* existing : phys_) {
    HYDRA_ASSERT_MSG(existing != &phy, "phy attached twice");
  }
  phys_.push_back(&phy);
}

double Medium::rx_power_dbm(const Phy& src, const Phy& dst) const {
  const double d =
      std::max(1.0, distance_m(src.config().position, dst.config().position));
  const double path_loss_db = config_.path_loss_at_1m_db +
                              10.0 * config_.path_loss_exponent *
                                  std::log10(d);
  return src.config().tx_power_dbm - path_loss_db;
}

double Medium::snr_db(const Phy& src, const Phy& dst) const {
  return rx_power_dbm(src, dst) - config_.noise_floor_dbm;
}

sim::Duration Medium::start_transmission(Phy& src, PhyFrame frame) {
  const auto timing =
      frame_timing(frame.broadcast, frame.unicast, src.config().timings);
  auto tx = std::make_shared<Transmission>();
  tx->id = next_tx_id_++;
  tx->source = &src;
  tx->frame = std::move(frame);
  tx->timing = timing;
  tx->start = sim_.now();

  auto& sched = sim_.scheduler();
  for (Phy* dst : phys_) {
    if (dst == &src) continue;
    const double power = rx_power_dbm(src, *dst);
    const double dist =
        distance_m(src.config().position, dst->config().position);
    const auto prop = sim::Duration::nanos(static_cast<std::int64_t>(
        dist / config_.propagation_speed_mps * 1e9));
    sched.schedule_in(prop, [dst, tx, power] { dst->rx_start(tx, power); });
    sched.schedule_in(prop + timing.total,
                      [dst, tx, power] { dst->rx_end(tx, power); });
  }
  return timing.total;
}

}  // namespace hydra::phy
