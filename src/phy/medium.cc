#include "phy/medium.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <unordered_map>

#include "phy/phy.h"
#include "util/assert.h"

namespace hydra::phy {

double distance_m(Position a, Position b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

const char* to_string(DeliveryPolicy policy) {
  switch (policy) {
    case DeliveryPolicy::kFullMesh: return "full-mesh";
    case DeliveryPolicy::kCulled: return "culled";
  }
  HYDRA_UNREACHABLE("bad delivery policy");
}

double path_loss_db(const MediumConfig& config, double distance) {
  const double d = std::max(1.0, distance);
  return config.path_loss_at_1m_db +
         10.0 * config.path_loss_exponent * std::log10(d);
}

sim::Duration propagation_delay(const MediumConfig& config, double distance) {
  const double d = std::max(1.0, distance);
  return sim::Duration::nanos(
      std::llround(d / config.propagation_speed_mps * 1e9));
}

double cull_floor_dbm(const MediumConfig& config) {
  // Clamped to the CCA threshold: anything quieter than CCA can neither
  // assert the channel nor collide nor decode, so a floor at or below it
  // culls only behaviourally inert deliveries.
  return std::min(config.noise_floor_dbm - config.cull_margin_db,
                  config.cca_threshold_dbm);
}

double reach_radius_m(const MediumConfig& config, double tx_power_dbm) {
  const double budget =
      tx_power_dbm - cull_floor_dbm(config) - config.path_loss_at_1m_db;
  if (budget <= 0.0) return 1.0;  // below the floor beyond the 1 m clamp
  return std::pow(10.0, budget / (10.0 * config.path_loss_exponent));
}

namespace {

Delivery make_delivery(const MediumConfig& config, Phy& src, Phy& dst) {
  const double d =
      distance_m(src.config().position, dst.config().position);
  return Delivery{&dst, src.config().tx_power_dbm - path_loss_db(config, d),
                  propagation_delay(config, d)};
}

// Shared bookkeeping for backends that precompute one delivery list per
// source, keyed by attach order.
class PrecomputedBackend : public DeliveryBackend {
 public:
  const std::vector<Delivery>& deliveries(const Phy& src) const override {
    return lists_[index_.at(&src)];
  }

 protected:
  // Starts a rebuild: empty per-source lists + the attach-order index.
  void reset(const std::vector<Phy*>& phys) {
    lists_.clear();
    lists_.resize(phys.size());
    index_.clear();
    for (std::size_t s = 0; s < phys.size(); ++s) index_[phys[s]] = s;
  }

  std::vector<std::vector<Delivery>> lists_;
  // Pointer-hashed: the per-transmission src -> attach-index lookup is
  // on the hot path this layer exists to keep O(1).
  std::unordered_map<const Phy*, std::size_t> index_;
};

// Exact paper behaviour: every attached PHY hears every transmission.
// Still caches the per-pair receive power and propagation delay so the
// per-frame path does no trigonometry or log10.
class FullMeshBackend final : public PrecomputedBackend {
 public:
  const char* name() const override { return "full-mesh"; }

  void rebuild(const std::vector<Phy*>& phys,
               const MediumConfig& config) override {
    reset(phys);
    for (std::size_t s = 0; s < phys.size(); ++s) {
      lists_[s].reserve(phys.size() - 1);
      for (Phy* dst : phys) {
        if (dst == phys[s]) continue;
        lists_[s].push_back(make_delivery(config, *phys[s], *dst));
      }
    }
  }
};

// Uniform-grid spatial index: cells at least `min_cell_m` wide, so every
// receiver a source can possibly reach lives in the 3×3 cell
// neighborhood of the source's cell.
class SpatialGrid {
 public:
  void build(const std::vector<Phy*>& phys, double min_cell_m) {
    HYDRA_ASSERT(min_cell_m > 0.0);
    min_ = {0.0, 0.0};
    Position max = min_;
    if (!phys.empty()) {
      min_ = max = phys.front()->config().position;
      for (const Phy* phy : phys) {
        const auto p = phy->config().position;
        min_.x_m = std::min(min_.x_m, p.x_m);
        min_.y_m = std::min(min_.y_m, p.y_m);
        max.x_m = std::max(max.x_m, p.x_m);
        max.y_m = std::max(max.y_m, p.y_m);
      }
    }
    // Cells may only be *wider* than requested — never narrower, or the
    // 3×3 query would miss in-reach receivers. The per-axis cap keeps a
    // far-flung outlier from exploding the cell table.
    constexpr double kMaxCellsPerAxis = 64.0;
    cell_m_ = std::max({min_cell_m, (max.x_m - min_.x_m) / kMaxCellsPerAxis,
                        (max.y_m - min_.y_m) / kMaxCellsPerAxis});
    if (!phys.empty()) {
      nx_ = cell_of(max.x_m - min_.x_m) + 1;
      ny_ = cell_of(max.y_m - min_.y_m) + 1;
    }
    cells_.assign(static_cast<std::size_t>(nx_) * ny_, {});
    for (std::size_t i = 0; i < phys.size(); ++i) {
      const auto p = phys[i]->config().position;
      cells_[cell_index(cell_of(p.x_m - min_.x_m), cell_of(p.y_m - min_.y_m))]
          .push_back(static_cast<std::uint32_t>(i));
    }
  }

  // Calls `visit` with every PHY index in the 3×3 neighborhood of `p`.
  template <typename Visit>
  void neighborhood(Position p, Visit&& visit) const {
    const int cx = cell_of(p.x_m - min_.x_m);
    const int cy = cell_of(p.y_m - min_.y_m);
    for (int y = std::max(0, cy - 1); y <= std::min(ny_ - 1, cy + 1); ++y) {
      for (int x = std::max(0, cx - 1); x <= std::min(nx_ - 1, cx + 1); ++x) {
        for (const std::uint32_t i : cells_[cell_index(x, y)]) visit(i);
      }
    }
  }

 private:
  int cell_of(double offset_m) const {
    return static_cast<int>(std::floor(offset_m / cell_m_));
  }
  std::size_t cell_index(int x, int y) const {
    return static_cast<std::size_t>(y) * nx_ + x;
  }

  double cell_m_ = 1.0;
  Position min_;
  int nx_ = 1;
  int ny_ = 1;
  std::vector<std::vector<std::uint32_t>> cells_;
};

// Reachability-culled delivery: receivers below the cull floor are
// skipped, and candidates come from the spatial index instead of an
// O(N) scan per source.
class CulledBackend final : public PrecomputedBackend {
 public:
  const char* name() const override { return "culled"; }

  void rebuild(const std::vector<Phy*>& phys,
               const MediumConfig& config) override {
    reset(phys);

    // Cells as wide as the widest reach among attached transmitters, so
    // every possible receiver sits in the 3×3 neighborhood.
    double reach = 1.0;
    for (const Phy* phy : phys) {
      reach = std::max(reach,
                       reach_radius_m(config, phy->config().tx_power_dbm));
    }
    grid_.build(phys, reach);

    const double floor = cull_floor_dbm(config);
    std::vector<std::uint32_t> candidates;
    for (std::size_t s = 0; s < phys.size(); ++s) {
      candidates.clear();
      grid_.neighborhood(phys[s]->config().position,
                         [&](std::uint32_t i) { candidates.push_back(i); });
      // Attach order, so scheduling (and therefore RNG draw) order
      // matches the full-mesh backend exactly.
      std::sort(candidates.begin(), candidates.end());
      for (const std::uint32_t i : candidates) {
        if (i == s) continue;
        const auto delivery = make_delivery(config, *phys[s], *phys[i]);
        if (delivery.rx_power_dbm >= floor) lists_[s].push_back(delivery);
      }
    }
  }

 private:
  SpatialGrid grid_;
};

}  // namespace

std::unique_ptr<DeliveryBackend> make_delivery_backend(DeliveryPolicy policy) {
  switch (policy) {
    case DeliveryPolicy::kFullMesh:
      return std::make_unique<FullMeshBackend>();
    case DeliveryPolicy::kCulled:
      return std::make_unique<CulledBackend>();
  }
  HYDRA_UNREACHABLE("bad delivery policy");
}

Medium::Medium(sim::Simulation& simulation, MediumConfig config,
               ErrorModel error_model)
    : sim_(simulation), config_(config), error_model_(error_model) {}

Medium::~Medium() = default;

void Medium::attach(Phy& phy) {
  for (const auto* existing : phys_) {
    HYDRA_ASSERT_MSG(existing != &phy, "phy attached twice");
  }
  phys_.push_back(&phy);
  backend_dirty_ = true;
}

void Medium::set_backend(std::unique_ptr<DeliveryBackend> backend) {
  HYDRA_ASSERT_MSG(backend != nullptr, "null delivery backend");
  backend_ = std::move(backend);
  backend_dirty_ = true;
}

const DeliveryBackend& Medium::backend() {
  ensure_backend();
  return *backend_;
}

void Medium::ensure_backend() {
  if (!backend_) backend_ = make_delivery_backend(config_.delivery);
  if (backend_dirty_) {
    backend_->rebuild(phys_, config_);
    backend_dirty_ = false;
  }
}

double Medium::rx_power_dbm(const Phy& src, const Phy& dst) const {
  const double d =
      distance_m(src.config().position, dst.config().position);
  return src.config().tx_power_dbm - path_loss_db(config_, d);
}

double Medium::snr_db(const Phy& src, const Phy& dst) const {
  return rx_power_dbm(src, dst) - config_.noise_floor_dbm;
}

sim::Duration Medium::start_transmission(Phy& src, PhyFrame frame) {
  ensure_backend();
  const auto timing =
      frame_timing(frame.broadcast, frame.unicast, src.config().timings);
  auto tx = std::make_shared<Transmission>();
  tx->id = next_tx_id_++;
  tx->source = &src;
  tx->frame = std::move(frame);
  tx->timing = timing;
  tx->start = sim_.now();

  auto& sched = sim_.scheduler();
  const auto& deliveries = backend_->deliveries(src);
  deliveries_scheduled_ += deliveries.size();
  for (const Delivery& delivery : deliveries) {
    Phy* dst = delivery.destination;
    const double power = delivery.rx_power_dbm;
    sched.schedule_in(delivery.propagation,
                      [dst, tx, power] { dst->rx_start(tx, power); });
    sched.schedule_in(delivery.propagation + timing.total,
                      [dst, tx, power] { dst->rx_end(tx, power); });
  }
  return timing.total;
}

}  // namespace hydra::phy
