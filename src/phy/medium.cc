#include "phy/medium.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <thread>
#include <unordered_map>

#include "phy/phy.h"
#include "util/assert.h"
#include "util/pool.h"
#include "util/task_pool.h"

namespace hydra::phy {

const char* to_string(DeliveryPolicy policy) {
  switch (policy) {
    case DeliveryPolicy::kFullMesh: return "full-mesh";
    case DeliveryPolicy::kCulled: return "culled";
    case DeliveryPolicy::kSharded: return "sharded";
  }
  HYDRA_UNREACHABLE("bad delivery policy");
}

double path_loss_db(const MediumConfig& config, double distance) {
  const double d = std::max(1.0, distance);
  return config.path_loss_at_1m_db +
         10.0 * config.path_loss_exponent * std::log10(d);
}

sim::Duration propagation_delay(const MediumConfig& config, double distance) {
  const double d = std::max(1.0, distance);
  return sim::Duration::nanos(
      std::llround(d / config.propagation_speed_mps * 1e9));
}

double cull_floor_dbm(const MediumConfig& config) {
  // Clamped to the CCA threshold: anything quieter than CCA can neither
  // assert the channel nor collide nor decode, so a floor at or below it
  // culls only behaviourally inert deliveries.
  return std::min(config.noise_floor_dbm - config.cull_margin_db,
                  config.cca_threshold_dbm);
}

double reach_radius_m(const MediumConfig& config, double tx_power_dbm) {
  const double budget =
      tx_power_dbm - cull_floor_dbm(config) - config.path_loss_at_1m_db;
  if (budget <= 0.0) return 1.0;  // below the floor beyond the 1 m clamp
  // The pow branch is clamped too: the path-loss model floors distance
  // at 1 m, so a reach below that would under-size grid cells for no
  // physical reason (the documented contract is "≥ 1 m" either way).
  return std::max(1.0,
                  std::pow(10.0, budget / (10.0 * config.path_loss_exponent)));
}

std::size_t resolve_shard_threads(const MediumConfig& config) {
  if (config.shard_threads != 0) return config.shard_threads;
  // Capped: the stripe computation saturates long before it can use a
  // many-core host, and oversubscribing stripes shrinks each below the
  // wake-up cost of its worker.
  return std::clamp<std::size_t>(std::thread::hardware_concurrency(), 1, 8);
}

namespace {

Delivery make_delivery(const MediumConfig& config, Phy& src, Phy& dst) {
  const double d =
      distance_m(src.config().position, dst.config().position);
  return Delivery{&dst, src.config().tx_power_dbm - path_loss_db(config, d),
                  propagation_delay(config, d)};
}

// Shared bookkeeping for backends that precompute one delivery list per
// source, keyed by attach order.
class PrecomputedBackend : public DeliveryBackend {
 public:
  const std::vector<Delivery>& deliveries(const Phy& src) const override {
    return lists_[index_.at(&src)];
  }

 protected:
  // Starts a rebuild: empty per-source lists + the attach-order index.
  void reset(const std::vector<Phy*>& phys) {
    lists_.clear();
    lists_.resize(phys.size());
    index_.clear();
    for (std::size_t s = 0; s < phys.size(); ++s) index_[phys[s]] = s;
  }

  // Registers a newly attached PHY (the next attach index) with an
  // empty list; returns its index.
  std::size_t register_attached(Phy& phy) {
    const std::size_t s = lists_.size();
    lists_.emplace_back();
    index_[&phy] = s;
    return s;
  }

  // Mirror of register_attached for a detach: drops `phy`'s own list,
  // renumbers the attach indices above it down by one, and strips it
  // from every remaining list. Relative attach order is untouched, so
  // the surviving lists stay canonically ordered without recomputation.
  // `phys` is the medium's attach-order vector with `phy` already
  // erased. Returns the index `phy` held.
  std::size_t unregister_detached(Phy& phy, const std::vector<Phy*>& phys) {
    const auto it = index_.find(&phy);
    HYDRA_ASSERT_MSG(it != index_.end(), "detach of an unknown phy");
    const std::size_t s = it->second;
    index_.erase(it);
    lists_.erase(lists_.begin() + static_cast<std::ptrdiff_t>(s));
    // Renumber by walking the attach-order vector, not the hash map:
    // phys[i] for i >= s are exactly the survivors whose index shifted
    // down by one, and a deterministic traversal keeps this path out of
    // hydra-lint's unordered-iter rule by construction (the old
    // map-order walk was value-equivalent but order-nondeterministic).
    for (std::size_t i = s; i < phys.size(); ++i) index_[phys[i]] = i;
    for (auto& list : lists_) {
      std::erase_if(list,
                    [&](const Delivery& d) { return d.destination == &phy; });
    }
    return s;
  }

  std::vector<std::vector<Delivery>> lists_;
  // Pointer-hashed: the per-transmission src -> attach-index lookup is
  // on the hot path this layer exists to keep O(1).
  std::unordered_map<const Phy*, std::size_t> index_;  // hydra-lint: allow(unordered-member) — at/find/erase lookups plus the attach-order renumber walk above; never iterated in hash order

};

// Exact paper behaviour: every attached PHY hears every transmission.
// Still caches the per-pair receive power and propagation delay so the
// per-frame path does no trigonometry or log10.
class FullMeshBackend final : public PrecomputedBackend {
 public:
  const char* name() const override { return "full-mesh"; }

  void rebuild(const std::vector<Phy*>& phys,
               const MediumConfig& config) override {
    reset(phys);
    for (std::size_t s = 0; s < phys.size(); ++s) {
      lists_[s].reserve(phys.size() - 1);
      for (Phy* dst : phys) {
        if (dst == phys[s]) continue;
        lists_[s].push_back(make_delivery(config, *phys[s], *dst));
      }
    }
  }

  bool attach_incremental(Phy& phy, const std::vector<Phy*>& phys,
                          const MediumConfig& config) override {
    // The newcomer holds the highest attach index, so appending it to
    // every existing list keeps them attach-ordered.
    const std::size_t s = register_attached(phy);
    auto& list = lists_[s];
    list.reserve(phys.size() - 1);
    for (std::size_t i = 0; i + 1 < phys.size(); ++i) {
      list.push_back(make_delivery(config, phy, *phys[i]));
      lists_[i].push_back(make_delivery(config, *phys[i], phy));
    }
    return true;
  }

  bool detach_incremental(Phy& phy, const std::vector<Phy*>& phys,
                          const MediumConfig&) override {
    unregister_detached(phy, phys);
    return true;
  }

  bool move_incremental(Phy& phy, Position, const std::vector<Phy*>& phys,
                        const MediumConfig& config) override {
    const std::size_t s = index_.at(&phy);
    auto& own = lists_[s];
    own.clear();
    for (std::size_t i = 0; i < phys.size(); ++i) {
      if (i == s) continue;
      own.push_back(make_delivery(config, phy, *phys[i]));
      // A full-mesh list holds every other PHY in attach order, so the
      // mover's reverse entry sits at a computable offset — rewrite it
      // in place instead of searching.
      auto& entry = lists_[i][s < i ? s : s - 1];
      HYDRA_ASSERT(entry.destination == &phy);
      entry = make_delivery(config, *phys[i], phy);
    }
    return true;
  }
};

// Shared machinery of the culled backends: the reach-sized spatial grid
// and the per-source candidate/rx-power/delay computation. kCulled runs
// compute_list serially; kSharded fans the same computation out one
// grid stripe per worker — identical per-pair arithmetic in identical
// per-list order, which is what makes the two bit-identical.
class CulledBackendBase : public PrecomputedBackend {
 protected:
  // Rebuild prologue: reset + a grid whose cells span the widest reach
  // among the attached transmitters, so every possible receiver sits in
  // the 3×3 neighborhood of its source's cell.
  void prepare(const std::vector<Phy*>& phys, const MediumConfig& config) {
    reset(phys);
    std::vector<Position> positions;
    positions.reserve(phys.size());
    double reach = 1.0;
    for (const Phy* phy : phys) {
      positions.push_back(phy->config().position);
      reach = std::max(reach,
                       reach_radius_m(config, phy->config().tx_power_dbm));
    }
    grid_.build(positions, reach);
  }

  // Computes source s's delivery list: grid candidates, sorted to
  // attach order (scheduling — and therefore RNG draw — order must
  // match the full-mesh backend exactly), culled against the floor.
  void compute_list(std::size_t s, const std::vector<Phy*>& phys,
                    const MediumConfig& config,
                    std::vector<std::uint32_t>& candidates) {
    candidates.clear();
    grid_.neighborhood(phys[s]->config().position,
                       [&](std::uint32_t i) { candidates.push_back(i); });
    std::sort(candidates.begin(), candidates.end());
    const double floor = cull_floor_dbm(config);
    for (const std::uint32_t i : candidates) {
      if (i == s) continue;
      const auto delivery = make_delivery(config, *phys[s], *phys[i]);
      if (delivery.rx_power_dbm >= floor) lists_[s].push_back(delivery);
    }
  }

  bool attach_incremental(Phy& phy, const std::vector<Phy*>& phys,
                          const MediumConfig& config) override {
    // Local only when the newcomer sits inside the built grid and its
    // own reach fits one cell (so the 3×3 query stays sufficient in
    // both directions); anything else rebuilds from scratch.
    const Position p = phy.config().position;
    if (!grid_.contains(p)) return false;
    if (reach_radius_m(config, phy.config().tx_power_dbm) > grid_.cell_m()) {
      return false;
    }
    const auto s = static_cast<std::uint32_t>(register_attached(phy));
    grid_.insert(p, s);
    std::vector<std::uint32_t> candidates;
    compute_list(s, phys, config, candidates);
    // Reverse direction: every in-reach existing source gains the
    // newcomer. It holds the highest attach index, so push_back keeps
    // each list attach-ordered; the power filter is the same exact cull
    // a full rebuild would apply.
    const double floor = cull_floor_dbm(config);
    grid_.neighborhood(p, [&](std::uint32_t i) {
      if (i == s) return;
      const auto delivery = make_delivery(config, *phys[i], phy);
      if (delivery.rx_power_dbm >= floor) lists_[i].push_back(delivery);
    });
    return true;
  }

  bool detach_incremental(Phy& phy, const std::vector<Phy*>& phys,
                          const MediumConfig&) override {
    // Always local: removing a node can only shrink candidate sets, and
    // erase_and_renumber keeps the grid aligned with the compacted
    // attach index space (the over-wide bounding box and cell width stay
    // valid — fewer nodes never need a larger reach).
    grid_.erase_and_renumber(static_cast<std::uint32_t>(index_.at(&phy)));
    unregister_detached(phy, phys);
    return true;
  }

  bool move_incremental(Phy& phy, Position old_position,
                        const std::vector<Phy*>& phys,
                        const MediumConfig& config) override {
    // Local only inside the built bounding box: neighborhood()'s 3×3
    // superset guarantee holds for clamped queries near the box but NOT
    // for far-out positions (the clamp would silently hand back a
    // boundary cell's neighbors), so those force a rebuild, which
    // re-derives the box. Reach must still fit one cell, as for attach.
    const Position p = phy.config().position;
    if (!grid_.contains(p)) return false;
    if (reach_radius_m(config, phy.config().tx_power_dbm) > grid_.cell_m()) {
      return false;
    }
    const auto s = static_cast<std::uint32_t>(index_.at(&phy));
    grid_.erase(old_position, s);
    grid_.insert(p, s);
    // The lists a from-scratch rebuild could change are exactly those of
    // sources whose 3×3 candidate set saw the old cell or sees the new
    // one; cell adjacency is symmetric, so those sources are the grid
    // neighborhoods of the two positions (the mover's own list included,
    // via the new neighborhood). Recomputing each through the same
    // compute_list path a rebuild uses makes the patch bit-identical to
    // rebuilding.
    std::vector<std::uint32_t> affected;
    grid_.neighborhood(old_position,
                       [&](std::uint32_t i) { affected.push_back(i); });
    grid_.neighborhood(p, [&](std::uint32_t i) { affected.push_back(i); });
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());
    std::vector<std::uint32_t> candidates;
    for (const std::uint32_t i : affected) {
      lists_[i].clear();
      compute_list(i, phys, config, candidates);
    }
    return true;
  }

  SpatialGrid grid_;
};

// Reachability-culled delivery: receivers below the cull floor are
// skipped, and candidates come from the spatial index instead of an
// O(N) scan per source.
class CulledBackend final : public CulledBackendBase {
 public:
  const char* name() const override { return "culled"; }

  void rebuild(const std::vector<Phy*>& phys,
               const MediumConfig& config) override {
    prepare(phys, config);
    std::vector<std::uint32_t> candidates;
    for (std::size_t s = 0; s < phys.size(); ++s) {
      compute_list(s, phys, config, candidates);
    }
  }
};

// The culled receiver sets, computed in parallel: grid cell columns are
// cut into stripes (one per worker) and each worker computes the lists
// of the sources located in its stripe. Workers write disjoint lists_
// slots, so the only synchronization is the pool's batch barrier; the
// canonical merge is free — lists_ is indexed by attach order and each
// list is receiver-attach-ordered, exactly the sequence the serial
// backend produces.
class ShardedBackend final : public CulledBackendBase {
 public:
  const char* name() const override { return "sharded"; }

  std::size_t shards() const override { return plan_.stripes(); }

  void rebuild(const std::vector<Phy*>& phys,
               const MediumConfig& config) override {
    prepare(phys, config);
    const std::size_t threads = resolve_shard_threads(config);
    if (!pool_ || pool_->concurrency() != threads) {
      pool_ = std::make_unique<util::TaskPool>(
          static_cast<unsigned>(threads));
    }
    plan_ = ShardPlan(grid_.cells_x(), threads);

    // Sources grouped by the stripe owning their cell column; the plan
    // partitions the columns exactly, so every source lands in exactly
    // one group and no list is written twice.
    std::vector<std::vector<std::uint32_t>> stripe_sources(plan_.stripes());
    for (std::size_t s = 0; s < phys.size(); ++s) {
      const int col = grid_.clamped_cell_x(phys[s]->config().position);
      stripe_sources[plan_.stripe_of(col)].push_back(
          static_cast<std::uint32_t>(s));
    }
    pool_->parallel_for(plan_.stripes(), [&](std::size_t stripe) {
      std::vector<std::uint32_t> candidates;
      for (const std::uint32_t s : stripe_sources[stripe]) {
        compute_list(s, phys, config, candidates);
      }
    });
  }

 private:
  // Persistent across rebuilds — the thread spawn cost is paid once per
  // backend, not per topology change.
  std::unique_ptr<util::TaskPool> pool_;
  ShardPlan plan_;
};

}  // namespace

std::unique_ptr<DeliveryBackend> make_delivery_backend(DeliveryPolicy policy) {
  switch (policy) {
    case DeliveryPolicy::kFullMesh:
      return std::make_unique<FullMeshBackend>();
    case DeliveryPolicy::kCulled:
      return std::make_unique<CulledBackend>();
    case DeliveryPolicy::kSharded:
      return std::make_unique<ShardedBackend>();
  }
  HYDRA_UNREACHABLE("bad delivery policy");
}

Medium::Medium(sim::Simulation& simulation, MediumConfig config,
               ErrorModel error_model)
    : sim_(simulation), config_(config), error_model_(error_model) {
  // The medium is the authority on how soon one node can affect another,
  // so it feeds the scheduler's conservative lookahead. Last-registered
  // wins if a simulation ever hosts several media; the loser's pairs
  // would have to be folded in by the caller.
  sim_.scheduler().set_lookahead_provider([this] { return min_lookahead(); });
}

Medium::~Medium() {
  sim_.scheduler().set_lookahead_provider(nullptr);
}

void Medium::attach(Phy& phy) {
  for (const auto* existing : phys_) {
    HYDRA_ASSERT_MSG(existing != &phy, "phy attached twice");
  }
  phys_.push_back(&phy);
  phy.attached_ = true;
  min_prop_dirty_ = true;
  if (backend_ && !backend_dirty_ &&
      backend_->attach_incremental(phy, phys_, config_)) {
    ++incremental_attaches_;
    return;
  }
  backend_dirty_ = true;
}

bool Medium::detach(Phy& phy) {
  const auto it = std::find(phys_.begin(), phys_.end(), &phy);
  if (it == phys_.end()) return false;
  cancel_pending_rx(phy);
  phy.abort_receptions();
  phy.attached_ = false;
  phys_.erase(it);
  ++detaches_;
  min_prop_dirty_ = true;
  if (backend_ && !backend_dirty_ &&
      backend_->detach_incremental(phy, phys_, config_)) {
    ++incremental_detaches_;
  } else {
    backend_dirty_ = true;
  }
  return true;
}

void Medium::move_node(Phy& phy, Position position) {
  const Position old = phy.config_.position;
  phy.config_.position = position;
  if (!phy.attached_) return;  // takes effect when the PHY re-attaches
  ++moves_;
  min_prop_dirty_ = true;
  if (backend_ && !backend_dirty_ &&
      backend_->move_incremental(phy, old, phys_, config_)) {
    ++incremental_moves_;
    return;
  }
  backend_dirty_ = true;
}

void Medium::cancel_pending_rx(Phy& phy) {
  for (const auto id : phy.pending_rx_events_) sim_.scheduler().cancel(id);
  phy.pending_rx_events_.clear();
}

void Medium::on_phy_destroyed(Phy& phy) {
  const auto it = std::find(phys_.begin(), phys_.end(), &phy);
  // Already detach()ed explicitly: the pending events were cancelled
  // then, and a detached PHY accrues no new ones.
  if (it == phys_.end()) return;
  cancel_pending_rx(phy);
  phys_.erase(it);
  backend_dirty_ = true;
  min_prop_dirty_ = true;
}

void Medium::set_backend(std::unique_ptr<DeliveryBackend> backend) {
  HYDRA_ASSERT_MSG(backend != nullptr, "null delivery backend");
  backend_ = std::move(backend);
  backend_dirty_ = true;
  min_prop_dirty_ = true;
}

const DeliveryBackend& Medium::backend() {
  ensure_backend();
  return *backend_;
}

std::size_t Medium::shards() {
  ensure_backend();
  return backend_->shards();
}

void Medium::ensure_backend() {
  if (!backend_) backend_ = make_delivery_backend(config_.delivery);
  if (backend_dirty_) {
    backend_->rebuild(phys_, config_);
    backend_dirty_ = false;
    ++rebuilds_;
  }
}

sim::Duration Medium::min_lookahead() {
  if (min_prop_dirty_) {
    ensure_backend();
    sim::Duration min = sim::Duration::infinite();
    bool any = false;
    for (const Phy* src : phys_) {
      for (const Delivery& d : backend_->deliveries(*src)) {
        if (!any || d.propagation < min) min = d.propagation;
        any = true;
      }
    }
    // No live pairs: nothing constrains the window, but zero is the
    // honest answer (the scheduler then steps serially, which is also
    // the only sensible mode for a pairless topology).
    min_prop_ = any ? min : sim::Duration::zero();
    min_prop_dirty_ = false;
  }
  return min_prop_;
}

double Medium::rx_power_dbm(const Phy& src, const Phy& dst) const {
  const double d =
      distance_m(src.config().position, dst.config().position);
  return src.config().tx_power_dbm - path_loss_db(config_, d);
}

double Medium::snr_db(const Phy& src, const Phy& dst) const {
  return rx_power_dbm(src, dst) - config_.noise_floor_dbm;
}

sim::Duration Medium::start_transmission(Phy& src, PhyFrame frame) {
  // The medium is cross-node shared state: tx ids, delivery counters and
  // the batch scratch are one global sequence, so a parallel-window
  // event must wait for its exact serial turn before touching them.
  sim::Scheduler::acquire_shared_turn();
  const auto timing =
      frame_timing(frame.broadcast, frame.unicast, src.config().timings);
  // A detached radio still burns airtime — the MAC's timing machinery
  // keeps running — but reaches nobody.
  if (!src.attached_) return timing.total;
  ensure_backend();
  // Pooled: a Transmission and its control block recycle through the
  // allocating thread's shard when the last delivery drops its ref.
  auto tx = util::make_pooled<Transmission>();
  tx->id = next_tx_id_++;
  tx->source = &src;
  tx->frame = std::move(frame);
  tx->timing = timing;
  tx->start = sim_.now();

  const auto& deliveries = backend_->deliveries(src);
  deliveries_scheduled_ += deliveries.size();
  // The whole fan-out commits as one batch: rx_start/rx_end pairs in
  // delivery-list (canonical attach) order, exactly the sequence — and
  // sequence numbers — that per-delivery schedule_in calls would have
  // produced.
  const auto now = sim_.now();
  batch_.clear();
  batch_.reserve(2 * deliveries.size());
  for (const Delivery& delivery : deliveries) {
    Phy* dst = delivery.destination;
    const double power = delivery.rx_power_dbm;
    // Each rx event belongs to its receiver: tagging it with the
    // destination id lets the parallel scheduler run different
    // receivers' events concurrently.
    batch_.push_back({now + delivery.propagation,
                      [dst, tx, power] { dst->rx_start(tx, power); },
                      dst->id()});
    batch_.push_back({now + delivery.propagation + timing.total,
                      [dst, tx, power] { dst->rx_end(tx, power); },
                      dst->id()});
  }
  batch_ids_.clear();
  sim_.scheduler().schedule_batch(batch_, &batch_ids_);
  // Hand each receiver the ids of its rx pair so detach() can cancel
  // in-flight deliveries. Ids whose events already ran are compacted
  // out first, keeping each vector at the live in-flight count instead
  // of growing with history.
  auto& scheduler = sim_.scheduler();
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    auto& pend = deliveries[i].destination->pending_rx_events_;
    std::erase_if(pend,
                  [&](sim::EventId id) { return !scheduler.pending(id); });
    pend.push_back(batch_ids_[2 * i]);
    pend.push_back(batch_ids_[2 * i + 1]);
  }
  return timing.total;
}

}  // namespace hydra::phy
