// PHY device: transmit/receive state, CCA, per-subframe error draws.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "phy/frame.h"
#include "phy/medium.h"
#include "sim/simulation.h"

namespace hydra::phy {

struct PhyConfig {
  Position position;
  // 7.7 mW, the paper's transmit power.
  double tx_power_dbm = 8.86;
  PhyTimings timings;
};

// Half-duplex transceiver. The MAC drives transmit() and reacts to the
// three callbacks; the Medium drives the rx_* entry points.
class Phy {
 public:
  Phy(sim::Simulation& simulation, Medium& medium, PhyConfig config,
      std::uint32_t id);
  // Detaches from the medium and cancels every event that still names
  // this PHY (in-flight deliveries, the tx-complete timer), so a node
  // may be destroyed mid-simulation without leaving dangling callbacks.
  ~Phy();

  Phy(const Phy&) = delete;
  Phy& operator=(const Phy&) = delete;

  // --- MAC-facing interface -------------------------------------------
  // Starts transmitting; the PHY must be idle (not already transmitting).
  // on_tx_complete fires when the frame leaves the air.
  void transmit(PhyFrame frame);

  bool transmitting() const { return transmitting_; }
  // Clear-channel assessment: busy while transmitting or while any
  // incoming energy exceeds the CCA threshold.
  bool cca_busy() const;

  // A decodable frame finished arriving (possibly with bad subframes).
  std::function<void(const RxReport&)> on_rx;
  // Our own transmission left the air.
  std::function<void()> on_tx_complete;
  // CCA state changed (true = busy). Fired on every edge.
  std::function<void(bool)> on_cca_change;

  // --- Medium-facing interface ----------------------------------------
  void rx_start(const std::shared_ptr<const Transmission>& tx,
                double rx_power_dbm);
  void rx_end(const std::shared_ptr<const Transmission>& tx,
              double rx_power_dbm);

  const PhyConfig& config() const { return config_; }
  std::uint32_t id() const { return id_; }
  // False after Medium::detach() until the next attach(). Position
  // changes go through Medium::move_node (the medium owns the delivery
  // lists the position feeds).
  bool attached() const { return attached_; }

  // Diagnostics.
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t collisions_seen() const { return collisions_; }
  // Deliveries the medium started at this PHY (audible or not); a culled
  // medium never delivers to out-of-reach receivers, so this stays 0
  // there — the cull-correctness tests pin that.
  std::uint64_t rx_starts() const { return rx_starts_; }

 private:
  // The medium manages attachment state, the position (via move_node)
  // and the pending-delivery handles it needs to cancel on detach.
  friend class Medium;

  struct Incoming {
    std::uint64_t tx_id;
    double power_dbm;
    bool doomed;  // overlapped another reception or our own transmission
  };

  void update_cca();
  // Detach path: drops every in-progress reception and re-evaluates CCA
  // (the matching rx_end events have just been cancelled, so nothing
  // else would ever clear them).
  void abort_receptions();
  // Fills and returns scratch_report_; valid until the next evaluate().
  const RxReport& evaluate(const Transmission& tx, double rx_power_dbm,
                           bool collided);

  sim::Simulation& sim_;
  Medium& medium_;
  PhyConfig config_;
  std::uint32_t id_;

  bool transmitting_ = false;
  bool last_cca_busy_ = false;
  bool attached_ = false;
  // In-progress receptions, ordered by arrival. A handful at most, so a
  // flat vector beats a node-per-entry map on the per-delivery path:
  // push_back/erase reuse the same capacity for the whole run.
  std::vector<Incoming> incoming_;
  // Reused across receptions so steady-state delivery evaluation
  // allocates nothing (the contained vectors keep their capacity).
  RxReport scratch_report_;
  // Scheduler handles for events that capture `this`: the rx_start /
  // rx_end pairs of in-flight deliveries (written by the medium,
  // compacted as events run) and the tx-complete timer.
  std::vector<sim::EventId> pending_rx_events_;
  sim::EventId tx_complete_event_;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t rx_starts_ = 0;
};

}  // namespace hydra::phy
