#include "phy/timing.h"

#include <numeric>

#include "util/assert.h"

namespace hydra::phy {

const PhyTimings& default_timings() {
  static const PhyTimings timings{};
  return timings;
}

sim::Duration payload_airtime(std::size_t bytes, const proto::PhyMode& mode) {
  HYDRA_ASSERT(mode.rate.bits_per_second() > 0);
  // ceil(bits * 1e9 / rate) nanoseconds.
  const auto bits = static_cast<std::int64_t>(bytes) * 8;
  const auto bps = static_cast<std::int64_t>(mode.rate.bits_per_second());
  const auto ns = (bits * 1'000'000'000 + bps - 1) / bps;
  return sim::Duration::nanos(ns);
}

std::size_t PortionSpec::total_bytes() const {
  return std::accumulate(subframe_bytes.begin(), subframe_bytes.end(),
                         std::size_t{0});
}

FrameTiming frame_timing(const PortionSpec& bcast, const PortionSpec& ucast,
                         const PhyTimings& t) {
  FrameTiming out;
  out.header = t.preamble;
  if (!bcast.empty()) out.header += t.broadcast_field;

  sim::Duration cursor = out.header;
  for (const auto bytes : bcast.subframe_bytes) {
    cursor += payload_airtime(bytes, bcast.mode);
    out.broadcast_subframe_end.push_back(cursor);
  }
  out.broadcast_portion = cursor - out.header;

  const auto ucast_start = cursor;
  for (const auto bytes : ucast.subframe_bytes) {
    cursor += payload_airtime(bytes, ucast.mode);
    out.unicast_subframe_end.push_back(cursor);
  }
  out.unicast_portion = cursor - ucast_start;
  out.total = cursor;
  return out;
}

std::int64_t samples_for(sim::Duration d, const PhyTimings& t) {
  return d.ns() * t.sample_rate / 1'000'000'000;
}

}  // namespace hydra::phy
