// Per-subframe error model with channel-estimate aging.
//
// Two effects, both observed on the paper's prototype:
//
// 1. SNR margin. Each mode has a required SNR; the per-bit error
//    probability decays exponentially (in dB) with margin above it. At
//    the paper's 25 dB operating point the 0.65–2.6 Mbps rates are
//    quasi-error-free and the 64-QAM rates are unusable.
//
// 2. Channel aging. The receiver equalizes with channel estimates from
//    the preamble; for very long (aggregated) frames the true channel
//    drifts away from the estimate, and subframes transmitted beyond the
//    coherence time fail with rapidly increasing probability. The paper
//    measured this limit at ~120 Ksamples (≈62 ms at 2 Msample/s)
//    independent of rate — the cause of Fig. 7's throughput cliff.
#pragma once

#include "phy/timing.h"
#include "proto/mode.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace hydra::phy {

struct ErrorModelConfig {
  // Channel coherence time: subframes that finish after this offset into
  // the frame see a degraded effective SNR. ~120 Ksamples at 2 Msps.
  sim::Duration coherence_time = sim::Duration::micros(62'000);
  // Effective-SNR penalty growth beyond the coherence time.
  double aging_db_per_ms = 3.0;
  // Per-bit error probability at exactly the required SNR.
  double ber_at_required_snr = 1e-4;
  // dB of margin that reduce the BER by 10x.
  double ber_decade_per_db = 2.0;
};

class ErrorModel {
 public:
  explicit ErrorModel(ErrorModelConfig config = {}) : config_(config) {}

  const ErrorModelConfig& config() const { return config_; }

  // Effective SNR for a bit received `offset_in_frame` after frame start.
  double effective_snr_db(double snr_db, sim::Duration offset_in_frame) const;

  // Per-bit error probability at the given effective SNR for `mode`.
  double bit_error_probability(const proto::PhyMode& mode, double eff_snr_db) const;

  // Probability that a subframe of `bytes` bytes ending at
  // `end_offset` into the frame is received with a bad FCS.
  double subframe_error_probability(const proto::PhyMode& mode, double snr_db,
                                    std::size_t bytes,
                                    sim::Duration end_offset) const;

  // Draws the error outcome for one subframe. True means corrupted.
  bool draw_subframe_error(sim::Rng& rng, const proto::PhyMode& mode, double snr_db,
                           std::size_t bytes, sim::Duration end_offset) const;

 private:
  ErrorModelConfig config_;
};

}  // namespace hydra::phy
