// The unit the PHY transmits and receives.
//
// A PhyFrame is two portions (broadcast, then unicast — the paper's Fig. 2
// layout) plus an opaque payload pointer that the MAC layer interprets.
// The PHY only needs subframe byte boundaries and modes: airtime, sample
// counts and per-subframe error draws all derive from those.
#pragma once

#include <memory>
#include <vector>

#include "phy/timing.h"

namespace hydra::phy {

// Base class for the MAC-level content carried through the medium. The
// PHY never inspects it; the receiving MAC downcasts to its own types.
struct Payload {
  virtual ~Payload() = default;
};

struct PhyFrame {
  PortionSpec broadcast;
  PortionSpec unicast;
  std::shared_ptr<const Payload> payload;

  bool empty() const { return broadcast.empty() && unicast.empty(); }
  std::size_t total_bytes() const {
    return broadcast.total_bytes() + unicast.total_bytes();
  }
};

// Outcome of one reception, delivered to the MAC.
struct RxReport {
  PhyFrame frame;
  // Per-subframe FCS outcome, in portion order. All false on collision.
  std::vector<bool> broadcast_ok;
  std::vector<bool> unicast_ok;
  double snr_db = 0.0;
  // True when another transmission (or our own) overlapped this one; the
  // frame is undecodable and all subframe flags are false.
  bool collided = false;

  bool all_unicast_ok() const {
    for (const bool ok : unicast_ok)
      if (!ok) return false;
    return true;
  }
};

}  // namespace hydra::phy
