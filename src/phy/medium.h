// The shared wireless medium: path loss, propagation, frame delivery.
//
// Log-distance path loss calibrated to the paper's operating point:
// 7.7 mW transmit power and 2.5 m node spacing give 25 dB SNR over
// a 1 MHz channel.
//
// Delivery is pluggable. A transmission fans out to the receivers a
// DeliveryBackend selects:
//
//   kFullMesh  every other attached PHY — exact paper parity; O(N) events
//              per frame regardless of geometry.
//   kCulled    only PHYs whose receive power clears the cull floor
//              (noise floor − cull_margin_db, never above the CCA
//              threshold). Receivers below the CCA threshold are
//              behaviourally inert — they cannot assert CCA, collide, or
//              decode — so culling them is bit-identical to full mesh
//              while cutting event traffic to O(k) reachable neighbors.
//   kSharded   the culled receiver set, computed in parallel: the
//              spatial grid's cell columns are cut into stripes
//              (ShardPlan) and a persistent util::TaskPool computes the
//              per-source candidate/rx-power/delay lists one stripe per
//              worker. The lists commit in canonical order — indexed by
//              attach order, each sorted by receiver attach index — so
//              the scheduler sees exactly the event sequence the serial
//              kCulled backend would have produced. Bit-identical trace
//              digests are the contract, pinned by the
//              shard_determinism suite (`ctest -L shard`).
//
// Every backend precomputes its per-source delivery lists (receive power
// and propagation delay per pair) once per topology, so the per-frame
// hot path does no log10 at all, and a whole transmission's fan-out
// commits through one Scheduler::schedule_batch. Positions are no longer
// frozen at build time: attach(), detach() and move_node() patch the
// lists incrementally for the touched node alone whenever the backend
// can prove the update local (inside the grid's bounding box, reach
// within one cell); otherwise they fall back to a full rebuild. The
// determinism contract extends to motion — after any incremental patch
// the lists are bit-identical to a from-scratch rebuild at the current
// positions, pinned by the mobility determinism suite (`ctest -L
// mobility`). Detaching (or destroying) a PHY cancels its in-flight
// rx_start/rx_end events through the scheduler's generation-stamped
// cancel path, so no scheduled event ever touches a PHY the medium no
// longer knows.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/error_model.h"
#include "phy/frame.h"
#include "phy/spatial_index.h"
#include "sim/simulation.h"
#include "sim/turn.h"
#include "util/thread_annotations.h"

namespace hydra::phy {

class Phy;

enum class DeliveryPolicy { kFullMesh, kCulled, kSharded };

const char* to_string(DeliveryPolicy policy);

struct MediumConfig {
  double path_loss_at_1m_db = 73.0;
  double path_loss_exponent = 3.0;
  // Thermal noise floor over the 1 MHz channel.
  double noise_floor_dbm = -101.0;
  // Energy-detect threshold for clear channel assessment. Low enough
  // that every node in the paper's topologies (max 7.5 m apart) hears
  // every transmission.
  double cca_threshold_dbm = -95.0;
  double propagation_speed_mps = 3.0e8;

  // Which receivers a transmission is delivered to.
  DeliveryPolicy delivery = DeliveryPolicy::kFullMesh;
  // kCulled/kSharded drop receivers more than this margin below the
  // noise floor. The effective floor is additionally clamped to the CCA
  // threshold (see cull_floor_dbm), which is what guarantees culled
  // delivery stays bit-identical to full mesh.
  double cull_margin_db = 10.0;
  // kSharded: worker count (== stripe count, further capped by the
  // grid's column count). 0 resolves to the hardware concurrency,
  // capped at 8 — see resolve_shard_threads.
  std::size_t shard_threads = 0;
};

// Path loss over `distance` under `config`'s log-distance model; the
// model stops being meaningful below 1 m, so distance clamps there.
double path_loss_db(const MediumConfig& config, double distance);

// Propagation delay over `distance`, rounded to the nearest nanosecond
// and clamped to the same 1 m floor as the path-loss model.
sim::Duration propagation_delay(const MediumConfig& config, double distance);

// The receive-power floor below which kCulled skips delivery: noise
// floor − cull margin, but never above the CCA threshold.
double cull_floor_dbm(const MediumConfig& config);

// The largest distance at which a transmitter at `tx_power_dbm` still
// clears the cull floor (≥ 1 m; the path-loss clamp applies to both
// branches — a cull floor barely under the tx power must not yield a
// sub-metre reach).
double reach_radius_m(const MediumConfig& config, double tx_power_dbm);

// The worker count the sharded backend runs with: the configured
// shard_threads, or (when 0) the hardware concurrency capped at 8.
std::size_t resolve_shard_threads(const MediumConfig& config);

// One in-flight transmission, shared by every receiver's bookkeeping.
struct Transmission {
  std::uint64_t id = 0;
  const Phy* source = nullptr;
  PhyFrame frame;
  FrameTiming timing;
  sim::TimePoint start;
};

// One precomputed receiver of a given source PHY.
struct Delivery {
  Phy* destination = nullptr;
  double rx_power_dbm = 0.0;
  sim::Duration propagation;
};

// The seam between the medium and its receiver-selection strategy.
// Implementations precompute per-source delivery lists in rebuild();
// the medium calls deliveries() once per transmission. Lists must be
// ordered by attach index — scheduling order at equal timestamps decides
// RNG draw order, so every backend has to agree on it. That canonical
// order is the determinism contract every parallel backend must commit
// its results through.
class DeliveryBackend {
 public:
  virtual ~DeliveryBackend() = default;

  virtual const char* name() const = 0;

  // Recomputes the delivery lists from the attached PHY set at their
  // current positions (called lazily after a membership or position
  // change the backend could not absorb incrementally).
  virtual void rebuild(const std::vector<Phy*>& phys,
                       const MediumConfig& config) = 0;

  // Extends the existing lists for `phy`, just attached as phys.back(),
  // without touching any other pair. Returns false when the backend
  // cannot prove the update local (then the caller falls back to a full
  // rebuild). Only meaningful after a rebuild().
  virtual bool attach_incremental(Phy& phy, const std::vector<Phy*>& phys,
                                  const MediumConfig& config) {
    (void)phy;
    (void)phys;
    (void)config;
    return false;
  }

  // Removes `phy` — already erased from `phys` — from both delivery
  // directions: its own list goes away and it is stripped from every
  // remaining list, without recomputing any surviving pair. Same
  // contract as attach_incremental: false means "rebuild instead".
  virtual bool detach_incremental(Phy& phy, const std::vector<Phy*>& phys,
                                  const MediumConfig& config) {
    (void)phy;
    (void)phys;
    (void)config;
    return false;
  }

  // Repositions `phy` (its config already holds the new position;
  // `old_position` is where the lists last saw it) and patches both
  // directions — the node's own list and its entry in every list that
  // can observe the move — so the result is bit-identical to a rebuild
  // at the new positions. False means "rebuild instead"; backends must
  // refuse moves they cannot prove local (e.g. outside the grid's
  // bounding box, where the 3×3 superset guarantee no longer holds).
  virtual bool move_incremental(Phy& phy, Position old_position,
                                const std::vector<Phy*>& phys,
                                const MediumConfig& config) {
    (void)phy;
    (void)old_position;
    (void)phys;
    (void)config;
    return false;
  }

  // The receivers a transmission from `src` fans out to.
  virtual const std::vector<Delivery>& deliveries(const Phy& src) const = 0;

  // How many stripes rebuild() fans out across (1 for serial backends).
  virtual std::size_t shards() const { return 1; }
};

// Creates the backend implementing `policy`.
std::unique_ptr<DeliveryBackend> make_delivery_backend(DeliveryPolicy policy);

class Medium {
 public:
  Medium(sim::Simulation& simulation, MediumConfig config = {},
         ErrorModel error_model = ErrorModel{});
  ~Medium();

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  // Registers a PHY. A PHY that is destroyed while attached detaches
  // itself (and cancels its in-flight deliveries), so outliving the
  // medium's events is no longer the caller's problem.
  void attach(Phy& phy);

  // Unregisters `phy`: cancels its pending rx_start/rx_end events,
  // aborts its in-progress receptions, and removes it from both
  // delivery-list directions — incrementally when the backend can prove
  // the update local, via a deferred full rebuild otherwise. Idempotent;
  // returns false when `phy` was not attached. A detached PHY may keep
  // transmitting (the MAC's timing machinery keeps running) but reaches
  // nobody until re-attach()ed.
  bool detach(Phy& phy);

  // Repositions `phy` and patches the delivery lists under the same
  // incremental-or-rebuild contract as detach(). Works on detached PHYs
  // too (the position just updates for a later re-attach).
  void move_node(Phy& phy, Position position);

  // Begins delivering `frame` from `src` to every receiver the delivery
  // backend selects. Returns the frame's on-air duration.
  sim::Duration start_transmission(Phy& src, PhyFrame frame);

  double rx_power_dbm(const Phy& src, const Phy& dst) const;
  double snr_db(const Phy& src, const Phy& dst) const;

  const MediumConfig& config() const { return config_; }
  const ErrorModel& error_model() const { return error_model_; }
  sim::Simulation& simulation() { return sim_; }

  // Replaces the delivery backend (tests, future sharded backends). The
  // default is the backend for config().delivery.
  void set_backend(std::unique_ptr<DeliveryBackend> backend);
  const DeliveryBackend& backend();

  // Counter reads for result collection. Outside the analysis: they are
  // called between runs (or after a window barrier), when no event is
  // executing and the turn capability has no holder to name.
  std::uint64_t transmissions_started() const NO_THREAD_SAFETY_ANALYSIS {
    return next_tx_id_ - 1;
  }
  // Receiver deliveries scheduled so far (each is one rx_start/rx_end
  // event pair); deliveries ÷ transmissions is the per-frame fan-out the
  // scale bench charts.
  std::uint64_t deliveries_scheduled() const NO_THREAD_SAFETY_ANALYSIS {
    return deliveries_scheduled_;
  }

  // Delivery-list accounting: full rebuilds performed; attaches, detaches
  // and moves the backend absorbed incrementally instead of rebuilding;
  // total detach()/move_node() calls on attached PHYs; and the stripe
  // count the current backend fans rebuilds across (1 for the serial
  // backends).
  std::uint64_t rebuilds() const { return rebuilds_; }
  std::uint64_t incremental_attaches() const { return incremental_attaches_; }
  std::uint64_t detaches() const { return detaches_; }
  std::uint64_t moves() const { return moves_; }
  std::uint64_t incremental_detaches() const { return incremental_detaches_; }
  std::uint64_t incremental_moves() const { return incremental_moves_; }
  std::size_t shards();

  // The attached PHYs in attach order — the canonical index space the
  // delivery lists use (tests compare incremental lists against a
  // from-scratch rebuild over exactly this set).
  const std::vector<Phy*>& attached() const { return phys_; }

  // The scheduler's safe lookahead: the minimum propagation delay over
  // every live delivery pair (an event at one node cannot reach another
  // node's queue sooner than this). Zero when no pairs exist, which
  // makes the parallel-window policy degrade to serial stepping. The
  // medium registers this as the simulation scheduler's lookahead
  // provider on construction; recomputed lazily after any attach /
  // detach / move / backend change.
  sim::Duration min_lookahead();

 private:
  friend class Phy;

  void ensure_backend();
  // Cancels every still-queued rx event scheduled for `phy`.
  void cancel_pending_rx(Phy& phy);
  // Destructor-path detach: unregister and cancel, but skip the
  // incremental patch (teardown destroys nodes one by one — patching N
  // lists per destruction is O(N²) work nobody will read) and skip the
  // CCA callback (the owning node is mid-destruction).
  void on_phy_destroyed(Phy& phy);

  sim::Simulation& sim_;
  MediumConfig config_;
  ErrorModel error_model_;
  std::vector<Phy*> phys_;
  std::unique_ptr<DeliveryBackend> backend_;
  bool backend_dirty_ = true;
  // min_lookahead() cache; dirtied by the same topology changes that
  // dirty the backend, plus incremental patches (which bypass
  // backend_dirty_ but can still shrink the minimum).
  bool min_prop_dirty_ = true;
  sim::Duration min_prop_ = sim::Duration::zero();
  // Transmission-path state is one global sequence shared by every
  // node: in parallel-window execution start_transmission must hold the
  // scheduler's canonical turn before touching it (enforced at compile
  // time by GUARDED_BY under HYDRA_THREAD_SAFETY).
  std::uint64_t next_tx_id_ GUARDED_BY(sim::shared_turn) = 1;
  std::uint64_t deliveries_scheduled_ GUARDED_BY(sim::shared_turn) = 0;
  // Topology bookkeeping (the delivery lists behind backend_, the
  // lookahead cache, the rebuild counters) is NOT turn-guarded: it
  // mutates through attach/detach/move_node, which run either between
  // simulations or from untagged (window-fencing, hence serial) events.
  // The sharded backend's rebuild additionally writes disjoint
  // per-source lists from pool workers — a partitioning discipline no
  // mutex annotation can express; the TSan CI slice covers it.
  std::uint64_t rebuilds_ = 0;
  std::uint64_t incremental_attaches_ = 0;
  std::uint64_t detaches_ = 0;
  std::uint64_t moves_ = 0;
  std::uint64_t incremental_detaches_ = 0;
  std::uint64_t incremental_moves_ = 0;
  // Reused per transmission: the batch the delivery fan-out commits
  // through (one schedule_batch call instead of 2·k schedule_in heap
  // pushes), and the ids it hands back for per-receiver cancellation.
  // Shared scratch, so turn-guarded like the counters above.
  std::vector<sim::Scheduler::BatchEvent> batch_ GUARDED_BY(sim::shared_turn);
  std::vector<sim::EventId> batch_ids_ GUARDED_BY(sim::shared_turn);
};

}  // namespace hydra::phy
