// The shared wireless medium: path loss, propagation, frame delivery.
//
// Log-distance path loss calibrated to the paper's operating point:
// 7.7 mW transmit power and 2.5 m node spacing give 25 dB SNR over
// a 1 MHz channel.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "phy/error_model.h"
#include "phy/frame.h"
#include "sim/simulation.h"

namespace hydra::phy {

class Phy;

struct Position {
  double x_m = 0.0;
  double y_m = 0.0;
};

double distance_m(Position a, Position b);

struct MediumConfig {
  double path_loss_at_1m_db = 73.0;
  double path_loss_exponent = 3.0;
  // Thermal noise floor over the 1 MHz channel.
  double noise_floor_dbm = -101.0;
  // Energy-detect threshold for clear channel assessment. Low enough
  // that every node in the paper's topologies (max 7.5 m apart) hears
  // every transmission.
  double cca_threshold_dbm = -95.0;
  double propagation_speed_mps = 3.0e8;
};

// One in-flight transmission, shared by every receiver's bookkeeping.
struct Transmission {
  std::uint64_t id = 0;
  const Phy* source = nullptr;
  PhyFrame frame;
  FrameTiming timing;
  sim::TimePoint start;
};

class Medium {
 public:
  Medium(sim::Simulation& simulation, MediumConfig config = {},
         ErrorModel error_model = ErrorModel{});

  Medium(const Medium&) = delete;
  Medium& operator=(const Medium&) = delete;

  // Registers a PHY; it must outlive the medium's last event.
  void attach(Phy& phy);

  // Begins delivering `frame` from `src` to every other attached PHY.
  // Returns the frame's on-air duration.
  sim::Duration start_transmission(Phy& src, PhyFrame frame);

  double rx_power_dbm(const Phy& src, const Phy& dst) const;
  double snr_db(const Phy& src, const Phy& dst) const;

  const MediumConfig& config() const { return config_; }
  const ErrorModel& error_model() const { return error_model_; }
  sim::Simulation& simulation() { return sim_; }

  std::uint64_t transmissions_started() const { return next_tx_id_ - 1; }

 private:
  sim::Simulation& sim_;
  MediumConfig config_;
  ErrorModel error_model_;
  std::vector<Phy*> phys_;
  std::uint64_t next_tx_id_ = 1;
};

}  // namespace hydra::phy
