#include "phy/phy.h"

#include "util/assert.h"

namespace hydra::phy {

Phy::Phy(sim::Simulation& simulation, Medium& medium, PhyConfig config,
         std::uint32_t id)
    : sim_(simulation), medium_(medium), config_(config), id_(id) {
  medium_.attach(*this);
}

Phy::~Phy() {
  sim_.scheduler().cancel(tx_complete_event_);
  medium_.on_phy_destroyed(*this);
}

void Phy::transmit(PhyFrame frame) {
  HYDRA_ASSERT_MSG(!transmitting_, "transmit while already transmitting");
  HYDRA_ASSERT_MSG(!frame.empty(), "empty phy frame");
  transmitting_ = true;
  ++frames_sent_;
  // Receptions overlapping our own transmission are lost (half duplex).
  for (auto& rx : incoming_) rx.doomed = true;
  update_cca();

  const auto airtime = medium_.start_transmission(*this, std::move(frame));
  // Pin the tx-complete event to this node even when transmit() is
  // reached from an untagged context (test harnesses driving the PHY
  // directly).
  const sim::Scheduler::AffinityScope scope(id_);
  tx_complete_event_ = sim_.scheduler().schedule_in(airtime, [this] {
    transmitting_ = false;
    update_cca();
    if (on_tx_complete) on_tx_complete();
  });
}

bool Phy::cca_busy() const {
  if (transmitting_) return true;
  for (const auto& rx : incoming_) {
    if (rx.power_dbm >= medium_.config().cca_threshold_dbm) return true;
  }
  return false;
}

void Phy::update_cca() {
  const bool busy = cca_busy();
  if (busy != last_cca_busy_) {
    last_cca_busy_ = busy;
    if (on_cca_change) on_cca_change(busy);
  }
}

void Phy::abort_receptions() {
  incoming_.clear();
  update_cca();
}

void Phy::rx_start(const std::shared_ptr<const Transmission>& tx,
                   double rx_power_dbm) {
  ++rx_starts_;
  const bool audible = rx_power_dbm >= medium_.config().cca_threshold_dbm;
  bool doomed = transmitting_;
  if (audible) {
    // Any concurrent audible reception corrupts both frames (no capture).
    for (auto& rx : incoming_) {
      if (rx.power_dbm >= medium_.config().cca_threshold_dbm) {
        rx.doomed = true;
        doomed = true;
      }
    }
  }
  incoming_.push_back(Incoming{tx->id, rx_power_dbm, doomed});
  update_cca();
}

void Phy::rx_end(const std::shared_ptr<const Transmission>& tx,
                 double rx_power_dbm) {
  auto it = incoming_.begin();
  while (it != incoming_.end() && it->tx_id != tx->id) ++it;
  HYDRA_ASSERT_MSG(it != incoming_.end(), "rx_end without rx_start");
  const bool doomed = it->doomed || transmitting_;
  incoming_.erase(it);
  update_cca();

  if (rx_power_dbm < medium_.config().cca_threshold_dbm) {
    return;  // below sensitivity: inaudible
  }
  if (doomed) ++collisions_;

  const auto& report = evaluate(*tx, rx_power_dbm, doomed);
  ++frames_received_;
  if (on_rx) on_rx(report);
}

const RxReport& Phy::evaluate(const Transmission& tx, double rx_power_dbm,
                              bool collided) {
  // Reuse the scratch report: every assignment below lands in storage
  // retained from the previous reception, so the per-delivery path is
  // allocation-free once warm. The reference stays valid through the
  // synchronous on_rx call that consumes it.
  RxReport& report = scratch_report_;
  report.frame = tx.frame;
  report.broadcast_ok.clear();
  report.unicast_ok.clear();
  report.snr_db = rx_power_dbm - medium_.config().noise_floor_dbm;
  report.collided = collided;
  report.broadcast_ok.resize(tx.frame.broadcast.subframe_bytes.size(), false);
  report.unicast_ok.resize(tx.frame.unicast.subframe_bytes.size(), false);
  if (collided) return report;

  const auto& model = medium_.error_model();
  auto& rng = sim_.rng();
  for (std::size_t i = 0; i < report.broadcast_ok.size(); ++i) {
    const bool err = model.draw_subframe_error(
        rng, tx.frame.broadcast.mode, report.snr_db,
        tx.frame.broadcast.subframe_bytes[i],
        tx.timing.broadcast_subframe_end[i]);
    report.broadcast_ok[i] = !err;
  }
  for (std::size_t i = 0; i < report.unicast_ok.size(); ++i) {
    const bool err = model.draw_subframe_error(
        rng, tx.frame.unicast.mode, report.snr_db,
        tx.frame.unicast.subframe_bytes[i],
        tx.timing.unicast_subframe_end[i]);
    report.unicast_ok[i] = !err;
  }
  return report;
}

}  // namespace hydra::phy
