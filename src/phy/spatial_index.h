// Geometry support for the delivery backends: node positions, a
// uniform-grid spatial index, and the stripe partition the sharded
// backend fans out over.
//
// The grid stores point indices in cells at least one query radius
// wide, so every point within that radius of a query position lives in
// the 3×3 cell neighborhood — candidate sets are supersets of the
// in-reach sets, never subsets (the property test pins this). A
// ShardPlan cuts the grid's cell columns into contiguous stripes that
// partition the cell set exactly: every column — and so every receiver
// — belongs to exactly one stripe, the unit of parallelism for the
// sharded delivery backend.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace hydra::phy {

struct Position {
  double x_m = 0.0;
  double y_m = 0.0;
};

double distance_m(Position a, Position b);

// Uniform-grid spatial index over static points.
class SpatialGrid {
 public:
  // Builds over `points`; cells at least `min_cell_m` wide.
  void build(const std::vector<Position>& points, double min_cell_m);

  // The realized cell width (>= the requested minimum; the per-axis cap
  // can widen cells further when the world is very elongated).
  double cell_m() const { return cell_m_; }
  int cells_x() const { return nx_; }
  int cells_y() const { return ny_; }

  // True when `p` lies inside the built bounding box — the precondition
  // for insert() and for the incremental-attach fast path.
  bool contains(Position p) const;

  // Adds one point with the given payload index; requires contains(p).
  void insert(Position p, std::uint32_t index);

  // Removes payload `index` from the cell containing `p` (it must have
  // been inserted there). O(cell occupancy); the cell's remaining
  // entries keep their relative order.
  void erase(Position p, std::uint32_t index);

  // Removes payload `index` from wherever it sits and renumbers every
  // stored index above it down by one — the mirror of erasing element
  // `index` from the payload vector the grid indexes into (a detach).
  // O(total points); cell-local order is preserved.
  void erase_and_renumber(std::uint32_t index);

  // Cell coordinates of `p`, clamped into the grid — out-of-box
  // positions map to the nearest boundary cell, which keeps
  // neighborhood() a superset query for any position within one cell
  // width of the box.
  int clamped_cell_x(Position p) const;
  int clamped_cell_y(Position p) const;

  // Calls `visit` with every point index in the 3×3 neighborhood of the
  // (clamped) cell containing `p`.
  template <typename Visit>
  void neighborhood(Position p, Visit&& visit) const {
    const int cx = clamped_cell_x(p);
    const int cy = clamped_cell_y(p);
    for (int y = std::max(0, cy - 1); y <= std::min(ny_ - 1, cy + 1); ++y) {
      for (int x = std::max(0, cx - 1); x <= std::min(nx_ - 1, cx + 1); ++x) {
        for (const std::uint32_t i : cells_[cell_index(x, y)]) visit(i);
      }
    }
  }

 private:
  int cell_of(double offset_m) const;
  std::size_t cell_index(int x, int y) const {
    return static_cast<std::size_t>(y) * nx_ + x;
  }

  double cell_m_ = 1.0;
  Position min_;
  Position max_;
  int nx_ = 1;
  int ny_ = 1;
  std::vector<std::vector<std::uint32_t>> cells_;
};

// Contiguous stripes of grid cell columns. Stripes partition the column
// range [0, cells_x) exactly — no column (and so no receiver) is owned
// by two stripes or by none — which is what lets the sharded backend
// hand each stripe to a worker without synchronizing writes.
class ShardPlan {
 public:
  // The trivial plan: one stripe over one column.
  ShardPlan() = default;
  // Splits `cells_x` columns into min(max_stripes, cells_x) stripes of
  // near-equal width (at least 1).
  ShardPlan(int cells_x, std::size_t max_stripes);

  std::size_t stripes() const { return bounds_.size() - 1; }
  // The stripe owning `cell_x` (clamped into the column range).
  std::size_t stripe_of(int cell_x) const;
  // Column range [first, last) of `stripe`.
  std::pair<int, int> stripe_columns(std::size_t stripe) const;

 private:
  std::vector<int> bounds_ = {0, 1};
};

}  // namespace hydra::phy
