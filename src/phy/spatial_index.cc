#include "phy/spatial_index.h"

#include <cmath>

#include "util/assert.h"

namespace hydra::phy {

double distance_m(Position a, Position b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

void SpatialGrid::build(const std::vector<Position>& points,
                        double min_cell_m) {
  HYDRA_ASSERT(min_cell_m > 0.0);
  min_ = max_ = {0.0, 0.0};
  if (!points.empty()) {
    min_ = max_ = points.front();
    for (const auto& p : points) {
      min_.x_m = std::min(min_.x_m, p.x_m);
      min_.y_m = std::min(min_.y_m, p.y_m);
      max_.x_m = std::max(max_.x_m, p.x_m);
      max_.y_m = std::max(max_.y_m, p.y_m);
    }
  }
  // Cells may only be *wider* than requested — never narrower, or the
  // 3×3 query would miss in-reach receivers. The per-axis cap keeps a
  // far-flung outlier from exploding the cell table.
  constexpr double kMaxCellsPerAxis = 64.0;
  cell_m_ = std::max({min_cell_m, (max_.x_m - min_.x_m) / kMaxCellsPerAxis,
                      (max_.y_m - min_.y_m) / kMaxCellsPerAxis});
  nx_ = ny_ = 1;
  if (!points.empty()) {
    nx_ = cell_of(max_.x_m - min_.x_m) + 1;
    ny_ = cell_of(max_.y_m - min_.y_m) + 1;
  }
  cells_.assign(static_cast<std::size_t>(nx_) * ny_, {});
  for (std::size_t i = 0; i < points.size(); ++i) {
    insert(points[i], static_cast<std::uint32_t>(i));
  }
}

bool SpatialGrid::contains(Position p) const {
  return p.x_m >= min_.x_m && p.x_m <= max_.x_m && p.y_m >= min_.y_m &&
         p.y_m <= max_.y_m;
}

void SpatialGrid::insert(Position p, std::uint32_t index) {
  HYDRA_ASSERT_MSG(contains(p), "insert outside the grid's bounding box");
  cells_[cell_index(clamped_cell_x(p), clamped_cell_y(p))].push_back(index);
}

void SpatialGrid::erase(Position p, std::uint32_t index) {
  auto& cell = cells_[cell_index(clamped_cell_x(p), clamped_cell_y(p))];
  const auto it = std::find(cell.begin(), cell.end(), index);
  HYDRA_ASSERT_MSG(it != cell.end(), "erase of a point the grid never held");
  cell.erase(it);
}

void SpatialGrid::erase_and_renumber(std::uint32_t index) {
  bool found = false;
  for (auto& cell : cells_) {
    for (auto it = cell.begin(); it != cell.end();) {
      if (*it == index) {
        it = cell.erase(it);
        found = true;
      } else {
        if (*it > index) --*it;
        ++it;
      }
    }
  }
  HYDRA_ASSERT_MSG(found, "erase of a point the grid never held");
}

int SpatialGrid::clamped_cell_x(Position p) const {
  return std::clamp(cell_of(p.x_m - min_.x_m), 0, nx_ - 1);
}

int SpatialGrid::clamped_cell_y(Position p) const {
  return std::clamp(cell_of(p.y_m - min_.y_m), 0, ny_ - 1);
}

int SpatialGrid::cell_of(double offset_m) const {
  return static_cast<int>(std::floor(offset_m / cell_m_));
}

ShardPlan::ShardPlan(int cells_x, std::size_t max_stripes) {
  HYDRA_ASSERT(cells_x >= 1);
  const std::size_t stripes =
      std::clamp<std::size_t>(max_stripes, 1, static_cast<std::size_t>(cells_x));
  bounds_.clear();
  bounds_.reserve(stripes + 1);
  for (std::size_t s = 0; s <= stripes; ++s) {
    bounds_.push_back(
        static_cast<int>(s * static_cast<std::size_t>(cells_x) / stripes));
  }
}

std::size_t ShardPlan::stripe_of(int cell_x) const {
  const int x = std::clamp(cell_x, 0, bounds_.back() - 1);
  // The first bound strictly above x ends the owning stripe.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), x);
  return static_cast<std::size_t>(it - bounds_.begin()) - 1;
}

std::pair<int, int> ShardPlan::stripe_columns(std::size_t stripe) const {
  HYDRA_ASSERT(stripe < stripes());
  return {bounds_[stripe], bounds_[stripe + 1]};
}

}  // namespace hydra::phy
