// Windowed time series: throughput-over-time for flows and airtime
// shares for nodes. Used by examples and benches to show *when* a scheme
// wins, not just by how much on average.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace hydra::stats {

// Accumulates (time, value) samples into fixed-width bins; report() turns
// byte counts into per-bin Mbps.
class ThroughputTimeline {
 public:
  explicit ThroughputTimeline(sim::Duration bin_width)
      : bin_width_(bin_width) {}

  // Records `bytes` delivered at `t`.
  void record(sim::TimePoint t, std::uint64_t bytes);

  sim::Duration bin_width() const { return bin_width_; }
  std::size_t bins() const { return bytes_per_bin_.size(); }
  std::uint64_t bytes_in_bin(std::size_t i) const {
    return i < bytes_per_bin_.size() ? bytes_per_bin_[i] : 0;
  }
  std::uint64_t total_bytes() const { return total_; }

  // Mean goodput of bin `i` in Mbps.
  double mbps_in_bin(std::size_t i) const;
  // All bins as Mbps, trailing empty bins trimmed.
  std::vector<double> mbps_series() const;

 private:
  sim::Duration bin_width_;
  std::vector<std::uint64_t> bytes_per_bin_;
  std::uint64_t total_ = 0;
};

// Renders a compact ASCII sparkline of a series ("▁▂▅▇...") scaled to the
// series maximum; empty input renders an empty string.
std::string sparkline(const std::vector<double>& series);

}  // namespace hydra::stats
