// Windowed time series: throughput-over-time for flows and airtime
// shares for nodes. Used by examples and benches to show *when* a scheme
// wins, not just by how much on average.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace hydra::stats {

// Accumulates (time, value) samples into fixed-width bins; report() turns
// byte counts into per-bin Mbps. Storage is offset to the first recorded
// bin, so memory scales with the span of the *samples*, not with how far
// into the simulation they land.
class ThroughputTimeline {
 public:
  explicit ThroughputTimeline(sim::Duration bin_width)
      : bin_width_(bin_width) {}

  // Records `bytes` delivered at `t`.
  void record(sim::TimePoint t, std::uint64_t bytes);

  // Preallocates bin storage for samples landing in [start, start+span),
  // so every record() inside that window is allocation-free (samples
  // outside it still work — storage grows as before). Call before the
  // run when the measurement window is known, e.g. the experiment's
  // configured duration.
  void reserve_span(sim::TimePoint start, sim::Duration span);

  sim::Duration bin_width() const { return bin_width_; }
  // Absolute index of the first stored bin (0 until the first sample).
  std::size_t first_bin() const { return first_bin_; }
  // Number of bins actually stored (the first..last sample span).
  std::size_t stored_bins() const { return bytes_per_bin_.size(); }
  // One past the last stored bin, as an absolute bin index.
  std::size_t bins() const { return first_bin_ + bytes_per_bin_.size(); }
  // Bytes in absolute bin `i` (0 outside the stored span).
  std::uint64_t bytes_in_bin(std::size_t i) const;
  std::uint64_t total_bytes() const { return total_; }

  // Mean goodput of absolute bin `i` in Mbps.
  double mbps_in_bin(std::size_t i) const;
  // The stored bins as Mbps, starting at first_bin(), trailing empty
  // bins trimmed.
  std::vector<double> mbps_series() const;

 private:
  sim::Duration bin_width_;
  std::size_t first_bin_ = 0;
  std::vector<std::uint64_t> bytes_per_bin_;
  std::uint64_t total_ = 0;
};

// Renders a compact ASCII sparkline of a series ("▁▂▅▇...") scaled to the
// series maximum; empty input renders an empty string.
std::string sparkline(const std::vector<double>& series);

}  // namespace hydra::stats
