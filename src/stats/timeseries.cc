#include "stats/timeseries.h"

#include <algorithm>
#include <string>

#include "util/assert.h"

namespace hydra::stats {

void ThroughputTimeline::record(sim::TimePoint t, std::uint64_t bytes) {
  HYDRA_ASSERT(bin_width_.ns() > 0);
  const auto bin = static_cast<std::size_t>(t.ns() / bin_width_.ns());
  if (bytes_per_bin_.empty()) {
    // Storage starts at the first sample's bin, not bin 0: a single
    // sample recorded hours into a run must not allocate one slot per
    // elapsed bin (O(sim-time) memory for long scenarios).
    first_bin_ = bin;
  }
  if (bin < first_bin_) {
    bytes_per_bin_.insert(bytes_per_bin_.begin(), first_bin_ - bin, 0);
    first_bin_ = bin;
  } else if (bin - first_bin_ >= bytes_per_bin_.size()) {
    bytes_per_bin_.resize(bin - first_bin_ + 1, 0);
  }
  bytes_per_bin_[bin - first_bin_] += bytes;
  total_ += bytes;
}

void ThroughputTimeline::reserve_span(sim::TimePoint start,
                                      sim::Duration span) {
  HYDRA_ASSERT(bin_width_.ns() > 0);
  if (span.ns() <= 0) return;
  const auto first = static_cast<std::size_t>(start.ns() / bin_width_.ns());
  const auto last = static_cast<std::size_t>((start.ns() + span.ns() - 1) /
                                             bin_width_.ns());
  if (bytes_per_bin_.empty()) {
    // No samples yet: the first record() will pin the storage origin to
    // its own bin, somewhere inside the window, so window-width capacity
    // always covers the remaining span. Reserving is invisible to the
    // accessors (stored_bins() counts actual size, which stays 0).
    bytes_per_bin_.reserve(last - first + 1);
  } else if (first >= first_bin_) {
    bytes_per_bin_.reserve(last - first_bin_ + 1);
  } else {
    bytes_per_bin_.reserve((last > first_bin_ ? last - first_bin_ : 0) +
                           bytes_per_bin_.size() + (first_bin_ - first));
  }
}

std::uint64_t ThroughputTimeline::bytes_in_bin(std::size_t i) const {
  if (i < first_bin_ || i - first_bin_ >= bytes_per_bin_.size()) return 0;
  return bytes_per_bin_[i - first_bin_];
}

double ThroughputTimeline::mbps_in_bin(std::size_t i) const {
  return static_cast<double>(bytes_in_bin(i)) * 8.0 /
         bin_width_.seconds_f() / 1e6;
}

std::vector<double> ThroughputTimeline::mbps_series() const {
  std::size_t last = bytes_per_bin_.size();
  while (last > 0 && bytes_per_bin_[last - 1] == 0) --last;
  std::vector<double> out(last);
  for (std::size_t i = 0; i < last; ++i) {
    out[i] = static_cast<double>(bytes_per_bin_[i]) * 8.0 /
             bin_width_.seconds_f() / 1e6;
  }
  return out;
}

std::string sparkline(const std::vector<double>& series) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (series.empty()) return "";
  const double peak = *std::max_element(series.begin(), series.end());
  std::string out;
  for (const double v : series) {
    if (peak <= 0.0) {
      out += kLevels[0];
      continue;
    }
    const auto level = std::min<std::size_t>(
        7, static_cast<std::size_t>(v / peak * 7.999));
    out += kLevels[level];
  }
  return out;
}

}  // namespace hydra::stats
