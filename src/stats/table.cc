#include "stats/table.h"

#include <algorithm>

#include "util/assert.h"

namespace hydra::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  HYDRA_ASSERT_MSG(cells.size() == headers_.size(),
                   "row width != header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string Table::percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string Table::bytes(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0fB", v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += (c == 0 ? "| " : " | ");
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
    }
    out += " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += (c == 0 ? "|-" : "-|-");
    out.append(widths[c], '-');
  }
  out += "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void append_json_array(std::string& out, const std::vector<std::string>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    append_json_string(out, v[i]);
  }
  out += ']';
}

}  // namespace

Table& Table::set_title(std::string title) {
  title_ = std::move(title);
  return *this;
}

std::string Table::to_json() const {
  std::string out = "{";
  if (!title_.empty()) {
    out += "\"title\": ";
    append_json_string(out, title_);
    out += ", ";
  }
  out += "\"headers\": ";
  append_json_array(out, headers_);
  out += ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ", ";
    append_json_array(out, rows_[r]);
  }
  out += "]}";
  return out;
}

void Table::print(std::FILE* out) const {
  if (!title_.empty()) std::fprintf(out, "\n%s\n", title_.c_str());
  const auto s = to_string();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace hydra::stats
