// Derived metrics matching the paper's reporting conventions.
#pragma once

#include "mac/stats.h"
#include "phy/timing.h"
#include "proto/mode.h"

namespace hydra::stats {

// Byte-equivalent of the PHY header at a given data mode: the paper's
// "size overhead" (Tables 3 and 6) counts PHY headers in bytes at the
// frame's rate.
double phy_header_byte_equivalent(const proto::PhyMode& mode,
                                  const phy::PhyTimings& timings =
                                      phy::default_timings());

// Size overhead of a node's data transmissions: (MAC header bytes + PHY
// header byte equivalent) / total bytes — Tables 3 and 6.
double size_overhead(const mac::MacStats& stats, const proto::PhyMode& mode,
                     const phy::PhyTimings& timings = phy::default_timings());

// Average frame size including the node's share of padding (Tables 3, 5,
// 8 report plain MAC bytes per data frame).
inline double avg_frame_bytes(const mac::MacStats& stats) {
  return stats.avg_frame_bytes();
}

// Transmission count relative to a baseline run (Tables 3 and 7).
double tx_percentage(const mac::MacStats& stats,
                     const mac::MacStats& baseline);

}  // namespace hydra::stats
