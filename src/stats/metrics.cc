#include "stats/metrics.h"

namespace hydra::stats {

double phy_header_byte_equivalent(const proto::PhyMode& mode,
                                  const phy::PhyTimings& timings) {
  const double seconds = timings.preamble.seconds_f();
  return seconds * static_cast<double>(mode.rate.bits_per_second()) / 8.0;
}

double size_overhead(const mac::MacStats& stats, const proto::PhyMode& mode,
                     const phy::PhyTimings& timings) {
  if (stats.data_bytes_tx == 0) return 0.0;
  const double phy_bytes =
      phy_header_byte_equivalent(mode, timings) *
      static_cast<double>(stats.data_frames_tx);
  const double header_bytes =
      static_cast<double>(stats.mac_header_bytes_tx) + phy_bytes;
  return header_bytes /
         (static_cast<double>(stats.data_bytes_tx) + phy_bytes);
}

double tx_percentage(const mac::MacStats& stats,
                     const mac::MacStats& baseline) {
  if (baseline.data_frames_tx == 0) return 0.0;
  return static_cast<double>(stats.data_frames_tx) /
         static_cast<double>(baseline.data_frames_tx);
}

}  // namespace hydra::stats
