// Plain-text table renderer for the benchmark harness: each bench binary
// prints the same rows the paper's tables and figure series report.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace hydra::stats {

// Appends `s` to `out` as a quoted JSON string (full control-character
// escaping). Shared by Table::to_json and the bench JSON reporter.
void append_json_string(std::string& out, const std::string& s);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Optional caption ("Table 5: relay frame size"). Printed above the
  // table (after a separating blank line) and carried as "title" in the
  // JSON form, so multi-table reports keep each caption attached to its
  // table instead of stranding it in the surrounding commentary.
  Table& set_title(std::string title);
  const std::string& title() const { return title_; }

  // Formatting helpers for cells.
  static std::string num(double v, int decimals = 3);
  static std::string percent(double fraction, int decimals = 1);
  static std::string bytes(double v);

  // Renders with aligned columns to `out` (defaults to stdout); a set
  // title precedes the table.
  void print(std::FILE* out = stdout) const;
  // The table body alone (no title), aligned like print().
  std::string to_string() const;
  // Machine-readable form: {"headers": [...], "rows": [[...], ...]},
  // plus "title" when one is set.
  std::string to_json() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hydra::stats
