// Plain-text table renderer for the benchmark harness: each bench binary
// prints the same rows the paper's tables and figure series report.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace hydra::stats {

// Appends `s` to `out` as a quoted JSON string (full control-character
// escaping). Shared by Table::to_json and the bench JSON reporter.
void append_json_string(std::string& out, const std::string& s);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  // Formatting helpers for cells.
  static std::string num(double v, int decimals = 3);
  static std::string percent(double fraction, int decimals = 1);
  static std::string bytes(double v);

  // Renders with aligned columns to `out` (defaults to stdout).
  void print(std::FILE* out = stdout) const;
  std::string to_string() const;
  // Machine-readable form: {"headers": [...], "rows": [[...], ...]}.
  std::string to_json() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hydra::stats
