#include "topo/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <numbers>
#include <utility>

#include "sim/rng.h"
#include "stats/metrics.h"
#include "stats/table.h"
#include "util/assert.h"
#include "util/crc32.h"

namespace hydra::topo {

namespace {

constexpr double kPi = std::numbers::pi;

// Minimum separation accepted between random placements; closer than
// this the log-distance path loss model stops being meaningful.
constexpr double kMinSeparationM = 0.5;

std::size_t grid_index(std::size_t row, std::size_t col, std::size_t cols) {
  return row * cols + col;
}

}  // namespace

std::string to_string(Family family) {
  switch (family) {
    case Family::kChain: return "chain";
    case Family::kStar: return "star";
    case Family::kGrid: return "grid";
    case Family::kRing: return "ring";
    case Family::kRandom: return "random";
  }
  HYDRA_UNREACHABLE("bad scenario family");
}

std::string to_string(MediumPolicy policy) {
  switch (policy) {
    case MediumPolicy::kAuto: return "auto";
    case MediumPolicy::kFullMesh: return "full-mesh";
    case MediumPolicy::kCulled: return "culled";
    case MediumPolicy::kSharded: return "sharded";
  }
  HYDRA_UNREACHABLE("bad medium policy");
}

std::string to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kAuto: return "auto";
    case SchedulerPolicy::kSerial: return "serial";
    case SchedulerPolicy::kParallelWindows: return "parallel-windows";
  }
  HYDRA_UNREACHABLE("bad scheduler policy");
}

double WorldBounds::diagonal_m() const {
  return std::sqrt(width_m() * width_m() + height_m() * height_m());
}

ScenarioSpec ScenarioSpec::chain(std::size_t n) {
  HYDRA_ASSERT(n >= 2);
  ScenarioSpec spec;
  spec.family = Family::kChain;
  spec.nodes = n;
  spec.sessions = {{0, static_cast<std::uint32_t>(n - 1)}};
  return spec;
}

ScenarioSpec ScenarioSpec::star(std::size_t senders) {
  HYDRA_ASSERT(senders >= 1);
  ScenarioSpec spec;
  spec.family = Family::kStar;
  spec.senders = senders;
  // Node 0 receives, node 1 is the hub, nodes 2..K+1 send.
  for (std::uint32_t k = 0; k < senders; ++k) spec.sessions.push_back({k + 2, 0});
  return spec;
}

ScenarioSpec ScenarioSpec::grid(std::size_t rows, std::size_t cols) {
  HYDRA_ASSERT(rows >= 1 && cols >= 1 && rows * cols >= 2);
  ScenarioSpec spec;
  spec.family = Family::kGrid;
  spec.rows = rows;
  spec.cols = cols;
  // Corner to opposite corner: the longest Manhattan path.
  spec.sessions = {{0, static_cast<std::uint32_t>(rows * cols - 1)}};
  return spec;
}

ScenarioSpec ScenarioSpec::ring(std::size_t n) {
  HYDRA_ASSERT(n >= 3);
  ScenarioSpec spec;
  spec.family = Family::kRing;
  spec.nodes = n;
  // Across the ring: the longest shorter-arc route.
  spec.sessions = {{0, static_cast<std::uint32_t>(n / 2)}};
  return spec;
}

ScenarioSpec ScenarioSpec::random(std::size_t n, std::uint64_t placement_seed) {
  HYDRA_ASSERT(n >= 2);
  ScenarioSpec spec;
  spec.family = Family::kRandom;
  spec.nodes = n;
  spec.placement_seed = placement_seed;
  spec.sessions = {{0, static_cast<std::uint32_t>(n - 1)}};
  return spec;
}

ScenarioSpec ScenarioSpec::one_hop() { return chain(2); }
ScenarioSpec ScenarioSpec::two_hop() { return chain(3); }
ScenarioSpec ScenarioSpec::three_hop() { return chain(4); }

ScenarioSpec ScenarioSpec::fig6_star() {
  ScenarioSpec spec = star(2);
  // The paper's Fig. 6 placement: receiver left of the center, the two
  // senders close together on the right (node 1 is the center).
  const double s = spec.spacing_m;
  spec.positions_override = {{-s, 0.0},
                             {0.0, 0.0},
                             {s * 0.98, s * 0.2},
                             {s * 0.98, -s * 0.2}};
  return spec;
}

std::size_t ScenarioSpec::node_count() const {
  switch (family) {
    case Family::kChain:
    case Family::kRing:
    case Family::kRandom:
      return nodes;
    case Family::kStar:
      return senders + 2;
    case Family::kGrid:
      return rows * cols;
  }
  HYDRA_UNREACHABLE("bad scenario family");
}

std::vector<phy::Position> ScenarioSpec::positions() const {
  const std::size_t n = node_count();
  if (!positions_override.empty()) {
    HYDRA_ASSERT(positions_override.size() == n);
    return positions_override;
  }
  std::vector<phy::Position> pos;
  pos.reserve(n);
  switch (family) {
    case Family::kChain:
      for (std::size_t i = 0; i < n; ++i) {
        pos.push_back({spacing_m * static_cast<double>(i), 0.0});
      }
      return pos;
    case Family::kStar: {
      // Receiver opposite the senders, hub at the origin, senders on a
      // spacing_m arc spanning +-60 degrees.
      pos.push_back({-spacing_m, 0.0});
      pos.push_back({0.0, 0.0});
      for (std::size_t k = 0; k < senders; ++k) {
        const double angle =
            senders == 1 ? 0.0
                         : -kPi / 3.0 + (2.0 * kPi / 3.0) *
                                            static_cast<double>(k) /
                                            static_cast<double>(senders - 1);
        pos.push_back({spacing_m * std::cos(angle),
                       spacing_m * std::sin(angle)});
      }
      return pos;
    }
    case Family::kGrid:
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          pos.push_back({spacing_m * static_cast<double>(c),
                         spacing_m * static_cast<double>(r)});
        }
      }
      return pos;
    case Family::kRing: {
      // Adjacent nodes spacing_m apart on a circle.
      const double radius = spacing_m / (2.0 * std::sin(kPi / static_cast<double>(n)));
      for (std::size_t i = 0; i < n; ++i) {
        const double angle = 2.0 * kPi * static_cast<double>(i) / static_cast<double>(n);
        pos.push_back({radius * std::cos(angle), radius * std::sin(angle)});
      }
      return pos;
    }
    case Family::kRandom: {
      // Uniform placement in a square, connected by construction: every
      // node after the first lands within range_m of an earlier node (and
      // no closer than kMinSeparationM to any). Deterministic in
      // placement_seed and independent of the simulation seed.
      HYDRA_ASSERT(range_m > kMinSeparationM);
      const double extent =
          spacing_m * std::ceil(std::sqrt(static_cast<double>(n)));
      sim::Rng rng(placement_seed);
      const auto draw = [&]() -> phy::Position {
        return {rng.uniform() * extent, rng.uniform() * extent};
      };
      pos.push_back(draw());
      for (std::size_t i = 1; i < n; ++i) {
        phy::Position p{};
        bool placed = false;
        for (int attempt = 0; attempt < 1000 && !placed; ++attempt) {
          p = draw();
          bool connected = false, clear = true;
          for (const auto& q : pos) {
            const double d = phy::distance_m(p, q);
            if (d <= range_m) connected = true;
            if (d < kMinSeparationM) clear = false;
          }
          placed = connected && clear;
        }
        if (!placed) {
          // Degenerate draw streak (e.g. spacing_m far above range_m):
          // chain off the previous node instead. Deliberately NOT
          // clamped to the square — clamping would stack every further
          // node on the same point. The step stays within range of the
          // predecessor yet above the minimum separation from it (a
          // freak near-overlap with some *other* earlier node remains
          // possible; harmless, the medium clamps distance anyway).
          const double step = std::max(0.8 * range_m, kMinSeparationM);
          p = {pos.back().x_m + step, pos.back().y_m};
        }
        pos.push_back(p);
      }
      return pos;
    }
  }
  HYDRA_UNREACHABLE("bad scenario family");
}

std::vector<std::vector<std::uint32_t>> ScenarioSpec::adjacency() const {
  return adjacency(positions());
}

std::vector<std::vector<std::uint32_t>> ScenarioSpec::adjacency(
    const std::vector<phy::Position>& positions) const {
  const std::size_t n = node_count();
  HYDRA_ASSERT(positions.size() == n);
  std::vector<std::vector<std::uint32_t>> adj(n);
  const auto link = [&](std::size_t a, std::size_t b) {
    adj[a].push_back(static_cast<std::uint32_t>(b));
    adj[b].push_back(static_cast<std::uint32_t>(a));
  };
  switch (family) {
    case Family::kChain:
      for (std::size_t i = 0; i + 1 < n; ++i) link(i, i + 1);
      break;
    case Family::kStar:
      for (std::size_t i = 0; i < n; ++i) {
        if (i != 1) link(1, i);
      }
      break;
    case Family::kGrid:
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          if (c + 1 < cols) link(grid_index(r, c, cols), grid_index(r, c + 1, cols));
          if (r + 1 < rows) link(grid_index(r, c, cols), grid_index(r + 1, c, cols));
        }
      }
      break;
    case Family::kRing:
      for (std::size_t i = 0; i < n; ++i) link(i, (i + 1) % n);
      break;
    case Family::kRandom:
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          if (phy::distance_m(positions[i], positions[j]) <= range_m) {
            link(i, j);
          }
        }
      }
      break;
  }
  for (auto& neighbors : adj) std::sort(neighbors.begin(), neighbors.end());
  return adj;
}

std::vector<std::vector<std::uint32_t>> ScenarioSpec::next_hops() const {
  return next_hops(adjacency());
}

std::vector<std::vector<std::uint32_t>> ScenarioSpec::next_hops(
    const std::vector<std::vector<std::uint32_t>>& adjacency) const {
  const std::size_t n = node_count();
  HYDRA_ASSERT(adjacency.size() == n);
  std::vector<std::vector<std::uint32_t>> hops(n);
  for (std::size_t i = 0; i < n; ++i) {
    hops[i].resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      hops[i][j] = static_cast<std::uint32_t>(j);  // direct by default
    }
  }
  switch (family) {
    case Family::kChain:
      // Hop-by-hop toward the destination index.
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (i == j) continue;
          hops[i][j] = static_cast<std::uint32_t>(j > i ? i + 1 : i - 1);
        }
      }
      return hops;
    case Family::kStar:
      // Every non-hub pair relays through the hub (node 1).
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (i == j || i == 1 || j == 1) continue;
          hops[i][j] = 1;
        }
      }
      return hops;
    case Family::kGrid:
      // Manhattan (X-then-Y) dimension-order routing.
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t ri = i / cols, ci = i % cols;
        for (std::size_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const std::size_t rj = j / cols, cj = j % cols;
          std::size_t next;
          if (ci != cj) {
            next = grid_index(ri, cj > ci ? ci + 1 : ci - 1, cols);
          } else {
            next = grid_index(rj > ri ? ri + 1 : ri - 1, ci, cols);
          }
          hops[i][j] = static_cast<std::uint32_t>(next);
        }
      }
      return hops;
    case Family::kRing:
      // The shorter arc (clockwise on ties).
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const std::size_t cw = (j + n - i) % n;
          hops[i][j] = static_cast<std::uint32_t>(cw <= n - cw ? (i + 1) % n
                                                              : (i + n - 1) % n);
        }
      }
      return hops;
    case Family::kRandom: {
      // BFS shortest paths over the nearest-neighbor graph, one tree per
      // destination; index-sorted adjacency keeps tie-breaks stable.
      const auto& adj = adjacency;
      for (std::size_t dst = 0; dst < n; ++dst) {
        std::vector<std::uint32_t> toward(n, static_cast<std::uint32_t>(dst));
        std::vector<bool> seen(n, false);
        std::deque<std::uint32_t> queue{static_cast<std::uint32_t>(dst)};
        seen[dst] = true;
        while (!queue.empty()) {
          const std::uint32_t v = queue.front();
          queue.pop_front();
          for (const std::uint32_t u : adj[v]) {
            if (seen[u]) continue;
            seen[u] = true;
            toward[u] = v;  // v is one BFS level closer to dst
            queue.push_back(u);
          }
        }
        for (std::size_t i = 0; i < n; ++i) hops[i][dst] = toward[i];
      }
      return hops;
    }
  }
  HYDRA_UNREACHABLE("bad scenario family");
}

std::vector<std::uint32_t> ScenarioSpec::relay_indices() const {
  return relay_indices(next_hops());
}

std::vector<std::uint32_t> ScenarioSpec::relay_indices(
    const std::vector<std::vector<std::uint32_t>>& next_hops) const {
  const std::size_t n = node_count();
  HYDRA_ASSERT(next_hops.size() == n);
  std::vector<std::uint32_t> relays;
  for (const auto& session : sessions) {
    // Sessions are the one spec field factories install *before* the
    // size knobs can be tweaked — the only way a spec can index out of
    // range, so the one that needs checking.
    HYDRA_ASSERT_MSG(session.sender < n && session.receiver < n,
                     "session endpoint is not a node of this scenario");
    std::uint32_t cur = session.sender;
    for (std::size_t step = 0; cur != session.receiver && step < n; ++step) {
      const std::uint32_t next = next_hops[cur][session.receiver];
      if (next == session.receiver) break;
      if (std::find(relays.begin(), relays.end(), next) == relays.end()) {
        relays.push_back(next);
      }
      cur = next;
    }
  }
  return relays;
}

phy::MediumConfig ScenarioSpec::medium_config() const {
  phy::MediumConfig mc;
  mc.cull_margin_db = medium.cull_margin_db;
  mc.shard_threads = medium.shard_threads;
  switch (medium.policy) {
    case MediumPolicy::kAuto:
      mc.delivery = node_count() >= kCullAutoThreshold
                        ? phy::DeliveryPolicy::kCulled
                        : phy::DeliveryPolicy::kFullMesh;
      break;
    case MediumPolicy::kFullMesh:
      mc.delivery = phy::DeliveryPolicy::kFullMesh;
      break;
    case MediumPolicy::kCulled:
      mc.delivery = phy::DeliveryPolicy::kCulled;
      break;
    case MediumPolicy::kSharded:
      mc.delivery = phy::DeliveryPolicy::kSharded;
      break;
  }
  return mc;
}

sim::ExecutionPolicy ScenarioSpec::scheduler_policy() const {
  return scheduler.policy == SchedulerPolicy::kParallelWindows
             ? sim::ExecutionPolicy::kParallelWindows
             : sim::ExecutionPolicy::kSerial;
}

WorldBounds ScenarioSpec::world_bounds() const {
  const auto pos = positions();
  HYDRA_ASSERT_MSG(!pos.empty(), "world_bounds of an empty scenario");
  WorldBounds bounds{pos.front(), pos.front()};
  for (const auto& p : pos) {
    bounds.min.x_m = std::min(bounds.min.x_m, p.x_m);
    bounds.min.y_m = std::min(bounds.min.y_m, p.y_m);
    bounds.max.x_m = std::max(bounds.max.x_m, p.x_m);
    bounds.max.y_m = std::max(bounds.max.y_m, p.y_m);
  }
  return bounds;
}

double ScenarioSpec::max_reach_m() const {
  const double tx_power_dbm =
      net::NodeConfig{}.tx_power_dbm + node.tx_power_delta_db;
  return phy::reach_radius_m(medium_config(), tx_power_dbm);
}

std::string ScenarioSpec::label() const {
  char buf[48];
  switch (family) {
    case Family::kChain:
      std::snprintf(buf, sizeof buf, "chain-%zu", nodes);
      break;
    case Family::kStar:
      std::snprintf(buf, sizeof buf, "star-%zu", senders);
      break;
    case Family::kGrid:
      std::snprintf(buf, sizeof buf, "grid-%zux%zu", rows, cols);
      break;
    case Family::kRing:
      std::snprintf(buf, sizeof buf, "ring-%zu", nodes);
      break;
    case Family::kRandom:
      std::snprintf(buf, sizeof buf, "random-%zu-s%llu", nodes,
                    static_cast<unsigned long long>(placement_seed));
      break;
  }
  return buf;
}

Scenario::Scenario(const ScenarioSpec& spec, std::uint64_t seed)
    : spec_(spec),
      sim_(std::make_unique<sim::Simulation>(seed)),
      medium_(std::make_unique<phy::Medium>(*sim_, spec.medium_config())),
      trace_(std::make_shared<std::vector<std::string>>()) {
  if (spec.scheduler_policy() == sim::ExecutionPolicy::kParallelWindows) {
    sim_->set_execution(sim::ExecutionPolicy::kParallelWindows,
                        spec.scheduler.workers);
  }
}

Scenario Scenario::build(const ScenarioSpec& spec, std::uint64_t seed) {
  Scenario s(spec, seed);
  // Each derived view feeds the next, computed once: positions →
  // adjacency → next hops → relays (kRandom's placement sampling and
  // BFS are the expensive steps). A spec that routes nothing — no
  // static routes, no whitelist, no sessions — skips the graph views
  // entirely: the full next-hop matrix is O(N²) memory, which is what
  // caps pure-flooding scale runs otherwise.
  const auto positions = spec.positions();
  const bool needs_graph =
      spec.static_routes || spec.neighbor_whitelist || !spec.sessions.empty();
  std::vector<std::vector<std::uint32_t>> adjacency;
  std::vector<std::vector<std::uint32_t>> hops;
  if (needs_graph) {
    adjacency = spec.adjacency(positions);
    hops = spec.next_hops(adjacency);
    s.relays_ = spec.relay_indices(hops);
  }

  const std::size_t n = positions.size();
  s.nodes_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    net::NodeConfig nc;
    nc.position = positions[i];
    nc.policy = spec.node.policy;
    // The paper delays only relay nodes (§6.4.3).
    const bool is_relay =
        std::find(s.relays_.begin(), s.relays_.end(), i) != s.relays_.end();
    if (!is_relay) nc.policy.delay_min_subframes = 0;
    nc.unicast_mode = spec.node.unicast_mode;
    nc.broadcast_mode = spec.node.broadcast_mode;
    nc.use_rts_cts = spec.node.use_rts_cts;
    nc.queue_limit = spec.node.queue_limit;
    nc.rate_adaptation = spec.node.rate_adaptation;
    nc.tx_power_dbm += spec.node.tx_power_delta_db;
    if (spec.neighbor_whitelist) {
      for (const std::uint32_t neighbor : adjacency[i]) {
        nc.neighbors.push_back(proto::MacAddress::for_node(neighbor));
      }
    }
    s.nodes_.push_back(std::make_unique<net::Node>(*s.sim_, *s.medium_, i, nc));
  }

  if (spec.static_routes) {
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (i == j || hops[i][j] == j) continue;  // direct: no route needed
        s.nodes_[i]->routes().add_route(proto::Ipv4Address::for_node(j),
                                        proto::Ipv4Address::for_node(hops[i][j]));
      }
    }
  }

  if (spec.route_discovery) {
    for (auto& node : s.nodes_) {
      s.discovery_.push_back(std::make_unique<net::RouteDiscovery>(*s.sim_, *node));
    }
  }

  if (spec.mobility.kind != MobilityKind::kNone) {
    std::vector<phy::Phy*> targets;
    if (spec.mobility.mobile.empty()) {
      // Default mobile set: everything that is neither a session
      // endpoint nor a relay, so motion never severs the traffic paths
      // themselves. When the topology is all endpoints and relays
      // (small chains), every node moves instead of none.
      std::vector<bool> fixed(n, false);
      for (const auto& session : spec.sessions) {
        fixed[session.sender] = fixed[session.receiver] = true;
      }
      for (const std::uint32_t r : s.relays_) fixed[r] = true;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!fixed[i]) targets.push_back(&s.nodes_[i]->phy());
      }
      if (targets.empty()) {
        for (auto& node : s.nodes_) targets.push_back(&node->phy());
      }
    } else {
      for (const std::uint32_t i : spec.mobility.mobile) {
        targets.push_back(&s.nodes_.at(i)->phy());
      }
    }
    const auto bounds = spec.world_bounds();
    s.mobility_ = std::make_unique<MobilityDriver>(
        *s.sim_, *s.medium_, spec.mobility, bounds.min, bounds.max,
        std::move(targets));
    s.mobility_->start();
  }
  return s;
}

namespace {

void record_line(const sim::Simulation& sim, std::vector<std::string>& trace,
                 std::size_t node, const char* kind,
                 const proto::PacketPtr& pkt) {
  // The trace is one global append-ordered vector: a parallel-window
  // event must take its serial turn before writing, which is exactly
  // what keeps trace digests bit-identical across execution policies.
  sim::Scheduler::acquire_shared_turn();
  const auto bytes = pkt->serialize();
  char line[96];
  std::snprintf(line, sizeof line, "t=%lld n%zu %s len=%zu crc=%08x",
                static_cast<long long>(sim.now().ns()), node, kind,
                bytes.size(), crc32(bytes));
  trace.emplace_back(line);
}

}  // namespace

void Scenario::capture_traces() {
  // Callbacks capture the simulation (behind its unique_ptr) and the
  // shared trace vector — never `this` — so they survive Scenario moves.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& stack = nodes_[i]->stack();
    stack.deliver_local =
        [sim = sim_.get(), trace = trace_, i,
         prev = std::move(stack.deliver_local)](const proto::PacketPtr& pkt) {
          record_line(*sim, *trace, i, "local", pkt);
          if (prev) prev(pkt);
        };
    stack.on_broadcast =
        [sim = sim_.get(), trace = trace_, i,
         prev = std::move(stack.on_broadcast)](const proto::PacketPtr& pkt) {
          record_line(*sim, *trace, i, "bcast", pkt);
          if (prev) prev(pkt);
        };
    stack.on_forward =
        [sim = sim_.get(), trace = trace_, i,
         prev = std::move(stack.on_forward)](const proto::PacketPtr& pkt,
                                             proto::MacAddress from) {
          record_line(*sim, *trace, i, "fwd", pkt);
          if (prev) prev(pkt, from);
        };
  }
}

std::uint32_t Scenario::trace_digest() const {
  std::uint32_t state = kCrc32Init;
  for (const auto& line : *trace_) {
    state = crc32_update(
        state, {reinterpret_cast<const std::uint8_t*>(line.data()),
                line.size()});
  }
  return crc32_finalize(state);
}

std::string Scenario::metrics_summary() const {
  stats::Table table({"node", "data frames", "subframes", "bytes",
                      "avg frame", "size ovh", "time ovh"});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& st = nodes_[i]->mac_stats();
    table.add_row(
        {std::to_string(i), std::to_string(st.data_frames_tx),
         std::to_string(st.subframes_tx()), std::to_string(st.data_bytes_tx),
         stats::Table::num(stats::avg_frame_bytes(st), 1),
         stats::Table::percent(stats::size_overhead(st, spec_.node.unicast_mode)),
         stats::Table::percent(st.time.overhead_fraction())});
  }
  return table.to_string();
}

}  // namespace hydra::topo
