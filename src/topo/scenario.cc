#include "topo/scenario.h"

#include <cmath>
#include <cstdio>
#include <numbers>
#include <utility>

#include "stats/metrics.h"
#include "stats/table.h"
#include "util/crc32.h"

namespace hydra::topo {

Scenario::Scenario(const ScenarioOptions& opt)
    : opt_(opt),
      sim_(std::make_unique<sim::Simulation>(opt.seed)),
      medium_(std::make_unique<phy::Medium>(*sim_)),
      trace_(std::make_shared<std::vector<std::string>>()) {}

void Scenario::add_node(std::uint32_t index, phy::Position position,
                        std::vector<mac::MacAddress> neighbors) {
  net::NodeConfig nc;
  nc.position = position;
  nc.policy = opt_.policy;
  nc.unicast_mode = opt_.unicast_mode;
  nc.broadcast_mode = opt_.broadcast_mode;
  nc.rate_adaptation = opt_.rate_adaptation;
  if (opt_.neighbor_whitelist) nc.neighbors = std::move(neighbors);
  nodes_.push_back(std::make_unique<net::Node>(*sim_, *medium_, index, nc));
}

void Scenario::finish(bool with_discovery) {
  if (!with_discovery) return;
  for (auto& node : nodes_) {
    discovery_.push_back(
        std::make_unique<net::RouteDiscovery>(*sim_, *node));
  }
}

Scenario Scenario::chain(std::size_t n, const ScenarioOptions& opt) {
  Scenario s(opt);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<mac::MacAddress> neighbors;
    if (i > 0) neighbors.push_back(mac::MacAddress::for_node(i - 1));
    if (i + 1 < n) neighbors.push_back(mac::MacAddress::for_node(i + 1));
    s.add_node(i, {opt.spacing_m * i, 0.0}, std::move(neighbors));
  }
  if (opt.static_routes) {
    // Hop-by-hop linear routes between every pair.
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const std::uint32_t next = j > i ? i + 1 : i - 1;
        s.nodes_[i]->routes().add_route(net::Ipv4Address::for_node(j),
                                        net::Ipv4Address::for_node(next));
      }
    }
  }
  s.finish(opt.route_discovery);
  return s;
}

Scenario Scenario::star(std::size_t leaves, const ScenarioOptions& opt) {
  Scenario s(opt);
  const std::size_t n = leaves + 1;
  std::vector<mac::MacAddress> hub_neighbors;
  for (std::uint32_t i = 1; i < n; ++i) {
    hub_neighbors.push_back(mac::MacAddress::for_node(i));
  }
  s.add_node(0, {0.0, 0.0}, std::move(hub_neighbors));
  for (std::uint32_t i = 1; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * (i - 1) / leaves;
    s.add_node(i,
               {opt.spacing_m * std::cos(angle),
                opt.spacing_m * std::sin(angle)},
               {mac::MacAddress::for_node(0)});
  }
  if (opt.static_routes) {
    // Leaf-to-leaf traffic relays through the hub.
    for (std::uint32_t i = 1; i < n; ++i) {
      for (std::uint32_t j = 1; j < n; ++j) {
        if (i == j) continue;
        s.nodes_[i]->routes().add_route(net::Ipv4Address::for_node(j),
                                        net::Ipv4Address::for_node(0));
      }
    }
  }
  s.finish(opt.route_discovery);
  return s;
}

Scenario Scenario::mesh(std::size_t n, const ScenarioOptions& opt) {
  Scenario s(opt);
  // Circle with adjacent nodes spacing_m apart: single collision domain,
  // every link direct.
  const double radius =
      n > 1 ? opt.spacing_m / (2.0 * std::sin(std::numbers::pi / n)) : 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const double angle = 2.0 * std::numbers::pi * i / n;
    s.add_node(i, {radius * std::cos(angle), radius * std::sin(angle)}, {});
  }
  s.finish(opt.route_discovery);
  return s;
}

namespace {

void record_line(const sim::Simulation& sim, std::vector<std::string>& trace,
                 std::size_t node, const char* kind,
                 const net::PacketPtr& pkt) {
  const auto bytes = pkt->serialize();
  char line[96];
  std::snprintf(line, sizeof line, "t=%lld n%zu %s len=%zu crc=%08x",
                static_cast<long long>(sim.now().ns()), node, kind,
                bytes.size(), crc32(bytes));
  trace.emplace_back(line);
}

}  // namespace

void Scenario::capture_traces() {
  // Callbacks capture the simulation (behind its unique_ptr) and the
  // shared trace vector — never `this` — so they survive Scenario moves.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& stack = nodes_[i]->stack();
    stack.deliver_local =
        [sim = sim_.get(), trace = trace_, i,
         prev = std::move(stack.deliver_local)](const net::PacketPtr& pkt) {
          record_line(*sim, *trace, i, "local", pkt);
          if (prev) prev(pkt);
        };
    stack.on_broadcast =
        [sim = sim_.get(), trace = trace_, i,
         prev = std::move(stack.on_broadcast)](const net::PacketPtr& pkt) {
          record_line(*sim, *trace, i, "bcast", pkt);
          if (prev) prev(pkt);
        };
    stack.on_forward =
        [sim = sim_.get(), trace = trace_, i,
         prev = std::move(stack.on_forward)](const net::PacketPtr& pkt,
                                             mac::MacAddress from) {
          record_line(*sim, *trace, i, "fwd", pkt);
          if (prev) prev(pkt, from);
        };
  }
}

std::uint32_t Scenario::trace_digest() const {
  std::uint32_t state = kCrc32Init;
  for (const auto& line : *trace_) {
    state = crc32_update(
        state, {reinterpret_cast<const std::uint8_t*>(line.data()),
                line.size()});
  }
  return crc32_finalize(state);
}

std::string Scenario::metrics_summary() const {
  stats::Table table({"node", "data frames", "subframes", "bytes",
                      "avg frame", "size ovh", "time ovh"});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto& st = nodes_[i]->mac_stats();
    table.add_row(
        {std::to_string(i), std::to_string(st.data_frames_tx),
         std::to_string(st.subframes_tx()), std::to_string(st.data_bytes_tx),
         stats::Table::num(stats::avg_frame_bytes(st), 1),
         stats::Table::percent(stats::size_overhead(st, opt_.unicast_mode)),
         stats::Table::percent(st.time.overhead_fraction())});
  }
  return table.to_string();
}

}  // namespace hydra::topo
