// The one topology builder: every experiment, test fixture, example and
// bench describes its topology as a ScenarioSpec (family + size + spacing
// + per-node config + traffic sessions) and builds it into a fully wired
// Scenario (medium, nodes, static routes, optional discovery engines,
// packet-trace capture).
//
// Five open-ended families replace the four hard-coded paper topologies:
//
//   kChain   n nodes in a line, hop-by-hop routes between every pair
//   kStar    K senders -> hub -> one receiver (paper Fig. 6 is K = 2)
//   kGrid    rows x cols lattice with X-then-Y Manhattan routing
//   kRing    n nodes on a circle, routes take the shorter arc
//   kRandom  seeded uniform placement (connected by construction),
//            BFS shortest-path routes over the nearest-neighbor graph
//
// The paper's topologies are named specs (one_hop / two_hop / three_hop /
// fig6_star) built through the same code path; they reproduce the legacy
// builders' placement, routes and session order exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "mac/rate_adaptation.h"
#include "net/discovery.h"
#include "net/node.h"
#include "phy/medium.h"
#include "proto/mode.h"
#include "sim/simulation.h"
#include "topo/mobility.h"

namespace hydra::topo {

enum class Family { kChain, kStar, kGrid, kRing, kRandom };

std::string to_string(Family family);

// How the scenario's medium selects receivers per transmission. kAuto
// keeps exact-paper full mesh for small topologies and switches to
// reachability culling (bit-identical, O(k) fan-out; see phy/medium.h)
// at kCullAutoThreshold nodes — the point where O(N²) event traffic
// starts to dominate grid/random scenarios. kSharded computes the same
// culled delivery lists across a worker pool (bit-identical by the
// pinned determinism contract) and stays opt-in: the worker count is a
// host property, and kAuto keeps "same spec, same backend" true across
// machines.
enum class MediumPolicy { kAuto, kFullMesh, kCulled, kSharded };

inline constexpr std::size_t kCullAutoThreshold = 32;

std::string to_string(MediumPolicy policy);

// The scenario-level medium knobs; ScenarioSpec::medium_config resolves
// them (plus the topology's size) into a phy::MediumConfig.
struct MediumTuning {
  MediumPolicy policy = MediumPolicy::kAuto;
  // Passed through to phy::MediumConfig::cull_margin_db.
  double cull_margin_db = 10.0;
  // kSharded: worker/stripe count; 0 resolves to the host's hardware
  // concurrency (capped at 8) at rebuild time — see
  // phy::resolve_shard_threads. The spatial grid caps the stripe count
  // further at its column count, so narrow worlds degrade gracefully.
  std::size_t shard_threads = 0;
};

// How the scenario's scheduler executes events. kAuto resolves to
// serial: parallel windows are behaviour-identical by contract (pinned
// by the `parallel` determinism suites), but the worker count is a host
// property, so the parallel mode stays opt-in the same way kSharded
// delivery does.
enum class SchedulerPolicy { kAuto, kSerial, kParallelWindows };

std::string to_string(SchedulerPolicy policy);

struct SchedulerTuning {
  SchedulerPolicy policy = SchedulerPolicy::kAuto;
  // kParallelWindows: scheduler worker count; 0 resolves to the host's
  // hardware concurrency (capped at 8) — see sim::Scheduler::set_execution.
  unsigned workers = 0;
};

// Axis-aligned bounding box of a scenario's node placement.
struct WorldBounds {
  phy::Position min;
  phy::Position max;
  double width_m() const { return max.x_m - min.x_m; }
  double height_m() const { return max.y_m - min.y_m; }
  // Corner-to-corner span: when it fits inside the reach radius, culled
  // delivery degenerates to full mesh (every node reaches every other).
  double diagonal_m() const;
};

// One traffic session, as node indices. The workload layer (app) decides
// what actually flows between them.
struct Session {
  std::uint32_t sender = 0;
  std::uint32_t receiver = 0;
};

// Per-node configuration applied to every node of a scenario. Relay
// nodes (interior nodes of a session path) keep the delayed-aggregation
// holdoff; endpoints run the same policy with the delay removed (paper
// §6.4.3).
struct NodeParams {
  core::AggregationPolicy policy = core::AggregationPolicy::ba();
  proto::PhyMode unicast_mode = proto::base_mode();
  proto::PhyMode broadcast_mode = proto::base_mode();
  bool use_rts_cts = true;
  std::size_t queue_limit = 64;
  mac::RateAdaptationScheme rate_adaptation = mac::RateAdaptationScheme::kNone;
  // Transmit-power offset applied to every node (dB); sweeps use it to
  // move the operating SNR away from the paper's 25 dB point.
  double tx_power_delta_db = 0.0;
};

// A complete, declarative description of a scenario. Build one with the
// family factories (chain/star/grid/ring/random) or the named paper
// specs, tweak fields freely, then instantiate with Scenario::build or
// run it end-to-end through app::run_experiment / app::sweep_experiments.
struct ScenarioSpec {
  Family family = Family::kChain;

  // Size knobs (which apply depends on the family).
  std::size_t nodes = 3;    // kChain length, kRing size, kRandom count
  std::size_t senders = 2;  // kStar sender count (K)
  std::size_t rows = 2;     // kGrid
  std::size_t cols = 2;     // kGrid

  // Inter-node spacing; 2.5 m is the paper's 25 dB operating point.
  double spacing_m = 2.5;

  // kRandom only: placement RNG seed (kept separate from the simulation
  // seed so one topology can host many workload seeds) and the maximum
  // link distance of the nearest-neighbor graph.
  std::uint64_t placement_seed = 1;
  double range_m = 3.5;

  NodeParams node;

  // Medium delivery policy and cull tuning (see MediumTuning).
  MediumTuning medium;

  // Event-execution policy for the scenario's scheduler (see
  // SchedulerTuning); kAuto keeps the serial reference loop.
  SchedulerTuning scheduler;

  // Motion/churn while traffic runs (see topo/mobility.h); kNone keeps
  // the topology static. The driver starts with the scenario and ticks
  // until MobilitySpec::stop_after.
  MobilitySpec mobility;

  // MAC link whitelist restricted to topological neighbours: every radio
  // still hears every frame, but only adjacent links deliver — the
  // standard trick for forcing multi-hop on a single channel.
  bool neighbor_whitelist = false;
  // Install the family's hop-by-hop static routes.
  bool static_routes = true;
  // Attach a RouteDiscovery engine to every node.
  bool route_discovery = false;

  // Traffic sessions; the factories install each family's default (chain
  // end-to-end, every star sender to the receiver, grid corner-to-corner,
  // ring across, random first-to-last).
  std::vector<Session> sessions;

  // Exact node placement override (size node_count()); empty means the
  // family's formula applies. fig6_star uses it to pin the paper's
  // irregular leaf positions.
  std::vector<phy::Position> positions_override;

  // Family factories.
  static ScenarioSpec chain(std::size_t n);
  static ScenarioSpec star(std::size_t senders);
  static ScenarioSpec grid(std::size_t rows, std::size_t cols);
  static ScenarioSpec ring(std::size_t n);
  static ScenarioSpec random(std::size_t n, std::uint64_t placement_seed = 1);

  // The paper's topologies as named specs (Figs. 5 and 6).
  static ScenarioSpec one_hop();    // 2 nodes (aggregation-size study)
  static ScenarioSpec two_hop();    // 3 nodes in a line (Fig. 5, N = 3)
  static ScenarioSpec three_hop();  // 4 nodes in a line (Fig. 5, N = 4)
  static ScenarioSpec fig6_star();  // 2 senders -> center -> receiver

  std::size_t node_count() const;
  // Node coordinates (positions_override if set, else the family
  // formula; kRandom draws from placement_seed).
  std::vector<phy::Position> positions() const;
  // Topological neighbour lists (chain/ring adjacency, grid 4-neighbour,
  // star hub-and-spoke, random range graph), index-sorted.
  std::vector<std::vector<std::uint32_t>> adjacency() const;
  // Full next-hop matrix: next_hop[i][j] is i's next hop toward j
  // (== j when delivery is direct).
  std::vector<std::vector<std::uint32_t>> next_hops() const;
  // Interior nodes of the session paths, in first-traversal order.
  // A property of the family's session paths alone — independent of
  // whether routes are installed statically or found by discovery.
  std::vector<std::uint32_t> relay_indices() const;

  // Overloads taking the already-computed previous view, so a builder
  // needing all four derived views computes each once; kRandom's
  // rejection-sampled placement and per-destination BFS are the
  // expensive steps the no-arg forms would otherwise repeat.
  std::vector<std::vector<std::uint32_t>> adjacency(
      const std::vector<phy::Position>& positions) const;
  std::vector<std::vector<std::uint32_t>> next_hops(
      const std::vector<std::vector<std::uint32_t>>& adjacency) const;
  std::vector<std::uint32_t> relay_indices(
      const std::vector<std::vector<std::uint32_t>>& next_hops) const;

  // The medium configuration this spec resolves to: kAuto picks culled
  // delivery at kCullAutoThreshold nodes and full mesh below it.
  phy::MediumConfig medium_config() const;
  // The execution policy this spec's scheduler runs under (kAuto -> serial).
  sim::ExecutionPolicy scheduler_policy() const;
  // Bounding box of the node placement (positions_override included).
  WorldBounds world_bounds() const;
  // The largest reach radius of this spec's transmitters under the
  // resolved medium config (node tx power + tx_power_delta_db).
  double max_reach_m() const;

  // Compact description for sweep tables: "chain-8", "grid-3x4", ...
  std::string label() const;
};

// A fully wired simulation built from a ScenarioSpec: medium, nodes,
// routes, optional discovery engines.
class Scenario {
 public:
  // Instantiates `spec`. `seed` seeds the shared simulation RNG; fixed
  // so every run of a spec is reproducible (and so determinism tests can
  // compare two runs).
  static Scenario build(const ScenarioSpec& spec, std::uint64_t seed = 1);

  Scenario(Scenario&&) = default;

  const ScenarioSpec& spec() const { return spec_; }
  sim::Simulation& sim() { return *sim_; }
  phy::Medium& medium() { return *medium_; }
  std::size_t size() const { return nodes_.size(); }
  net::Node& node(std::size_t i) { return *nodes_.at(i); }
  net::RouteDiscovery& discovery(std::size_t i) { return *discovery_.at(i); }
  const std::vector<std::uint32_t>& relay_indices() const { return relays_; }
  // Null when spec().mobility.kind == kNone.
  const MobilityDriver* mobility() const { return mobility_.get(); }

  void run_for(sim::Duration d) { sim_->run_for(d); }
  void run() { sim_->run(); }

  // Starts recording one line per network-layer event (local delivery,
  // forward, link broadcast) on every node: simulated time, node index,
  // event kind, and the CRC-32 of the serialized packet bytes. Chains
  // onto any handlers already installed (discovery keeps working).
  void capture_traces();
  const std::vector<std::string>& trace() const { return *trace_; }
  // CRC-32 over the whole trace: a compact determinism fingerprint.
  std::uint32_t trace_digest() const;

  // Per-node MAC statistics rendered through stats::metrics as a table;
  // byte-identical across identically seeded runs.
  std::string metrics_summary() const;

 private:
  Scenario(const ScenarioSpec& spec, std::uint64_t seed);

  ScenarioSpec spec_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<phy::Medium> medium_;
  std::vector<std::unique_ptr<net::Node>> nodes_;
  std::vector<std::unique_ptr<net::RouteDiscovery>> discovery_;
  std::vector<std::uint32_t> relays_;
  // Declared after nodes_: its tick events reference the PHYs, so it
  // must stop existing no later than they do.
  std::unique_ptr<MobilityDriver> mobility_;
  // Shared so the trace callbacks installed by capture_traces() stay
  // valid even if the Scenario object is moved afterwards.
  std::shared_ptr<std::vector<std::string>> trace_;
};

}  // namespace hydra::topo
