// Shared scenario fixtures: chain / star / mesh topologies with
// deterministic RNG seeding, optional MAC neighbour whitelists (forced
// multi-hop), static routing, AODV-style discovery engines and
// packet-trace capture. The test suites, the examples and future
// workloads all build their topologies through this one library.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "mac/rate_adaptation.h"
#include "net/discovery.h"
#include "net/node.h"
#include "phy/medium.h"
#include "proto/mode.h"
#include "sim/simulation.h"

namespace hydra::topo {

struct ScenarioOptions {
  // Seed for the shared simulation RNG; fixed so every run of a fixture
  // is reproducible (and so determinism tests can compare two runs).
  std::uint64_t seed = 1;
  core::AggregationPolicy policy = core::AggregationPolicy::ba();
  phy::PhyMode unicast_mode = phy::base_mode();
  phy::PhyMode broadcast_mode = phy::base_mode();
  mac::RateAdaptationScheme rate_adaptation = mac::RateAdaptationScheme::kNone;
  // Inter-node spacing; 2.5 m is the paper's 25 dB operating point.
  double spacing_m = 2.5;
  // MAC link whitelist restricted to topological neighbours: every radio
  // still hears every frame, but only adjacent links deliver — the
  // standard trick for forcing multi-hop on a single channel.
  bool neighbor_whitelist = false;
  // Install hop-by-hop static routes matching the topology.
  bool static_routes = true;
  // Attach a RouteDiscovery engine to every node.
  bool route_discovery = false;
};

// A fully wired simulation: medium, nodes, optional discovery engines.
// Build one with Scenario::chain / star / mesh.
class Scenario {
 public:
  // n nodes in a line: 0 - 1 - ... - n-1, spacing_m apart.
  static Scenario chain(std::size_t n, const ScenarioOptions& opt = {});
  // Hub-and-spoke: node 0 at the centre, `leaves` nodes around it.
  // Static routes send leaf-to-leaf traffic through the centre.
  static Scenario star(std::size_t leaves, const ScenarioOptions& opt = {});
  // n nodes on a circle with adjacent spacing spacing_m; all links
  // direct (single collision domain, no whitelist, no routes needed).
  static Scenario mesh(std::size_t n, const ScenarioOptions& opt = {});

  Scenario(Scenario&&) = default;

  sim::Simulation& sim() { return *sim_; }
  phy::Medium& medium() { return *medium_; }
  std::size_t size() const { return nodes_.size(); }
  net::Node& node(std::size_t i) { return *nodes_.at(i); }
  net::RouteDiscovery& discovery(std::size_t i) { return *discovery_.at(i); }

  void run_for(sim::Duration d) { sim_->run_for(d); }
  void run() { sim_->run(); }

  // Starts recording one line per network-layer event (local delivery,
  // forward, link broadcast) on every node: simulated time, node index,
  // event kind, and the CRC-32 of the serialized packet bytes. Chains
  // onto any handlers already installed (discovery keeps working).
  void capture_traces();
  const std::vector<std::string>& trace() const { return *trace_; }
  // CRC-32 over the whole trace: a compact determinism fingerprint.
  std::uint32_t trace_digest() const;

  // Per-node MAC statistics rendered through stats::metrics as a table;
  // byte-identical across identically seeded runs.
  std::string metrics_summary() const;

 private:
  explicit Scenario(const ScenarioOptions& opt);

  void add_node(std::uint32_t index, phy::Position position,
                std::vector<mac::MacAddress> neighbors);
  void finish(bool with_discovery);

  ScenarioOptions opt_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<phy::Medium> medium_;
  std::vector<std::unique_ptr<net::Node>> nodes_;
  std::vector<std::unique_ptr<net::RouteDiscovery>> discovery_;
  // Shared so the trace callbacks installed by capture_traces() stay
  // valid even if the Scenario object is moved afterwards.
  std::shared_ptr<std::vector<std::string>> trace_;
};

}  // namespace hydra::topo
