// Mobility and churn models for scenarios: a MobilityDriver ticks on the
// simulation clock and drives phy::Medium::move_node / detach / attach
// while traffic runs, exercising the medium's incremental delivery-list
// maintenance (and its rebuild fallback) under motion.
//
// Three model families, selected by MobilitySpec::kind:
//
//   kWaypoint      random-waypoint walks: each mobile node moves at
//                  speed_mps toward a waypoint drawn uniformly inside the
//                  scenario's world bounds, drawing the next waypoint on
//                  arrival. Stays inside the built bounding box, so the
//                  culled backends absorb every move incrementally.
//   kDistanceStep  deterministic ping-pong: every mobile node teleports
//                  step_m in +x per tick, steps_out ticks out then back.
//                  The excursion deliberately leaves the world bounds,
//                  forcing the out-of-box rebuild path the spatial grid's
//                  superset guarantee requires.
//   kChurn         join/leave: one mobile node per tick detaches from the
//                  medium and re-attaches down_time later, cycling
//                  round-robin — the lifecycle path (event cancellation,
//                  reception aborts, re-attach ordering).
//
// Determinism: the driver owns its RNG stream (MobilitySpec::seed),
// separate from the simulation RNG, and visits mobile nodes in fixed
// order — so the motion schedule is a pure function of the spec, never of
// the delivery backend. The mobility determinism suite pins that per-seed
// trace digests stay bit-identical across full-mesh/culled/sharded under
// every model.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/medium.h"
#include "phy/phy.h"
#include "sim/rng.h"
#include "sim/simulation.h"

namespace hydra::topo {

enum class MobilityKind { kNone, kWaypoint, kDistanceStep, kChurn };

const char* to_string(MobilityKind kind);

struct MobilitySpec {
  MobilityKind kind = MobilityKind::kNone;

  // Tick cadence and schedule window (both ends relative to simulation
  // origin). The stop bound is what keeps run-until-empty simulations
  // terminating: a recurring tick with no deadline would hold the event
  // queue open forever.
  sim::Duration update_interval = sim::Duration::millis(250);
  sim::Duration start_after = sim::Duration::millis(50);
  sim::Duration stop_after = sim::Duration::seconds(20);

  // kWaypoint: walking speed and the waypoint-draw RNG stream.
  double speed_mps = 1.5;
  std::uint64_t seed = 1;

  // kDistanceStep: teleport distance per tick and ticks per excursion.
  double step_m = 1.0;
  std::uint32_t steps_out = 8;

  // kChurn: how long a node stays detached before rejoining.
  sim::Duration down_time = sim::Duration::millis(400);

  // Node indices the model applies to. Empty means the scenario default:
  // every node that is neither a session endpoint nor a relay (all nodes
  // when that set is empty).
  std::vector<std::uint32_t> mobile;
};

// Runs one MobilitySpec against a medium. Owned by the Scenario that
// built it; start() schedules the first tick and each tick re-arms
// itself until stop_after.
class MobilityDriver {
 public:
  // `world_min`/`world_max` bound the waypoint draws (the scenario's
  // node-placement bounding box); `targets` are the mobile PHYs, visited
  // in this order every tick.
  MobilityDriver(sim::Simulation& simulation, phy::Medium& medium,
                 MobilitySpec spec, phy::Position world_min,
                 phy::Position world_max, std::vector<phy::Phy*> targets);

  MobilityDriver(const MobilityDriver&) = delete;
  MobilityDriver& operator=(const MobilityDriver&) = delete;

  void start();

  std::uint64_t ticks() const { return ticks_; }

 private:
  void tick();
  void step_waypoint();
  void step_distance();
  void step_churn();
  phy::Position draw_waypoint();

  sim::Simulation& sim_;
  phy::Medium& medium_;
  MobilitySpec spec_;
  phy::Position world_min_;
  phy::Position world_max_;
  std::vector<phy::Phy*> targets_;
  sim::Rng rng_;
  // kWaypoint: current destination per target (parallel to targets_).
  std::vector<phy::Position> waypoints_;
  // kDistanceStep: tick counter folding into the out-and-back cycle.
  std::uint32_t phase_ = 0;
  // kChurn: round-robin cursor over targets_.
  std::size_t next_churn_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace hydra::topo
