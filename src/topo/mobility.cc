#include "topo/mobility.h"

#include <cmath>
#include <utility>

#include "util/assert.h"

namespace hydra::topo {

const char* to_string(MobilityKind kind) {
  switch (kind) {
    case MobilityKind::kNone: return "none";
    case MobilityKind::kWaypoint: return "waypoint";
    case MobilityKind::kDistanceStep: return "distance-step";
    case MobilityKind::kChurn: return "churn";
  }
  HYDRA_UNREACHABLE("bad mobility kind");
}

MobilityDriver::MobilityDriver(sim::Simulation& simulation, phy::Medium& medium,
                               MobilitySpec spec, phy::Position world_min,
                               phy::Position world_max,
                               std::vector<phy::Phy*> targets)
    : sim_(simulation),
      medium_(medium),
      spec_(std::move(spec)),
      world_min_(world_min),
      world_max_(world_max),
      targets_(std::move(targets)),
      rng_(spec_.seed) {
  HYDRA_ASSERT(spec_.kind != MobilityKind::kNone);
  HYDRA_ASSERT(!spec_.update_interval.is_zero() &&
               !spec_.update_interval.is_negative());
}

void MobilityDriver::start() {
  if (targets_.empty()) return;
  if (spec_.kind == MobilityKind::kWaypoint) {
    waypoints_.clear();
    waypoints_.reserve(targets_.size());
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      waypoints_.push_back(draw_waypoint());
    }
  }
  sim_.scheduler().schedule_at(
      sim::TimePoint::at(spec_.start_after) + spec_.update_interval,
      [this] { tick(); });
}

void MobilityDriver::tick() {
  ++ticks_;
  switch (spec_.kind) {
    case MobilityKind::kNone: HYDRA_UNREACHABLE("driver with kNone");
    case MobilityKind::kWaypoint: step_waypoint(); break;
    case MobilityKind::kDistanceStep: step_distance(); break;
    case MobilityKind::kChurn: step_churn(); break;
  }
  const auto next = sim_.now() + spec_.update_interval;
  if (next.since_origin() <= spec_.stop_after) {
    sim_.scheduler().schedule_at(next, [this] { tick(); });
  }
}

phy::Position MobilityDriver::draw_waypoint() {
  return {world_min_.x_m + rng_.uniform() * (world_max_.x_m - world_min_.x_m),
          world_min_.y_m + rng_.uniform() * (world_max_.y_m - world_min_.y_m)};
}

void MobilityDriver::step_waypoint() {
  const double step = spec_.speed_mps * spec_.update_interval.seconds_f();
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    phy::Phy* phy = targets_[i];
    const phy::Position at = phy->config().position;
    const phy::Position to = waypoints_[i];
    const double dist = phy::distance_m(at, to);
    if (dist <= step) {
      // Arrived: land exactly on the waypoint and pick the next one.
      medium_.move_node(*phy, to);
      waypoints_[i] = draw_waypoint();
      continue;
    }
    medium_.move_node(*phy, {at.x_m + (to.x_m - at.x_m) / dist * step,
                             at.y_m + (to.y_m - at.y_m) / dist * step});
  }
}

void MobilityDriver::step_distance() {
  // Out for steps_out ticks, back for steps_out ticks, repeat. The
  // excursion walks past the world's +x edge on purpose: positions
  // outside the built bounding box must route through the backend's
  // rebuild fallback, and this model is what the tests and benches use
  // to hit that path deterministically.
  const double direction = phase_ < spec_.steps_out ? 1.0 : -1.0;
  phase_ = (phase_ + 1) % (2 * spec_.steps_out);
  for (phy::Phy* phy : targets_) {
    const phy::Position at = phy->config().position;
    medium_.move_node(*phy, {at.x_m + direction * spec_.step_m, at.y_m});
  }
}

void MobilityDriver::step_churn() {
  phy::Phy* phy = targets_[next_churn_];
  next_churn_ = (next_churn_ + 1) % targets_.size();
  // Skip a node still down from a previous cycle (down_time longer than
  // a full round); its re-attach is already scheduled.
  if (!phy->attached()) return;
  medium_.detach(*phy);
  sim_.scheduler().schedule_in(spec_.down_time,
                               [this, phy] { medium_.attach(*phy); });
}

}  // namespace hydra::topo
