// Experiment configuration and results: a ScenarioSpec (which topology
// to build) plus the workload riding on it. The workload side — attaching
// traffic and running to completion — lives one layer up in
// app/experiment.h (app::run_experiment), so this layer never names the
// applications it carries.
#pragma once

#include <cstdint>
#include <vector>

#include "mac/stats.h"
#include "sim/time.h"
#include "topo/scenario.h"
#include "transport/tcp.h"

namespace hydra::topo {

enum class TrafficKind {
  kUdp,
  kTcp,
  // Two simultaneous file transfers in opposite directions along the
  // first session (extension; the natural showcase for bi-directional
  // aggregation, and the paper's §7 plan to mix traffic kinds).
  kTcpBidirectional,
};

// Deterministic per-link channel-loss injection: on node `node_index`,
// drop every `period`-th matching packet (after skipping `offset`
// matches) headed for `next_hop_index`. Counter-based — no RNG — so a
// loss pattern is a pure function of the traffic, reproducible across
// medium backends and scheduler policies. `next_hop_index < 0` matches
// any next hop; `tcp_data_only` restricts matching to TCP segments
// carrying payload (pure ACKs and control traffic pass), which keeps the
// reverse ACK channel clean for loss-differentiation experiments.
struct LossRule {
  std::uint32_t node_index = 0;
  std::int32_t next_hop_index = -1;
  std::uint32_t period = 0;  // 0 disables the rule
  std::uint32_t offset = 0;
  bool tcp_data_only = true;
};

struct ExperimentConfig {
  // The topology, per-node configuration and traffic sessions. The four
  // paper topologies are the named specs (ScenarioSpec::one_hop()
  // through fig6_star()); any other family/size runs unchanged.
  ScenarioSpec scenario = ScenarioSpec::two_hop();

  TrafficKind traffic = TrafficKind::kTcp;

  // TCP workload (paper §5): one-way 0.2 MB file transfer per session.
  std::uint64_t tcp_file_bytes = 200'000;
  transport::TcpConfig tcp;

  // Injected channel losses (see LossRule). Empty = lossless links; MAC
  // contention and collisions remain the only loss source, as before.
  std::vector<LossRule> losses;

  // UDP workload.
  std::uint32_t udp_payload_bytes = 1048;  // 1140 B MAC frames
  sim::Duration udp_interval = sim::Duration::millis(100);
  std::uint32_t udp_packets_per_tick = 4;
  sim::Duration udp_duration = sim::Duration::seconds(20);

  // Flooding load (Fig. 9): every node broadcasts at this interval.
  bool flooding = false;
  sim::Duration flood_interval = sim::Duration::seconds(1);
  std::uint32_t flood_payload_bytes = 40;

  std::uint64_t seed = 1;
  sim::Duration max_sim_time = sim::Duration::seconds(600);
};

struct FlowResult {
  double throughput_mbps = 0.0;
  std::uint64_t bytes = 0;
  sim::Duration elapsed;
  bool completed = false;
};

struct ExperimentResult {
  std::vector<FlowResult> flows;
  std::vector<mac::MacStats> node_stats;
  std::vector<std::uint32_t> relay_indices;
  sim::Duration sim_time;

  // Medium accounting: frames put on the air and receiver deliveries the
  // medium scheduled for them. deliveries ÷ transmissions is the
  // per-frame fan-out — N−1 under full mesh, the in-reach neighbor count
  // under culled delivery (what bench_ext_medium_scale charts).
  std::uint64_t phy_transmissions = 0;
  std::uint64_t phy_deliveries = 0;

  // Sharded-medium accounting: stripes the delivery backend fanned its
  // list computation across (1 for the serial backends), full
  // delivery-list rebuilds, and attaches absorbed incrementally without
  // one (a built scenario attaches every node before the first
  // transmission, so rebuilds is 1 and incremental attaches N−1 once
  // the backend's fast path applies).
  std::uint64_t phy_shards = 1;
  std::uint64_t phy_rebuilds = 0;
  std::uint64_t phy_incremental_attaches = 0;

  // Mobility accounting: detach()/move_node() calls the medium saw on
  // attached PHYs, and how many of each its backend absorbed
  // incrementally instead of falling back to a rebuild. All zero for
  // static scenarios (MobilityKind::kNone).
  std::uint64_t phy_detaches = 0;
  std::uint64_t phy_moves = 0;
  std::uint64_t phy_incremental_detaches = 0;
  std::uint64_t phy_incremental_moves = 0;

  // Scheduler accounting: events executed, lookahead windows the
  // parallel policy formed, and events run inside windows with more than
  // one concurrent group. Windows/parallel stay 0 under serial
  // execution; executed events are policy-invariant by the determinism
  // contract (the parallel suites pin exact equality).
  std::uint64_t sched_executed_events = 0;
  std::uint64_t sched_windows = 0;
  std::uint64_t sched_parallel_events = 0;

  // Memory accounting over the run (scenario build + traffic), from the
  // process-wide counters in util/alloc_stats.h and util/pool.h:
  // operator-new calls and bytes, pool requests and how many of those
  // were served by recycling a block, and the process peak RSS after
  // the run. Deltas are exact for serially executed experiments;
  // inside a parallel sweep they include concurrent runs and are only
  // indicative. peak_rss_kb is a whole-process high-water mark, not a
  // per-run delta.
  std::uint64_t heap_allocations = 0;
  std::uint64_t heap_bytes_allocated = 0;
  std::uint64_t pool_requests = 0;
  std::uint64_t pool_recycled = 0;
  std::uint64_t peak_rss_kb = 0;

  // Transport accounting, summed over every TCP connection the workload
  // opened (client and accepted sides): retransmissions, RTO firings,
  // ACKs emitted, ACKs the policy delayed, and the congestion scheme's
  // loss classification tallies (channel vs congestion episodes; NewReno
  // reports everything as congestion). transport_injected_drops counts
  // packets the LossRule filters discarded across all nodes.
  std::uint64_t tcp_retransmits = 0;
  std::uint64_t tcp_timeouts = 0;
  std::uint64_t tcp_acks_sent = 0;
  std::uint64_t tcp_acks_delayed = 0;
  std::uint64_t tcp_channel_losses = 0;
  std::uint64_t tcp_congestion_losses = 0;
  std::uint64_t transport_injected_drops = 0;

  // Slowest session (the paper reports worst-case for the star).
  double worst_throughput_mbps() const;
  double total_throughput_mbps() const;
  const mac::MacStats& relay_stats() const;  // first relay
};

}  // namespace hydra::topo
