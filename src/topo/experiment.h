// Shared experiment harness: the paper's topologies (Figs. 5, 6), their
// static routes and per-node configuration. The workload side — attaching
// traffic and running to completion — lives one layer up in
// app/experiment.h (app::run_experiment), so this layer never names the
// applications it carries.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/policy.h"
#include "mac/rate_adaptation.h"
#include "mac/stats.h"
#include "net/node.h"
#include "phy/medium.h"
#include "proto/mode.h"
#include "sim/time.h"
#include "transport/tcp.h"

namespace hydra::topo {

enum class Topology {
  kOneHop,    // 2 nodes (aggregation-size study, Fig. 7)
  kTwoHop,    // 3 nodes in a line (Fig. 5 with N = 3)
  kThreeHop,  // 4 nodes in a line (Fig. 5 with N = 4)
  kStar,      // 4 nodes: two senders -> center -> one receiver (Fig. 6)
};

enum class TrafficKind {
  kUdp,
  kTcp,
  // Two simultaneous file transfers in opposite directions along the
  // chain (extension; the natural showcase for bi-directional
  // aggregation, and the paper's §7 plan to mix traffic kinds).
  kTcpBidirectional,
};

struct ExperimentConfig {
  Topology topology = Topology::kTwoHop;
  // Applied to every node. For delayed aggregation the paper delays only
  // relay nodes; when `delay_min_subframes > 0` the endpoints run the
  // same policy with the delay removed.
  core::AggregationPolicy policy = core::AggregationPolicy::ba();
  phy::PhyMode unicast_mode = phy::base_mode();
  phy::PhyMode broadcast_mode = phy::base_mode();
  bool use_rts_cts = true;
  std::size_t queue_limit = 64;
  // Optional link rate adaptation (extension; the paper pins rates).
  mac::RateAdaptationScheme rate_adaptation = mac::RateAdaptationScheme::kNone;
  // Transmit-power offset applied to every node (dB); the extension
  // benches use it to sweep the operating SNR away from the paper's
  // 25 dB point.
  double tx_power_delta_db = 0.0;

  TrafficKind traffic = TrafficKind::kTcp;

  // TCP workload (paper §5): one-way 0.2 MB file transfer.
  std::uint64_t tcp_file_bytes = 200'000;
  transport::TcpConfig tcp;

  // UDP workload.
  std::uint32_t udp_payload_bytes = 1048;  // 1140 B MAC frames
  sim::Duration udp_interval = sim::Duration::millis(100);
  std::uint32_t udp_packets_per_tick = 4;
  sim::Duration udp_duration = sim::Duration::seconds(20);

  // Flooding load (Fig. 9): every node broadcasts at this interval.
  bool flooding = false;
  sim::Duration flood_interval = sim::Duration::seconds(1);
  std::uint32_t flood_payload_bytes = 40;

  std::uint64_t seed = 1;
  sim::Duration max_sim_time = sim::Duration::seconds(600);
};

struct FlowResult {
  double throughput_mbps = 0.0;
  std::uint64_t bytes = 0;
  sim::Duration elapsed;
  bool completed = false;
};

struct ExperimentResult {
  std::vector<FlowResult> flows;
  std::vector<mac::MacStats> node_stats;
  std::vector<std::uint32_t> relay_indices;
  sim::Duration sim_time;

  // Slowest session (the paper reports worst-case for the star).
  double worst_throughput_mbps() const;
  double total_throughput_mbps() const;
  const mac::MacStats& relay_stats() const;  // first relay
};

// One traffic session the topology defines, as node indices.
struct Session {
  std::uint32_t sender = 0;
  std::uint32_t receiver = 0;
};

// Number of nodes a topology instantiates.
std::size_t node_count(Topology t);
// Indices of relay (interior) nodes.
std::vector<std::uint32_t> relay_indices(Topology t);
// The paper's sessions for a topology (the star runs two, Fig. 6).
std::vector<Session> sessions_for(Topology t);
// Node coordinates at the paper's §5 spacing (2.5 m, the 25 dB point).
std::vector<phy::Position> positions_for(Topology t);

// Builds the topology's nodes, fully configured from `config` (relays
// keep the delayed-aggregation holdoff, endpoints drop it, §6.4.3).
std::vector<std::unique_ptr<net::Node>> build_nodes(
    sim::Simulation& simulation, phy::Medium& medium,
    const ExperimentConfig& config);
// Installs the hop-by-hop static routes of the topology.
void install_static_routes(Topology t,
                           std::span<const std::unique_ptr<net::Node>> nodes);

}  // namespace hydra::topo
