#include "topo/experiment.h"

#include <algorithm>
#include <memory>

#include "app/file_transfer.h"
#include "app/flood.h"
#include "app/udp_cbr.h"
#include "app/udp_sink.h"
#include "net/node.h"
#include "phy/medium.h"
#include "sim/simulation.h"
#include "util/assert.h"

namespace hydra::topo {

namespace {

constexpr net::Port kTcpPort = 5001;
constexpr net::Port kUdpPort = 9001;
constexpr double kSpacingM = 2.5;  // paper §5 node spacing

struct SessionSpec {
  std::uint32_t sender;
  std::uint32_t receiver;
};

std::vector<SessionSpec> sessions_for(Topology t) {
  switch (t) {
    case Topology::kOneHop: return {{0, 1}};
    case Topology::kTwoHop: return {{0, 2}};
    case Topology::kThreeHop: return {{0, 3}};
    // Star (paper Fig. 6): two sessions, each 2 hops through the center
    // (node 1); both terminate at node 0.
    case Topology::kStar: return {{2, 0}, {3, 0}};
  }
  HYDRA_UNREACHABLE("bad topology");
}

std::vector<phy::Position> positions_for(Topology t) {
  switch (t) {
    case Topology::kOneHop:
      return {{0, 0}, {kSpacingM, 0}};
    case Topology::kTwoHop:
      return {{0, 0}, {kSpacingM, 0}, {2 * kSpacingM, 0}};
    case Topology::kThreeHop:
      return {{0, 0}, {kSpacingM, 0}, {2 * kSpacingM, 0}, {3 * kSpacingM, 0}};
    case Topology::kStar:
      return {{-kSpacingM, 0},
              {0, 0},
              {kSpacingM * 0.98, kSpacingM * 0.2},
              {kSpacingM * 0.98, -kSpacingM * 0.2}};
  }
  HYDRA_UNREACHABLE("bad topology");
}

void install_routes(Topology t, std::vector<std::unique_ptr<net::Node>>& nodes) {
  const auto ip = [](std::uint32_t i) { return net::Ipv4Address::for_node(i); };
  switch (t) {
    case Topology::kOneHop:
    case Topology::kTwoHop:
    case Topology::kThreeHop: {
      // Linear chain: hop-by-hop toward the destination index.
      const auto n = nodes.size();
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const std::uint32_t next = j > i ? i + 1 : i - 1;
          nodes[i]->routes().add_route(ip(j), ip(next));
        }
      }
      return;
    }
    case Topology::kStar: {
      // Leaves reach each other through the center (node 1).
      for (const std::uint32_t leaf : {0u, 2u, 3u}) {
        for (const std::uint32_t other : {0u, 2u, 3u}) {
          if (leaf == other) continue;
          nodes[leaf]->routes().add_route(ip(other), ip(1));
        }
      }
      return;
    }
  }
  HYDRA_UNREACHABLE("bad topology");
}

}  // namespace

std::size_t node_count(Topology t) { return positions_for(t).size(); }

std::vector<std::uint32_t> relay_indices(Topology t) {
  switch (t) {
    case Topology::kOneHop: return {};
    case Topology::kTwoHop: return {1};
    case Topology::kThreeHop: return {1, 2};
    case Topology::kStar: return {1};
  }
  HYDRA_UNREACHABLE("bad topology");
}

double ExperimentResult::worst_throughput_mbps() const {
  double worst = 0.0;
  bool first = true;
  for (const auto& flow : flows) {
    if (first || flow.throughput_mbps < worst) worst = flow.throughput_mbps;
    first = false;
  }
  return worst;
}

double ExperimentResult::total_throughput_mbps() const {
  double total = 0.0;
  for (const auto& flow : flows) total += flow.throughput_mbps;
  return total;
}

const mac::MacStats& ExperimentResult::relay_stats() const {
  HYDRA_ASSERT(!relay_indices.empty());
  return node_stats[relay_indices.front()];
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  sim::Simulation simulation(config.seed);
  phy::Medium medium(simulation);

  const auto positions = positions_for(config.topology);
  const auto relays = relay_indices(config.topology);

  std::vector<std::unique_ptr<net::Node>> nodes;
  nodes.reserve(positions.size());
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    net::NodeConfig nc;
    nc.position = positions[i];
    nc.policy = config.policy;
    // The paper delays only relay nodes (§6.4.3).
    const bool is_relay =
        std::find(relays.begin(), relays.end(), i) != relays.end();
    if (!is_relay) nc.policy.delay_min_subframes = 0;
    nc.unicast_mode = config.unicast_mode;
    nc.broadcast_mode = config.broadcast_mode;
    nc.use_rts_cts = config.use_rts_cts;
    nc.queue_limit = config.queue_limit;
    nc.rate_adaptation = config.rate_adaptation;
    nc.tx_power_dbm += config.tx_power_delta_db;
    nodes.push_back(std::make_unique<net::Node>(simulation, medium, i, nc));
  }
  install_routes(config.topology, nodes);

  auto sessions = sessions_for(config.topology);
  if (config.traffic == TrafficKind::kTcpBidirectional) {
    HYDRA_ASSERT_MSG(config.topology != Topology::kStar,
                     "bidirectional traffic is defined for chains");
    const auto forward = sessions.front();
    sessions = {forward, {forward.receiver, forward.sender}};
  }

  // Flooding load: every node broadcasts, with staggered phases.
  std::vector<std::unique_ptr<app::FloodApp>> flooders;
  if (config.flooding) {
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      app::FloodConfig fc;
      fc.payload_bytes = config.flood_payload_bytes;
      fc.interval = config.flood_interval;
      fc.initial_offset = sim::Duration::millis(17) * (i + 1);
      flooders.push_back(
          std::make_unique<app::FloodApp>(simulation, *nodes[i], fc));
      flooders.back()->start();
    }
  }

  ExperimentResult result;
  result.relay_indices = relays;

  if (config.traffic != TrafficKind::kUdp) {
    // One FileReceiver per distinct receiving node.
    std::vector<std::unique_ptr<app::FileReceiverApp>> receivers(nodes.size());
    std::vector<std::unique_ptr<app::FileSenderApp>> senders;
    std::vector<std::size_t> flows_at(nodes.size(), 0);
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const auto [src, dst] = sessions[s];
      if (!receivers[dst]) {
        receivers[dst] = std::make_unique<app::FileReceiverApp>(
            simulation, *nodes[dst], kTcpPort, config.tcp_file_bytes,
            config.tcp);
      }
      ++flows_at[dst];
      senders.push_back(std::make_unique<app::FileSenderApp>(
          simulation, *nodes[src],
          net::Endpoint{net::Ipv4Address::for_node(dst), kTcpPort},
          config.tcp_file_bytes, config.tcp));
      senders.back()->start(
          sim::TimePoint::at(sim::Duration::millis(10) * (s + 1)));
    }

    // Run in slices until every flow completes (or the time cap).
    const auto deadline = sim::TimePoint::at(config.max_sim_time);
    while (simulation.now() < deadline) {
      bool all_done = true;
      for (std::size_t d = 0; d < nodes.size(); ++d) {
        if (receivers[d] && !receivers[d]->all_complete(flows_at[d])) {
          all_done = false;
        }
      }
      if (all_done) break;
      simulation.run_for(sim::Duration::millis(200));
    }

    // Collect per-session results. Sessions at a shared receiver appear
    // in accept order; map flows to senders by matching counts.
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const auto [src, dst] = sessions[s];
      FlowResult fr;
      fr.bytes = config.tcp_file_bytes;
      const auto& recv = *receivers[dst];
      // Find this sender's flow: flows at the receiver are indexed in
      // connection-accept order, which matches the staggered start order.
      std::size_t flow_index = 0;
      for (std::size_t prior = 0; prior < s; ++prior) {
        if (sessions[prior].receiver == dst) ++flow_index;
      }
      if (flow_index < recv.flow_count()) {
        const auto& flow = recv.flow(flow_index);
        fr.completed = flow.complete;
        if (flow.complete) {
          const auto start = senders[s]->started_at();
          fr.elapsed = flow.completed_at - start;
          fr.throughput_mbps = static_cast<double>(fr.bytes) * 8.0 /
                               fr.elapsed.seconds_f() / 1e6;
        }
      }
      result.flows.push_back(fr);
    }
  } else {
    // UDP: CBR from each session sender to a sink at the receiver.
    std::vector<std::unique_ptr<app::UdpSinkApp>> sinks(nodes.size());
    std::vector<std::unique_ptr<app::UdpCbrApp>> cbrs;
    const auto stop = sim::TimePoint::at(config.udp_duration);
    for (const auto [src, dst] : sessions) {
      if (!sinks[dst]) {
        sinks[dst] =
            std::make_unique<app::UdpSinkApp>(simulation, *nodes[dst],
                                              kUdpPort);
      }
      app::UdpCbrConfig uc;
      uc.destination = {net::Ipv4Address::for_node(dst), kUdpPort};
      uc.payload_bytes = config.udp_payload_bytes;
      uc.interval = config.udp_interval;
      uc.packets_per_tick = config.udp_packets_per_tick;
      uc.stop = stop;
      cbrs.push_back(std::make_unique<app::UdpCbrApp>(simulation, *nodes[src],
                                                      uc, 9000));
      cbrs.back()->start();
    }
    // Run through the send window plus a drain period.
    simulation.run_until(stop + sim::Duration::seconds(2));

    for (const auto [src, dst] : sessions) {
      (void)src;
      FlowResult fr;
      const auto& sink = *sinks[dst];
      fr.bytes = sink.payload_bytes();
      fr.elapsed = config.udp_duration;
      fr.completed = true;
      fr.throughput_mbps = sink.goodput_mbps(config.udp_duration);
      result.flows.push_back(fr);
      break;  // sinks aggregate all sessions at one receiver
    }
  }

  result.sim_time = simulation.now().since_origin();
  for (const auto& node : nodes) {
    result.node_stats.push_back(node->mac_stats());
  }
  return result;
}

}  // namespace hydra::topo
