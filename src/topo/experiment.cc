#include "topo/experiment.h"

#include "util/assert.h"

namespace hydra::topo {

double ExperimentResult::worst_throughput_mbps() const {
  double worst = 0.0;
  bool first = true;
  for (const auto& flow : flows) {
    if (first || flow.throughput_mbps < worst) worst = flow.throughput_mbps;
    first = false;
  }
  return worst;
}

double ExperimentResult::total_throughput_mbps() const {
  double total = 0.0;
  for (const auto& flow : flows) total += flow.throughput_mbps;
  return total;
}

const mac::MacStats& ExperimentResult::relay_stats() const {
  HYDRA_ASSERT(!relay_indices.empty());
  return node_stats[relay_indices.front()];
}

}  // namespace hydra::topo
