#include "topo/experiment.h"

#include <algorithm>

#include "util/assert.h"

namespace hydra::topo {

namespace {

constexpr double kSpacingM = 2.5;  // paper §5 node spacing

}  // namespace

std::vector<Session> sessions_for(Topology t) {
  switch (t) {
    case Topology::kOneHop: return {{0, 1}};
    case Topology::kTwoHop: return {{0, 2}};
    case Topology::kThreeHop: return {{0, 3}};
    // Star (paper Fig. 6): two sessions, each 2 hops through the center
    // (node 1); both terminate at node 0.
    case Topology::kStar: return {{2, 0}, {3, 0}};
  }
  HYDRA_UNREACHABLE("bad topology");
}

std::vector<phy::Position> positions_for(Topology t) {
  switch (t) {
    case Topology::kOneHop:
      return {{0, 0}, {kSpacingM, 0}};
    case Topology::kTwoHop:
      return {{0, 0}, {kSpacingM, 0}, {2 * kSpacingM, 0}};
    case Topology::kThreeHop:
      return {{0, 0}, {kSpacingM, 0}, {2 * kSpacingM, 0}, {3 * kSpacingM, 0}};
    case Topology::kStar:
      return {{-kSpacingM, 0},
              {0, 0},
              {kSpacingM * 0.98, kSpacingM * 0.2},
              {kSpacingM * 0.98, -kSpacingM * 0.2}};
  }
  HYDRA_UNREACHABLE("bad topology");
}

void install_static_routes(Topology t,
                           std::span<const std::unique_ptr<net::Node>> nodes) {
  const auto ip = [](std::uint32_t i) { return net::Ipv4Address::for_node(i); };
  switch (t) {
    case Topology::kOneHop:
    case Topology::kTwoHop:
    case Topology::kThreeHop: {
      // Linear chain: hop-by-hop toward the destination index.
      const auto n = nodes.size();
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = 0; j < n; ++j) {
          if (i == j) continue;
          const std::uint32_t next = j > i ? i + 1 : i - 1;
          nodes[i]->routes().add_route(ip(j), ip(next));
        }
      }
      return;
    }
    case Topology::kStar: {
      // Leaves reach each other through the center (node 1).
      for (const std::uint32_t leaf : {0u, 2u, 3u}) {
        for (const std::uint32_t other : {0u, 2u, 3u}) {
          if (leaf == other) continue;
          nodes[leaf]->routes().add_route(ip(other), ip(1));
        }
      }
      return;
    }
  }
  HYDRA_UNREACHABLE("bad topology");
}

std::vector<std::unique_ptr<net::Node>> build_nodes(
    sim::Simulation& simulation, phy::Medium& medium,
    const ExperimentConfig& config) {
  const auto positions = positions_for(config.topology);
  const auto relays = relay_indices(config.topology);

  std::vector<std::unique_ptr<net::Node>> nodes;
  nodes.reserve(positions.size());
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    net::NodeConfig nc;
    nc.position = positions[i];
    nc.policy = config.policy;
    // The paper delays only relay nodes (§6.4.3).
    const bool is_relay =
        std::find(relays.begin(), relays.end(), i) != relays.end();
    if (!is_relay) nc.policy.delay_min_subframes = 0;
    nc.unicast_mode = config.unicast_mode;
    nc.broadcast_mode = config.broadcast_mode;
    nc.use_rts_cts = config.use_rts_cts;
    nc.queue_limit = config.queue_limit;
    nc.rate_adaptation = config.rate_adaptation;
    nc.tx_power_dbm += config.tx_power_delta_db;
    nodes.push_back(std::make_unique<net::Node>(simulation, medium, i, nc));
  }
  return nodes;
}

std::size_t node_count(Topology t) { return positions_for(t).size(); }

std::vector<std::uint32_t> relay_indices(Topology t) {
  switch (t) {
    case Topology::kOneHop: return {};
    case Topology::kTwoHop: return {1};
    case Topology::kThreeHop: return {1, 2};
    case Topology::kStar: return {1};
  }
  HYDRA_UNREACHABLE("bad topology");
}

double ExperimentResult::worst_throughput_mbps() const {
  double worst = 0.0;
  bool first = true;
  for (const auto& flow : flows) {
    if (first || flow.throughput_mbps < worst) worst = flow.throughput_mbps;
    first = false;
  }
  return worst;
}

double ExperimentResult::total_throughput_mbps() const {
  double total = 0.0;
  for (const auto& flow : flows) total += flow.throughput_mbps;
  return total;
}

const mac::MacStats& ExperimentResult::relay_stats() const {
  HYDRA_ASSERT(!relay_indices.empty());
  return node_stats[relay_indices.front()];
}

}  // namespace hydra::topo
