#include "core/aggregator.h"

#include "util/assert.h"

namespace hydra::core {

bool Aggregator::may_transmit(
    const DualQueue& queues, sim::TimePoint now,
    std::optional<sim::TimePoint>* holdoff_deadline) const {
  if (holdoff_deadline) holdoff_deadline->reset();
  if (queues.empty()) return false;
  if (policy_.delay_min_subframes == 0) return true;
  if (queues.total_size() >= policy_.delay_min_subframes) return true;

  // Delayed aggregation: hold until enough subframes or the oldest one
  // has waited out the safety timeout.
  const auto oldest = queues.oldest_enqueue();
  HYDRA_ASSERT(oldest.has_value());
  const auto deadline = *oldest + policy_.delay_timeout;
  if (now >= deadline) return true;
  if (holdoff_deadline) *holdoff_deadline = deadline;
  return false;
}

std::int64_t Aggregator::budget_limit() const {
  if (policy_.airtime_capped()) return policy_.max_aggregate_airtime.ns();
  return static_cast<std::int64_t>(policy_.max_aggregate_bytes);
}

std::int64_t Aggregator::subframe_cost(const proto::MacSubframe& sf,
                                       const proto::PhyMode& mode) const {
  if (policy_.airtime_capped()) {
    return phy::payload_airtime(sf.wire_bytes(), mode).ns();
  }
  return static_cast<std::int64_t>(sf.wire_bytes());
}

std::int64_t Aggregator::frame_cost(const proto::AggregateFrame& frame) const {
  std::int64_t cost = 0;
  for (const auto& sf : frame.broadcast) {
    cost += subframe_cost(sf, broadcast_mode_);
  }
  for (const auto& sf : frame.unicast) cost += subframe_cost(sf, unicast_mode_);
  return cost;
}

void Aggregator::fill_broadcast(DualQueue& queues, proto::AggregateFrame& frame,
                                std::int64_t reserved_cost) const {
  if (!policy_.broadcast_aggregation()) return;
  auto& bq = queues.broadcast();
  std::int64_t used = frame_cost(frame) + reserved_cost;
  const std::size_t max_subframes =
      policy_.forward_aggregation ? SIZE_MAX : 1;
  while (!bq.empty() && frame.broadcast.size() < max_subframes) {
    const auto cost = subframe_cost(bq.front()->subframe, broadcast_mode_);
    const bool first = frame.broadcast.empty() && reserved_cost == 0;
    if (!first && used + cost > budget_limit()) break;
    frame.broadcast.push_back(bq.pop().subframe);
    used += cost;
  }
}

proto::AggregateFrame Aggregator::build(DualQueue& queues) const {
  HYDRA_ASSERT_MSG(!queues.empty(), "build on empty queues");
  proto::AggregateFrame frame;

  if (!policy_.aggregation_enabled()) {
    // NA baseline: exactly one subframe per PHY frame. Broadcast-class
    // traffic is served first (it is sparse control traffic).
    auto& source = queues.broadcast().empty() ? queues.unicast()
                                              : queues.broadcast();
    auto queued = source.pop();
    if (queued.subframe.receiver.is_broadcast() ||
        &source == &queues.broadcast()) {
      frame.broadcast.push_back(std::move(queued.subframe));
    } else {
      frame.unicast.push_back(std::move(queued.subframe));
    }
    return frame;
  }

  if (policy_.mode == AggregationMode::kUnicast &&
      !queues.broadcast().empty()) {
    // Unicast-only aggregation: broadcast traffic is still sent, but one
    // frame at a time, exactly as in the NA baseline.
    frame.broadcast.push_back(queues.broadcast().pop().subframe);
    return frame;
  }

  // Broadcast portion first (paper: "the MAC aggregates the broadcast
  // subframes followed by unicast subframes").
  fill_broadcast(queues, frame, /*reserved_cost=*/0);

  // Unicast portion: subframes sharing the destination of the queue head.
  auto& uq = queues.unicast();
  if (!uq.empty()) {
    const auto dest = uq.front()->subframe.receiver;
    std::int64_t used = frame_cost(frame);
    const std::size_t max_subframes =
        policy_.forward_aggregation ? SIZE_MAX : 1;
    while (!uq.empty() && frame.unicast.size() < max_subframes &&
           uq.front()->subframe.receiver == dest) {
      const auto cost = subframe_cost(uq.front()->subframe, unicast_mode_);
      const bool first = frame.empty();
      if (!first && used + cost > budget_limit()) break;
      frame.unicast.push_back(uq.pop().subframe);
      used += cost;
    }
  }

  HYDRA_ASSERT(!frame.empty());
  return frame;
}

proto::AggregateFrame Aggregator::build_retry(
    DualQueue& queues,
    std::span<const proto::MacSubframe> unicast_burst) const {
  HYDRA_ASSERT(!unicast_burst.empty());
  proto::AggregateFrame frame;
  std::int64_t burst_cost = 0;
  for (const auto& sf : unicast_burst) {
    burst_cost += subframe_cost(sf, unicast_mode_);
  }

  fill_broadcast(queues, frame, burst_cost);
  for (const auto& sf : unicast_burst) {
    frame.unicast.push_back(sf);
    frame.unicast.back().retry = true;
  }
  return frame;
}

}  // namespace hydra::core
