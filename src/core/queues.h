// The MAC's dual transmit queues (paper §4.2.3): one for broadcast-class
// subframes (true broadcasts + reclassified TCP ACKs), one for unicast.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "proto/frames.h"
#include "sim/time.h"

namespace hydra::core {

struct QueuedSubframe {
  proto::MacSubframe subframe;
  sim::TimePoint enqueued;
};

// Bounded FIFO of subframes.
class SubframeQueue {
 public:
  explicit SubframeQueue(std::size_t limit) : limit_(limit) {}

  // Returns false (and counts a drop) when the queue is full.
  bool push(proto::MacSubframe subframe, sim::TimePoint now);

  const QueuedSubframe* front() const {
    return q_.empty() ? nullptr : &q_.front();
  }
  QueuedSubframe pop();

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  std::size_t limit() const { return limit_; }
  std::uint64_t drops() const { return drops_; }

  // Iteration for aggregation decisions (peek without consuming).
  auto begin() const { return q_.begin(); }
  auto end() const { return q_.end(); }

 private:
  std::size_t limit_;
  std::deque<QueuedSubframe> q_;
  std::uint64_t drops_ = 0;
};

// The broadcast/unicast queue pair.
class DualQueue {
 public:
  explicit DualQueue(std::size_t per_queue_limit = 64)
      : broadcast_(per_queue_limit), unicast_(per_queue_limit) {}

  SubframeQueue& broadcast() { return broadcast_; }
  SubframeQueue& unicast() { return unicast_; }
  const SubframeQueue& broadcast() const { return broadcast_; }
  const SubframeQueue& unicast() const { return unicast_; }

  bool empty() const { return broadcast_.empty() && unicast_.empty(); }
  std::size_t total_size() const { return broadcast_.size() + unicast_.size(); }
  std::uint64_t total_drops() const {
    return broadcast_.drops() + unicast_.drops();
  }

  // Enqueue time of the oldest subframe in either queue, if any; drives
  // the delayed-aggregation timeout.
  std::optional<sim::TimePoint> oldest_enqueue() const;

 private:
  SubframeQueue broadcast_;
  SubframeQueue unicast_;
};

}  // namespace hydra::core
