// Cross-layer TCP ACK classification (paper §3.3 / §4.2.4).
//
// The MAC inspects the transport header of outgoing packets. "Pure" TCP
// ACKs — segments with no data that are not part of connection setup or
// teardown — are assigned to the broadcast queue while keeping their
// unicast next-hop address: they are transmitted in the broadcast portion
// of aggregates and never link-acknowledged; TCP's cumulative ACKs absorb
// the occasional loss.
#pragma once

#include <cstdint>

#include "proto/packet.h"

namespace hydra::core {

enum class TrafficClass {
  kUnicast,    // requires link-level ACK; unicast queue
  kBroadcast,  // broadcast-addressed; broadcast queue
  kTcpAck,     // pure TCP ACK reclassified as broadcast (cross-layer)
};

class TcpAckClassifier {
 public:
  explicit TcpAckClassifier(bool tcp_ack_as_broadcast)
      : tcp_ack_as_broadcast_(tcp_ack_as_broadcast) {}

  // Classifies an outgoing packet. `link_broadcast` marks packets whose
  // link-layer destination is the broadcast address.
  TrafficClass classify(const proto::Packet& packet, bool link_broadcast) const;

  void set_enabled(bool enabled) { tcp_ack_as_broadcast_ = enabled; }
  bool enabled() const { return tcp_ack_as_broadcast_; }

  // Counters for the experiment reports.
  std::uint64_t acks_classified() const { return acks_classified_; }
  std::uint64_t packets_seen() const { return packets_seen_; }

 private:
  bool tcp_ack_as_broadcast_;
  mutable std::uint64_t acks_classified_ = 0;
  mutable std::uint64_t packets_seen_ = 0;
};

}  // namespace hydra::core
