// Frame assembly: builds the next aggregate from the dual queues
// (paper §4.2.3 transmit process).
//
// Assembly order follows the paper exactly: broadcast subframes first —
// they sit closest to the PHY training sequences and are least exposed to
// channel aging — then unicast subframes that share the destination of
// the unicast queue head, up to the policy's maximum aggregate size.
//
// The size cap is either a byte budget (the paper's 5 KB) or, with the
// rate-adaptive extension, an airtime budget evaluated against each
// portion's PHY mode.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/policy.h"
#include "core/queues.h"
#include "phy/timing.h"
#include "proto/frames.h"
#include "proto/mode.h"

namespace hydra::core {

class Aggregator {
 public:
  explicit Aggregator(AggregationPolicy policy) : policy_(policy) {}

  const AggregationPolicy& policy() const { return policy_; }
  AggregationPolicy& policy() { return policy_; }

  // The PHY modes of the two portions; required for airtime-capped
  // policies (kept current by the MAC when its rates change).
  void set_modes(const proto::PhyMode& broadcast_mode,
                 const proto::PhyMode& unicast_mode) {
    broadcast_mode_ = broadcast_mode;
    unicast_mode_ = unicast_mode;
  }

  // Whether the MAC may contend for the floor now. False only while the
  // delayed-aggregation policy is holding out for more subframes; in that
  // case `holdoff_deadline` is set to when the hold expires.
  bool may_transmit(const DualQueue& queues, sim::TimePoint now,
                    std::optional<sim::TimePoint>* holdoff_deadline) const;

  // Builds the next aggregate, consuming broadcast-queue entries and
  // popping the unicast subframes it includes. At least one subframe is
  // always produced if any queue is non-empty (a lone oversized subframe
  // still goes out).
  proto::AggregateFrame build(DualQueue& queues) const;

  // Rebuilds a retransmission: the unicast burst is fixed (802.11 retry
  // semantics), but freshly queued broadcast subframes may still ride
  // along when broadcast aggregation is on.
  proto::AggregateFrame build_retry(
      DualQueue& queues, std::span<const proto::MacSubframe> unicast_burst)
      const;

 private:
  // Budget bookkeeping in the policy's units (bytes or airtime ns).
  std::int64_t budget_limit() const;
  std::int64_t subframe_cost(const proto::MacSubframe& sf,
                             const proto::PhyMode& mode) const;
  std::int64_t frame_cost(const proto::AggregateFrame& frame) const;

  void fill_broadcast(DualQueue& queues, proto::AggregateFrame& frame,
                      std::int64_t reserved_cost) const;

  AggregationPolicy policy_;
  proto::PhyMode broadcast_mode_ = proto::base_mode();
  proto::PhyMode unicast_mode_ = proto::base_mode();
};

}  // namespace hydra::core
