#include "core/queues.h"

#include "util/assert.h"

namespace hydra::core {

bool SubframeQueue::push(proto::MacSubframe subframe, sim::TimePoint now) {
  if (q_.size() >= limit_) {
    ++drops_;
    return false;
  }
  q_.push_back(QueuedSubframe{std::move(subframe), now});
  return true;
}

QueuedSubframe SubframeQueue::pop() {
  HYDRA_ASSERT(!q_.empty());
  QueuedSubframe out = std::move(q_.front());
  q_.pop_front();
  return out;
}

std::optional<sim::TimePoint> DualQueue::oldest_enqueue() const {
  std::optional<sim::TimePoint> oldest;
  if (const auto* b = broadcast_.front()) oldest = b->enqueued;
  if (const auto* u = unicast_.front()) {
    if (!oldest || u->enqueued < *oldest) oldest = u->enqueued;
  }
  return oldest;
}

}  // namespace hydra::core
