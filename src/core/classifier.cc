#include "core/classifier.h"

namespace hydra::core {

TrafficClass TcpAckClassifier::classify(const proto::Packet& packet,
                                        bool link_broadcast) const {
  ++packets_seen_;
  if (link_broadcast) return TrafficClass::kBroadcast;
  if (tcp_ack_as_broadcast_ && packet.is_pure_tcp_ack()) {
    ++acks_classified_;
    return TrafficClass::kTcpAck;
  }
  return TrafficClass::kUnicast;
}

}  // namespace hydra::core
