// Aggregation policy: the knobs the paper evaluates.
//
// The paper's configurations map to policies as follows:
//   NA  (no aggregation)        -> AggregationPolicy::na()
//   UA  (unicast aggregation)   -> AggregationPolicy::ua()
//   BA  (broadcast aggregation
//        + TCP ACKs broadcast)  -> AggregationPolicy::ba()
//   DBA (delayed BA, 3 frames)  -> AggregationPolicy::dba()
//   Fig 14's "BA without forward aggregation"
//                               -> ba() with forward_aggregation = false
#pragma once

#include <cstddef>

#include "sim/time.h"

namespace hydra::core {

enum class AggregationMode {
  kNone,       // one subframe per PHY frame (the 802.11 baseline)
  kUnicast,    // aggregate subframes to the same receiver (paper §3.1)
  kBroadcast,  // + prepend broadcast subframes (paper §3.2)
};

struct AggregationPolicy {
  AggregationMode mode = AggregationMode::kBroadcast;

  // Maximum MAC bytes per aggregate (headers + FCS + padding included).
  // The paper selects 5 KB (§6.1) so every rate stays below the
  // ~120 Ksample channel-coherence limit.
  std::size_t max_aggregate_bytes = 5 * 1024;

  // Extension (paper §6.1 future work: "changing the aggregation size as
  // a function of rate"). When set, the aggregate is capped by *airtime*
  // rather than bytes, so faster rates fit proportionally more data under
  // the same channel-coherence budget. Zero disables (byte cap applies).
  sim::Duration max_aggregate_airtime = sim::Duration::zero();

  bool airtime_capped() const { return !max_aggregate_airtime.is_zero(); }

  // Classify pure TCP ACKs as link-layer broadcasts (paper §3.3). Only
  // effective in kBroadcast mode.
  bool tcp_ack_as_broadcast = true;

  // Forward aggregation: combining multiple subframes travelling the same
  // direction. Disabling it (paper §6.4.4) limits each portion to a
  // single subframe, isolating the benefit of backward (data+ACK)
  // aggregation.
  bool forward_aggregation = true;

  // Delayed aggregation (paper §6.4.3): hold transmission until at least
  // this many subframes are queued. 0 disables. The paper does not
  // specify a safety valve; `delay_timeout` bounds the wait so a draining
  // flow cannot deadlock. It is kept shorter than a data frame's airtime
  // so a stalled hold costs less than one transmission.
  unsigned delay_min_subframes = 0;
  sim::Duration delay_timeout = sim::Duration::millis(10);

  // Extension (paper §7 future work): block ACK. The receiver accepts
  // correct unicast subframes individually and reports a bitmap; only
  // failed subframes are retransmitted.
  bool block_ack = false;

  bool aggregation_enabled() const { return mode != AggregationMode::kNone; }
  bool broadcast_aggregation() const {
    return mode == AggregationMode::kBroadcast;
  }

  static AggregationPolicy na() {
    AggregationPolicy p;
    p.mode = AggregationMode::kNone;
    p.tcp_ack_as_broadcast = false;
    return p;
  }
  static AggregationPolicy ua() {
    AggregationPolicy p;
    p.mode = AggregationMode::kUnicast;
    p.tcp_ack_as_broadcast = false;
    return p;
  }
  static AggregationPolicy ba() {
    AggregationPolicy p;
    p.mode = AggregationMode::kBroadcast;
    p.tcp_ack_as_broadcast = true;
    return p;
  }
  static AggregationPolicy dba(unsigned min_subframes = 3) {
    AggregationPolicy p = ba();
    p.delay_min_subframes = min_subframes;
    return p;
  }
};

}  // namespace hydra::core
