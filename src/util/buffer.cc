#include "util/buffer.h"

#include <array>

namespace hydra {

void BufferWriter::write_u16(std::uint16_t v) {
  write_u8(static_cast<std::uint8_t>(v & 0xff));
  write_u8(static_cast<std::uint8_t>(v >> 8));
}

void BufferWriter::write_u32(std::uint32_t v) {
  write_u16(static_cast<std::uint16_t>(v & 0xffff));
  write_u16(static_cast<std::uint16_t>(v >> 16));
}

void BufferWriter::write_u64(std::uint64_t v) {
  write_u32(static_cast<std::uint32_t>(v & 0xffffffff));
  write_u32(static_cast<std::uint32_t>(v >> 32));
}

void BufferWriter::write_bytes(std::span<const std::uint8_t> bytes) {
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

std::uint8_t BufferReader::read_u8() {
  HYDRA_ASSERT_MSG(can_read(1), "buffer underrun");
  return data_[pos_++];
}

std::uint16_t BufferReader::read_u16() {
  const auto lo = read_u8();
  const auto hi = read_u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t BufferReader::read_u32() {
  const std::uint32_t lo = read_u16();
  const std::uint32_t hi = read_u16();
  return lo | (hi << 16);
}

std::uint64_t BufferReader::read_u64() {
  const std::uint64_t lo = read_u32();
  const std::uint64_t hi = read_u32();
  return lo | (hi << 32);
}

Bytes BufferReader::read_bytes(std::size_t n) {
  HYDRA_ASSERT_MSG(can_read(n), "buffer underrun");
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void BufferReader::skip(std::size_t n) {
  HYDRA_ASSERT_MSG(can_read(n), "buffer underrun");
  pos_ += n;
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr std::array<char, 16> kDigits = {
      '0', '1', '2', '3', '4', '5', '6', '7',
      '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};
  std::string out;
  out.reserve(bytes.size() * 3);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(kDigits[bytes[i] >> 4]);
    out.push_back(kDigits[bytes[i] & 0xf]);
  }
  return out;
}

}  // namespace hydra
