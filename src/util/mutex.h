// Annotated locking primitives: std::mutex / std::condition_variable
// with the clang thread-safety capability attributes attached, so the
// HYDRA_THREAD_SAFETY build can prove at compile time that every
// GUARDED_BY member is only touched with its lock held. Drop-in for the
// std types (same fast paths — MutexLock compiles to exactly a
// lock_guard when the no-op branch of the annotations is active), which
// is why the concurrent core uses these everywhere instead of the std
// types directly.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace hydra::util {

// A std::mutex the analysis can see. Only the annotated members below
// may be used to lock it; the raw std::mutex stays private so no caller
// can bypass the capability tracking (CondVar is the one friend — it
// must adopt the mutex for std::condition_variable's wait protocol).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

// Scoped lock over Mutex, relockable mid-scope: the scheduler's window
// engine unlocks around callback execution and relocks to publish
// completion, and the analysis follows both transitions. The `held_`
// flag keeps the destructor correct after a manual unlock().
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mutex_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() RELEASE() {
    mutex_.unlock();
    held_ = false;
  }
  void lock() ACQUIRE() {
    mutex_.lock();
    held_ = true;
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

// Condition variable waiting on an annotated Mutex. Predicate loops are
// spelled out at the call site (`while (!cond) cv.wait(mutex);`) so the
// guarded reads in the condition sit in the annotated caller's scope —
// a predicate lambda would be analyzed as an unannotated function and
// produce false positives.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mutex` and sleeps; reacquired on return. The
  // caller must hold the lock (typically through a MutexLock), exactly
  // like std::condition_variable::wait.
  void wait(Mutex& mutex) REQUIRES(mutex) {
    // Adopt the already-held native mutex for the wait protocol, then
    // release the unique_lock's ownership claim so the MutexLock in the
    // caller's scope stays the single owner.
    std::unique_lock<std::mutex> native(mutex.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hydra::util
