#include "util/crc32.h"

#include <array>

namespace hydra {
namespace {

// Table for the reflected IEEE polynomial 0xEDB88320, built once.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data) {
  for (const auto byte : data) {
    state = kTable[(state ^ byte) & 0xff] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_finalize(crc32_update(kCrc32Init, data));
}

}  // namespace hydra
