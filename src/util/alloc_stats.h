// Process-wide heap-allocation accounting.
//
// Linking this TU (any caller of alloc_snapshot()) replaces the global
// operator new/delete family with counting wrappers over malloc/free:
// two relaxed atomic increments per allocation, nothing else. That
// makes "how many heap allocations did this run cost" a first-class,
// deterministic (in serial runs) metric that ExperimentResult and the
// bench baseline gate can track, the same way they track deliveries.
//
// Counters are global: deltas taken around a serial experiment are
// exact; around parallel sweeps they include whatever ran concurrently
// and are only indicative. Sanitizer builds keep working — ASan/TSan
// intercept the malloc/free these wrappers call.
#pragma once

#include <cstdint>

namespace hydra::util {

struct AllocSnapshot {
  std::uint64_t allocations = 0;  // operator new calls since process start
  std::uint64_t bytes = 0;        // bytes requested by those calls
};

// Current totals; subtract two snapshots to meter a region.
AllocSnapshot alloc_snapshot() noexcept;

// High-water-mark resident set size (VmHWM) in KiB; 0 where /proc is
// unavailable. A whole-process figure, not a per-region delta.
std::uint64_t peak_rss_kb() noexcept;

}  // namespace hydra::util
