#include "util/alloc_stats.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

namespace {

// Constant-initialized so counting is safe for allocations made during
// static initialization, before main.
constinit std::atomic<std::uint64_t> g_allocations{0};
constinit std::atomic<std::uint64_t> g_bytes{0};

inline void note(std::size_t bytes) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

inline void* counted_alloc(std::size_t size) noexcept {
  note(size);
  // malloc(0) may return nullptr; operator new must not.
  return std::malloc(size ? size : 1);
}

inline void* counted_aligned_alloc(std::size_t size,
                                   std::align_val_t al) noexcept {
  note(size);
  std::size_t alignment = static_cast<std::size_t>(al);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : 1) != 0) return nullptr;
  return p;
}

}  // namespace

namespace hydra::util {

AllocSnapshot alloc_snapshot() noexcept {
  return AllocSnapshot{
      .allocations = g_allocations.load(std::memory_order_relaxed),
      .bytes = g_bytes.load(std::memory_order_relaxed),
  };
}

std::uint64_t peak_rss_kb() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

}  // namespace hydra::util

// ---- global operator new/delete replacements --------------------------
// Defined here (same TU as alloc_snapshot) so any binary that meters
// allocations is guaranteed to link the counting allocator. All
// variants funnel into malloc/posix_memalign; free() releases both.

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t al) {
  void* p = counted_aligned_alloc(size, al);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t al) {
  void* p = counted_aligned_alloc(size, al);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, al);
}

void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, al);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
