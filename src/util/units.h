// Strong types for bit rates and byte counts used throughout the stack.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace hydra {

// A physical-layer data rate in bits per second. Strongly typed so a rate
// is never confused with a byte count or a duration.
class BitRate {
 public:
  constexpr BitRate() = default;
  constexpr explicit BitRate(std::uint64_t bits_per_second)
      : bps_(bits_per_second) {}

  static constexpr BitRate bps(std::uint64_t v) { return BitRate(v); }
  static constexpr BitRate kbps(std::uint64_t v) { return BitRate(v * 1000); }
  // Fractional Mbps appear throughout the paper (0.65, 1.3, ...); take
  // kilobits to stay exact: BitRate::mbps_x100(65) == 0.65 Mbps.
  static constexpr BitRate mbps_x100(std::uint64_t hundredths) {
    return BitRate(hundredths * 10'000);
  }

  constexpr std::uint64_t bits_per_second() const { return bps_; }
  constexpr double mbps() const { return static_cast<double>(bps_) / 1e6; }
  constexpr bool is_zero() const { return bps_ == 0; }

  friend constexpr auto operator<=>(BitRate, BitRate) = default;

 private:
  std::uint64_t bps_ = 0;
};

inline std::string to_string(BitRate r) {
  const double mbps = r.mbps();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f Mbps", mbps);
  return buf;
}

inline constexpr std::size_t kKiB = 1024;

}  // namespace hydra
