#include "util/task_pool.h"

#include <algorithm>

#include "util/assert.h"

namespace hydra::util {

namespace {

// The pool whose batch the current thread is executing (nullptr outside
// drain_batch). Both workers and the participating caller set it, so a
// body that re-enters parallel_for *on the same pool* is caught before
// it deadlocks waiting on workers that are all busy running the outer
// batch. Distinct pools may nest (the parallel scheduler's window
// workers drive the sharded medium's own pool), so the guard compares
// identity, not mere presence.
thread_local const TaskPool* tl_current_pool = nullptr;

}  // namespace

TaskPool::TaskPool(unsigned concurrency) {
  if (concurrency == 0) {
    concurrency = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(concurrency - 1);
  for (unsigned t = 1; t < concurrency; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void TaskPool::drain_batch() {
  const TaskPool* const prev = tl_current_pool;
  tl_current_pool = this;
  for (std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
       i < batch_count_;
       i = cursor_.fetch_add(1, std::memory_order_relaxed)) {
    (*batch_body_)(i);
  }
  tl_current_pool = prev;
}

void TaskPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && generation_ == seen) work_cv_.wait(mutex_);
      if (stopping_) return;
      seen = generation_;
    }
    drain_batch();
    {
      const MutexLock lock(mutex_);
      // The caller waits for every worker to pass through the batch —
      // even one that woke to an already-drained cursor — so the next
      // batch can never overlap this one.
      if (--busy_workers_ == 0) idle_cv_.notify_one();
    }
  }
}

void TaskPool::parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& body) {
  HYDRA_ASSERT(body != nullptr);
  if (workers_.empty() || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // A nested batch on the same pool would block forever: the outer
  // batch's workers are the threads the inner one would wait for.
  HYDRA_ASSERT_MSG(tl_current_pool != this,
                   "nested parallel_for on the same TaskPool");
  {
    const MutexLock lock(mutex_);
    HYDRA_ASSERT_MSG(batch_body_ == nullptr, "parallel_for re-entered");
    batch_count_ = count;
    batch_body_ = &body;
    cursor_.store(0, std::memory_order_relaxed);
    busy_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  drain_batch();
  const MutexLock lock(mutex_);
  while (busy_workers_ != 0) idle_cv_.wait(mutex_);
  batch_body_ = nullptr;
  batch_count_ = 0;
}

}  // namespace hydra::util
