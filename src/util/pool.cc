#include "util/pool.h"

#include <atomic>
#include <cstddef>

#include "util/assert.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hydra::util {
namespace {

// Block layout: [BlockHeader][payload...]. The header survives while
// the block sits on a free list (the list link reuses the payload
// bytes), so deallocate can always route a pointer home and a stale or
// double free trips the magic check instead of corrupting a list.
constexpr std::uint32_t kMagicLive = 0x48504f4cu;  // "HPOL": handed out
constexpr std::uint32_t kMagicFree = 0x46524545u;  // "FREE": on a list
constexpr std::uint32_t kMagicHeap = 0x48454150u;  // "HEAP": passthrough

constexpr std::size_t kMinClassBytes = 64;
constexpr std::size_t kNumClasses = 11;  // 64 B … 64 KiB, powers of two
constexpr std::size_t kSlabBytes = 64 * 1024;

constexpr std::size_t class_bytes(std::size_t cls) {
  return kMinClassBytes << cls;
}
static_assert(class_bytes(kNumClasses - 1) == BufferPool::kMaxBlockBytes);

class Shard;

struct BlockHeader {
  Shard* owner;              // nullptr for heap passthrough blocks
  std::uint32_t size_class;  // index into the class table
  std::uint32_t magic;
};
static_assert(sizeof(BlockHeader) == BufferPool::kAlignment);
static_assert(alignof(std::max_align_t) <= BufferPool::kAlignment);

// Smallest class whose block holds `need` bytes (header included).
std::size_t class_for(std::size_t need) {
  std::size_t cls = 0;
  while (class_bytes(cls) < need) ++cls;
  return cls;
}

// Free-list link, overlaid on the payload bytes of a returned block.
struct FreeBlock {
  FreeBlock* next;
};

FreeBlock* link_of(BlockHeader* h) {
  return reinterpret_cast<FreeBlock*>(h + 1);
}
BlockHeader* header_of(FreeBlock* link) {
  return reinterpret_cast<BlockHeader*>(link) - 1;
}

// One thread's free lists + slab cursor. Only the owning thread touches
// free_/cursor_/slabs_ (thread affinity is the synchronization — a
// shard changes hands only through the registry lock, which orders the
// old owner's release before the new owner's acquire). Counters are
// relaxed atomics so stats() may aggregate while workers run.
class alignas(64) Shard {
 public:
  // Owner thread only.
  void* allocate(std::size_t cls) {
    if (free_[cls] == nullptr) drain_remote();
    if (FreeBlock* link = free_[cls]) {
      free_[cls] = link->next;
      BlockHeader* h = header_of(link);
      HYDRA_ASSERT_MSG(h->magic == kMagicFree, "pool free-list corruption");
      h->magic = kMagicLive;
      recycled_.fetch_add(1, std::memory_order_relaxed);
      return h + 1;
    }
    auto* h = static_cast<BlockHeader*>(carve(class_bytes(cls)));
    h->owner = this;
    h->size_class = static_cast<std::uint32_t>(cls);
    h->magic = kMagicLive;
    fresh_.fetch_add(1, std::memory_order_relaxed);
    return h + 1;
  }

  // Owner thread only.
  void free_local(BlockHeader* h) {
    h->magic = kMagicFree;
    FreeBlock* link = link_of(h);
    link->next = free_[h->size_class];
    free_[h->size_class] = link;
  }

  // Any thread: lock-free MPSC push onto the owner's return stack.
  // Push-only here, drained whole by the owner — no ABA window.
  void free_remote(BlockHeader* h) {
    h->magic = kMagicFree;
    FreeBlock* link = link_of(h);
    FreeBlock* head = remote_.load(std::memory_order_relaxed);
    do {
      link->next = head;
    } while (!remote_.compare_exchange_weak(head, link,
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
  }

  void count_request() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void count_heap() { heap_.fetch_add(1, std::memory_order_relaxed); }

  void add_stats(PoolStats& out) const {
    out.requests += requests_.load(std::memory_order_relaxed);
    out.recycled += recycled_.load(std::memory_order_relaxed);
    out.fresh += fresh_.load(std::memory_order_relaxed);
    out.heap += heap_.load(std::memory_order_relaxed);
    out.slab_bytes += slab_bytes_.load(std::memory_order_relaxed);
  }

 private:
  // Sort the remote stack's blocks back onto the local free lists.
  void drain_remote() {
    if (remote_.load(std::memory_order_relaxed) == nullptr) return;
    FreeBlock* link = remote_.exchange(nullptr, std::memory_order_acquire);
    while (link != nullptr) {
      FreeBlock* next = link->next;
      BlockHeader* h = header_of(link);
      link->next = free_[h->size_class];
      free_[h->size_class] = link;
      link = next;
    }
  }

  void* carve(std::size_t bytes) {
    if (bytes > kSlabBytes / 4) {
      // Big classes get a dedicated slab; sharing the bump region with
      // them would strand most of a slab on every crossing.
      void* raw = ::operator new(bytes);
      slabs_.push_back(raw);
      slab_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      return raw;
    }
    if (slab_remaining_ < bytes) {
      void* raw = ::operator new(kSlabBytes);
      slabs_.push_back(raw);
      slab_bytes_.fetch_add(kSlabBytes, std::memory_order_relaxed);
      cursor_ = static_cast<std::byte*>(raw);
      slab_remaining_ = kSlabBytes;
    }
    void* out = cursor_;
    cursor_ += bytes;
    slab_remaining_ -= bytes;
    return out;
  }

  FreeBlock* free_[kNumClasses] = {};
  std::byte* cursor_ = nullptr;
  std::size_t slab_remaining_ = 0;
  // Slab base pointers: slabs live for the process (blocks inside them
  // may be in flight on any thread), and staying reachable from the
  // registry keeps leak checkers quiet about the intentional cache.
  std::vector<void*> slabs_;

  std::atomic<FreeBlock*> remote_{nullptr};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> fresh_{0};
  std::atomic<std::uint64_t> heap_{0};
  std::atomic<std::uint64_t> slab_bytes_{0};
};

// Process-lifetime shard registry. Deliberately leaked: blocks hold
// raw owner pointers, and a block may outlive the thread (even the
// static destruction of the thread) that allocated it.
struct Registry {
  Mutex mu;
  std::vector<Shard*> shards GUARDED_BY(mu);  // every shard ever made
  std::vector<Shard*> idle GUARDED_BY(mu);    // released by dead threads
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked by design, see above
  return *r;
}

std::atomic<bool> g_enabled{true};
std::atomic<std::uint64_t> g_remote_returns{0};

Shard* acquire_shard() {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  if (!reg.idle.empty()) {
    Shard* s = reg.idle.back();
    reg.idle.pop_back();
    return s;
  }
  Shard* s = new Shard;  // leaked via the registry, never destroyed
  reg.shards.push_back(s);
  return s;
}

void release_shard(Shard* s) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  reg.idle.push_back(s);
}

// Thread-affine shard handle. The destructor parks the shard for the
// next new thread and nulls the cached pointer, so a late free from a
// static destructor safely takes the remote-return path.
struct ShardLease {
  Shard* shard = nullptr;
  ~ShardLease() {
    if (shard != nullptr) release_shard(shard);
    shard = nullptr;
  }
};

thread_local ShardLease tl_lease;

Shard& local_shard() {
  if (tl_lease.shard == nullptr) tl_lease.shard = acquire_shard();
  return *tl_lease.shard;
}

}  // namespace

void* BufferPool::allocate(std::size_t bytes) {
  Shard& shard = local_shard();
  shard.count_request();
  const std::size_t need = bytes + sizeof(BlockHeader);
  if (need <= kMaxBlockBytes && g_enabled.load(std::memory_order_relaxed)) {
    return shard.allocate(class_for(need));
  }
  shard.count_heap();
  auto* h = static_cast<BlockHeader*>(::operator new(need));
  h->owner = nullptr;
  h->size_class = 0;
  h->magic = kMagicHeap;
  return h + 1;
}

void BufferPool::deallocate(void* payload) noexcept {
  if (payload == nullptr) return;
  auto* h = static_cast<BlockHeader*>(payload) - 1;
  if (h->owner == nullptr) {
    HYDRA_ASSERT_MSG(h->magic == kMagicHeap,
                     "BufferPool::deallocate on a foreign or freed pointer");
    ::operator delete(h);
    return;
  }
  HYDRA_ASSERT_MSG(h->magic == kMagicLive,
                   "BufferPool::deallocate double free or corruption");
  if (h->owner == tl_lease.shard) {
    h->owner->free_local(h);
  } else {
    g_remote_returns.fetch_add(1, std::memory_order_relaxed);
    h->owner->free_remote(h);
  }
}

void BufferPool::set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool BufferPool::enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

PoolStats BufferPool::stats() {
  PoolStats out;
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  for (const Shard* s : reg.shards) s->add_stats(out);
  out.remote_returns = g_remote_returns.load(std::memory_order_relaxed);
  out.shards = reg.shards.size();
  return out;
}

}  // namespace hydra::util
