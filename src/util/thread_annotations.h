// Clang thread-safety-analysis attribute macros.
//
// Under clang with -Wthread-safety (the HYDRA_THREAD_SAFETY CMake
// option turns it on, with -Werror, in CI) these expand to the
// capability attributes that let the compiler prove lock discipline at
// build time: which members a mutex guards, which functions require or
// acquire it, and which locks must never be held together. Under GCC —
// the default local toolchain — every macro expands to nothing, so the
// annotations cost exactly zero outside the analysis build.
//
// The vocabulary follows the clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html): a CAPABILITY
// is a resource (a mutex, or something more abstract like the
// scheduler's canonical shared turn) that threads acquire and release;
// GUARDED_BY ties data to the capability that must be held to touch it.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define HYDRA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HYDRA_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Types that act as lockable resources.
#define CAPABILITY(x) HYDRA_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY HYDRA_THREAD_ANNOTATION(scoped_lockable)

// Data members: touching them requires holding the named capability
// (exclusively for writes, at least shared for reads).
#define GUARDED_BY(x) HYDRA_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) HYDRA_THREAD_ANNOTATION(pt_guarded_by(x))

// Function contracts: the caller must hold / must not hold the
// capability on entry.
#define REQUIRES(...) \
  HYDRA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HYDRA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) HYDRA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that change what the caller holds.
#define ACQUIRE(...) \
  HYDRA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HYDRA_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  HYDRA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HYDRA_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  HYDRA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Declares that the function somehow ensures the capability is held on
// return without a matching release (the scheduler's idempotent
// acquire_shared_turn, which is implicitly released when the calling
// event completes, is the canonical user).
#define ASSERT_CAPABILITY(x) HYDRA_THREAD_ANNOTATION(assert_capability(x))

// Returns a reference to the capability guarding the returned data.
#define RETURN_CAPABILITY(x) HYDRA_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions whose locking the analysis cannot follow
// (e.g. publication via a generation handshake instead of a held lock).
// Every use carries a comment explaining why the discipline holds.
#define NO_THREAD_SAFETY_ANALYSIS \
  HYDRA_THREAD_ANNOTATION(no_thread_safety_analysis)
