// Byte buffer with little-endian primitive encode/decode.
//
// 802.11 wire formats are little-endian; all MAC frames and the aggregate
// layout are serialized through these helpers so tests can exercise real
// byte-level round-trips and corruption.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/assert.h"

namespace hydra {

using Bytes = std::vector<std::uint8_t>;

// Append-only writer over an owned byte vector.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(std::size_t reserve) { data_.reserve(reserve); }

  void write_u8(std::uint8_t v) { data_.push_back(v); }
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_bytes(std::span<const std::uint8_t> bytes);
  // Appends `n` zero bytes (padding / synthetic payload).
  void write_zeros(std::size_t n) { data_.insert(data_.end(), n, 0); }

  std::size_t size() const { return data_.size(); }
  std::span<const std::uint8_t> view() const { return data_; }
  Bytes take() { return std::move(data_); }

 private:
  Bytes data_;
};

// Sequential reader over a borrowed byte span. The caller keeps the
// underlying storage alive for the reader's lifetime.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  // Reads `n` bytes into a fresh vector.
  Bytes read_bytes(std::size_t n);
  void skip(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool exhausted() const { return remaining() == 0; }

  // True if at least `n` bytes remain; parse code uses this to fail
  // gracefully on truncated frames instead of asserting.
  bool can_read(std::size_t n) const { return remaining() >= n; }

  // Borrowed view of `len` bytes starting at absolute position `pos`;
  // does not move the cursor. Used by parsers to recompute checksums over
  // already-consumed regions.
  std::span<const std::uint8_t> slice(std::size_t pos, std::size_t len) const {
    HYDRA_ASSERT(pos + len <= data_.size());
    return data_.subspan(pos, len);
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Hex dump of a byte span, for diagnostics ("0a 1b ...").
std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace hydra
