// Persistent worker pool for data-parallel fan-out: spawn the threads
// once, then run indexed batches across them as often as needed. The
// sharded delivery backend re-runs its stripe computation on every
// topology rebuild, and the sweep driver runs one batch per grid — both
// want the thread spawn cost paid once, not per batch.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hydra::util {

// A fixed set of worker threads executing one indexed batch at a time.
// The calling thread participates in every batch, so a pool of
// concurrency 1 spawns no threads at all and parallel_for degenerates
// to a plain serial loop — callers never need a separate code path for
// "threading disabled".
class TaskPool {
 public:
  // Total concurrency, calling thread included: a pool of concurrency c
  // spawns c − 1 workers. 0 resolves to the hardware concurrency (at
  // least 1).
  explicit TaskPool(unsigned concurrency = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  unsigned concurrency() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  // Runs body(0) .. body(count − 1), each exactly once, spread across
  // the pool by dynamic work stealing over a shared cursor; returns
  // once every call has finished (all worker writes are visible to the
  // caller afterwards). `body` must not throw and must not re-enter the
  // pool — one batch runs at a time.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  // Claims and runs batch indices until the cursor runs out. Reads the
  // batch fields without holding mutex_: the generation handshake (the
  // caller writes them under the lock before bumping generation_, the
  // worker re-reads them only after observing the bump under the same
  // lock) publishes them, which the analysis cannot follow.
  void drain_batch() NO_THREAD_SAFETY_ANALYSIS;

  Mutex mutex_;
  CondVar work_cv_;  // workers wait here for a batch
  CondVar idle_cv_;  // the caller waits here for workers
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;  // bumped per batch
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::size_t busy_workers_ GUARDED_BY(mutex_) = 0;
  // The current batch. Written under mutex_ before workers wake, read
  // by them after observing the generation bump under the same mutex
  // (see drain_batch for why the analysis gets an escape there).
  std::size_t batch_count_ GUARDED_BY(mutex_) = 0;
  const std::function<void(std::size_t)>* batch_body_
      GUARDED_BY(mutex_) = nullptr;
  std::atomic<std::size_t> cursor_{0};
  std::vector<std::thread> workers_;
};

}  // namespace hydra::util
