// Move-only type-erased `void()` callable for the scheduler hot path.
//
// std::function costs a heap allocation for any capture over ~16 bytes
// (libstdc++), and the medium's per-delivery rx callbacks capture 32.
// SmallFn stores captures up to 48 bytes inline — enough for every
// callback the simulator schedules today — and boxes larger ones
// through the BufferPool, so steady-state event scheduling allocates
// nothing from the system heap. Move-only (no copy), matching how the
// scheduler actually handles callbacks: constructed once, moved through
// the heap/window engine, invoked, destroyed.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.h"
#include "util/pool.h"

namespace hydra::util {

class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(runtime/explicit): drop-in for std::function
    emplace<std::decay_t<F>>(std::forward<F>(fn));
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() {
    HYDRA_ASSERT_MSG(ops_ != nullptr, "invoking an empty SmallFn");
    ops_->invoke(storage());
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  friend bool operator==(const SmallFn& f, std::nullptr_t) noexcept {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const SmallFn& f, std::nullptr_t) noexcept {
    return f.ops_ != nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-construct into dst's storage from src's, then destroy src's.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  // Inline iff it fits, is sufficiently aligned, and relocates without
  // throwing (the move constructor must be noexcept for SmallFn's own
  // noexcept moves); everything else is boxed through the BufferPool.
  template <class F>
  static constexpr bool kInline =
      sizeof(F) <= kInlineBytes && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <class F>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*static_cast<F*>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) F(std::move(*static_cast<F*>(src)));
        static_cast<F*>(src)->~F();
      },
      [](void* s) noexcept { static_cast<F*>(s)->~F(); },
  };

  template <class F>
  static constexpr Ops kBoxedOps = {
      [](void* s) { (**static_cast<F**>(s))(); },
      [](void* dst, void* src) noexcept {
        *static_cast<F**>(dst) = *static_cast<F**>(src);
      },
      [](void* s) noexcept {
        F* boxed = *static_cast<F**>(s);
        boxed->~F();
        BufferPool::deallocate(boxed);
      },
  };

  template <class F, class Arg>
  void emplace(Arg&& fn) {
    if constexpr (kInline<F>) {
      ::new (storage()) F(std::forward<Arg>(fn));
      ops_ = &kInlineOps<F>;
    } else {
      static_assert(alignof(F) <= BufferPool::kAlignment,
                    "over-aligned callables are not supported");
      void* box = BufferPool::allocate(sizeof(F));
      ::new (box) F(std::forward<Arg>(fn));
      *static_cast<void**>(storage()) = box;
      ops_ = &kBoxedOps<F>;
    }
  }

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage(), other.storage());
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage());
      ops_ = nullptr;
    }
  }

  void* storage() noexcept { return buf_; }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace hydra::util
