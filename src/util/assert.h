// Lightweight always-on assertion macros.
//
// Simulation correctness depends on internal invariants (queue discipline,
// state-machine transitions, wire-format bounds). These are cheap relative
// to event processing, so they stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hydra::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "hydra: assertion failed: %s (%s:%d)%s%s\n", expr,
               file, line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace hydra::detail

// Assert that `expr` holds; aborts with a diagnostic otherwise.
#define HYDRA_ASSERT(expr)                                               \
  do {                                                                   \
    if (!(expr))                                                         \
      ::hydra::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);  \
  } while (0)

// Assert with an explanatory message.
#define HYDRA_ASSERT_MSG(expr, msg)                                  \
  do {                                                               \
    if (!(expr))                                                     \
      ::hydra::detail::assert_fail(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

// Marks a code path that must never execute.
#define HYDRA_UNREACHABLE(msg) \
  ::hydra::detail::assert_fail("unreachable", __FILE__, __LINE__, msg)
