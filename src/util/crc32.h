// CRC-32 (IEEE 802.3 polynomial, reflected) — the FCS used by 802.11.
#pragma once

#include <cstdint>
#include <span>

namespace hydra {

// Computes the CRC-32 of `data` (init 0xffffffff, final xor 0xffffffff),
// i.e. the value carried in an 802.11 frame check sequence field.
std::uint32_t crc32(std::span<const std::uint8_t> data);

// Incremental variant: feed `data` into a running CRC state. Start with
// `kCrc32Init`, finish with `crc32_finalize`.
inline constexpr std::uint32_t kCrc32Init = 0xffffffffu;
std::uint32_t crc32_update(std::uint32_t state,
                           std::span<const std::uint8_t> data);
inline std::uint32_t crc32_finalize(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

}  // namespace hydra
