// Recycling memory subsystem for the simulation hot path.
//
// `BufferPool` is a size-classed free-list allocator with thread-affine
// shards: every thread that allocates gets its own shard (a set of
// per-class singly-linked free lists fed by 64 KiB slabs), so the fast
// path — pop a recycled block, or bump-carve a fresh one — takes no
// lock and touches no shared cache line. Blocks remember their owning
// shard in a 16-byte header; freeing from the owning thread pushes onto
// the local free list, freeing from any other thread pushes onto the
// owner's lock-free MPSC return stack, which the owner drains the next
// time it allocates. This composes with the sharded medium and the
// parallel-window scheduler: TaskPool workers recycle among themselves
// without ever contending with the main thread.
//
// Shards live in a process-lifetime registry (guarded by an annotated
// util::Mutex — the one lock, taken only on thread birth/death and in
// stats()); a thread that exits returns its shard to an idle list for
// the next new thread, so a block's owner pointer can never dangle.
//
// Pooling can be toggled off at runtime (`set_pooling_enabled(false)`)
// for heap-vs-pool ablations; the block header records where each
// block actually came from, so toggling between an allocation and its
// matching free is always safe. Determinism contract: the pool hands
// out storage only — event order, RNG streams and trace digests are
// bit-identical pooled or not, which tests/pool_determinism_test.cc
// pins across every delivery backend and execution policy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace hydra::util {

// Counters aggregated over every shard. Within one thread the counts
// are exact and deterministic for a deterministic allocation sequence
// (the serial-mode ablation bench gates on them); across threads the
// per-shard counters are relaxed atomics, so a snapshot taken while
// workers run is approximate but race-free.
struct PoolStats {
  std::uint64_t requests = 0;        // calls routed through the pool API
  std::uint64_t recycled = 0;        // served by reusing a returned block
  std::uint64_t fresh = 0;           // bump-carved from a slab
  std::uint64_t heap = 0;            // passthrough (pooling off / oversize)
  std::uint64_t remote_returns = 0;  // frees from a non-owning thread
  std::uint64_t slab_bytes = 0;      // slab capacity reserved so far
  std::uint64_t shards = 0;          // shards ever created
};

class BufferPool {
 public:
  // Payloads whose block (payload + header) exceeds the largest size
  // class fall through to the heap regardless of the enabled flag.
  static constexpr std::size_t kMaxBlockBytes = 64 * 1024;
  // Returned payloads are aligned to this (block headers are 16 bytes
  // and size classes are powers of two ≥ 64).
  static constexpr std::size_t kAlignment = 16;

  // Returns storage for `bytes` payload bytes, recycled when possible.
  // Never returns nullptr (throws std::bad_alloc like operator new).
  static void* allocate(std::size_t bytes);
  // Returns a block to its owning shard (or the heap). Accepts only
  // pointers obtained from allocate(); nullptr is a no-op.
  static void deallocate(void* payload) noexcept;

  static void set_enabled(bool on) noexcept;
  static bool enabled() noexcept;

  static PoolStats stats();
};

// Runtime ablation toggle (bench/tests): when off, every allocate() is
// a heap passthrough, so "pooled vs heap" runs differ only in storage
// origin. Affects allocations made after the call; outstanding blocks
// free correctly either way.
inline void set_pooling_enabled(bool on) noexcept {
  BufferPool::set_enabled(on);
}
inline bool pooling_enabled() noexcept { return BufferPool::enabled(); }

// Minimal allocator over the global BufferPool, for containers and
// std::allocate_shared on the hot path. Stateless: all instances are
// interchangeable, so moves/swaps of pooled containers never copy.
template <class T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <class U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    if constexpr (alignof(T) > BufferPool::kAlignment) {
      // Over-aligned types skip the pool (no size class guarantees
      // their alignment); none sit on the hot path.
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{alignof(T)}));
    } else {
      return static_cast<T*>(BufferPool::allocate(n * sizeof(T)));
    }
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if constexpr (alignof(T) > BufferPool::kAlignment) {
      ::operator delete(p, n * sizeof(T), std::align_val_t{alignof(T)});
    } else {
      BufferPool::deallocate(p);
    }
  }
};

template <class A, class B>
constexpr bool operator==(const PoolAllocator<A>&,
                          const PoolAllocator<B>&) noexcept {
  return true;
}
template <class A, class B>
constexpr bool operator!=(const PoolAllocator<A>&,
                          const PoolAllocator<B>&) noexcept {
  return false;
}

// A std::vector whose storage recycles through the BufferPool.
template <class T>
using PooledVector = std::vector<T, PoolAllocator<T>>;

// Typed facade over the BufferPool for shared simulation objects
// (packets, PDUs, transmissions): one allocation holds the control
// block and the object, and both recycle through the owning shard when
// the last reference drops — on whichever thread that happens.
template <class T>
class ArenaPool {
 public:
  template <class... Args>
  static std::shared_ptr<T> make(Args&&... args) {
    return std::allocate_shared<T>(PoolAllocator<T>{},
                                   std::forward<Args>(args)...);
  }
};

// Convenience spelling: make_pooled<T>(...) ≡ ArenaPool<T>::make(...).
template <class T, class... Args>
std::shared_ptr<T> make_pooled(Args&&... args) {
  return ArenaPool<T>::make(std::forward<Args>(args)...);
}

}  // namespace hydra::util
