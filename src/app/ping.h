// UDP echo (ping): round-trip-time measurement through the stack.
//
// Aggregation trades per-frame overhead for queueing/holding delay; the
// latency extension bench uses this app to quantify the cost (delayed
// aggregation in particular holds frames back on purpose).
//
// One probe is outstanding at a time; a reply or a timeout releases the
// next one. RTTs are accumulated as min / mean / max.
#pragma once

#include <cstdint>

#include "net/node.h"
#include "sim/timer.h"
#include "transport/udp.h"

namespace hydra::app {

// Echoes every datagram back to its sender.
class PingResponderApp {
 public:
  PingResponderApp(net::Node& node, proto::Port port);

  std::uint64_t echoed() const { return echoed_; }

 private:
  transport::UdpSocket& socket_;
  std::uint64_t echoed_ = 0;
};

struct PingConfig {
  proto::Endpoint destination;
  std::uint32_t payload_bytes = 56;
  sim::Duration interval = sim::Duration::millis(200);
  sim::Duration timeout = sim::Duration::seconds(2);
  std::uint64_t count = 0;  // 0 = unlimited
};

class PingApp {
 public:
  PingApp(sim::Simulation& simulation, net::Node& node, PingConfig config,
          proto::Port local_port = 9100);

  void start();

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  std::uint64_t timed_out() const { return timeouts_; }
  double loss_fraction() const {
    return sent_ == 0 ? 0.0
                      : 1.0 - static_cast<double>(received_) /
                                  static_cast<double>(sent_);
  }
  sim::Duration min_rtt() const { return min_rtt_; }
  sim::Duration max_rtt() const { return max_rtt_; }
  sim::Duration avg_rtt() const {
    return received_ == 0
               ? sim::Duration::zero()
               : sim::Duration::nanos(total_rtt_ns_ /
                                      static_cast<std::int64_t>(received_));
  }

 private:
  void send_probe();
  void on_reply();
  void on_timeout();

  sim::Simulation& sim_;
  PingConfig config_;
  transport::UdpSocket& socket_;
  sim::Timer interval_timer_;
  sim::Timer timeout_timer_;

  bool awaiting_reply_ = false;
  sim::TimePoint probe_sent_at_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t timeouts_ = 0;
  std::int64_t total_rtt_ns_ = 0;
  sim::Duration min_rtt_ = sim::Duration::infinite();
  sim::Duration max_rtt_ = sim::Duration::zero();
};

}  // namespace hydra::app
