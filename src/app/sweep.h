// Parameter-sweep driver: the cartesian product of scenario specs,
// aggregation policies, rate-adaptation schemes and medium delivery
// policies, each point run through app::run_experiment. Every simulation
// is self-contained (its own Simulation, Medium and RNG; no mutable
// globals as long as sim::Log stays quiet), so points execute in
// parallel across a thread pool and results come back in deterministic
// grid order regardless of scheduling.
//
// A SweepCache memoizes results across sweep calls keyed on the axis
// coordinates plus the seed, so figure-regeneration drivers that sweep
// overlapping grids skip every point they have already simulated.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "app/experiment.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace hydra::app {

// One axis combination, fully resolved into a runnable config.
struct SweepPoint {
  std::string scenario_label;
  std::string policy_label;
  mac::RateAdaptationScheme rate_adaptation = mac::RateAdaptationScheme::kNone;
  // Label of the medium-policy axis entry ("" for the default axis, so
  // single-policy sweeps keep their historical labels).
  std::string medium_label;
  // Label of the scheduler-policy axis entry (same convention).
  std::string scheduler_label;
  // Label of the transport-scheme axis entry (same convention; "" for
  // the default axis, whose points run the base config's tuning).
  std::string transport_label;
  topo::ExperimentConfig config;
};

struct SweepOutcome {
  SweepPoint point;
  topo::ExperimentResult result;
  // Wall-clock cost of this point's simulation (scaling benches chart
  // it against topology size). ~0 when served from a SweepCache.
  double wall_seconds = 0.0;
  bool from_cache = false;
};

// The sweep axes. `base` supplies the workload (traffic kind, file
// sizes, seed, time cap); each point overwrites base.scenario with the
// axis spec, then the spec's policy, rate adaptation and medium policy
// with the other axes.
struct SweepGrid {
  std::vector<std::pair<std::string, topo::ScenarioSpec>> scenarios;
  std::vector<std::pair<std::string, core::AggregationPolicy>> policies = {
      {"ba", core::AggregationPolicy::ba()}};
  std::vector<mac::RateAdaptationScheme> rate_adaptations = {
      mac::RateAdaptationScheme::kNone};
  // Medium delivery axis. kAuto entries never overwrite the spec: the
  // default single-entry axis leaves each spec's own MediumTuning in
  // charge (a pinned policy stays pinned); kFullMesh/kCulled entries
  // force that policy onto every spec of the grid.
  std::vector<std::pair<std::string, topo::MediumPolicy>> mediums = {
      {"", topo::MediumPolicy::kAuto}};
  // Scheduler execution axis, same kAuto convention: the default entry
  // leaves each spec's own SchedulerTuning in charge; kSerial or
  // kParallelWindows entries force that policy onto every point (the
  // parallel determinism suites sweep this axis to pin digest equality).
  std::vector<std::pair<std::string, topo::SchedulerPolicy>> schedulers = {
      {"", topo::SchedulerPolicy::kAuto}};
  // Transport-scheme axis (congestion control × ACK policy), innermost.
  // The same deferral convention as mediums/schedulers: a nullopt entry
  // leaves base.tcp.tuning in charge; a concrete TransportTuning
  // overwrites it on every point. Empty labels resolve to the tuning's
  // own to_string ("newreno+ack-imm") so ablation tables stay readable.
  std::vector<std::pair<std::string, std::optional<transport::TransportTuning>>>
      transports = {{"", std::nullopt}};
  topo::ExperimentConfig base;
};

// Memoizes experiment results across sweep invocations, keyed on
// (scenario label, aggregation policy label, rate-adaptation scheme,
// medium policy, seed) plus fingerprints of the resolved scenario spec
// and the workload base config, so same-label points describing
// different worlds or workloads never alias — one cache can safely
// serve every sweep in a process. Thread-safe; sweep workers consult it
// concurrently.
//
// Optionally backed by a directory of persisted results (set_disk_dir):
// find() falls back to disk on a memory miss and store() writes
// through, so figure-regeneration drivers re-run across processes skip
// every point an earlier run already simulated. Files are named by the
// CRC-32 of the key; the full key is stored inside each file and
// verified on load, so a fingerprint collision degrades to a miss,
// never to an aliased result.
class SweepCache {
 public:
  static std::string key_of(const SweepPoint& point);

  // nullptr on miss. Results are shared immutably, so the critical
  // section stays O(1) — callers copy outside the lock if they need to.
  std::shared_ptr<const topo::ExperimentResult> find(
      const std::string& key) const;
  void store(const std::string& key, const topo::ExperimentResult& result);

  // Attaches a persistence directory (created if missing; "" detaches).
  void set_disk_dir(std::string dir);
  // Attaches the directory named by $HYDRA_SWEEP_CACHE_DIR if set; the
  // bench driver points it under the build tree, keyed on a hash of the
  // source tree so stale results never survive a code change. No-op
  // when the variable is absent.
  void attach_env_disk_dir();

  std::size_t size() const;
  std::uint64_t hits() const;        // served from memory
  std::uint64_t disk_hits() const;   // served from the disk directory
  std::uint64_t disk_stores() const; // results persisted to it
  std::uint64_t misses() const;      // simulated from scratch

 private:
  mutable util::Mutex mutex_;
  // std::map, not unordered: sweep tooling may iterate the cache (e.g.
  // to dump keys) and the determinism lint bans hash-order walks.
  // mutable: the (const) find path promotes disk hits into memory.
  mutable std::map<std::string, std::shared_ptr<const topo::ExperimentResult>>
      results_ GUARDED_BY(mutex_);
  std::string disk_dir_ GUARDED_BY(mutex_);
  // Mutated by the (const) find path; lookups are logically read-only.
  mutable std::uint64_t hits_ GUARDED_BY(mutex_) = 0;
  mutable std::uint64_t disk_hits_ GUARDED_BY(mutex_) = 0;
  mutable std::uint64_t misses_ GUARDED_BY(mutex_) = 0;
  std::uint64_t disk_stores_ GUARDED_BY(mutex_) = 0;
  // Serializes tmp-file writes so two workers storing the same key
  // never interleave bytes; held after (never with) mutex_.
  util::Mutex disk_write_mutex_;
};

// Text round-trip of an ExperimentResult, the on-disk format of the
// persistent SweepCache (exposed for its tests). serialize is exact:
// doubles print with 17 significant digits, durations as nanoseconds.
std::string serialize_result(const topo::ExperimentResult& result);
bool deserialize_result(const std::string& text, topo::ExperimentResult* out);

// Expands the grid scenario-major (policies, rate adaptations, then
// medium policies innermost) without running anything.
std::vector<SweepPoint> expand_sweep(const SweepGrid& grid);

// Runs every point of the grid, `threads` simulations at a time
// (0 = hardware concurrency). Outcomes are indexed like expand_sweep.
// With `cache`, previously simulated points are served from it and new
// results are stored back.
std::vector<SweepOutcome> sweep_experiments(const SweepGrid& grid,
                                            unsigned threads = 0,
                                            SweepCache* cache = nullptr);

}  // namespace hydra::app
