// Parameter-sweep driver: the cartesian product of scenario specs,
// aggregation policies and rate-adaptation schemes, each point run
// through app::run_experiment. Every simulation is self-contained (its
// own Simulation, Medium and RNG; no mutable globals as long as
// sim::Log stays quiet), so points execute in parallel across a thread
// pool and results come back in deterministic grid order regardless of
// scheduling.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "app/experiment.h"

namespace hydra::app {

// One axis combination, fully resolved into a runnable config.
struct SweepPoint {
  std::string scenario_label;
  std::string policy_label;
  mac::RateAdaptationScheme rate_adaptation = mac::RateAdaptationScheme::kNone;
  topo::ExperimentConfig config;
};

struct SweepOutcome {
  SweepPoint point;
  topo::ExperimentResult result;
  // Wall-clock cost of this point's simulation (scaling benches chart
  // it against topology size).
  double wall_seconds = 0.0;
};

// The sweep axes. `base` supplies the workload (traffic kind, file
// sizes, seed, time cap); each point overwrites base.scenario with the
// axis spec, then the spec's policy and rate adaptation with the other
// two axes.
struct SweepGrid {
  std::vector<std::pair<std::string, topo::ScenarioSpec>> scenarios;
  std::vector<std::pair<std::string, core::AggregationPolicy>> policies = {
      {"ba", core::AggregationPolicy::ba()}};
  std::vector<mac::RateAdaptationScheme> rate_adaptations = {
      mac::RateAdaptationScheme::kNone};
  topo::ExperimentConfig base;
};

// Expands the grid scenario-major (policies, then rate adaptations
// innermost) without running anything.
std::vector<SweepPoint> expand_sweep(const SweepGrid& grid);

// Runs every point of the grid, `threads` simulations at a time
// (0 = hardware concurrency). Outcomes are indexed like expand_sweep.
std::vector<SweepOutcome> sweep_experiments(const SweepGrid& grid,
                                            unsigned threads = 0);

}  // namespace hydra::app
