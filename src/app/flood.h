// Broadcast flooding generator: stands in for the route-discovery /
// maintenance traffic of protocols like DSR and AODV (paper §3.2, §6.3:
// "each node generated broadcast frames at a fixed rate").
#pragma once

#include <cstdint>

#include "net/node.h"
#include "sim/timer.h"

namespace hydra::app {

struct FloodConfig {
  // Payload sized so the flood MAC frame is the 160 B minimum subframe —
  // typical of small route-control packets.
  std::uint32_t payload_bytes = 40;
  sim::Duration interval = sim::Duration::seconds(1);
  // First emission offset (staggering nodes avoids synchronized floods).
  sim::Duration initial_offset = sim::Duration::zero();
  sim::TimePoint stop = sim::TimePoint::at(sim::Duration::seconds(3600));
};

class FloodApp {
 public:
  FloodApp(sim::Simulation& simulation, net::Node& node, FloodConfig config);

  void start();

  std::uint64_t packets_sent() const { return sent_; }

 private:
  void tick();

  sim::Simulation& sim_;
  net::Node& node_;
  FloodConfig config_;
  sim::Timer timer_;
  std::uint64_t sent_ = 0;
};

}  // namespace hydra::app
