#include "app/file_transfer.h"

#include "transport/host.h"

namespace hydra::app {

FileSenderApp::FileSenderApp(sim::Simulation& simulation, net::Node& node,
                             proto::Endpoint destination,
                             std::uint64_t file_bytes,
                             transport::TcpConfig tcp)
    : sim_(simulation),
      node_(node),
      destination_(destination),
      file_bytes_(file_bytes),
      tcp_config_(tcp),
      start_timer_(simulation.scheduler(), [this] { begin(); }) {
  start_timer_.set_affinity(node.phy().id());
}

void FileSenderApp::start(sim::TimePoint at) {
  const auto now = sim_.now();
  start_timer_.arm(at > now ? at - now : sim::Duration::zero());
}

void FileSenderApp::begin() {
  started_at_ = sim_.now();
  connection_ = &transport::mux_of(node_).tcp_connect(destination_, tcp_config_);
  connection_->on_send_complete = [this] {
    send_complete_ = true;
    completed_at_ = sim_.now();
  };
  connection_->send(file_bytes_);
  connection_->close();  // FIN follows the last data byte
}

FileReceiverApp::FileReceiverApp(sim::Simulation& simulation, net::Node& node,
                                 proto::Port port, std::uint64_t expected_bytes,
                                 transport::TcpConfig tcp)
    : sim_(simulation), expected_bytes_(expected_bytes) {
  transport::mux_of(node).tcp_listen(
      port, tcp, [this](transport::TcpConnection& conn) {
        const auto index = flows_.size();
        flows_.emplace_back();
        connections_.push_back(&conn);
        conn.on_data = [this, index](std::uint64_t bytes) {
          auto& flow = flows_[index];
          if (flow.received == 0) flow.first_byte = sim_.now();
          flow.received += bytes;
          if (!flow.complete && flow.received >= expected_bytes_) {
            flow.complete = true;
            flow.completed_at = sim_.now();
          }
        };
      });
}

std::uint64_t FileReceiverApp::total_received() const {
  std::uint64_t total = 0;
  for (const auto& flow : flows_) total += flow.received;
  return total;
}

bool FileReceiverApp::all_complete(std::size_t expected_flows) const {
  if (flows_.size() < expected_flows) return false;
  for (const auto& flow : flows_) {
    if (!flow.complete) return false;
  }
  return true;
}

}  // namespace hydra::app
