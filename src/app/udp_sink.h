// UDP sink: counts received datagrams and computes goodput.
#pragma once

#include <cstdint>

#include "net/node.h"

namespace hydra::app {

class UdpSinkApp {
 public:
  UdpSinkApp(sim::Simulation& simulation, net::Node& node, proto::Port port);

  std::uint64_t packets() const { return packets_; }
  std::uint64_t payload_bytes() const { return bytes_; }
  sim::TimePoint first_rx() const { return first_; }
  sim::TimePoint last_rx() const { return last_; }

  // Application-level goodput over the given measurement window.
  double goodput_mbps(sim::Duration window) const {
    if (window.is_zero()) return 0.0;
    return static_cast<double>(bytes_) * 8.0 / window.seconds_f() / 1e6;
  }

 private:
  sim::Simulation& sim_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  sim::TimePoint first_;
  sim::TimePoint last_;
};

}  // namespace hydra::app
