#include "app/ping.h"

#include "transport/host.h"

namespace hydra::app {

PingResponderApp::PingResponderApp(net::Node& node, proto::Port port)
    : socket_(transport::mux_of(node).open_udp(port)) {
  socket_.on_receive = [this](const proto::Packet& packet) {
    ++echoed_;
    socket_.send_to({packet.ip.src, packet.udp->src_port},
                    packet.payload_bytes);
  };
}

PingApp::PingApp(sim::Simulation& simulation, net::Node& node,
                 PingConfig config, proto::Port local_port)
    : sim_(simulation),
      config_(config),
      socket_(transport::mux_of(node).open_udp(local_port)),
      interval_timer_(simulation.scheduler(), [this] { send_probe(); }),
      timeout_timer_(simulation.scheduler(), [this] { on_timeout(); }) {
  interval_timer_.set_affinity(node.phy().id());
  timeout_timer_.set_affinity(node.phy().id());
  socket_.on_receive = [this](const proto::Packet&) { on_reply(); };
}

void PingApp::start() { interval_timer_.arm(sim::Duration::zero()); }

void PingApp::send_probe() {
  if (config_.count != 0 && sent_ >= config_.count) return;
  ++sent_;
  awaiting_reply_ = true;
  probe_sent_at_ = sim_.now();
  socket_.send_to(config_.destination, config_.payload_bytes);
  timeout_timer_.arm(config_.timeout);
}

void PingApp::on_reply() {
  if (!awaiting_reply_) return;  // late reply after its timeout
  awaiting_reply_ = false;
  timeout_timer_.cancel();
  ++received_;
  const auto rtt = sim_.now() - probe_sent_at_;
  total_rtt_ns_ += rtt.ns();
  if (rtt < min_rtt_) min_rtt_ = rtt;
  if (rtt > max_rtt_) max_rtt_ = rtt;
  interval_timer_.arm(config_.interval);
}

void PingApp::on_timeout() {
  awaiting_reply_ = false;
  ++timeouts_;
  interval_timer_.arm(config_.interval);
}

}  // namespace hydra::app
