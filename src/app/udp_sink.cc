#include "app/udp_sink.h"

#include "transport/host.h"

namespace hydra::app {

UdpSinkApp::UdpSinkApp(sim::Simulation& simulation, net::Node& node,
                       proto::Port port)
    : sim_(simulation) {
  auto& socket = transport::mux_of(node).open_udp(port);
  socket.on_receive = [this](const proto::Packet& packet) {
    if (packets_ == 0) first_ = sim_.now();
    ++packets_;
    bytes_ += packet.payload_bytes;
    last_ = sim_.now();
  };
}

}  // namespace hydra::app
