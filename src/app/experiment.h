// Runs one of the paper's experiments to completion: builds the topology
// (topo layer), attaches the configured workload (TCP file transfers,
// UDP CBR, flooding), runs the simulation and collects per-flow results.
//
// This is the app layer's composition point — the one place that knows
// both the topologies and the applications riding on them. Every bench
// binary, example and integration test drives experiments through it.
#pragma once

#include "topo/experiment.h"

namespace hydra::app {

// Runs one experiment configuration to completion.
topo::ExperimentResult run_experiment(const topo::ExperimentConfig& config);

}  // namespace hydra::app
