#include "app/flood.h"

#include "proto/packet.h"

namespace hydra::app {

FloodApp::FloodApp(sim::Simulation& simulation, net::Node& node,
                   FloodConfig config)
    : sim_(simulation),
      node_(node),
      config_(config),
      timer_(simulation.scheduler(), [this] { tick(); }) {
  // Ticks are this node's work: pin them so start() from setup code
  // still lands the first event in the node's parallel-window group.
  timer_.set_affinity(node.phy().id());
}

void FloodApp::start() { timer_.arm(config_.initial_offset); }

void FloodApp::tick() {
  if (sim_.now() > config_.stop) return;
  node_.stack().send(
      proto::make_flood_packet(node_.ip(), config_.payload_bytes));
  ++sent_;
  timer_.arm(config_.interval);
}

}  // namespace hydra::app
