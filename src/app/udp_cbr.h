// Constant-bit-rate UDP source: the paper's "application that simply sent
// UDP packets at a controllable rate" (§5).
#pragma once

#include <cstdint>

#include "net/node.h"
#include "sim/timer.h"
#include "transport/udp.h"

namespace hydra::app {

struct UdpCbrConfig {
  proto::Endpoint destination;
  // Payload size chosen so the resulting MAC frame is 1140 B (paper §5):
  // 1048 + 8 (UDP) + 20 (IP) + 64 (MAC header/encap/FCS) = 1140.
  std::uint32_t payload_bytes = 1048;
  sim::Duration interval = sim::Duration::millis(100);
  // Packets generated per tick (bursts create queueing, which makes
  // aggregation effective — paper §6.1).
  std::uint32_t packets_per_tick = 1;
  sim::TimePoint start;
  sim::TimePoint stop = sim::TimePoint::at(sim::Duration::seconds(30));
};

class UdpCbrApp {
 public:
  UdpCbrApp(sim::Simulation& simulation, net::Node& node, UdpCbrConfig config,
            proto::Port local_port = 9000);

  void start();

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t bytes_sent() const {
    return sent_ * config_.payload_bytes;
  }
  const UdpCbrConfig& config() const { return config_; }

 private:
  void tick();

  sim::Simulation& sim_;
  UdpCbrConfig config_;
  transport::UdpSocket& socket_;
  sim::Timer timer_;
  std::uint64_t sent_ = 0;
};

}  // namespace hydra::app
