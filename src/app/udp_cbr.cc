#include "app/udp_cbr.h"

#include "transport/host.h"

namespace hydra::app {

UdpCbrApp::UdpCbrApp(sim::Simulation& simulation, net::Node& node,
                     UdpCbrConfig config, proto::Port local_port)
    : sim_(simulation),
      config_(config),
      socket_(transport::mux_of(node).open_udp(local_port)),
      timer_(simulation.scheduler(), [this] { tick(); }) {
  timer_.set_affinity(node.phy().id());
}

void UdpCbrApp::start() {
  const auto now = sim_.now();
  const auto delay = config_.start > now ? config_.start - now
                                         : sim::Duration::zero();
  timer_.arm(delay);
}

void UdpCbrApp::tick() {
  if (sim_.now() > config_.stop) return;
  for (std::uint32_t i = 0; i < config_.packets_per_tick; ++i) {
    socket_.send_to(config_.destination, config_.payload_bytes);
    ++sent_;
  }
  timer_.arm(config_.interval);
}

}  // namespace hydra::app
