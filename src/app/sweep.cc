#include "app/sweep.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace hydra::app {

std::vector<SweepPoint> expand_sweep(const SweepGrid& grid) {
  std::vector<SweepPoint> points;
  points.reserve(grid.scenarios.size() * grid.policies.size() *
                 grid.rate_adaptations.size());
  for (const auto& [scenario_label, spec] : grid.scenarios) {
    for (const auto& [policy_label, policy] : grid.policies) {
      for (const auto scheme : grid.rate_adaptations) {
        SweepPoint point;
        point.scenario_label =
            scenario_label.empty() ? spec.label() : scenario_label;
        point.policy_label = policy_label;
        point.rate_adaptation = scheme;
        point.config = grid.base;
        point.config.scenario = spec;
        point.config.scenario.node.policy = policy;
        point.config.scenario.node.rate_adaptation = scheme;
        points.push_back(std::move(point));
      }
    }
  }
  return points;
}

std::vector<SweepOutcome> sweep_experiments(const SweepGrid& grid,
                                            unsigned threads) {
  auto points = expand_sweep(grid);
  std::vector<SweepOutcome> outcomes(points.size());
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, points.size() ? points.size() : 1u);

  // Work-stealing over a shared index; each slot is written by exactly
  // one worker, so no further synchronization is needed.
  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    for (std::size_t i = next.fetch_add(1); i < points.size();
         i = next.fetch_add(1)) {
      const auto started = std::chrono::steady_clock::now();
      SweepOutcome outcome;
      outcome.result = run_experiment(points[i].config);
      outcome.wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      outcome.point = std::move(points[i]);
      outcomes[i] = std::move(outcome);
    }
  };

  if (threads <= 1) {
    worker();
    return outcomes;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  return outcomes;
}

}  // namespace hydra::app
