#include "app/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <system_error>
#include <thread>

#include "util/crc32.h"
#include "util/task_pool.h"

namespace hydra::app {

namespace {

// printf-style accumulator behind the cache-key fingerprints: chunked
// appends into an unbounded string (each chunk clamped so a truncated
// format can never read past the buffer). The serialized field values
// go into the key verbatim — no hashing — so two distinct
// configurations can never collide onto one cache slot.
class Fingerprinter {
 public:
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  void
  add(const char* fmt, ...) {
    char buf[192];
    va_list args;
    va_start(args, fmt);
    const int written = std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    if (written <= 0) return;
    blob_.append(buf, std::min(static_cast<std::size_t>(written),
                               sizeof buf - 1));
  }

  std::string take() && { return std::move(blob_); }

 private:
  std::string blob_;
};

// Sync tripwires: the fingerprints below hand-enumerate every
// outcome-affecting field of these structs. A new field added without
// updating the matching fingerprint would silently alias cache keys
// (stale results served for new configurations), so growing any of
// them must fail the build here until the fingerprint — and then this
// constant — is updated. Pinned sizes are ABI-specific, so the guard
// only arms on the toolchain CI runs (x86-64 libstdc++ without debug
// containers); elsewhere the fingerprints still work, they just lose
// the compile-time reminder.
#if defined(__GLIBCXX__) && defined(__x86_64__) && !defined(_GLIBCXX_DEBUG)
static_assert(sizeof(topo::ScenarioSpec) == 376,
              "ScenarioSpec changed: update spec_fingerprint");
static_assert(sizeof(topo::MobilitySpec) == 96,
              "MobilitySpec changed: update spec_fingerprint");
static_assert(sizeof(topo::NodeParams) == 128,
              "NodeParams changed: update spec_fingerprint");
static_assert(sizeof(core::AggregationPolicy) == 48,
              "AggregationPolicy changed: update spec_fingerprint");
static_assert(sizeof(topo::ExperimentConfig) == 584,
              "ExperimentConfig changed: update workload_fingerprint");
static_assert(sizeof(transport::TcpConfig) == 96,
              "TcpConfig changed: update workload_fingerprint");
static_assert(sizeof(transport::TransportTuning) == 48,
              "TransportTuning changed: update workload_fingerprint");
// The disk-cache serializer hand-enumerates every field of these four;
// a field added without extending serialize/deserialize_result would
// silently persist partial results.
static_assert(sizeof(topo::ExperimentResult) == 272,
              "ExperimentResult changed: update serialize_result");
static_assert(sizeof(topo::FlowResult) == 32,
              "FlowResult changed: update serialize_result");
static_assert(sizeof(mac::MacStats) == 192,
              "MacStats changed: update serialize_result");
static_assert(sizeof(mac::TimeAccounting) == 48,
              "TimeAccounting changed: update serialize_result");
#endif

// Everything in a spec that changes the simulation's outcome but is not
// named by an axis label: ScenarioSpec::label() encodes only family and
// size (and a policy axis label is whatever the caller typed), so two
// same-label grid entries differing in spacing, sessions, policy knobs
// or placement would otherwise alias in the cache. The fingerprint runs
// over the point's *resolved* spec — after the axes overwrite policy,
// scheme and medium — so axis values are covered regardless of their
// labels.
std::string spec_fingerprint(const topo::ScenarioSpec& spec) {
  Fingerprinter fp;
  fp.add("f%d n%zu k%zu r%zux%zu sp%.17g rng%.17g ps%llu ",
         static_cast<int>(spec.family), spec.nodes, spec.senders, spec.rows,
         spec.cols, spec.spacing_m, spec.range_m,
         static_cast<unsigned long long>(spec.placement_seed));
  // shard_threads rides along even though the determinism contract
  // makes it outcome-neutral: a fingerprint that hand-waves "this field
  // can't matter" is how aliasing bugs start.
  fp.add("w%d sr%d rd%d cm%.17g sh%zu ", spec.neighbor_whitelist,
         spec.static_routes, spec.route_discovery,
         spec.medium.cull_margin_db, spec.medium.shard_threads);
  // Scheduler policy and workers ride along on the same principle as
  // shard_threads: outcome-neutral by contract, fingerprinted anyway.
  fp.add("sc%d scw%u ", static_cast<int>(spec.scheduler.policy),
         spec.scheduler.workers);
  // Mobility changes the outcome through node motion and churn; every
  // knob (including the explicit mobile list) feeds the key.
  const auto& mob = spec.mobility;
  fp.add("mk%d mi%lld ma%lld mo%lld v%.17g stp%.17g out%u dn%lld mseed%llu ",
         static_cast<int>(mob.kind),
         static_cast<long long>(mob.update_interval.ns()),
         static_cast<long long>(mob.start_after.ns()),
         static_cast<long long>(mob.stop_after.ns()), mob.speed_mps,
         mob.step_m, mob.steps_out,
         static_cast<long long>(mob.down_time.ns()),
         static_cast<unsigned long long>(mob.seed));
  for (const std::uint32_t i : mob.mobile) fp.add("mn%u ", i);
  fp.add("q%zu rts%d tpd%.17g ra%d ", spec.node.queue_limit,
         spec.node.use_rts_cts, spec.node.tx_power_delta_db,
         static_cast<int>(spec.node.rate_adaptation));
  for (const auto* mode : {&spec.node.unicast_mode,
                           &spec.node.broadcast_mode}) {
    fp.add("m%d/%u-%u/%llu/%.17g ", static_cast<int>(mode->modulation),
           static_cast<unsigned>(mode->code_rate.num),
           static_cast<unsigned>(mode->code_rate.den),
           static_cast<unsigned long long>(mode->rate.bits_per_second()),
           mode->required_snr_db);
  }
  const auto& policy = spec.node.policy;
  fp.add("pm%d mb%zu at%lld ack%d fw%d dmin%u dto%lld blk%d ",
         static_cast<int>(policy.mode), policy.max_aggregate_bytes,
         static_cast<long long>(policy.max_aggregate_airtime.ns()),
         policy.tcp_ack_as_broadcast, policy.forward_aggregation,
         policy.delay_min_subframes,
         static_cast<long long>(policy.delay_timeout.ns()),
         policy.block_ack);
  for (const auto& session : spec.sessions) {
    fp.add("s%u-%u ", session.sender, session.receiver);
  }
  for (const auto& pos : spec.positions_override) {
    fp.add("p%.17g,%.17g ", pos.x_m, pos.y_m);
  }
  return std::move(fp).take();
}

// The workload side of a point: everything in ExperimentConfig outside
// the scenario spec and the seed (both covered above). Keying on it lets
// one cache serve sweeps with different base configs without aliasing.
std::string workload_fingerprint(const topo::ExperimentConfig& config) {
  Fingerprinter fp;
  fp.add("t%d fb%llu mss%u rw%u cw%u rto%lld/%lld/%lld mr%u ",
         static_cast<int>(config.traffic),
         static_cast<unsigned long long>(config.tcp_file_bytes),
         config.tcp.mss, config.tcp.recv_window,
         config.tcp.initial_cwnd_segments,
         static_cast<long long>(config.tcp.rto_initial.ns()),
         static_cast<long long>(config.tcp.rto_min.ns()),
         static_cast<long long>(config.tcp.rto_max.ns()),
         config.tcp.max_retries);
  const auto& tn = config.tcp.tuning;
  fp.add("cc%d ap%d ca%.17g dd%lld/%lld dp%u gm%.17g ",
         static_cast<int>(tn.cc), static_cast<int>(tn.ack), tn.cerl.alpha,
         static_cast<long long>(tn.delack.delay.ns()),
         static_cast<long long>(tn.delack.max_delay.ns()),
         tn.delack.max_pending_segments, tn.delack.gap_multiplier);
  for (const auto& rule : config.losses) {
    fp.add("L%u,%d,%u,%u,%d ", rule.node_index, rule.next_hop_index,
           rule.period, rule.offset, rule.tcp_data_only);
  }
  fp.add("up%u ui%lld upt%u ud%lld ", config.udp_payload_bytes,
         static_cast<long long>(config.udp_interval.ns()),
         config.udp_packets_per_tick,
         static_cast<long long>(config.udp_duration.ns()));
  fp.add("fl%d fi%lld fp%u mst%lld", config.flooding,
         static_cast<long long>(config.flood_interval.ns()),
         config.flood_payload_bytes,
         static_cast<long long>(config.max_sim_time.ns()));
  return std::move(fp).take();
}

// Disk-cache file path for a key: the CRC-32 of the full key names the
// file. Distinct keys can collide onto one name; the loader verifies
// the key line inside the file, so a collision costs a re-simulation,
// never a wrong result.
std::filesystem::path disk_path_for(const std::string& dir,
                                    const std::string& key) {
  const auto fp = crc32({reinterpret_cast<const std::uint8_t*>(key.data()),
                         key.size()});
  char name[32];
  std::snprintf(name, sizeof name, "%08x.sweep", fp);
  return std::filesystem::path(dir) / name;
}

}  // namespace

std::string serialize_result(const topo::ExperimentResult& result) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "hydra-sweep-result 2\n";
  out << "sim_time " << result.sim_time.ns() << "\n";
  out << "counters " << result.phy_transmissions << ' '
      << result.phy_deliveries << ' ' << result.phy_shards << ' '
      << result.phy_rebuilds << ' ' << result.phy_incremental_attaches << ' '
      << result.phy_detaches << ' ' << result.phy_moves << ' '
      << result.phy_incremental_detaches << ' '
      << result.phy_incremental_moves << ' ' << result.sched_executed_events
      << ' ' << result.sched_windows << ' ' << result.sched_parallel_events
      << ' ' << result.heap_allocations << ' '
      << result.heap_bytes_allocated << ' ' << result.pool_requests << ' '
      << result.pool_recycled << ' ' << result.peak_rss_kb << ' '
      << result.tcp_retransmits << ' ' << result.tcp_timeouts << ' '
      << result.tcp_acks_sent << ' ' << result.tcp_acks_delayed << ' '
      << result.tcp_channel_losses << ' ' << result.tcp_congestion_losses
      << ' ' << result.transport_injected_drops << "\n";
  out << "relays " << result.relay_indices.size();
  for (const auto i : result.relay_indices) out << ' ' << i;
  out << "\nflows " << result.flows.size() << "\n";
  for (const auto& f : result.flows) {
    out << f.bytes << ' ' << f.elapsed.ns() << ' ' << (f.completed ? 1 : 0)
        << ' ' << f.throughput_mbps << "\n";
  }
  out << "nodes " << result.node_stats.size() << "\n";
  for (const auto& n : result.node_stats) {
    out << n.data_frames_tx << ' ' << n.broadcast_subframes_tx << ' '
        << n.unicast_subframes_tx << ' ' << n.data_bytes_tx << ' '
        << n.mac_header_bytes_tx << ' ' << n.rts_tx << ' ' << n.cts_tx << ' '
        << n.ack_tx << ' ' << n.retries << ' ' << n.retry_drops << ' '
        << n.queue_drops << ' ' << n.delivered_up << ' '
        << n.dropped_not_for_us << ' ' << n.crc_failures << ' '
        << n.aggregate_discards << ' ' << n.duplicates_suppressed << ' '
        << n.acks_rx << ' ' << n.collisions << ' ' << n.time.payload.ns()
        << ' ' << n.time.mac_header.ns() << ' ' << n.time.phy_header.ns()
        << ' ' << n.time.control.ns() << ' ' << n.time.ifs.ns() << ' '
        << n.time.backoff.ns() << "\n";
  }
  out << "end\n";
  return std::move(out).str();
}

bool deserialize_result(const std::string& text,
                        topo::ExperimentResult* out) {
  std::istringstream in(text);
  std::string tag;
  int version = 0;
  // Version 1 files predate the transport counters; they fail the parse
  // and degrade to a cache miss (re-simulated, then re-stored as v2).
  if (!(in >> tag >> version) || tag != "hydra-sweep-result" || version != 2) {
    return false;
  }
  topo::ExperimentResult r;
  std::int64_t ns = 0;
  if (!(in >> tag >> ns) || tag != "sim_time") return false;
  r.sim_time = sim::Duration::nanos(ns);
  if (!(in >> tag >> r.phy_transmissions >> r.phy_deliveries >>
        r.phy_shards >> r.phy_rebuilds >> r.phy_incremental_attaches >>
        r.phy_detaches >> r.phy_moves >> r.phy_incremental_detaches >>
        r.phy_incremental_moves >> r.sched_executed_events >>
        r.sched_windows >> r.sched_parallel_events >> r.heap_allocations >>
        r.heap_bytes_allocated >> r.pool_requests >> r.pool_recycled >>
        r.peak_rss_kb >> r.tcp_retransmits >> r.tcp_timeouts >>
        r.tcp_acks_sent >> r.tcp_acks_delayed >> r.tcp_channel_losses >>
        r.tcp_congestion_losses >> r.transport_injected_drops) ||
      tag != "counters") {
    return false;
  }
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != "relays") return false;
  r.relay_indices.resize(count);
  for (auto& i : r.relay_indices) {
    if (!(in >> i)) return false;
  }
  if (!(in >> tag >> count) || tag != "flows") return false;
  r.flows.resize(count);
  for (auto& f : r.flows) {
    int completed = 0;
    if (!(in >> f.bytes >> ns >> completed >> f.throughput_mbps)) {
      return false;
    }
    f.elapsed = sim::Duration::nanos(ns);
    f.completed = completed != 0;
  }
  if (!(in >> tag >> count) || tag != "nodes") return false;
  r.node_stats.resize(count);
  for (auto& n : r.node_stats) {
    std::int64_t t[6] = {};
    if (!(in >> n.data_frames_tx >> n.broadcast_subframes_tx >>
          n.unicast_subframes_tx >> n.data_bytes_tx >>
          n.mac_header_bytes_tx >> n.rts_tx >> n.cts_tx >> n.ack_tx >>
          n.retries >> n.retry_drops >> n.queue_drops >> n.delivered_up >>
          n.dropped_not_for_us >> n.crc_failures >> n.aggregate_discards >>
          n.duplicates_suppressed >> n.acks_rx >> n.collisions >> t[0] >>
          t[1] >> t[2] >> t[3] >> t[4] >> t[5])) {
      return false;
    }
    n.time.payload = sim::Duration::nanos(t[0]);
    n.time.mac_header = sim::Duration::nanos(t[1]);
    n.time.phy_header = sim::Duration::nanos(t[2]);
    n.time.control = sim::Duration::nanos(t[3]);
    n.time.ifs = sim::Duration::nanos(t[4]);
    n.time.backoff = sim::Duration::nanos(t[5]);
  }
  if (!(in >> tag) || tag != "end") return false;
  *out = std::move(r);
  return true;
}

std::vector<SweepPoint> expand_sweep(const SweepGrid& grid) {
  std::vector<SweepPoint> points;
  points.reserve(grid.scenarios.size() * grid.policies.size() *
                 grid.rate_adaptations.size() * grid.mediums.size() *
                 grid.schedulers.size() * grid.transports.size());
  for (const auto& [scenario_label, spec] : grid.scenarios) {
    for (const auto& [policy_label, policy] : grid.policies) {
      for (const auto scheme : grid.rate_adaptations) {
        for (const auto& [medium_label, medium_policy] : grid.mediums) {
          for (const auto& [sched_label, sched_policy] : grid.schedulers) {
            for (const auto& [transport_label, tuning] : grid.transports) {
              SweepPoint point;
              point.scenario_label =
                  scenario_label.empty() ? spec.label() : scenario_label;
              point.policy_label = policy_label;
              point.rate_adaptation = scheme;
              point.medium_label = medium_label;
              point.scheduler_label = sched_label;
              point.config = grid.base;
              point.config.scenario = spec;
              point.config.scenario.node.policy = policy;
              point.config.scenario.node.rate_adaptation = scheme;
              // kAuto axis entries defer to the spec's own tuning (a spec
              // that pinned full mesh or parallel windows stays pinned
              // under the default axis); a concrete axis policy overrides.
              if (medium_policy != topo::MediumPolicy::kAuto) {
                point.config.scenario.medium.policy = medium_policy;
              }
              if (sched_policy != topo::SchedulerPolicy::kAuto) {
                point.config.scenario.scheduler.policy = sched_policy;
              }
              // Same deferral for the transport axis: nullopt keeps the
              // base config's tuning (and the historical "" label).
              if (tuning.has_value()) {
                point.config.tcp.tuning = *tuning;
                point.transport_label = transport_label.empty()
                                            ? transport::to_string(*tuning)
                                            : transport_label;
              } else {
                point.transport_label = transport_label;
              }
              points.push_back(std::move(point));
            }
          }
        }
      }
    }
  }
  return points;
}

std::string SweepCache::key_of(const SweepPoint& point) {
  // The rate-adaptation scheme is already serialized inside the spec
  // fingerprint (expand_sweep resolves the axis into the spec). The
  // medium rides here as the *resolved* delivery policy, so a point
  // swept under kAuto and the same point swept under an explicit axis
  // entry that resolves identically share one cache slot (the node
  // count kAuto resolves through is already in the spec fingerprint).
  char tail[64];
  std::snprintf(
      tail, sizeof tail, "|%s|seed%llu",
      phy::to_string(point.config.scenario.medium_config().delivery),
      static_cast<unsigned long long>(point.config.seed));
  return point.scenario_label + '|' + point.policy_label + '|' +
         spec_fingerprint(point.config.scenario) + '|' +
         workload_fingerprint(point.config) + tail;
}

std::shared_ptr<const topo::ExperimentResult> SweepCache::find(
    const std::string& key) const {
  std::string dir;
  {
    const util::MutexLock lock(mutex_);
    const auto it = results_.find(key);
    if (it != results_.end()) {
      ++hits_;
      return it->second;
    }
    dir = disk_dir_;
  }
  // Memory miss: consult the disk directory, outside the lock so a slow
  // filesystem never serializes the sweep workers. The file's own key
  // line is the aliasing guard — a CRC collision reads as a miss.
  if (!dir.empty()) {
    std::ifstream in(disk_path_for(dir, key));
    if (in) {
      std::string stored_key;
      if (std::getline(in, stored_key) && stored_key == key) {
        std::ostringstream rest;
        rest << in.rdbuf();
        topo::ExperimentResult result;
        if (deserialize_result(rest.str(), &result)) {
          auto shared =
              std::make_shared<const topo::ExperimentResult>(std::move(result));
          const util::MutexLock lock(mutex_);
          ++disk_hits_;
          results_.insert_or_assign(key, shared);
          return shared;
        }
      }
    }
  }
  const util::MutexLock lock(mutex_);
  ++misses_;
  return nullptr;
}

void SweepCache::store(const std::string& key,
                       const topo::ExperimentResult& result) {
  // The deep copy happens outside the critical section; only the
  // pointer moves under the lock.
  auto copy = std::make_shared<const topo::ExperimentResult>(result);
  std::string dir;
  {
    const util::MutexLock lock(mutex_);
    results_.insert_or_assign(key, copy);
    dir = disk_dir_;
  }
  if (dir.empty()) return;
  // Write-through: tmp file + rename, so a crashed or concurrent writer
  // never leaves a half-written result where the loader can see it. The
  // write mutex keeps two workers storing one key from interleaving
  // bytes in the shared tmp file.
  const auto path = disk_path_for(dir, key);
  auto tmp = path;
  tmp += ".tmp";
  bool written = false;
  {
    const util::MutexLock wlock(disk_write_mutex_);
    std::ofstream out(tmp, std::ios::trunc);
    if (out) {
      out << key << '\n' << serialize_result(*copy);
      out.close();
      if (out) {
        std::error_code ec;
        std::filesystem::rename(tmp, path, ec);
        written = !ec;
      }
    }
  }
  if (written) {
    const util::MutexLock lock(mutex_);
    ++disk_stores_;
  }
}

void SweepCache::set_disk_dir(std::string dir) {
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "SweepCache: cannot create %s, disabling disk\n",
                   dir.c_str());
      dir.clear();
    }
  }
  const util::MutexLock lock(mutex_);
  disk_dir_ = std::move(dir);
}

void SweepCache::attach_env_disk_dir() {
  if (const char* dir = std::getenv("HYDRA_SWEEP_CACHE_DIR")) {
    if (dir[0] != '\0') set_disk_dir(dir);
  }
}

std::size_t SweepCache::size() const {
  const util::MutexLock lock(mutex_);
  return results_.size();
}

std::uint64_t SweepCache::hits() const {
  const util::MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t SweepCache::disk_hits() const {
  const util::MutexLock lock(mutex_);
  return disk_hits_;
}

std::uint64_t SweepCache::disk_stores() const {
  const util::MutexLock lock(mutex_);
  return disk_stores_;
}

std::uint64_t SweepCache::misses() const {
  const util::MutexLock lock(mutex_);
  return misses_;
}

std::vector<SweepOutcome> sweep_experiments(const SweepGrid& grid,
                                            unsigned threads,
                                            SweepCache* cache) {
  auto points = expand_sweep(grid);
  std::vector<SweepOutcome> outcomes(points.size());
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = std::min<unsigned>(threads, points.size() ? points.size() : 1u);

  // One point per pool task, stolen dynamically; each outcome slot is
  // written by exactly one worker, so the pool's batch barrier is the
  // only synchronization needed. A pool of concurrency 1 runs the batch
  // inline on this thread.
  util::TaskPool pool(threads);
  pool.parallel_for(points.size(), [&](std::size_t i) {
    // Host wall time for the scaling benches; never feeds simulation
    // state or the result fields the baselines gate.
    // hydra-lint: allow(wall-clock) — wall_seconds is bench reporting, not simulation state
    const auto started = std::chrono::steady_clock::now();
    SweepOutcome outcome;
    const std::string key =
        cache ? SweepCache::key_of(points[i]) : std::string{};
    if (cache) {
      if (const auto cached = cache->find(key)) {
        outcome.result = *cached;  // deep copy outside the cache lock
        outcome.from_cache = true;
      }
    }
    if (!outcome.from_cache) {
      outcome.result = run_experiment(points[i].config);
      if (cache) cache->store(key, outcome.result);
    }
    // hydra-lint: allow(wall-clock) — same measurement, read side
    const auto elapsed = std::chrono::steady_clock::now() - started;
    outcome.wall_seconds = std::chrono::duration<double>(elapsed).count();
    outcome.point = std::move(points[i]);
    outcomes[i] = std::move(outcome);
  });
  return outcomes;
}

}  // namespace hydra::app
