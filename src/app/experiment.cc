#include "app/experiment.h"

#include <memory>
#include <utility>
#include <vector>

#include "app/file_transfer.h"
#include "app/flood.h"
#include "app/udp_cbr.h"
#include "app/udp_sink.h"
#include "net/node.h"
#include "util/alloc_stats.h"
#include "util/assert.h"
#include "util/pool.h"

namespace hydra::app {

namespace {

constexpr proto::Port kTcpPort = 5001;
constexpr proto::Port kUdpPort = 9001;

}  // namespace

topo::ExperimentResult run_experiment(const topo::ExperimentConfig& config) {
  using topo::TrafficKind;

  // Meter the whole experiment, scenario build included: the build is
  // where cold pools warm up, so excluding it would hide setup cost.
  const auto alloc_before = util::alloc_snapshot();
  const auto pool_before = util::BufferPool::stats();

  auto scenario = topo::Scenario::build(config.scenario, config.seed);
  sim::Simulation& simulation = scenario.sim();
  const std::size_t node_count = scenario.size();

  // Install injected channel losses. Counter-based (no RNG): the drop
  // pattern is a pure function of the traffic, so runs stay bit-identical
  // across medium backends and scheduler policies. Rules on the same node
  // chain; each keeps its own match counter.
  for (const auto& rule : config.losses) {
    if (rule.period == 0 || rule.node_index >= node_count) continue;
    auto& stack = scenario.node(rule.node_index).stack();
    const bool any_hop = rule.next_hop_index < 0;
    const auto hop_ip = any_hop ? proto::Ipv4Address{}
                                : proto::Ipv4Address::for_node(static_cast<
                                      std::uint32_t>(rule.next_hop_index));
    stack.drop_filter = [rule, any_hop, hop_ip,
                         prev = std::move(stack.drop_filter),
                         matches = std::uint64_t{0}](
                            const proto::Packet& p,
                            proto::Ipv4Address next_hop) mutable {
      if (prev && prev(p, next_hop)) return true;
      if (rule.tcp_data_only && (!p.tcp.has_value() || p.payload_bytes == 0)) {
        return false;
      }
      if (!any_hop && next_hop != hop_ip) return false;
      const auto n = matches++;
      return n >= rule.offset && (n - rule.offset) % rule.period == 0;
    };
  }

  auto sessions = config.scenario.sessions;
  HYDRA_ASSERT_MSG(!sessions.empty() || config.flooding,
                   "a scenario needs sessions or flooding traffic");
  if (config.traffic == TrafficKind::kTcpBidirectional) {
    HYDRA_ASSERT_MSG(!sessions.empty(),
                     "bidirectional traffic reverses the first session");
    const auto forward = sessions.front();
    sessions = {forward, {forward.receiver, forward.sender}};
  }

  // Flooding load: every node broadcasts, with staggered phases.
  std::vector<std::unique_ptr<FloodApp>> flooders;
  if (config.flooding) {
    for (std::uint32_t i = 0; i < node_count; ++i) {
      FloodConfig fc;
      fc.payload_bytes = config.flood_payload_bytes;
      fc.interval = config.flood_interval;
      fc.initial_offset = sim::Duration::millis(17) * (i + 1);
      flooders.push_back(
          std::make_unique<FloodApp>(simulation, scenario.node(i), fc));
      flooders.back()->start();
    }
  }

  topo::ExperimentResult result;
  result.relay_indices = scenario.relay_indices();

  if (config.traffic != TrafficKind::kUdp && !sessions.empty()) {
    // One FileReceiver per distinct receiving node.
    std::vector<std::unique_ptr<FileReceiverApp>> receivers(node_count);
    std::vector<std::unique_ptr<FileSenderApp>> senders;
    std::vector<std::size_t> flows_at(node_count, 0);
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const auto [src, dst] = sessions[s];
      if (!receivers[dst]) {
        receivers[dst] = std::make_unique<FileReceiverApp>(
            simulation, scenario.node(dst), kTcpPort, config.tcp_file_bytes,
            config.tcp);
      }
      ++flows_at[dst];
      senders.push_back(std::make_unique<FileSenderApp>(
          simulation, scenario.node(src),
          proto::Endpoint{proto::Ipv4Address::for_node(dst), kTcpPort},
          config.tcp_file_bytes, config.tcp));
      senders.back()->start(
          sim::TimePoint::at(sim::Duration::millis(10) * (s + 1)));
    }

    // Run in slices until every flow completes (or the time cap).
    const auto deadline = sim::TimePoint::at(config.max_sim_time);
    while (simulation.now() < deadline) {
      bool all_done = true;
      for (std::size_t d = 0; d < node_count; ++d) {
        if (receivers[d] && !receivers[d]->all_complete(flows_at[d])) {
          all_done = false;
        }
      }
      if (all_done) break;
      simulation.run_for(sim::Duration::millis(200));
    }

    // Collect per-session results. Sessions at a shared receiver appear
    // in accept order; map flows to senders by matching counts.
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const auto [src, dst] = sessions[s];
      topo::FlowResult fr;
      fr.bytes = config.tcp_file_bytes;
      const auto& recv = *receivers[dst];
      // Find this sender's flow: flows at the receiver are indexed in
      // connection-accept order, which matches the staggered start order.
      std::size_t flow_index = 0;
      for (std::size_t prior = 0; prior < s; ++prior) {
        if (sessions[prior].receiver == dst) ++flow_index;
      }
      if (flow_index < recv.flow_count()) {
        const auto& flow = recv.flow(flow_index);
        fr.completed = flow.complete;
        if (flow.complete) {
          const auto start = senders[s]->started_at();
          fr.elapsed = flow.completed_at - start;
          fr.throughput_mbps = static_cast<double>(fr.bytes) * 8.0 /
                               fr.elapsed.seconds_f() / 1e6;
        }
      }
      result.flows.push_back(fr);
    }

    // Transport accounting over every connection the workload opened.
    const auto add_tcp = [&result](const transport::TcpConnection& conn) {
      const auto& st = conn.stats();
      result.tcp_retransmits += st.retransmits;
      result.tcp_timeouts += st.timeouts;
      result.tcp_acks_sent += st.acks_sent;
      result.tcp_acks_delayed += st.acks_delayed;
      result.tcp_channel_losses += conn.congestion().channel_losses();
      result.tcp_congestion_losses += conn.congestion().congestion_losses();
    };
    for (const auto& sender : senders) {
      if (sender->connection()) add_tcp(*sender->connection());
    }
    for (const auto& recv : receivers) {
      if (!recv) continue;
      for (std::size_t i = 0; i < recv->flow_count(); ++i) {
        add_tcp(recv->connection(i));
      }
    }
  } else if (config.traffic == TrafficKind::kUdp && !sessions.empty()) {
    // UDP: CBR from each session sender to a sink at the receiver. A
    // sink aggregates every session terminating at its node, so results
    // carry one flow per distinct receiver, in session order.
    std::vector<std::unique_ptr<UdpSinkApp>> sinks(node_count);
    std::vector<std::unique_ptr<UdpCbrApp>> cbrs;
    const auto stop = sim::TimePoint::at(config.udp_duration);
    for (const auto [src, dst] : sessions) {
      if (!sinks[dst]) {
        sinks[dst] = std::make_unique<UdpSinkApp>(simulation,
                                                  scenario.node(dst), kUdpPort);
      }
      UdpCbrConfig uc;
      uc.destination = {proto::Ipv4Address::for_node(dst), kUdpPort};
      uc.payload_bytes = config.udp_payload_bytes;
      uc.interval = config.udp_interval;
      uc.packets_per_tick = config.udp_packets_per_tick;
      uc.stop = stop;
      cbrs.push_back(std::make_unique<UdpCbrApp>(simulation,
                                                 scenario.node(src), uc, 9000));
      cbrs.back()->start();
    }
    // Run through the send window plus a drain period.
    simulation.run_until(stop + sim::Duration::seconds(2));

    std::vector<bool> collected(node_count, false);
    for (const auto [src, dst] : sessions) {
      (void)src;
      if (collected[dst]) continue;  // sink aggregates sessions at one node
      collected[dst] = true;
      topo::FlowResult fr;
      const auto& sink = *sinks[dst];
      fr.bytes = sink.payload_bytes();
      fr.elapsed = config.udp_duration;
      fr.completed = true;
      fr.throughput_mbps = sink.goodput_mbps(config.udp_duration);
      result.flows.push_back(fr);
    }
  } else {
    // Pure flooding: run out the clock.
    simulation.run_until(sim::TimePoint::at(config.max_sim_time));
  }

  result.sim_time = simulation.now().since_origin();
  result.phy_transmissions = scenario.medium().transmissions_started();
  result.phy_deliveries = scenario.medium().deliveries_scheduled();
  result.phy_shards = scenario.medium().shards();
  result.phy_rebuilds = scenario.medium().rebuilds();
  result.phy_incremental_attaches = scenario.medium().incremental_attaches();
  result.phy_detaches = scenario.medium().detaches();
  result.phy_moves = scenario.medium().moves();
  result.phy_incremental_detaches = scenario.medium().incremental_detaches();
  result.phy_incremental_moves = scenario.medium().incremental_moves();
  result.sched_executed_events = simulation.scheduler().executed_events();
  result.sched_windows = simulation.scheduler().windows_executed();
  result.sched_parallel_events =
      simulation.scheduler().parallel_events_executed();
  for (std::size_t i = 0; i < node_count; ++i) {
    result.node_stats.push_back(scenario.node(i).mac_stats());
    result.transport_injected_drops += scenario.node(i).stack().injected_drops();
  }

  const auto alloc_after = util::alloc_snapshot();
  const auto pool_after = util::BufferPool::stats();
  result.heap_allocations = alloc_after.allocations - alloc_before.allocations;
  result.heap_bytes_allocated = alloc_after.bytes - alloc_before.bytes;
  result.pool_requests = pool_after.requests - pool_before.requests;
  result.pool_recycled = pool_after.recycled - pool_before.recycled;
  result.peak_rss_kb = util::peak_rss_kb();
  return result;
}

}  // namespace hydra::app
