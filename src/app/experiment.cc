#include "app/experiment.h"

#include <memory>
#include <utility>
#include <vector>

#include "app/file_transfer.h"
#include "app/flood.h"
#include "app/udp_cbr.h"
#include "app/udp_sink.h"
#include "net/node.h"
#include "phy/medium.h"
#include "sim/simulation.h"
#include "util/assert.h"

namespace hydra::app {

namespace {

constexpr net::Port kTcpPort = 5001;
constexpr net::Port kUdpPort = 9001;

}  // namespace

topo::ExperimentResult run_experiment(const topo::ExperimentConfig& config) {
  using topo::TrafficKind;

  sim::Simulation simulation(config.seed);
  phy::Medium medium(simulation);

  auto nodes = topo::build_nodes(simulation, medium, config);
  topo::install_static_routes(config.topology, nodes);

  auto sessions = topo::sessions_for(config.topology);
  if (config.traffic == TrafficKind::kTcpBidirectional) {
    HYDRA_ASSERT_MSG(config.topology != topo::Topology::kStar,
                     "bidirectional traffic is defined for chains");
    const auto forward = sessions.front();
    sessions = {forward, {forward.receiver, forward.sender}};
  }

  // Flooding load: every node broadcasts, with staggered phases.
  std::vector<std::unique_ptr<FloodApp>> flooders;
  if (config.flooding) {
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      FloodConfig fc;
      fc.payload_bytes = config.flood_payload_bytes;
      fc.interval = config.flood_interval;
      fc.initial_offset = sim::Duration::millis(17) * (i + 1);
      flooders.push_back(
          std::make_unique<FloodApp>(simulation, *nodes[i], fc));
      flooders.back()->start();
    }
  }

  topo::ExperimentResult result;
  result.relay_indices = topo::relay_indices(config.topology);

  if (config.traffic != TrafficKind::kUdp) {
    // One FileReceiver per distinct receiving node.
    std::vector<std::unique_ptr<FileReceiverApp>> receivers(nodes.size());
    std::vector<std::unique_ptr<FileSenderApp>> senders;
    std::vector<std::size_t> flows_at(nodes.size(), 0);
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const auto [src, dst] = sessions[s];
      if (!receivers[dst]) {
        receivers[dst] = std::make_unique<FileReceiverApp>(
            simulation, *nodes[dst], kTcpPort, config.tcp_file_bytes,
            config.tcp);
      }
      ++flows_at[dst];
      senders.push_back(std::make_unique<FileSenderApp>(
          simulation, *nodes[src],
          net::Endpoint{net::Ipv4Address::for_node(dst), kTcpPort},
          config.tcp_file_bytes, config.tcp));
      senders.back()->start(
          sim::TimePoint::at(sim::Duration::millis(10) * (s + 1)));
    }

    // Run in slices until every flow completes (or the time cap).
    const auto deadline = sim::TimePoint::at(config.max_sim_time);
    while (simulation.now() < deadline) {
      bool all_done = true;
      for (std::size_t d = 0; d < nodes.size(); ++d) {
        if (receivers[d] && !receivers[d]->all_complete(flows_at[d])) {
          all_done = false;
        }
      }
      if (all_done) break;
      simulation.run_for(sim::Duration::millis(200));
    }

    // Collect per-session results. Sessions at a shared receiver appear
    // in accept order; map flows to senders by matching counts.
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const auto [src, dst] = sessions[s];
      topo::FlowResult fr;
      fr.bytes = config.tcp_file_bytes;
      const auto& recv = *receivers[dst];
      // Find this sender's flow: flows at the receiver are indexed in
      // connection-accept order, which matches the staggered start order.
      std::size_t flow_index = 0;
      for (std::size_t prior = 0; prior < s; ++prior) {
        if (sessions[prior].receiver == dst) ++flow_index;
      }
      if (flow_index < recv.flow_count()) {
        const auto& flow = recv.flow(flow_index);
        fr.completed = flow.complete;
        if (flow.complete) {
          const auto start = senders[s]->started_at();
          fr.elapsed = flow.completed_at - start;
          fr.throughput_mbps = static_cast<double>(fr.bytes) * 8.0 /
                               fr.elapsed.seconds_f() / 1e6;
        }
      }
      result.flows.push_back(fr);
    }
  } else {
    // UDP: CBR from each session sender to a sink at the receiver.
    std::vector<std::unique_ptr<UdpSinkApp>> sinks(nodes.size());
    std::vector<std::unique_ptr<UdpCbrApp>> cbrs;
    const auto stop = sim::TimePoint::at(config.udp_duration);
    for (const auto [src, dst] : sessions) {
      if (!sinks[dst]) {
        sinks[dst] =
            std::make_unique<UdpSinkApp>(simulation, *nodes[dst], kUdpPort);
      }
      UdpCbrConfig uc;
      uc.destination = {net::Ipv4Address::for_node(dst), kUdpPort};
      uc.payload_bytes = config.udp_payload_bytes;
      uc.interval = config.udp_interval;
      uc.packets_per_tick = config.udp_packets_per_tick;
      uc.stop = stop;
      cbrs.push_back(std::make_unique<UdpCbrApp>(simulation, *nodes[src],
                                                 uc, 9000));
      cbrs.back()->start();
    }
    // Run through the send window plus a drain period.
    simulation.run_until(stop + sim::Duration::seconds(2));

    for (const auto [src, dst] : sessions) {
      (void)src;
      topo::FlowResult fr;
      const auto& sink = *sinks[dst];
      fr.bytes = sink.payload_bytes();
      fr.elapsed = config.udp_duration;
      fr.completed = true;
      fr.throughput_mbps = sink.goodput_mbps(config.udp_duration);
      result.flows.push_back(fr);
      break;  // sinks aggregate all sessions at one receiver
    }
  }

  result.sim_time = simulation.now().since_origin();
  for (const auto& node : nodes) {
    result.node_stats.push_back(node->mac_stats());
  }
  return result;
}

}  // namespace hydra::app
