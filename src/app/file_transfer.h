// One-way TCP file transfer (paper §5: a 0.2 Mbyte file, MSS 1357).
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.h"
#include "sim/timer.h"
#include "transport/tcp.h"

namespace hydra::app {

// Sender: connects and pushes `file_bytes`, then closes.
class FileSenderApp {
 public:
  FileSenderApp(sim::Simulation& simulation, net::Node& node,
                proto::Endpoint destination, std::uint64_t file_bytes,
                transport::TcpConfig tcp = {});

  // Begins the transfer at `at` (simulation time).
  void start(sim::TimePoint at = sim::TimePoint::origin());

  bool send_complete() const { return send_complete_; }
  sim::TimePoint started_at() const { return started_at_; }
  sim::TimePoint completed_at() const { return completed_at_; }
  std::uint64_t file_bytes() const { return file_bytes_; }
  const transport::TcpConnection* connection() const { return connection_; }

 private:
  void begin();

  sim::Simulation& sim_;
  net::Node& node_;
  proto::Endpoint destination_;
  std::uint64_t file_bytes_;
  transport::TcpConfig tcp_config_;
  sim::Timer start_timer_;
  transport::TcpConnection* connection_ = nullptr;
  bool send_complete_ = false;
  sim::TimePoint started_at_;
  sim::TimePoint completed_at_;
};

// Receiver: accepts connections on a port and tracks per-flow delivery.
// `expected_bytes` lets it record the end-to-end completion instant the
// paper's throughput numbers are based on.
class FileReceiverApp {
 public:
  struct Flow {
    std::uint64_t received = 0;
    bool complete = false;
    sim::TimePoint first_byte;
    sim::TimePoint completed_at;
  };

  FileReceiverApp(sim::Simulation& simulation, net::Node& node,
                  proto::Port port, std::uint64_t expected_bytes,
                  transport::TcpConfig tcp = {});

  std::size_t flow_count() const { return flows_.size(); }
  const Flow& flow(std::size_t i) const { return flows_.at(i); }
  // Accepted connection behind flow i (accept order), for transport
  // stats harvesting. Owned by the node's mux, outliving this app.
  const transport::TcpConnection& connection(std::size_t i) const {
    return *connections_.at(i);
  }
  std::uint64_t total_received() const;
  bool all_complete(std::size_t expected_flows) const;

 private:
  sim::Simulation& sim_;
  std::uint64_t expected_bytes_;
  std::vector<Flow> flows_;
  std::vector<const transport::TcpConnection*> connections_;
};

}  // namespace hydra::app
