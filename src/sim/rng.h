// Deterministic random number source for the simulation.
//
// One Rng per Simulation, explicitly seeded: identical configurations
// replay identical traces, which the regression tests rely on.
#pragma once

#include <cstdint>
#include <random>

#include "sim/turn.h"
#include "util/thread_annotations.h"

namespace hydra::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);
  // Uniform double in [0, 1).
  double uniform();
  // True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p);
  // Exponentially distributed duration with the given mean (seconds).
  double exponential(double mean);

  // Direct engine access for pre-run setup (scenario placement, seeding
  // helpers). Outside the analysis on purpose: no simulation events are
  // in flight when it is legitimately used, so there is no turn to
  // hold — callers drawing mid-run must go through the methods above.
  std::mt19937_64& engine() NO_THREAD_SAFETY_ANALYSIS { return engine_; }

 private:
  // One global draw sequence: a parallel-window event must take its
  // exact serial turn before consuming engine state (rng.cc), or draw
  // order — and with it every error-model outcome — would depend on
  // thread timing.
  std::mt19937_64 engine_ GUARDED_BY(shared_turn);
};

}  // namespace hydra::sim
