// Deterministic random number source for the simulation.
//
// One Rng per Simulation, explicitly seeded: identical configurations
// replay identical traces, which the regression tests rely on.
#pragma once

#include <cstdint>
#include <random>

namespace hydra::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);
  // Uniform double in [0, 1).
  double uniform();
  // True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p);
  // Exponentially distributed duration with the given mean (seconds).
  double exponential(double mean);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hydra::sim
