#include "sim/rng.h"

#include "sim/scheduler.h"
#include "util/assert.h"

namespace hydra::sim {

// Every method that consumes engine_ state takes the shared turn first:
// the engine is one global draw sequence, so parallel-window events must
// draw from it in exactly the serial order. (bernoulli's p<=0 / p>=1
// short-circuits draw nothing and so need no turn — matching the fact
// that they leave the serial draw sequence untouched too.)

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  HYDRA_ASSERT(lo <= hi);
  Scheduler::acquire_shared_turn();
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

double Rng::uniform() {
  Scheduler::acquire_shared_turn();
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  HYDRA_ASSERT(mean > 0.0);
  Scheduler::acquire_shared_turn();
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

}  // namespace hydra::sim
