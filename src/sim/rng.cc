#include "sim/rng.h"

#include "util/assert.h"

namespace hydra::sim {

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  HYDRA_ASSERT(lo <= hi);
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  HYDRA_ASSERT(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

}  // namespace hydra::sim
