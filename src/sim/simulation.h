// Simulation context: the scheduler + RNG pair every component shares.
#pragma once

#include <cstdint>

#include "sim/rng.h"
#include "sim/scheduler.h"

namespace hydra::sim {

// Root object of a simulation run. Owns the event loop and the random
// source; every protocol entity receives a Simulation& and must not
// outlive it.
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Scheduler& scheduler() { return scheduler_; }
  Rng& rng() { return rng_; }
  TimePoint now() const { return scheduler_.now(); }

  // Convenience passthrough: selects serial or parallel-window event
  // execution (see sim::ExecutionPolicy). Behaviour-neutral by contract.
  void set_execution(ExecutionPolicy policy, unsigned workers = 0) {
    scheduler_.set_execution(policy, workers);
  }

  // Runs until no events remain.
  void run() { scheduler_.run(); }
  // Runs until the given simulated instant.
  void run_until(TimePoint deadline) { scheduler_.run_until(deadline); }
  void run_for(Duration d) { scheduler_.run_until(scheduler_.now() + d); }

 private:
  Scheduler scheduler_;
  Rng rng_;
};

}  // namespace hydra::sim
