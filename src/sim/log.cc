#include "sim/log.h"

#include <cstdio>

#include "sim/scheduler.h"

namespace hydra::sim {

LogLevel Log::level_ = LogLevel::kNone;
const Scheduler* Log::clock_ = nullptr;

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kNone: break;
  }
  return "?    ";
}
}  // namespace

void Log::write(LogLevel level, const char* component, const char* fmt, ...) {
  const double t = clock_ ? clock_->now().seconds_f() : 0.0;
  std::fprintf(stderr, "[%12.6f] %s %-8s ", t, level_name(level), component);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace hydra::sim
