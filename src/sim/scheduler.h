// Discrete-event scheduler: a stable min-heap of (time, sequence) events.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.h"

namespace hydra::sim {

// Opaque handle for cancelling a scheduled event: a slot index stamped
// with the slot's generation, so a handle goes stale the moment its
// event runs or is cancelled and the slot is reused. Id 0 is "invalid".
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return id_ != 0; }
  friend constexpr auto operator<=>(EventId, EventId) = default;

 private:
  friend class Scheduler;
  constexpr explicit EventId(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

// Single-threaded event loop. Events scheduled for the same instant run in
// scheduling order (FIFO), which keeps protocol traces deterministic.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  TimePoint now() const { return now_; }

  // Schedules `cb` to run at absolute time `at` (must not be in the past).
  EventId schedule_at(TimePoint at, Callback cb);
  // Schedules `cb` to run `delay` from now.
  EventId schedule_in(Duration delay, Callback cb);

  // One event of a batch commit.
  struct BatchEvent {
    TimePoint at;
    Callback cb;
  };
  // Commits every event of `events` (in order — the sequence numbers are
  // assigned contiguously, so same-instant FIFO semantics match N
  // schedule_at calls exactly) and restores the heap in one pass when
  // the batch is large relative to it, instead of N sift-ups. The medium
  // uses this to commit a whole transmission's delivery fan-out at once.
  // With `ids`, the EventId of every committed event is appended in
  // batch order (the ids cost nothing extra — batch events already
  // occupy cancel slots), so callers can cancel individual deliveries
  // later; without it the batch is fire-and-forget. `events` is left
  // cleared for reuse; `ids` is appended to, not cleared.
  void schedule_batch(std::vector<BatchEvent>& events,
                      std::vector<EventId>* ids = nullptr);

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or the id is invalid.
  bool cancel(EventId id);

  // True while the event is still queued (not yet run, not cancelled).
  // Stale-handle-safe, like cancel(): a reused slot reports false.
  bool pending(EventId id) const;

  // Runs events until the queue is empty. Returns the number executed.
  std::size_t run();
  // Runs events with time <= deadline; leaves later events queued and
  // advances now() to the deadline. Returns the number executed.
  std::size_t run_until(TimePoint deadline);
  // Executes at most one event. Returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return pending_count_; }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;   // tie-breaker: FIFO among same-time events
    std::uint32_t slot;  // index into slots_
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  // One live-event slot. `generation` stamps the EventId handed out for
  // the slot's current occupant; vacating the slot bumps it, so cancel()
  // can tell "still pending" from "already ran / already cancelled /
  // slot reused" with two array loads instead of hash-set lookups.
  struct Slot {
    std::uint32_t generation = 1;
    bool pending = false;
  };

  void pop_and_run();
  std::uint32_t acquire_slot();
  void vacate(std::uint32_t slot);

  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_count_ = 0;
  // Kept in heap order by the std::*_heap algorithms (not a
  // priority_queue: batch commits need to append a run of entries and
  // restore the invariant in one make_heap pass).
  std::vector<Entry> heap_;
  // Slot storage grows to the high-water mark of concurrently scheduled
  // events and is then recycled through the free list; cancelled heap
  // entries are dropped lazily when popped.
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace hydra::sim
