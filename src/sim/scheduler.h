// Discrete-event scheduler: a stable min-heap of (time, sequence) events,
// with an opt-in conservative parallel mode (Chandy–Misra-style lookahead
// windows executed on a util::TaskPool — see ExecutionPolicy below).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/time.h"
#include "sim/turn.h"
#include "util/small_fn.h"
#include "util/thread_annotations.h"

namespace hydra::sim {

// Opaque handle for cancelling a scheduled event: a slot index stamped
// with the slot's generation, so a handle goes stale the moment its
// event runs or is cancelled and the slot is reused. Id 0 is "invalid".
class EventId {
 public:
  constexpr EventId() = default;
  constexpr bool valid() const { return id_ != 0; }
  friend constexpr auto operator<=>(EventId, EventId) = default;

 private:
  friend class Scheduler;
  constexpr explicit EventId(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

// How run()/run_until() execute the queue.
//
//   kSerial           one event at a time on the calling thread (the
//                     default, and the reference semantics).
//   kParallelWindows  conservative parallel DES: a lookahead provider
//                     (the medium's minimum live-pair propagation delay)
//                     bounds a window [now, now + lookahead) in which no
//                     event can affect a different node; window events
//                     are grouped by affinity (owning node id) and the
//                     groups run concurrently on a worker pool. Events
//                     that touch cross-node shared state (the medium,
//                     the global RNG, the trace) serialize themselves in
//                     exact serial order through acquire_shared_turn(),
//                     and side-effect schedule/cancel calls commit in
//                     canonical order at the window barrier — so the
//                     observable event sequence is bit-identical to
//                     kSerial, at any worker count.
enum class ExecutionPolicy { kSerial, kParallelWindows };

// Single-threaded event loop by default; see ExecutionPolicy for the
// opt-in parallel-window mode. Events scheduled for the same instant run
// in scheduling order (FIFO), which keeps protocol traces deterministic.
class Scheduler {
 public:
  // Move-only with inline capture storage (boxed through the
  // BufferPool past 48 bytes), so scheduling an event allocates nothing
  // from the system heap in steady state. Accepts any void() callable,
  // like std::function, but is moved — never copied — through the heap.
  using Callback = util::SmallFn;
  // Returns the current safe lookahead: no event executed now may
  // schedule onto a *different* affinity sooner than now + lookahead.
  // Zero (or a negative/absent value) disables window formation and
  // falls back to serial stepping.
  using LookaheadProvider = std::function<Duration()>;

  // Affinity = the node that owns an event (kNoAffinity = untagged;
  // untagged events act as serial barriers in parallel-window mode, so
  // partial tagging is always correct, just less parallel).
  static constexpr std::uint32_t kNoAffinity = 0xFFFFFFFFu;

  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // During window execution this is the executing event's own time (the
  // scheduler-wide clock only advances at the window barrier).
  TimePoint now() const;

  // Schedules `cb` to run at absolute time `at` (must not be in the past).
  // The event's affinity is the scheduling context's: an AffinityScope
  // if one is active, else the affinity of the event being executed.
  EventId schedule_at(TimePoint at, Callback cb);
  // Schedules `cb` to run `delay` from now.
  EventId schedule_in(Duration delay, Callback cb);

  // One event of a batch commit.
  struct BatchEvent {
    TimePoint at;
    Callback cb;
    std::uint32_t affinity = kNoAffinity;
  };
  // Commits every event of `events` (in order — the sequence numbers are
  // assigned contiguously, so same-instant FIFO semantics match N
  // schedule_at calls exactly) and restores the heap in one pass when
  // the batch is large relative to it, instead of N sift-ups. The medium
  // uses this to commit a whole transmission's delivery fan-out at once.
  // With `ids`, the EventId of every committed event is appended in
  // batch order (the ids cost nothing extra — batch events already
  // occupy cancel slots), so callers can cancel individual deliveries
  // later; without it the batch is fire-and-forget. `events` is left
  // cleared for reuse; `ids` is appended to, not cleared. A BatchEvent
  // affinity of kNoAffinity inherits the scheduling context's affinity,
  // like schedule_at.
  void schedule_batch(std::vector<BatchEvent>& events,
                      std::vector<EventId>* ids = nullptr);

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or the id is invalid.
  bool cancel(EventId id);

  // True while the event is still queued (not yet run, not cancelled).
  // Stale-handle-safe, like cancel(): a reused slot reports false.
  bool pending(EventId id) const;

  // The time of the next live event, dropping any cancelled entries off
  // the head of the queue on the way; nullopt when the queue is empty.
  std::optional<TimePoint> peek_next_time();

  // Runs events until the queue is empty. Returns the number executed.
  std::size_t run();
  // Runs events with time <= deadline; leaves later events queued and
  // advances now() to the deadline. Returns the number executed.
  std::size_t run_until(TimePoint deadline);
  // Executes at most one event (always serially, regardless of policy).
  // Returns false if the queue is empty.
  bool step();

  // Selects how run()/run_until() execute. kParallelWindows spawns a
  // persistent worker pool (workers = 0 resolves to the hardware
  // concurrency, clamped to [1, 8]); switching back to kSerial releases
  // it. Changing policy never changes observable behaviour — that is
  // the whole contract — only wall-clock. Must be called between runs,
  // not from inside a callback.
  void set_execution(ExecutionPolicy policy, unsigned workers = 0);
  ExecutionPolicy execution_policy() const { return policy_; }
  unsigned execution_workers() const { return workers_; }

  // Registers the lookahead source for kParallelWindows (the medium
  // registers its min live-pair propagation delay on construction).
  // Replaces any previous provider; nullptr clears it, which makes the
  // parallel policy degrade to serial stepping.
  void set_lookahead_provider(LookaheadProvider provider);

  std::size_t pending_events() const { return pending_count_; }
  std::uint64_t executed_events() const { return executed_; }
  // Lookahead windows run by the parallel mode, and how many events ran
  // inside windows that actually had >1 concurrent group.
  std::uint64_t windows_executed() const { return windows_; }
  std::uint64_t parallel_events_executed() const { return parallel_events_; }

  // Serializes access to cross-node shared state from inside a parallel
  // window: blocks until every window event with a smaller canonical
  // (time, sequence) position has completed, so shared-state touches
  // happen in exactly the serial order. The turn is held (idempotently)
  // until the calling event finishes. A no-op outside window execution,
  // so shared subsystems (medium, RNG, trace) can call it
  // unconditionally on their hot paths. ASSERT_CAPABILITY (rather than
  // ACQUIRE) because there is no matching release call: the turn lapses
  // implicitly when the calling event's callback returns.
  static void acquire_shared_turn() ASSERT_CAPABILITY(shared_turn);

  // Tags every event scheduled while in scope with a fixed affinity,
  // overriding inheritance from the currently executing event. Used at
  // the roots of per-node activity (timer arms, a PHY's own tx-complete).
  class AffinityScope {
   public:
    explicit AffinityScope(std::uint32_t affinity);
    ~AffinityScope();
    AffinityScope(const AffinityScope&) = delete;
    AffinityScope& operator=(const AffinityScope&) = delete;

   private:
    std::uint32_t prev_;
    bool had_prev_;
  };

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;   // tie-breaker: FIFO among same-time events
    std::uint32_t slot;  // index into slots_
    std::uint32_t affinity;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  // One live-event slot. `generation` stamps the EventId handed out for
  // the slot's current occupant; vacating the slot bumps it, so cancel()
  // can tell "still pending" from "already ran / already cancelled /
  // slot reused" with two array loads instead of hash-set lookups.
  struct Slot {
    std::uint32_t generation = 1;
    bool pending = false;
  };

  // Per-thread execution context: which scheduler/event this thread is
  // currently running a callback for. Serial execution installs one so
  // children inherit affinity; window execution installs one so
  // schedule/cancel calls route to the deferred-op machinery and
  // acquire_shared_turn knows the event's canonical position.
  struct ExecContext;
  // All parallel-window state (worker pool, window bookkeeping,
  // deferred ops); allocated only while policy is kParallelWindows.
  struct WindowEngine;
  friend struct WindowEngine;

  void pop_and_run();
  std::uint32_t acquire_slot();
  void vacate(std::uint32_t slot);
  // The affinity new events get in the current context (AffinityScope
  // override first, then the executing event's, then kNoAffinity).
  static std::uint32_t current_affinity();
  // The window ExecContext of this thread iff it belongs to this
  // scheduler and a window is executing, else nullptr.
  ExecContext* window_ctx() const;

  // Forms and executes one lookahead window starting at the head of the
  // heap (events with time in [head, head + lookahead) and <= deadline,
  // up to the first untagged event). Returns false — leaving the queue
  // untouched — when no window can form (no/zero lookahead, head
  // untagged or beyond deadline); the caller then steps serially.
  bool run_parallel_window(TimePoint deadline);
  // Schedule/cancel/pending while executing inside a window.
  EventId window_schedule(TimePoint at, std::uint32_t affinity, Callback cb,
                          ExecContext& ctx);
  bool window_cancel(EventId id, ExecContext& ctx);
  bool window_pending(EventId id) const;

  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t parallel_events_ = 0;
  std::size_t pending_count_ = 0;
  ExecutionPolicy policy_ = ExecutionPolicy::kSerial;
  unsigned workers_ = 0;
  LookaheadProvider lookahead_;
  std::unique_ptr<WindowEngine> win_;
  // Kept in heap order by the std::*_heap algorithms (not a
  // priority_queue: batch commits need to append a run of entries and
  // restore the invariant in one make_heap pass).
  std::vector<Entry> heap_;
  // Slot storage grows to the high-water mark of concurrently scheduled
  // events and is then recycled through the free list; cancelled heap
  // entries are dropped lazily when popped. Concurrency discipline the
  // annotations cannot express (the guarding mutex lives in the
  // policy-dependent WindowEngine): outside window execution only the
  // run loop's thread touches slots_/free_slots_/pending_count_; inside
  // a window every access routes through the engine's op_mutex
  // (window_schedule / window_cancel / execute). The TSan CI slice
  // (`ctest -L parallel`) covers what GUARDED_BY here cannot.
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;

  static thread_local ExecContext* tl_ctx_;
  static thread_local std::uint32_t tl_affinity_override_;
  static thread_local bool tl_affinity_override_set_;
};

}  // namespace hydra::sim
