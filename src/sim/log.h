// Minimal leveled logger stamped with simulation time.
//
// Off by default (benchmarks run millions of events); enable per-component
// when debugging protocol traces:
//   sim::Log::set_level(sim::LogLevel::kDebug);
#pragma once

#include <cstdarg>
#include <string>

#include "sim/time.h"

namespace hydra::sim {

enum class LogLevel { kNone = 0, kError, kInfo, kDebug, kTrace };

class Log {
 public:
  static void set_level(LogLevel level) { level_ = level; }
  static LogLevel level() { return level_; }
  static bool enabled(LogLevel level) { return level <= level_; }

  // The scheduler whose clock stamps log lines (optional; 0.0 otherwise).
  static void set_clock(const class Scheduler* sched) { clock_ = sched; }

  static void write(LogLevel level, const char* component, const char* fmt,
                    ...) __attribute__((format(printf, 3, 4)));

 private:
  static LogLevel level_;
  static const Scheduler* clock_;
};

}  // namespace hydra::sim

#define HYDRA_LOG(level, component, ...)                              \
  do {                                                                \
    if (::hydra::sim::Log::enabled(level))                            \
      ::hydra::sim::Log::write(level, component, __VA_ARGS__);        \
  } while (0)

#define HYDRA_LOG_DEBUG(component, ...) \
  HYDRA_LOG(::hydra::sim::LogLevel::kDebug, component, __VA_ARGS__)
#define HYDRA_LOG_INFO(component, ...) \
  HYDRA_LOG(::hydra::sim::LogLevel::kInfo, component, __VA_ARGS__)
#define HYDRA_LOG_TRACE(component, ...) \
  HYDRA_LOG(::hydra::sim::LogLevel::kTrace, component, __VA_ARGS__)
