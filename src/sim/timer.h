// One-shot re-armable timer bound to a Scheduler.
//
// Protocol machines (MAC ACK timeout, TCP RTO, DCF backoff slots, delayed
// aggregation) own Timers as members; destruction cancels any pending
// firing, so a destroyed protocol object can never be called back.
#pragma once

#include <functional>
#include <utility>

#include "sim/scheduler.h"

namespace hydra::sim {

class Timer {
 public:
  Timer(Scheduler& sched, std::function<void()> on_fire)
      : sched_(sched), on_fire_(std::move(on_fire)) {}

  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // (Re)arms the timer to fire `delay` from now. An already-pending firing
  // is cancelled first.
  void arm(Duration delay) {
    cancel();
    deadline_ = sched_.now() + delay;
    id_ = sched_.schedule_at(deadline_, [this] {
      id_ = EventId();
      on_fire_();
    });
  }

  void cancel() {
    if (id_.valid()) {
      sched_.cancel(id_);
      id_ = EventId();
    }
  }

  bool pending() const { return id_.valid(); }
  // Deadline of the pending firing; meaningful only while pending().
  TimePoint deadline() const { return deadline_; }

 private:
  Scheduler& sched_;
  std::function<void()> on_fire_;
  EventId id_;
  TimePoint deadline_;
};

}  // namespace hydra::sim
