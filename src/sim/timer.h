// One-shot re-armable timer bound to a Scheduler.
//
// Protocol machines (MAC ACK timeout, TCP RTO, DCF backoff slots, delayed
// aggregation) own Timers as members; destruction cancels any pending
// firing, so a destroyed protocol object can never be called back.
#pragma once

#include <functional>
#include <utility>

#include "sim/scheduler.h"

namespace hydra::sim {

class Timer {
 public:
  Timer(Scheduler& sched, std::function<void()> on_fire)
      : sched_(sched), on_fire_(std::move(on_fire)) {}

  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  // Pins the affinity (owning node id) every future arm() schedules
  // with, instead of inheriting it from whatever event happens to be
  // executing. Protocol machines set this once at construction so their
  // timers land in the right parallel-window group even when first
  // armed from setup code.
  void set_affinity(std::uint32_t affinity) {
    affinity_ = affinity;
    has_affinity_ = true;
  }

  // (Re)arms the timer to fire `delay` from now. An already-pending firing
  // is cancelled first.
  void arm(Duration delay) {
    cancel();
    deadline_ = sched_.now() + delay;
    if (has_affinity_) {
      const Scheduler::AffinityScope scope(affinity_);
      id_ = sched_.schedule_at(deadline_, [this] {
        id_ = EventId();
        on_fire_();
      });
      return;
    }
    id_ = sched_.schedule_at(deadline_, [this] {
      id_ = EventId();
      on_fire_();
    });
  }

  void cancel() {
    if (id_.valid()) {
      sched_.cancel(id_);
      id_ = EventId();
    }
  }

  bool pending() const { return id_.valid(); }
  // Deadline of the pending firing; meaningful only while pending().
  TimePoint deadline() const { return deadline_; }

 private:
  Scheduler& sched_;
  std::function<void()> on_fire_;
  EventId id_;
  TimePoint deadline_;
  std::uint32_t affinity_ = Scheduler::kNoAffinity;
  bool has_affinity_ = false;
};

}  // namespace hydra::sim
