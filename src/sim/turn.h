// The scheduler's canonical shared turn, reified as a compile-time
// capability.
//
// In parallel-window execution, cross-node shared state (the medium's
// transmission bookkeeping, the global RNG draw sequence, the trace
// vector) may only be touched by the event whose canonical (time,
// sequence) position is the minimum incomplete one — that is what keeps
// the observable sequence bit-identical to serial execution.
// Scheduler::acquire_shared_turn() blocks until that holds and is
// annotated ASSERT_CAPABILITY(shared_turn), so under the clang
// thread-safety build (HYDRA_THREAD_SAFETY=ON) every member marked
// GUARDED_BY(sim::shared_turn) provably sits behind an acquire call on
// all paths. The object itself is an empty tag — the real gate lives in
// the scheduler's window engine; this type only gives the analysis a
// name for it.
#pragma once

#include "util/thread_annotations.h"

namespace hydra::sim {

class CAPABILITY("shared_turn") SharedTurnCapability {};

// The one global instance GUARDED_BY expressions name. Zero-size and
// stateless: it never appears in generated code, only in attributes.
inline SharedTurnCapability shared_turn;

}  // namespace hydra::sim
