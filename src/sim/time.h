// Simulation time: integer nanoseconds, strong Duration/TimePoint types.
//
// Integer arithmetic keeps event ordering exact — two events scheduled the
// same computed interval apart always compare equal, with no floating-point
// drift across a multi-second simulation.
#pragma once

#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>

namespace hydra::sim {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t v) { return Duration(v); }
  static constexpr Duration micros(std::int64_t v) {
    return Duration(v * 1'000);
  }
  static constexpr Duration millis(std::int64_t v) {
    return Duration(v * 1'000'000);
  }
  static constexpr Duration seconds(std::int64_t v) {
    return Duration(v * 1'000'000'000);
  }
  // From fractional seconds; rounds to the nearest nanosecond. Used at
  // configuration boundaries (e.g. "flood interval 0.5 s"), never in the
  // event loop.
  static constexpr Duration from_seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration infinite() {
    return Duration(INT64_MAX);
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double micros_f() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double millis_f() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.ns_ + b.ns_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.ns_ - b.ns_);
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration(a.ns_ * k);
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) {
    return a * k;
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration(a.ns_ / k);
  }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

// Absolute simulation time (nanoseconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint origin() { return TimePoint(); }
  static constexpr TimePoint at(Duration since_origin) {
    return TimePoint() + since_origin;
  }

  constexpr Duration since_origin() const {
    return Duration::nanos(ns_);
  }
  constexpr std::int64_t ns() const { return ns_; }
  constexpr double seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    TimePoint out;
    out.ns_ = t.ns_ + d.ns();
    return out;
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::nanos(a.ns_ - b.ns_);
  }

 private:
  std::int64_t ns_ = 0;
};

// "12.345678 s" style rendering for logs and table output.
inline std::string to_string(Duration d) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f s", d.seconds_f());
  return buf;
}
inline std::string to_string(TimePoint t) {
  return to_string(t.since_origin());
}

}  // namespace hydra::sim
