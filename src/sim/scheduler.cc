#include "sim/scheduler.h"

#include <algorithm>
#include <deque>
#include <thread>
#include <unordered_map>

#include "util/mutex.h"

#include "util/assert.h"
#include "util/task_pool.h"

namespace hydra::sim {

namespace {

constexpr std::uint64_t pack_id(std::uint32_t generation,
                                std::uint32_t slot) {
  return (std::uint64_t{generation} << 32) | slot;
}

}  // namespace

// Which scheduler/event the current thread is executing a callback for.
// Serial execution installs one so children inherit the event's
// affinity; window execution additionally routes schedule/cancel calls
// to the deferred-op machinery and carries the event's canonical
// position for acquire_shared_turn.
struct Scheduler::ExecContext {
  Scheduler* scheduler = nullptr;
  bool in_window = false;
  TimePoint at;  // the executing event's time: now() inside a window
  std::uint32_t affinity = kNoAffinity;
  // Index of the executing event in the engine's window deque — the
  // anchor of its canonical position (WindowEngine::exec_before).
  std::size_t ev = 0;
  std::uint32_t next_op = 0;  // schedules issued by this event so far
  bool turn_held = false;
};

// All parallel-window state. One window at a time: the main thread
// collects the window single-threadedly (begin), the pool runs one task
// per affinity group (run_group), and the main thread commits deferred
// schedules after the pool barrier. Locking discipline: win_mutex
// guards the coordinator state (events/groups/version), op_mutex guards
// the slot table and deferred-op buffers; the two are never held
// together.
struct Scheduler::WindowEngine {
  WindowEngine(Scheduler* owner, unsigned workers)
      : owner(owner), pool(workers) {}

  // No creator: the event was already queued when the window formed.
  static constexpr std::size_t kNoCreator = ~std::size_t{0};

  struct Event {
    TimePoint at;
    std::uint32_t slot;
    std::uint32_t affinity;
    // Canonical position = (creator chain, idx): for an initial event,
    // idx is its collection (heap pop) order and creator is kNoCreator;
    // for a same-window child, creator indexes the event whose callback
    // scheduled it and idx is the creation order within that creator.
    // exec_before() turns this into exactly the serial (time, sequence)
    // order, at any chain depth.
    std::size_t creator;
    std::uint32_t idx;
    enum class State : std::uint8_t { kReady, kRunning, kDone };
    State state;
    Callback cb;
  };
  // One affinity's window events, in canonical-key order. Execution
  // within a group is strictly sequential (`busy` + the head pointer);
  // distinct groups run concurrently.
  struct Group {
    std::vector<std::size_t> members;  // indices into `events`
    std::size_t next = 0;              // first member not yet done
    bool busy = false;                 // a member is currently running
  };
  // A schedule issued inside the window that lands at or after the
  // window end: buffered, then committed in canonical creator order at
  // the barrier so sequence numbers match serial execution.
  struct PendingOp {
    std::size_t creator;  // index of the issuing event in `events`
    std::uint32_t op;     // creation order within the creator
    TimePoint at;
    std::uint32_t slot;
    std::uint32_t affinity;
    Callback cb;
  };

  // ---- coordinator state (win_mutex) --------------------------------
  util::Mutex win_mutex;
  util::CondVar cv;
  // Bumped on every state change (cv ticket).
  std::uint64_t version GUARDED_BY(win_mutex) = 0;
  // Deque: add_child appends mid-window and references to claimed
  // events must stay stable. Every access — including taking a
  // reference — happens under win_mutex.
  std::deque<Event> events GUARDED_BY(win_mutex);
  std::vector<Group> groups GUARDED_BY(win_mutex);
  // affinity -> group index
  std::unordered_map<std::uint32_t, std::size_t> group_of  // hydra-lint: allow(unordered-member) — lookup-only (try_emplace/at); never iterated, so its order cannot leak into the event sequence
      GUARDED_BY(win_mutex);
  std::uint64_t ran GUARDED_BY(win_mutex) = 0;  // events that executed
  // max at among them: the barrier's now().
  TimePoint last_ran_at GUARDED_BY(win_mutex);

  // ---- deferred-op state (op_mutex) ---------------------------------
  util::Mutex op_mutex;
  TimePoint window_end GUARDED_BY(op_mutex);
  std::vector<PendingOp> pending_ops GUARDED_BY(op_mutex);
  // slot -> affinity for events living inside the current window (both
  // collected ones and same-window children): lets window_cancel tell a
  // legal same-node cancel from a cross-node one.
  std::unordered_map<std::uint32_t, std::uint32_t> resident_affinity  // hydra-lint: allow(unordered-member) — find/erase/empty only; never iterated, so its order cannot leak into the event sequence
      GUARDED_BY(op_mutex);

  Scheduler* owner;
  util::TaskPool pool;
  // Main-thread-only scratch (reused across windows): collect_buf feeds
  // begin(), commit_buf drains pending_ops at the barrier. Neither is
  // ever touched while the pool is running a batch.
  std::vector<Entry> collect_buf;
  std::vector<PendingOp> commit_buf;

  // Builds the per-window state from the collected (heap-order) events.
  // Runs single-threaded and lock-free on purpose: no worker can touch
  // this state until the pool's batch handoff publishes it (the workers
  // observe the generation bump under the pool's own mutex), a
  // publication protocol the analysis cannot follow — hence the escape.
  void begin(std::vector<Entry>& collected,
             TimePoint end) NO_THREAD_SAFETY_ANALYSIS {
    events.clear();
    groups.clear();
    group_of.clear();
    pending_ops.clear();
    resident_affinity.clear();
    window_end = end;
    ran = 0;
    last_ran_at = TimePoint::origin();
    for (auto& entry : collected) {
      const std::size_t i = events.size();
      events.push_back(Event{entry.at, entry.slot, entry.affinity, kNoCreator,
                             static_cast<std::uint32_t>(i),
                             Event::State::kReady, std::move(entry.cb)});
      const auto [it, inserted] =
          group_of.try_emplace(entry.affinity, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].members.push_back(i);
      resident_affinity.emplace(entry.slot, entry.affinity);
    }
    collected.clear();
  }

  // Strict total order: true iff serial execution runs `a` before `b`.
  // Time-major; at equal instants the serial tie-break is the sequence
  // number, reconstructed structurally: initial events carry pre-window
  // sequences (collection order, below every child's), and children are
  // sequenced in creation order — by creator execution order, then by
  // op within one creator. Recurses up the creator chain, whose depth is
  // bounded by the window's same-node event count. Static over an
  // explicit `events` so callers holding win_mutex can alias the member
  // once and use the comparator from a sort lambda (which the analysis
  // treats as a separate, unannotated function).
  static bool exec_before(const std::deque<Event>& events, std::size_t ai,
                          std::size_t bi) {
    const Event& a = events[ai];
    const Event& b = events[bi];
    if (a.at != b.at) return a.at < b.at;
    if (a.creator == b.creator) return a.idx < b.idx;  // incl. both initial
    if (a.creator == kNoCreator) return true;
    if (b.creator == kNoCreator) return false;
    return exec_before(events, a.creator, b.creator);
  }

  // Runs (or skips, when cancelled) one claimed event. Called without
  // win_mutex; the caller marked it kRunning and set its group busy
  // (which is what makes the unlocked reference to `e` safe: a claimed
  // event is owned by exactly one thread until finish_locked).
  bool execute(std::size_t ei, Event& e) EXCLUDES(win_mutex, op_mutex) {
    bool live = false;
    {
      const util::MutexLock lock(op_mutex);
      if (owner->slots_[e.slot].pending) {
        live = true;
        --owner->pending_count_;
      }
      owner->vacate(e.slot);
      resident_affinity.erase(e.slot);
    }
    if (!live) return false;
    ExecContext ctx;
    ctx.scheduler = owner;
    ctx.in_window = true;
    ctx.at = e.at;
    ctx.affinity = e.affinity;
    ctx.ev = ei;
    ExecContext* const prev = tl_ctx_;
    tl_ctx_ = &ctx;
    e.cb();
    tl_ctx_ = prev;
    return true;
  }

  // Marks a claimed event done and wakes every waiter (group runners
  // blocked on a stolen head, turn waiters watching the minimum).
  void finish_locked(Group& g, Event& e, bool did_run) REQUIRES(win_mutex) {
    e.state = Event::State::kDone;
    ++g.next;
    g.busy = false;
    if (did_run) {
      ++ran;
      if (last_ran_at < e.at) last_ran_at = e.at;
    }
    ++version;
    cv.notify_all();
  }

  // One pool task: drain this group's members in canonical order.
  void run_group(std::size_t gi) EXCLUDES(win_mutex, op_mutex) {
    util::MutexLock lock(win_mutex);
    Group& g = groups[gi];
    for (;;) {
      if (g.next >= g.members.size()) {
        // A stolen member may still be running; the pool barrier must
        // mean "group complete", so wait it out.
        if (!g.busy) return;
        const std::uint64_t v = version;
        while (version == v) cv.wait(win_mutex);
        continue;
      }
      Event& head = events[g.members[g.next]];
      if (g.busy || head.state != Event::State::kReady) {
        // The head was claimed by a turn-waiter's helper-steal; wait
        // for it to finish rather than double-running it.
        const std::uint64_t v = version;
        while (version == v) cv.wait(win_mutex);
        continue;
      }
      head.state = Event::State::kRunning;
      g.busy = true;
      const std::size_t head_idx = g.members[g.next];
      lock.unlock();
      const bool did = execute(head_idx, head);
      lock.lock();
      finish_locked(g, head, did);
    }
  }

  // Blocks the calling window event until its canonical position is the
  // minimum incomplete one. Deadlock-free: the minimum is either ready
  // (helper-steal runs it inline right here — essential on a 1-worker
  // pool, where group tasks run sequentially) or already running on a
  // thread that, by the same rule, can always make progress.
  void wait_for_turn(ExecContext& ctx) EXCLUDES(win_mutex, op_mutex) {
    util::MutexLock lock(win_mutex);
    for (;;) {
      std::size_t min_gi = groups.size();
      std::size_t min_ev = kNoCreator;
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const Group& g = groups[gi];
        if (g.next >= g.members.size()) continue;
        const std::size_t head = g.members[g.next];
        if (min_ev == kNoCreator || exec_before(events, head, min_ev)) {
          min_ev = head;
          min_gi = gi;
        }
      }
      // The caller itself is incomplete, so a minimum always exists and
      // is never past the caller.
      HYDRA_ASSERT(min_gi < groups.size() &&
                   (min_ev == ctx.ev || exec_before(events, min_ev, ctx.ev)));
      if (min_ev == ctx.ev) {
        // Held implicitly until the event completes: it stays its
        // group's incomplete head, so the minimum cannot move past it.
        ctx.turn_held = true;
        return;
      }
      Group& g = groups[min_gi];
      Event& head = events[min_ev];
      if (head.state == Event::State::kReady) {
        // The global minimum never blocks (everything smaller is done,
        // and its children sort after it), so inlining it here always
        // terminates. busy would imply the head is running, not ready.
        HYDRA_ASSERT(!g.busy);
        head.state = Event::State::kRunning;
        g.busy = true;
        lock.unlock();
        const bool did = execute(min_ev, head);
        lock.lock();
        finish_locked(g, head, did);
        continue;
      }
      const std::uint64_t v = version;
      while (version == v) cv.wait(win_mutex);
    }
  }

  // Registers a schedule that lands inside the current window: it joins
  // its creator's group at the canonical position serial execution
  // would give it.
  void add_child(TimePoint at, std::uint32_t slot, const ExecContext& ctx,
                 std::uint32_t op, Callback cb) EXCLUDES(win_mutex) {
    const util::MutexLock lock(win_mutex);
    const std::size_t idx = events.size();
    events.push_back(Event{at, slot, ctx.affinity, ctx.ev, op,
                           Event::State::kReady, std::move(cb)});
    Group& g = groups[group_of.at(ctx.affinity)];
    // Insert in canonical order among the unrun members. The creator is
    // the running head (members[next]) and the child sorts strictly
    // after it, so the position is strictly past the head.
    auto pos = g.members.end();
    const auto floor =
        g.members.begin() + static_cast<std::ptrdiff_t>(g.next) + 1;
    while (pos != floor && exec_before(events, idx, *(pos - 1))) --pos;
    g.members.insert(pos, idx);
    ++version;
    cv.notify_all();
  }
};

thread_local Scheduler::ExecContext* Scheduler::tl_ctx_ = nullptr;
thread_local std::uint32_t Scheduler::tl_affinity_override_ =
    Scheduler::kNoAffinity;
thread_local bool Scheduler::tl_affinity_override_set_ = false;

Scheduler::Scheduler() = default;
Scheduler::~Scheduler() = default;

Scheduler::AffinityScope::AffinityScope(std::uint32_t affinity)
    : prev_(tl_affinity_override_), had_prev_(tl_affinity_override_set_) {
  tl_affinity_override_ = affinity;
  tl_affinity_override_set_ = true;
}

Scheduler::AffinityScope::~AffinityScope() {
  tl_affinity_override_ = prev_;
  tl_affinity_override_set_ = had_prev_;
}

std::uint32_t Scheduler::current_affinity() {
  if (tl_affinity_override_set_) return tl_affinity_override_;
  if (const ExecContext* ctx = tl_ctx_) return ctx->affinity;
  return kNoAffinity;
}

Scheduler::ExecContext* Scheduler::window_ctx() const {
  ExecContext* const ctx = tl_ctx_;
  return (ctx != nullptr && ctx->scheduler == this && ctx->in_window)
             ? ctx
             : nullptr;
}

TimePoint Scheduler::now() const {
  if (const ExecContext* ctx = window_ctx()) return ctx->at;
  return now_;
}

void Scheduler::set_execution(ExecutionPolicy policy, unsigned workers) {
  HYDRA_ASSERT_MSG(tl_ctx_ == nullptr || tl_ctx_->scheduler != this,
                   "cannot change execution policy from inside a callback");
  policy_ = policy;
  if (policy == ExecutionPolicy::kSerial) {
    win_.reset();
    workers_ = 0;
    return;
  }
  if (workers == 0) {
    workers = std::clamp(std::thread::hardware_concurrency(), 1u, 8u);
  }
  if (win_ && workers_ == workers) return;
  win_.reset();
  win_ = std::make_unique<WindowEngine>(this, workers);
  workers_ = workers;
}

void Scheduler::set_lookahead_provider(LookaheadProvider provider) {
  lookahead_ = std::move(provider);
}

void Scheduler::acquire_shared_turn() {
  ExecContext* const ctx = tl_ctx_;
  if (ctx == nullptr || !ctx->in_window || ctx->turn_held) return;
  ctx->scheduler->win_->wait_for_turn(*ctx);
}

std::uint32_t Scheduler::acquire_slot() {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  slots_[slot].pending = true;
  ++pending_count_;
  return slot;
}

EventId Scheduler::window_schedule(TimePoint at, std::uint32_t affinity,
                                   Callback cb, ExecContext& ctx) {
  HYDRA_ASSERT_MSG(at >= ctx.at, "cannot schedule into the past");
  HYDRA_ASSERT(cb != nullptr);
  const std::uint32_t op = ctx.next_op++;
  std::uint32_t slot;
  EventId id;
  bool child;
  {
    // The slot is acquired eagerly so the id is valid (and pending())
    // true) the moment this returns; slot *numbers* are allocation-order
    // dependent across threads, but they are unobservable — nothing in
    // a simulation's behaviour reads them.
    const util::MutexLock lock(win_->op_mutex);
    slot = acquire_slot();
    id = EventId(pack_id(slots_[slot].generation, slot));
    child = at < win_->window_end;
    if (!child) {
      win_->pending_ops.push_back(WindowEngine::PendingOp{
          ctx.ev, op, at, slot, affinity, std::move(cb)});
    } else {
      win_->resident_affinity.emplace(slot, ctx.affinity);
    }
  }
  if (child) {
    // A same-window child must stay on its creator's node: anything else
    // would be a cross-node effect inside the lookahead horizon, which
    // the lookahead provider's contract rules out (the medium's fan-outs
    // always land at >= now + lookahead). The assert is the tripwire for
    // a provider that over-promises.
    HYDRA_ASSERT_MSG(affinity == ctx.affinity,
                     "a same-window child must stay on its creator's node");
    win_->add_child(at, slot, ctx, op, std::move(cb));
  }
  return id;
}

EventId Scheduler::schedule_at(TimePoint at, Callback cb) {
  if (ExecContext* const ctx = window_ctx()) {
    return window_schedule(at, current_affinity(), std::move(cb), *ctx);
  }
  HYDRA_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  HYDRA_ASSERT(cb != nullptr);
  const std::uint32_t slot = acquire_slot();
  heap_.push_back(
      Entry{at, next_seq_++, slot, current_affinity(), std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  // generation >= 1 always, so a packed id is never 0 (the invalid id).
  return EventId(pack_id(slots_[slot].generation, slot));
}

EventId Scheduler::schedule_in(Duration delay, Callback cb) {
  HYDRA_ASSERT_MSG(!delay.is_negative(), "negative delay");
  return schedule_at(now() + delay, std::move(cb));
}

void Scheduler::schedule_batch(std::vector<BatchEvent>& events,
                               std::vector<EventId>* ids) {
  if (events.empty()) return;
  if (ExecContext* const ctx = window_ctx()) {
    if (ids) ids->reserve(ids->size() + events.size());
    for (auto& event : events) {
      const std::uint32_t affinity = event.affinity == kNoAffinity
                                         ? current_affinity()
                                         : event.affinity;
      const EventId id =
          window_schedule(event.at, affinity, std::move(event.cb), *ctx);
      if (ids) ids->push_back(id);
    }
    events.clear();
    return;
  }
  const std::size_t existing = heap_.size();
  heap_.reserve(existing + events.size());
  if (ids) ids->reserve(ids->size() + events.size());
  for (auto& event : events) {
    HYDRA_ASSERT_MSG(event.at >= now_, "cannot schedule into the past");
    HYDRA_ASSERT(event.cb != nullptr);
    const std::uint32_t slot = acquire_slot();
    if (ids) ids->push_back(EventId(pack_id(slots_[slot].generation, slot)));
    const std::uint32_t affinity = event.affinity == kNoAffinity
                                       ? current_affinity()
                                       : event.affinity;
    heap_.push_back(
        Entry{event.at, next_seq_++, slot, affinity, std::move(event.cb)});
  }
  // Restore the heap invariant: k sift-ups cost O(k log n) and one
  // make_heap pass costs O(n), so a batch that is small next to the
  // heap sifts and a dominating one (a large delivery fan-out into a
  // quiet heap) heapifies in one sweep.
  if (events.size() >= existing / 8) {
    std::make_heap(heap_.begin(), heap_.end(), Later{});
  } else {
    for (std::size_t i = existing; i < heap_.size(); ++i) {
      std::push_heap(heap_.begin(),
                     heap_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     Later{});
    }
  }
  events.clear();
}

bool Scheduler::window_cancel(EventId id, ExecContext& ctx) {
  const auto slot = static_cast<std::uint32_t>(id.id_);
  const auto generation = static_cast<std::uint32_t>(id.id_ >> 32);
  const util::MutexLock lock(win_->op_mutex);
  if (slot >= slots_.size()) return false;
  auto& s = slots_[slot];
  if (s.generation != generation || !s.pending) return false;
  const auto res = win_->resident_affinity.find(slot);
  if (res != win_->resident_affinity.end()) {
    // Cancelling an event that lives inside this same window is only
    // deterministic within one group (group order == serial order);
    // across groups the outcome would depend on thread timing.
    HYDRA_ASSERT_MSG(res->second == ctx.affinity,
                     "cross-node cancel of an event inside the window");
  }
  s.pending = false;
  --pending_count_;
  return true;
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  if (ExecContext* const ctx = window_ctx()) return window_cancel(id, *ctx);
  const auto slot = static_cast<std::uint32_t>(id.id_);
  const auto generation = static_cast<std::uint32_t>(id.id_ >> 32);
  if (slot >= slots_.size()) return false;
  auto& s = slots_[slot];
  // A stale generation means the event already ran (or was already
  // cancelled) and the slot moved on; cancelling it is a no-op that must
  // report failure.
  if (s.generation != generation || !s.pending) return false;
  // Lazy deletion: clear the pending flag; the heap entry is dropped
  // (and the slot vacated) when it surfaces.
  s.pending = false;
  --pending_count_;
  return true;
}

bool Scheduler::window_pending(EventId id) const {
  const auto slot = static_cast<std::uint32_t>(id.id_);
  const auto generation = static_cast<std::uint32_t>(id.id_ >> 32);
  const util::MutexLock lock(win_->op_mutex);
  if (slot >= slots_.size()) return false;
  const auto& s = slots_[slot];
  return s.generation == generation && s.pending;
}

bool Scheduler::pending(EventId id) const {
  if (!id.valid()) return false;
  if (window_ctx() != nullptr) return window_pending(id);
  const auto slot = static_cast<std::uint32_t>(id.id_);
  const auto generation = static_cast<std::uint32_t>(id.id_ >> 32);
  if (slot >= slots_.size()) return false;
  const auto& s = slots_[slot];
  return s.generation == generation && s.pending;
}

void Scheduler::vacate(std::uint32_t slot) {
  auto& s = slots_[slot];
  s.pending = false;
  // Bumping the generation invalidates every id handed out for this
  // occupancy. Wrap-around after 2^32 reuses of one slot is accepted:
  // a handle would have to be held across four billion rearms of the
  // same slot to alias.
  ++s.generation;
  if (s.generation == 0) s.generation = 1;  // keep packed ids non-zero
  free_slots_.push_back(slot);
}

std::optional<TimePoint> Scheduler::peek_next_time() {
  while (!heap_.empty()) {
    if (slots_[heap_.front().slot].pending) return heap_.front().at;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    vacate(heap_.back().slot);
    heap_.pop_back();
  }
  return std::nullopt;
}

void Scheduler::pop_and_run() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  const bool live = slots_[entry.slot].pending;
  vacate(entry.slot);
  if (!live) return;  // cancelled; already discounted from pending_count_
  --pending_count_;
  HYDRA_ASSERT(entry.at >= now_);
  now_ = entry.at;
  ++executed_;
  // Children scheduled from the callback inherit the event's affinity.
  ExecContext ctx;
  ctx.scheduler = this;
  ctx.at = entry.at;
  ctx.affinity = entry.affinity;
  ExecContext* const prev = tl_ctx_;
  tl_ctx_ = &ctx;
  entry.cb();
  tl_ctx_ = prev;
}

bool Scheduler::run_parallel_window(TimePoint deadline) {
  if (!win_ || !lookahead_) return false;
  const Duration look = lookahead_();
  if (look <= Duration::zero() || look == Duration::infinite()) return false;
  WindowEngine& win = *win_;
  // The caller peeked, so the head is live; its time anchors the window.
  const TimePoint window_end = heap_.front().at + look;
  auto& collected = win.collect_buf;
  collected.clear();
  while (!heap_.empty()) {
    const Entry& head = heap_.front();
    if (head.at >= window_end || head.at > deadline) break;
    if (!slots_[head.slot].pending) {  // cancelled: drop lazily
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      vacate(heap_.back().slot);
      heap_.pop_back();
      continue;
    }
    // An untagged event may touch anything, so it fences the window:
    // everything before it runs in the window, it runs serially after
    // the barrier. Partially tagged workloads stay correct, just less
    // parallel.
    if (head.affinity == kNoAffinity) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    collected.push_back(std::move(heap_.back()));
    heap_.pop_back();
  }
  if (collected.empty()) return false;
  win.begin(collected, window_end);

  const std::size_t group_count = win.groups.size();
  win.pool.parallel_for(group_count,
                        [&win](std::size_t gi) { win.run_group(gi); });

  // ---- barrier: advance the clock, commit deferred schedules --------
  // The pool barrier means every worker is done, so this section is
  // single-threaded again; the locks below are uncontended and taken
  // one at a time (win_mutex and op_mutex are never held together —
  // the deferred ops move through the main-thread commit_buf between
  // the two critical sections).
  {
    const util::MutexLock lock(win.win_mutex);
    if (win.ran > 0) {
      HYDRA_ASSERT(win.last_ran_at >= now_);
      now_ = win.last_ran_at;
      executed_ += win.ran;
    }
    ++windows_;
    if (group_count > 1) parallel_events_ += win.ran;
  }

  auto& ops = win.commit_buf;
  {
    const util::MutexLock lock(win.op_mutex);
    ops.swap(win.pending_ops);
  }
  if (!ops.empty()) {
    // Canonical creator order: exactly the order serial execution would
    // have issued these schedules in, so the contiguous sequence
    // numbers assigned here reproduce serial same-instant FIFO. The
    // comparator recurses through the window's event records, so the
    // sort runs under win_mutex (aliased locally: the analysis cannot
    // follow lock state into the sort lambda).
    {
      const util::MutexLock lock(win.win_mutex);
      const auto& events = win.events;
      std::sort(ops.begin(), ops.end(),
                [&events](const WindowEngine::PendingOp& a,
                          const WindowEngine::PendingOp& b) {
                  if (a.creator != b.creator) {
                    return WindowEngine::exec_before(events, a.creator,
                                                     b.creator);
                  }
                  return a.op < b.op;
                });
    }
    const std::size_t existing = heap_.size();
    heap_.reserve(existing + ops.size());
    for (auto& op : ops) {
      HYDRA_ASSERT(op.at >= now_);
      // A deferred schedule cancelled later in the same window kept its
      // slot non-pending; pushing it anyway reproduces the serial lazy
      // cancel (the entry is dropped when it surfaces).
      heap_.push_back(
          Entry{op.at, next_seq_++, op.slot, op.affinity, std::move(op.cb)});
    }
    if (ops.size() >= existing / 8) {
      std::make_heap(heap_.begin(), heap_.end(), Later{});
    } else {
      for (std::size_t i = existing; i < heap_.size(); ++i) {
        std::push_heap(heap_.begin(),
                       heap_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       Later{});
      }
    }
    ops.clear();
  }
  {
    // Every resident either ran or was dropped as cancelled by its
    // group.
    const util::MutexLock lock(win.op_mutex);
    HYDRA_ASSERT(win.resident_affinity.empty());
  }
  return true;
}

std::size_t Scheduler::run() {
  const auto before = executed_;
  while (peek_next_time()) {
    if (policy_ == ExecutionPolicy::kParallelWindows &&
        run_parallel_window(TimePoint::at(Duration::infinite()))) {
      continue;
    }
    pop_and_run();
  }
  return executed_ - before;
}

std::size_t Scheduler::run_until(TimePoint deadline) {
  const auto before = executed_;
  for (;;) {
    const auto next = peek_next_time();
    if (!next || *next > deadline) break;
    if (policy_ == ExecutionPolicy::kParallelWindows &&
        run_parallel_window(deadline)) {
      continue;
    }
    pop_and_run();
  }
  if (now_ < deadline) now_ = deadline;
  return executed_ - before;
}

bool Scheduler::step() {
  if (!peek_next_time()) return false;
  pop_and_run();
  return true;
}

}  // namespace hydra::sim
