#include "sim/scheduler.h"

#include <algorithm>

#include "util/assert.h"

namespace hydra::sim {

namespace {

constexpr std::uint64_t pack_id(std::uint32_t generation,
                                std::uint32_t slot) {
  return (std::uint64_t{generation} << 32) | slot;
}

}  // namespace

std::uint32_t Scheduler::acquire_slot() {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  slots_[slot].pending = true;
  ++pending_count_;
  return slot;
}

EventId Scheduler::schedule_at(TimePoint at, Callback cb) {
  HYDRA_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  HYDRA_ASSERT(cb != nullptr);
  const std::uint32_t slot = acquire_slot();
  heap_.push_back(Entry{at, next_seq_++, slot, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  // generation >= 1 always, so a packed id is never 0 (the invalid id).
  return EventId(pack_id(slots_[slot].generation, slot));
}

EventId Scheduler::schedule_in(Duration delay, Callback cb) {
  HYDRA_ASSERT_MSG(!delay.is_negative(), "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

void Scheduler::schedule_batch(std::vector<BatchEvent>& events,
                               std::vector<EventId>* ids) {
  if (events.empty()) return;
  const std::size_t existing = heap_.size();
  heap_.reserve(existing + events.size());
  if (ids) ids->reserve(ids->size() + events.size());
  for (auto& event : events) {
    HYDRA_ASSERT_MSG(event.at >= now_, "cannot schedule into the past");
    HYDRA_ASSERT(event.cb != nullptr);
    const std::uint32_t slot = acquire_slot();
    if (ids) ids->push_back(EventId(pack_id(slots_[slot].generation, slot)));
    heap_.push_back(Entry{event.at, next_seq_++, slot, std::move(event.cb)});
  }
  // Restore the heap invariant: k sift-ups cost O(k log n) and one
  // make_heap pass costs O(n), so a batch that is small next to the
  // heap sifts and a dominating one (a large delivery fan-out into a
  // quiet heap) heapifies in one sweep.
  if (events.size() >= existing / 8) {
    std::make_heap(heap_.begin(), heap_.end(), Later{});
  } else {
    for (std::size_t i = existing; i < heap_.size(); ++i) {
      std::push_heap(heap_.begin(),
                     heap_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     Later{});
    }
  }
  events.clear();
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto slot = static_cast<std::uint32_t>(id.id_);
  const auto generation = static_cast<std::uint32_t>(id.id_ >> 32);
  if (slot >= slots_.size()) return false;
  auto& s = slots_[slot];
  // A stale generation means the event already ran (or was already
  // cancelled) and the slot moved on; cancelling it is a no-op that must
  // report failure.
  if (s.generation != generation || !s.pending) return false;
  // Lazy deletion: clear the pending flag; the heap entry is dropped
  // (and the slot vacated) when it surfaces.
  s.pending = false;
  --pending_count_;
  return true;
}

bool Scheduler::pending(EventId id) const {
  if (!id.valid()) return false;
  const auto slot = static_cast<std::uint32_t>(id.id_);
  const auto generation = static_cast<std::uint32_t>(id.id_ >> 32);
  if (slot >= slots_.size()) return false;
  const auto& s = slots_[slot];
  return s.generation == generation && s.pending;
}

void Scheduler::vacate(std::uint32_t slot) {
  auto& s = slots_[slot];
  s.pending = false;
  // Bumping the generation invalidates every id handed out for this
  // occupancy. Wrap-around after 2^32 reuses of one slot is accepted:
  // a handle would have to be held across four billion rearms of the
  // same slot to alias.
  ++s.generation;
  if (s.generation == 0) s.generation = 1;  // keep packed ids non-zero
  free_slots_.push_back(slot);
}

void Scheduler::pop_and_run() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  const bool live = slots_[entry.slot].pending;
  vacate(entry.slot);
  if (!live) return;  // cancelled; already discounted from pending_count_
  --pending_count_;
  HYDRA_ASSERT(entry.at >= now_);
  now_ = entry.at;
  ++executed_;
  entry.cb();
}

std::size_t Scheduler::run() {
  const auto before = executed_;
  while (!heap_.empty()) pop_and_run();
  return executed_ - before;
}

std::size_t Scheduler::run_until(TimePoint deadline) {
  const auto before = executed_;
  while (!heap_.empty() && heap_.front().at <= deadline) pop_and_run();
  if (now_ < deadline) now_ = deadline;
  return executed_ - before;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const auto before = executed_;
    pop_and_run();
    // pop_and_run may have dropped a cancelled entry without executing.
    if (executed_ > before) return true;
  }
  return false;
}

}  // namespace hydra::sim
