#include "sim/scheduler.h"

#include "util/assert.h"

namespace hydra::sim {

EventId Scheduler::schedule_at(TimePoint at, Callback cb) {
  HYDRA_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  HYDRA_ASSERT(cb != nullptr);
  const auto seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(cb)});
  pending_.insert(seq);
  return EventId(seq);
}

EventId Scheduler::schedule_in(Duration delay, Callback cb) {
  HYDRA_ASSERT_MSG(!delay.is_negative(), "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Scheduler::cancel(EventId id) {
  // Events that already ran (or were already cancelled) are no longer
  // pending; cancelling them is a no-op that must report failure.
  if (!id.valid() || pending_.erase(id.id_) == 0) return false;
  // Lazy deletion: record the id; the heap entry is dropped when popped.
  cancelled_.insert(id.id_);
  return true;
}

void Scheduler::pop_and_run() {
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  if (cancelled_.erase(entry.seq) > 0) return;
  pending_.erase(entry.seq);
  HYDRA_ASSERT(entry.at >= now_);
  now_ = entry.at;
  ++executed_;
  entry.cb();
}

std::size_t Scheduler::run() {
  const auto before = executed_;
  while (!heap_.empty()) pop_and_run();
  return executed_ - before;
}

std::size_t Scheduler::run_until(TimePoint deadline) {
  const auto before = executed_;
  while (!heap_.empty() && heap_.top().at <= deadline) pop_and_run();
  if (now_ < deadline) now_ = deadline;
  return executed_ - before;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    const auto before = executed_;
    pop_and_run();
    // pop_and_run may have dropped a cancelled entry without executing.
    if (executed_ > before) return true;
  }
  return false;
}

}  // namespace hydra::sim
