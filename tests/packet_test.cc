// Unit tests: L3 packet headers, serialization, pure-ACK predicate.
#include <gtest/gtest.h>

#include "proto/ip_address.h"
#include "proto/packet.h"

namespace hydra::net {
namespace {

TEST(Ipv4Address, NodeMapping) {
  EXPECT_EQ(to_string(proto::Ipv4Address::for_node(0)), "10.0.0.1");
  EXPECT_EQ(to_string(proto::Ipv4Address::for_node(3)), "10.0.0.4");
  EXPECT_TRUE(proto::Ipv4Address::broadcast().is_broadcast());
  EXPECT_TRUE(proto::Ipv4Address().is_unspecified());
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(proto::Ipv4Address::for_node(0), proto::Ipv4Address::for_node(1));
  EXPECT_EQ(proto::Ipv4Address::from_octets(10, 0, 0, 1), proto::Ipv4Address::for_node(0));
}

TEST(Ipv4Header, RoundTrip) {
  proto::Ipv4Header h;
  h.src = proto::Ipv4Address::for_node(0);
  h.dst = proto::Ipv4Address::for_node(2);
  h.protocol = proto::kProtoTcp;
  h.ttl = 17;
  h.total_length = 1234;
  BufferWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), proto::Ipv4Header::kWireBytes);
  const auto bytes = w.take();
  BufferReader r(bytes);
  const auto parsed = proto::Ipv4Header::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->protocol, proto::kProtoTcp);
  EXPECT_EQ(parsed->ttl, 17);
  EXPECT_EQ(parsed->total_length, 1234);
}

TEST(Ipv4Header, RejectsBadVersion) {
  Bytes bytes(proto::Ipv4Header::kWireBytes, 0);
  bytes[0] = 0x60;  // IPv6 version nibble
  BufferReader r(bytes);
  EXPECT_FALSE(proto::Ipv4Header::parse(r).has_value());
}

TEST(Ipv4Header, RejectsTruncation) {
  const Bytes bytes(10, 0);
  BufferReader r(bytes);
  EXPECT_FALSE(proto::Ipv4Header::parse(r).has_value());
}

TEST(TcpFlags, ByteRoundTrip) {
  for (int mask = 0; mask < 16; ++mask) {
    proto::TcpFlags f;
    f.syn = mask & 1;
    f.ack = mask & 2;
    f.fin = mask & 4;
    f.rst = mask & 8;
    EXPECT_EQ(proto::TcpFlags::from_byte(f.to_byte()), f);
  }
}

TEST(TcpHeader, RoundTrip) {
  proto::TcpHeader h;
  h.src_port = 49152;
  h.dst_port = 5001;
  h.seq = 0xdeadbeef;
  h.ack = 0x01020304;
  h.flags = {.syn = true, .ack = true};
  h.window = 21712;
  BufferWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), proto::TcpHeader::kWireBytes);
  const auto bytes = w.take();
  BufferReader r(bytes);
  const auto parsed = proto::TcpHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, h.src_port);
  EXPECT_EQ(parsed->dst_port, h.dst_port);
  EXPECT_EQ(parsed->seq, h.seq);
  EXPECT_EQ(parsed->ack, h.ack);
  EXPECT_EQ(parsed->flags, h.flags);
  EXPECT_EQ(parsed->window, h.window);
}

TEST(UdpHeader, RoundTrip) {
  proto::UdpHeader h;
  h.src_port = 9000;
  h.dst_port = 9001;
  h.length = 1056;
  BufferWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), proto::UdpHeader::kWireBytes);
  const auto bytes = w.take();
  BufferReader r(bytes);
  const auto parsed = proto::UdpHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 9000);
  EXPECT_EQ(parsed->dst_port, 9001);
  EXPECT_EQ(parsed->length, 1056);
}

TEST(Packet, WireSizes) {
  const auto udp = proto::make_udp_packet(proto::Ipv4Address::for_node(0),
                                   proto::Ipv4Address::for_node(1), 9000, 9001, 1048);
  EXPECT_EQ(udp->wire_size(), 20u + 8u + 1048u);

  const auto tcp = proto::make_tcp_packet(proto::Ipv4Address::for_node(0),
                                   proto::Ipv4Address::for_node(1), 1, 2, 100, 200,
                                   {.ack = true}, 1000, 1357);
  EXPECT_EQ(tcp->wire_size(), 20u + 20u + 1357u);

  const auto flood = proto::make_flood_packet(proto::Ipv4Address::for_node(0), 40);
  EXPECT_EQ(flood->wire_size(), 20u + 40u);
  EXPECT_TRUE(flood->ip.dst.is_broadcast());
  EXPECT_EQ(flood->ip.protocol, proto::kProtoFlood);
}

TEST(Packet, PureTcpAckPredicate) {
  const auto src = proto::Ipv4Address::for_node(0);
  const auto dst = proto::Ipv4Address::for_node(1);

  // The genuine article: ACK flag, no payload, no SYN/FIN/RST.
  EXPECT_TRUE(proto::make_tcp_packet(src, dst, 1, 2, 0, 100, {.ack = true}, 0, 0)
                  ->is_pure_tcp_ack());

  // Data segment with piggybacked ACK: not pure.
  EXPECT_FALSE(
      proto::make_tcp_packet(src, dst, 1, 2, 0, 100, {.ack = true}, 0, 1357)
          ->is_pure_tcp_ack());

  // Connection setup/teardown is excluded (paper §4.2.4).
  EXPECT_FALSE(proto::make_tcp_packet(src, dst, 1, 2, 0, 0, {.syn = true}, 0, 0)
                   ->is_pure_tcp_ack());
  EXPECT_FALSE(
      proto::make_tcp_packet(src, dst, 1, 2, 0, 0, {.syn = true, .ack = true}, 0, 0)
          ->is_pure_tcp_ack());
  EXPECT_FALSE(
      proto::make_tcp_packet(src, dst, 1, 2, 0, 0, {.ack = true, .fin = true}, 0, 0)
          ->is_pure_tcp_ack());
  EXPECT_FALSE(
      proto::make_tcp_packet(src, dst, 1, 2, 0, 0, {.ack = true, .rst = true}, 0, 0)
          ->is_pure_tcp_ack());

  // Non-TCP traffic is never a TCP ACK.
  EXPECT_FALSE(proto::make_udp_packet(src, dst, 1, 2, 0)->is_pure_tcp_ack());
  EXPECT_FALSE(proto::make_flood_packet(src, 10)->is_pure_tcp_ack());
}

TEST(Packet, SerializeParseRoundTripTcp) {
  const auto p = proto::make_tcp_packet(proto::Ipv4Address::for_node(1),
                                 proto::Ipv4Address::for_node(3), 49152, 5001,
                                 777, 888, {.ack = true}, 21712, 512);
  const auto bytes = p->serialize();
  EXPECT_EQ(bytes.size(), p->wire_size());
  BufferReader r(bytes);
  const auto parsed = proto::Packet::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.src, p->ip.src);
  EXPECT_EQ(parsed->ip.dst, p->ip.dst);
  ASSERT_TRUE(parsed->tcp.has_value());
  EXPECT_EQ(parsed->tcp->seq, 777u);
  EXPECT_EQ(parsed->tcp->ack, 888u);
  EXPECT_EQ(parsed->payload_bytes, 512u);
  EXPECT_TRUE(r.exhausted());
}

TEST(Packet, SerializeParseRoundTripUdp) {
  const auto p = proto::make_udp_packet(proto::Ipv4Address::for_node(0),
                                 proto::Ipv4Address::for_node(2), 9000, 9001, 1048);
  const auto bytes = p->serialize();
  BufferReader r(bytes);
  const auto parsed = proto::Packet::parse(r);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->udp.has_value());
  EXPECT_EQ(parsed->udp->dst_port, 9001);
  EXPECT_EQ(parsed->payload_bytes, 1048u);
}

TEST(Packet, ParseRejectsTruncatedPayload) {
  const auto p = proto::make_udp_packet(proto::Ipv4Address::for_node(0),
                                 proto::Ipv4Address::for_node(2), 9000, 9001, 100);
  auto bytes = p->serialize();
  bytes.resize(bytes.size() - 10);
  BufferReader r(bytes);
  EXPECT_FALSE(proto::Packet::parse(r).has_value());
}

TEST(Endpoint, Comparison) {
  const proto::Endpoint a{proto::Ipv4Address::for_node(0), 80};
  const proto::Endpoint b{proto::Ipv4Address::for_node(0), 81};
  const proto::Endpoint c{proto::Ipv4Address::for_node(1), 80};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (proto::Endpoint{proto::Ipv4Address::for_node(0), 80}));
}

}  // namespace
}  // namespace hydra::net
