// Robustness & fuzz tests: randomized scheduler workloads checked
// against a reference model, TCP under random bidirectional loss,
// airtime-capped aggregation invariants, and time-series accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "core/aggregator.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"
#include "stats/timeseries.h"
#include "transport/mux.h"

namespace hydra {
namespace {

// ---------------------------------------------------------------------
// Scheduler fuzz: random schedule/cancel interleavings must execute in
// exact (time, insertion) order and never run cancelled events.
// ---------------------------------------------------------------------

class SchedulerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SchedulerFuzz, MatchesReferenceModel) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  sim::Scheduler sched;

  struct Ref {
    std::int64_t at_ns;
    std::uint64_t seq;
    bool cancelled = false;
  };
  std::vector<Ref> reference;
  std::vector<sim::EventId> ids;
  std::vector<std::uint64_t> executed;

  for (int i = 0; i < 400; ++i) {
    const auto at = sim::Duration::micros(
        static_cast<std::int64_t>(rng.uniform_int(0, 10'000)));
    const auto seq = static_cast<std::uint64_t>(i);
    ids.push_back(sched.schedule_at(sim::TimePoint::at(at), [&executed, seq] {
      executed.push_back(seq);
    }));
    reference.push_back({at.ns(), seq});
    // Randomly cancel an earlier (possibly already recorded) event.
    if (rng.bernoulli(0.25)) {
      const auto victim = rng.uniform_int(0, ids.size() - 1);
      if (sched.cancel(ids[victim])) {
        reference[victim].cancelled = true;
      }
    }
  }
  sched.run();

  std::vector<std::uint64_t> expected;
  std::vector<std::size_t> order(reference.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return reference[a].at_ns < reference[b].at_ns;
                   });
  for (const auto i : order) {
    if (!reference[i].cancelled) expected.push_back(reference[i].seq);
  }
  EXPECT_EQ(executed, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz, ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// TCP under random loss in both directions
// ---------------------------------------------------------------------

using LossParam = std::tuple<int /*loss pct*/, int /*seed*/>;

class TcpRandomLoss : public ::testing::TestWithParam<LossParam> {};

TEST_P(TcpRandomLoss, TransferIsExactDespiteLoss) {
  const auto [loss_pct, seed] = GetParam();
  sim::Simulation sim(static_cast<std::uint64_t>(seed));
  sim::Rng drop_rng(static_cast<std::uint64_t>(seed) * 7919);

  transport::TransportMux a(sim, proto::Ipv4Address::for_node(0));
  transport::TransportMux b(sim, proto::Ipv4Address::for_node(1));
  const double p = loss_pct / 100.0;
  const auto pipe = [&](transport::TransportMux& dst) {
    return [&sim, &dst, &drop_rng, p](proto::PacketPtr pkt) {
      if (drop_rng.bernoulli(p)) return;
      sim.scheduler().schedule_in(sim::Duration::millis(5),
                                  [&dst, pkt] { dst.deliver(pkt); });
    };
  };
  a.send_packet = pipe(b);
  b.send_packet = pipe(a);

  std::uint64_t received = 0;
  b.tcp_listen(5001, {}, [&](transport::TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { received += n; };
  });
  auto& client = a.tcp_connect({proto::Ipv4Address::for_node(1), 5001});
  client.send(120'000);
  sim.run_for(sim::Duration::seconds(600));

  EXPECT_EQ(received, 120'000u)
      << "loss " << loss_pct << "% seed " << seed;
  if (loss_pct > 0) {
    EXPECT_GT(client.stats().retransmits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, TcpRandomLoss,
                         ::testing::Combine(::testing::Values(0, 2, 5, 10,
                                                              20),
                                            ::testing::Values(1, 2)));

// ---------------------------------------------------------------------
// Airtime-capped aggregation invariants
// ---------------------------------------------------------------------

class AirtimeCapProperty : public ::testing::TestWithParam<int> {};

TEST_P(AirtimeCapProperty, FramesNeverExceedTheAirtimeBudget) {
  const auto mode_idx = static_cast<std::size_t>(GetParam());
  auto policy = core::AggregationPolicy::ba();
  policy.max_aggregate_airtime = sim::Duration::millis(48);
  core::Aggregator agg(policy);
  const auto& mode = proto::mode_by_index(mode_idx);
  agg.set_modes(mode, mode);

  core::DualQueue q(256);
  for (int i = 0; i < 80; ++i) {
    proto::MacSubframe data;
    data.receiver = proto::MacAddress(1);
    data.packet = proto::make_udp_packet(proto::Ipv4Address::for_node(0),
                                       proto::Ipv4Address::for_node(1), 1, 2,
                                       1048);
    q.unicast().push(data, {});
    proto::MacSubframe ack;
    ack.receiver = proto::MacAddress(2);
    ack.packet = proto::make_tcp_packet(proto::Ipv4Address::for_node(1),
                                      proto::Ipv4Address::for_node(0), 2, 1, 0,
                                      0, {.ack = true}, 100, 0);
    q.broadcast().push(ack, {});
  }

  while (!q.empty()) {
    const auto frame = agg.build(q);
    ASSERT_FALSE(frame.empty());
    sim::Duration airtime = sim::Duration::zero();
    for (const auto& sf : frame.broadcast) {
      airtime += phy::payload_airtime(sf.wire_bytes(), mode);
    }
    for (const auto& sf : frame.unicast) {
      airtime += phy::payload_airtime(sf.wire_bytes(), mode);
    }
    if (frame.subframe_count() > 1) {
      EXPECT_LE(airtime, policy.max_aggregate_airtime);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, AirtimeCapProperty, ::testing::Range(0, 5));

TEST(AirtimeCap, AdmitsMoreAtHigherRates) {
  auto policy = core::AggregationPolicy::ua();
  policy.max_aggregate_airtime = sim::Duration::millis(48);

  const auto frames_at = [&](std::size_t mode_idx) {
    core::Aggregator agg(policy);
    const auto& mode = proto::mode_by_index(mode_idx);
    agg.set_modes(mode, mode);
    core::DualQueue q(256);
    for (int i = 0; i < 40; ++i) {
      proto::MacSubframe sf;
      sf.receiver = proto::MacAddress(1);
      sf.packet = proto::make_udp_packet(proto::Ipv4Address::for_node(0),
                                       proto::Ipv4Address::for_node(1), 1, 2,
                                       1048);
      q.unicast().push(sf, {});
    }
    std::size_t frames = 0;
    while (!q.empty()) {
      agg.build(q);
      ++frames;
    }
    return frames;
  };

  // 40 packets at 0.65 Mbps need many frames; at 2.6 Mbps a handful.
  EXPECT_GT(frames_at(0), frames_at(3) * 2);
}

// ---------------------------------------------------------------------
// Time-series accounting
// ---------------------------------------------------------------------

TEST(Timeline, BinsAndTotals) {
  stats::ThroughputTimeline tl(sim::Duration::seconds(1));
  tl.record(sim::TimePoint::at(sim::Duration::millis(100)), 125'000);
  tl.record(sim::TimePoint::at(sim::Duration::millis(900)), 125'000);
  tl.record(sim::TimePoint::at(sim::Duration::millis(2'500)), 250'000);

  EXPECT_EQ(tl.total_bytes(), 500'000u);
  EXPECT_EQ(tl.bins(), 3u);
  EXPECT_EQ(tl.bytes_in_bin(0), 250'000u);
  EXPECT_EQ(tl.bytes_in_bin(1), 0u);
  EXPECT_EQ(tl.bytes_in_bin(2), 250'000u);
  // 250 KB in a 1 s bin = 2 Mbps.
  EXPECT_DOUBLE_EQ(tl.mbps_in_bin(0), 2.0);
  EXPECT_DOUBLE_EQ(tl.mbps_in_bin(1), 0.0);
  EXPECT_EQ(tl.mbps_in_bin(99), 0.0);

  const auto series = tl.mbps_series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[2], 2.0);
}

TEST(Timeline, LateSampleDoesNotAllocateEveryElapsedBin) {
  // Regression: a single sample hours into a run used to resize the
  // bin vector densely from t = 0 (one slot per elapsed millisecond
  // here — O(sim-time) memory in long scenarios).
  stats::ThroughputTimeline tl(sim::Duration::millis(1));
  const auto late = sim::TimePoint::at(sim::Duration::seconds(7'200));
  tl.record(late, 1'000);
  EXPECT_EQ(tl.stored_bins(), 1u);
  EXPECT_EQ(tl.first_bin(), 7'200'000u);
  EXPECT_EQ(tl.bins(), 7'200'001u);
  EXPECT_EQ(tl.bytes_in_bin(7'200'000), 1'000u);
  EXPECT_EQ(tl.bytes_in_bin(0), 0u);
  EXPECT_EQ(tl.total_bytes(), 1'000u);
  // 1000 B in a 1 ms bin = 8 Mbps.
  EXPECT_DOUBLE_EQ(tl.mbps_in_bin(7'200'000), 8.0);
  EXPECT_EQ(tl.mbps_series().size(), 1u);

  // An even-later sample extends storage by the sample span only; an
  // earlier one grows the front without losing the offset.
  tl.record(late + sim::Duration::millis(10), 500);
  EXPECT_EQ(tl.stored_bins(), 11u);
  tl.record(sim::TimePoint::at(sim::Duration::millis(7'199'998)), 250);
  EXPECT_EQ(tl.first_bin(), 7'199'998u);
  EXPECT_EQ(tl.stored_bins(), 13u);
  EXPECT_EQ(tl.total_bytes(), 1'750u);
}

TEST(Timeline, SparklineRendersRelativeLevels) {
  EXPECT_EQ(stats::sparkline({}), "");
  const auto flat = stats::sparkline({0.0, 0.0});
  EXPECT_EQ(flat, "▁▁");
  const auto ramp = stats::sparkline({0.0, 1.0, 2.0, 4.0});
  EXPECT_EQ(ramp, "▁▂▄█");
}

}  // namespace
}  // namespace hydra
