// The parallel-scheduler determinism suite: the pinned contract for
// conservative parallel event execution. Every scenario family — the
// four paper specs plus grid/ring/random — runs under the serial policy
// and under parallel windows at 1/2/4 workers, and every run must
// produce
//
//   - the same trace digest (CRC-32 over the network-event trace),
//   - the same per-node MAC stats table, byte for byte, and
//   - the same executed-event count (the window engine may not invent,
//     drop or reorder events — only overlap them).
//
// A window partition that races a shared-state touch, commits deferred
// schedules out of canonical order, or lets worker count leak into the
// event sequence fails here before it can skew a paper figure.
// Registered under the `parallel` ctest label so gcc, clang and the
// TSan job all run it.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/flood.h"
#include "app/udp_cbr.h"
#include "app/udp_sink.h"
#include "sim/scheduler.h"
#include "topo/scenario.h"

namespace hydra {
namespace {

struct RunFingerprint {
  std::uint32_t digest = 0;
  std::string stats;
  std::uint64_t executed = 0;
  std::uint64_t windows = 0;
  std::uint64_t parallel_events = 0;
  std::uint64_t transmissions = 0;
};

enum class Workload {
  kCbr,   // UDP CBR over the spec's first session (exercises routing)
  kFlood  // every node broadcasts (exercises pure fan-out)
};

RunFingerprint run_scenario(topo::ScenarioSpec spec,
                            topo::SchedulerPolicy policy, unsigned workers,
                            std::uint64_t seed, Workload workload) {
  spec.scheduler.policy = policy;
  spec.scheduler.workers = workers;
  auto s = topo::Scenario::build(spec, seed);
  s.capture_traces();

  std::unique_ptr<app::UdpSinkApp> sink;
  std::unique_ptr<app::UdpCbrApp> cbr;
  std::vector<std::unique_ptr<app::FloodApp>> flooders;
  if (workload == Workload::kCbr) {
    const auto sender = spec.sessions.front().sender;
    const auto receiver = spec.sessions.front().receiver;
    sink = std::make_unique<app::UdpSinkApp>(s.sim(), s.node(receiver), 9001);
    app::UdpCbrConfig cbr_cfg;
    cbr_cfg.destination = {proto::Ipv4Address::for_node(receiver), 9001};
    cbr_cfg.packets_per_tick = 3;
    cbr_cfg.stop = sim::TimePoint::at(sim::Duration::seconds(2));
    cbr = std::make_unique<app::UdpCbrApp>(s.sim(), s.node(sender), cbr_cfg);
    cbr->start();
  } else {
    for (std::size_t i = 0; i < s.size(); ++i) {
      app::FloodConfig fc;
      fc.interval = sim::Duration::millis(400);
      fc.initial_offset = sim::Duration::millis(17) * (i + 1);
      flooders.push_back(
          std::make_unique<app::FloodApp>(s.sim(), s.node(i), fc));
      flooders.back()->start();
    }
  }
  s.run_for(sim::Duration::seconds(3));

  EXPECT_FALSE(s.trace().empty()) << spec.label();
  RunFingerprint fp;
  fp.digest = s.trace_digest();
  fp.stats = s.metrics_summary();
  fp.executed = s.sim().scheduler().executed_events();
  fp.windows = s.sim().scheduler().windows_executed();
  fp.parallel_events = s.sim().scheduler().parallel_events_executed();
  fp.transmissions = s.medium().transmissions_started();
  return fp;
}

// Runs `spec` serially, then under parallel windows at 1/2/4 workers,
// and asserts the contract. Returns the 4-worker fingerprint so callers
// can make extra assertions (e.g. that windows actually formed).
RunFingerprint assert_policies_agree(const topo::ScenarioSpec& spec,
                                     std::uint64_t seed, Workload workload) {
  const auto reference = run_scenario(spec, topo::SchedulerPolicy::kSerial, 1,
                                      seed, workload);
  EXPECT_EQ(reference.windows, 0u)
      << spec.label() << ": serial execution must not form windows";
  EXPECT_EQ(reference.parallel_events, 0u);

  RunFingerprint last;
  for (const unsigned workers : {1u, 2u, 4u}) {
    last = run_scenario(spec, topo::SchedulerPolicy::kParallelWindows,
                        workers, seed, workload);
    EXPECT_EQ(last.digest, reference.digest)
        << spec.label() << " seed " << seed << ": parallel@" << workers
        << " digest diverged";
    EXPECT_EQ(last.stats, reference.stats)
        << spec.label() << " seed " << seed << ": parallel@" << workers
        << " stats diverged";
    // Same events, not just same observable trace: the window engine
    // must execute exactly the serial event sequence.
    EXPECT_EQ(last.executed, reference.executed)
        << spec.label() << " seed " << seed << ": parallel@" << workers
        << " executed-event count diverged";
    EXPECT_EQ(last.transmissions, reference.transmissions);
  }
  return last;
}

// ---------------------------------------------------------------------
// Paper topologies: the figures themselves must be policy-invariant.
// ---------------------------------------------------------------------

TEST(ParallelSched, PaperSpecs) {
  for (const auto& spec :
       {topo::ScenarioSpec::one_hop(), topo::ScenarioSpec::two_hop(),
        topo::ScenarioSpec::three_hop(), topo::ScenarioSpec::fig6_star()}) {
    for (const std::uint64_t seed : {3, 7}) {
      assert_policies_agree(spec, seed, Workload::kCbr);
    }
  }
}

// ---------------------------------------------------------------------
// One test per open-ended family (ctest runs them in parallel).
// ---------------------------------------------------------------------

TEST(ParallelSched, GridFamilyCbr) {
  assert_policies_agree(topo::ScenarioSpec::grid(3, 3), 5, Workload::kCbr);
}

TEST(ParallelSched, GridFamilyFlood) {
  const auto parallel =
      assert_policies_agree(topo::ScenarioSpec::grid(3, 3), 5,
                            Workload::kFlood);
  // Flooding a 9-node grid keeps several nodes active at once, so the
  // lookahead actually forms windows (how much overlap each window finds
  // is load-dependent; that it forms any is the policy working at all).
  EXPECT_GT(parallel.windows, 0u);
}

TEST(ParallelSched, RingFamily) {
  assert_policies_agree(topo::ScenarioSpec::ring(7), 5, Workload::kFlood);
}

TEST(ParallelSched, RandomFamilySeedSweep) {
  for (const std::uint64_t placement : {1, 2}) {
    assert_policies_agree(topo::ScenarioSpec::random(10, placement), 5,
                          Workload::kFlood);
  }
}

// ---------------------------------------------------------------------
// Composition: parallel windows over the sharded medium. The two
// parallel subsystems use separate task pools (pool nesting is guarded
// by identity), and the digest must still match a fully serial run.
// ---------------------------------------------------------------------

TEST(ParallelSched, ComposesWithShardedMedium) {
  auto spec = topo::ScenarioSpec::grid(3, 3);
  const auto serial = run_scenario(spec, topo::SchedulerPolicy::kSerial, 1, 5,
                                   Workload::kFlood);
  spec.medium.policy = topo::MediumPolicy::kSharded;
  spec.medium.shard_threads = 2;
  const auto combined =
      run_scenario(spec, topo::SchedulerPolicy::kParallelWindows, 2, 5,
                   Workload::kFlood);
  EXPECT_EQ(combined.digest, serial.digest);
  EXPECT_EQ(combined.stats, serial.stats);
  EXPECT_EQ(combined.executed, serial.executed);
}

// ---------------------------------------------------------------------
// The scheduler policy plumbs through the scenario layer like any other.
// ---------------------------------------------------------------------

TEST(ParallelSched, PolicyResolution) {
  topo::ScenarioSpec spec = topo::ScenarioSpec::grid(4, 4);
  EXPECT_EQ(spec.scheduler_policy(), sim::ExecutionPolicy::kSerial);
  spec.scheduler.policy = topo::SchedulerPolicy::kSerial;
  EXPECT_EQ(spec.scheduler_policy(), sim::ExecutionPolicy::kSerial);
  spec.scheduler.policy = topo::SchedulerPolicy::kParallelWindows;
  EXPECT_EQ(spec.scheduler_policy(), sim::ExecutionPolicy::kParallelWindows);

  EXPECT_EQ(topo::to_string(topo::SchedulerPolicy::kAuto),
            std::string("auto"));
  EXPECT_EQ(topo::to_string(topo::SchedulerPolicy::kSerial),
            std::string("serial"));
  EXPECT_EQ(topo::to_string(topo::SchedulerPolicy::kParallelWindows),
            std::string("parallel-windows"));

  spec.scheduler.workers = 3;
  auto s = topo::Scenario::build(spec, 1);
  EXPECT_EQ(s.sim().scheduler().execution_policy(),
            sim::ExecutionPolicy::kParallelWindows);
  EXPECT_EQ(s.sim().scheduler().execution_workers(), 3u);
}

}  // namespace
}  // namespace hydra
