// Unit tests: MAC wire formats — subframe sizes calibrated to the paper,
// serialization round trips, FCS protection, control frames, aggregates.
#include <gtest/gtest.h>

#include "mac/pdu.h"
#include "proto/frames.h"
#include "proto/packet.h"

namespace hydra::mac {
namespace {

proto::PacketPtr tcp_data_packet(std::uint32_t payload) {
  return proto::make_tcp_packet(proto::Ipv4Address::for_node(0),
                              proto::Ipv4Address::for_node(2), 49152, 5001,
                              1000, 2000, {.ack = true}, 21712, payload);
}

proto::PacketPtr pure_ack_packet() {
  return proto::make_tcp_packet(proto::Ipv4Address::for_node(2),
                              proto::Ipv4Address::for_node(0), 5001, 49152,
                              2000, 1001, {.ack = true}, 21712, 0);
}

proto::MacSubframe data_subframe(proto::PacketPtr pkt) {
  proto::MacSubframe sf;
  sf.receiver = proto::MacAddress::for_node(1);
  sf.transmitter = proto::MacAddress::for_node(0);
  sf.source = proto::MacAddress::for_node(0);
  sf.packet = std::move(pkt);
  return sf;
}

TEST(SubframeSizes, MatchThePaperExactly) {
  // Paper §5: MSS 1357 -> 1464 B MAC frame; TCP ACK -> 160 B;
  // the UDP workload -> 1140 B MAC frames.
  EXPECT_EQ(data_subframe(tcp_data_packet(1357)).wire_bytes(), 1464u);
  EXPECT_EQ(data_subframe(pure_ack_packet()).wire_bytes(), 160u);
  const auto udp = proto::make_udp_packet(proto::Ipv4Address::for_node(0),
                                        proto::Ipv4Address::for_node(2), 9000,
                                        9001, 1048);
  EXPECT_EQ(data_subframe(udp).wire_bytes(), 1140u);
}

TEST(SubframeSizes, MinimumAndAlignment) {
  // Tiny packets pad up to the 160-byte minimum.
  EXPECT_EQ(proto::subframe_wire_bytes(0), 160u);
  EXPECT_EQ(proto::subframe_wire_bytes(20), 160u);
  // Beyond the minimum, sizes are 4-byte aligned.
  for (std::size_t pkt = 100; pkt < 1500; pkt += 7) {
    const auto w = proto::subframe_wire_bytes(pkt);
    EXPECT_EQ(w % proto::kSubframeAlign, 0u);
    EXPECT_GE(w, proto::kMinSubframeBytes);
    EXPECT_GE(w, pkt + proto::kMacHeaderBytes + proto::kEncapBytes + proto::kFcsBytes);
  }
}

TEST(Duration, EncodeDecode) {
  EXPECT_EQ(proto::decode_duration_us(proto::encode_duration_us(0)), 0);
  // Encoding rounds up to 8 us units.
  EXPECT_EQ(proto::decode_duration_us(proto::encode_duration_us(100)), 104);
  EXPECT_EQ(proto::decode_duration_us(proto::encode_duration_us(104)), 104);
  // A 63 ms data frame + ACK reservation still fits the field.
  EXPECT_EQ(proto::decode_duration_us(proto::encode_duration_us(65'000)), 65'000 + 0);
  // Saturates rather than wrapping.
  EXPECT_EQ(proto::decode_duration_us(proto::encode_duration_us(10'000'000)),
            std::int64_t{0xffff} * 8);
}

TEST(Subframe, SerializeParseRoundTrip) {
  auto sf = data_subframe(tcp_data_packet(1357));
  sf.duration_units = proto::encode_duration_us(1234);
  sf.retry = true;
  const auto bytes = sf.serialize();
  EXPECT_EQ(bytes.size(), sf.wire_bytes());

  BufferReader r(bytes);
  const auto parsed = proto::MacSubframe::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(parsed->receiver, sf.receiver);
  EXPECT_EQ(parsed->transmitter, sf.transmitter);
  EXPECT_EQ(parsed->source, sf.source);
  EXPECT_EQ(parsed->duration_units, sf.duration_units);
  EXPECT_TRUE(parsed->retry);
  ASSERT_TRUE(parsed->packet != nullptr);
  EXPECT_EQ(parsed->packet->wire_size(), sf.packet->wire_size());
  ASSERT_TRUE(parsed->packet->tcp.has_value());
  EXPECT_EQ(parsed->packet->tcp->seq, 1000u);
}

TEST(Subframe, ParseConsumesExactlyWireBytes) {
  const auto sf1 = data_subframe(pure_ack_packet());
  const auto sf2 = data_subframe(tcp_data_packet(700));
  auto bytes = sf1.serialize();
  const auto second = sf2.serialize();
  bytes.insert(bytes.end(), second.begin(), second.end());

  BufferReader r(bytes);
  const auto p1 = proto::MacSubframe::parse(r);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(r.position(), sf1.wire_bytes());
  const auto p2 = proto::MacSubframe::parse(r);
  ASSERT_TRUE(p2.has_value());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(p2->packet->payload_bytes, 700u);
}

TEST(Subframe, FcsDetectsCorruption) {
  const auto sf = data_subframe(tcp_data_packet(500));
  auto bytes = sf.serialize();
  // Flip a bit inside the payload region.
  bytes[100] ^= 0x01;
  BufferReader r(bytes);
  EXPECT_FALSE(proto::MacSubframe::parse(r).has_value());
}

TEST(Subframe, ParseRejectsTruncation) {
  const auto sf = data_subframe(tcp_data_packet(500));
  auto bytes = sf.serialize();
  bytes.resize(bytes.size() / 2);
  BufferReader r(bytes);
  EXPECT_FALSE(proto::MacSubframe::parse(r).has_value());
}

TEST(ControlFrames, WireSizes) {
  proto::ControlFrame rts{.type = proto::FrameType::kRts};
  proto::ControlFrame cts{.type = proto::FrameType::kCts};
  proto::ControlFrame ack{.type = proto::FrameType::kAck};
  EXPECT_EQ(rts.wire_bytes(), proto::kRtsBytes);
  EXPECT_EQ(cts.wire_bytes(), proto::kCtsBytes);
  EXPECT_EQ(ack.wire_bytes(), proto::kAckBytes);
  ack.has_block_ack = true;
  EXPECT_EQ(ack.wire_bytes(), proto::kBlockAckBytes);
}

TEST(ControlFrames, RtsRoundTrip) {
  proto::ControlFrame rts;
  rts.type = proto::FrameType::kRts;
  rts.receiver = proto::MacAddress::for_node(1);
  rts.transmitter = proto::MacAddress::for_node(0);
  rts.duration_units = proto::encode_duration_us(50'000);
  const auto bytes = rts.serialize();
  EXPECT_EQ(bytes.size(), proto::kRtsBytes);
  BufferReader r(bytes);
  const auto parsed = proto::ControlFrame::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, proto::FrameType::kRts);
  EXPECT_EQ(parsed->receiver, rts.receiver);
  EXPECT_EQ(parsed->transmitter, rts.transmitter);
  EXPECT_EQ(parsed->duration_units, rts.duration_units);
}

TEST(ControlFrames, CtsAndAckRoundTrip) {
  for (const auto type : {proto::FrameType::kCts, proto::FrameType::kAck}) {
    proto::ControlFrame f;
    f.type = type;
    f.receiver = proto::MacAddress::for_node(2);
    f.duration_units = proto::encode_duration_us(1000);
    const auto bytes = f.serialize();
    BufferReader r(bytes);
    const auto parsed = proto::ControlFrame::parse(r);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, type);
    EXPECT_EQ(parsed->receiver, f.receiver);
    EXPECT_FALSE(parsed->has_block_ack);
  }
}

TEST(ControlFrames, BlockAckRoundTrip) {
  proto::ControlFrame ack;
  ack.type = proto::FrameType::kAck;
  ack.receiver = proto::MacAddress::for_node(1);
  ack.has_block_ack = true;
  ack.block_ack_bitmap = 0b1011;
  const auto bytes = ack.serialize();
  EXPECT_EQ(bytes.size(), proto::kBlockAckBytes);
  BufferReader r(bytes);
  const auto parsed = proto::ControlFrame::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->has_block_ack);
  EXPECT_EQ(parsed->block_ack_bitmap, 0b1011u);
}

TEST(ControlFrames, FcsDetectsCorruption) {
  proto::ControlFrame rts;
  rts.type = proto::FrameType::kRts;
  rts.receiver = proto::MacAddress::for_node(1);
  rts.transmitter = proto::MacAddress::for_node(0);
  auto bytes = rts.serialize();
  bytes[5] ^= 0x80;
  BufferReader r(bytes);
  EXPECT_FALSE(proto::ControlFrame::parse(r).has_value());
}

TEST(Aggregate, TotalsAndReceiver) {
  proto::AggregateFrame agg;
  agg.broadcast.push_back(data_subframe(pure_ack_packet()));
  agg.broadcast.push_back(data_subframe(pure_ack_packet()));
  agg.unicast.push_back(data_subframe(tcp_data_packet(1357)));
  agg.unicast.push_back(data_subframe(tcp_data_packet(1357)));

  EXPECT_EQ(agg.subframe_count(), 4u);
  EXPECT_TRUE(agg.has_unicast());
  EXPECT_EQ(agg.unicast_receiver(), proto::MacAddress::for_node(1));
  EXPECT_EQ(agg.total_wire_bytes(), 2u * 160 + 2u * 1464);
}

TEST(Aggregate, ToPhyFramePortions) {
  proto::AggregateFrame agg;
  agg.broadcast.push_back(data_subframe(pure_ack_packet()));
  agg.unicast.push_back(data_subframe(tcp_data_packet(1357)));
  const auto pdu = MacPdu::make_aggregate(agg, proto::MacAddress::for_node(0));

  const auto bcast_mode = proto::mode_by_index(0);
  const auto ucast_mode = proto::mode_by_index(3);
  const auto frame = to_phy_frame(pdu, bcast_mode, ucast_mode);
  ASSERT_EQ(frame.broadcast.subframe_bytes.size(), 1u);
  ASSERT_EQ(frame.unicast.subframe_bytes.size(), 1u);
  EXPECT_EQ(frame.broadcast.subframe_bytes[0], 160u);
  EXPECT_EQ(frame.unicast.subframe_bytes[0], 1464u);
  EXPECT_EQ(frame.broadcast.mode, bcast_mode);
  EXPECT_EQ(frame.unicast.mode, ucast_mode);
  EXPECT_EQ(frame.payload.get(), pdu.get());
}

TEST(Aggregate, ControlPduUsesBaseMode) {
  proto::ControlFrame rts;
  rts.type = proto::FrameType::kRts;
  const auto pdu = MacPdu::make_control(rts, proto::MacAddress::for_node(0));
  const auto frame = to_phy_frame(pdu, proto::mode_by_index(3),
                                  proto::mode_by_index(3));
  EXPECT_TRUE(frame.broadcast.empty());
  ASSERT_EQ(frame.unicast.subframe_bytes.size(), 1u);
  EXPECT_EQ(frame.unicast.subframe_bytes[0], proto::kRtsBytes);
  EXPECT_EQ(frame.unicast.mode, proto::base_mode());
}

TEST(MacAddressTest, BasicsAndFormatting) {
  EXPECT_TRUE(proto::MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(proto::MacAddress().is_unspecified());
  EXPECT_EQ(proto::MacAddress::for_node(0).value(), 1);
  EXPECT_EQ(to_string(proto::MacAddress::broadcast()), "ff:ff");
  EXPECT_EQ(to_string(proto::MacAddress(0x0102)), "01:02");
}

}  // namespace
}  // namespace hydra::mac
