// Frozen pre-seam TCP — see seed_tcp.h. The connection logic below is
// the seed transport/tcp.cc verbatim (modulo the class name and the
// removal of the HYDRA_TCP_TRACE debug prints); keep it that way.
#include "support/seed_tcp.h"

#include <algorithm>

#include "util/assert.h"

namespace hydra::seedtcp {

namespace {
constexpr std::uint32_t kClientIss = 10'000;
}  // namespace

SeedTcpConnection::SeedTcpConnection(sim::Simulation& simulation,
                                     TcpConfig config, proto::Endpoint local,
                                     proto::Endpoint remote, SendPacket send)
    : sim_(simulation),
      config_(config),
      local_(local),
      remote_(remote),
      send_packet_(std::move(send)),
      rto_(config.rto_initial),
      rto_timer_(simulation.scheduler(), [this] { on_rto(); }) {
  HYDRA_ASSERT(send_packet_ != nullptr);
  cwnd_ = config_.initial_cwnd_segments * config_.mss;
}

void SeedTcpConnection::connect() {
  HYDRA_ASSERT(state_ == State::kClosed);
  iss_ = kClientIss;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  high_water_ = snd_nxt_;
  state_ = State::kSynSent;
  send_control({.syn = true}, iss_);
  arm_rto();
}

void SeedTcpConnection::accept(const proto::TcpHeader& syn) {
  HYDRA_ASSERT(state_ == State::kClosed);
  HYDRA_ASSERT(syn.flags.syn);
  irs_ = syn.seq;
  rcv_nxt_ = irs_ + 1;
  peer_window_ = syn.window;
  iss_ = kClientIss + 10'000;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  high_water_ = snd_nxt_;
  state_ = State::kSynReceived;
  send_control({.syn = true, .ack = true}, iss_);
  arm_rto();
}

void SeedTcpConnection::send(std::uint64_t bytes) {
  app_bytes_ += bytes;
  if (state_ == State::kEstablished) try_transmit();
}

void SeedTcpConnection::close() {
  fin_requested_ = true;
  if (state_ == State::kEstablished) try_transmit();
}

void SeedTcpConnection::segment_arrived(const proto::Packet& packet) {
  HYDRA_ASSERT(packet.tcp.has_value());
  const auto& h = *packet.tcp;
  ++stats_.segments_received;

  switch (state_) {
    case State::kClosed:
      return;
    case State::kSynSent: {
      if (h.flags.syn && h.flags.ack && h.ack == snd_nxt_) {
        irs_ = h.seq;
        rcv_nxt_ = irs_ + 1;
        snd_una_ = h.ack;
        peer_window_ = h.window;
        state_ = State::kEstablished;
        rto_timer_.cancel();
        rto_ = config_.rto_initial;
        consecutive_timeouts_ = 0;
        send_ack();
        if (on_established) on_established();
        try_transmit();
      }
      return;
    }
    case State::kSynReceived: {
      if (h.flags.syn && !h.flags.ack) {
        send_control({.syn = true, .ack = true}, iss_);
        arm_rto();
        return;
      }
      if (h.flags.ack && seq_geq(h.ack, snd_nxt_)) {
        snd_una_ = h.ack;
        peer_window_ = h.window;
        state_ = State::kEstablished;
        rto_timer_.cancel();
        rto_ = config_.rto_initial;
        consecutive_timeouts_ = 0;
        if (on_established) on_established();
      } else {
        return;
      }
      break;
    }
    case State::kEstablished:
    case State::kFinSent:
    case State::kClosedByPeer:
      break;
  }

  if (h.flags.syn) return;

  if (h.flags.ack) handle_ack(h);
  if (packet.payload_bytes > 0) handle_data(h, packet.payload_bytes);

  if (h.flags.fin) {
    const std::uint32_t fin_seq = h.seq + packet.payload_bytes;
    if (!peer_fin_seen_) {
      peer_fin_seen_ = true;
      peer_fin_seq_ = fin_seq;
    }
    if (rcv_nxt_ == peer_fin_seq_) {
      ++rcv_nxt_;
      if (state_ == State::kEstablished) state_ = State::kClosedByPeer;
      if (on_peer_fin) on_peer_fin();
    }
    send_ack();
  }
}

std::uint32_t SeedTcpConnection::send_limit_seq() const {
  const std::uint32_t window =
      std::min(cwnd_, peer_window_ == 0 ? config_.mss : peer_window_);
  return snd_una_ + window;
}

bool SeedTcpConnection::all_data_acked() const {
  return snd_una_ == snd_nxt_;
}

void SeedTcpConnection::try_transmit() {
  if (state_ != State::kEstablished && state_ != State::kFinSent &&
      state_ != State::kClosedByPeer) {
    return;
  }
  while (true) {
    const std::uint64_t offset = seq_diff(snd_nxt_, iss_ + 1);
    if (offset >= app_bytes_) break;
    const std::uint64_t available = app_bytes_ - offset;
    const std::uint32_t limit = send_limit_seq();
    if (!seq_lt(snd_nxt_, limit)) break;
    const std::uint32_t window_room = seq_diff(limit, snd_nxt_);
    const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        {config_.mss, available, window_room}));
    if (len == 0) break;
    if (len < config_.mss && len < available) break;
    const bool is_retx = seq_lt(snd_nxt_, high_water_);
    emit_segment(snd_nxt_, len, is_retx);
    snd_nxt_ += len;
    if (seq_gt(snd_nxt_, high_water_)) high_water_ = snd_nxt_;
  }
  maybe_send_fin();
}

void SeedTcpConnection::emit_segment(std::uint32_t seq, std::uint32_t len,
                                     bool is_retransmit) {
  auto pkt = proto::make_tcp_packet(local_.address, remote_.address, local_.port,
                                  remote_.port, seq, rcv_nxt_, {.ack = true},
                                  static_cast<std::uint16_t>(config_.recv_window),
                                  len);
  ++stats_.segments_sent;
  if (is_retransmit) {
    ++stats_.retransmits;
    if (timing_segment_ && seq_leq(seq, timed_seq_)) timing_segment_ = false;
  } else if (!timing_segment_) {
    timing_segment_ = true;
    timed_seq_ = seq + len;
    timed_sent_at_ = sim_.now();
  }
  if (!rto_timer_.pending()) arm_rto();
  send_packet_(std::move(pkt));
}

void SeedTcpConnection::maybe_send_fin() {
  if (!fin_requested_ || fin_sent_) return;
  const std::uint64_t offset = seq_diff(snd_nxt_, iss_ + 1);
  if (offset < app_bytes_) return;
  fin_seq_ = snd_nxt_;
  fin_sent_ = true;
  state_ = State::kFinSent;
  send_control({.ack = true, .fin = true}, fin_seq_);
  snd_nxt_ = fin_seq_ + 1;
  if (seq_gt(snd_nxt_, high_water_)) high_water_ = snd_nxt_;
  arm_rto();
}

void SeedTcpConnection::retransmit_front() {
  const std::uint64_t offset = seq_diff(snd_una_, iss_ + 1);
  if (offset < app_bytes_) {
    const std::uint64_t available = app_bytes_ - offset;
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.mss, available));
    emit_segment(snd_una_, len, /*is_retransmit=*/true);
  } else if (fin_sent_ && snd_una_ == fin_seq_) {
    ++stats_.retransmits;
    send_control({.ack = true, .fin = true}, fin_seq_);
    arm_rto();
  }
}

void SeedTcpConnection::handle_ack(const proto::TcpHeader& h) {
  if (seq_gt(h.ack, high_water_)) return;

  if (seq_gt(h.ack, snd_una_)) {
    const std::uint32_t newly = seq_diff(h.ack, snd_una_);
    stats_.bytes_acked += newly;
    snd_una_ = h.ack;
    peer_window_ = h.window;
    consecutive_timeouts_ = 0;
    if (seq_lt(snd_nxt_, snd_una_)) snd_nxt_ = snd_una_;

    if (timing_segment_ && seq_geq(h.ack, timed_seq_)) {
      timing_segment_ = false;
      update_rtt(sim_.now() - timed_sent_at_);
    }

    if (in_recovery_) {
      if (seq_geq(h.ack, recover_)) {
        in_recovery_ = false;
        dup_acks_ = 0;
        cwnd_ = std::max(ssthresh_, config_.mss);
      } else {
        retransmit_front();
        cwnd_ = std::max(config_.mss, cwnd_ - std::min(cwnd_, newly) +
                                          config_.mss);
      }
    } else {
      dup_acks_ = 0;
      if (cwnd_ < ssthresh_) {
        cwnd_ += config_.mss;
      } else {
        cwnd_ += std::max<std::uint32_t>(
            1, static_cast<std::uint32_t>(
                   std::uint64_t{config_.mss} * config_.mss / cwnd_));
      }
    }

    if (all_data_acked()) {
      rto_timer_.cancel();
      const std::uint64_t offset = seq_diff(snd_nxt_, iss_ + 1);
      const bool stream_done =
          offset >= app_bytes_ + (fin_sent_ ? 1 : 0) &&
          (!fin_requested_ || fin_sent_);
      if (stream_done && app_bytes_ > 0 && !send_complete_fired_) {
        send_complete_fired_ = true;
        if (on_send_complete) on_send_complete();
      }
    } else {
      arm_rto();
    }
    try_transmit();
    return;
  }

  if (h.ack == snd_una_ && flight_size() > 0) {
    ++dup_acks_;
    ++stats_.dup_acks_seen;
    if (!in_recovery_ && dup_acks_ == 3) {
      enter_recovery();
    } else if (in_recovery_) {
      cwnd_ += config_.mss;
      try_transmit();
    }
  }
}

void SeedTcpConnection::enter_recovery() {
  ssthresh_ = std::max(flight_size() / 2, 2 * config_.mss);
  recover_ = snd_nxt_;
  in_recovery_ = true;
  cwnd_ = ssthresh_ + 3 * config_.mss;
  ++stats_.fast_retransmits;
  retransmit_front();
}

void SeedTcpConnection::on_rto() {
  ++stats_.timeouts;
  ++consecutive_timeouts_;
  if (consecutive_timeouts_ > config_.max_retries) {
    state_ = State::kClosed;
    return;
  }
  rto_ = std::min(rto_ * 2, config_.rto_max);

  switch (state_) {
    case State::kSynSent:
      ++stats_.retransmits;
      send_control({.syn = true}, iss_);
      break;
    case State::kSynReceived:
      ++stats_.retransmits;
      send_control({.syn = true, .ack = true}, iss_);
      break;
    case State::kEstablished:
    case State::kFinSent:
    case State::kClosedByPeer: {
      ssthresh_ = std::max(flight_size() / 2, 2 * config_.mss);
      cwnd_ = config_.mss;
      in_recovery_ = false;
      dup_acks_ = 0;
      timing_segment_ = false;
      snd_nxt_ = snd_una_;
      if (fin_sent_) fin_sent_ = false;
      try_transmit();
      break;
    }
    case State::kClosed:
      return;
  }
  arm_rto();
}

void SeedTcpConnection::arm_rto() {
  rto_timer_.arm(std::clamp(rto_, config_.rto_min, config_.rto_max));
}

void SeedTcpConnection::update_rtt(sim::Duration sample) {
  if (!rtt_valid_) {
    rtt_valid_ = true;
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const auto delta = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = (3 * rttvar_ + delta) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, config_.rto_min, config_.rto_max);
}

void SeedTcpConnection::handle_data(const proto::TcpHeader& h,
                                    std::uint32_t payload) {
  const std::uint32_t end = h.seq + payload;
  if (seq_leq(end, rcv_nxt_)) {
    send_ack();
    return;
  }
  if (seq_gt(h.seq, rcv_nxt_)) {
    ++stats_.out_of_order_segments;
    auto it = ooo_.begin();
    while (it != ooo_.end() && seq_lt(it->first, h.seq)) ++it;
    ooo_.insert(it, {h.seq, end});
    for (std::size_t i = 0; i + 1 < ooo_.size();) {
      if (seq_geq(ooo_[i].second, ooo_[i + 1].first)) {
        ooo_[i].second = seq_gt(ooo_[i].second, ooo_[i + 1].second)
                             ? ooo_[i].second
                             : ooo_[i + 1].second;
        ooo_.erase(ooo_.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      } else {
        ++i;
      }
    }
    send_ack();
    return;
  }

  const std::uint32_t before = rcv_nxt_;
  rcv_nxt_ = end;
  while (!ooo_.empty() && seq_leq(ooo_.front().first, rcv_nxt_)) {
    if (seq_gt(ooo_.front().second, rcv_nxt_)) {
      rcv_nxt_ = ooo_.front().second;
    }
    ooo_.erase(ooo_.begin());
  }
  const std::uint32_t delivered = seq_diff(rcv_nxt_, before);
  delivered_bytes_ += delivered;
  if (on_data) on_data(delivered);

  if (peer_fin_seen_ && rcv_nxt_ == peer_fin_seq_) {
    ++rcv_nxt_;
    if (state_ == State::kEstablished) state_ = State::kClosedByPeer;
    if (on_peer_fin) on_peer_fin();
  }
  send_ack();
}

void SeedTcpConnection::send_ack() {
  ++stats_.acks_sent;
  auto pkt = proto::make_tcp_packet(
      local_.address, remote_.address, local_.port, remote_.port, snd_nxt_,
      rcv_nxt_, {.ack = true},
      static_cast<std::uint16_t>(config_.recv_window), 0);
  send_packet_(std::move(pkt));
}

void SeedTcpConnection::send_control(proto::TcpFlags flags, std::uint32_t seq) {
  auto pkt = proto::make_tcp_packet(
      local_.address, remote_.address, local_.port, remote_.port, seq,
      flags.ack ? rcv_nxt_ : 0, flags,
      static_cast<std::uint16_t>(config_.recv_window), 0);
  ++stats_.segments_sent;
  send_packet_(std::move(pkt));
}

// ---------------------------------------------------------------------
// SeedMux
// ---------------------------------------------------------------------

SeedTcpConnection& SeedMux::create_connection(proto::Port local_port,
                                              proto::Endpoint remote,
                                              const TcpConfig& config) {
  auto conn = std::make_unique<SeedTcpConnection>(
      sim_, config, proto::Endpoint{local_ip_, local_port}, remote,
      [this](proto::PacketPtr pkt) { send_packet(std::move(pkt)); });
  auto& ref = *conn;
  const auto [it, inserted] =
      connections_.emplace(ConnKey{local_port, remote}, std::move(conn));
  HYDRA_ASSERT_MSG(inserted, "duplicate tcp connection");
  (void)it;
  return ref;
}

SeedTcpConnection& SeedMux::tcp_connect(proto::Endpoint remote,
                                        TcpConfig config) {
  const auto port = next_ephemeral_++;
  auto& conn = create_connection(port, remote, config);
  conn.connect();
  return conn;
}

void SeedMux::tcp_listen(proto::Port port, TcpConfig config,
                         std::function<void(SeedTcpConnection&)> on_accept) {
  HYDRA_ASSERT_MSG(!listeners_.contains(port), "port already listening");
  listeners_.emplace(port, Listener{config, std::move(on_accept)});
}

void SeedMux::deliver(const proto::PacketPtr& packet) {
  HYDRA_ASSERT(packet != nullptr);
  if (!packet->tcp) {
    ++unmatched_;
    return;
  }
  const auto& h = *packet->tcp;
  const ConnKey key{h.dst_port, {packet->ip.src, h.src_port}};
  if (const auto it = connections_.find(key); it != connections_.end()) {
    it->second->segment_arrived(*packet);
    return;
  }
  if (h.flags.syn && !h.flags.ack) {
    if (const auto lit = listeners_.find(h.dst_port); lit != listeners_.end()) {
      auto& conn = create_connection(h.dst_port, key.remote,
                                     lit->second.config);
      conn.accept(h);
      if (lit->second.on_accept) lit->second.on_accept(conn);
      return;
    }
  }
  ++unmatched_;
}

SeedMux& seed_mux_of(net::Node& node) {
  return node.attachment<SeedMux>([&node] {
    auto mux = std::make_unique<SeedMux>(node.simulation(), node.ip());
    auto& stack = node.stack();
    mux->send_packet = [&stack](proto::PacketPtr packet) {
      stack.send(std::move(packet));
    };
    stack.deliver_local = [mux = mux.get(),
                           prev = std::move(stack.deliver_local)](
                              const proto::PacketPtr& packet) {
      mux->deliver(packet);
      if (prev) prev(packet);
    };
    return mux;
  });
}

}  // namespace hydra::seedtcp
