// A verbatim freeze of the pre-seam TCP implementation (the monolithic
// transport::TcpConnection before congestion control and ACK policy
// became pluggable), kept as the reference side of
// transport_differential_test. The refactor's safety contract — the
// pluggable default (NewReno + immediate ACK) is bit-identical to the
// seed — is only checkable against the seed itself, so it lives on here
// under its own namespace, wired through a SeedMux that mirrors
// transport::TransportMux's packet paths exactly.
//
// Do not "improve" this code: any change breaks the reference. It
// accepts the current transport::TcpConfig for drop-in harness reuse
// and simply ignores the tuning field (the seed had exactly one
// scheme).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/node.h"
#include "proto/packet.h"
#include "sim/simulation.h"
#include "sim/timer.h"
#include "transport/seq.h"
#include "transport/tcp.h"

namespace hydra::seedtcp {

using transport::TcpConfig;
using transport::TcpStats;
using transport::seq_diff;
using transport::seq_geq;
using transport::seq_gt;
using transport::seq_leq;
using transport::seq_lt;

class SeedTcpConnection {
 public:
  enum class State {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinSent,
    kClosedByPeer,
  };

  using SendPacket = std::function<void(proto::PacketPtr)>;

  SeedTcpConnection(sim::Simulation& simulation, TcpConfig config,
                    proto::Endpoint local, proto::Endpoint remote,
                    SendPacket send);

  SeedTcpConnection(const SeedTcpConnection&) = delete;
  SeedTcpConnection& operator=(const SeedTcpConnection&) = delete;

  void connect();
  void accept(const proto::TcpHeader& syn);

  void send(std::uint64_t bytes);
  void close();

  void segment_arrived(const proto::Packet& packet);

  std::function<void()> on_established;
  std::function<void(std::uint64_t bytes)> on_data;
  std::function<void()> on_send_complete;
  std::function<void()> on_peer_fin;

  State state() const { return state_; }
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }
  std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  const TcpStats& stats() const { return stats_; }

 private:
  void try_transmit();
  void emit_segment(std::uint32_t seq, std::uint32_t len, bool is_retransmit);
  void retransmit_front();
  void handle_ack(const proto::TcpHeader& h);
  void on_rto();
  void arm_rto();
  void update_rtt(sim::Duration sample);
  std::uint32_t flight_size() const { return seq_diff(snd_nxt_, snd_una_); }
  std::uint32_t send_limit_seq() const;
  bool all_data_acked() const;
  void enter_recovery();
  void maybe_send_fin();

  void handle_data(const proto::TcpHeader& h, std::uint32_t payload);
  void send_ack();
  void send_control(proto::TcpFlags flags, std::uint32_t seq);

  sim::Simulation& sim_;
  TcpConfig config_;
  proto::Endpoint local_;
  proto::Endpoint remote_;
  SendPacket send_packet_;
  TcpStats stats_;

  State state_ = State::kClosed;

  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t high_water_ = 0;
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0xffffffff;
  std::uint32_t peer_window_ = 0;
  std::uint64_t app_bytes_ = 0;
  bool fin_requested_ = false;
  bool fin_sent_ = false;
  bool send_complete_fired_ = false;
  std::uint32_t fin_seq_ = 0;

  unsigned dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recover_ = 0;

  bool rtt_valid_ = false;
  sim::Duration srtt_;
  sim::Duration rttvar_;
  sim::Duration rto_;
  bool timing_segment_ = false;
  std::uint32_t timed_seq_ = 0;
  sim::TimePoint timed_sent_at_;
  unsigned consecutive_timeouts_ = 0;

  sim::Timer rto_timer_;

  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  bool peer_fin_seen_ = false;
  std::uint32_t peer_fin_seq_ = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ooo_;
};

// TCP-only mirror of transport::TransportMux: same ephemeral port base,
// same connection keying, same listener dispatch, driving
// SeedTcpConnection instead.
class SeedMux {
 public:
  SeedMux(sim::Simulation& simulation, proto::Ipv4Address local_ip)
      : sim_(simulation), local_ip_(local_ip) {}

  SeedMux(const SeedMux&) = delete;
  SeedMux& operator=(const SeedMux&) = delete;

  std::function<void(proto::PacketPtr)> send_packet;

  void deliver(const proto::PacketPtr& packet);

  SeedTcpConnection& tcp_connect(proto::Endpoint remote, TcpConfig config = {});
  void tcp_listen(proto::Port port, TcpConfig config,
                  std::function<void(SeedTcpConnection&)> on_accept);

 private:
  struct ConnKey {
    proto::Port local_port;
    proto::Endpoint remote;
    friend auto operator<=>(const ConnKey&, const ConnKey&) = default;
  };
  struct Listener {
    TcpConfig config;
    std::function<void(SeedTcpConnection&)> on_accept;
  };

  SeedTcpConnection& create_connection(proto::Port local_port,
                                       proto::Endpoint remote,
                                       const TcpConfig& config);

  sim::Simulation& sim_;
  proto::Ipv4Address local_ip_;
  std::map<ConnKey, std::unique_ptr<SeedTcpConnection>> connections_;
  std::map<proto::Port, Listener> listeners_;
  proto::Port next_ephemeral_ = 49152;
  std::uint64_t unmatched_ = 0;
};

// attachment<SeedMux> accessor mirroring transport::mux_of's wiring
// (send into the node's IP stack, deliver_local chained).
SeedMux& seed_mux_of(net::Node& node);

}  // namespace hydra::seedtcp
