// Parameterized property tests: invariants that must hold across the
// whole configuration space (policy × rate × topology × seed).
#include <gtest/gtest.h>

#include <tuple>

#include "app/experiment.h"
#include "core/aggregator.h"
#include "phy/error_model.h"
#include "proto/frames.h"
#include "topo/experiment.h"

namespace hydra {
namespace {

// ---------------------------------------------------------------------
// TCP transfer correctness across the configuration space
// ---------------------------------------------------------------------

struct PolicyCase {
  const char* name;
  core::AggregationPolicy policy;
};

using TransferParam = std::tuple<int /*policy*/, int /*mode idx*/,
                                 int /*seed*/>;
using TopoParam = std::tuple<int /*policy*/, int /*topology*/>;

const PolicyCase kPolicies[] = {
    {"NA", core::AggregationPolicy::na()},
    {"UA", core::AggregationPolicy::ua()},
    {"BA", core::AggregationPolicy::ba()},
    {"DBA", core::AggregationPolicy::dba()},
};

class TcpTransferProperty : public ::testing::TestWithParam<TransferParam> {};

TEST_P(TcpTransferProperty, FileAlwaysDeliveredExactly) {
  const auto [policy_idx, mode_idx, seed] = GetParam();
  topo::ExperimentConfig cfg;
  cfg.scenario = topo::ScenarioSpec::two_hop();
  cfg.scenario.node.policy = kPolicies[policy_idx].policy;
  cfg.scenario.node.unicast_mode = proto::mode_by_index(mode_idx);
  cfg.scenario.node.broadcast_mode = proto::mode_by_index(mode_idx);
  cfg.tcp_file_bytes = 60'000;
  cfg.seed = static_cast<std::uint64_t>(seed);

  const auto r = app::run_experiment(cfg);
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_TRUE(r.flows[0].completed)
      << kPolicies[policy_idx].name << " mode " << mode_idx << " seed "
      << seed;
  EXPECT_GT(r.flows[0].throughput_mbps, 0.0);
}

std::string transfer_param_name(
    const ::testing::TestParamInfo<TransferParam>& info) {
  return std::string(kPolicies[std::get<0>(info.param)].name) + "_mode" +
         std::to_string(std::get<1>(info.param)) + "_seed" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    PolicyRateSeedSweep, TcpTransferProperty,
    ::testing::Combine(::testing::Range(0, 4),   // NA, UA, BA, DBA
                       ::testing::Values(0, 1, 3),  // 0.65, 1.3, 2.6 Mbps
                       ::testing::Values(1, 7)),
    transfer_param_name);

// ---------------------------------------------------------------------
// Every policy on every topology delivers exactly, including the
// bidirectional workload.
// ---------------------------------------------------------------------

class TopologyPolicyProperty : public ::testing::TestWithParam<TopoParam> {};

TEST_P(TopologyPolicyProperty, AllFlowsCompleteExactly) {
  const auto [policy_idx, topo_idx] = GetParam();
  const topo::ScenarioSpec topologies[] = {topo::ScenarioSpec::two_hop(),
                                           topo::ScenarioSpec::three_hop(),
                                           topo::ScenarioSpec::fig6_star()};
  topo::ExperimentConfig cfg;
  cfg.scenario = topologies[topo_idx];
  cfg.scenario.node.policy = kPolicies[policy_idx].policy;
  cfg.tcp_file_bytes = 50'000;
  cfg.scenario.node.unicast_mode = proto::mode_by_index(1);
  cfg.scenario.node.broadcast_mode = proto::mode_by_index(1);

  const auto r = app::run_experiment(cfg);
  for (const auto& flow : r.flows) {
    EXPECT_TRUE(flow.completed)
        << kPolicies[policy_idx].name << " topo " << topo_idx;
    EXPECT_EQ(flow.bytes, 50'000u);
  }
  // Conservation at the MAC: every node delivered at least as many
  // subframes up as it duplicated away.
  for (const auto& s : r.node_stats) {
    EXPECT_EQ(s.retry_drops, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(PolicyTopoSweep, TopologyPolicyProperty,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 3)));

class BidirectionalProperty : public ::testing::TestWithParam<int> {};

TEST_P(BidirectionalProperty, OpposingTransfersBothComplete) {
  topo::ExperimentConfig cfg;
  cfg.scenario = topo::ScenarioSpec::two_hop();
  cfg.scenario.node.policy = (GetParam() % 2 == 0)
                                 ? core::AggregationPolicy::ba()
                                 : core::AggregationPolicy::ua();
  cfg.traffic = topo::TrafficKind::kTcpBidirectional;
  cfg.tcp_file_bytes = 40'000;
  cfg.seed = static_cast<std::uint64_t>(GetParam() + 1);
  const auto r = app::run_experiment(cfg);
  ASSERT_EQ(r.flows.size(), 2u);
  EXPECT_TRUE(r.flows[0].completed);
  EXPECT_TRUE(r.flows[1].completed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BidirectionalProperty,
                         ::testing::Range(0, 4));

// ---------------------------------------------------------------------
// Aggregate assembly invariants across sizes and shapes
// ---------------------------------------------------------------------

class AggregatorSizeProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AggregatorSizeProperty, NeverExceedsLimitUnlessSingleton) {
  const auto [max_kb, n_frames] = GetParam();
  auto policy = core::AggregationPolicy::ba();
  policy.max_aggregate_bytes = static_cast<std::size_t>(max_kb) * 1024;
  core::Aggregator agg(policy);
  core::DualQueue q(128);

  for (int i = 0; i < n_frames; ++i) {
    proto::MacSubframe sf;
    sf.receiver = proto::MacAddress(1);
    sf.packet = proto::make_tcp_packet(proto::Ipv4Address::for_node(0),
                                     proto::Ipv4Address::for_node(1), 1, 2, 0,
                                     0, {.ack = true}, 100, 1357);
    q.unicast().push(sf, {});
    proto::MacSubframe ack;
    ack.receiver = proto::MacAddress(2);
    ack.packet = proto::make_tcp_packet(proto::Ipv4Address::for_node(1),
                                      proto::Ipv4Address::for_node(0), 2, 1, 0,
                                      0, {.ack = true}, 100, 0);
    q.broadcast().push(ack, {});
  }

  while (!q.empty()) {
    const auto frame = agg.build(q);
    ASSERT_FALSE(frame.empty());
    if (frame.subframe_count() > 1) {
      EXPECT_LE(frame.total_wire_bytes(), policy.max_aggregate_bytes);
    }
    // Layout invariant: broadcast subframes precede unicast ones, and
    // unicast subframes share one receiver.
    for (std::size_t i = 1; i < frame.unicast.size(); ++i) {
      EXPECT_EQ(frame.unicast[i].receiver, frame.unicast[0].receiver);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SizeSweep, AggregatorSizeProperty,
                         ::testing::Combine(::testing::Values(1, 2, 5, 11,
                                                              15),
                                            ::testing::Values(1, 3, 8, 20)));

// ---------------------------------------------------------------------
// Subframe wire-size properties
// ---------------------------------------------------------------------

class SubframeSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(SubframeSizeProperty, AlignedBoundedAndRoundTrips) {
  const auto payload = static_cast<std::uint32_t>(GetParam());
  const auto pkt = proto::make_udp_packet(proto::Ipv4Address::for_node(0),
                                        proto::Ipv4Address::for_node(1), 1, 2,
                                        payload);
  proto::MacSubframe sf;
  sf.receiver = proto::MacAddress(1);
  sf.transmitter = proto::MacAddress(2);
  sf.source = proto::MacAddress(2);
  sf.packet = pkt;

  const auto wire = sf.wire_bytes();
  EXPECT_EQ(wire % proto::kSubframeAlign, 0u);
  EXPECT_GE(wire, proto::kMinSubframeBytes);

  const auto bytes = sf.serialize();
  ASSERT_EQ(bytes.size(), wire);
  BufferReader r(bytes);
  const auto parsed = proto::MacSubframe::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->packet->payload_bytes, payload);
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(PayloadSweep, SubframeSizeProperty,
                         ::testing::Values(0, 1, 3, 50, 99, 128, 500, 1000,
                                           1357, 1472));

// ---------------------------------------------------------------------
// Error-model monotonicity
// ---------------------------------------------------------------------

class ErrorModelProperty : public ::testing::TestWithParam<int> {};

TEST_P(ErrorModelProperty, ErrorNeverDecreasesWithFrameOffset) {
  const auto mode_idx = static_cast<std::size_t>(GetParam());
  const phy::ErrorModel model;
  const auto& mode = proto::mode_by_index(mode_idx);
  double prev = -1.0;
  for (std::int64_t ms = 0; ms <= 120; ms += 5) {
    const auto p = model.subframe_error_probability(
        mode, 25.0, 1464, sim::Duration::millis(ms));
    EXPECT_GE(p, prev - 1e-12) << "offset " << ms << " ms";
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST_P(ErrorModelProperty, ErrorDecreasesWithSnr) {
  const auto mode_idx = static_cast<std::size_t>(GetParam());
  const phy::ErrorModel model;
  const auto& mode = proto::mode_by_index(mode_idx);
  double prev = 2.0;
  for (double snr = 0; snr <= 40; snr += 2.5) {
    const auto p = model.subframe_error_probability(
        mode, snr, 1000, sim::Duration::millis(10));
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ErrorModelProperty,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Conservation across UDP experiments
// ---------------------------------------------------------------------

class UdpConservationProperty : public ::testing::TestWithParam<int> {};

TEST_P(UdpConservationProperty, SinkNeverExceedsSource) {
  topo::ExperimentConfig cfg;
  cfg.scenario = topo::ScenarioSpec::two_hop();
  cfg.scenario.node.policy = (GetParam() % 2 == 0) ? core::AggregationPolicy::ba()
                                     : core::AggregationPolicy::na();
  cfg.traffic = topo::TrafficKind::kUdp;
  cfg.udp_duration = sim::Duration::seconds(5);
  cfg.udp_packets_per_tick = static_cast<std::uint32_t>(1 + GetParam());
  cfg.seed = static_cast<std::uint64_t>(GetParam() + 1);

  const auto r = app::run_experiment(cfg);
  ASSERT_EQ(r.flows.size(), 1u);
  // Delivered payload cannot exceed offered load.
  const double offered_packets =
      (cfg.udp_duration / cfg.udp_interval + 1) * cfg.udp_packets_per_tick;
  EXPECT_LE(static_cast<double>(r.flows[0].bytes),
            offered_packets * cfg.udp_payload_bytes);
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, UdpConservationProperty,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace hydra
