// The pluggable medium: reachability-culled delivery must be
// bit-identical to full mesh (the acceptance bar for making it the
// default on large scenarios), the spatial index must find every
// in-reach receiver across cell boundaries, and the propagation-delay
// fix (round to nearest, 1 m clamp) is pinned here.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "app/udp_cbr.h"
#include "app/udp_sink.h"
#include "phy/medium.h"
#include "phy/phy.h"
#include "phy/spatial_index.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "topo/scenario.h"

namespace hydra {
namespace {

// ---------------------------------------------------------------------
// Propagation-delay and reach math
// ---------------------------------------------------------------------

TEST(MediumMath, PropagationDelayRoundsToNearestNanosecond) {
  const phy::MediumConfig config;
  // 2.6 m at 3e8 m/s = 8.667 ns: rounds up (the old cast truncated to 8).
  EXPECT_EQ(phy::propagation_delay(config, 2.6).ns(), 9);
  // 2.5 m = 8.333 ns: rounds down.
  EXPECT_EQ(phy::propagation_delay(config, 2.5).ns(), 8);
}

TEST(MediumMath, PropagationDelayClampsLikePathLoss) {
  const phy::MediumConfig config;
  // Below 1 m both the path-loss model and the propagation delay clamp
  // to the 1 m point (3.33 ns -> 3 ns).
  EXPECT_EQ(phy::propagation_delay(config, 0.2).ns(),
            phy::propagation_delay(config, 1.0).ns());
  EXPECT_EQ(phy::propagation_delay(config, 0.2).ns(), 3);
  EXPECT_DOUBLE_EQ(phy::path_loss_db(config, 0.2),
                   phy::path_loss_db(config, 1.0));
}

TEST(MediumMath, ReachRadiusInvertsThePathLossModel) {
  const phy::MediumConfig config;
  const double tx_dbm = 8.86;  // the paper's 7.7 mW
  const double reach = phy::reach_radius_m(config, tx_dbm);
  // At the reach radius the receive power sits exactly on the cull floor.
  EXPECT_NEAR(tx_dbm - phy::path_loss_db(config, reach),
              phy::cull_floor_dbm(config), 1e-9);
  // ~36.5 m under the default model; far beyond the paper's 7.5 m spans.
  EXPECT_NEAR(reach, 36.5, 0.5);
}

TEST(MediumMath, ReachRadiusNeverDropsBelowOneMetre) {
  // A cull floor sitting just under the transmit power leaves almost no
  // link budget; the documented contract is reach >= 1 m (the same floor
  // the path-loss model clamps to), because the spatial grid's cell
  // width — and the incremental-move locality checks — are derived from
  // it. Sweep the budget through and across zero.
  phy::MediumConfig config;
  config.path_loss_at_1m_db = 40.0;
  config.noise_floor_dbm = -50.0;
  config.cull_margin_db = 0.0;
  config.cca_threshold_dbm = -50.0;  // floor = -50 dBm
  // tx power barely above floor + 1 m loss: budget = tx - (-50) - 40.
  for (const double tx_dbm : {-10.5, -10.1, -10.0, -9.999, -9.9, -9.0}) {
    const double reach = phy::reach_radius_m(config, tx_dbm);
    EXPECT_GE(reach, 1.0) << "tx " << tx_dbm << " dBm";
  }
  // At and below zero budget the clamp pins exactly 1 m.
  EXPECT_DOUBLE_EQ(phy::reach_radius_m(config, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(phy::reach_radius_m(config, -60.0), 1.0);
}

TEST(MediumMath, CullFloorNeverRisesAboveCcaThreshold) {
  phy::MediumConfig config;
  config.cull_margin_db = -50.0;  // would put the floor above CCA
  // The clamp is what guarantees culled == full mesh: only receivers
  // that are inert (below CCA) may ever be culled.
  EXPECT_LE(phy::cull_floor_dbm(config), config.cca_threshold_dbm);
  config.cull_margin_db = 10.0;
  EXPECT_DOUBLE_EQ(phy::cull_floor_dbm(config),
                   config.noise_floor_dbm - 10.0);
}

// ---------------------------------------------------------------------
// Delivery backends at the PHY level
// ---------------------------------------------------------------------

phy::PhyFrame test_frame() {
  phy::PhyFrame f;
  f.unicast.mode = proto::base_mode();
  f.unicast.subframe_bytes = {200};
  f.payload = std::make_shared<phy::Payload>();
  return f;
}

TEST(MediumDelivery, DefaultPolicyIsFullMesh) {
  EXPECT_EQ(phy::MediumConfig{}.delivery, phy::DeliveryPolicy::kFullMesh);
}

TEST(MediumDelivery, CulledSkipsOutOfReachReceivers) {
  sim::Simulation s(1);
  phy::MediumConfig config;
  config.delivery = phy::DeliveryPolicy::kCulled;
  phy::Medium medium(s, config);
  phy::Phy a(s, medium, {.position = {0, 0}}, 0);
  phy::Phy b(s, medium, {.position = {30, 0}}, 1);   // inside ~36.5 m reach
  phy::Phy c(s, medium, {.position = {40, 0}}, 2);   // outside
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(b.rx_starts(), 1u);
  EXPECT_EQ(c.rx_starts(), 0u);
  EXPECT_EQ(medium.deliveries_scheduled(), 1u);
}

TEST(MediumDelivery, FullMeshDeliversEverywhereRegardlessOfReach) {
  sim::Simulation s(1);
  phy::Medium medium(s);  // default kFullMesh
  phy::Phy a(s, medium, {.position = {0, 0}}, 0);
  phy::Phy b(s, medium, {.position = {30, 0}}, 1);
  phy::Phy c(s, medium, {.position = {4000, 0}}, 2);  // tens of dB under noise
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(b.rx_starts(), 1u);
  EXPECT_EQ(c.rx_starts(), 1u);
  EXPECT_EQ(medium.deliveries_scheduled(), 2u);
}

TEST(MediumDelivery, SpatialIndexFindsReceiversAcrossCellBoundaries) {
  // Cells are one reach radius (~36.5 m) wide; 0 / 35 / 70 m puts the
  // outer pair in different cells with the middle node in reach of both.
  sim::Simulation s(1);
  phy::MediumConfig config;
  config.delivery = phy::DeliveryPolicy::kCulled;
  phy::Medium medium(s, config);
  phy::Phy left(s, medium, {.position = {0, 0}}, 0);
  phy::Phy mid(s, medium, {.position = {35, 0}}, 1);
  phy::Phy right(s, medium, {.position = {70, 0}}, 2);

  mid.transmit(test_frame());
  s.run();
  EXPECT_EQ(left.rx_starts(), 1u);   // 35 m: in reach, neighbor cell
  EXPECT_EQ(right.rx_starts(), 1u);  // 35 m the other way

  left.transmit(test_frame());
  s.run();
  EXPECT_EQ(mid.rx_starts(), 1u);
  EXPECT_EQ(right.rx_starts(), 1u);  // 70 m from left: culled
}

TEST(MediumDelivery, LateAttachRebuildsTheDeliveryLists) {
  sim::Simulation s(1);
  phy::MediumConfig config;
  config.delivery = phy::DeliveryPolicy::kCulled;
  phy::Medium medium(s, config);
  phy::Phy a(s, medium, {.position = {0, 0}}, 0);
  phy::Phy b(s, medium, {.position = {10, 0}}, 1);
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(b.rx_starts(), 1u);

  phy::Phy late(s, medium, {.position = {5, 0}}, 2);
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(late.rx_starts(), 1u);
  EXPECT_EQ(b.rx_starts(), 2u);
}

TEST(MediumDelivery, ShardedSkipsOutOfReachReceiversLikeCulled) {
  sim::Simulation s(1);
  phy::MediumConfig config;
  config.delivery = phy::DeliveryPolicy::kSharded;
  config.shard_threads = 4;
  phy::Medium medium(s, config);
  phy::Phy a(s, medium, {.position = {0, 0}}, 0);
  phy::Phy b(s, medium, {.position = {30, 0}}, 1);   // inside ~36.5 m reach
  phy::Phy c(s, medium, {.position = {40, 0}}, 2);   // outside
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(b.rx_starts(), 1u);
  EXPECT_EQ(c.rx_starts(), 0u);
  EXPECT_EQ(medium.deliveries_scheduled(), 1u);
}

// ---------------------------------------------------------------------
// Incremental attach: the touched node alone extends the lists
// ---------------------------------------------------------------------

TEST(MediumIncrementalAttach, LateAttachSkipsTheFullRebuild) {
  // Two scenarios for each policy: one attaches the third node after
  // the lists were built (the incremental path), one attaches everyone
  // up front. After the late attach, both must deliver identically —
  // and the incremental medium must have rebuilt exactly once.
  for (const auto policy :
       {phy::DeliveryPolicy::kFullMesh, phy::DeliveryPolicy::kCulled,
        phy::DeliveryPolicy::kSharded}) {
    phy::MediumConfig config;
    config.delivery = policy;

    sim::Simulation s1(1);
    phy::Medium incremental(s1, config);
    phy::Phy a1(s1, incremental, {.position = {0, 0}}, 0);
    phy::Phy b1(s1, incremental, {.position = {10, 0}}, 1);
    a1.transmit(test_frame());
    s1.run();
    EXPECT_EQ(incremental.rebuilds(), 1u) << phy::to_string(policy);
    phy::Phy late(s1, incremental, {.position = {5, 0}}, 2);
    const auto inc_pre_deliveries = incremental.deliveries_scheduled();
    const auto a1_pre = a1.rx_starts();
    const auto b1_pre = b1.rx_starts();
    a1.transmit(test_frame());
    b1.transmit(test_frame());
    s1.run();

    sim::Simulation s2(1);
    phy::Medium scratch(s2, config);
    phy::Phy a2(s2, scratch, {.position = {0, 0}}, 0);
    phy::Phy b2(s2, scratch, {.position = {10, 0}}, 1);
    phy::Phy c2(s2, scratch, {.position = {5, 0}}, 2);
    a2.transmit(test_frame());
    s2.run();
    const auto scr_pre_deliveries = scratch.deliveries_scheduled();
    const auto a2_pre = a2.rx_starts();
    const auto b2_pre = b2.rx_starts();
    const auto c2_pre = c2.rx_starts();
    a2.transmit(test_frame());
    b2.transmit(test_frame());
    s2.run();

    // The attach was absorbed without a second rebuild...
    EXPECT_EQ(incremental.rebuilds(), 1u) << phy::to_string(policy);
    EXPECT_EQ(incremental.incremental_attaches(), 1u)
        << phy::to_string(policy);
    // ...and the post-attach transmissions deliver exactly like a
    // from-scratch build, in both directions (the scratch scenario's
    // pre-attach phase differs — the third node already exists — so the
    // comparison is over the second phase alone).
    EXPECT_EQ(late.rx_starts(), c2.rx_starts() - c2_pre)
        << phy::to_string(policy);
    EXPECT_EQ(a1.rx_starts() - a1_pre, a2.rx_starts() - a2_pre)
        << phy::to_string(policy);
    EXPECT_EQ(b1.rx_starts() - b1_pre, b2.rx_starts() - b2_pre)
        << phy::to_string(policy);
    EXPECT_EQ(incremental.deliveries_scheduled() - inc_pre_deliveries,
              scratch.deliveries_scheduled() - scr_pre_deliveries)
        << phy::to_string(policy);
  }
}

TEST(MediumIncrementalAttach, OutOfBoundsAttachFallsBackToRebuild) {
  // A newcomer outside the built grid's bounding box cannot be patched
  // in locally (its cell does not exist); the culled backends must
  // detect that and rebuild — and delivery must still be exact.
  sim::Simulation s(1);
  phy::MediumConfig config;
  config.delivery = phy::DeliveryPolicy::kCulled;
  phy::Medium medium(s, config);
  phy::Phy a(s, medium, {.position = {0, 0}}, 0);
  phy::Phy b(s, medium, {.position = {10, 0}}, 1);
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(medium.rebuilds(), 1u);

  phy::Phy outside(s, medium, {.position = {35, 0}}, 2);  // beyond max.x
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(medium.rebuilds(), 2u);
  EXPECT_EQ(medium.incremental_attaches(), 0u);
  EXPECT_EQ(outside.rx_starts(), 1u);  // 35 m: in reach
}

// ---------------------------------------------------------------------
// Detach: both delivery directions go away, incrementally
// ---------------------------------------------------------------------

TEST(MediumDetach, DetachRemovesBothDirectionsWithoutRebuilding) {
  for (const auto policy :
       {phy::DeliveryPolicy::kFullMesh, phy::DeliveryPolicy::kCulled,
        phy::DeliveryPolicy::kSharded}) {
    phy::MediumConfig config;
    config.delivery = policy;
    sim::Simulation s(1);
    phy::Medium medium(s, config);
    phy::Phy a(s, medium, {.position = {0, 0}}, 0);
    phy::Phy b(s, medium, {.position = {10, 0}}, 1);
    phy::Phy c(s, medium, {.position = {20, 0}}, 2);
    a.transmit(test_frame());
    s.run();
    EXPECT_EQ(medium.rebuilds(), 1u) << phy::to_string(policy);
    EXPECT_EQ(b.rx_starts(), 1u);

    EXPECT_TRUE(medium.detach(b));
    EXPECT_FALSE(b.attached());
    EXPECT_EQ(medium.attached().size(), 2u);
    // Inbound direction: b no longer hears a.
    a.transmit(test_frame());
    s.run();
    EXPECT_EQ(b.rx_starts(), 1u) << phy::to_string(policy);
    EXPECT_EQ(c.rx_starts(), 2u) << phy::to_string(policy);
    // Outbound direction: a detached b transmits into the void.
    const auto scheduled = medium.deliveries_scheduled();
    b.transmit(test_frame());
    s.run();
    EXPECT_EQ(medium.deliveries_scheduled(), scheduled)
        << phy::to_string(policy);
    EXPECT_EQ(a.rx_starts(), 0u);
    // The patch was absorbed without a second rebuild.
    EXPECT_EQ(medium.rebuilds(), 1u) << phy::to_string(policy);
    EXPECT_EQ(medium.detaches(), 1u);
    EXPECT_EQ(medium.incremental_detaches(), 1u) << phy::to_string(policy);
  }
}

TEST(MediumDetach, DetachIsIdempotentAndReattachRestoresDelivery) {
  sim::Simulation s(1);
  phy::MediumConfig config;
  config.delivery = phy::DeliveryPolicy::kCulled;
  phy::Medium medium(s, config);
  phy::Phy a(s, medium, {.position = {0, 0}}, 0);
  phy::Phy b(s, medium, {.position = {10, 0}}, 1);
  a.transmit(test_frame());
  s.run();

  EXPECT_TRUE(medium.detach(b));
  EXPECT_FALSE(medium.detach(b));  // second detach: not attached, no-op
  EXPECT_EQ(medium.detaches(), 1u);

  medium.attach(b);
  EXPECT_TRUE(b.attached());
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(b.rx_starts(), 2u);
}

TEST(MediumDetach, DetachCancelsInFlightDeliveries) {
  // a's frame is mid-air at b (rx_start ran, rx_end still queued) when b
  // detaches: the queued rx_end must be cancelled — not delivered to a
  // PHY the medium no longer knows — and the half-open reception must be
  // aborted so CCA clears.
  sim::Simulation s(1);
  phy::MediumConfig config;
  config.delivery = phy::DeliveryPolicy::kCulled;
  phy::Medium medium(s, config);
  phy::Phy a(s, medium, {.position = {0, 0}}, 0);
  phy::Phy b(s, medium, {.position = {10, 0}}, 1);
  a.transmit(test_frame());
  s.run_until(s.now() + sim::Duration::micros(5));
  ASSERT_EQ(b.rx_starts(), 1u);
  ASSERT_TRUE(b.cca_busy()) << "reception should be in progress";

  EXPECT_TRUE(medium.detach(b));
  EXPECT_FALSE(b.cca_busy()) << "detach must abort the open reception";
  s.run();
  EXPECT_EQ(b.frames_received(), 0u) << "cancelled rx_end must not decode";
}

TEST(MediumDetach, DestroyingAPhyMidFlightLeavesNoDanglingEvents) {
  // The lifecycle bug this PR flushes out: a Phy destroyed while
  // rx_start/rx_end events are queued for it left dangling Phy*
  // callbacks in the scheduler (ASan catches the use-after-free when the
  // suite runs sanitized). Destroy a mid-flight receiver AND a
  // mid-flight transmitter, then drain the queue.
  sim::Simulation s(1);
  phy::MediumConfig config;
  config.delivery = phy::DeliveryPolicy::kCulled;
  phy::Medium medium(s, config);
  phy::Phy a(s, medium, {.position = {0, 0}}, 0);
  auto b = std::make_unique<phy::Phy>(
      s, medium, phy::PhyConfig{.position = {10, 0}}, 1);
  auto c = std::make_unique<phy::Phy>(
      s, medium, phy::PhyConfig{.position = {20, 0}}, 2);
  a.transmit(test_frame());
  c->transmit(test_frame());
  s.run_until(s.now() + sim::Duration::micros(5));
  ASSERT_GT(b->rx_starts(), 0u);

  b.reset();  // receiver dies with rx_end queued
  c.reset();  // transmitter dies with its tx-complete timer queued
  s.run();    // must drain without touching either
  EXPECT_GT(a.rx_starts(), 0u);  // a's own reception from c still ran
}

// ---------------------------------------------------------------------
// Move: lists patch in place, far-out positions force a rebuild
// ---------------------------------------------------------------------

TEST(MediumMove, MoveNodePatchesListsIncrementally) {
  // 0/30/60 m spread: cells are one ~36.5 m reach wide, so the world
  // spans multiple cells and moving b from mid-span to the far end
  // changes who hears whom. In-box moves must patch incrementally.
  for (const auto policy :
       {phy::DeliveryPolicy::kFullMesh, phy::DeliveryPolicy::kCulled,
        phy::DeliveryPolicy::kSharded}) {
    phy::MediumConfig config;
    config.delivery = policy;
    sim::Simulation s(1);
    phy::Medium medium(s, config);
    phy::Phy a(s, medium, {.position = {0, 0}}, 0);
    phy::Phy b(s, medium, {.position = {30, 0}}, 1);
    phy::Phy c(s, medium, {.position = {60, 0}}, 2);
    a.transmit(test_frame());
    s.run();
    EXPECT_EQ(b.rx_starts(), 1u) << phy::to_string(policy);
    EXPECT_EQ(medium.rebuilds(), 1u);

    medium.move_node(b, {58, 0});  // in-box, out of a's ~36.5 m reach
    EXPECT_DOUBLE_EQ(b.config().position.x_m, 58.0);
    a.transmit(test_frame());
    b.transmit(test_frame());
    s.run();
    if (policy == phy::DeliveryPolicy::kFullMesh) {
      // Full mesh still delivers everywhere; the patched entries carry
      // the new (inert) receive powers.
      EXPECT_EQ(b.rx_starts(), 2u);
      EXPECT_EQ(c.rx_starts(), 3u);
    } else {
      EXPECT_EQ(b.rx_starts(), 1u) << "58 m from a: culled";
      // c heard nothing before the move (60 m from a) and hears the
      // moved b from 2 m now.
      EXPECT_EQ(c.rx_starts(), 1u) << phy::to_string(policy);
    }
    EXPECT_EQ(medium.rebuilds(), 1u) << phy::to_string(policy);
    EXPECT_EQ(medium.moves(), 1u);
    EXPECT_EQ(medium.incremental_moves(), 1u) << phy::to_string(policy);
  }
}

TEST(MediumMove, FarOutOfBoxMoveForcesRebuild) {
  // The spatial grid's clamped 3×3 query is only a guaranteed superset
  // near the bounding box, and an out-of-box point cannot even be
  // inserted — so a move leaving the box must fall back to a rebuild
  // (which re-derives the box) instead of patching.
  sim::Simulation s(1);
  phy::MediumConfig config;
  config.delivery = phy::DeliveryPolicy::kCulled;
  phy::Medium medium(s, config);
  phy::Phy a(s, medium, {.position = {0, 0}}, 0);
  phy::Phy b(s, medium, {.position = {30, 0}}, 1);
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(medium.rebuilds(), 1u);

  medium.move_node(b, {200, 0});  // several cell widths past max.x
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(medium.moves(), 1u);
  EXPECT_EQ(medium.incremental_moves(), 0u);
  EXPECT_EQ(medium.rebuilds(), 2u);
  EXPECT_EQ(b.rx_starts(), 1u) << "200 m away: correctly culled";

  // And back in: the rebuilt grid covers the new box, delivery resumes.
  medium.move_node(b, {10, 0});
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(b.rx_starts(), 2u);
}

TEST(MediumMove, MoveOfDetachedPhyTakesEffectOnReattach) {
  sim::Simulation s(1);
  phy::MediumConfig config;
  config.delivery = phy::DeliveryPolicy::kCulled;
  phy::Medium medium(s, config);
  phy::Phy a(s, medium, {.position = {0, 0}}, 0);
  phy::Phy b(s, medium, {.position = {10, 0}}, 1);
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(b.rx_starts(), 1u);

  medium.detach(b);
  medium.move_node(b, {200, 0});  // while detached: position only
  EXPECT_EQ(medium.moves(), 0u) << "detached moves are not patch work";
  medium.attach(b);
  a.transmit(test_frame());
  s.run();
  EXPECT_EQ(b.rx_starts(), 1u) << "reattached 200 m away: out of reach";
}

// ---------------------------------------------------------------------
// Spatial-index property: candidates ⊇ every in-reach receiver
// ---------------------------------------------------------------------

TEST(SpatialIndexProperty, NeighborhoodCoversEveryInReachPair) {
  // Random placements over a world much wider than one cell: for every
  // node, the 3×3 candidate set must contain every node within the
  // query radius — the index may over-approximate, never drop.
  const double reach = 36.5;
  for (const std::uint64_t seed : {1, 2, 3}) {
    sim::Rng rng(seed);
    std::vector<phy::Position> points;
    for (int i = 0; i < 80; ++i) {
      points.push_back({rng.uniform() * 200.0, rng.uniform() * 150.0});
    }
    phy::SpatialGrid grid;
    grid.build(points, reach);
    EXPECT_GE(grid.cells_x(), 3) << "world should span several cells";

    for (std::size_t i = 0; i < points.size(); ++i) {
      std::set<std::uint32_t> candidates;
      grid.neighborhood(points[i],
                        [&](std::uint32_t j) { candidates.insert(j); });
      EXPECT_TRUE(candidates.count(static_cast<std::uint32_t>(i)));
      for (std::size_t j = 0; j < points.size(); ++j) {
        if (phy::distance_m(points[i], points[j]) <= reach) {
          EXPECT_TRUE(candidates.count(static_cast<std::uint32_t>(j)))
              << "seed " << seed << ": node " << j << " in reach of " << i
              << " but missing from its candidate set";
        }
      }
    }
  }
}

TEST(SpatialIndexProperty, NearBoxQueriesStaySupersets_FartherOutIsUnproven) {
  // The clamped query's superset guarantee is documented for positions
  // within one cell width of the bounding box — the widest excursion an
  // incremental move may rely on without re-deriving the box. Pin the
  // guaranteed band with random out-of-box offsets up to one cell width;
  // beyond it move_node must (and does) force a rebuild, which the
  // medium-level FarOutOfBoxMoveForcesRebuild test covers.
  const double reach = 36.5;
  for (const std::uint64_t seed : {11, 12, 13}) {
    sim::Rng rng(seed);
    std::vector<phy::Position> points;
    for (int i = 0; i < 60; ++i) {
      points.push_back({rng.uniform() * 220.0, rng.uniform() * 160.0});
    }
    phy::SpatialGrid grid;
    grid.build(points, reach);
    const double cell = grid.cell_m();

    for (int q = 0; q < 40; ++q) {
      // A query position pushed out of the box by up to one cell width
      // on a random side (mixing an out-of-box axis with an in-box one).
      phy::Position p{rng.uniform() * 220.0, rng.uniform() * 160.0};
      const double off = rng.uniform() * cell;
      switch (q % 4) {
        case 0: p.x_m = 220.0 + off; break;
        case 1: p.x_m = -off; break;
        case 2: p.y_m = 160.0 + off; break;
        case 3: p.y_m = -off; break;
      }
      EXPECT_FALSE(grid.contains(p));
      std::set<std::uint32_t> candidates;
      grid.neighborhood(p, [&](std::uint32_t j) { candidates.insert(j); });
      for (std::size_t j = 0; j < points.size(); ++j) {
        if (phy::distance_m(p, points[j]) <= reach) {
          EXPECT_TRUE(candidates.count(static_cast<std::uint32_t>(j)))
              << "seed " << seed << ": in-reach point " << j
              << " missing from a near-box out-of-box query";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Shard-plan property: stripes partition the cell set exactly
// ---------------------------------------------------------------------

TEST(ShardPlanProperty, StripesPartitionColumnsExactly) {
  for (const int cells_x : {1, 2, 3, 7, 11, 64}) {
    for (const std::size_t stripes : {1u, 2u, 3u, 4u, 5u, 9u}) {
      const phy::ShardPlan plan(cells_x, stripes);
      EXPECT_EQ(plan.stripes(),
                std::min<std::size_t>(stripes, cells_x));
      // Ranges tile [0, cells_x) contiguously with no gaps or overlap,
      // and stripe_of agrees with the ranges for every column.
      int expected_first = 0;
      for (std::size_t s = 0; s < plan.stripes(); ++s) {
        const auto [first, last] = plan.stripe_columns(s);
        EXPECT_EQ(first, expected_first);
        EXPECT_LT(first, last) << "empty stripe";
        for (int col = first; col < last; ++col) {
          EXPECT_EQ(plan.stripe_of(col), s);
        }
        expected_first = last;
      }
      EXPECT_EQ(expected_first, cells_x);
    }
  }
}

TEST(ShardPlanProperty, EveryNodeLandsInExactlyOneStripe) {
  // The backend's grouping: node -> clamped cell column -> stripe. Over
  // random placements every node must land in exactly one stripe, so no
  // worker computes (or misses) a source another worker owns.
  sim::Rng rng(7);
  std::vector<phy::Position> points;
  for (int i = 0; i < 120; ++i) {
    points.push_back({rng.uniform() * 300.0, rng.uniform() * 80.0});
  }
  phy::SpatialGrid grid;
  grid.build(points, 36.5);
  const phy::ShardPlan plan(grid.cells_x(), 4);
  EXPECT_GE(plan.stripes(), 2u);

  std::vector<std::size_t> owners(points.size(), SIZE_MAX);
  std::vector<std::size_t> per_stripe(plan.stripes(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto stripe = plan.stripe_of(grid.clamped_cell_x(points[i]));
    ASSERT_LT(stripe, plan.stripes());
    EXPECT_EQ(owners[i], SIZE_MAX) << "node assigned twice";
    owners[i] = stripe;
    ++per_stripe[stripe];
  }
  std::size_t total = 0;
  for (const auto count : per_stripe) total += count;
  EXPECT_EQ(total, points.size());
}

// ---------------------------------------------------------------------
// Scenario-level policy resolution
// ---------------------------------------------------------------------

TEST(MediumPolicyResolution, AutoCullsLargeScenariosOnly) {
  // Paper topologies stay on the exact-parity full mesh.
  EXPECT_EQ(topo::ScenarioSpec::two_hop().medium_config().delivery,
            phy::DeliveryPolicy::kFullMesh);
  EXPECT_EQ(topo::ScenarioSpec::fig6_star().medium_config().delivery,
            phy::DeliveryPolicy::kFullMesh);
  // At the threshold (64 >= 32) auto switches to culling.
  EXPECT_EQ(topo::ScenarioSpec::grid(8, 8).medium_config().delivery,
            phy::DeliveryPolicy::kCulled);
  // Explicit settings win in both directions.
  auto forced_full = topo::ScenarioSpec::grid(8, 8);
  forced_full.medium.policy = topo::MediumPolicy::kFullMesh;
  EXPECT_EQ(forced_full.medium_config().delivery,
            phy::DeliveryPolicy::kFullMesh);
  auto forced_cull = topo::ScenarioSpec::two_hop();
  forced_cull.medium.policy = topo::MediumPolicy::kCulled;
  EXPECT_EQ(forced_cull.medium_config().delivery,
            phy::DeliveryPolicy::kCulled);
}

TEST(MediumPolicyResolution, PaperWorldsFitInsideOneReachRadius) {
  // Every paper topology spans less than the reach radius, so culled
  // delivery cannot drop anyone even geometrically.
  for (const auto& spec :
       {topo::ScenarioSpec::one_hop(), topo::ScenarioSpec::two_hop(),
        topo::ScenarioSpec::three_hop(), topo::ScenarioSpec::fig6_star()}) {
    EXPECT_LT(spec.world_bounds().diagonal_m(), spec.max_reach_m())
        << spec.label();
  }
}

// ---------------------------------------------------------------------
// Trace-digest equivalence: culled == full mesh, bit for bit
// ---------------------------------------------------------------------

std::uint32_t digest_with_policy(topo::ScenarioSpec spec,
                                 topo::MediumPolicy policy,
                                 std::uint64_t seed) {
  spec.medium.policy = policy;
  auto s = topo::Scenario::build(spec, seed);
  s.capture_traces();
  const auto sender = spec.sessions.front().sender;
  const auto receiver = spec.sessions.front().receiver;
  app::UdpSinkApp sink(s.sim(), s.node(receiver), 9001);
  app::UdpCbrConfig cbr_cfg;
  cbr_cfg.destination = {proto::Ipv4Address::for_node(receiver), 9001};
  cbr_cfg.packets_per_tick = 3;
  cbr_cfg.stop = sim::TimePoint::at(sim::Duration::seconds(2));
  app::UdpCbrApp cbr(s.sim(), s.node(sender), cbr_cfg);
  cbr.start();
  s.run_for(sim::Duration::seconds(3));
  EXPECT_GT(sink.packets(), 0u) << spec.label();
  EXPECT_FALSE(s.trace().empty()) << spec.label();
  return s.trace_digest();
}

TEST(MediumEquivalence, CulledMatchesFullMeshOnEveryPaperTopology) {
  const topo::ScenarioSpec specs[] = {
      topo::ScenarioSpec::one_hop(), topo::ScenarioSpec::two_hop(),
      topo::ScenarioSpec::three_hop(), topo::ScenarioSpec::fig6_star()};
  for (const auto& spec : specs) {
    EXPECT_EQ(digest_with_policy(spec, topo::MediumPolicy::kFullMesh, 7),
              digest_with_policy(spec, topo::MediumPolicy::kCulled, 7))
        << spec.label();
  }
}

TEST(MediumEquivalence, CulledMatchesFullMeshOnDenseGridAndRing) {
  // Grid and ring at the paper's 2.5 m spacing: everyone in reach, so
  // the culled backend must reproduce the full mesh exactly even though
  // it routes every query through the spatial index.
  for (const auto& spec :
       {topo::ScenarioSpec::grid(3, 3), topo::ScenarioSpec::ring(6)}) {
    EXPECT_EQ(digest_with_policy(spec, topo::MediumPolicy::kFullMesh, 11),
              digest_with_policy(spec, topo::MediumPolicy::kCulled, 11))
        << spec.label();
  }
}

// ---------------------------------------------------------------------
// Cull correctness: out-of-reach nodes see zero traffic
// ---------------------------------------------------------------------

topo::ScenarioSpec sparse_with_outlier();

TEST(MediumEquivalence, CulledMatchesFullMeshWhenCullingActuallyDrops) {
  // The dense cases above never cull anyone; this topology has an
  // out-of-reach outlier whose deliveries the culled backend really
  // removes — the digests must still match, because every removed
  // delivery was behaviourally inert.
  const auto spec = sparse_with_outlier();
  EXPECT_GT(spec.world_bounds().diagonal_m(), spec.max_reach_m());
  EXPECT_EQ(digest_with_policy(spec, topo::MediumPolicy::kFullMesh, 5),
            digest_with_policy(spec, topo::MediumPolicy::kCulled, 5));
}

topo::ScenarioSpec sparse_with_outlier() {
  // Three chained nodes plus one 500 m away — far outside the ~36.5 m
  // reach radius. The outlier takes no part in routing or sessions.
  auto spec = topo::ScenarioSpec::random(4, 1);
  spec.positions_override = {{0, 0}, {2.5, 0}, {5, 0}, {500, 0}};
  spec.sessions = {{0, 2}};
  return spec;
}

TEST(MediumCull, OutOfReachNodeRecordsZeroRxStarts) {
  auto spec = sparse_with_outlier();
  spec.medium.policy = topo::MediumPolicy::kCulled;
  auto s = topo::Scenario::build(spec, 3);
  app::UdpSinkApp sink(s.sim(), s.node(2), 9001);
  app::UdpCbrConfig cbr_cfg;
  cbr_cfg.destination = {proto::Ipv4Address::for_node(2), 9001};
  cbr_cfg.stop = sim::TimePoint::at(sim::Duration::seconds(2));
  app::UdpCbrApp cbr(s.sim(), s.node(0), cbr_cfg);
  cbr.start();
  s.run_for(sim::Duration::seconds(3));
  EXPECT_GT(sink.packets(), 0u);
  EXPECT_GT(s.node(1).phy().rx_starts(), 0u);
  EXPECT_EQ(s.node(3).phy().rx_starts(), 0u);
}

TEST(MediumCull, FullMeshStillBothersTheOutlier) {
  // The contrast case: under full mesh the same outlier is scheduled
  // for every transmission (the waste culling removes).
  auto spec = sparse_with_outlier();
  spec.medium.policy = topo::MediumPolicy::kFullMesh;
  auto s = topo::Scenario::build(spec, 3);
  app::UdpSinkApp sink(s.sim(), s.node(2), 9001);
  app::UdpCbrConfig cbr_cfg;
  cbr_cfg.destination = {proto::Ipv4Address::for_node(2), 9001};
  cbr_cfg.stop = sim::TimePoint::at(sim::Duration::seconds(2));
  app::UdpCbrApp cbr(s.sim(), s.node(0), cbr_cfg);
  cbr.start();
  s.run_for(sim::Duration::seconds(3));
  EXPECT_GT(s.node(3).phy().rx_starts(), 0u);
  // And because the outlier is inert, the delivered traffic is
  // identical either way.
  EXPECT_GT(sink.packets(), 0u);
}

}  // namespace
}  // namespace hydra
