// Pooled vs heap differential determinism: recycling memory through
// util::BufferPool must be invisible to the simulation. Every paper
// spec runs twice — pooling on and pooling off — under every medium
// backend (full mesh, culled, sharded at 1/2/4 threads) and both
// scheduler policies, and each pair must agree on
//
//   - the trace digest (CRC-32 over the network-event trace),
//   - the per-node MAC stats table, byte for byte, and
//   - the medium's transmission / scheduled-delivery counts.
//
// A pool bug that leaked recycled-block contents into frame payloads,
// or an allocation path whose availability changed event order, fails
// here before it can skew a figure. Registered under the `pool` ctest
// label; the TSan CI job runs it so the cross-thread free path (shard
// workers freeing blocks their lease does not own) is exercised under
// the race detector.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/flood.h"
#include "app/udp_cbr.h"
#include "app/udp_sink.h"
#include "topo/scenario.h"
#include "util/pool.h"

namespace hydra {
namespace {

struct RunFingerprint {
  std::uint32_t digest = 0;
  std::string stats;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
};

// Restores the pool toggle even when an assertion fails mid-test, so
// one failing case cannot leave the rest of the binary running with
// pooling off and mask (or fake) further differences.
class ScopedPooling {
 public:
  explicit ScopedPooling(bool on) : previous_(util::pooling_enabled()) {
    util::set_pooling_enabled(on);
  }
  ~ScopedPooling() { util::set_pooling_enabled(previous_); }

 private:
  bool previous_;
};

struct Backend {
  const char* label;
  topo::MediumPolicy policy;
  std::size_t shard_threads;
};

struct SchedulerAxis {
  const char* label;
  topo::SchedulerPolicy policy;
  unsigned workers;
};

constexpr Backend kBackends[] = {
    {"full-mesh", topo::MediumPolicy::kFullMesh, 0},
    {"culled", topo::MediumPolicy::kCulled, 0},
    {"sharded@1", topo::MediumPolicy::kSharded, 1},
    {"sharded@2", topo::MediumPolicy::kSharded, 2},
    {"sharded@4", topo::MediumPolicy::kSharded, 4},
};

constexpr SchedulerAxis kSchedulers[] = {
    {"serial", topo::SchedulerPolicy::kSerial, 0},
    {"parallel-windows@4", topo::SchedulerPolicy::kParallelWindows, 4},
};

RunFingerprint run_flood(topo::ScenarioSpec spec, const Backend& backend,
                         const SchedulerAxis& sched, bool pooled) {
  const ScopedPooling pooling(pooled);
  spec.medium.policy = backend.policy;
  spec.medium.shard_threads = backend.shard_threads;
  spec.scheduler.policy = sched.policy;
  spec.scheduler.workers = sched.workers;
  auto s = topo::Scenario::build(spec, /*seed=*/7);
  s.capture_traces();

  std::vector<std::unique_ptr<app::FloodApp>> flooders;
  for (std::size_t i = 0; i < s.size(); ++i) {
    app::FloodConfig fc;
    fc.interval = sim::Duration::millis(400);
    fc.initial_offset = sim::Duration::millis(17) * (i + 1);
    flooders.push_back(
        std::make_unique<app::FloodApp>(s.sim(), s.node(i), fc));
    flooders.back()->start();
  }
  s.run_for(sim::Duration::seconds(2));

  EXPECT_FALSE(s.trace().empty()) << spec.label();
  RunFingerprint fp;
  fp.digest = s.trace_digest();
  fp.stats = s.metrics_summary();
  fp.transmissions = s.medium().transmissions_started();
  fp.deliveries = s.medium().deliveries_scheduled();
  return fp;
}

void assert_pooling_invisible(const topo::ScenarioSpec& spec) {
  for (const auto& backend : kBackends) {
    for (const auto& sched : kSchedulers) {
      const auto pooled = run_flood(spec, backend, sched, /*pooled=*/true);
      const auto heap = run_flood(spec, backend, sched, /*pooled=*/false);
      const std::string where = std::string(spec.label()) + " / " +
                                backend.label + " / " + sched.label;
      EXPECT_EQ(pooled.digest, heap.digest)
          << where << ": pooled vs heap trace digest diverged";
      EXPECT_EQ(pooled.stats, heap.stats)
          << where << ": pooled vs heap MAC stats diverged";
      EXPECT_EQ(pooled.transmissions, heap.transmissions) << where;
      EXPECT_EQ(pooled.deliveries, heap.deliveries) << where;
    }
  }
}

TEST(PoolDeterminism, OneHop) {
  assert_pooling_invisible(topo::ScenarioSpec::one_hop());
}

TEST(PoolDeterminism, TwoHop) {
  assert_pooling_invisible(topo::ScenarioSpec::two_hop());
}

TEST(PoolDeterminism, ThreeHop) {
  assert_pooling_invisible(topo::ScenarioSpec::three_hop());
}

TEST(PoolDeterminism, Fig6Star) {
  assert_pooling_invisible(topo::ScenarioSpec::fig6_star());
}

// A wider world than the paper specs: multiple spatial-grid stripes
// under the sharded backend, so recycled blocks actually cross worker
// threads (the remote-free path) while digests are being pinned.
TEST(PoolDeterminism, WideGrid) {
  auto spec = topo::ScenarioSpec::grid(4, 4);
  spec.sessions = {{0, 15}};
  assert_pooling_invisible(spec);
}

// TCP over UDP-style routing exercises a different packet mix (acks,
// retransmissions, per-hop forwarding of unicast subframes) than the
// flood workload above.
TEST(PoolDeterminism, CbrChainPooledVsHeap) {
  auto spec = topo::ScenarioSpec::chain(4);
  const auto run_cbr = [&](bool pooled) {
    const ScopedPooling pooling(pooled);
    auto s = topo::Scenario::build(spec, /*seed=*/11);
    s.capture_traces();
    app::UdpSinkApp sink(s.sim(), s.node(3), 9001);
    app::UdpCbrConfig cfg;
    cfg.destination = {proto::Ipv4Address::for_node(3), 9001};
    cfg.packets_per_tick = 3;
    cfg.stop = sim::TimePoint::at(sim::Duration::seconds(2));
    app::UdpCbrApp cbr(s.sim(), s.node(0), cfg);
    cbr.start();
    s.run_for(sim::Duration::seconds(3));
    EXPECT_GT(sink.packets(), 0u);
    return std::pair{s.trace_digest(), s.metrics_summary()};
  };
  const auto pooled = run_cbr(true);
  const auto heap = run_cbr(false);
  EXPECT_EQ(pooled.first, heap.first) << "chain-4 CBR digest diverged";
  EXPECT_EQ(pooled.second, heap.second) << "chain-4 CBR stats diverged";
}

}  // namespace
}  // namespace hydra
