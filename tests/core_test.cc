// Unit tests for the paper's contribution: classification, dual queues,
// and aggregate assembly under every policy.
#include <gtest/gtest.h>

#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/policy.h"
#include "core/queues.h"
#include "proto/frames.h"
#include "proto/packet.h"

namespace hydra::core {
namespace {

using proto::MacAddress;
using proto::MacSubframe;

proto::PacketPtr tcp_data(std::uint32_t payload = 1357) {
  return proto::make_tcp_packet(proto::Ipv4Address::for_node(0),
                              proto::Ipv4Address::for_node(2), 1, 2, 100, 200,
                              {.ack = true}, 21712, payload);
}

proto::PacketPtr pure_ack() {
  return proto::make_tcp_packet(proto::Ipv4Address::for_node(2),
                              proto::Ipv4Address::for_node(0), 2, 1, 200, 101,
                              {.ack = true}, 21712, 0);
}

proto::PacketPtr flood_pkt() {
  return proto::make_flood_packet(proto::Ipv4Address::for_node(1), 40);
}

proto::MacSubframe subframe(proto::PacketPtr pkt, std::uint32_t receiver) {
  proto::MacSubframe sf;
  sf.receiver = proto::MacAddress(static_cast<std::uint16_t>(receiver));
  sf.transmitter = proto::MacAddress::for_node(9);
  sf.source = proto::MacAddress::for_node(9);
  sf.packet = std::move(pkt);
  return sf;
}

// --- classifier -----------------------------------------------------------

TEST(Classifier, PureAcksBecomeBroadcastWhenEnabled) {
  TcpAckClassifier c(/*tcp_ack_as_broadcast=*/true);
  EXPECT_EQ(c.classify(*pure_ack(), false), TrafficClass::kTcpAck);
  EXPECT_EQ(c.acks_classified(), 1u);
}

TEST(Classifier, DisabledLeavesAcksUnicast) {
  TcpAckClassifier c(/*tcp_ack_as_broadcast=*/false);
  EXPECT_EQ(c.classify(*pure_ack(), false), TrafficClass::kUnicast);
  EXPECT_EQ(c.acks_classified(), 0u);
}

TEST(Classifier, DataAndControlSegmentsStayUnicast) {
  TcpAckClassifier c(true);
  EXPECT_EQ(c.classify(*tcp_data(), false), TrafficClass::kUnicast);
  const auto syn = proto::make_tcp_packet(proto::Ipv4Address::for_node(0),
                                        proto::Ipv4Address::for_node(1), 1, 2,
                                        0, 0, {.syn = true}, 0, 0);
  EXPECT_EQ(c.classify(*syn, false), TrafficClass::kUnicast);
  const auto fin = proto::make_tcp_packet(proto::Ipv4Address::for_node(0),
                                        proto::Ipv4Address::for_node(1), 1, 2,
                                        0, 0, {.ack = true, .fin = true}, 0,
                                        0);
  EXPECT_EQ(c.classify(*fin, false), TrafficClass::kUnicast);
}

TEST(Classifier, LinkBroadcastAlwaysBroadcast) {
  TcpAckClassifier c(false);
  EXPECT_EQ(c.classify(*flood_pkt(), true), TrafficClass::kBroadcast);
}

TEST(Classifier, CountsPacketsSeen) {
  TcpAckClassifier c(true);
  c.classify(*tcp_data(), false);
  c.classify(*pure_ack(), false);
  c.classify(*flood_pkt(), true);
  EXPECT_EQ(c.packets_seen(), 3u);
  EXPECT_EQ(c.acks_classified(), 1u);
}

// --- queues -----------------------------------------------------------------

TEST(Queues, FifoOrder) {
  SubframeQueue q(8);
  for (int i = 0; i < 3; ++i) {
    q.push(subframe(tcp_data(100 + i), 1),
           sim::TimePoint::at(sim::Duration::millis(i)));
  }
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().subframe.packet->payload_bytes, 100u);
  EXPECT_EQ(q.pop().subframe.packet->payload_bytes, 101u);
  EXPECT_EQ(q.pop().subframe.packet->payload_bytes, 102u);
  EXPECT_TRUE(q.empty());
}

TEST(Queues, LimitDropsAndCounts) {
  SubframeQueue q(2);
  EXPECT_TRUE(q.push(subframe(tcp_data(), 1), {}));
  EXPECT_TRUE(q.push(subframe(tcp_data(), 1), {}));
  EXPECT_FALSE(q.push(subframe(tcp_data(), 1), {}));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(Queues, OldestEnqueueAcrossBothQueues) {
  DualQueue dq(8);
  EXPECT_FALSE(dq.oldest_enqueue().has_value());
  dq.unicast().push(subframe(tcp_data(), 1),
                    sim::TimePoint::at(sim::Duration::millis(5)));
  dq.broadcast().push(subframe(pure_ack(), 1),
                      sim::TimePoint::at(sim::Duration::millis(3)));
  ASSERT_TRUE(dq.oldest_enqueue().has_value());
  EXPECT_EQ(*dq.oldest_enqueue(),
            sim::TimePoint::at(sim::Duration::millis(3)));
  EXPECT_EQ(dq.total_size(), 2u);
}

// --- aggregator: NA ---------------------------------------------------------

TEST(AggregatorNa, OneSubframePerFrame) {
  Aggregator agg(AggregationPolicy::na());
  DualQueue q(16);
  q.unicast().push(subframe(tcp_data(), 1), {});
  q.unicast().push(subframe(tcp_data(), 1), {});

  const auto f1 = agg.build(q);
  EXPECT_EQ(f1.subframe_count(), 1u);
  EXPECT_EQ(f1.unicast.size(), 1u);
  const auto f2 = agg.build(q);
  EXPECT_EQ(f2.subframe_count(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(AggregatorNa, ServesBroadcastFirst) {
  Aggregator agg(AggregationPolicy::na());
  DualQueue q(16);
  q.unicast().push(subframe(tcp_data(), 1), {});
  q.broadcast().push(subframe(flood_pkt(), 0xffff), {});

  const auto f = agg.build(q);
  EXPECT_EQ(f.broadcast.size(), 1u);
  EXPECT_TRUE(f.unicast.empty());
}

// --- aggregator: UA ---------------------------------------------------------

TEST(AggregatorUa, AggregatesSameDestination) {
  Aggregator agg(AggregationPolicy::ua());
  DualQueue q(16);
  for (int i = 0; i < 3; ++i) q.unicast().push(subframe(tcp_data(), 1), {});

  const auto f = agg.build(q);
  EXPECT_EQ(f.unicast.size(), 3u);  // 3 * 1464 = 4392 <= 5120
  EXPECT_TRUE(f.broadcast.empty());
  EXPECT_TRUE(q.empty());
}

TEST(AggregatorUa, StopsAtDestinationBoundary) {
  Aggregator agg(AggregationPolicy::ua());
  DualQueue q(16);
  q.unicast().push(subframe(tcp_data(), 1), {});
  q.unicast().push(subframe(tcp_data(), 1), {});
  q.unicast().push(subframe(tcp_data(), 2), {});  // different next hop

  const auto f = agg.build(q);
  EXPECT_EQ(f.unicast.size(), 2u);
  EXPECT_EQ(q.unicast().size(), 1u);
  EXPECT_EQ(q.unicast().front()->subframe.receiver, proto::MacAddress(2));
}

TEST(AggregatorUa, RespectsMaxAggregateBytes) {
  auto policy = AggregationPolicy::ua();
  policy.max_aggregate_bytes = 3000;  // fits two 1464 B subframes
  Aggregator agg(policy);
  DualQueue q(16);
  for (int i = 0; i < 4; ++i) q.unicast().push(subframe(tcp_data(), 1), {});

  const auto f = agg.build(q);
  EXPECT_EQ(f.unicast.size(), 2u);
  EXPECT_LE(f.total_wire_bytes(), 3000u);
}

TEST(AggregatorUa, OversizedLoneSubframeStillSent) {
  auto policy = AggregationPolicy::ua();
  policy.max_aggregate_bytes = 1000;  // smaller than one data frame
  Aggregator agg(policy);
  DualQueue q(16);
  q.unicast().push(subframe(tcp_data(), 1), {});

  const auto f = agg.build(q);
  EXPECT_EQ(f.unicast.size(), 1u);
  EXPECT_GT(f.total_wire_bytes(), 1000u);
}

TEST(AggregatorUa, BroadcastGoesOutAloneLikeNa) {
  Aggregator agg(AggregationPolicy::ua());
  DualQueue q(16);
  q.broadcast().push(subframe(flood_pkt(), 0xffff), {});
  q.broadcast().push(subframe(flood_pkt(), 0xffff), {});
  q.unicast().push(subframe(tcp_data(), 1), {});

  const auto f = agg.build(q);
  EXPECT_EQ(f.broadcast.size(), 1u);  // one at a time, never mixed
  EXPECT_TRUE(f.unicast.empty());
}

// --- aggregator: BA ---------------------------------------------------------

TEST(AggregatorBa, BroadcastPrecedesUnicast) {
  Aggregator agg(AggregationPolicy::ba());
  DualQueue q(16);
  q.broadcast().push(subframe(pure_ack(), 3), {});
  q.broadcast().push(subframe(pure_ack(), 3), {});
  q.unicast().push(subframe(tcp_data(), 1), {});

  const auto f = agg.build(q);
  EXPECT_EQ(f.broadcast.size(), 2u);
  EXPECT_EQ(f.unicast.size(), 1u);
  // The unicast receiver is independent of the broadcast subframes'
  // (unicast) addresses — the paper's bi-directional relay case.
  EXPECT_EQ(f.unicast_receiver(), proto::MacAddress(1));
  EXPECT_EQ(f.broadcast[0].receiver, proto::MacAddress(3));
}

TEST(AggregatorBa, MixedFrameRespectsMaxBytes) {
  auto policy = AggregationPolicy::ba();
  policy.max_aggregate_bytes = 5 * 1024;
  Aggregator agg(policy);
  DualQueue q(64);
  for (int i = 0; i < 4; ++i) q.broadcast().push(subframe(pure_ack(), 3), {});
  for (int i = 0; i < 4; ++i) q.unicast().push(subframe(tcp_data(), 1), {});

  const auto f = agg.build(q);
  // 4 ACKs (640) + 3 data (4392) = 5032 <= 5120; a 4th data would overflow.
  EXPECT_EQ(f.broadcast.size(), 4u);
  EXPECT_EQ(f.unicast.size(), 3u);
  EXPECT_LE(f.total_wire_bytes(), policy.max_aggregate_bytes);
  EXPECT_EQ(q.unicast().size(), 1u);
}

TEST(AggregatorBa, PureBroadcastFrameWhenNoUnicast) {
  Aggregator agg(AggregationPolicy::ba());
  DualQueue q(16);
  q.broadcast().push(subframe(pure_ack(), 3), {});
  q.broadcast().push(subframe(flood_pkt(), 0xffff), {});

  const auto f = agg.build(q);
  EXPECT_EQ(f.broadcast.size(), 2u);
  EXPECT_FALSE(f.has_unicast());
}

TEST(AggregatorBa, ForwardAggregationDisabledLimitsBothPortions) {
  auto policy = AggregationPolicy::ba();
  policy.forward_aggregation = false;  // paper §6.4.4 ablation
  Aggregator agg(policy);
  DualQueue q(16);
  for (int i = 0; i < 3; ++i) q.broadcast().push(subframe(pure_ack(), 3), {});
  for (int i = 0; i < 3; ++i) q.unicast().push(subframe(tcp_data(), 1), {});

  const auto f = agg.build(q);
  EXPECT_EQ(f.broadcast.size(), 1u);
  EXPECT_EQ(f.unicast.size(), 1u);
  EXPECT_EQ(q.broadcast().size(), 2u);
  EXPECT_EQ(q.unicast().size(), 2u);
}

// --- aggregator: retry ------------------------------------------------------

TEST(AggregatorRetry, KeepsBurstAndMarksRetryFlag) {
  Aggregator agg(AggregationPolicy::ba());
  DualQueue q(16);
  for (int i = 0; i < 2; ++i) q.unicast().push(subframe(tcp_data(), 1), {});
  auto first = agg.build(q);
  ASSERT_EQ(first.unicast.size(), 2u);

  // New ACKs arrive while the burst awaits retransmission.
  q.broadcast().push(subframe(pure_ack(), 3), {});
  const auto retry = agg.build_retry(q, first.unicast);
  EXPECT_EQ(retry.unicast.size(), 2u);
  EXPECT_EQ(retry.broadcast.size(), 1u);
  for (const auto& sf : retry.unicast) EXPECT_TRUE(sf.retry);
}

TEST(AggregatorRetry, NoBroadcastWhenBurstFillsFrame) {
  auto policy = AggregationPolicy::ba();
  policy.max_aggregate_bytes = 3 * 1464;
  Aggregator agg(policy);
  DualQueue q(16);
  for (int i = 0; i < 3; ++i) q.unicast().push(subframe(tcp_data(), 1), {});
  auto burst = agg.build(q);
  ASSERT_EQ(burst.unicast.size(), 3u);

  q.broadcast().push(subframe(pure_ack(), 3), {});
  const auto retry = agg.build_retry(q, burst.unicast);
  EXPECT_TRUE(retry.broadcast.empty());  // 160 B would not fit
  EXPECT_EQ(q.broadcast().size(), 1u);   // still queued
}

// --- delayed aggregation ----------------------------------------------------

TEST(DelayedAggregation, HoldsUntilThreshold) {
  Aggregator agg(AggregationPolicy::dba(3));
  DualQueue q(16);
  std::optional<sim::TimePoint> deadline;
  const auto t0 = sim::TimePoint::origin();

  EXPECT_FALSE(agg.may_transmit(q, t0, &deadline));  // empty

  q.unicast().push(subframe(tcp_data(), 1), t0);
  EXPECT_FALSE(agg.may_transmit(q, t0, &deadline));
  ASSERT_TRUE(deadline.has_value());
  EXPECT_EQ(*deadline, t0 + agg.policy().delay_timeout);

  q.unicast().push(subframe(tcp_data(), 1), t0);
  EXPECT_FALSE(agg.may_transmit(q, t0, &deadline));

  q.broadcast().push(subframe(pure_ack(), 3), t0);  // third subframe
  EXPECT_TRUE(agg.may_transmit(q, t0, &deadline));
}

TEST(DelayedAggregation, TimeoutReleasesHold) {
  Aggregator agg(AggregationPolicy::dba(3));
  DualQueue q(16);
  const auto t0 = sim::TimePoint::origin();
  q.unicast().push(subframe(tcp_data(), 1), t0);

  std::optional<sim::TimePoint> deadline;
  EXPECT_FALSE(agg.may_transmit(
      q, t0 + agg.policy().delay_timeout / 2, &deadline));
  EXPECT_TRUE(agg.may_transmit(
      q, t0 + agg.policy().delay_timeout, &deadline));
}

TEST(DelayedAggregation, DisabledTransmitsImmediately) {
  Aggregator agg(AggregationPolicy::ba());
  DualQueue q(16);
  q.unicast().push(subframe(tcp_data(), 1), {});
  EXPECT_TRUE(agg.may_transmit(q, sim::TimePoint::origin(), nullptr));
}

// --- policy factories ---------------------------------------------------------

TEST(Policy, FactoryConfigurations) {
  EXPECT_EQ(AggregationPolicy::na().mode, AggregationMode::kNone);
  EXPECT_FALSE(AggregationPolicy::na().tcp_ack_as_broadcast);
  EXPECT_EQ(AggregationPolicy::ua().mode, AggregationMode::kUnicast);
  EXPECT_FALSE(AggregationPolicy::ua().tcp_ack_as_broadcast);
  EXPECT_EQ(AggregationPolicy::ba().mode, AggregationMode::kBroadcast);
  EXPECT_TRUE(AggregationPolicy::ba().tcp_ack_as_broadcast);
  EXPECT_EQ(AggregationPolicy::dba().delay_min_subframes, 3u);
  EXPECT_EQ(AggregationPolicy::ba().max_aggregate_bytes, 5u * 1024);
}

}  // namespace
}  // namespace hydra::core
