// The sweep cache: figure-regeneration sweeps must be able to re-run a
// grid and get byte-identical results out of the cache without
// re-simulating, and the key must separate every axis that changes the
// outcome.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "app/sweep.h"

namespace hydra::app {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.scenarios = {{"", topo::ScenarioSpec::two_hop()},
                    {"", topo::ScenarioSpec::grid(2, 2)}};
  grid.policies = {{"na", core::AggregationPolicy::na()},
                   {"ba", core::AggregationPolicy::ba()}};
  grid.base.traffic = topo::TrafficKind::kTcp;
  grid.base.tcp_file_bytes = 20'000;
  return grid;
}

void expect_equal_results(const topo::ExperimentResult& a,
                          const topo::ExperimentResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].completed, b.flows[f].completed);
    EXPECT_EQ(a.flows[f].bytes, b.flows[f].bytes);
    EXPECT_EQ(a.flows[f].elapsed.ns(), b.flows[f].elapsed.ns());
    EXPECT_DOUBLE_EQ(a.flows[f].throughput_mbps, b.flows[f].throughput_mbps);
  }
  EXPECT_EQ(a.phy_transmissions, b.phy_transmissions);
  EXPECT_EQ(a.phy_deliveries, b.phy_deliveries);
  ASSERT_EQ(a.node_stats.size(), b.node_stats.size());
  for (std::size_t n = 0; n < a.node_stats.size(); ++n) {
    EXPECT_EQ(a.node_stats[n].data_frames_tx, b.node_stats[n].data_frames_tx);
    EXPECT_EQ(a.node_stats[n].data_bytes_tx, b.node_stats[n].data_bytes_tx);
  }
}

TEST(SweepCache, CacheHitEqualsRecompute) {
  const auto grid = small_grid();
  const auto reference = sweep_experiments(grid, 2);

  SweepCache cache;
  const auto first = sweep_experiments(grid, 2, &cache);
  ASSERT_EQ(first.size(), reference.size());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), first.size());
  for (const auto& outcome : first) EXPECT_FALSE(outcome.from_cache);

  const auto second = sweep_experiments(grid, 2, &cache);
  ASSERT_EQ(second.size(), reference.size());
  EXPECT_EQ(cache.hits(), second.size());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].from_cache);
    // A cached point is indistinguishable from a recomputed one.
    expect_equal_results(second[i].result, reference[i].result);
    expect_equal_results(second[i].result, first[i].result);
  }
}

TEST(SweepCache, KeySeparatesEveryAxisAndSeed) {
  auto grid = small_grid();
  grid.mediums = {{"full", topo::MediumPolicy::kFullMesh},
                  {"cull", topo::MediumPolicy::kCulled}};
  grid.rate_adaptations = {mac::RateAdaptationScheme::kNone,
                           mac::RateAdaptationScheme::kSnr};
  const auto points = expand_sweep(grid);
  ASSERT_EQ(points.size(), 2u * 2u * 2u * 2u);
  std::set<std::string> keys;
  for (const auto& point : points) keys.insert(SweepCache::key_of(point));
  EXPECT_EQ(keys.size(), points.size());

  // The seed rides in the key too: one topology, many workload seeds.
  auto a = points.front();
  auto b = a;
  b.config.seed = a.config.seed + 1;
  EXPECT_NE(SweepCache::key_of(a), SweepCache::key_of(b));
}

TEST(SweepCache, KeyFingerprintsSpecFieldsTheLabelOmits) {
  // Two grid entries can share a label ("grid-10x10") while describing
  // different worlds; the key must not alias them or the cache would
  // serve one point's result for the other.
  SweepGrid grid;
  auto near = topo::ScenarioSpec::grid(10, 10);
  auto far = topo::ScenarioSpec::grid(10, 10);
  far.spacing_m = 10.0;
  grid.scenarios = {{"", near}, {"", far}};
  const auto points = expand_sweep(grid);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].scenario_label, points[1].scenario_label);
  EXPECT_NE(SweepCache::key_of(points[0]), SweepCache::key_of(points[1]));

  // Same for session lists and pinned placements.
  auto resessioned = near;
  resessioned.sessions = {{0, 5}};
  auto sp = points[0];
  sp.config.scenario = resessioned;
  EXPECT_NE(SweepCache::key_of(points[0]), SweepCache::key_of(sp));
}

TEST(SweepCache, KeyFingerprintsTheWorkloadBaseConfig) {
  // Two sweeps sharing one cache may differ only in the workload base;
  // the key covers it, so they must not serve each other's results.
  SweepGrid grid = small_grid();
  const auto points = expand_sweep(grid);
  auto a = points.front();
  auto b = a;
  b.config.tcp_file_bytes = 200'000;
  EXPECT_NE(SweepCache::key_of(a), SweepCache::key_of(b));
  auto c = a;
  c.config.traffic = topo::TrafficKind::kUdp;
  EXPECT_NE(SweepCache::key_of(a), SweepCache::key_of(c));
}

TEST(SweepCache, KeyDedupesAutoAgainstItsResolvedPolicy) {
  // kAuto resolves by node count; a point swept under the default axis
  // and the same point swept under an explicit entry that resolves to
  // the same delivery policy describe one simulation and must share a
  // cache slot.
  SweepGrid grid;
  grid.scenarios = {{"", topo::ScenarioSpec::two_hop()}};  // auto -> full
  auto auto_point = expand_sweep(grid).front();
  grid.mediums = {{"full", topo::MediumPolicy::kFullMesh}};
  auto pinned_point = expand_sweep(grid).front();
  EXPECT_EQ(SweepCache::key_of(auto_point), SweepCache::key_of(pinned_point));
}

TEST(SweepCache, KeyFingerprintsPolicyKnobsBehindEqualLabels) {
  // Two axis entries may reuse a label while tuning different policy
  // knobs; the key runs over the resolved spec, so they must not alias.
  auto short_delay = core::AggregationPolicy::dba();
  auto long_delay = core::AggregationPolicy::dba();
  short_delay.delay_min_subframes = 2;
  long_delay.delay_min_subframes = 8;
  SweepGrid grid;
  grid.scenarios = {{"", topo::ScenarioSpec::two_hop()}};
  grid.policies = {{"dba", short_delay}, {"dba", long_delay}};
  const auto points = expand_sweep(grid);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].policy_label, points[1].policy_label);
  EXPECT_NE(SweepCache::key_of(points[0]), SweepCache::key_of(points[1]));
}

TEST(SweepCache, MediumAxisExpandsAndLabels) {
  SweepGrid grid;
  grid.scenarios = {{"", topo::ScenarioSpec::two_hop()}};
  grid.mediums = {{"full", topo::MediumPolicy::kFullMesh},
                  {"cull", topo::MediumPolicy::kCulled}};
  const auto points = expand_sweep(grid);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].medium_label, "full");
  EXPECT_EQ(points[0].config.scenario.medium.policy,
            topo::MediumPolicy::kFullMesh);
  EXPECT_EQ(points[1].medium_label, "cull");
  EXPECT_EQ(points[1].config.scenario.medium.policy,
            topo::MediumPolicy::kCulled);
}

}  // namespace
}  // namespace hydra::app
