// The sweep cache: figure-regeneration sweeps must be able to re-run a
// grid and get byte-identical results out of the cache without
// re-simulating, and the key must separate every axis that changes the
// outcome.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "app/sweep.h"
#include "util/crc32.h"

namespace hydra::app {
namespace {

SweepGrid small_grid() {
  SweepGrid grid;
  grid.scenarios = {{"", topo::ScenarioSpec::two_hop()},
                    {"", topo::ScenarioSpec::grid(2, 2)}};
  grid.policies = {{"na", core::AggregationPolicy::na()},
                   {"ba", core::AggregationPolicy::ba()}};
  grid.base.traffic = topo::TrafficKind::kTcp;
  grid.base.tcp_file_bytes = 20'000;
  return grid;
}

void expect_equal_results(const topo::ExperimentResult& a,
                          const topo::ExperimentResult& b) {
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    EXPECT_EQ(a.flows[f].completed, b.flows[f].completed);
    EXPECT_EQ(a.flows[f].bytes, b.flows[f].bytes);
    EXPECT_EQ(a.flows[f].elapsed.ns(), b.flows[f].elapsed.ns());
    EXPECT_DOUBLE_EQ(a.flows[f].throughput_mbps, b.flows[f].throughput_mbps);
  }
  EXPECT_EQ(a.phy_transmissions, b.phy_transmissions);
  EXPECT_EQ(a.phy_deliveries, b.phy_deliveries);
  ASSERT_EQ(a.node_stats.size(), b.node_stats.size());
  for (std::size_t n = 0; n < a.node_stats.size(); ++n) {
    EXPECT_EQ(a.node_stats[n].data_frames_tx, b.node_stats[n].data_frames_tx);
    EXPECT_EQ(a.node_stats[n].data_bytes_tx, b.node_stats[n].data_bytes_tx);
  }
}

TEST(SweepCache, CacheHitEqualsRecompute) {
  const auto grid = small_grid();
  const auto reference = sweep_experiments(grid, 2);

  SweepCache cache;
  const auto first = sweep_experiments(grid, 2, &cache);
  ASSERT_EQ(first.size(), reference.size());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), first.size());
  for (const auto& outcome : first) EXPECT_FALSE(outcome.from_cache);

  const auto second = sweep_experiments(grid, 2, &cache);
  ASSERT_EQ(second.size(), reference.size());
  EXPECT_EQ(cache.hits(), second.size());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].from_cache);
    // A cached point is indistinguishable from a recomputed one.
    expect_equal_results(second[i].result, reference[i].result);
    expect_equal_results(second[i].result, first[i].result);
  }
}

TEST(SweepCache, KeySeparatesEveryAxisAndSeed) {
  auto grid = small_grid();
  grid.mediums = {{"full", topo::MediumPolicy::kFullMesh},
                  {"cull", topo::MediumPolicy::kCulled}};
  grid.rate_adaptations = {mac::RateAdaptationScheme::kNone,
                           mac::RateAdaptationScheme::kSnr};
  const auto points = expand_sweep(grid);
  ASSERT_EQ(points.size(), 2u * 2u * 2u * 2u);
  std::set<std::string> keys;
  for (const auto& point : points) keys.insert(SweepCache::key_of(point));
  EXPECT_EQ(keys.size(), points.size());

  // The seed rides in the key too: one topology, many workload seeds.
  auto a = points.front();
  auto b = a;
  b.config.seed = a.config.seed + 1;
  EXPECT_NE(SweepCache::key_of(a), SweepCache::key_of(b));
}

TEST(SweepCache, KeyFingerprintsSpecFieldsTheLabelOmits) {
  // Two grid entries can share a label ("grid-10x10") while describing
  // different worlds; the key must not alias them or the cache would
  // serve one point's result for the other.
  SweepGrid grid;
  auto near = topo::ScenarioSpec::grid(10, 10);
  auto far = topo::ScenarioSpec::grid(10, 10);
  far.spacing_m = 10.0;
  grid.scenarios = {{"", near}, {"", far}};
  const auto points = expand_sweep(grid);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].scenario_label, points[1].scenario_label);
  EXPECT_NE(SweepCache::key_of(points[0]), SweepCache::key_of(points[1]));

  // Same for session lists and pinned placements.
  auto resessioned = near;
  resessioned.sessions = {{0, 5}};
  auto sp = points[0];
  sp.config.scenario = resessioned;
  EXPECT_NE(SweepCache::key_of(points[0]), SweepCache::key_of(sp));
}

TEST(SweepCache, KeyFingerprintsTheWorkloadBaseConfig) {
  // Two sweeps sharing one cache may differ only in the workload base;
  // the key covers it, so they must not serve each other's results.
  SweepGrid grid = small_grid();
  const auto points = expand_sweep(grid);
  auto a = points.front();
  auto b = a;
  b.config.tcp_file_bytes = 200'000;
  EXPECT_NE(SweepCache::key_of(a), SweepCache::key_of(b));
  auto c = a;
  c.config.traffic = topo::TrafficKind::kUdp;
  EXPECT_NE(SweepCache::key_of(a), SweepCache::key_of(c));
}

TEST(SweepCache, KeyDedupesAutoAgainstItsResolvedPolicy) {
  // kAuto resolves by node count; a point swept under the default axis
  // and the same point swept under an explicit entry that resolves to
  // the same delivery policy describe one simulation and must share a
  // cache slot.
  SweepGrid grid;
  grid.scenarios = {{"", topo::ScenarioSpec::two_hop()}};  // auto -> full
  auto auto_point = expand_sweep(grid).front();
  grid.mediums = {{"full", topo::MediumPolicy::kFullMesh}};
  auto pinned_point = expand_sweep(grid).front();
  EXPECT_EQ(SweepCache::key_of(auto_point), SweepCache::key_of(pinned_point));
}

TEST(SweepCache, KeyFingerprintsPolicyKnobsBehindEqualLabels) {
  // Two axis entries may reuse a label while tuning different policy
  // knobs; the key runs over the resolved spec, so they must not alias.
  auto short_delay = core::AggregationPolicy::dba();
  auto long_delay = core::AggregationPolicy::dba();
  short_delay.delay_min_subframes = 2;
  long_delay.delay_min_subframes = 8;
  SweepGrid grid;
  grid.scenarios = {{"", topo::ScenarioSpec::two_hop()}};
  grid.policies = {{"dba", short_delay}, {"dba", long_delay}};
  const auto points = expand_sweep(grid);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].policy_label, points[1].policy_label);
  EXPECT_NE(SweepCache::key_of(points[0]), SweepCache::key_of(points[1]));
}

// A result with every serialized field set to a distinct value, so a
// field the round-trip drops or misorders cannot go unnoticed.
topo::ExperimentResult full_result() {
  topo::ExperimentResult r;
  r.sim_time = sim::Duration::nanos(123456789);
  topo::FlowResult f;
  f.throughput_mbps = 1.2345678901234567;
  f.bytes = 200'000;
  f.elapsed = sim::Duration::nanos(987654321);
  f.completed = true;
  r.flows = {f, topo::FlowResult{}};
  mac::MacStats n;
  n.data_frames_tx = 1;
  n.broadcast_subframes_tx = 2;
  n.unicast_subframes_tx = 3;
  n.data_bytes_tx = 4;
  n.mac_header_bytes_tx = 5;
  n.rts_tx = 6;
  n.cts_tx = 7;
  n.ack_tx = 8;
  n.retries = 9;
  n.retry_drops = 10;
  n.queue_drops = 11;
  n.delivered_up = 12;
  n.dropped_not_for_us = 13;
  n.crc_failures = 14;
  n.aggregate_discards = 15;
  n.duplicates_suppressed = 16;
  n.acks_rx = 17;
  n.collisions = 18;
  n.time.payload = sim::Duration::nanos(19);
  n.time.mac_header = sim::Duration::nanos(20);
  n.time.phy_header = sim::Duration::nanos(21);
  n.time.control = sim::Duration::nanos(22);
  n.time.ifs = sim::Duration::nanos(23);
  n.time.backoff = sim::Duration::nanos(24);
  r.node_stats = {n, mac::MacStats{}};
  r.relay_indices = {1, 3, 5};
  r.phy_transmissions = 100;
  r.phy_deliveries = 101;
  r.phy_shards = 102;
  r.phy_rebuilds = 103;
  r.phy_incremental_attaches = 104;
  r.phy_detaches = 105;
  r.phy_moves = 106;
  r.phy_incremental_detaches = 107;
  r.phy_incremental_moves = 108;
  r.sched_executed_events = 109;
  r.sched_windows = 110;
  r.sched_parallel_events = 111;
  r.heap_allocations = 112;
  r.heap_bytes_allocated = 113;
  r.pool_requests = 114;
  r.pool_recycled = 115;
  r.peak_rss_kb = 116;
  return r;
}

std::string fresh_disk_dir(const char* name) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "hydra_sweep" / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(SweepCacheDisk, ResultRoundTripsThroughText) {
  const auto original = full_result();
  topo::ExperimentResult restored;
  ASSERT_TRUE(deserialize_result(serialize_result(original), &restored));
  expect_equal_results(original, restored);
  EXPECT_EQ(original.relay_indices, restored.relay_indices);
  EXPECT_EQ(original.sim_time.ns(), restored.sim_time.ns());
  EXPECT_EQ(original.phy_shards, restored.phy_shards);
  EXPECT_EQ(original.phy_rebuilds, restored.phy_rebuilds);
  EXPECT_EQ(original.phy_incremental_attaches,
            restored.phy_incremental_attaches);
  EXPECT_EQ(original.phy_detaches, restored.phy_detaches);
  EXPECT_EQ(original.phy_moves, restored.phy_moves);
  EXPECT_EQ(original.phy_incremental_detaches,
            restored.phy_incremental_detaches);
  EXPECT_EQ(original.phy_incremental_moves, restored.phy_incremental_moves);
  EXPECT_EQ(original.sched_executed_events, restored.sched_executed_events);
  EXPECT_EQ(original.sched_windows, restored.sched_windows);
  EXPECT_EQ(original.sched_parallel_events, restored.sched_parallel_events);
  EXPECT_EQ(original.heap_allocations, restored.heap_allocations);
  EXPECT_EQ(original.heap_bytes_allocated, restored.heap_bytes_allocated);
  EXPECT_EQ(original.pool_requests, restored.pool_requests);
  EXPECT_EQ(original.pool_recycled, restored.pool_recycled);
  EXPECT_EQ(original.peak_rss_kb, restored.peak_rss_kb);
  const auto& n = original.node_stats[0];
  const auto& m = restored.node_stats[0];
  EXPECT_EQ(n.broadcast_subframes_tx, m.broadcast_subframes_tx);
  EXPECT_EQ(n.mac_header_bytes_tx, m.mac_header_bytes_tx);
  EXPECT_EQ(n.duplicates_suppressed, m.duplicates_suppressed);
  EXPECT_EQ(n.time.payload.ns(), m.time.payload.ns());
  EXPECT_EQ(n.time.backoff.ns(), m.time.backoff.ns());

  EXPECT_FALSE(deserialize_result("", &restored));
  EXPECT_FALSE(deserialize_result("hydra-sweep-result 2\n", &restored));
}

TEST(SweepCacheDisk, PersistsAcrossCacheInstances) {
  const auto dir = fresh_disk_dir("persist");
  const auto result = full_result();
  const std::string key = "persist|test|key";
  {
    SweepCache writer;
    writer.set_disk_dir(dir);
    writer.store(key, result);
    EXPECT_EQ(writer.disk_stores(), 1u);
  }
  // A fresh cache (a rerun of the figure driver) serves the point from
  // disk without simulating, then from memory on the second lookup.
  SweepCache reader;
  reader.set_disk_dir(dir);
  const auto loaded = reader.find(key);
  ASSERT_NE(loaded, nullptr);
  expect_equal_results(result, *loaded);
  EXPECT_EQ(reader.disk_hits(), 1u);
  EXPECT_EQ(reader.hits(), 0u);
  EXPECT_EQ(reader.misses(), 0u);
  ASSERT_NE(reader.find(key), nullptr);
  EXPECT_EQ(reader.hits(), 1u);
  EXPECT_EQ(reader.disk_hits(), 1u);
}

TEST(SweepCacheDisk, MismatchedKeyInFileReadsAsMiss) {
  // The loader trusts the key line inside the file, not the CRC-named
  // path: a colliding fingerprint (forged here by writing another key's
  // payload at this key's path) degrades to a miss, never an alias.
  const auto dir = fresh_disk_dir("collision");
  const std::string key = "the|real|key";
  {
    SweepCache writer;
    writer.set_disk_dir(dir);
    writer.store("some|other|key", full_result());
  }
  const auto fp = crc32(
      {reinterpret_cast<const std::uint8_t*>(key.data()), key.size()});
  char name[32];
  std::snprintf(name, sizeof name, "%08x.sweep", fp);
  {
    std::ofstream forged(std::filesystem::path(dir) / name);
    forged << "some|other|key\n" << serialize_result(full_result());
  }
  SweepCache reader;
  reader.set_disk_dir(dir);
  EXPECT_EQ(reader.find(key), nullptr);
  EXPECT_EQ(reader.disk_hits(), 0u);
  EXPECT_EQ(reader.misses(), 1u);
}

TEST(SweepCacheDisk, CorruptFileReadsAsMiss) {
  const auto dir = fresh_disk_dir("corrupt");
  const std::string key = "corrupt|key";
  {
    SweepCache writer;
    writer.set_disk_dir(dir);
    writer.store(key, full_result());
  }
  // Truncate the stored file mid-payload: the loader must reject it.
  const auto fp = crc32(
      {reinterpret_cast<const std::uint8_t*>(key.data()), key.size()});
  char name[32];
  std::snprintf(name, sizeof name, "%08x.sweep", fp);
  const auto path = std::filesystem::path(dir) / name;
  std::string contents;
  {
    std::ifstream in(path);
    std::getline(in, contents, '\0');
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents.substr(0, contents.size() / 2);
  }
  SweepCache reader;
  reader.set_disk_dir(dir);
  EXPECT_EQ(reader.find(key), nullptr);
  EXPECT_EQ(reader.misses(), 1u);
}

TEST(SweepCacheDisk, SweepWritesThroughAndRereadsFromDisk) {
  const auto dir = fresh_disk_dir("sweep");
  const auto grid = small_grid();
  SweepCache first;
  first.set_disk_dir(dir);
  const auto cold = sweep_experiments(grid, 2, &first);
  EXPECT_EQ(first.disk_stores(), cold.size());
  EXPECT_EQ(first.misses(), cold.size());

  SweepCache second;
  second.set_disk_dir(dir);
  const auto warm = sweep_experiments(grid, 2, &second);
  ASSERT_EQ(warm.size(), cold.size());
  EXPECT_EQ(second.disk_hits(), warm.size());
  EXPECT_EQ(second.misses(), 0u);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].from_cache);
    expect_equal_results(cold[i].result, warm[i].result);
  }
}

TEST(SweepCache, MediumAxisExpandsAndLabels) {
  SweepGrid grid;
  grid.scenarios = {{"", topo::ScenarioSpec::two_hop()}};
  grid.mediums = {{"full", topo::MediumPolicy::kFullMesh},
                  {"cull", topo::MediumPolicy::kCulled}};
  const auto points = expand_sweep(grid);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].medium_label, "full");
  EXPECT_EQ(points[0].config.scenario.medium.policy,
            topo::MediumPolicy::kFullMesh);
  EXPECT_EQ(points[1].medium_label, "cull");
  EXPECT_EQ(points[1].config.scenario.medium.policy,
            topo::MediumPolicy::kCulled);
}

}  // namespace
}  // namespace hydra::app
