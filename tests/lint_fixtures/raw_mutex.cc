// Fixture: raw standard-library locks. The concurrent core goes
// through util::Mutex/util::MutexLock so clang -Wthread-safety can
// see every acquire and release; a bare std::mutex is invisible to
// the analysis.
#include <mutex>

namespace fixture {

struct Counter {
  // hydra-lint-expect: raw-mutex
  std::mutex mutex;
  long value = 0;

  void bump() {
    // hydra-lint-expect: raw-mutex
    const std::lock_guard<std::mutex> lock(mutex);
    ++value;
  }
};

}  // namespace fixture
