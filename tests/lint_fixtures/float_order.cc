// Fixture: order-sensitive floating-point reductions. FP addition is
// not associative; std::reduce is free to reassociate and a float
// accumulate over an unpinned range sums in whatever order the range
// iterates, so the same data can digest differently run to run.
#include <numeric>
#include <vector>

namespace fixture {

double mean_power(const std::vector<double>& dbm) {
  // hydra-lint-expect: float-order
  const double sum = std::reduce(dbm.begin(), dbm.end());
  return sum / static_cast<double>(dbm.size());
}

double weighted(const std::vector<double>& w, const std::vector<double>& v) {
  // hydra-lint-expect: float-order
  return std::transform_reduce(w.begin(), w.end(), v.begin(), 0.0);
}

double total_mbps(const std::vector<double>& per_flow) {
  // hydra-lint-expect: float-order
  return std::accumulate(per_flow.begin(), per_flow.end(), 0.0);
}

struct Flow {
  double mbps;
};

// The init and lambda live on later lines than the call: the rule joins
// the statement before deciding it is floating point.
double spread_call(const std::vector<Flow>& flows) {
  // hydra-lint-expect: float-order
  return std::accumulate(flows.begin(), flows.end(),
                         double{0},
                         [](double acc, const Flow& f) {
                           return acc + f.mbps;
                         });
}

// Integer folds are associative and exact — they must NOT fire (this is
// the shape of proto::AggregateFrame::total_wire_bytes).
std::size_t total_bytes(const std::vector<std::size_t>& wire) {
  return std::accumulate(wire.begin(), wire.end(), std::size_t{0});
}

// The allow hatch works here like everywhere else: a float fold over a
// range whose order the caller pins is safe when justified.
double pinned(const std::vector<double>& ordered) {
  // hydra-lint: allow(float-order) — range is a vector filled in node-id order
  return std::accumulate(ordered.begin(), ordered.end(), 0.0);
}

}  // namespace fixture
