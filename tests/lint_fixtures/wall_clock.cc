// Fixture: host clocks in the simulation core. Simulation time is
// sim::TimePoint; wall time makes results machine- and load-dependent.
#include <chrono>
#include <ctime>

namespace fixture {

long late_by() {
  // hydra-lint-expect: wall-clock
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

// hydra-lint-expect: wall-clock
long epoch() { return static_cast<long>(time(nullptr)); }

}  // namespace fixture
