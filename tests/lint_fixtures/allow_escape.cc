// Fixture: the escape hatch. A well-formed allow comment — rule list
// plus a mandatory reason — suppresses the finding on its own line,
// or on the next line when the comment stands alone. A malformed one
// (no reason) suppresses nothing and is reported as bad-allow.
#include <chrono>
#include <random>

namespace fixture {

unsigned sanctioned_entropy() {
  // Inline form: governs its own line. No expect marker — the point
  // is that nothing fires here.
  std::random_device device;  // hydra-lint: allow(raw-rand) — fixture for the inline escape hatch
  return device();
}

long sanctioned_wall_time() {
  // Standalone form: governs the next line.
  // hydra-lint: allow(wall-clock) — fixture for the preceding-line escape hatch
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

long unsanctioned_wall_time() {
  // Missing the mandatory reason: the rule still fires AND the
  // malformed marker itself is flagged.
  // hydra-lint-expect: wall-clock, bad-allow
  const auto now = std::chrono::steady_clock::now();  // hydra-lint: allow(wall-clock)
  return now.time_since_epoch().count();
}

}  // namespace fixture
