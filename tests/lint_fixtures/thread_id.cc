// Fixture: thread identity is assigned by the OS and differs run to
// run; anything keyed, ordered or hashed by it is nondeterministic
// under the parallel scheduler.
#include <functional>
#include <thread>

namespace fixture {

std::size_t shard_of() {
  // hydra-lint-expect: thread-id
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) % 4;
}

}  // namespace fixture
