// Fixture: ordered containers keyed on pointer values. Addresses
// depend on allocation order and ASLR, so iterating one is an
// address-order walk that differs across runs. Key on stable ids.
#include <functional>
#include <map>
#include <set>

namespace fixture {

struct Widget {
  int id = 0;
};

struct Registry {
  // hydra-lint-expect: ptr-order
  std::map<Widget*, int> rank_of;
  // hydra-lint-expect: ptr-order
  std::set<const Widget*> live;
  // hydra-lint-expect: ptr-order
  std::less<Widget*> before;
};

}  // namespace fixture
