// Fixture: hash containers may be declared (with justification) but
// never iterated — iteration order is unspecified and leaks straight
// into event/trace order.
#include <unordered_map>

namespace fixture {

struct Tally {
  // hydra-lint-expect: unordered-member
  std::unordered_map<int, long> counts;

  long total() const {
    long sum = 0;
    // hydra-lint-expect: unordered-iter
    for (const auto& [key, value] : counts) {
      sum += value;
    }
    return sum;
  }

  int first_key() const {
    // hydra-lint-expect: unordered-iter
    return counts.begin()->first;  // hash-order "first" is no order at all
  }
};

}  // namespace fixture
