// Fixture: randomness outside sim::Rng. std::rand is a hidden global
// stream; std::random_device is nondeterministic by construction.
#include <cstdlib>
#include <random>

namespace fixture {

int roll() {
  // hydra-lint-expect: raw-rand
  return std::rand() % 6;
}

unsigned hw_seed() {
  // hydra-lint-expect: raw-rand
  std::random_device device;
  return device();
}

}  // namespace fixture
