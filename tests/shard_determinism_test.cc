// The differential determinism harness: the pinned contract for every
// parallel delivery backend. Each scenario family — the four paper
// specs plus chain/star/grid/ring/random, including wide worlds that
// actually span multiple spatial-grid stripes — runs under kFullMesh,
// kCulled and kSharded at 1/2/4 threads, and every run must produce
//
//   - the same trace digest (CRC-32 over the network-event trace),
//   - the same per-node MAC stats table, byte for byte, and
//   - (culled vs sharded) the same scheduled-delivery count.
//
// A future backend that reorders deliveries, races a list write, or
// lets thread count leak into arithmetic fails here before it can skew
// a paper figure. Registered under the `shard` ctest label so gcc,
// clang and the TSan job all run it.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/flood.h"
#include "app/udp_cbr.h"
#include "app/udp_sink.h"
#include "topo/scenario.h"

namespace hydra {
namespace {

struct RunFingerprint {
  std::uint32_t digest = 0;
  std::string stats;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::size_t shards = 1;
};

enum class Workload {
  kCbr,   // UDP CBR over the spec's first session (exercises routing)
  kFlood  // every node broadcasts (exercises pure fan-out)
};

RunFingerprint run_scenario(topo::ScenarioSpec spec,
                            topo::MediumPolicy policy, std::size_t threads,
                            std::uint64_t seed, Workload workload,
                            topo::SchedulerPolicy scheduler =
                                topo::SchedulerPolicy::kAuto,
                            unsigned scheduler_workers = 0) {
  spec.medium.policy = policy;
  spec.medium.shard_threads = threads;
  spec.scheduler.policy = scheduler;
  spec.scheduler.workers = scheduler_workers;
  auto s = topo::Scenario::build(spec, seed);
  s.capture_traces();

  std::unique_ptr<app::UdpSinkApp> sink;
  std::unique_ptr<app::UdpCbrApp> cbr;
  std::vector<std::unique_ptr<app::FloodApp>> flooders;
  if (workload == Workload::kCbr) {
    const auto sender = spec.sessions.front().sender;
    const auto receiver = spec.sessions.front().receiver;
    sink = std::make_unique<app::UdpSinkApp>(s.sim(), s.node(receiver), 9001);
    app::UdpCbrConfig cbr_cfg;
    cbr_cfg.destination = {proto::Ipv4Address::for_node(receiver), 9001};
    cbr_cfg.packets_per_tick = 3;
    cbr_cfg.stop = sim::TimePoint::at(sim::Duration::seconds(2));
    cbr = std::make_unique<app::UdpCbrApp>(s.sim(), s.node(sender), cbr_cfg);
    cbr->start();
  } else {
    for (std::size_t i = 0; i < s.size(); ++i) {
      app::FloodConfig fc;
      fc.interval = sim::Duration::millis(400);
      fc.initial_offset = sim::Duration::millis(17) * (i + 1);
      flooders.push_back(
          std::make_unique<app::FloodApp>(s.sim(), s.node(i), fc));
      flooders.back()->start();
    }
  }
  s.run_for(sim::Duration::seconds(3));

  EXPECT_FALSE(s.trace().empty()) << spec.label();
  if (workload == Workload::kCbr) {
    EXPECT_GT(sink->packets(), 0u) << spec.label();
  }
  RunFingerprint fp;
  fp.digest = s.trace_digest();
  fp.stats = s.metrics_summary();
  fp.transmissions = s.medium().transmissions_started();
  fp.deliveries = s.medium().deliveries_scheduled();
  fp.shards = s.medium().shards();
  return fp;
}

// Runs `spec` under every backend × thread-count combination and
// asserts the contract. Returns the sharded 4-thread fingerprint so
// callers can make extra assertions (e.g. that multiple stripes were
// actually in play).
RunFingerprint assert_backends_agree(const topo::ScenarioSpec& spec,
                                     std::uint64_t seed, Workload workload) {
  const auto reference =
      run_scenario(spec, topo::MediumPolicy::kCulled, 0, seed, workload);

  const auto full_mesh =
      run_scenario(spec, topo::MediumPolicy::kFullMesh, 0, seed, workload);
  EXPECT_EQ(full_mesh.digest, reference.digest)
      << spec.label() << " seed " << seed << ": full-mesh digest diverged";
  EXPECT_EQ(full_mesh.stats, reference.stats)
      << spec.label() << " seed " << seed << ": full-mesh stats diverged";
  EXPECT_EQ(full_mesh.transmissions, reference.transmissions);

  RunFingerprint last;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    last = run_scenario(spec, topo::MediumPolicy::kSharded, threads, seed,
                        workload);
    EXPECT_EQ(last.digest, reference.digest)
        << spec.label() << " seed " << seed << ": sharded@" << threads
        << " digest diverged";
    EXPECT_EQ(last.stats, reference.stats)
        << spec.label() << " seed " << seed << ": sharded@" << threads
        << " stats diverged";
    // Sharded must select exactly the culled receiver sets — not just
    // behave the same, schedule the same.
    EXPECT_EQ(last.deliveries, reference.deliveries)
        << spec.label() << " seed " << seed << ": sharded@" << threads;
    EXPECT_EQ(last.transmissions, reference.transmissions);
  }
  return last;
}

// ---------------------------------------------------------------------
// Paper topologies: the figures themselves must be backend-invariant.
// ---------------------------------------------------------------------

TEST(ShardDeterminism, PaperSpecs) {
  for (const auto& spec :
       {topo::ScenarioSpec::one_hop(), topo::ScenarioSpec::two_hop(),
        topo::ScenarioSpec::three_hop(), topo::ScenarioSpec::fig6_star()}) {
    for (const std::uint64_t seed : {3, 7}) {
      assert_backends_agree(spec, seed, Workload::kCbr);
    }
  }
}

// ---------------------------------------------------------------------
// One test per open-ended family (ctest runs them in parallel).
// ---------------------------------------------------------------------

TEST(ShardDeterminism, ChainFamily) {
  assert_backends_agree(topo::ScenarioSpec::chain(6), 5, Workload::kCbr);
}

TEST(ShardDeterminism, StarFamily) {
  assert_backends_agree(topo::ScenarioSpec::star(4), 5, Workload::kCbr);
}

TEST(ShardDeterminism, GridFamily) {
  assert_backends_agree(topo::ScenarioSpec::grid(3, 3), 5, Workload::kCbr);
}

TEST(ShardDeterminism, RingFamily) {
  assert_backends_agree(topo::ScenarioSpec::ring(7), 5, Workload::kCbr);
}

TEST(ShardDeterminism, RandomFamilySeedSweep) {
  for (const std::uint64_t placement : {1, 2}) {
    for (const std::uint64_t seed : {5, 11}) {
      assert_backends_agree(topo::ScenarioSpec::random(10, placement), seed,
                            Workload::kCbr);
    }
  }
}

// ---------------------------------------------------------------------
// Wide worlds: the paper topologies fit inside one spatial-grid cell,
// where sharding degenerates to a single stripe. These span several
// reach radii, so the 4-thread runs genuinely exercise the multi-stripe
// partition and the canonical merge.
// ---------------------------------------------------------------------

TEST(ShardDeterminism, WideChainUsesMultipleStripes) {
  auto spec = topo::ScenarioSpec::chain(16);
  spec.spacing_m = 7.0;  // 105 m span ≈ 3 reach-radius cells
  const auto sharded = assert_backends_agree(spec, 9, Workload::kFlood);
  EXPECT_GE(sharded.shards, 2u);
}

TEST(ShardDeterminism, WideGridUsesMultipleStripes) {
  auto spec = topo::ScenarioSpec::grid(3, 10);
  spec.spacing_m = 7.0;  // 63 m wide
  const auto sharded = assert_backends_agree(spec, 9, Workload::kFlood);
  EXPECT_GE(sharded.shards, 2u);
}

TEST(ShardDeterminism, WideRandomPlacement) {
  auto spec = topo::ScenarioSpec::random(20, 4);
  spec.spacing_m = 10.0;  // ~50 m extent; links stay <= range_m (3.5 m)
  assert_backends_agree(spec, 9, Workload::kFlood);
}

// ---------------------------------------------------------------------
// Scheduler axis: the sharded medium must stay backend-invariant when
// the event loop itself goes parallel. (The full serial-vs-parallel
// digest matrix lives in parallel_sched_test; this pins the cross
// product of the two parallel subsystems over a multi-stripe world.)
// ---------------------------------------------------------------------

TEST(ShardDeterminism, SchedulerAxisOverShardedMedium) {
  auto spec = topo::ScenarioSpec::chain(16);
  spec.spacing_m = 7.0;  // multi-stripe, as in WideChainUsesMultipleStripes
  const auto reference =
      run_scenario(spec, topo::MediumPolicy::kCulled, 0, 9, Workload::kFlood,
                   topo::SchedulerPolicy::kSerial);
  for (const unsigned workers : {1u, 2u, 4u}) {
    const auto parallel =
        run_scenario(spec, topo::MediumPolicy::kSharded, 2, 9,
                     Workload::kFlood, topo::SchedulerPolicy::kParallelWindows,
                     workers);
    EXPECT_EQ(parallel.digest, reference.digest)
        << "sharded@2 × parallel-windows@" << workers << " digest diverged";
    EXPECT_EQ(parallel.stats, reference.stats)
        << "sharded@2 × parallel-windows@" << workers << " stats diverged";
    EXPECT_EQ(parallel.deliveries, reference.deliveries);
    EXPECT_EQ(parallel.transmissions, reference.transmissions);
  }
}

// ---------------------------------------------------------------------
// The sharded policy plumbs through the scenario layer like any other.
// ---------------------------------------------------------------------

TEST(ShardDeterminism, PolicyResolution) {
  auto spec = topo::ScenarioSpec::grid(8, 8);
  spec.medium.policy = topo::MediumPolicy::kSharded;
  EXPECT_EQ(spec.medium_config().delivery, phy::DeliveryPolicy::kSharded);
  spec.medium.shard_threads = 3;
  EXPECT_EQ(spec.medium_config().shard_threads, 3u);
  EXPECT_EQ(topo::to_string(topo::MediumPolicy::kSharded),
            std::string("sharded"));
  EXPECT_EQ(phy::to_string(phy::DeliveryPolicy::kSharded),
            std::string("sharded"));
}

}  // namespace
}  // namespace hydra
