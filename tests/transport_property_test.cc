// Properties of the CERL loss differentiator, checked against NewReno
// as the reference scheme at two levels:
//
//  - Scheme-level, by driving NewRenoCc and a CerlCc side by side
//    through identical (seeded, LCG-generated) hook scripts. When every
//    loss classifies as congestion the two must agree on the *exact*
//    cwnd/ssthresh trajectory — CERL is NewReno plus a classifier, so a
//    congestion verdict must change nothing. When every loss classifies
//    as channel, CERL's ssthresh must never drop below NewReno's (in
//    fact it must not move at all).
//
//  - Connection-level, over a constant-delay pipe (flat RTT ⇒ channel
//    verdicts): a mid-stream drop costs NewReno half its window while
//    CERL retransmits without touching ssthresh.
//
// Everything here is deterministic: the "random" scripts come from a
// fixed linear congruential generator, and the pipe runs in the
// discrete-event sim. Registered under the `transport` ctest label.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulation.h"
#include "transport/congestion.h"
#include "transport/mux.h"
#include "transport/tcp.h"

namespace hydra::transport {
namespace {

constexpr std::uint32_t kMss = 1357;
constexpr std::uint32_t kInitialSsthresh = 0xffffffff;

CcView view_at(std::uint32_t flight, std::uint32_t snd_nxt,
               sim::Duration srtt) {
  return CcView{.mss = kMss,
                .flight_size = flight,
                .snd_nxt = snd_nxt,
                .rtt_valid = true,
                .srtt = srtt};
}

// ---------------------------------------------------------------------
// Classifier verdicts.
// ---------------------------------------------------------------------

TEST(TransportProperty, CerlClassifierVerdicts) {
  CerlCc cerl{CerlTuning{}};  // alpha = 0.55
  cerl.init(2 * kMss);

  // No RTT evidence yet: conservatively congestion.
  auto v = view_at(4 * kMss, 20'000, sim::Duration::millis(10));
  EXPECT_EQ(cerl.classify(v), LossKind::kCongestion);

  // Flat RTT (floor == ceiling): no queue ever built, so channel.
  cerl.on_rtt_sample(sim::Duration::millis(10), v);
  EXPECT_EQ(cerl.classify(v), LossKind::kChannel);

  // Widen the range to [10ms, 110ms]; threshold = 10 + 0.55*100 = 65ms.
  cerl.on_rtt_sample(sim::Duration::millis(110), v);
  EXPECT_EQ(cerl.rtt_floor(), sim::Duration::millis(10));
  EXPECT_EQ(cerl.rtt_ceiling(), sim::Duration::millis(110));

  v.srtt = sim::Duration::millis(65);  // exactly at the threshold: channel
  EXPECT_EQ(cerl.classify(v), LossKind::kChannel);
  v.srtt = sim::Duration::millis(65) + sim::Duration::nanos(1);
  EXPECT_EQ(cerl.classify(v), LossKind::kCongestion);

  // An invalid estimator (post-Karn reset) always means congestion.
  v.rtt_valid = false;
  v.srtt = sim::Duration::millis(10);
  EXPECT_EQ(cerl.classify(v), LossKind::kCongestion);
}

// ---------------------------------------------------------------------
// Scheme-level differential scripts. One seeded LCG generates the same
// episode sequence for both runs; the script mixes cumulative-ACK
// growth, dup-ack bursts (fast retransmit + inflation + full-ACK exit),
// partial ACKs inside recovery, and timeouts.
// ---------------------------------------------------------------------

class ScriptedPair {
 public:
  explicit ScriptedPair(sim::Duration srtt) : srtt_(srtt) {
    reno_.init(2 * kMss);
    cerl_.init(2 * kMss);
  }

  NewRenoCc& reno() { return reno_; }
  CerlCc& cerl() { return cerl_; }

  // One scripted episode; `check` runs after every individual hook call.
  void run(unsigned rounds, const std::function<void(unsigned)>& check) {
    for (unsigned round = 0; round < rounds; ++round) {
      const std::uint32_t flight = (1 + rnd(16)) * kMss;
      snd_nxt_ += flight;
      const auto v = view_at(flight, snd_nxt_, srtt_);
      switch (rnd(8)) {
        case 0: {  // dup-ack burst into fast retransmit, then full ACK
          const unsigned dups = 3 + rnd(4);
          for (unsigned d = 0; d < dups; ++d) {
            EXPECT_EQ(reno_.on_dup_ack(v), cerl_.on_dup_ack(v))
                << "round " << round;
            check(round);
          }
          if (rnd(2) == 0) {
            // Partial ACK first: half the flight, still below recover_.
            const auto partial =
                view_at(flight / 2, snd_nxt_, srtt_);
            EXPECT_EQ(reno_.on_ack(snd_nxt_ - flight / 2, flight / 2, partial),
                      cerl_.on_ack(snd_nxt_ - flight / 2, flight / 2, partial))
                << "round " << round;
            check(round);
          }
          const auto drained = view_at(0, snd_nxt_, srtt_);
          EXPECT_EQ(reno_.on_ack(snd_nxt_, flight, drained),
                    cerl_.on_ack(snd_nxt_, flight, drained))
              << "round " << round;
          check(round);
          break;
        }
        case 1:  // retransmission timeout
          reno_.on_rto(v);
          cerl_.on_rto(v);
          check(round);
          break;
        default:  // plain cumulative ACK advancing one MSS
          EXPECT_EQ(reno_.on_ack(snd_nxt_, kMss, v),
                    cerl_.on_ack(snd_nxt_, kMss, v))
              << "round " << round;
          check(round);
      }
    }
  }

 private:
  std::uint32_t rnd(std::uint32_t m) {
    lcg_ = lcg_ * 1664525u + 1013904223u;
    return (lcg_ >> 16) % m;
  }

  NewRenoCc reno_;
  CerlCc cerl_{CerlTuning{}};
  sim::Duration srtt_;
  std::uint32_t snd_nxt_ = 10'001;
  std::uint32_t lcg_ = 0x5eed5eed;
};

TEST(TransportProperty, CongestionOnlyLossesMatchNewRenoTrajectoryExactly) {
  // RTT range [10ms, 110ms], srtt pinned at 100ms — far above the 65ms
  // threshold, so every loss episode classifies as congestion and CERL
  // must be indistinguishable from NewReno, hook for hook.
  ScriptedPair pair(sim::Duration::millis(100));
  const auto v = view_at(0, 10'001, sim::Duration::millis(100));
  pair.reno().on_rtt_sample(sim::Duration::millis(10), v);
  pair.cerl().on_rtt_sample(sim::Duration::millis(10), v);
  pair.reno().on_rtt_sample(sim::Duration::millis(110), v);
  pair.cerl().on_rtt_sample(sim::Duration::millis(110), v);
  ASSERT_EQ(pair.cerl().classify(v), LossKind::kCongestion);

  pair.run(400, [&](unsigned round) {
    EXPECT_EQ(pair.reno().cwnd(), pair.cerl().cwnd()) << "round " << round;
    EXPECT_EQ(pair.reno().ssthresh(), pair.cerl().ssthresh())
        << "round " << round;
    EXPECT_EQ(pair.reno().in_recovery(), pair.cerl().in_recovery())
        << "round " << round;
  });

  EXPECT_EQ(pair.cerl().channel_losses(), 0u);
  EXPECT_GT(pair.reno().congestion_losses(), 0u);
  EXPECT_EQ(pair.cerl().congestion_losses(), pair.reno().congestion_losses());
}

TEST(TransportProperty, ChannelOnlyLossesNeverReduceSsthreshBelowNewReno) {
  // Flat 10ms RTT: floor == ceiling, every loss classifies as channel.
  // NewReno halves ssthresh on each episode; CERL must never sit below
  // it — and in the channel-only world must never move ssthresh at all.
  ScriptedPair pair(sim::Duration::millis(10));
  const auto v = view_at(0, 10'001, sim::Duration::millis(10));
  pair.reno().on_rtt_sample(sim::Duration::millis(10), v);
  pair.cerl().on_rtt_sample(sim::Duration::millis(10), v);
  ASSERT_EQ(pair.cerl().classify(v), LossKind::kChannel);

  pair.run(400, [&](unsigned round) {
    EXPECT_GE(pair.cerl().ssthresh(), pair.reno().ssthresh())
        << "round " << round;
    EXPECT_EQ(pair.cerl().ssthresh(), kInitialSsthresh) << "round " << round;
  });

  EXPECT_GT(pair.cerl().channel_losses(), 0u);
  EXPECT_EQ(pair.cerl().congestion_losses(), 0u);
  EXPECT_LT(pair.reno().ssthresh(), kInitialSsthresh);
}

TEST(TransportProperty, ChannelFastRetransmitRestoresWindowOnExit) {
  // A single channel-classified fast-retransmit episode in isolation:
  // entry inflates by the three duplicates, extras inflate further,
  // exit restores the pre-loss window instead of deflating to ssthresh.
  CerlCc cerl{CerlTuning{}};
  cerl.init(8 * kMss);
  const auto v = view_at(8 * kMss, 30'000, sim::Duration::millis(10));
  cerl.on_rtt_sample(sim::Duration::millis(10), v);

  const std::uint32_t cwnd_before = cerl.cwnd();
  EXPECT_EQ(cerl.on_dup_ack(v), CongestionControl::DupAckAction::kNone);
  EXPECT_EQ(cerl.on_dup_ack(v), CongestionControl::DupAckAction::kNone);
  EXPECT_EQ(cerl.on_dup_ack(v),
            CongestionControl::DupAckAction::kFastRetransmit);
  EXPECT_TRUE(cerl.in_recovery());
  EXPECT_EQ(cerl.ssthresh(), kInitialSsthresh);
  EXPECT_EQ(cerl.cwnd(), cwnd_before + 3 * kMss);

  EXPECT_EQ(cerl.on_dup_ack(v), CongestionControl::DupAckAction::kSendMore);
  EXPECT_EQ(cerl.cwnd(), cwnd_before + 4 * kMss);

  // Full ACK past the recovery point: window restored exactly.
  cerl.on_ack(30'000, 8 * kMss, view_at(0, 30'000, sim::Duration::millis(10)));
  EXPECT_FALSE(cerl.in_recovery());
  EXPECT_EQ(cerl.cwnd(), cwnd_before);
  EXPECT_EQ(cerl.ssthresh(), kInitialSsthresh);
  EXPECT_EQ(cerl.channel_losses(), 1u);
  EXPECT_EQ(cerl.congestion_losses(), 0u);
}

TEST(TransportProperty, ChannelTimeoutRestartsWindowButKeepsSsthresh) {
  CerlCc cerl{CerlTuning{}};
  cerl.init(8 * kMss);
  const auto v = view_at(8 * kMss, 30'000, sim::Duration::millis(10));
  cerl.on_rtt_sample(sim::Duration::millis(10), v);

  cerl.on_rto(v);
  // The ACK clock must be rebuilt, so cwnd restarts at one MSS — but
  // ssthresh is untouched, so slow start carries it straight back.
  EXPECT_EQ(cerl.cwnd(), kMss);
  EXPECT_EQ(cerl.ssthresh(), kInitialSsthresh);
  EXPECT_EQ(cerl.channel_losses(), 1u);
}

// ---------------------------------------------------------------------
// Connection-level: the same drop on the same constant-delay pipe, once
// per scheme.
// ---------------------------------------------------------------------

struct SchemeRun {
  std::uint32_t ssthresh = 0;
  std::uint64_t delivered = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t channel_losses = 0;
  std::uint64_t congestion_losses = 0;
};

SchemeRun run_with_scheme(CcScheme scheme) {
  const auto kIpA = proto::Ipv4Address::for_node(0);
  const auto kIpB = proto::Ipv4Address::for_node(1);
  sim::Simulation sim(1);
  TransportMux a(sim, kIpA);
  TransportMux b(sim, kIpB);
  int data_seen = 0;
  a.send_packet = [&](proto::PacketPtr p) {
    // Drop exactly one mid-stream data segment (late enough that the
    // RTT estimator has evidence; the pipe is flat so CERL reads it as
    // channel loss).
    if (p->payload_bytes > 0 && ++data_seen == 12) return;
    sim.scheduler().schedule_in(sim::Duration::millis(5),
                                [&b, p] { b.deliver(p); });
  };
  b.send_packet = [&](proto::PacketPtr p) {
    sim.scheduler().schedule_in(sim::Duration::millis(5),
                                [&a, p] { a.deliver(p); });
  };

  TcpConfig cfg;
  cfg.tuning.cc = scheme;
  std::uint64_t received = 0;
  b.tcp_listen(5001, cfg, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { received += n; };
  });
  auto& client = a.tcp_connect({kIpB, 5001}, cfg);
  client.send(40 * kMss);
  sim.run_for(sim::Duration::seconds(30));

  SchemeRun out;
  out.ssthresh = client.ssthresh();
  out.delivered = received;
  out.fast_retransmits = client.stats().fast_retransmits;
  out.timeouts = client.stats().timeouts;
  out.channel_losses = client.congestion().channel_losses();
  out.congestion_losses = client.congestion().congestion_losses();
  return out;
}

TEST(TransportProperty, FlatPipeDropCostsNewRenoItsWindowButNotCerl) {
  const auto reno = run_with_scheme(CcScheme::kNewReno);
  const auto cerl = run_with_scheme(CcScheme::kCerl);

  // Both recover via fast retransmit and deliver the whole file.
  ASSERT_EQ(reno.delivered, 40u * kMss);
  ASSERT_EQ(cerl.delivered, 40u * kMss);
  EXPECT_GE(reno.fast_retransmits, 1u);
  EXPECT_GE(cerl.fast_retransmits, 1u);
  EXPECT_EQ(reno.timeouts, 0u);
  EXPECT_EQ(cerl.timeouts, 0u);

  // NewReno read the drop as congestion and halved; CERL read the flat
  // RTT as proof of a channel loss and kept its slow-start threshold.
  EXPECT_EQ(reno.channel_losses, 0u);
  EXPECT_GE(reno.congestion_losses, 1u);
  EXPECT_GE(cerl.channel_losses, 1u);
  EXPECT_EQ(cerl.congestion_losses, 0u);
  EXPECT_LT(reno.ssthresh, kInitialSsthresh);
  EXPECT_EQ(cerl.ssthresh, kInitialSsthresh);
  EXPECT_GE(cerl.ssthresh, reno.ssthresh);
}

}  // namespace
}  // namespace hydra::transport
