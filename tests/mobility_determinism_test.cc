// The mobility determinism suite: the medium's incremental detach/move
// maintenance must be indistinguishable from rebuilding, and trace
// digests must stay bit-identical across every backend while nodes
// move, teleport and churn.
//
// Two layers of differential testing:
//
//   1. List-level: a Medium driven through a randomized schedule of
//      moves (in-box and far-out), detaches and re-attaches must, after
//      EVERY step, hold delivery lists equal — destination, bit-exact
//      receive power, delay — to a from-scratch rebuild over the same
//      attached set, for all three backends.
//   2. Scenario-level: flood traffic over waypoint / distance-step /
//      churn mobility models must produce the same trace digest and
//      byte-identical stats tables under full-mesh, culled and
//      sharded@1/2/4, across a seed sweep.
//
// Registered under the `mobility` ctest label; CI runs it under TSan
// alongside the shard slice.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/flood.h"
#include "phy/medium.h"
#include "phy/phy.h"
#include "sim/rng.h"
#include "sim/simulation.h"
#include "topo/mobility.h"
#include "topo/scenario.h"

namespace hydra {
namespace {

// ---------------------------------------------------------------------
// List-level: incremental patches == from-scratch rebuild, every step
// ---------------------------------------------------------------------

void expect_lists_match_rebuild(phy::Medium& medium, const std::string& ctx) {
  const auto& attached = medium.attached();
  const auto& live = medium.backend();
  const auto reference = phy::make_delivery_backend(medium.config().delivery);
  reference->rebuild(attached, medium.config());
  for (const phy::Phy* src : attached) {
    const auto& got = live.deliveries(*src);
    const auto& want = reference->deliveries(*src);
    ASSERT_EQ(got.size(), want.size())
        << ctx << ": source " << src->id() << " list length diverged";
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].destination, want[i].destination)
          << ctx << ": source " << src->id() << " entry " << i;
      // Bit-exact, not approximately: the patched entry must have come
      // through the same arithmetic as a rebuild's.
      EXPECT_EQ(got[i].rx_power_dbm, want[i].rx_power_dbm)
          << ctx << ": source " << src->id() << " entry " << i;
      EXPECT_EQ(got[i].propagation.ns(), want[i].propagation.ns())
          << ctx << ": source " << src->id() << " entry " << i;
    }
  }
}

TEST(MobilityDeterminism, EveryStepMatchesAFromScratchRebuild) {
  for (const auto policy :
       {phy::DeliveryPolicy::kFullMesh, phy::DeliveryPolicy::kCulled,
        phy::DeliveryPolicy::kSharded}) {
    for (const std::uint64_t seed : {1, 2, 3}) {
      sim::Simulation s(seed);
      phy::MediumConfig config;
      config.delivery = policy;
      config.shard_threads = 2;
      phy::Medium medium(s, config);

      // 6×4 grid at 8 m: spans two reach-radius cells, so culled moves
      // cross cell boundaries and the lists genuinely differ by cell.
      std::vector<std::unique_ptr<phy::Phy>> phys;
      for (std::uint32_t i = 0; i < 24; ++i) {
        phys.push_back(std::make_unique<phy::Phy>(
            s, medium,
            phy::PhyConfig{.position = {8.0 * (i % 6), 8.0 * (i / 6)}}, i));
      }
      expect_lists_match_rebuild(medium, "initial build");

      sim::Rng rng(seed * 977 + 13);
      for (int op = 0; op < 60; ++op) {
        const std::string ctx = std::string(phy::to_string(policy)) +
                                " seed " + std::to_string(seed) + " op " +
                                std::to_string(op);
        phy::Phy& target =
            *phys[static_cast<std::size_t>(rng.uniform() * 24) % 24];
        const double r = rng.uniform();
        if (r < 0.45) {
          // In-box move (the incremental path for every backend).
          medium.move_node(target,
                           {rng.uniform() * 40.0, rng.uniform() * 24.0});
        } else if (r < 0.6) {
          // Far out of the bounding box: must fall back to a rebuild.
          medium.move_node(target, {200.0 + rng.uniform() * 50.0, 0.0});
        } else if (r < 0.8) {
          medium.detach(target);  // no-op when already detached
        } else {
          if (!target.attached()) medium.attach(target);
        }
        expect_lists_match_rebuild(medium, ctx);
      }
      // The schedule must have exercised both maintenance paths.
      EXPECT_GT(medium.moves(), 0u);
      EXPECT_GT(medium.detaches(), 0u);
      if (policy == phy::DeliveryPolicy::kFullMesh) {
        EXPECT_EQ(medium.incremental_moves(), medium.moves())
            << "full mesh has no geometry to fall back over";
      } else {
        EXPECT_GT(medium.incremental_moves(), 0u);
        EXPECT_LT(medium.incremental_moves(), medium.moves())
            << "far-out moves should have forced rebuilds";
      }
      EXPECT_GT(medium.incremental_detaches(), 0u);
    }
  }
}

// ---------------------------------------------------------------------
// Scenario-level: digests bit-identical across backends under motion
// ---------------------------------------------------------------------

struct RunFingerprint {
  std::uint32_t digest = 0;
  std::string stats;
  std::uint64_t transmissions = 0;
  std::uint64_t detaches = 0;
  std::uint64_t moves = 0;
  std::uint64_t incremental_moves = 0;
  std::uint64_t rebuilds = 0;
};

RunFingerprint run_mobile(topo::ScenarioSpec spec, topo::MediumPolicy policy,
                          std::size_t threads, std::uint64_t seed,
                          topo::SchedulerPolicy scheduler =
                              topo::SchedulerPolicy::kAuto,
                          unsigned scheduler_workers = 0) {
  spec.medium.policy = policy;
  spec.medium.shard_threads = threads;
  spec.scheduler.policy = scheduler;
  spec.scheduler.workers = scheduler_workers;
  auto s = topo::Scenario::build(spec, seed);
  s.capture_traces();

  std::vector<std::unique_ptr<app::FloodApp>> flooders;
  for (std::size_t i = 0; i < s.size(); ++i) {
    app::FloodConfig fc;
    fc.interval = sim::Duration::millis(400);
    fc.initial_offset = sim::Duration::millis(17) * (i + 1);
    flooders.push_back(std::make_unique<app::FloodApp>(s.sim(), s.node(i), fc));
    flooders.back()->start();
  }
  s.run_for(sim::Duration::seconds(3));

  EXPECT_FALSE(s.trace().empty()) << spec.label();
  RunFingerprint fp;
  fp.digest = s.trace_digest();
  fp.stats = s.metrics_summary();
  fp.transmissions = s.medium().transmissions_started();
  fp.detaches = s.medium().detaches();
  fp.moves = s.medium().moves();
  fp.incremental_moves = s.medium().incremental_moves();
  fp.rebuilds = s.medium().rebuilds();
  return fp;
}

// Runs `spec` under every backend × thread count and asserts the
// determinism-under-motion contract; returns the culled fingerprint for
// extra model-specific assertions.
RunFingerprint assert_backends_agree_in_motion(const topo::ScenarioSpec& spec,
                                               std::uint64_t seed) {
  const auto reference =
      run_mobile(spec, topo::MediumPolicy::kCulled, 0, seed);

  const auto full_mesh =
      run_mobile(spec, topo::MediumPolicy::kFullMesh, 0, seed);
  EXPECT_EQ(full_mesh.digest, reference.digest)
      << spec.label() << " seed " << seed << ": full-mesh digest diverged";
  EXPECT_EQ(full_mesh.stats, reference.stats)
      << spec.label() << " seed " << seed << ": full-mesh stats diverged";
  EXPECT_EQ(full_mesh.transmissions, reference.transmissions);
  // The motion schedule itself must be backend-invariant.
  EXPECT_EQ(full_mesh.detaches, reference.detaches);
  EXPECT_EQ(full_mesh.moves, reference.moves);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const auto sharded =
        run_mobile(spec, topo::MediumPolicy::kSharded, threads, seed);
    EXPECT_EQ(sharded.digest, reference.digest)
        << spec.label() << " seed " << seed << ": sharded@" << threads
        << " digest diverged";
    EXPECT_EQ(sharded.stats, reference.stats)
        << spec.label() << " seed " << seed << ": sharded@" << threads
        << " stats diverged";
    // Sharded shares the culled geometry, so its maintenance decisions
    // must match too, not just its behaviour.
    EXPECT_EQ(sharded.moves, reference.moves);
    EXPECT_EQ(sharded.incremental_moves, reference.incremental_moves)
        << spec.label() << " seed " << seed << ": sharded@" << threads;
  }
  return reference;
}

topo::ScenarioSpec mobile_grid(topo::MobilityKind kind) {
  auto spec = topo::ScenarioSpec::grid(4, 4);
  spec.spacing_m = 7.0;  // 21 m wide: several nodes per reach, real culling
  spec.mobility.kind = kind;
  spec.mobility.update_interval = sim::Duration::millis(250);
  spec.mobility.stop_after = sim::Duration::seconds(2);
  return spec;
}

TEST(MobilityDeterminism, WaypointWalksAreBackendInvariant) {
  for (const std::uint64_t seed : {3, 7}) {
    const auto culled =
        assert_backends_agree_in_motion(mobile_grid(topo::MobilityKind::kWaypoint), seed);
    EXPECT_GT(culled.moves, 0u);
    // Waypoint walks stay inside the world bounds, so the culled
    // backends absorb every move without rebuilding.
    EXPECT_EQ(culled.incremental_moves, culled.moves);
    EXPECT_EQ(culled.rebuilds, 1u);
  }
}

TEST(MobilityDeterminism, DistanceStepsForceRebuildsIdentically) {
  auto spec = mobile_grid(topo::MobilityKind::kDistanceStep);
  spec.mobility.step_m = 4.0;
  spec.mobility.steps_out = 3;
  for (const std::uint64_t seed : {3, 7}) {
    const auto culled = assert_backends_agree_in_motion(spec, seed);
    EXPECT_GT(culled.moves, 0u);
    // The excursion leaves the bounding box, so some ticks rebuild.
    EXPECT_GT(culled.rebuilds, 1u);
  }
}

TEST(MobilityDeterminism, ChurnIsBackendInvariant) {
  auto spec = mobile_grid(topo::MobilityKind::kChurn);
  spec.mobility.down_time = sim::Duration::millis(300);
  for (const std::uint64_t seed : {3, 7}) {
    const auto culled = assert_backends_agree_in_motion(spec, seed);
    EXPECT_GT(culled.detaches, 0u);
  }
}

TEST(MobilityDeterminism, WideWorldWaypointUsesMultipleStripes) {
  // A world wider than one reach-radius cell, so the sharded runs in
  // the sweep genuinely stripe their rebuilds while nodes move across
  // cell boundaries.
  auto spec = topo::ScenarioSpec::grid(3, 10);
  spec.spacing_m = 7.0;  // 63 m wide
  spec.mobility.kind = topo::MobilityKind::kWaypoint;
  spec.mobility.speed_mps = 20.0;  // cell-crossing steps per tick
  spec.mobility.stop_after = sim::Duration::seconds(2);
  const auto culled = assert_backends_agree_in_motion(spec, 9);
  EXPECT_GT(culled.moves, 0u);
  EXPECT_EQ(culled.incremental_moves, culled.moves);
}

// ---------------------------------------------------------------------
// Scheduler axis: motion invalidates the medium's minimum-propagation
// lookahead every tick, so windows reform around moving geometry. The
// digests must stay serial-identical anyway, at every worker count.
// ---------------------------------------------------------------------

TEST(MobilityDeterminism, SchedulerAxisUnderMotion) {
  const auto spec = mobile_grid(topo::MobilityKind::kWaypoint);
  const auto reference =
      run_mobile(spec, topo::MediumPolicy::kCulled, 0, 3,
                 topo::SchedulerPolicy::kSerial);
  for (const unsigned workers : {1u, 2u, 4u}) {
    const auto parallel =
        run_mobile(spec, topo::MediumPolicy::kCulled, 0, 3,
                   topo::SchedulerPolicy::kParallelWindows, workers);
    EXPECT_EQ(parallel.digest, reference.digest)
        << "parallel-windows@" << workers << " digest diverged under motion";
    EXPECT_EQ(parallel.stats, reference.stats)
        << "parallel-windows@" << workers << " stats diverged under motion";
    // The motion schedule (RNG-driven) must be policy-invariant too.
    EXPECT_EQ(parallel.moves, reference.moves);
    EXPECT_EQ(parallel.incremental_moves, reference.incremental_moves);
  }
}

// ---------------------------------------------------------------------
// Mobility spec plumbing
// ---------------------------------------------------------------------

TEST(MobilityDeterminism, SpecPlumbsThroughScenario) {
  auto spec = mobile_grid(topo::MobilityKind::kWaypoint);
  auto s = topo::Scenario::build(spec, 1);
  ASSERT_NE(s.mobility(), nullptr);
  s.run_for(sim::Duration::seconds(3));
  EXPECT_GT(s.mobility()->ticks(), 0u);
  EXPECT_GT(s.medium().moves(), 0u);

  auto static_spec = topo::ScenarioSpec::grid(4, 4);
  auto st = topo::Scenario::build(static_spec, 1);
  EXPECT_EQ(st.mobility(), nullptr);
  EXPECT_EQ(topo::to_string(topo::MobilityKind::kChurn),
            std::string("churn"));
}

}  // namespace
}  // namespace hydra
