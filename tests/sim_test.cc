// Unit tests: time arithmetic, event scheduler, timers, RNG.
#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/simulation.h"
#include "sim/time.h"
#include "sim/timer.h"

namespace hydra::sim {
namespace {

TEST(Duration, UnitConstruction) {
  EXPECT_EQ(Duration::micros(1).ns(), 1'000);
  EXPECT_EQ(Duration::millis(1).ns(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
  EXPECT_EQ(Duration::from_seconds(0.5).ns(), 500'000'000);
  EXPECT_EQ(Duration::from_seconds(1e-9).ns(), 1);
  EXPECT_TRUE(Duration::zero().is_zero());
}

TEST(Duration, Arithmetic) {
  const auto a = Duration::millis(3);
  const auto b = Duration::micros(500);
  EXPECT_EQ((a + b).ns(), 3'500'000);
  EXPECT_EQ((a - b).ns(), 2'500'000);
  EXPECT_EQ((a * 2).ns(), 6'000'000);
  EXPECT_EQ((a / 3).ns(), 1'000'000);
  EXPECT_DOUBLE_EQ(a / b, 6.0);
  EXPECT_LT(b, a);
}

TEST(Duration, FloatViews) {
  const auto d = Duration::micros(1500);
  EXPECT_DOUBLE_EQ(d.micros_f(), 1500.0);
  EXPECT_DOUBLE_EQ(d.millis_f(), 1.5);
  EXPECT_DOUBLE_EQ(d.seconds_f(), 0.0015);
}

TEST(TimePoint, OffsetArithmetic) {
  const auto t0 = TimePoint::origin();
  const auto t1 = t0 + Duration::seconds(2);
  EXPECT_EQ((t1 - t0).ns(), 2'000'000'000);
  EXPECT_GT(t1, t0);
  EXPECT_EQ(TimePoint::at(Duration::millis(5)).ns(), 5'000'000);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(TimePoint::at(Duration::millis(3)),
                    [&] { order.push_back(3); });
  sched.schedule_at(TimePoint::at(Duration::millis(1)),
                    [&] { order.push_back(1); });
  sched.schedule_at(TimePoint::at(Duration::millis(2)),
                    [&] { order.push_back(2); });
  EXPECT_EQ(sched.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), TimePoint::at(Duration::millis(3)));
}

TEST(Scheduler, SameTimeEventsRunFifo) {
  Scheduler sched;
  std::vector<int> order;
  const auto t = TimePoint::at(Duration::millis(1));
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleInUsesCurrentTime) {
  Scheduler sched;
  TimePoint fired;
  sched.schedule_in(Duration::millis(5), [&] {
    sched.schedule_in(Duration::millis(7), [&] { fired = sched.now(); });
  });
  sched.run();
  EXPECT_EQ(fired, TimePoint::at(Duration::millis(12)));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  const auto id = sched.schedule_in(Duration::millis(1), [&] { ran = true; });
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));  // double cancel reports failure
  sched.run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelInvalidIdIsRejected) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(EventId()));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sched.schedule_at(TimePoint::at(Duration::millis(i)), [&] { ++count; });
  }
  sched.run_until(TimePoint::at(Duration::millis(5)));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now(), TimePoint::at(Duration::millis(5)));
  sched.run();
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler sched;
  sched.run_until(TimePoint::at(Duration::seconds(3)));
  EXPECT_EQ(sched.now(), TimePoint::at(Duration::seconds(3)));
}

TEST(Scheduler, StepExecutesExactlyOneEvent) {
  Scheduler sched;
  int count = 0;
  sched.schedule_in(Duration::millis(1), [&] { ++count; });
  sched.schedule_in(Duration::millis(2), [&] { ++count; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sched.step());
}

TEST(Scheduler, StepSkipsCancelledEvents) {
  Scheduler sched;
  bool ran = false;
  const auto id = sched.schedule_in(Duration::millis(1), [] {});
  sched.schedule_in(Duration::millis(2), [&] { ran = true; });
  sched.cancel(id);
  EXPECT_TRUE(sched.step());
  EXPECT_TRUE(ran);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.schedule_in(Duration::millis(1), recurse);
  };
  sched.schedule_in(Duration::millis(1), recurse);
  sched.run();
  EXPECT_EQ(depth, 5);
}

TEST(Timer, FiresAfterDelay) {
  Scheduler sched;
  int fires = 0;
  Timer t(sched, [&] { ++fires; });
  t.arm(Duration::millis(2));
  EXPECT_TRUE(t.pending());
  EXPECT_EQ(t.deadline(), TimePoint::at(Duration::millis(2)));
  sched.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RearmReplacesPendingFiring) {
  Scheduler sched;
  int fires = 0;
  Timer t(sched, [&] { ++fires; });
  t.arm(Duration::millis(2));
  t.arm(Duration::millis(10));  // supersedes the first
  sched.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(sched.now(), TimePoint::at(Duration::millis(10)));
}

TEST(Timer, CancelStopsFiring) {
  Scheduler sched;
  int fires = 0;
  Timer t(sched, [&] { ++fires; });
  t.arm(Duration::millis(2));
  t.cancel();
  sched.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, DestructionCancelsPendingFiring) {
  Scheduler sched;
  int fires = 0;
  {
    Timer t(sched, [&] { ++fires; });
    t.arm(Duration::millis(1));
  }
  sched.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, CanRearmFromItsOwnCallback) {
  Scheduler sched;
  int fires = 0;
  Timer* tp = nullptr;
  Timer t(sched, [&] {
    if (++fires < 3) tp->arm(Duration::millis(1));
  });
  tp = &t;
  t.arm(Duration::millis(1));
  sched.run();
  EXPECT_EQ(fires, 3);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1'000'000) == b.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Simulation, RunForAdvancesClock) {
  Simulation s(1);
  int fired = 0;
  s.scheduler().schedule_in(Duration::millis(10), [&] { ++fired; });
  s.run_for(Duration::millis(5));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.now(), TimePoint::at(Duration::millis(5)));
  s.run_for(Duration::millis(5));
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace hydra::sim
