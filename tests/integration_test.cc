// Full-system integration tests: end-to-end experiments over every
// topology/policy combination the paper evaluates, with correctness and
// trend assertions.
#include <gtest/gtest.h>

#include <utility>

#include "app/experiment.h"
#include "topo/experiment.h"

namespace hydra::topo {
namespace {

ExperimentConfig base_tcp(ScenarioSpec spec, core::AggregationPolicy policy,
                          std::uint64_t file = 100'000) {
  ExperimentConfig c;
  c.scenario = std::move(spec);
  c.scenario.node.policy = policy;
  c.traffic = TrafficKind::kTcp;
  c.tcp_file_bytes = file;
  return c;
}

TEST(Integration, TwoHopTcpCompletesUnderEveryPolicy) {
  for (const auto& policy :
       {core::AggregationPolicy::na(), core::AggregationPolicy::ua(),
        core::AggregationPolicy::ba(), core::AggregationPolicy::dba()}) {
    const auto r = app::run_experiment(base_tcp(ScenarioSpec::two_hop(), policy));
    ASSERT_EQ(r.flows.size(), 1u);
    EXPECT_TRUE(r.flows[0].completed);
    EXPECT_GT(r.flows[0].throughput_mbps, 0.05);
  }
}

TEST(Integration, AggregationImprovesTcpThroughput) {
  // The paper's headline trend (Fig. 11): BA > UA > NA, all at 1.3 Mbps.
  auto cfg_na = base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::na());
  auto cfg_ua = base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::ua());
  auto cfg_ba = base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::ba());
  for (auto* cfg : {&cfg_na, &cfg_ua, &cfg_ba}) {
    cfg->scenario.node.unicast_mode = proto::mode_by_index(1);
    cfg->scenario.node.broadcast_mode = proto::mode_by_index(1);
  }
  const auto na = app::run_experiment(cfg_na);
  const auto ua = app::run_experiment(cfg_ua);
  const auto ba = app::run_experiment(cfg_ba);

  EXPECT_GT(ua.flows[0].throughput_mbps, na.flows[0].throughput_mbps);
  EXPECT_GT(ba.flows[0].throughput_mbps,
            ua.flows[0].throughput_mbps * 0.99);
}

TEST(Integration, RelayAggregatesWithUa) {
  auto cfg = base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::ua());
  const auto r = app::run_experiment(cfg);
  // The paper's Table 3: UA relay frames average far above a single
  // maximum TCP segment because ~3 data frames share each aggregate.
  EXPECT_GT(r.relay_stats().avg_frame_bytes(), 1700.0);
  // Fewer floor acquisitions than subframes sent.
  EXPECT_LT(r.relay_stats().data_frames_tx,
            r.relay_stats().subframes_tx());
}

TEST(Integration, BaClassifiesAcksAtEveryHop) {
  const auto r =
      app::run_experiment(base_tcp(ScenarioSpec::two_hop(),
                              core::AggregationPolicy::ba()));
  // Relay and client both push pure ACKs through the broadcast portion.
  EXPECT_GT(r.node_stats[1].broadcast_subframes_tx, 0u);
  EXPECT_GT(r.node_stats[2].broadcast_subframes_tx, 0u);
  // Under BA the client never link-acknowledges TCP ACK frames it relays.
  EXPECT_GT(r.node_stats[1].dropped_not_for_us +
                r.node_stats[0].dropped_not_for_us,
            0u);
}

TEST(Integration, UaSendsNoBroadcastSubframes) {
  const auto r =
      app::run_experiment(base_tcp(ScenarioSpec::two_hop(),
                              core::AggregationPolicy::ua()));
  for (const auto& s : r.node_stats) {
    EXPECT_EQ(s.broadcast_subframes_tx, 0u);
  }
}

TEST(Integration, TransmissionCountShrinksWithAggregation) {
  const auto na = app::run_experiment(
      base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::na()));
  const auto ua = app::run_experiment(
      base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::ua()));
  const auto ba = app::run_experiment(
      base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::ba()));

  // Paper Table 3: UA ~33.7%, BA ~26.7% of NA transmissions.
  const double ua_pct =
      static_cast<double>(ua.relay_stats().data_frames_tx) /
      static_cast<double>(na.relay_stats().data_frames_tx);
  const double ba_pct =
      static_cast<double>(ba.relay_stats().data_frames_tx) /
      static_cast<double>(na.relay_stats().data_frames_tx);
  EXPECT_LT(ua_pct, 0.6);
  EXPECT_LT(ba_pct, ua_pct * 1.05);
}

TEST(Integration, ThreeHopCompletesAndIsSlowerThanTwoHop) {
  const auto two = app::run_experiment(
      base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::ba()));
  const auto three = app::run_experiment(
      base_tcp(ScenarioSpec::three_hop(), core::AggregationPolicy::ba()));
  EXPECT_TRUE(three.flows[0].completed);
  EXPECT_LT(three.flows[0].throughput_mbps, two.flows[0].throughput_mbps);
}

TEST(Integration, StarTopologyBothSessionsComplete) {
  auto cfg = base_tcp(ScenarioSpec::fig6_star(), core::AggregationPolicy::ba(),
                      60'000);
  const auto r = app::run_experiment(cfg);
  ASSERT_EQ(r.flows.size(), 2u);
  EXPECT_TRUE(r.flows[0].completed);
  EXPECT_TRUE(r.flows[1].completed);
  EXPECT_GT(r.worst_throughput_mbps(), 0.02);
  // The centre node relays everything.
  EXPECT_GT(r.relay_stats().data_frames_tx, 0u);
}

TEST(Integration, DelayedAggregationAppliesOnlyToRelays) {
  auto cfg = base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::dba(3),
                      60'000);
  const auto r = app::run_experiment(cfg);
  EXPECT_TRUE(r.flows[0].completed);
  // DBA should aggregate at least as much as plain BA at the relay.
  const auto ba = app::run_experiment(
      base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::ba(), 60'000));
  EXPECT_GE(r.relay_stats().avg_frame_bytes(),
            ba.relay_stats().avg_frame_bytes() * 0.9);
}

TEST(Integration, UdpTwoHopThroughputPositive) {
  ExperimentConfig cfg;
  cfg.scenario = ScenarioSpec::two_hop();
  cfg.traffic = TrafficKind::kUdp;
  cfg.scenario.node.policy = core::AggregationPolicy::ua();
  cfg.udp_duration = sim::Duration::seconds(10);
  const auto r = app::run_experiment(cfg);
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_GT(r.flows[0].throughput_mbps, 0.1);
  // Saturated 0.65 Mbps channel over 2 hops cannot beat ~0.33 Mbps.
  EXPECT_LT(r.flows[0].throughput_mbps, 0.65);
}

TEST(Integration, FloodingHurtsNoAggregationMore) {
  // Fig. 9's trend: with aggressive flooding, aggregation keeps more
  // UDP throughput than no aggregation.
  ExperimentConfig agg;
  agg.scenario = ScenarioSpec::two_hop();
  agg.traffic = TrafficKind::kUdp;
  agg.scenario.node.policy = core::AggregationPolicy::ba();
  agg.flooding = true;
  agg.flood_interval = sim::Duration::millis(500);
  agg.udp_duration = sim::Duration::seconds(10);

  ExperimentConfig na = agg;
  na.scenario.node.policy = core::AggregationPolicy::na();

  const auto r_agg = app::run_experiment(agg);
  const auto r_na = app::run_experiment(na);
  EXPECT_GT(r_agg.flows[0].throughput_mbps, r_na.flows[0].throughput_mbps);
}

TEST(Integration, ForwardAggregationAblation) {
  // Fig. 14: BA with forward aggregation disabled still beats NA but
  // loses to full BA at high rate.
  auto full = base_tcp(ScenarioSpec::three_hop(), core::AggregationPolicy::ba(),
                       60'000);
  full.scenario.node.unicast_mode = proto::mode_by_index(3);
  full.scenario.node.broadcast_mode = proto::mode_by_index(3);

  auto backward_only = full;
  backward_only.scenario.node.policy.forward_aggregation = false;

  auto na = full;
  na.scenario.node.policy = core::AggregationPolicy::na();

  const auto r_full = app::run_experiment(full);
  const auto r_back = app::run_experiment(backward_only);
  const auto r_na = app::run_experiment(na);

  EXPECT_GT(r_full.flows[0].throughput_mbps,
            r_back.flows[0].throughput_mbps);
  EXPECT_GT(r_back.flows[0].throughput_mbps, r_na.flows[0].throughput_mbps);
}

TEST(Integration, HigherRateRaisesThroughputButAlsoOverheadShare) {
  auto slow = base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::na(),
                       60'000);
  auto fast = slow;
  fast.scenario.node.unicast_mode = proto::mode_by_index(3);
  fast.scenario.node.broadcast_mode = proto::mode_by_index(3);

  const auto r_slow = app::run_experiment(slow);
  const auto r_fast = app::run_experiment(fast);
  EXPECT_GT(r_fast.flows[0].throughput_mbps,
            r_slow.flows[0].throughput_mbps);
  // Table 4's key observation: overhead fraction grows with rate.
  EXPECT_GT(r_fast.relay_stats().time.overhead_fraction(),
            r_slow.relay_stats().time.overhead_fraction());
}

TEST(Integration, DeterministicForFixedSeed) {
  const auto a = app::run_experiment(
      base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::ba(), 40'000));
  const auto b = app::run_experiment(
      base_tcp(ScenarioSpec::two_hop(), core::AggregationPolicy::ba(), 40'000));
  EXPECT_EQ(a.flows[0].elapsed.ns(), b.flows[0].elapsed.ns());
  EXPECT_EQ(a.relay_stats().data_frames_tx, b.relay_stats().data_frames_tx);
}

TEST(Integration, NoDuplicateDeliveryToTcp) {
  // The §3.3 hazard: a TCP ACK heard by multiple nodes must reach the
  // stack only at its addressed hop. If duplication happened, delivered
  // bytes would overshoot; equality is exact.
  for (const auto& topo : {ScenarioSpec::two_hop(), ScenarioSpec::three_hop()}) {
    const auto r =
        app::run_experiment(base_tcp(topo, core::AggregationPolicy::ba(),
                                80'000));
    EXPECT_TRUE(r.flows[0].completed);
    EXPECT_EQ(r.flows[0].bytes, 80'000u);
  }
}

}  // namespace
}  // namespace hydra::topo
