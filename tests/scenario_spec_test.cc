// The unified scenario subsystem: every family builds, routes correctly,
// runs deterministically, and the named paper specs reproduce the legacy
// topologies' structure.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "app/experiment.h"
#include "app/sweep.h"
#include "app/udp_cbr.h"
#include "app/udp_sink.h"
#include "topo/scenario.h"

namespace hydra::topo {
namespace {

// ---------------------------------------------------------------------
// Structure: counts, positions, routes, relays
// ---------------------------------------------------------------------

TEST(ScenarioSpec, FamilyNodeCounts) {
  EXPECT_EQ(ScenarioSpec::chain(5).node_count(), 5u);
  EXPECT_EQ(ScenarioSpec::star(3).node_count(), 5u);  // 3 senders + hub + rx
  EXPECT_EQ(ScenarioSpec::grid(3, 4).node_count(), 12u);
  EXPECT_EQ(ScenarioSpec::ring(6).node_count(), 6u);
  EXPECT_EQ(ScenarioSpec::random(9).node_count(), 9u);
}

TEST(ScenarioSpec, PaperSpecsMatchLegacyTopologies) {
  // The enum-era builders placed chains at 2.5 m spacing on the x axis
  // and the Fig. 6 star at its hand-tuned coordinates; the named specs
  // must reproduce them exactly (trace-digest equivalence depends on
  // byte-identical positions).
  const auto two = ScenarioSpec::two_hop().positions();
  ASSERT_EQ(two.size(), 3u);
  EXPECT_DOUBLE_EQ(two[1].x_m, 2.5);
  EXPECT_DOUBLE_EQ(two[2].x_m, 5.0);

  const auto star = ScenarioSpec::fig6_star();
  const auto pos = star.positions();
  ASSERT_EQ(pos.size(), 4u);
  EXPECT_DOUBLE_EQ(pos[0].x_m, -2.5);
  EXPECT_DOUBLE_EQ(pos[1].x_m, 0.0);
  EXPECT_DOUBLE_EQ(pos[2].x_m, 2.5 * 0.98);
  EXPECT_DOUBLE_EQ(pos[2].y_m, 2.5 * 0.2);
  EXPECT_DOUBLE_EQ(pos[3].y_m, -2.5 * 0.2);
  ASSERT_EQ(star.sessions.size(), 2u);
  EXPECT_EQ(star.sessions[0].sender, 2u);
  EXPECT_EQ(star.sessions[0].receiver, 0u);
  EXPECT_EQ(star.sessions[1].sender, 3u);
  EXPECT_EQ(star.relay_indices(), (std::vector<std::uint32_t>{1}));
}

TEST(ScenarioSpec, GridManhattanRoutes) {
  // 3x3 grid, indices row-major:  6 7 8
  //                               3 4 5
  //                               0 1 2
  const auto spec = ScenarioSpec::grid(3, 3);
  const auto hops = spec.next_hops();
  // X (column) corrected first: 0 -> 8 goes 0,1,2,5,8.
  EXPECT_EQ(hops[0][8], 1u);
  EXPECT_EQ(hops[1][8], 2u);
  EXPECT_EQ(hops[2][8], 5u);
  EXPECT_EQ(hops[5][8], 8u);
  // Same column: straight up/down.
  EXPECT_EQ(hops[1][7], 4u);
  EXPECT_EQ(hops[7][1], 4u);
  // Adjacent nodes deliver directly.
  EXPECT_EQ(hops[4][5], 5u);
  // The default corner-to-corner session relays along that path.
  EXPECT_EQ(spec.relay_indices(), (std::vector<std::uint32_t>{1, 2, 5}));
}

TEST(ScenarioSpec, GridRoutesDeliverEndToEnd) {
  ExperimentConfig cfg;
  cfg.scenario = ScenarioSpec::grid(2, 3);
  cfg.traffic = TrafficKind::kUdp;
  cfg.udp_duration = sim::Duration::seconds(5);
  const auto r = app::run_experiment(cfg);
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_GT(r.flows[0].bytes, 0u);
  // The corner-to-corner path 0 -> 1 -> 2 -> 5 forwarded through both
  // column hops.
  EXPECT_FALSE(r.relay_indices.empty());
  EXPECT_GT(r.relay_stats().data_frames_tx, 0u);
}

TEST(ScenarioSpec, RingRoutesTakeShorterArc) {
  const auto spec = ScenarioSpec::ring(6);
  const auto hops = spec.next_hops();
  EXPECT_EQ(hops[0][1], 1u);  // neighbour: direct
  EXPECT_EQ(hops[0][2], 1u);  // two clockwise
  EXPECT_EQ(hops[0][5], 5u);  // one counter-clockwise: direct
  EXPECT_EQ(hops[0][4], 5u);  // two counter-clockwise
  EXPECT_EQ(hops[0][3], 1u);  // tie: clockwise
  // Default session crosses the ring through relays.
  EXPECT_EQ(spec.relay_indices(), (std::vector<std::uint32_t>{1, 2}));
}

TEST(ScenarioSpec, StarFamilyRelaysThroughHub) {
  const auto spec = ScenarioSpec::star(4);
  const auto hops = spec.next_hops();
  for (std::uint32_t leaf : {0u, 2u, 3u, 4u, 5u}) {
    for (std::uint32_t other : {0u, 2u, 3u, 4u, 5u}) {
      if (leaf == other) continue;
      EXPECT_EQ(hops[leaf][other], 1u);
    }
    EXPECT_EQ(hops[leaf][1], 1u);  // hub itself: direct
    EXPECT_EQ(hops[1][leaf], leaf);
  }
  EXPECT_EQ(spec.relay_indices(), (std::vector<std::uint32_t>{1}));
}

// Relay identity is a property of the session paths, not of how routes
// get installed: a discovery-routed scenario must keep the same relay
// set (and therefore the delayed-aggregation holdoff on its relays, and
// a working ExperimentResult::relay_stats()) as its static-routed twin.
TEST(ScenarioSpec, DiscoveryScenariosKeepRelayIdentity) {
  auto spec = ScenarioSpec::chain(4);
  spec.static_routes = false;
  spec.route_discovery = true;
  spec.neighbor_whitelist = true;
  EXPECT_EQ(spec.relay_indices(), (std::vector<std::uint32_t>{1, 2}));
  auto scenario = Scenario::build(spec, 1);
  EXPECT_EQ(scenario.relay_indices(), (std::vector<std::uint32_t>{1, 2}));
}

// ---------------------------------------------------------------------
// Random placement: connectivity property
// ---------------------------------------------------------------------

TEST(ScenarioSpec, RandomPlacementIsConnectedAndRoutable) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto spec = ScenarioSpec::random(12, seed);
    const std::size_t n = spec.node_count();

    // The nearest-neighbor graph is connected (BFS from 0 reaches all).
    const auto adj = spec.adjacency();
    std::set<std::uint32_t> reached{0};
    std::vector<std::uint32_t> frontier{0};
    while (!frontier.empty()) {
      const auto v = frontier.back();
      frontier.pop_back();
      for (const auto u : adj[v]) {
        if (reached.insert(u).second) frontier.push_back(u);
      }
    }
    EXPECT_EQ(reached.size(), n) << "seed " << seed;

    // Every pair's next-hop chain terminates within n hops and only
    // steps across links of the graph.
    const auto hops = spec.next_hops();
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        if (i == j) continue;
        std::uint32_t cur = i;
        std::size_t steps = 0;
        while (cur != j && steps <= n) {
          const auto next = hops[cur][j];
          ASSERT_NE(next, cur) << "seed " << seed;
          EXPECT_TRUE(std::find(adj[cur].begin(), adj[cur].end(), next) !=
                      adj[cur].end())
              << "seed " << seed << ": hop " << cur << "->" << next
              << " is not a graph edge";
          cur = next;
          ++steps;
        }
        EXPECT_EQ(cur, j) << "seed " << seed << ": route " << i << "->" << j
                          << " did not terminate";
      }
    }
  }
}

TEST(ScenarioSpec, RandomPlacementIsSeedStable) {
  const auto a = ScenarioSpec::random(10, 42).positions();
  const auto b = ScenarioSpec::random(10, 42).positions();
  const auto c = ScenarioSpec::random(10, 43).positions();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x_m, b[i].x_m);
    EXPECT_DOUBLE_EQ(a[i].y_m, b[i].y_m);
  }
  bool any_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].x_m != c[i].x_m || a[i].y_m != c[i].y_m) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------------------
// Determinism: identical seeds => identical traces, for every family
// ---------------------------------------------------------------------

std::uint32_t run_family_digest(const ScenarioSpec& spec,
                                std::uint64_t seed) {
  auto s = Scenario::build(spec, seed);
  s.capture_traces();
  const auto receiver = spec.sessions.front().receiver;
  const auto sender = spec.sessions.front().sender;
  app::UdpSinkApp sink(s.sim(), s.node(receiver), 9001);
  app::UdpCbrConfig cbr_cfg;
  cbr_cfg.destination = {proto::Ipv4Address::for_node(receiver), 9001};
  cbr_cfg.packets_per_tick = 2;
  cbr_cfg.stop = sim::TimePoint::at(sim::Duration::seconds(2));
  app::UdpCbrApp cbr(s.sim(), s.node(sender), cbr_cfg);
  cbr.start();
  s.run_for(sim::Duration::seconds(3));
  EXPECT_GT(sink.packets(), 0u) << spec.label();
  return s.trace_digest();
}

TEST(ScenarioSpec, EveryFamilyIsSeedDeterministic) {
  const ScenarioSpec specs[] = {
      ScenarioSpec::chain(4),  ScenarioSpec::star(3),
      ScenarioSpec::grid(2, 3), ScenarioSpec::ring(5),
      ScenarioSpec::random(6, 2)};
  for (const auto& spec : specs) {
    const auto a = run_family_digest(spec, 77);
    const auto b = run_family_digest(spec, 77);
    const auto c = run_family_digest(spec, 78);
    EXPECT_EQ(a, b) << spec.label();
    // A different simulation seed perturbs backoff somewhere.
    EXPECT_NE(a, c) << spec.label();
  }
}

// ---------------------------------------------------------------------
// K-sender star fairness smoke test
// ---------------------------------------------------------------------

TEST(ScenarioSpec, StarSendersShareTheRelayFairly) {
  ExperimentConfig cfg;
  cfg.scenario = ScenarioSpec::star(3);
  cfg.traffic = TrafficKind::kTcp;
  cfg.tcp_file_bytes = 40'000;
  const auto r = app::run_experiment(cfg);
  ASSERT_EQ(r.flows.size(), 3u);
  double best = 0.0, worst = 0.0;
  for (const auto& flow : r.flows) {
    EXPECT_TRUE(flow.completed);
    EXPECT_GT(flow.throughput_mbps, 0.0);
    best = std::max(best, flow.throughput_mbps);
    worst = worst == 0.0 ? flow.throughput_mbps
                         : std::min(worst, flow.throughput_mbps);
  }
  // Smoke bound: DCF luck aside, no sender should be starved to under a
  // quarter of the best.
  EXPECT_GT(worst, 0.25 * best);
}

// ---------------------------------------------------------------------
// The sweep driver
// ---------------------------------------------------------------------

TEST(Sweep, GridExpansionAndParallelResultsMatchSerial) {
  app::SweepGrid grid;
  grid.scenarios = {{"", ScenarioSpec::two_hop()},
                    {"", ScenarioSpec::grid(2, 2)}};
  grid.policies = {{"na", core::AggregationPolicy::na()},
                   {"ba", core::AggregationPolicy::ba()}};
  grid.base.traffic = TrafficKind::kTcp;
  grid.base.tcp_file_bytes = 20'000;

  const auto points = app::expand_sweep(grid);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].scenario_label, "chain-3");
  EXPECT_EQ(points[0].policy_label, "na");
  EXPECT_EQ(points[3].scenario_label, "grid-2x2");
  EXPECT_EQ(points[3].policy_label, "ba");

  const auto serial = app::sweep_experiments(grid, 1);
  const auto parallel = app::sweep_experiments(grid, 4);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].result.flows.size(),
              parallel[i].result.flows.size());
    EXPECT_TRUE(serial[i].result.flows[0].completed);
    // Simulations are deterministic, so thread count cannot change
    // results — only wall-clock.
    EXPECT_EQ(serial[i].result.flows[0].elapsed.ns(),
              parallel[i].result.flows[0].elapsed.ns());
  }
}

}  // namespace
}  // namespace hydra::topo
