// Route discovery (AODV-style RREQ/RREP) over forced multi-hop
// topologies, plus the MAC neighbour filter that forces them.
#include <gtest/gtest.h>

#include "app/ping.h"
#include "app/udp_sink.h"
#include "net/discovery.h"
#include "net/node.h"
#include "topo/scenario.h"
#include "transport/host.h"

namespace hydra::net {
namespace {

using topo::Scenario;

// A chain of n nodes where the MAC whitelist only admits adjacent
// neighbours — multi-hop even though every radio hears every frame.
Scenario filtered_chain(std::size_t n) {
  auto spec = topo::ScenarioSpec::chain(n);
  spec.neighbor_whitelist = true;
  spec.static_routes = false;
  spec.route_discovery = true;
  return Scenario::build(spec, 5);
}

TEST(NeighborFilter, NonNeighborFramesAreNotDelivered) {
  auto chain = filtered_chain(3);
  // Node 0 -> node 2 directly: every radio hears it, but node 2's MAC
  // whitelist only admits node 1.
  int delivered = 0;
  chain.node(2).stack().on_broadcast = [&](const proto::PacketPtr&) {
    ++delivered;
  };
  chain.node(0).mac().enqueue(proto::make_flood_packet(proto::Ipv4Address::for_node(0),
                                                40),
                              proto::MacAddress::broadcast(),
                              proto::MacAddress::for_node(0));
  chain.run_for(sim::Duration::millis(200));
  EXPECT_EQ(delivered, 0);  // two hops away: filtered
}

TEST(Discovery, FindsTwoHopRoute) {
  auto chain = filtered_chain(3);
  bool found = false;
  chain.discovery(0).discover(proto::Ipv4Address::for_node(2),
                              [&](bool ok) { found = ok; });
  chain.run_for(sim::Duration::seconds(2));

  EXPECT_TRUE(found);
  // Forward route at the origin goes via the relay.
  EXPECT_EQ(chain.node(0).routes().next_hop(proto::Ipv4Address::for_node(2)),
            proto::Ipv4Address::for_node(1));
  // The relay learned both directions.
  EXPECT_EQ(chain.node(1).routes().next_hop(proto::Ipv4Address::for_node(0)),
            proto::Ipv4Address::for_node(0));
  // The target learned the reverse route to the origin via the relay.
  EXPECT_EQ(chain.node(2).routes().next_hop(proto::Ipv4Address::for_node(0)),
            proto::Ipv4Address::for_node(1));
}

TEST(Discovery, FindsThreeHopRouteAndCarriesTraffic) {
  auto chain = filtered_chain(4);
  bool found = false;
  chain.discovery(0).discover(proto::Ipv4Address::for_node(3),
                              [&](bool ok) { found = ok; });
  chain.run_for(sim::Duration::seconds(3));
  ASSERT_TRUE(found);

  // The discovered route carries real traffic end to end.
  app::UdpSinkApp sink(chain.sim(), chain.node(3), 9001);
  transport::mux_of(chain.node(0)).open_udp(9000).send_to(
      {proto::Ipv4Address::for_node(3), 9001}, 500);
  chain.run_for(sim::Duration::seconds(2));
  EXPECT_EQ(sink.packets(), 1u);
}

TEST(Discovery, DuplicateRreqsAreSuppressed) {
  auto chain = filtered_chain(4);
  bool found = false;
  chain.discovery(0).discover(proto::Ipv4Address::for_node(3),
                              [&](bool ok) { found = ok; });
  chain.run_for(sim::Duration::seconds(3));
  ASSERT_TRUE(found);
  // Each relay re-broadcasts a given request at most once.
  EXPECT_LE(chain.discovery(1).rreqs_relayed(), 1u);
  EXPECT_LE(chain.discovery(2).rreqs_relayed(), 1u);
  // The relays heard the origin's flood back from their own relays and
  // suppressed it.
  EXPECT_GT(chain.discovery(1).rreqs_suppressed() +
                chain.discovery(2).rreqs_suppressed(),
            0u);
}

TEST(Discovery, UnreachableTargetFailsAfterRetries) {
  auto chain = filtered_chain(3);
  bool done = false, found = true;
  // 10.0.0.99 does not exist.
  chain.discovery(0).discover(proto::Ipv4Address::from_octets(10, 0, 0, 99),
                              [&](bool ok) {
                                done = true;
                                found = ok;
                              });
  chain.run_for(sim::Duration::seconds(5));
  EXPECT_TRUE(done);
  EXPECT_FALSE(found);
  // Initial attempt + 2 retries.
  EXPECT_EQ(chain.discovery(0).rreqs_sent(), 3u);
}

TEST(Discovery, ExistingRouteResolvesImmediately) {
  auto chain = filtered_chain(3);
  chain.node(0).routes().add_route(proto::Ipv4Address::for_node(2),
                                   proto::Ipv4Address::for_node(1));
  bool found = false;
  chain.discovery(0).discover(proto::Ipv4Address::for_node(2),
                              [&](bool ok) { found = ok; });
  EXPECT_TRUE(found);  // synchronous: no flood needed
  EXPECT_EQ(chain.discovery(0).rreqs_sent(), 0u);
}

TEST(Discovery, HopLimitBoundsTheFlood) {
  auto chain = filtered_chain(4);
  // Give node 0 a discovery engine with a 1-hop cap: the RREQ can reach
  // node 1 but will not be relayed further.
  DiscoveryConfig dc;
  dc.max_hops = 1;
  dc.request_timeout = sim::Duration::millis(300);
  dc.max_retries = 0;
  RouteDiscovery limited(chain.sim(), chain.node(0), dc);
  // (Replaces the default engine's handler on this node.)
  bool done = false, found = true;
  limited.discover(proto::Ipv4Address::for_node(3), [&](bool ok) {
    done = true;
    found = ok;
  });
  chain.run_for(sim::Duration::seconds(2));
  EXPECT_TRUE(done);
  EXPECT_FALSE(found);
}

TEST(Ping, RoundTripAcrossRelay) {
  auto chain = filtered_chain(3);
  // Static routes (discovery tested elsewhere).
  chain.node(0).routes().add_route(proto::Ipv4Address::for_node(2),
                                   proto::Ipv4Address::for_node(1));
  chain.node(2).routes().add_route(proto::Ipv4Address::for_node(0),
                                   proto::Ipv4Address::for_node(1));

  app::PingResponderApp responder(chain.node(2), 9200);
  app::PingConfig pc;
  pc.destination = {proto::Ipv4Address::for_node(2), 9200};
  pc.count = 5;
  pc.interval = sim::Duration::millis(50);
  app::PingApp ping(chain.sim(), chain.node(0), pc);
  ping.start();
  chain.run_for(sim::Duration::seconds(5));

  EXPECT_EQ(ping.sent(), 5u);
  EXPECT_EQ(ping.received(), 5u);
  EXPECT_EQ(responder.echoed(), 5u);
  EXPECT_EQ(ping.loss_fraction(), 0.0);
  // Two 160 B hops each way plus MAC overhead: single-digit ms at least.
  EXPECT_GT(ping.avg_rtt().millis_f(), 2.0);
  EXPECT_LT(ping.avg_rtt().millis_f(), 100.0);
  EXPECT_LE(ping.min_rtt(), ping.avg_rtt());
  EXPECT_LE(ping.avg_rtt(), ping.max_rtt());
}

TEST(Ping, TimeoutCountsLostProbes) {
  auto chain = filtered_chain(3);
  // No routes installed: probes die at node 0's next-hop lookup (sent to
  // the "direct" fallback, which the whitelist filters).
  app::PingConfig pc;
  pc.destination = {proto::Ipv4Address::for_node(2), 9200};
  pc.count = 3;
  pc.timeout = sim::Duration::millis(100);
  pc.interval = sim::Duration::millis(50);
  app::PingApp ping(chain.sim(), chain.node(0), pc);
  ping.start();
  chain.run_for(sim::Duration::seconds(2));

  EXPECT_EQ(ping.sent(), 3u);
  EXPECT_EQ(ping.received(), 0u);
  EXPECT_EQ(ping.timed_out(), 3u);
  EXPECT_EQ(ping.loss_fraction(), 1.0);
}

TEST(DiscoveryWire, HeaderRoundTrip) {
  proto::DiscoveryHeader h;
  h.kind = proto::DiscoveryHeader::Kind::kRrep;
  h.hop_count = 3;
  h.request_id = 777;
  h.origin = proto::Ipv4Address::for_node(0);
  h.target = proto::Ipv4Address::for_node(3);
  const auto pkt = proto::make_discovery_packet(proto::Ipv4Address::for_node(3),
                                         proto::Ipv4Address::for_node(0), h);
  EXPECT_EQ(pkt->wire_size(),
            proto::Ipv4Header::kWireBytes + proto::DiscoveryHeader::kWireBytes);
  const auto bytes = pkt->serialize();
  BufferReader r(bytes);
  const auto parsed = proto::Packet::parse(r);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->discovery.has_value());
  EXPECT_EQ(parsed->discovery->kind, proto::DiscoveryHeader::Kind::kRrep);
  EXPECT_EQ(parsed->discovery->hop_count, 3);
  EXPECT_EQ(parsed->discovery->request_id, 777);
  EXPECT_EQ(parsed->discovery->origin, proto::Ipv4Address::for_node(0));
  EXPECT_EQ(parsed->discovery->target, proto::Ipv4Address::for_node(3));
}

}  // namespace
}  // namespace hydra::net
