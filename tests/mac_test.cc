// MAC state-machine tests: DCF exchange, aggregation behaviour on the
// air, TCP-ACK broadcast handling, retransmission and block-ACK.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/mac.h"
#include "phy/medium.h"
#include "phy/phy.h"
#include "proto/packet.h"
#include "sim/simulation.h"

namespace hydra::mac {
namespace {

struct TestNode {
  phy::Phy phy;
  Mac mac;
  std::vector<proto::PacketPtr> delivered;

  TestNode(sim::Simulation& s, phy::Medium& m, std::uint32_t index,
           const core::AggregationPolicy& policy, double x_m)
      : phy(s, m, {.position = {x_m, 0}}, index),
        mac(s, phy, make_config(index, policy)) {
    mac.on_deliver = [this](proto::PacketPtr p, proto::MacAddress) {
      delivered.push_back(std::move(p));
    };
  }

  static MacConfig make_config(std::uint32_t index,
                               const core::AggregationPolicy& policy) {
    MacConfig c;
    c.address = proto::MacAddress::for_node(index);
    c.policy = policy;
    return c;
  }
};

struct Harness {
  sim::Simulation sim{1};
  phy::Medium medium{sim};
  std::vector<std::unique_ptr<TestNode>> nodes;

  explicit Harness(std::size_t n,
                   core::AggregationPolicy policy = core::AggregationPolicy::ba()) {
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(
          std::make_unique<TestNode>(sim, medium, i, policy, 2.5 * i));
    }
  }

  TestNode& operator[](std::size_t i) { return *nodes[i]; }

  void run_ms(std::int64_t ms) { sim.run_for(sim::Duration::millis(ms)); }
};

proto::PacketPtr udp_pkt(std::uint32_t payload = 1048) {
  return proto::make_udp_packet(proto::Ipv4Address::for_node(0),
                              proto::Ipv4Address::for_node(1), 9000, 9001,
                              payload);
}

proto::PacketPtr ack_pkt() {
  return proto::make_tcp_packet(proto::Ipv4Address::for_node(1),
                              proto::Ipv4Address::for_node(0), 5001, 49152,
                              500, 600, {.ack = true}, 21712, 0);
}

TEST(MacDcf, UnicastDeliveryUsesRtsCtsAck) {
  Harness h(2);
  h[0].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                   proto::MacAddress::for_node(0));
  h.run_ms(200);

  ASSERT_EQ(h[1].delivered.size(), 1u);
  EXPECT_EQ(h[0].mac.stats().rts_tx, 1u);
  EXPECT_EQ(h[1].mac.stats().cts_tx, 1u);
  EXPECT_EQ(h[1].mac.stats().ack_tx, 1u);
  EXPECT_EQ(h[0].mac.stats().acks_rx, 1u);
  EXPECT_EQ(h[0].mac.stats().data_frames_tx, 1u);
  EXPECT_EQ(h[0].mac.stats().retries, 0u);
}

TEST(MacDcf, RtsCtsCanBeDisabled) {
  Harness h(2);
  auto policy = core::AggregationPolicy::ba();
  MacConfig c = TestNode::make_config(9, policy);
  EXPECT_TRUE(c.use_rts_cts);  // default

  // Rebuild node 0's MAC without RTS/CTS via a fresh harness node.
  sim::Simulation sim(1);
  phy::Medium medium(sim);
  phy::Phy p0(sim, medium, {.position = {0, 0}}, 0);
  phy::Phy p1(sim, medium, {.position = {2.5, 0}}, 1);
  MacConfig c0 = TestNode::make_config(0, policy);
  c0.use_rts_cts = false;
  MacConfig c1 = TestNode::make_config(1, policy);
  c1.use_rts_cts = false;
  Mac m0(sim, p0, c0), m1(sim, p1, c1);
  int delivered = 0;
  m1.on_deliver = [&](proto::PacketPtr, proto::MacAddress) { ++delivered; };

  m0.enqueue(udp_pkt(), proto::MacAddress::for_node(1), proto::MacAddress::for_node(0));
  sim.run_for(sim::Duration::millis(200));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(m0.stats().rts_tx, 0u);
  EXPECT_EQ(m1.stats().cts_tx, 0u);
  EXPECT_EQ(m1.stats().ack_tx, 1u);  // data still acknowledged
}

TEST(MacDcf, BroadcastNeedsNoControlFrames) {
  Harness h(3);
  h[0].mac.enqueue(proto::make_flood_packet(proto::Ipv4Address::for_node(0), 40),
                   proto::MacAddress::broadcast(), proto::MacAddress::for_node(0));
  h.run_ms(100);

  // Both neighbours deliver it; nobody acknowledges.
  EXPECT_EQ(h[1].delivered.size(), 1u);
  EXPECT_EQ(h[2].delivered.size(), 1u);
  EXPECT_EQ(h[0].mac.stats().rts_tx, 0u);
  EXPECT_EQ(h[1].mac.stats().ack_tx, 0u);
  EXPECT_EQ(h[2].mac.stats().ack_tx, 0u);
  EXPECT_EQ(h[0].mac.stats().broadcast_subframes_tx, 1u);
}

TEST(MacAggregation, QueuedPacketsShareOnePhyFrame) {
  Harness h(2, core::AggregationPolicy::ua());
  for (int i = 0; i < 3; ++i) {
    h[0].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                     proto::MacAddress::for_node(0));
  }
  h.run_ms(300);

  ASSERT_EQ(h[1].delivered.size(), 3u);
  // 3 x 1140 B fits one 5 KB aggregate.
  EXPECT_EQ(h[0].mac.stats().data_frames_tx, 1u);
  EXPECT_EQ(h[0].mac.stats().unicast_subframes_tx, 3u);
  EXPECT_EQ(h[0].mac.stats().rts_tx, 1u);   // one floor acquisition
  EXPECT_EQ(h[1].mac.stats().ack_tx, 1u);   // one ACK for the burst
}

TEST(MacAggregation, NaPolicySendsFramesIndividually) {
  Harness h(2, core::AggregationPolicy::na());
  for (int i = 0; i < 3; ++i) {
    h[0].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                     proto::MacAddress::for_node(0));
  }
  h.run_ms(500);

  ASSERT_EQ(h[1].delivered.size(), 3u);
  EXPECT_EQ(h[0].mac.stats().data_frames_tx, 3u);
  EXPECT_EQ(h[0].mac.stats().rts_tx, 3u);
}

TEST(MacTcpAck, ClassifiedIntoBroadcastPortionAndNotAcked) {
  Harness h(2);
  h[0].mac.enqueue(ack_pkt(), proto::MacAddress::for_node(1),
                   proto::MacAddress::for_node(0));
  h.run_ms(100);

  ASSERT_EQ(h[1].delivered.size(), 1u);
  EXPECT_TRUE(h[1].delivered[0]->is_pure_tcp_ack());
  // Rode in the broadcast portion: no RTS, no link ACK.
  EXPECT_EQ(h[0].mac.stats().broadcast_subframes_tx, 1u);
  EXPECT_EQ(h[0].mac.stats().unicast_subframes_tx, 0u);
  EXPECT_EQ(h[0].mac.stats().rts_tx, 0u);
  EXPECT_EQ(h[1].mac.stats().ack_tx, 0u);
  EXPECT_EQ(h[0].mac.classifier().acks_classified(), 1u);
}

TEST(MacTcpAck, OverhearingNodeDropsUnaddressedAck) {
  Harness h(3);
  // Node 0 sends a TCP ACK whose link next hop is node 1; node 2 hears it.
  h[0].mac.enqueue(ack_pkt(), proto::MacAddress::for_node(1),
                   proto::MacAddress::for_node(0));
  h.run_ms(100);

  EXPECT_EQ(h[1].delivered.size(), 1u);
  EXPECT_TRUE(h[2].delivered.empty());  // dropped at the MAC (paper §3.3)
  EXPECT_EQ(h[2].mac.stats().dropped_not_for_us, 1u);
}

TEST(MacTcpAck, BidirectionalAggregationInOneFrame) {
  Harness h(2);
  // Node 0 has TCP data for node 1 AND a TCP ACK for node 1 queued: the
  // ACK rides the broadcast portion of the same PHY frame.
  h[0].mac.enqueue(ack_pkt(), proto::MacAddress::for_node(1),
                   proto::MacAddress::for_node(0));
  h[0].mac.enqueue(proto::make_tcp_packet(proto::Ipv4Address::for_node(0),
                                        proto::Ipv4Address::for_node(1), 49152,
                                        5001, 0, 0, {.ack = true}, 21712,
                                        1357),
                   proto::MacAddress::for_node(1), proto::MacAddress::for_node(0));
  h.run_ms(200);

  ASSERT_EQ(h[1].delivered.size(), 2u);
  EXPECT_EQ(h[0].mac.stats().data_frames_tx, 1u);
  EXPECT_EQ(h[0].mac.stats().broadcast_subframes_tx, 1u);
  EXPECT_EQ(h[0].mac.stats().unicast_subframes_tx, 1u);
}

TEST(MacTcpAck, UaPolicyKeepsAcksUnicast) {
  Harness h(2, core::AggregationPolicy::ua());
  h[0].mac.enqueue(ack_pkt(), proto::MacAddress::for_node(1),
                   proto::MacAddress::for_node(0));
  h.run_ms(100);

  ASSERT_EQ(h[1].delivered.size(), 1u);
  EXPECT_EQ(h[0].mac.stats().unicast_subframes_tx, 1u);
  EXPECT_EQ(h[0].mac.stats().broadcast_subframes_tx, 0u);
  EXPECT_EQ(h[1].mac.stats().ack_tx, 1u);  // link-acknowledged as usual
}

TEST(MacRetry, OversizedAggregateRetriesAndDrops) {
  // A 16 KB aggregate at 0.65 Mbps blows through the 62 ms coherence
  // time: tail subframes always fail, the whole unicast portion is
  // discarded (paper §4.2.2), and the sender eventually gives up.
  auto policy = core::AggregationPolicy::ua();
  policy.max_aggregate_bytes = 16 * 1024;
  Harness h(2, policy);
  for (int i = 0; i < 14; ++i) {
    h[0].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                     proto::MacAddress::for_node(0));
  }
  h.run_ms(3000);

  EXPECT_EQ(h[1].delivered.size(), 0u);
  EXPECT_GT(h[0].mac.stats().retries, 0u);
  EXPECT_GT(h[0].mac.stats().retry_drops, 0u);
  EXPECT_GT(h[1].mac.stats().aggregate_discards, 0u);
}

TEST(MacRetry, BlockAckRecoversPartialAggregates) {
  // Same oversized aggregate, but with the block-ACK extension the good
  // prefix is delivered and only the tail is retransmitted.
  auto policy = core::AggregationPolicy::ua();
  policy.max_aggregate_bytes = 16 * 1024;
  policy.block_ack = true;
  Harness h(2, policy);
  for (int i = 0; i < 14; ++i) {
    h[0].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                     proto::MacAddress::for_node(0));
  }
  h.run_ms(3000);

  // All 14 packets make it through, each delivered exactly once.
  EXPECT_EQ(h[1].delivered.size(), 14u);
  EXPECT_EQ(h[1].mac.stats().duplicates_suppressed +
                h[1].mac.stats().delivered_up,
            h[1].mac.stats().delivered_up + h[1].mac.stats().duplicates_suppressed);
  EXPECT_GT(h[0].mac.stats().retries, 0u);
  EXPECT_EQ(h[0].mac.stats().retry_drops, 0u);
}

TEST(MacQueue, OverflowCountsDrops) {
  auto policy = core::AggregationPolicy::ba();
  sim::Simulation sim(1);
  phy::Medium medium(sim);
  phy::Phy p0(sim, medium, {.position = {0, 0}}, 0);
  MacConfig c0 = TestNode::make_config(0, policy);
  c0.queue_limit = 4;
  phy::Phy p1(sim, medium, {.position = {2.5, 0}}, 1);
  Mac m1(sim, p1, TestNode::make_config(1, policy));
  Mac m0(sim, p0, c0);

  for (int i = 0; i < 10; ++i) {
    m0.enqueue(udp_pkt(), proto::MacAddress::for_node(1), proto::MacAddress::for_node(0));
  }
  EXPECT_GT(m0.stats().queue_drops, 0u);
}

TEST(MacNav, ContendersAllDeliverDespitePossibleCollisions) {
  Harness h(3);
  // Nodes 0 and 2 contend for the same receiver. Their initial backoff
  // draws may collide (that is DCF working as designed); RTS
  // retransmission with a doubled contention window must recover, and
  // nothing may be lost or duplicated.
  for (int i = 0; i < 3; ++i) {
    h[0].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                     proto::MacAddress::for_node(0));
  }
  h[2].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                   proto::MacAddress::for_node(2));
  h.run_ms(1000);

  EXPECT_EQ(h[1].delivered.size(), 4u);
  EXPECT_EQ(h[0].mac.stats().retry_drops, 0u);
  EXPECT_EQ(h[2].mac.stats().retry_drops, 0u);
  EXPECT_EQ(h[1].mac.stats().duplicates_suppressed, 0u);
}

TEST(MacNav, OverhearingNodeDefersUntilExchangeEnds) {
  Harness h(3);
  // Node 0 starts alone; once its RTS is on the air node 2 gets traffic.
  // Node 2's NAV (set by the RTS) must hold it off: no collisions.
  for (int i = 0; i < 3; ++i) {
    h[0].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                     proto::MacAddress::for_node(0));
  }
  h.sim.scheduler().schedule_in(sim::Duration::millis(2), [&] {
    h[2].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                     proto::MacAddress::for_node(2));
  });
  h.run_ms(1000);

  EXPECT_EQ(h[1].delivered.size(), 4u);
  for (auto& n : h.nodes) {
    EXPECT_EQ(n->mac.stats().collisions, 0u)
        << "node " << n->mac.address().value();
  }
}

TEST(MacDelayed, RelayWaitsForThreeSubframes) {
  auto policy = core::AggregationPolicy::dba(3);
  Harness h(2, policy);
  // One packet: DBA holds it until the safety timeout.
  h[0].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                   proto::MacAddress::for_node(0));
  h.run_ms(5);
  EXPECT_EQ(h[0].mac.stats().data_frames_tx, 0u);  // still held

  h.run_ms(100);  // past the delay safety timeout
  EXPECT_EQ(h[0].mac.stats().data_frames_tx, 1u);
  EXPECT_EQ(h[1].delivered.size(), 1u);
}

TEST(MacDelayed, ThresholdReleasesImmediately) {
  auto policy = core::AggregationPolicy::dba(3);
  Harness h(2, policy);
  for (int i = 0; i < 3; ++i) {
    h[0].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                     proto::MacAddress::for_node(0));
  }
  // Transmission must *start* well before the 10 ms safety timeout
  // (access takes ≲ 1.5 ms), proving the threshold released the hold.
  h.run_ms(5);
  EXPECT_EQ(h[0].mac.stats().data_frames_tx, 1u);
  EXPECT_EQ(h[0].mac.stats().unicast_subframes_tx, 3u);
  h.run_ms(200);  // 3 x 1140 B at 0.65 Mbps needs ~42 ms on the air
  EXPECT_EQ(h[1].delivered.size(), 3u);
}

TEST(MacStatsTest, TimeAccountingConsistency) {
  Harness h(2);
  for (int i = 0; i < 5; ++i) {
    h[0].mac.enqueue(udp_pkt(), proto::MacAddress::for_node(1),
                     proto::MacAddress::for_node(0));
  }
  h.run_ms(1000);

  const auto& t = h[0].mac.stats().time;
  EXPECT_GT(t.payload.ns(), 0);
  EXPECT_GT(t.phy_header.ns(), 0);
  EXPECT_GT(t.control.ns(), 0);
  EXPECT_GT(t.ifs.ns(), 0);
  const auto f = t.overhead_fraction();
  EXPECT_GT(f, 0.0);
  EXPECT_LT(f, 1.0);
  EXPECT_EQ(t.total(), t.overhead() + t.payload);
}

}  // namespace
}  // namespace hydra::mac
