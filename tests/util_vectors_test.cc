// CRC-32 against published check vectors and units round trips.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/crc32.h"
#include "util/units.h"

namespace hydra {
namespace {

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Crc32Vectors, StandardCheckValue) {
  // The canonical CRC-32/ISO-HDLC check input.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32Vectors, PublishedVectors) {
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(bytes_of("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(bytes_of("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
  const std::array<std::uint8_t, 4> ff = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(crc32(ff), 0xFFFFFFFFu);
}

TEST(Crc32Vectors, IncrementalMatchesOneShot) {
  const auto whole = bytes_of("123456789");
  for (std::size_t split = 0; split <= whole.size(); ++split) {
    std::uint32_t state = kCrc32Init;
    state = crc32_update(state, whole.first(split));
    state = crc32_update(state, whole.subspan(split));
    EXPECT_EQ(crc32_finalize(state), 0xCBF43926u) << "split at " << split;
  }
}

TEST(Crc32Vectors, UpdateWithNothingIsIdentity) {
  std::uint32_t state = kCrc32Init;
  state = crc32_update(state, {});
  EXPECT_EQ(crc32_finalize(state), crc32({}));
}

TEST(UnitsRoundTrip, BitRateConstructorsAgree) {
  EXPECT_EQ(BitRate::bps(650'000), BitRate::kbps(650));
  EXPECT_EQ(BitRate::kbps(650), BitRate::mbps_x100(65));
  EXPECT_EQ(BitRate::mbps_x100(130).bits_per_second(), 1'300'000u);
}

TEST(UnitsRoundTrip, MbpsIsExactForPaperRates) {
  // The paper's four rates survive the round trip with no drift.
  EXPECT_DOUBLE_EQ(BitRate::mbps_x100(65).mbps(), 0.65);
  EXPECT_DOUBLE_EQ(BitRate::mbps_x100(130).mbps(), 1.30);
  EXPECT_DOUBLE_EQ(BitRate::mbps_x100(195).mbps(), 1.95);
  EXPECT_DOUBLE_EQ(BitRate::mbps_x100(260).mbps(), 2.60);
}

TEST(UnitsRoundTrip, OrderingAndZero) {
  EXPECT_TRUE(BitRate{}.is_zero());
  EXPECT_FALSE(BitRate::bps(1).is_zero());
  EXPECT_LT(BitRate::mbps_x100(65), BitRate::mbps_x100(130));
  EXPECT_GT(BitRate::kbps(2), BitRate::bps(1999));
}

TEST(UnitsRoundTrip, ToStringFormatsMbps) {
  EXPECT_EQ(to_string(BitRate::mbps_x100(65)), "0.65 Mbps");
  EXPECT_EQ(to_string(BitRate::mbps_x100(1100)), "11.00 Mbps");
}

TEST(UnitsRoundTrip, KibConstant) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(16 * kKiB, 16384u);
}

}  // namespace
}  // namespace hydra
