// Edge cases of the discrete-event scheduler: cancellation semantics,
// FIFO ordering at one instant, run_until clock handling, and
// pending-event accounting under cancellations.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace hydra::sim {
namespace {

TEST(SchedulerEdge, CancelAfterRunReturnsFalse) {
  Scheduler sched;
  int runs = 0;
  const auto id = sched.schedule_in(Duration::millis(1), [&] { ++runs; });
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(sched.cancel(id));  // already executed
}

TEST(SchedulerEdge, CancelTwiceReturnsFalseTheSecondTime) {
  Scheduler sched;
  const auto id = sched.schedule_in(Duration::millis(1), [] {});
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));
  EXPECT_EQ(sched.run(), 0u);
}

TEST(SchedulerEdge, InvalidIdCancelReturnsFalse) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(EventId{}));
}

TEST(SchedulerEdge, SameInstantEventsRunInSchedulingOrder) {
  Scheduler sched;
  std::vector<int> order;
  const auto at = TimePoint::at(Duration::millis(5));
  for (int i = 0; i < 8; ++i) {
    sched.schedule_at(at, [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SchedulerEdge, FifoHoldsForEventsScheduledFromCallbacks) {
  Scheduler sched;
  std::vector<int> order;
  const auto at = TimePoint::at(Duration::millis(5));
  sched.schedule_at(at, [&] {
    order.push_back(0);
    // Same-instant event scheduled while running: goes to the back.
    sched.schedule_at(at, [&] { order.push_back(2); });
  });
  sched.schedule_at(at, [&] { order.push_back(1); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerEdge, RunUntilAdvancesNowAndKeepsLaterEventsQueued) {
  Scheduler sched;
  int early = 0, late = 0;
  sched.schedule_in(Duration::millis(10), [&] { ++early; });
  sched.schedule_in(Duration::millis(30), [&] { ++late; });
  const auto deadline = TimePoint::at(Duration::millis(20));
  EXPECT_EQ(sched.run_until(deadline), 1u);
  EXPECT_EQ(early, 1);
  EXPECT_EQ(late, 0);
  EXPECT_EQ(sched.now(), deadline);  // clock lands on the deadline
  EXPECT_EQ(sched.pending_events(), 1u);
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(late, 1);
}

TEST(SchedulerEdge, PendingEventsExcludesCancellations) {
  Scheduler sched;
  const auto a = sched.schedule_in(Duration::millis(1), [] {});
  sched.schedule_in(Duration::millis(2), [] {});
  const auto c = sched.schedule_in(Duration::millis(3), [] {});
  EXPECT_EQ(sched.pending_events(), 3u);
  EXPECT_TRUE(sched.cancel(a));
  EXPECT_TRUE(sched.cancel(c));
  EXPECT_EQ(sched.pending_events(), 1u);
  // Only the surviving event executes and the counters settle.
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(sched.pending_events(), 0u);
  EXPECT_EQ(sched.executed_events(), 1u);
}

}  // namespace
}  // namespace hydra::sim
