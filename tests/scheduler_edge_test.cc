// Edge cases of the discrete-event scheduler: cancellation semantics,
// FIFO ordering at one instant, run_until clock handling, pending-event
// accounting under cancellations, peek_next_time, and the boundary
// behaviour of parallel lookahead windows (exact-boundary events,
// in-window cancellation, zero-lookahead fallback).
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace hydra::sim {
namespace {

TEST(SchedulerEdge, CancelAfterRunReturnsFalse) {
  Scheduler sched;
  int runs = 0;
  const auto id = sched.schedule_in(Duration::millis(1), [&] { ++runs; });
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(sched.cancel(id));  // already executed
}

TEST(SchedulerEdge, CancelTwiceReturnsFalseTheSecondTime) {
  Scheduler sched;
  const auto id = sched.schedule_in(Duration::millis(1), [] {});
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));
  EXPECT_EQ(sched.run(), 0u);
}

TEST(SchedulerEdge, InvalidIdCancelReturnsFalse) {
  Scheduler sched;
  EXPECT_FALSE(sched.cancel(EventId{}));
}

TEST(SchedulerEdge, SameInstantEventsRunInSchedulingOrder) {
  Scheduler sched;
  std::vector<int> order;
  const auto at = TimePoint::at(Duration::millis(5));
  for (int i = 0; i < 8; ++i) {
    sched.schedule_at(at, [&order, i] { order.push_back(i); });
  }
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SchedulerEdge, FifoHoldsForEventsScheduledFromCallbacks) {
  Scheduler sched;
  std::vector<int> order;
  const auto at = TimePoint::at(Duration::millis(5));
  sched.schedule_at(at, [&] {
    order.push_back(0);
    // Same-instant event scheduled while running: goes to the back.
    sched.schedule_at(at, [&] { order.push_back(2); });
  });
  sched.schedule_at(at, [&] { order.push_back(1); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerEdge, RunUntilAdvancesNowAndKeepsLaterEventsQueued) {
  Scheduler sched;
  int early = 0, late = 0;
  sched.schedule_in(Duration::millis(10), [&] { ++early; });
  sched.schedule_in(Duration::millis(30), [&] { ++late; });
  const auto deadline = TimePoint::at(Duration::millis(20));
  EXPECT_EQ(sched.run_until(deadline), 1u);
  EXPECT_EQ(early, 1);
  EXPECT_EQ(late, 0);
  EXPECT_EQ(sched.now(), deadline);  // clock lands on the deadline
  EXPECT_EQ(sched.pending_events(), 1u);
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(late, 1);
}

TEST(SchedulerEdge, PendingEventsExcludesCancellations) {
  Scheduler sched;
  const auto a = sched.schedule_in(Duration::millis(1), [] {});
  sched.schedule_in(Duration::millis(2), [] {});
  const auto c = sched.schedule_in(Duration::millis(3), [] {});
  EXPECT_EQ(sched.pending_events(), 3u);
  EXPECT_TRUE(sched.cancel(a));
  EXPECT_TRUE(sched.cancel(c));
  EXPECT_EQ(sched.pending_events(), 1u);
  // Only the surviving event executes and the counters settle.
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(sched.pending_events(), 0u);
  EXPECT_EQ(sched.executed_events(), 1u);
}

TEST(SchedulerEdge, PeekNextTimeSkipsCancelledHeads) {
  Scheduler sched;
  EXPECT_EQ(sched.peek_next_time(), std::nullopt);
  const auto a = sched.schedule_in(Duration::millis(1), [] {});
  sched.schedule_in(Duration::millis(2), [] {});
  EXPECT_EQ(sched.peek_next_time(), TimePoint::at(Duration::millis(1)));
  // Cancelling the head must not leave a stale peek: the tombstone is
  // dropped and the next live event surfaces.
  EXPECT_TRUE(sched.cancel(a));
  EXPECT_EQ(sched.peek_next_time(), TimePoint::at(Duration::millis(2)));
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(sched.peek_next_time(), std::nullopt);
}

// ---------------------------------------------------------------------
// Parallel-window boundaries. These drive the window engine directly
// with a hand-rolled lookahead provider; the scenario-level digest
// contract lives in parallel_sched_test.
// ---------------------------------------------------------------------

TEST(SchedulerEdge, EventExactlyAtWindowBoundaryWaitsForTheNextWindow) {
  Scheduler sched;
  sched.set_lookahead_provider([] { return Duration::millis(10); });
  sched.set_execution(ExecutionPolicy::kParallelWindows, 2);

  // The window is [now, now + lookahead): an event exactly at the
  // boundary is NOT safe to run concurrently (an in-window event may
  // schedule onto another node at exactly now + lookahead), so it must
  // land in the next window, after the clock has advanced.
  std::vector<int> order;
  Scheduler::AffinityScope scope(0);
  sched.schedule_at(TimePoint::at(Duration::millis(0)),
                    [&] { order.push_back(0); });
  sched.schedule_at(TimePoint::at(Duration::millis(10)),
                    [&] { order.push_back(1); });
  EXPECT_EQ(sched.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_GE(sched.windows_executed(), 2u)
      << "the boundary event must not be absorbed into the first window";
}

TEST(SchedulerEdge, CancelFromInsideAWindow) {
  Scheduler sched;
  sched.set_lookahead_provider([] { return Duration::millis(50); });
  sched.set_execution(ExecutionPolicy::kParallelWindows, 2);

  // Both the canceller and the victim sit inside one window on the same
  // node, so the in-window cancel path (not the deferred-op commit) is
  // what keeps the victim from running.
  Scheduler::AffinityScope scope(3);
  int victim_runs = 0;
  EventId victim;
  victim = sched.schedule_at(TimePoint::at(Duration::millis(2)),
                             [&] { ++victim_runs; });
  bool cancelled = false;
  sched.schedule_at(TimePoint::at(Duration::millis(1)),
                    [&] { cancelled = sched.cancel(victim); });
  // A post-window victim exercises the deferred-cancel path too.
  int late_runs = 0;
  EventId late;
  late = sched.schedule_at(TimePoint::at(Duration::millis(200)),
                           [&] { ++late_runs; });
  sched.schedule_at(TimePoint::at(Duration::millis(3)),
                    [&] { sched.cancel(late); });

  sched.run();
  EXPECT_TRUE(cancelled);
  EXPECT_EQ(victim_runs, 0);
  EXPECT_EQ(late_runs, 0);
  EXPECT_EQ(sched.executed_events(), 2u);
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(SchedulerEdge, ZeroLookaheadFallsBackToSerialStepping) {
  // Three configurations in which the parallel policy must degrade to
  // plain serial stepping: no provider, a zero provider, and untagged
  // (kNoAffinity) events under a healthy provider.
  {
    Scheduler sched;
    sched.set_execution(ExecutionPolicy::kParallelWindows, 4);
    Scheduler::AffinityScope scope(0);
    int runs = 0;
    sched.schedule_in(Duration::millis(1), [&] { ++runs; });
    sched.schedule_in(Duration::millis(2), [&] { ++runs; });
    EXPECT_EQ(sched.run(), 2u);
    EXPECT_EQ(runs, 2);
    EXPECT_EQ(sched.windows_executed(), 0u) << "no provider, no windows";
  }
  {
    Scheduler sched;
    sched.set_lookahead_provider([] { return Duration::zero(); });
    sched.set_execution(ExecutionPolicy::kParallelWindows, 4);
    Scheduler::AffinityScope scope(0);
    int runs = 0;
    sched.schedule_in(Duration::millis(1), [&] { ++runs; });
    EXPECT_EQ(sched.run(), 1u);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(sched.windows_executed(), 0u) << "zero lookahead, no windows";
  }
  {
    Scheduler sched;
    sched.set_lookahead_provider([] { return Duration::millis(10); });
    sched.set_execution(ExecutionPolicy::kParallelWindows, 4);
    int runs = 0;
    sched.schedule_in(Duration::millis(1), [&] { ++runs; });  // untagged
    EXPECT_EQ(sched.run(), 1u);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(sched.windows_executed(), 0u)
        << "untagged events are serial barriers";
  }
}

TEST(SchedulerEdge, ParallelCountersTrackWindowsAndOverlap) {
  Scheduler sched;
  sched.set_lookahead_provider([] { return Duration::millis(100); });
  sched.set_execution(ExecutionPolicy::kParallelWindows, 4);

  // Four events on four distinct nodes inside one window: one window,
  // four events executed with more than one concurrent group.
  int runs = 0;
  for (std::uint32_t node = 0; node < 4; ++node) {
    Scheduler::AffinityScope scope(node);
    sched.schedule_at(TimePoint::at(Duration::millis(1 + node)),
                      [&] { ++runs; });
  }
  EXPECT_EQ(sched.run(), 4u);
  EXPECT_EQ(runs, 4);
  EXPECT_EQ(sched.windows_executed(), 1u);
  EXPECT_EQ(sched.parallel_events_executed(), 4u);
  EXPECT_EQ(sched.executed_events(), 4u);

  // A single-group window executes but contributes no "parallel" events.
  {
    Scheduler::AffinityScope scope(0);
    sched.schedule_in(Duration::millis(1), [&] { ++runs; });
  }
  EXPECT_EQ(sched.run(), 1u);
  EXPECT_EQ(sched.windows_executed(), 2u);
  EXPECT_EQ(sched.parallel_events_executed(), 4u);
}

}  // namespace
}  // namespace hydra::sim
