// BufferPool unit and edge tests: recycling really reuses storage,
// frees route back to the owning shard from any thread, the runtime
// toggle is safe mid-stream, double frees die loudly, and the typed
// facades (PoolAllocator / PooledVector / make_pooled / SmallFn) behave
// like their std counterparts. Registered under the `pool` ctest label
// so the ASan and TSan CI jobs both run it: ASan proves recycled
// blocks never overlap live ones, TSan proves the cross-thread return
// stack is race-free.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "util/alloc_stats.h"
#include "util/pool.h"
#include "util/small_fn.h"

namespace hydra::util {
namespace {

// Every assertion works on counter deltas: the test binary shares one
// process-wide pool with every other suite gtest ran before this one.
PoolStats delta(const PoolStats& before) {
  const auto now = BufferPool::stats();
  PoolStats d;
  d.requests = now.requests - before.requests;
  d.recycled = now.recycled - before.recycled;
  d.fresh = now.fresh - before.fresh;
  d.heap = now.heap - before.heap;
  d.remote_returns = now.remote_returns - before.remote_returns;
  d.slab_bytes = now.slab_bytes - before.slab_bytes;
  d.shards = now.shards;
  return d;
}

TEST(BufferPool, RecycleReturnsTheSameBlockLifo) {
  const auto before = BufferPool::stats();
  void* p = BufferPool::allocate(100);
  ASSERT_NE(p, nullptr);
  BufferPool::deallocate(p);
  void* q = BufferPool::allocate(100);
  // Same size class, same thread, nothing allocated in between: the
  // free list is LIFO, so the recycled block is the one just returned.
  EXPECT_EQ(p, q);
  const auto d = delta(before);
  EXPECT_EQ(d.requests, 2u);
  EXPECT_GE(d.recycled, 1u);
  BufferPool::deallocate(q);
}

TEST(BufferPool, SizeClassesDoNotAlias) {
  void* small = BufferPool::allocate(50);
  void* large = BufferPool::allocate(1000);
  BufferPool::deallocate(small);
  BufferPool::deallocate(large);
  // Each class recycles its own returns.
  EXPECT_EQ(BufferPool::allocate(50), small);
  EXPECT_EQ(BufferPool::allocate(1000), large);
  BufferPool::deallocate(small);
  BufferPool::deallocate(large);
}

TEST(BufferPool, PayloadsAreAligned) {
  for (const std::size_t bytes : {1u, 17u, 64u, 100u, 4096u}) {
    void* p = BufferPool::allocate(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % BufferPool::kAlignment,
              0u)
        << bytes;
    BufferPool::deallocate(p);
  }
}

TEST(BufferPool, OversizeFallsThroughToHeap) {
  const auto before = BufferPool::stats();
  void* p = BufferPool::allocate(BufferPool::kMaxBlockBytes + 1);
  ASSERT_NE(p, nullptr);
  BufferPool::deallocate(p);
  const auto d = delta(before);
  EXPECT_EQ(d.heap, 1u);
  EXPECT_EQ(d.recycled, 0u);
}

TEST(BufferPool, DisabledMeansHeapPassthrough) {
  set_pooling_enabled(false);
  const auto before = BufferPool::stats();
  void* p = BufferPool::allocate(128);
  BufferPool::deallocate(p);
  void* q = BufferPool::allocate(128);
  BufferPool::deallocate(q);
  const auto d = delta(before);
  set_pooling_enabled(true);
  EXPECT_EQ(d.heap, 2u);
  EXPECT_EQ(d.recycled, 0u);
  EXPECT_EQ(d.fresh, 0u);
}

TEST(BufferPool, ToggleMidStreamFreesByOrigin) {
  // The block header records where storage came from, so disabling the
  // pool between an allocation and its free (or vice versa) routes the
  // free correctly — no leak, no pool block handed to ::free.
  void* pooled = BufferPool::allocate(200);
  set_pooling_enabled(false);
  BufferPool::deallocate(pooled);        // pooled block freed while off
  void* heaped = BufferPool::allocate(200);
  set_pooling_enabled(true);
  BufferPool::deallocate(heaped);        // heap block freed while on
  // The pooled block really went back to its class list.
  EXPECT_EQ(BufferPool::allocate(200), pooled);
  BufferPool::deallocate(pooled);
}

TEST(BufferPool, CrossThreadFreeReturnsToTheOwningShard) {
  constexpr std::size_t kBlocks = 16;
  constexpr std::size_t kBytes = 300;
  const auto before = BufferPool::stats();
  std::vector<void*> blocks;
  for (std::size_t i = 0; i < kBlocks; ++i) {
    blocks.push_back(BufferPool::allocate(kBytes));
  }
  // Free every block from a different thread: each free must take the
  // owner's MPSC return stack, not the freeing thread's own lists.
  std::thread([&blocks] {
    for (void* p : blocks) BufferPool::deallocate(p);
  }).join();
  EXPECT_EQ(delta(before).remote_returns, kBlocks);

  // The owner drains its return stack on allocation: keep allocating
  // this size class and every remotely freed block comes back to us.
  std::set<void*> expected(blocks.begin(), blocks.end());
  std::vector<void*> drained;
  for (std::size_t i = 0; i < 4096 && !expected.empty(); ++i) {
    void* p = BufferPool::allocate(kBytes);
    drained.push_back(p);
    expected.erase(p);
  }
  EXPECT_TRUE(expected.empty())
      << expected.size() << " remotely freed block(s) never recycled";
  for (void* p : drained) BufferPool::deallocate(p);
}

TEST(BufferPoolDeathTest, DoubleFreeAborts) {
  void* p = BufferPool::allocate(64);
  BufferPool::deallocate(p);
  EXPECT_DEATH(BufferPool::deallocate(p), "assertion failed");
  // Leave the (freed) block where it is: it is live on the free list.
}

TEST(PooledVector, GrowsAndRecyclesThroughThePool) {
  const auto before = BufferPool::stats();
  {
    PooledVector<std::uint32_t> v;
    for (std::uint32_t i = 0; i < 1000; ++i) v.push_back(i);
    for (std::uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
  }
  const auto d = delta(before);
  EXPECT_GT(d.requests, 0u);
  EXPECT_EQ(d.heap, 0u);  // 1000 × 4 B stays well under the class cap
}

TEST(PoolAllocator, OverAlignedTypesBypassThePool) {
  struct alignas(64) Wide {
    double lanes[8];
  };
  const auto before = BufferPool::stats();
  std::vector<Wide, PoolAllocator<Wide>> v(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  EXPECT_EQ(delta(before).requests, 0u);  // pool never saw it
}

TEST(ArenaPool, MakePooledConstructsAndRecycles) {
  const auto before = BufferPool::stats();
  auto p = make_pooled<std::pair<int, int>>(3, 4);
  EXPECT_EQ(p->first, 3);
  EXPECT_EQ(p->second, 4);
  const void* raw = p.get();
  p.reset();  // control block + object return to the shard together
  auto q = make_pooled<std::pair<int, int>>(5, 6);
  EXPECT_EQ(static_cast<const void*>(q.get()), raw);
  EXPECT_GE(delta(before).recycled, 1u);
}

TEST(SmallFn, InlineCaptureInvokes) {
  int hits = 0;
  SmallFn fn([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, LargeCaptureBoxesThroughThePool) {
  const auto before = BufferPool::stats();
  std::array<std::uint8_t, 128> payload{};
  payload[0] = 42;
  payload[127] = 7;
  int sum = 0;
  SmallFn fn([payload, &sum] { sum = payload[0] + payload[127]; });
  EXPECT_GE(delta(before).requests, 1u);  // the box
  fn();
  EXPECT_EQ(sum, 49);
}

TEST(SmallFn, MoveTransfersAndEmptiesTheSource) {
  int hits = 0;
  SmallFn a([&hits] { ++hits; });
  SmallFn b(std::move(a));
  EXPECT_EQ(a, nullptr);
  EXPECT_NE(b, nullptr);
  b();
  EXPECT_EQ(hits, 1);
  a = std::move(b);
  EXPECT_EQ(b, nullptr);
  a();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, DestroysCapturesExactlyOnce) {
  const auto token = std::make_shared<int>(1);
  // Inline: the shared_ptr capture fits the 48-byte buffer.
  {
    SmallFn fn([token] {});
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
  // Boxed: pad the capture past the inline buffer.
  {
    std::array<std::uint8_t, 64> pad{};
    SmallFn fn([token, pad] { (void)pad; });
    EXPECT_EQ(token.use_count(), 2);
    SmallFn moved(std::move(fn));
    EXPECT_EQ(token.use_count(), 2);  // relocation is not a copy
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SmallFn, NullStatesCompareAndAssignLikeStdFunction) {
  SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(fn, nullptr);
  fn = SmallFn([] {});
  EXPECT_NE(fn, nullptr);
  fn = SmallFn(nullptr);
  EXPECT_EQ(fn, nullptr);
}

TEST(SmallFnDeathTest, InvokingEmptyAborts) {
  SmallFn fn;
  EXPECT_DEATH(fn(), "empty SmallFn");
}

TEST(AllocStats, CountsOperatorNewTraffic) {
  const auto before = alloc_snapshot();
  // Direct operator-new call: a new-*expression* here could legally be
  // elided as unused (GCC does at -O2), which is exactly a miscount.
  void* block = ::operator new(10'000);
  const auto after = alloc_snapshot();
  ::operator delete(block);
  EXPECT_GE(after.allocations, before.allocations + 1);
  EXPECT_GE(after.bytes, before.bytes + 10'000);
  EXPECT_GT(peak_rss_kb(), 0u);
}

TEST(PoolStatsAccounting, ShardsAndSlabsAreVisible) {
  // This thread allocated earlier in the suite, so at least its shard
  // and one slab exist.
  void* p = BufferPool::allocate(64);
  BufferPool::deallocate(p);
  const auto stats = BufferPool::stats();
  EXPECT_GE(stats.shards, 1u);
  EXPECT_GT(stats.slab_bytes, 0u);
  EXPECT_GE(stats.requests, stats.recycled + stats.fresh);
}

}  // namespace
}  // namespace hydra::util
