// TCP/UDP tests over a controllable point-to-point pipe (delay + loss
// injection), independent of the MAC.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "sim/simulation.h"
#include "transport/mux.h"
#include "transport/seq.h"
#include "transport/tcp.h"

namespace hydra::transport {
namespace {

const auto kIpA = proto::Ipv4Address::for_node(0);
const auto kIpB = proto::Ipv4Address::for_node(1);

// Bidirectional pipe between two muxes with per-direction drop hooks.
struct Pipe {
  sim::Simulation sim{1};
  TransportMux a{sim, kIpA};
  TransportMux b{sim, kIpB};
  sim::Duration delay = sim::Duration::millis(5);
  // Return true to drop; inspected per packet. Defaults keep everything.
  std::function<bool(const proto::Packet&)> drop_a_to_b = [](auto&) {
    return false;
  };
  std::function<bool(const proto::Packet&)> drop_b_to_a = [](auto&) {
    return false;
  };
  std::uint64_t forwarded = 0;

  Pipe() {
    a.send_packet = [this](proto::PacketPtr p) {
      if (drop_a_to_b(*p)) return;
      ++forwarded;
      sim.scheduler().schedule_in(delay, [this, p] { b.deliver(p); });
    };
    b.send_packet = [this](proto::PacketPtr p) {
      if (drop_b_to_a(*p)) return;
      ++forwarded;
      sim.scheduler().schedule_in(delay, [this, p] { a.deliver(p); });
    };
  }

  void run_s(std::int64_t s) { sim.run_for(sim::Duration::seconds(s)); }
};

TEST(SeqArithmetic, WraparoundComparisons) {
  EXPECT_TRUE(seq_lt(1, 2));
  EXPECT_TRUE(seq_lt(0xfffffff0u, 5));  // across the wrap
  EXPECT_TRUE(seq_gt(5, 0xfffffff0u));
  EXPECT_TRUE(seq_leq(7, 7));
  EXPECT_TRUE(seq_geq(7, 7));
  EXPECT_EQ(seq_diff(5, 0xfffffffbu), 10u);
}

TEST(Udp, DatagramDelivery) {
  Pipe pipe;
  auto& tx = pipe.a.open_udp(9000);
  auto& rx = pipe.b.open_udp(9001);
  std::uint64_t got = 0;
  rx.on_receive = [&](const proto::Packet& p) { got += p.payload_bytes; };

  tx.send_to({kIpB, 9001}, 500);
  tx.send_to({kIpB, 9001}, 300);
  pipe.run_s(1);
  EXPECT_EQ(got, 800u);
  EXPECT_EQ(tx.datagrams_sent(), 2u);
  EXPECT_EQ(rx.datagrams_received(), 2u);
  EXPECT_EQ(rx.bytes_received(), 800u);
}

TEST(Udp, UnmatchedPortCounted) {
  Pipe pipe;
  auto& tx = pipe.a.open_udp(9000);
  tx.send_to({kIpB, 4242}, 100);  // nobody listening
  pipe.run_s(1);
  EXPECT_EQ(pipe.b.unmatched_packets(), 1u);
}

struct TcpFixture {
  Pipe pipe;
  TcpConnection* client = nullptr;   // active opener / sender
  TcpConnection* server = nullptr;   // accepted side
  std::uint64_t server_received = 0;
  bool server_fin = false;
  bool client_established = false;
  bool send_complete = false;

  explicit TcpFixture(TcpConfig cfg = {}) {
    pipe.b.tcp_listen(5001, cfg, [this](TcpConnection& c) {
      server = &c;
      c.on_data = [this](std::uint64_t bytes) { server_received += bytes; };
      c.on_peer_fin = [this] { server_fin = true; };
    });
    client = &pipe.a.tcp_connect({kIpB, 5001}, cfg);
    client->on_established = [this] { client_established = true; };
    client->on_send_complete = [this] { send_complete = true; };
  }
};

TEST(Tcp, HandshakeEstablishesBothSides) {
  TcpFixture f;
  f.pipe.run_s(2);
  EXPECT_TRUE(f.client_established);
  ASSERT_NE(f.server, nullptr);
  EXPECT_EQ(f.client->state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(f.server->state(), TcpConnection::State::kEstablished);
}

TEST(Tcp, LosslessBulkTransferIsExact) {
  TcpFixture f;
  f.client->send(200'000);
  f.pipe.run_s(30);
  EXPECT_EQ(f.server_received, 200'000u);
  EXPECT_TRUE(f.send_complete);
  EXPECT_EQ(f.client->stats().retransmits, 0u);
  EXPECT_EQ(f.client->stats().timeouts, 0u);
}

TEST(Tcp, SegmentsRespectMss) {
  TcpConfig cfg;
  cfg.mss = 1357;
  TcpFixture f(cfg);
  f.client->send(10 * 1357 + 100);
  f.pipe.run_s(10);
  EXPECT_EQ(f.server_received, 10u * 1357 + 100);
  // 11 data segments (10 full + 1 partial) + SYN.
  EXPECT_EQ(f.client->stats().segments_sent, 12u);
}

TEST(Tcp, ReceiverAcksEveryDataSegment) {
  TcpFixture f;
  f.client->send(5 * 1357);
  f.pipe.run_s(10);
  ASSERT_NE(f.server, nullptr);
  // One ACK per data segment (no delayed ACKs), plus the handshake ACK
  // is counted on the client side, not here.
  EXPECT_GE(f.server->stats().acks_sent, 5u);
}

TEST(Tcp, FinTeardownSignalsPeer) {
  TcpFixture f;
  f.client->send(1357);
  f.client->close();
  f.pipe.run_s(10);
  EXPECT_TRUE(f.server_fin);
  EXPECT_EQ(f.server->state(), TcpConnection::State::kClosedByPeer);
  EXPECT_TRUE(f.send_complete);
}

TEST(Tcp, SingleDataLossRecoversByFastRetransmit) {
  TcpFixture f;
  // Drop exactly the 4th data segment once.
  int data_seen = 0;
  bool dropped = false;
  f.pipe.drop_a_to_b = [&](const proto::Packet& p) {
    if (p.payload_bytes > 0 && !dropped && ++data_seen == 4) {
      dropped = true;
      return true;
    }
    return false;
  };
  f.client->send(30 * 1357);
  f.pipe.run_s(30);
  EXPECT_EQ(f.server_received, 30u * 1357);
  EXPECT_TRUE(dropped);
  EXPECT_GE(f.client->stats().fast_retransmits, 1u);
  EXPECT_EQ(f.client->stats().timeouts, 0u);  // no RTO needed
}

TEST(Tcp, PeriodicDataLossStillCompletes) {
  TcpFixture f;
  int n = 0;
  f.pipe.drop_a_to_b = [&](const proto::Packet& p) {
    return p.payload_bytes > 0 && (++n % 13 == 0);
  };
  f.client->send(100'000);
  f.pipe.run_s(120);
  EXPECT_EQ(f.server_received, 100'000u);
  EXPECT_GT(f.client->stats().retransmits, 0u);
}

TEST(Tcp, AckLossIsAbsorbedByCumulativeAcks) {
  // This is the property the paper's broadcast-ACK design relies on
  // (§3.3): dropping a fraction of pure ACKs must not break the flow.
  TcpFixture f;
  int n = 0;
  f.pipe.drop_b_to_a = [&](const proto::Packet& p) {
    return p.is_pure_tcp_ack() && (++n % 3 == 0);  // drop every 3rd ACK
  };
  f.client->send(100'000);
  f.pipe.run_s(60);
  EXPECT_EQ(f.server_received, 100'000u);
}

TEST(Tcp, BlackoutTriggersRtoAndRecovers) {
  TcpFixture f;
  bool blackout = false;
  f.pipe.drop_a_to_b = [&](const proto::Packet&) { return blackout; };
  f.client->send(50 * 1357);
  // Let the handshake finish, cut the link mid-transfer, then restore.
  f.pipe.sim.scheduler().schedule_in(sim::Duration::millis(25),
                                     [&] { blackout = true; });
  f.pipe.sim.scheduler().schedule_in(sim::Duration::seconds(4),
                                     [&] { blackout = false; });
  f.pipe.run_s(120);
  EXPECT_EQ(f.server_received, 50u * 1357);
  EXPECT_GE(f.client->stats().timeouts, 1u);
}

TEST(Tcp, SynLossRetriesHandshake) {
  // Build the pieces by hand so the drop hook is installed before the
  // connection's very first SYN.
  Pipe pipe;
  int syns = 0;
  pipe.drop_a_to_b = [&](const proto::Packet& p) {
    return p.tcp && p.tcp->flags.syn && ++syns == 1;  // drop first SYN
  };
  std::uint64_t received = 0;
  pipe.b.tcp_listen(5001, {}, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t bytes) { received += bytes; };
  });
  auto& client = pipe.a.tcp_connect({kIpB, 5001});
  client.send(1357);
  pipe.run_s(30);
  EXPECT_EQ(received, 1357u);
  EXPECT_GE(client.stats().retransmits, 1u);
  EXPECT_GE(client.stats().timeouts, 1u);
}

TEST(Tcp, SynAckLossRetries) {
  TcpFixture fixture;
  int synacks = 0;
  fixture.pipe.drop_b_to_a = [&](const proto::Packet& p) {
    return p.tcp && p.tcp->flags.syn && p.tcp->flags.ack && ++synacks == 1;
  };
  fixture.client->send(1357);
  fixture.pipe.run_s(30);
  EXPECT_EQ(fixture.server_received, 1357u);
}

TEST(Tcp, HandshakeAckLossRecoveredByFirstDataSegment) {
  // The third handshake ACK is a pure ACK — exactly what the paper sends
  // without link-layer protection. Its loss must not wedge the server.
  TcpFixture fixture;
  bool dropped = false;
  fixture.pipe.drop_a_to_b = [&](const proto::Packet& p) {
    if (!dropped && p.is_pure_tcp_ack()) {
      dropped = true;
      return true;
    }
    return false;
  };
  fixture.client->send(10 * 1357);
  fixture.pipe.run_s(30);
  EXPECT_TRUE(dropped);
  EXPECT_EQ(fixture.server_received, 10u * 1357);
  EXPECT_EQ(fixture.server->state(), TcpConnection::State::kEstablished);
}

TEST(Tcp, CongestionWindowGrowsFromSlowStart) {
  TcpFixture f;
  const auto initial_cwnd = f.client->cwnd();
  f.client->send(100'000);
  f.pipe.run_s(30);
  EXPECT_GT(f.client->cwnd(), initial_cwnd);
}

TEST(Tcp, LossReducesCongestionWindow) {
  TcpFixture f;
  f.client->send(400'000);
  // After ~1.5 s of growth, observe cwnd, then force a loss burst.
  std::uint32_t cwnd_before = 0;
  bool drop_now = false;
  int dropped = 0;
  f.pipe.drop_a_to_b = [&](const proto::Packet& p) {
    if (drop_now && p.payload_bytes > 0 && dropped < 1) {
      ++dropped;
      return true;
    }
    return false;
  };
  // Observe while the transfer is still in flight (the pipe itself has
  // no bandwidth limit, so the transfer is over within ~100 ms).
  f.pipe.sim.scheduler().schedule_in(sim::Duration::millis(40), [&] {
    cwnd_before = f.client->cwnd();
    drop_now = true;
  });
  f.pipe.run_s(60);
  EXPECT_EQ(f.server_received, 400'000u);
  ASSERT_GT(cwnd_before, 0u);
  // ssthresh was cut to about half the flight at loss time.
  EXPECT_LE(f.client->ssthresh(), cwnd_before);
}

TEST(Tcp, OutOfOrderSegmentsReassembled) {
  // Delay (rather than drop) one segment so it arrives out of order.
  TcpFixture f;
  int data_seen = 0;
  proto::PacketPtr held;
  f.pipe.a.send_packet = [&](proto::PacketPtr p) {
    if (p->payload_bytes > 0 && ++data_seen == 3 && !held) {
      held = p;  // hold the 3rd data segment
      f.pipe.sim.scheduler().schedule_in(sim::Duration::millis(40), [&, p] {
        f.pipe.sim.scheduler().schedule_in(f.pipe.delay,
                                           [&, p] { f.pipe.b.deliver(p); });
      });
      return;
    }
    f.pipe.sim.scheduler().schedule_in(f.pipe.delay,
                                       [&, p] { f.pipe.b.deliver(p); });
  };
  f.client->send(8 * 1357);
  f.pipe.run_s(30);
  EXPECT_EQ(f.server_received, 8u * 1357);
  EXPECT_GE(f.server->stats().out_of_order_segments, 1u);
}

TEST(Tcp, ZeroByteSendCompletesViaFinOnly) {
  TcpFixture f;
  f.client->close();
  f.pipe.run_s(10);
  EXPECT_TRUE(f.server_fin);
  EXPECT_EQ(f.server_received, 0u);
}

TEST(Tcp, TwoSimultaneousConnectionsAreIndependent) {
  Pipe pipe;
  std::uint64_t recv1 = 0, recv2 = 0;
  int accepted = 0;
  pipe.b.tcp_listen(5001, {}, [&](TcpConnection& c) {
    auto* target = (accepted++ == 0) ? &recv1 : &recv2;
    c.on_data = [target](std::uint64_t bytes) { *target += bytes; };
  });
  auto& c1 = pipe.a.tcp_connect({kIpB, 5001});
  auto& c2 = pipe.a.tcp_connect({kIpB, 5001});
  c1.send(40'000);
  c2.send(70'000);
  pipe.run_s(60);
  EXPECT_EQ(recv1 + recv2, 110'000u);
  EXPECT_EQ(recv1, 40'000u);
  EXPECT_EQ(recv2, 70'000u);
  EXPECT_EQ(accepted, 2);
}

}  // namespace
}  // namespace hydra::transport
