// util::TaskPool: the persistent worker pool behind the sharded
// delivery backend and the sweep driver. The contract under test:
// every index of a batch runs exactly once, worker writes are visible
// to the caller after parallel_for returns, the pool is reusable
// across batches, and a concurrency-1 pool degenerates to an inline
// serial loop. Runs under TSan in CI (label: shard).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "util/task_pool.h"

namespace hydra {
namespace {

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  util::TaskPool pool(4);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<std::uint32_t>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(TaskPool, WorkerWritesAreVisibleAfterReturn) {
  // Plain (non-atomic) writes to disjoint slots, read back by the
  // caller: the batch barrier must publish them. TSan verifies the
  // synchronization, the sum verifies the data.
  util::TaskPool pool(4);
  constexpr std::size_t kCount = 4096;
  std::vector<std::uint64_t> slots(kCount, 0);
  pool.parallel_for(kCount, [&](std::size_t i) { slots[i] = i + 1; });
  const auto sum = std::accumulate(slots.begin(), slots.end(),
                                   std::uint64_t{0});
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(TaskPool, ReusableAcrossManyBatches) {
  util::TaskPool pool(3);
  std::atomic<std::uint64_t> total{0};
  for (int batch = 0; batch < 100; ++batch) {
    pool.parallel_for(17, [&](std::size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 100u * (16 * 17 / 2));
}

TEST(TaskPool, SerialPoolRunsInlineOnTheCaller) {
  util::TaskPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(64);
  pool.parallel_for(ran.size(), [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (const auto id : ran) EXPECT_EQ(id, caller);
}

TEST(TaskPool, ConcurrencyResolution) {
  EXPECT_EQ(util::TaskPool(4).concurrency(), 4u);
  EXPECT_EQ(util::TaskPool(2).concurrency(), 2u);
  // 0 resolves to the hardware concurrency — at least one.
  EXPECT_GE(util::TaskPool(0).concurrency(), 1u);
}

TEST(TaskPool, EmptyAndSingletonBatches) {
  util::TaskPool pool(4);
  std::atomic<int> runs{0};
  pool.parallel_for(0, [&](std::size_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    runs.fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 1);
}

TEST(TaskPool, NestedParallelForOnTheSamePoolDies) {
  // Re-entering parallel_for on the pool currently draining this task
  // would deadlock (the inner batch waits on workers that are all busy
  // in the outer batch), so the pool traps it instead. The pool is
  // constructed inside the death statement: threadsafe-style death
  // tests re-execute the test body in a fresh process, and worker
  // threads must not leak across that boundary.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        util::TaskPool pool(2);
        pool.parallel_for(4, [&](std::size_t) {
          pool.parallel_for(2, [](std::size_t) {});
        });
      },
      "nested parallel_for on the same TaskPool");
}

TEST(TaskPool, NestingAcrossDistinctPoolsIsLegal) {
  // The guard is per-pool identity, not a blanket "no pool inside a
  // pool": the sweep driver's pool runs simulations whose scheduler and
  // medium own pools of their own, and that layering must keep working.
  util::TaskPool outer(2);
  std::atomic<std::uint32_t> inner_runs{0};
  outer.parallel_for(4, [&](std::size_t) {
    util::TaskPool inner(2);
    inner.parallel_for(8, [&](std::size_t) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_runs.load(), 32u);
}

TEST(TaskPool, UnevenWorkStaysBalanced) {
  // Dynamic stealing: one slow index must not serialize the rest. This
  // is a liveness smoke test, not a timing assertion — it passes by
  // terminating.
  util::TaskPool pool(4);
  std::atomic<std::uint64_t> done{0};
  pool.parallel_for(256, [&](std::size_t i) {
    volatile std::uint64_t spin = (i % 7 == 0) ? 20'000 : 100;
    while (spin > 0) spin = spin - 1;
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 256u);
}

}  // namespace
}  // namespace hydra
