// Determinism regression: two simulations built from the same fixture
// and RNG seed must produce byte-identical packet traces and identical
// stats::metrics output. Any nondeterminism (unordered containers on
// the hot path, uninitialized reads, wall-clock leakage) breaks every
// reproduction claim the benches make, so it is pinned here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "app/experiment.h"
#include "app/flood.h"
#include "app/udp_cbr.h"
#include "app/udp_sink.h"
#include "topo/experiment.h"
#include "topo/scenario.h"

namespace hydra {
namespace {

struct RunOutput {
  std::vector<std::string> trace;
  std::uint32_t digest = 0;
  std::string metrics;
  std::uint64_t delivered = 0;
};

// A workload with plenty of RNG exposure: saturating CBR over two hops
// (queueing, aggregation, backoff) plus background flooding from every
// node (collisions, broadcast subframes).
RunOutput run_chain_workload(std::uint64_t seed) {
  auto spec = topo::ScenarioSpec::chain(3);
  spec.node.policy = core::AggregationPolicy::ba();
  auto s = topo::Scenario::build(spec, seed);
  s.capture_traces();

  app::UdpSinkApp sink(s.sim(), s.node(2), 9001);
  app::UdpCbrConfig cbr_cfg;
  cbr_cfg.destination = {proto::Ipv4Address::for_node(2), 9001};
  cbr_cfg.packets_per_tick = 4;
  cbr_cfg.stop = sim::TimePoint::at(sim::Duration::seconds(4));
  app::UdpCbrApp cbr(s.sim(), s.node(0), cbr_cfg);
  cbr.start();

  std::vector<std::unique_ptr<app::FloodApp>> flooders;
  for (std::size_t i = 0; i < s.size(); ++i) {
    app::FloodConfig fc;
    fc.interval = sim::Duration::millis(500);
    fc.initial_offset = sim::Duration::millis(37 * i);
    flooders.push_back(
        std::make_unique<app::FloodApp>(s.sim(), s.node(i), fc));
    flooders.back()->start();
  }

  s.run_for(sim::Duration::seconds(5));

  RunOutput out;
  out.trace = s.trace();
  out.digest = s.trace_digest();
  out.metrics = s.metrics_summary();
  out.delivered = sink.packets();
  return out;
}

TEST(DeterminismRegression, IdenticalSeedsProduceByteIdenticalRuns) {
  const auto a = run_chain_workload(1234);
  const auto b = run_chain_workload(1234);

  ASSERT_FALSE(a.trace.empty());
  EXPECT_GT(a.delivered, 0u);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.delivered, b.delivered);
}

TEST(DeterminismRegression, DifferentSeedsDivergeSomewhere) {
  // Sanity check that the fingerprint is sensitive at all: with this
  // much contention, two seeds agreeing line-for-line would mean the
  // RNG never reached the MAC.
  const auto a = run_chain_workload(1);
  const auto b = run_chain_workload(2);
  EXPECT_NE(a.trace, b.trace);
}

TEST(DeterminismRegression, ExperimentHarnessIsSeedStable) {
  // The same property end-to-end through app::run_experiment, which
  // every bench depends on.
  topo::ExperimentConfig cfg;
  cfg.scenario = topo::ScenarioSpec::two_hop();
  cfg.scenario.node.policy = core::AggregationPolicy::ba();
  cfg.traffic = topo::TrafficKind::kTcp;
  cfg.tcp_file_bytes = 30'000;
  cfg.seed = 99;
  const auto a = app::run_experiment(cfg);
  const auto b = app::run_experiment(cfg);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  EXPECT_EQ(a.flows[0].elapsed.ns(), b.flows[0].elapsed.ns());
  EXPECT_EQ(a.flows[0].bytes, b.flows[0].bytes);
  EXPECT_EQ(a.relay_stats().data_frames_tx, b.relay_stats().data_frames_tx);
  EXPECT_EQ(a.relay_stats().data_bytes_tx, b.relay_stats().data_bytes_tx);
}

}  // namespace
}  // namespace hydra
