// Rate adaptation: ARF and SNR-feedback adapters, plus end-to-end
// behaviour over links of varying quality.
#include <gtest/gtest.h>

#include "app/udp_sink.h"
#include "mac/rate_adaptation.h"
#include "net/node.h"
#include "topo/scenario.h"
#include "transport/host.h"

namespace hydra::mac {
namespace {

TEST(Arf, ClimbsAfterSuccessRun) {
  ArfAdapter arf({.success_threshold = 10}, 0);
  for (int i = 0; i < 9; ++i) arf.on_tx_result(true);
  EXPECT_EQ(arf.mode_index(), 0u);
  arf.on_tx_result(true);  // 10th
  EXPECT_EQ(arf.mode_index(), 1u);
  EXPECT_EQ(arf.raises(), 1u);
}

TEST(Arf, FallsAfterConsecutiveFailures) {
  ArfAdapter arf({.failure_threshold = 2}, 3);
  arf.on_tx_result(false);
  EXPECT_EQ(arf.mode_index(), 3u);  // one failure: hold
  arf.on_tx_result(false);
  EXPECT_EQ(arf.mode_index(), 2u);
  EXPECT_EQ(arf.falls(), 1u);
}

TEST(Arf, SuccessResetsFailureCount) {
  ArfAdapter arf({.failure_threshold = 2}, 3);
  arf.on_tx_result(false);
  arf.on_tx_result(true);
  arf.on_tx_result(false);
  EXPECT_EQ(arf.mode_index(), 3u);  // never two in a row
}

TEST(Arf, ProbeFailureFallsBackImmediately) {
  ArfAdapter arf({.success_threshold = 2, .failure_threshold = 2}, 0);
  arf.on_tx_result(true);
  arf.on_tx_result(true);  // raise to 1, probing
  ASSERT_EQ(arf.mode_index(), 1u);
  arf.on_tx_result(false);  // single probe failure is enough
  EXPECT_EQ(arf.mode_index(), 0u);
}

TEST(Arf, RespectsBounds) {
  ArfAdapter arf({.success_threshold = 1, .failure_threshold = 1,
                  .min_index = 1, .max_index = 2},
                 1);
  arf.on_tx_result(false);
  EXPECT_EQ(arf.mode_index(), 1u);  // already at min
  arf.on_tx_result(true);
  arf.on_tx_result(true);
  EXPECT_EQ(arf.mode_index(), 2u);
  arf.on_tx_result(true);
  EXPECT_EQ(arf.mode_index(), 2u);  // capped at max
}

TEST(Snr, PicksFastestClearingMode) {
  SnrAdapter snr({.margin_db = 2.0}, 0);
  // 25 dB clears everything except the 64-QAM rates (required 25.5+).
  snr.on_feedback_snr(25.0);
  EXPECT_EQ(snr.mode_index(), 4u);  // 16-QAM 3/4 (req 17 + 2 <= 25)
  // Weak link: only BPSK 1/2 (req 4 + 2 <= 7).
  snr.on_feedback_snr(7.0);
  EXPECT_EQ(snr.mode_index(), 0u);
  // Very strong link: top of the table.
  snr.on_feedback_snr(40.0);
  EXPECT_EQ(snr.mode_index(), 7u);
}

TEST(Snr, HonoursMaxIndex) {
  SnrAdapter snr({.margin_db = 2.0, .max_index = 3}, 0);
  snr.on_feedback_snr(40.0);
  EXPECT_EQ(snr.mode_index(), 3u);
}

TEST(Snr, FallsToMinIndexWhenNothingQualifies) {
  SnrAdapter snr({.margin_db = 2.0, .min_index = 2}, 5);
  snr.on_feedback_snr(-10.0);  // nothing clears: floor at min_index
  EXPECT_EQ(snr.mode_index(), 2u);
}

TEST(Snr, SelectsByRateNotTablePosition) {
  // Regression: selection used to keep the *last* qualifying table
  // index, which silently assumed the mode table is rate-sorted. The
  // adapter must pick the maximum-rate qualifying mode whatever the
  // order, so restricting the window anywhere in the table still yields
  // the fastest qualifying entry of that window.
  SnrAdapter snr({.margin_db = 2.0, .min_index = 1, .max_index = 6}, 1);
  snr.on_feedback_snr(40.0);  // everything qualifies
  const auto& chosen = proto::mode_by_index(snr.mode_index());
  for (std::size_t i = 1; i <= 6; ++i) {
    EXPECT_LE(proto::mode_by_index(i).rate.bits_per_second(),
              chosen.rate.bits_per_second());
  }
}

TEST(ModeTable, SortedByRateAndRequiredSnr) {
  // The documented table-ordering invariant the SNR adapter no longer
  // depends on, pinned so a future edit that breaks it is deliberate:
  // rates strictly increase and required SNR never decreases.
  const auto modes = proto::hydra_modes();
  ASSERT_GE(modes.size(), 2u);
  for (std::size_t i = 1; i < modes.size(); ++i) {
    EXPECT_GT(modes[i].rate.bits_per_second(),
              modes[i - 1].rate.bits_per_second());
    EXPECT_GE(modes[i].required_snr_db, modes[i - 1].required_snr_db);
  }
}

TEST(Factory, SchemeSelection) {
  EXPECT_EQ(make_rate_adapter(RateAdaptationScheme::kNone, 0), nullptr);
  auto arf = make_rate_adapter(RateAdaptationScheme::kArf, 2);
  ASSERT_NE(arf, nullptr);
  EXPECT_EQ(arf->mode_index(), 2u);
  auto snr = make_rate_adapter(RateAdaptationScheme::kSnr, 1);
  ASSERT_NE(snr, nullptr);
  EXPECT_EQ(snr->mode_index(), 1u);
}

// --- end-to-end ------------------------------------------------------------

// A two-node link with rate adaptation, built on the shared fixture.
topo::Scenario make_link(double distance_m,
                                 mac::RateAdaptationScheme scheme,
                                 std::size_t initial_mode) {
  auto spec = topo::ScenarioSpec::chain(2);
  spec.node.policy = core::AggregationPolicy::ua();
  spec.node.rate_adaptation = scheme;
  spec.node.unicast_mode = proto::mode_by_index(initial_mode);
  spec.spacing_m = distance_m;
  return topo::Scenario::build(spec, 3);
}

TEST(RateAdaptationE2E, SnrAdapterSettlesBelow64QamAtPaperSnr) {
  // At 2.5 m (25 dB) the 64-QAM rates are unusable; the SNR adapter must
  // settle on a non-64-QAM mode even when started at the top rate.
  auto link = make_link(2.5, mac::RateAdaptationScheme::kSnr, 7);
  app::UdpSinkApp sink(link.sim(), link.node(1), 9001);
  auto& socket = transport::mux_of(link.node(0)).open_udp(9000);
  for (int i = 0; i < 30; ++i) socket.send_to({link.node(1).ip(), 9001}, 1048);
  link.run_for(sim::Duration::seconds(10));

  EXPECT_EQ(sink.packets(), 30u);
  ASSERT_NE(link.node(0).mac().rate_adapter(), nullptr);
  EXPECT_LE(link.node(0).mac().rate_adapter()->mode_index(), 4u);
}

TEST(RateAdaptationE2E, ArfEscapesAHopelessStartingRate) {
  // Start at 64-QAAM 5/6 on a 25 dB link: every aggregate fails; ARF must
  // walk down until traffic flows.
  auto link = make_link(2.5, mac::RateAdaptationScheme::kArf, 7);
  app::UdpSinkApp sink(link.sim(), link.node(1), 9001);
  auto& socket = transport::mux_of(link.node(0)).open_udp(9000);
  for (int i = 0; i < 10; ++i) socket.send_to({link.node(1).ip(), 9001}, 1048);
  link.run_for(sim::Duration::seconds(30));

  EXPECT_EQ(sink.packets(), 10u);
  EXPECT_LT(link.node(0).mac().rate_adapter()->mode_index(), 7u);
}

TEST(RateAdaptationE2E, WeakLinkForcesRobustModes) {
  // ~10 m: SNR drops to ~7 dB; only the most robust rates work. The SNR
  // adapter should land at BPSK 1/2 and still deliver.
  auto link = make_link(10.0, mac::RateAdaptationScheme::kSnr, 4);
  app::UdpSinkApp sink(link.sim(), link.node(1), 9001);
  auto& socket = transport::mux_of(link.node(0)).open_udp(9000);
  for (int i = 0; i < 10; ++i) socket.send_to({link.node(1).ip(), 9001}, 1048);
  link.run_for(sim::Duration::seconds(60));

  EXPECT_GE(sink.packets(), 8u);  // the odd residual loss is acceptable
  EXPECT_LE(link.node(0).mac().rate_adapter()->mode_index(), 1u);
}

}  // namespace
}  // namespace hydra::mac
