// TCP edge cases: window clamping, silly-window avoidance, go-back-N
// semantics, receiver reassembly corner cases, RTT/RTO evolution.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"
#include "transport/mux.h"
#include "transport/tcp.h"

namespace hydra::transport {
namespace {

const auto kIpA = proto::Ipv4Address::for_node(0);
const auto kIpB = proto::Ipv4Address::for_node(1);

// Records every packet crossing the pipe for post-hoc assertions.
struct InspectedPipe {
  sim::Simulation sim{1};
  TransportMux a{sim, kIpA};
  TransportMux b{sim, kIpB};
  std::vector<proto::Packet> a_to_b;
  std::vector<proto::Packet> b_to_a;
  std::function<bool(const proto::Packet&)> drop_a_to_b = [](auto&) {
    return false;
  };

  InspectedPipe() {
    a.send_packet = [this](proto::PacketPtr p) {
      a_to_b.push_back(*p);
      if (drop_a_to_b(*p)) return;
      sim.scheduler().schedule_in(sim::Duration::millis(5),
                                  [this, p] { b.deliver(p); });
    };
    b.send_packet = [this](proto::PacketPtr p) {
      b_to_a.push_back(*p);
      sim.scheduler().schedule_in(sim::Duration::millis(5),
                                  [this, p] { a.deliver(p); });
    };
  }
};

TEST(TcpEdge, FlightNeverExceedsReceiverWindow) {
  TcpConfig cfg;
  cfg.recv_window = 4 * cfg.mss;  // tight window
  InspectedPipe pipe;
  std::uint64_t received = 0;
  pipe.b.tcp_listen(5001, cfg, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { received += n; };
  });
  auto& client = pipe.a.tcp_connect({kIpB, 5001}, cfg);
  client.send(60'000);

  // Check the invariant at every event boundary.
  std::uint64_t max_flight = 0;
  while (pipe.sim.scheduler().pending_events() > 0) {
    pipe.sim.scheduler().step();
    max_flight = std::max(max_flight, client.bytes_in_flight());
  }
  EXPECT_EQ(received, 60'000u);
  EXPECT_LE(max_flight, std::uint64_t{4} * cfg.mss + 1);  // +1 for the FIN
}

TEST(TcpEdge, AllMidStreamSegmentsAreFullMss) {
  // The silly-window guard: only the final segment may be sub-MSS.
  InspectedPipe pipe;
  pipe.b.tcp_listen(5001, {}, [](TcpConnection&) {});
  auto& client = pipe.a.tcp_connect({kIpB, 5001});
  client.send(10 * 1357 + 500);
  pipe.sim.run_for(sim::Duration::seconds(30));

  std::vector<std::uint32_t> data_sizes;
  for (const auto& p : pipe.a_to_b) {
    if (p.payload_bytes > 0) data_sizes.push_back(p.payload_bytes);
  }
  ASSERT_EQ(data_sizes.size(), 11u);
  for (std::size_t i = 0; i + 1 < data_sizes.size(); ++i) {
    EXPECT_EQ(data_sizes[i], 1357u) << "segment " << i;
  }
  EXPECT_EQ(data_sizes.back(), 500u);
}

TEST(TcpEdge, PureAcksCarryNoPayloadAndCorrectFields) {
  InspectedPipe pipe;
  pipe.b.tcp_listen(5001, {}, [](TcpConnection&) {});
  auto& client = pipe.a.tcp_connect({kIpB, 5001});
  client.send(3 * 1357);
  pipe.sim.run_for(sim::Duration::seconds(10));

  int pure_acks = 0;
  for (const auto& p : pipe.b_to_a) {
    if (p.is_pure_tcp_ack()) {
      ++pure_acks;
      EXPECT_EQ(p.payload_bytes, 0u);
      EXPECT_TRUE(p.tcp->flags.ack);
      EXPECT_GT(p.tcp->window, 0u);
    }
  }
  EXPECT_GE(pure_acks, 3);  // one per data segment (at least)
}

TEST(TcpEdge, RtoBacksOffExponentiallyDuringBlackout) {
  InspectedPipe pipe;
  pipe.b.tcp_listen(5001, {}, [](TcpConnection&) {});
  auto& client = pipe.a.tcp_connect({kIpB, 5001});
  bool blackout = false;
  pipe.drop_a_to_b = [&](const proto::Packet&) { return blackout; };
  client.send(20 * 1357);
  pipe.sim.scheduler().schedule_in(sim::Duration::millis(30),
                                   [&] { blackout = true; });
  const auto rto_before = client.current_rto();
  pipe.sim.run_for(sim::Duration::seconds(10));
  // Several timeouts later the RTO has grown well past its floor.
  EXPECT_GE(client.stats().timeouts, 3u);
  EXPECT_GT(client.current_rto().ns(), 2 * rto_before.ns());
}

TEST(TcpEdge, DuplicateDataIsAckedButNotRedelivered) {
  InspectedPipe pipe;
  std::uint64_t received = 0;
  TcpConnection* server = nullptr;
  pipe.b.tcp_listen(5001, {}, [&](TcpConnection& c) {
    server = &c;
    c.on_data = [&](std::uint64_t n) { received += n; };
  });
  auto& client = pipe.a.tcp_connect({kIpB, 5001});
  client.send(2 * 1357);
  pipe.sim.run_for(sim::Duration::seconds(5));
  ASSERT_EQ(received, 2u * 1357);

  // Replay the first data segment at the server.
  proto::Packet replay;
  bool found = false;
  for (const auto& p : pipe.a_to_b) {
    if (p.payload_bytes > 0) {
      replay = p;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  const auto acks_before = server->stats().acks_sent;
  server->segment_arrived(replay);
  EXPECT_EQ(received, 2u * 1357);  // no duplicate delivery
  EXPECT_EQ(server->stats().acks_sent, acks_before + 1);  // but re-ACKed
}

TEST(TcpEdge, ReceiverMergesInterleavedOutOfOrderBlocks) {
  // Feed a server segments 1,3,5,2,4 directly and verify in-order
  // delivery with correct deltas.
  sim::Simulation sim(1);
  std::vector<proto::PacketPtr> out;
  TcpConnection server(sim, {}, {kIpB, 5001}, {kIpA, 40000},
                       [&](proto::PacketPtr p) { out.push_back(std::move(p)); });
  proto::TcpHeader syn;
  syn.src_port = 40000;
  syn.dst_port = 5001;
  syn.seq = 1000;
  syn.flags = {.syn = true};
  syn.window = 65000;
  server.accept(syn);

  std::vector<std::uint64_t> deliveries;
  server.on_data = [&](std::uint64_t n) { deliveries.push_back(n); };

  // Segments must acknowledge the server's SYN-ACK (server ISS is
  // kClientIss + 10000 = 20000) or the kSynReceived state drops them.
  const auto seg = [&](std::uint32_t index) {
    return proto::make_tcp_packet(kIpA, kIpB, 40000, 5001,
                                1001 + index * 100, 20'001, {.ack = true},
                                65000, 100);
  };
  server.segment_arrived(*seg(0));           // in order: deliver 100
  server.segment_arrived(*seg(2));           // hole at 1
  server.segment_arrived(*seg(4));           // hole at 1, 3
  server.segment_arrived(*seg(1));           // fills to end of 2: +200
  server.segment_arrived(*seg(3));           // fills the rest: +200
  EXPECT_EQ(deliveries,
            (std::vector<std::uint64_t>{100, 200, 200}));
  EXPECT_EQ(server.delivered_bytes(), 500u);
  EXPECT_EQ(server.stats().out_of_order_segments, 2u);
}

TEST(TcpEdge, ZeroWindowPeerStallsSender) {
  sim::Simulation sim(1);
  std::vector<proto::PacketPtr> out;
  TcpConnection client(sim, {}, {kIpA, 40000}, {kIpB, 5001},
                       [&](proto::PacketPtr p) { out.push_back(std::move(p)); });
  client.connect();
  // Hand-craft a SYN-ACK advertising a zero window.
  proto::TcpHeader synack;
  synack.src_port = 5001;
  synack.dst_port = 40000;
  synack.seq = 5000;
  synack.ack = 10'001;  // client ISS + 1
  synack.flags = {.syn = true, .ack = true};
  synack.window = 0;
  proto::Packet pkt;
  pkt.ip.src = kIpB;
  pkt.ip.dst = kIpA;
  pkt.ip.protocol = proto::kProtoTcp;
  pkt.tcp = synack;
  client.segment_arrived(pkt);
  ASSERT_EQ(client.state(), TcpConnection::State::kEstablished);

  out.clear();
  client.send(10 * 1357);
  // Zero window: at most one probe-sized segment may leave.
  std::size_t data_segments = 0;
  for (const auto& p : out) {
    if (p->payload_bytes > 0) ++data_segments;
  }
  EXPECT_LE(data_segments, 1u);
}

// ---------------------------------------------------------------------
// Delayed-ACK edges. A hand-fed server (the ReceiverMerges pattern)
// makes the ack-now/delay decisions directly observable: acks_sent
// moves only when an ACK actually left, delack_pending() exposes the
// timer.
// ---------------------------------------------------------------------

namespace {

// Server in kSynReceived with a delayed/adaptive ACK policy, plus a
// segment factory acknowledging its SYN-ACK (ISS 20000).
struct DelAckServer {
  sim::Simulation sim{1};
  std::vector<proto::PacketPtr> out;
  TcpConnection conn;

  explicit DelAckServer(TcpConfig cfg)
      : conn(sim, cfg, {kIpB, 5001}, {kIpA, 40000},
             [this](proto::PacketPtr p) { out.push_back(std::move(p)); }) {
    proto::TcpHeader syn;
    syn.src_port = 40000;
    syn.dst_port = 5001;
    syn.seq = 1000;
    syn.flags = {.syn = true};
    syn.window = 65000;
    conn.accept(syn);
  }

  proto::PacketPtr seg(std::uint32_t index) const {
    return proto::make_tcp_packet(kIpA, kIpB, 40000, 5001,
                                1001 + index * 100, 20'001, {.ack = true},
                                65000, 100);
  }
};

TcpConfig delayed_cfg() {
  TcpConfig cfg;
  cfg.tuning.ack = AckScheme::kDelayed;
  return cfg;
}

}  // namespace

TEST(TcpEdge, DelayedAckHoldsInOrderDataButAcksOutOfOrderNow) {
  DelAckServer server(delayed_cfg());
  server.conn.segment_arrived(*server.seg(0));  // in order: held
  EXPECT_EQ(server.conn.stats().acks_sent, 0u);
  EXPECT_EQ(server.conn.stats().acks_delayed, 1u);
  EXPECT_TRUE(server.conn.delack_pending());

  // Out-of-order arrival: the duplicate ACK the sender's fast
  // retransmit depends on must leave immediately, policy or not, and
  // it covers (cancels) the pending delack.
  server.conn.segment_arrived(*server.seg(2));
  EXPECT_EQ(server.conn.stats().acks_sent, 1u);
  EXPECT_FALSE(server.conn.delack_pending());
}

TEST(TcpEdge, DelayedAckStretchCapForcesAckAtBoundary) {
  DelAckServer server(delayed_cfg());  // max_pending_segments = 2
  server.conn.segment_arrived(*server.seg(0));
  EXPECT_EQ(server.conn.stats().acks_sent, 0u);
  EXPECT_TRUE(server.conn.delack_pending());
  // Second in-order segment hits the stretch cap: ack-now.
  server.conn.segment_arrived(*server.seg(1));
  EXPECT_EQ(server.conn.stats().acks_sent, 1u);
  EXPECT_FALSE(server.conn.delack_pending());
  // And the held+forced pair counts one delayed decision, one forced.
  EXPECT_EQ(server.conn.stats().acks_delayed, 1u);
  // The cycle restarts cleanly for the next segment.
  server.conn.segment_arrived(*server.seg(2));
  EXPECT_EQ(server.conn.stats().acks_sent, 1u);
  EXPECT_TRUE(server.conn.delack_pending());
}

TEST(TcpEdge, FinArrivingWhileDelackPendingAcksImmediately) {
  DelAckServer server(delayed_cfg());
  server.conn.segment_arrived(*server.seg(0));
  ASSERT_TRUE(server.conn.delack_pending());

  // FIN right after the held segment: consumed, acknowledged now, and
  // the obsolete delack timer is gone.
  auto fin = proto::make_tcp_packet(kIpA, kIpB, 40000, 5001, 1101, 20'001,
                                  {.ack = true, .fin = true}, 65000, 0);
  server.conn.segment_arrived(*fin);
  EXPECT_EQ(server.conn.state(), TcpConnection::State::kClosedByPeer);
  EXPECT_EQ(server.conn.stats().acks_sent, 1u);
  EXPECT_FALSE(server.conn.delack_pending());
}

TEST(TcpEdge, DelackTimerCancelledOnConnectionDestruction) {
  // A connection destroyed with a delack pending must take the timer
  // with it; were the firing to outlive the connection, the callback
  // would touch freed memory (ASan turns that into a hard failure —
  // this suite rides the sanitizer CI slices).
  sim::Simulation sim(1);
  std::vector<proto::PacketPtr> out;
  TcpConfig cfg;
  cfg.tuning.ack = AckScheme::kAdaptive;
  {
    TcpConnection conn(sim, cfg, {kIpB, 5001}, {kIpA, 40000},
                       [&](proto::PacketPtr p) { out.push_back(std::move(p)); });
    proto::TcpHeader syn;
    syn.src_port = 40000;
    syn.dst_port = 5001;
    syn.seq = 1000;
    syn.flags = {.syn = true};
    syn.window = 65000;
    conn.accept(syn);
    conn.segment_arrived(*proto::make_tcp_packet(kIpA, kIpB, 40000, 5001, 1001,
                                               20'001, {.ack = true}, 65000,
                                               100));
    ASSERT_TRUE(conn.delack_pending());
  }  // destroyed with the timer armed
  sim.run_for(sim::Duration::seconds(2));  // past any delack deadline
}

TEST(TcpEdge, KarnRuleAndRtoSurviveDelayedAcks) {
  // Delayed ACKs stretch the measured RTT but must never (a) fire the
  // sender's RTO spuriously — the delack deadline sits below rto_min by
  // construction — or (b) leak an RTT sample from a retransmitted
  // segment (Karn's rule) that would wreck the estimator.
  TcpConfig cfg;
  cfg.tuning.ack = AckScheme::kDelayed;
  InspectedPipe pipe;
  std::uint64_t received = 0;
  pipe.b.tcp_listen(5001, cfg, [&](TcpConnection& c) {
    c.on_data = [&](std::uint64_t n) { received += n; };
  });
  auto& client = pipe.a.tcp_connect({kIpB, 5001}, cfg);
  // Drop one mid-stream data segment: the receiver's immediate dup ACKs
  // (out-of-order path) drive a fast retransmit under the delayed
  // policy.
  int data_seen = 0;
  pipe.drop_a_to_b = [&](const proto::Packet& p) {
    if (p.payload_bytes == 0) return false;
    return ++data_seen == 5;
  };
  client.send(30 * 1357);
  pipe.sim.run_for(sim::Duration::seconds(30));

  EXPECT_EQ(received, 30u * 1357);
  EXPECT_GE(client.stats().retransmits, 1u);
  // No spurious RTO: every held ACK arrived well inside the 400 ms
  // floor.
  EXPECT_EQ(client.stats().timeouts, 0u);
  // Karn held: no retransmitted segment fed the estimator, so post-
  // recovery samples (10 ms pipe + ≤100 ms delack) keep the RTO clamped
  // at its floor rather than inflated by a bogus mega-sample.
  EXPECT_EQ(client.current_rto(), cfg.rto_min);
}

}  // namespace
}  // namespace hydra::transport
