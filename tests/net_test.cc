// Network-layer tests: routing, forwarding, TTL, full-stack multi-hop UDP.
#include <gtest/gtest.h>

#include "app/udp_cbr.h"
#include "app/udp_sink.h"
#include "net/node.h"
#include "net/routing.h"
#include "topo/scenario.h"
#include "transport/host.h"

namespace hydra::net {
namespace {

using topo::Scenario;

TEST(Routing, MacForIpMapping) {
  EXPECT_EQ(mac_for(proto::Ipv4Address::for_node(0)), proto::MacAddress::for_node(0));
  EXPECT_EQ(mac_for(proto::Ipv4Address::for_node(3)), proto::MacAddress::for_node(3));
  EXPECT_TRUE(mac_for(proto::Ipv4Address::broadcast()).is_broadcast());
}

TEST(Routing, ExplicitRoutesAndDirectFallback) {
  RoutingTable rt;
  const auto a = proto::Ipv4Address::for_node(0);
  const auto b = proto::Ipv4Address::for_node(1);
  const auto c = proto::Ipv4Address::for_node(2);
  EXPECT_EQ(rt.next_hop(c), c);  // no route: direct
  rt.add_route(c, b);
  EXPECT_EQ(rt.next_hop(c), b);
  EXPECT_TRUE(rt.has_route(c));
  EXPECT_FALSE(rt.has_route(a));
  rt.add_route(c, a);  // replacement
  EXPECT_EQ(rt.next_hop(c), a);
  EXPECT_EQ(rt.size(), 1u);
}

// A chain with hop-by-hop static routes (the fixture default).
Scenario routed_chain(std::size_t n) {
  return Scenario::build(topo::ScenarioSpec::chain(n));
}

TEST(FullStack, TwoHopUdpForwarding) {
  auto chain = routed_chain(3);
  app::UdpSinkApp sink(chain.sim(), chain.node(2), 9001);
  auto& socket = transport::mux_of(chain.node(0)).open_udp(9000);
  socket.send_to({proto::Ipv4Address::for_node(2), 9001}, 1048);
  socket.send_to({proto::Ipv4Address::for_node(2), 9001}, 1048);
  chain.run_for(sim::Duration::seconds(2));

  EXPECT_EQ(sink.packets(), 2u);
  EXPECT_EQ(sink.payload_bytes(), 2096u);
  EXPECT_EQ(chain.node(1).stack().forwarded(), 2u);
  // The relay transmitted data frames; the destination none.
  EXPECT_GT(chain.node(1).mac_stats().data_frames_tx, 0u);
  EXPECT_EQ(chain.node(2).mac_stats().data_frames_tx, 0u);
}

TEST(FullStack, ThreeHopDelivery) {
  auto chain = routed_chain(4);
  app::UdpSinkApp sink(chain.sim(), chain.node(3), 9001);
  auto& socket = transport::mux_of(chain.node(0)).open_udp(9000);
  socket.send_to({proto::Ipv4Address::for_node(3), 9001}, 500);
  chain.run_for(sim::Duration::seconds(2));

  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(chain.node(1).stack().forwarded(), 1u);
  EXPECT_EQ(chain.node(2).stack().forwarded(), 1u);
}

TEST(FullStack, ForwardingClonesExactlyOncePerHop) {
  // The copy-on-write contract of the forwarding path: packets travel
  // the stack as shared immutable pointers, and the only copy made on
  // the whole journey is the per-hop clone that decrements TTL. Each
  // relay therefore clones exactly as often as it forwards — a change
  // that reintroduces a defensive deep copy anywhere else shows up
  // here as clones > forwards.
  auto chain = routed_chain(5);
  app::UdpSinkApp sink(chain.sim(), chain.node(4), 9001);
  auto& socket = transport::mux_of(chain.node(0)).open_udp(9000);
  socket.send_to({proto::Ipv4Address::for_node(4), 9001}, 500);
  socket.send_to({proto::Ipv4Address::for_node(4), 9001}, 500);
  socket.send_to({proto::Ipv4Address::for_node(4), 9001}, 500);
  chain.run_for(sim::Duration::seconds(2));

  EXPECT_EQ(sink.packets(), 3u);
  for (const std::size_t relay : {1u, 2u, 3u}) {
    EXPECT_EQ(chain.node(relay).stack().forwarded(), 3u) << "relay " << relay;
    EXPECT_EQ(chain.node(relay).stack().header_clones(),
              chain.node(relay).stack().forwarded())
        << "relay " << relay;
  }
  // Originating and terminal nodes never rewrite a header: no clones.
  EXPECT_EQ(chain.node(0).stack().header_clones(), 0u);
  EXPECT_EQ(chain.node(4).stack().header_clones(), 0u);
}

TEST(FullStack, LocalAndBroadcastDeliveryNeverClones) {
  // Read-only paths — local delivery at the destination and broadcast
  // reception (which is never re-flooded) — must share the parsed
  // packet, not copy it.
  auto chain = routed_chain(3);
  app::UdpSinkApp sink(chain.sim(), chain.node(1), 9001);
  auto& socket = transport::mux_of(chain.node(0)).open_udp(9000);
  socket.send_to({proto::Ipv4Address::for_node(1), 9001}, 200);  // one hop
  chain.node(0).stack().send(
      proto::make_flood_packet(proto::Ipv4Address::for_node(0), 40));
  chain.run_for(sim::Duration::seconds(2));

  EXPECT_EQ(sink.packets(), 1u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(chain.node(i).stack().header_clones(), 0u) << "node " << i;
  }
}

TEST(FullStack, BroadcastReachesNeighboursWithoutReflooding) {
  auto chain = routed_chain(3);
  int rx1 = 0, rx2 = 0;
  chain.node(1).stack().on_broadcast = [&](const proto::PacketPtr&) { ++rx1; };
  chain.node(2).stack().on_broadcast = [&](const proto::PacketPtr&) { ++rx2; };

  chain.node(0).stack().send(
      proto::make_flood_packet(proto::Ipv4Address::for_node(0), 40));
  chain.run_for(sim::Duration::seconds(1));

  EXPECT_EQ(rx1, 1);
  EXPECT_EQ(rx2, 1);  // single radio transmission reaches both
  // Nobody forwarded the broadcast (no duplicate deliveries).
  EXPECT_EQ(chain.node(1).stack().forwarded(), 0u);
  EXPECT_EQ(chain.node(2).stack().forwarded(), 0u);
}

TEST(FullStack, TtlExpiresOnRoutingLoop) {
  auto chain = routed_chain(2);
  // Deliberate loop: both nodes route "node 9" at each other.
  const auto phantom = proto::Ipv4Address::from_octets(10, 0, 0, 99);
  chain.node(0).routes().add_route(phantom, proto::Ipv4Address::for_node(1));
  chain.node(1).routes().add_route(phantom, proto::Ipv4Address::for_node(0));

  transport::mux_of(chain.node(0)).open_udp(9000).send_to({phantom, 1}, 100);
  chain.run_for(sim::Duration::seconds(30));

  EXPECT_EQ(chain.node(0).stack().ttl_drops() +
                chain.node(1).stack().ttl_drops(),
            1u);
}

TEST(FullStack, UdpSaturationDropsAtQueueNotSilently) {
  auto chain = routed_chain(3);
  app::UdpSinkApp sink(chain.sim(), chain.node(2), 9001);
  app::UdpCbrConfig cfg;
  cfg.destination = {proto::Ipv4Address::for_node(2), 9001};
  cfg.interval = sim::Duration::millis(10);
  cfg.packets_per_tick = 8;  // far above channel capacity
  cfg.stop = sim::TimePoint::at(sim::Duration::seconds(5));
  app::UdpCbrApp cbr(chain.sim(), chain.node(0), cfg);
  cbr.start();
  chain.run_for(sim::Duration::seconds(8));

  EXPECT_GT(cbr.packets_sent(), 100u);
  EXPECT_GT(sink.packets(), 0u);
  EXPECT_LT(sink.packets(), cbr.packets_sent());
  // The shortfall is visible as queue drops at the source and/or relay.
  const auto drops = chain.node(0).mac_stats().queue_drops +
                     chain.node(1).mac_stats().queue_drops;
  EXPECT_GT(drops, 0u);
}

TEST(Node, AddressingAccessors) {
  auto chain = routed_chain(2);
  EXPECT_EQ(chain.node(0).ip(), proto::Ipv4Address::for_node(0));
  EXPECT_EQ(chain.node(1).link_address(), proto::MacAddress::for_node(1));
  EXPECT_EQ(chain.node(0).index(), 0u);
}

}  // namespace
}  // namespace hydra::net
