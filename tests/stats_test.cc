// Tests for the metric/table helpers used by the benchmark harness.
#include <gtest/gtest.h>

#include "app/experiment.h"
#include "mac/stats.h"
#include "stats/metrics.h"
#include "stats/table.h"
#include "topo/experiment.h"

namespace hydra::stats {
namespace {

TEST(TableTest, AlignedRendering) {
  Table t({"Rate", "NA", "UA"});
  t.add_row({"0.65", "22.4%", "6.7%"});
  t.add_row({"2.6", "52.1%", "24.8%"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("| Rate | NA    | UA    |"), std::string::npos);
  EXPECT_NE(s.find("| 0.65 | 22.4% | 6.7%  |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|------|"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.7, 0), "3");  // rounds
  EXPECT_EQ(Table::percent(0.224), "22.4%");
  EXPECT_EQ(Table::percent(0.0655, 2), "6.55%");
  EXPECT_EQ(Table::bytes(2662.4), "2662B");
}

TEST(Metrics, PhyHeaderByteEquivalent) {
  // 320 us of preamble at 0.65 Mbps is 26 bytes; at 2.6 Mbps, 104 bytes.
  EXPECT_NEAR(phy_header_byte_equivalent(proto::mode_by_index(0)), 26.0, 0.5);
  EXPECT_NEAR(phy_header_byte_equivalent(proto::mode_by_index(3)), 104.0, 1.0);
}

TEST(Metrics, SizeOverheadUsesMacAndPhyHeaders) {
  mac::MacStats s;
  s.data_frames_tx = 10;
  s.data_bytes_tx = 7650;          // 765 B average frame (paper NA)
  s.mac_header_bytes_tx = 900;     // 90 B per frame
  const auto overhead = size_overhead(s, proto::mode_by_index(0));
  // (900 + 10*26) / (7650 + 10*26) ≈ 14.7% — close to the paper's 15.1%.
  EXPECT_NEAR(overhead, 0.147, 0.01);
}

TEST(Metrics, SizeOverheadZeroWhenIdle) {
  EXPECT_EQ(size_overhead(mac::MacStats{}, proto::mode_by_index(0)), 0.0);
}

TEST(Metrics, TxPercentage) {
  mac::MacStats na, ua;
  na.data_frames_tx = 300;
  ua.data_frames_tx = 101;
  EXPECT_NEAR(tx_percentage(ua, na), 0.3367, 0.001);
  EXPECT_EQ(tx_percentage(ua, mac::MacStats{}), 0.0);
}

TEST(Metrics, TimeAccountingOverheadFraction) {
  mac::TimeAccounting t;
  t.payload = sim::Duration::millis(80);
  t.mac_header = sim::Duration::millis(5);
  t.phy_header = sim::Duration::millis(5);
  t.control = sim::Duration::millis(5);
  t.ifs = sim::Duration::millis(3);
  t.backoff = sim::Duration::millis(2);
  EXPECT_EQ(t.overhead(), sim::Duration::millis(20));
  EXPECT_DOUBLE_EQ(t.overhead_fraction(), 0.2);
}

TEST(Metrics, AvgFrameBytes) {
  mac::MacStats s;
  EXPECT_EQ(s.avg_frame_bytes(), 0.0);
  s.data_frames_tx = 4;
  s.data_bytes_tx = 10'000;
  EXPECT_DOUBLE_EQ(s.avg_frame_bytes(), 2500.0);
}

TEST(Topology, NodeCountsAndRelays) {
  using topo::ScenarioSpec;
  EXPECT_EQ(ScenarioSpec::one_hop().node_count(), 2u);
  EXPECT_EQ(ScenarioSpec::two_hop().node_count(), 3u);
  EXPECT_EQ(ScenarioSpec::three_hop().node_count(), 4u);
  EXPECT_EQ(ScenarioSpec::fig6_star().node_count(), 4u);
  EXPECT_TRUE(ScenarioSpec::one_hop().relay_indices().empty());
  EXPECT_EQ(ScenarioSpec::two_hop().relay_indices(),
            (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(ScenarioSpec::three_hop().relay_indices(),
            (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(ScenarioSpec::fig6_star().relay_indices(),
            (std::vector<std::uint32_t>{1}));
}

}  // namespace
}  // namespace hydra::stats
