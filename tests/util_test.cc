// Unit tests: byte buffers, CRC-32, units.
#include <gtest/gtest.h>

#include "util/buffer.h"
#include "util/crc32.h"
#include "util/units.h"

namespace hydra {
namespace {

TEST(BufferWriter, WritesLittleEndianPrimitives) {
  BufferWriter w;
  w.write_u8(0xab);
  w.write_u16(0x1234);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0102030405060708ull);
  const auto v = w.view();
  ASSERT_EQ(v.size(), 15u);
  EXPECT_EQ(v[0], 0xab);
  EXPECT_EQ(v[1], 0x34);  // u16 low byte first
  EXPECT_EQ(v[2], 0x12);
  EXPECT_EQ(v[3], 0xef);
  EXPECT_EQ(v[6], 0xde);
  EXPECT_EQ(v[7], 0x08);
  EXPECT_EQ(v[14], 0x01);
}

TEST(BufferWriter, ZerosAndBytes) {
  BufferWriter w;
  w.write_zeros(3);
  const Bytes payload = {1, 2, 3};
  w.write_bytes(payload);
  EXPECT_EQ(w.size(), 6u);
  EXPECT_EQ(w.view()[0], 0);
  EXPECT_EQ(w.view()[3], 1);
  EXPECT_EQ(w.view()[5], 3);
}

TEST(BufferRoundTrip, AllPrimitiveWidths) {
  BufferWriter w;
  w.write_u8(0x7f);
  w.write_u16(0xbeef);
  w.write_u32(0xcafebabe);
  w.write_u64(0xfeedfacedeadbeefull);
  const auto bytes = w.take();
  BufferReader r(bytes);
  EXPECT_EQ(r.read_u8(), 0x7f);
  EXPECT_EQ(r.read_u16(), 0xbeef);
  EXPECT_EQ(r.read_u32(), 0xcafebabeu);
  EXPECT_EQ(r.read_u64(), 0xfeedfacedeadbeefull);
  EXPECT_TRUE(r.exhausted());
}

TEST(BufferReader, TracksRemainingAndPosition) {
  const Bytes data = {1, 2, 3, 4, 5};
  BufferReader r(data);
  EXPECT_EQ(r.remaining(), 5u);
  EXPECT_TRUE(r.can_read(5));
  EXPECT_FALSE(r.can_read(6));
  r.skip(2);
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.remaining(), 3u);
  const auto rest = r.read_bytes(3);
  EXPECT_EQ(rest, (Bytes{3, 4, 5}));
  EXPECT_TRUE(r.exhausted());
}

TEST(BufferReader, SliceViewsArbitraryRegions) {
  const Bytes data = {10, 20, 30, 40};
  BufferReader r(data);
  r.skip(4);
  const auto s = r.slice(1, 2);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 20);
  EXPECT_EQ(s[1], 30);
}

TEST(Hex, FormatsBytes) {
  const Bytes data = {0x00, 0xff, 0x1a};
  EXPECT_EQ(to_hex(data), "00 ff 1a");
  EXPECT_EQ(to_hex({}), "");
}

TEST(Crc32, MatchesKnownVector) {
  // The canonical CRC-32 check value for "123456789".
  const Bytes data = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Bytes data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  auto state = kCrc32Init;
  state = crc32_update(state, std::span(data).subspan(0, 100));
  state = crc32_update(state, std::span(data).subspan(100, 150));
  state = crc32_update(state, std::span(data).subspan(250));
  EXPECT_EQ(crc32_finalize(state), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlips) {
  Bytes data = {'h', 'y', 'd', 'r', 'a'};
  const auto original = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc32(data), original)
          << "undetected flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
}

TEST(BitRate, ConstructionAndConversion) {
  EXPECT_EQ(BitRate::mbps_x100(65).bits_per_second(), 650'000u);
  EXPECT_EQ(BitRate::mbps_x100(130).bits_per_second(), 1'300'000u);
  EXPECT_DOUBLE_EQ(BitRate::mbps_x100(260).mbps(), 2.6);
  EXPECT_EQ(BitRate::kbps(5).bits_per_second(), 5'000u);
  EXPECT_TRUE(BitRate().is_zero());
  EXPECT_LT(BitRate::mbps_x100(65), BitRate::mbps_x100(130));
}

TEST(BitRate, ToString) {
  EXPECT_EQ(to_string(BitRate::mbps_x100(65)), "0.65 Mbps");
}

}  // namespace
}  // namespace hydra
