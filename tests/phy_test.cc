// Unit tests: PHY modes, airtime/sample math, error model with channel
// aging, medium path loss, transceiver behaviour including collisions.
#include <gtest/gtest.h>

#include <memory>

#include "phy/error_model.h"
#include "phy/frame.h"
#include "phy/medium.h"
#include "phy/phy.h"
#include "phy/timing.h"
#include "proto/mode.h"
#include "sim/simulation.h"

namespace hydra::phy {
namespace {

TEST(PhyMode, HydraRateTable) {
  const auto modes = proto::hydra_modes();
  ASSERT_EQ(modes.size(), 8u);
  EXPECT_EQ(modes[0].rate.bits_per_second(), 650'000u);
  EXPECT_EQ(modes[7].rate.bits_per_second(), 6'500'000u);
  // Rates strictly increase.
  for (std::size_t i = 1; i < modes.size(); ++i) {
    EXPECT_LT(modes[i - 1].rate, modes[i].rate);
    EXPECT_LT(modes[i - 1].required_snr_db, modes[i].required_snr_db);
  }
}

TEST(PhyMode, BitsPerSymbol) {
  EXPECT_EQ(proto::mode_by_index(0).bits_per_symbol(), 1u);  // BPSK
  EXPECT_EQ(proto::mode_by_index(1).bits_per_symbol(), 2u);  // QPSK
  EXPECT_EQ(proto::mode_by_index(3).bits_per_symbol(), 4u);  // 16-QAM
  EXPECT_EQ(proto::mode_by_index(7).bits_per_symbol(), 6u);  // 64-QAM
}

TEST(PhyMode, LookupByRate) {
  ASSERT_TRUE(proto::mode_for_mbps_x100(65).has_value());
  ASSERT_TRUE(proto::mode_for_mbps_x100(260).has_value());
  EXPECT_EQ(proto::mode_for_mbps_x100(65)->modulation, proto::Modulation::kBpsk);
  EXPECT_EQ(proto::mode_for_mbps_x100(260)->modulation, proto::Modulation::kQam16);
  EXPECT_FALSE(proto::mode_for_mbps_x100(100).has_value());
}

TEST(PhyMode, SixtyFourQamUnreliableAtPaperSnr) {
  // Paper §5: 25 dB "did not allow reliable operation of the rates that
  // required 64-QAM".
  for (const auto& m : proto::hydra_modes()) {
    if (m.modulation == proto::Modulation::kQam64) {
      EXPECT_GT(m.required_snr_db, 25.0);
    } else {
      EXPECT_LT(m.required_snr_db, 25.0);
    }
  }
}

TEST(Timing, PayloadAirtimeExactValues) {
  // 1000 bytes at 0.65 Mbps = 8000 bits / 650000 bps = 12.307692.. ms.
  const auto d = payload_airtime(1000, proto::mode_by_index(0));
  EXPECT_NEAR(d.millis_f(), 12.3077, 0.001);
  // Doubling the rate halves the airtime.
  const auto d2 = payload_airtime(1000, proto::mode_by_index(1));
  EXPECT_NEAR(d.millis_f() / d2.millis_f(), 2.0, 0.001);
  EXPECT_TRUE(payload_airtime(0, proto::mode_by_index(0)).is_zero());
}

TEST(Timing, AirtimeMonotonicInBytes) {
  for (std::size_t mode = 0; mode < 4; ++mode) {
    sim::Duration prev = sim::Duration::zero();
    for (std::size_t bytes = 100; bytes <= 2000; bytes += 100) {
      const auto t = payload_airtime(bytes, proto::mode_by_index(mode));
      EXPECT_GT(t, prev);
      prev = t;
    }
  }
}

TEST(Timing, FrameTimingLayout) {
  PortionSpec bcast;
  bcast.mode = proto::mode_by_index(0);
  bcast.subframe_bytes = {160, 160};
  PortionSpec ucast;
  ucast.mode = proto::mode_by_index(1);
  ucast.subframe_bytes = {1464};

  const auto t = frame_timing(bcast, ucast);
  const auto& pt = default_timings();
  // Header includes the broadcast rate/length field when broadcasts exist.
  EXPECT_EQ(t.header, pt.preamble + pt.broadcast_field);
  ASSERT_EQ(t.broadcast_subframe_end.size(), 2u);
  ASSERT_EQ(t.unicast_subframe_end.size(), 1u);
  // Subframe end offsets are cumulative and ordered.
  EXPECT_GT(t.broadcast_subframe_end[1], t.broadcast_subframe_end[0]);
  EXPECT_GT(t.unicast_subframe_end[0], t.broadcast_subframe_end[1]);
  EXPECT_EQ(t.total, t.unicast_subframe_end[0]);
  EXPECT_EQ(t.total,
            t.header + t.broadcast_portion + t.unicast_portion);
}

TEST(Timing, NoBroadcastFieldWithoutBroadcastPortion) {
  PortionSpec empty_bcast;
  PortionSpec ucast;
  ucast.subframe_bytes = {1000};
  const auto t = frame_timing(empty_bcast, ucast);
  EXPECT_EQ(t.header, default_timings().preamble);
}

TEST(Timing, SamplesAccounting) {
  // 2 Msample/s: 1 ms of airtime = 2000 samples.
  EXPECT_EQ(samples_for(sim::Duration::millis(1)), 2000);
  // The paper's limit: ~62 ms of airtime is ~124 Ksamples ("about 120 K").
  const auto cliff = samples_for(sim::Duration::micros(62'000));
  EXPECT_NEAR(static_cast<double>(cliff), 120'000.0, 8'000.0);
}

TEST(Timing, FiveKilobytesAtBaseRateSitsAtTheSampleCliff) {
  // Paper §6.1: 5 KB at 0.65 Mbps ≈ the 120 Ksample threshold.
  PortionSpec ucast;
  ucast.mode = proto::mode_by_index(0);
  ucast.subframe_bytes = {5 * 1024};
  const auto t = frame_timing({}, ucast);
  const auto samples = samples_for(t.total);
  EXPECT_NEAR(static_cast<double>(samples), 126'000, 6'000);
}

TEST(ErrorModel, CleanBelowCoherence) {
  const ErrorModel model;
  // At the paper's 25 dB operating point, a max-size subframe that ends
  // before the coherence time is essentially always received.
  const auto p = model.subframe_error_probability(
      proto::mode_by_index(3), 25.0, 1464, sim::Duration::millis(30));
  EXPECT_LT(p, 1e-3);
}

TEST(ErrorModel, HopelessBeyondCoherence) {
  const ErrorModel model;
  // 15 ms past the coherence time the channel estimate is stale and the
  // subframe is effectively always lost — the Fig. 7 cliff.
  const auto p = model.subframe_error_probability(
      proto::mode_by_index(0), 25.0, 1464,
      model.config().coherence_time + sim::Duration::millis(15));
  EXPECT_GT(p, 0.99);
}

TEST(ErrorModel, EffectiveSnrFlatThenLinear) {
  const ErrorModel model;
  const auto coh = model.config().coherence_time;
  EXPECT_DOUBLE_EQ(model.effective_snr_db(25.0, coh), 25.0);
  EXPECT_DOUBLE_EQ(model.effective_snr_db(25.0, sim::Duration::zero()), 25.0);
  const auto later = model.effective_snr_db(25.0, coh + sim::Duration::millis(2));
  EXPECT_NEAR(later, 25.0 - 2.0 * model.config().aging_db_per_ms, 1e-9);
}

TEST(ErrorModel, BitErrorMonotonicInSnr) {
  const ErrorModel model;
  const auto& mode = proto::mode_by_index(2);
  double prev = 1.0;
  for (double snr = 0.0; snr <= 30.0; snr += 2.0) {
    const auto p = model.bit_error_probability(mode, snr);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(ErrorModel, SixtyFourQamFailsAtOperatingPoint) {
  const ErrorModel model;
  // A full-size subframe at 64-QAM 5/6 under 25 dB should usually fail.
  const auto p = model.subframe_error_probability(
      proto::mode_by_index(7), 25.0, 1464, sim::Duration::millis(5));
  EXPECT_GT(p, 0.5);
}

TEST(ErrorModel, ErrorProbabilityGrowsWithLength) {
  const ErrorModel model;
  const auto& mode = proto::mode_by_index(1);
  const auto p_small = model.subframe_error_probability(
      mode, 9.0, 100, sim::Duration::millis(1));
  const auto p_large = model.subframe_error_probability(
      mode, 9.0, 2000, sim::Duration::millis(1));
  EXPECT_GT(p_large, p_small);
  EXPECT_GT(p_small, 0.0);
}

// --- medium / transceiver -------------------------------------------------

TEST(Medium, PaperOperatingPoint) {
  sim::Simulation s(1);
  Medium medium(s);
  Phy a(s, medium, {.position = {0, 0}}, 0);
  Phy b(s, medium, {.position = {2.5, 0}}, 1);
  // 7.7 mW at 2.5 m spacing gives the paper's 25 dB SNR.
  EXPECT_NEAR(medium.snr_db(a, b), 25.0, 1.0);
  EXPECT_NEAR(medium.snr_db(b, a), 25.0, 1.0);
}

TEST(Medium, SnrFallsWithDistance) {
  sim::Simulation s(1);
  Medium medium(s);
  Phy a(s, medium, {.position = {0, 0}}, 0);
  Phy b(s, medium, {.position = {2.5, 0}}, 1);
  Phy c(s, medium, {.position = {7.5, 0}}, 2);
  EXPECT_GT(medium.snr_db(a, b), medium.snr_db(a, c));
  // Distant nodes are still audible (all nodes in range, paper §5).
  EXPECT_GT(medium.rx_power_dbm(a, c), medium.config().cca_threshold_dbm);
}

PhyFrame test_frame(std::size_t bytes, const proto::PhyMode& mode) {
  PhyFrame f;
  f.unicast.mode = mode;
  f.unicast.subframe_bytes = {bytes};
  f.payload = std::make_shared<Payload>();
  return f;
}

TEST(Phy, DeliversFrameWithCorrectSnr) {
  sim::Simulation s(1);
  Medium medium(s);
  Phy a(s, medium, {.position = {0, 0}}, 0);
  Phy b(s, medium, {.position = {2.5, 0}}, 1);

  int rx = 0;
  RxReport last;
  b.on_rx = [&](const RxReport& r) {
    ++rx;
    last = r;
  };
  bool tx_done = false;
  a.on_tx_complete = [&] { tx_done = true; };

  a.transmit(test_frame(1000, proto::mode_by_index(0)));
  EXPECT_TRUE(a.transmitting());
  s.run();
  EXPECT_TRUE(tx_done);
  EXPECT_FALSE(a.transmitting());
  ASSERT_EQ(rx, 1);
  EXPECT_FALSE(last.collided);
  ASSERT_EQ(last.unicast_ok.size(), 1u);
  EXPECT_TRUE(last.unicast_ok[0]);  // 25 dB, short frame: clean
  EXPECT_NEAR(last.snr_db, 25.0, 1.0);
}

TEST(Phy, CcaBusyDuringNeighbourTransmission) {
  sim::Simulation s(1);
  Medium medium(s);
  Phy a(s, medium, {.position = {0, 0}}, 0);
  Phy b(s, medium, {.position = {2.5, 0}}, 1);

  int busy_edges = 0, idle_edges = 0;
  b.on_cca_change = [&](bool busy) { busy ? ++busy_edges : ++idle_edges; };

  a.transmit(test_frame(1000, proto::mode_by_index(0)));
  s.run();
  EXPECT_EQ(busy_edges, 1);
  EXPECT_EQ(idle_edges, 1);
  EXPECT_FALSE(b.cca_busy());
}

TEST(Phy, OverlappingTransmissionsCollide) {
  sim::Simulation s(1);
  Medium medium(s);
  Phy a(s, medium, {.position = {0, 0}}, 0);
  Phy b(s, medium, {.position = {2.5, 0}}, 1);
  Phy c(s, medium, {.position = {1.25, 1.0}}, 2);

  int collided = 0, clean = 0;
  c.on_rx = [&](const RxReport& r) { r.collided ? ++collided : ++clean; };

  // Both transmit within each other's airtime.
  a.transmit(test_frame(1000, proto::mode_by_index(0)));
  s.scheduler().schedule_in(sim::Duration::millis(1), [&] {
    b.transmit(test_frame(1000, proto::mode_by_index(0)));
  });
  s.run();
  EXPECT_EQ(collided, 2);
  EXPECT_EQ(clean, 0);
  EXPECT_EQ(c.collisions_seen(), 2u);
}

TEST(Phy, TransmitterMissesFramesWhileTransmitting) {
  sim::Simulation s(1);
  Medium medium(s);
  Phy a(s, medium, {.position = {0, 0}}, 0);
  Phy b(s, medium, {.position = {2.5, 0}}, 1);

  int a_clean = 0;
  a.on_rx = [&](const RxReport& r) {
    if (!r.collided) ++a_clean;
  };
  a.transmit(test_frame(2000, proto::mode_by_index(0)));
  s.scheduler().schedule_in(sim::Duration::millis(1), [&] {
    b.transmit(test_frame(100, proto::mode_by_index(0)));
  });
  s.run();
  EXPECT_EQ(a_clean, 0);  // half-duplex: own TX doomed the reception
}

TEST(Phy, LongAggregateLosesTailSubframesOnly) {
  sim::Simulation s(7);
  Medium medium(s);
  Phy a(s, medium, {.position = {0, 0}}, 0);
  Phy b(s, medium, {.position = {2.5, 0}}, 1);

  // 8 KB of subframes at 0.65 Mbps: ~100 ms airtime, far past the 62 ms
  // coherence time. Early subframes survive; late ones die.
  PhyFrame f;
  f.unicast.mode = proto::mode_by_index(0);
  for (int i = 0; i < 8; ++i) f.unicast.subframe_bytes.push_back(1024);
  f.payload = std::make_shared<Payload>();

  std::vector<bool> ok;
  b.on_rx = [&](const RxReport& r) { ok = r.unicast_ok; };
  a.transmit(std::move(f));
  s.run();

  ASSERT_EQ(ok.size(), 8u);
  EXPECT_TRUE(ok.front());   // ends ~13 ms in: clean
  EXPECT_FALSE(ok.back());   // ends ~100 ms in: stale channel estimate
}

}  // namespace
}  // namespace hydra::phy
