// Pluggable-default vs seed TCP differential determinism: the refactor
// that made congestion control and ACK policy pluggable seams must be
// invisible under the default tuning (NewReno + immediate ACK). Every
// paper spec — plus chain, star and grid worlds — runs the same file
// workload twice, once over the refactored transport::TcpConnection and
// once over the frozen pre-seam copy in tests/support/seed_tcp.h, under
// {full mesh, culled, sharded@4} × {serial, parallel-windows@4}, and
// each pair must agree on
//
//   - the trace digest (CRC-32 over the network-event trace),
//   - the per-node MAC stats table, byte for byte,
//   - the medium's transmission / scheduled-delivery counts, and
//   - the scheduler's executed-event count.
//
// Both variants get byte-identical wiring: the same staggered sender
// start times through affinity-pinned timers, the same listener setup,
// the same run-slice loop — the only degree of freedom is which TCP
// processes the segments. A seam that scheduled one extra event (say,
// an always-armed delack timer) or perturbed one windowing decision
// diverges here on every affected combo. Registered under the
// `transport` ctest label; ASan and TSan CI slices both run it.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/seed_tcp.h"
#include "topo/scenario.h"
#include "transport/host.h"

namespace hydra {
namespace {

constexpr proto::Port kPort = 5001;
constexpr std::uint64_t kFileBytes = 60'000;

struct RunFingerprint {
  std::uint32_t digest = 0;
  std::string stats;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t delivered_bytes = 0;
  bool all_complete = false;
};

struct Backend {
  const char* label;
  topo::MediumPolicy policy;
  std::size_t shard_threads;
};

struct SchedulerAxis {
  const char* label;
  topo::SchedulerPolicy policy;
  unsigned workers;
};

constexpr Backend kBackends[] = {
    {"full-mesh", topo::MediumPolicy::kFullMesh, 0},
    {"culled", topo::MediumPolicy::kCulled, 0},
    {"sharded@4", topo::MediumPolicy::kSharded, 4},
};

constexpr SchedulerAxis kSchedulers[] = {
    {"serial", topo::SchedulerPolicy::kSerial, 0},
    {"parallel-windows@4", topo::SchedulerPolicy::kParallelWindows, 4},
};

// The two sides of the differential, as traits the harness templates
// over: which mux attaches to a node and which connection type it hands
// out. Everything else in a run is shared code, so the wiring (timer
// affinities, callback order, start times) cannot drift between sides.
struct PluggableSide {
  using Connection = transport::TcpConnection;
  static auto& mux(net::Node& node) { return transport::mux_of(node); }
};

struct SeedSide {
  using Connection = seedtcp::SeedTcpConnection;
  static auto& mux(net::Node& node) { return seedtcp::seed_mux_of(node); }
};

// Minimal FileSenderApp equivalent, shared by both sides (the real app
// is hardwired to the pluggable mux). Same affinity-pinned start timer,
// same connect/send/close sequence.
template <typename Side>
class Sender {
 public:
  Sender(sim::Simulation& sim, net::Node& node, proto::Endpoint destination)
      : sim_(sim),
        node_(node),
        destination_(destination),
        timer_(sim.scheduler(), [this] { begin(); }) {
    timer_.set_affinity(node.phy().id());
  }

  void start(sim::TimePoint at) {
    const auto now = sim_.now();
    timer_.arm(at > now ? at - now : sim::Duration::zero());
  }

 private:
  void begin() {
    auto& conn = Side::mux(node_).tcp_connect(destination_, {});
    conn.send(kFileBytes);
    conn.close();
  }

  sim::Simulation& sim_;
  net::Node& node_;
  proto::Endpoint destination_;
  sim::Timer timer_;
};

template <typename Side>
RunFingerprint run_transfers(topo::ScenarioSpec spec, const Backend& backend,
                             const SchedulerAxis& sched) {
  spec.medium.policy = backend.policy;
  spec.medium.shard_threads = backend.shard_threads;
  spec.scheduler.policy = sched.policy;
  spec.scheduler.workers = sched.workers;
  auto s = topo::Scenario::build(spec, /*seed=*/5);
  s.capture_traces();

  const auto sessions = spec.sessions;
  EXPECT_FALSE(sessions.empty()) << spec.label();

  // Receivers: one listener per distinct destination, counting in-order
  // bytes per accepted flow.
  std::map<std::uint32_t, std::uint64_t> expected_at;
  std::uint64_t delivered = 0;
  for (const auto& session : sessions) {
    const auto dst = session.receiver;
    if (!expected_at.contains(dst)) {
      Side::mux(s.node(dst)).tcp_listen(
          kPort, {}, [&delivered](typename Side::Connection& conn) {
            conn.on_data = [&delivered](std::uint64_t bytes) {
              delivered += bytes;
            };
          });
    }
    expected_at[dst] += kFileBytes;
  }
  const std::uint64_t expected_total = [&] {
    std::uint64_t total = 0;
    for (const auto& [dst, bytes] : expected_at) total += bytes;
    return total;
  }();

  std::vector<std::unique_ptr<Sender<Side>>> senders;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    senders.push_back(std::make_unique<Sender<Side>>(
        s.sim(), s.node(sessions[i].sender),
        proto::Endpoint{proto::Ipv4Address::for_node(sessions[i].receiver),
                        kPort}));
    senders.back()->start(
        sim::TimePoint::at(sim::Duration::millis(10) * (i + 1)));
  }

  const auto deadline = sim::TimePoint::at(sim::Duration::seconds(120));
  while (s.sim().now() < deadline && delivered < expected_total) {
    s.run_for(sim::Duration::millis(200));
  }

  EXPECT_FALSE(s.trace().empty()) << spec.label();
  RunFingerprint fp;
  fp.digest = s.trace_digest();
  fp.stats = s.metrics_summary();
  fp.transmissions = s.medium().transmissions_started();
  fp.deliveries = s.medium().deliveries_scheduled();
  fp.executed_events = s.sim().scheduler().executed_events();
  fp.delivered_bytes = delivered;
  fp.all_complete = delivered >= expected_total;
  return fp;
}

void assert_seam_invisible(const topo::ScenarioSpec& spec) {
  for (const auto& backend : kBackends) {
    for (const auto& sched : kSchedulers) {
      const auto pluggable = run_transfers<PluggableSide>(spec, backend, sched);
      const auto seed = run_transfers<SeedSide>(spec, backend, sched);
      const std::string where = std::string(spec.label()) + " / " +
                                backend.label + " / " + sched.label;
      EXPECT_TRUE(seed.all_complete) << where << ": seed run incomplete";
      EXPECT_EQ(pluggable.digest, seed.digest)
          << where << ": pluggable vs seed trace digest diverged";
      EXPECT_EQ(pluggable.stats, seed.stats)
          << where << ": pluggable vs seed MAC stats diverged";
      EXPECT_EQ(pluggable.transmissions, seed.transmissions) << where;
      EXPECT_EQ(pluggable.deliveries, seed.deliveries) << where;
      EXPECT_EQ(pluggable.executed_events, seed.executed_events)
          << where << ": event counts diverged (a seam scheduled events)";
      EXPECT_EQ(pluggable.delivered_bytes, seed.delivered_bytes) << where;
    }
  }
}

TEST(TransportDifferential, OneHop) {
  assert_seam_invisible(topo::ScenarioSpec::one_hop());
}

TEST(TransportDifferential, TwoHop) {
  assert_seam_invisible(topo::ScenarioSpec::two_hop());
}

TEST(TransportDifferential, ThreeHop) {
  assert_seam_invisible(topo::ScenarioSpec::three_hop());
}

TEST(TransportDifferential, Fig6Star) {
  assert_seam_invisible(topo::ScenarioSpec::fig6_star());
}

TEST(TransportDifferential, Chain5) {
  assert_seam_invisible(topo::ScenarioSpec::chain(5));
}

TEST(TransportDifferential, Star3) {
  assert_seam_invisible(topo::ScenarioSpec::star(3));
}

TEST(TransportDifferential, Grid3x3) {
  assert_seam_invisible(topo::ScenarioSpec::grid(3, 3));
}

}  // namespace
}  // namespace hydra
