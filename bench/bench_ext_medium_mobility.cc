// Extension: medium mobility — incremental detach/move maintenance
// against full delivery-list rebuilds at N = 1000. Not a paper figure;
// it charts the cost model behind Medium::move_node / Medium::detach:
//
//   1. Workload shape: the 25×40 flooded grid run statically, under
//      waypoint motion and under join/leave churn. The motion counters
//      (moves, incremental moves, detaches, rebuilds) are deterministic
//      and baseline-gated; trace-digest parity across backends is
//      pinned by the mobility_determinism test suite.
//   2. Maintenance scaling: the same 1000 PHYs churned through
//      move_node's incremental patch path versus the from-scratch
//      rebuild a naive medium would run per position change. The
//      incremental path touches only the two 3×3 cell neighborhoods a
//      move crosses, so its per-op wall cost should sit well under a
//      rebuild's; the "lists" column pins that both paths end at the
//      same delivery lists.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "phy/phy.h"
#include "sim/rng.h"
#include "util/assert.h"

using namespace hydra;

namespace {

topo::ExperimentConfig flood_config(topo::MobilityKind kind) {
  topo::ExperimentConfig cfg;
  cfg.scenario = topo::ScenarioSpec::grid(25, 40);
  // 10 m spacing, as in bench_ext_medium_shard: the reach radius
  // (~36.5 m) covers a few lattice rings, so moves genuinely change
  // the delivery lists.
  cfg.scenario.spacing_m = 10.0;
  cfg.scenario.sessions.clear();
  cfg.scenario.medium.policy = topo::MediumPolicy::kCulled;
  cfg.scenario.mobility.kind = kind;
  cfg.scenario.mobility.update_interval = sim::Duration::millis(250);
  cfg.scenario.mobility.stop_after = sim::Duration::seconds(2);
  cfg.flooding = true;
  cfg.flood_interval = sim::Duration::millis(250);
  cfg.flood_payload_bytes = 40;
  cfg.max_sim_time = sim::Duration::seconds(2);
  return cfg;
}

double wall_since(std::chrono::steady_clock::time_point started) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started)
      .count();
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: medium mobility",
      "incremental detach/move maintenance beats per-move rebuilds",
      "N = 1000 flooded grid under waypoint motion and churn, then the "
      "same 1000 PHYs moved through the incremental patch path vs a "
      "from-scratch rebuild per move.");

  // ---- Flooding load under motion ----------------------------------
  stats::Table flood_table({"scenario", "nodes", "tx frames", "deliveries",
                            "moves", "incr moves", "detaches", "rebuilds",
                            "wall s"});
  for (const auto kind :
       {topo::MobilityKind::kNone, topo::MobilityKind::kWaypoint,
        topo::MobilityKind::kChurn}) {
    const auto cfg = flood_config(kind);
    const auto started = std::chrono::steady_clock::now();
    const auto result = app::run_experiment(cfg);
    const double wall = wall_since(started);
    flood_table.add_row(
        {cfg.scenario.label() + "/" + topo::to_string(kind),
         std::to_string(cfg.scenario.node_count()),
         std::to_string(result.phy_transmissions),
         std::to_string(result.phy_deliveries),
         std::to_string(result.phy_moves),
         std::to_string(result.phy_incremental_moves),
         std::to_string(result.phy_detaches),
         std::to_string(result.phy_rebuilds), stats::Table::num(wall, 3)});
  }
  bench::emit(flood_table);

  // ---- Incremental moves vs per-move rebuilds ----------------------
  // The same 1000 PHYs attached to a culled medium; random in-bounds
  // moves go through move_node (the incremental path), and the
  // reference rebuilds the whole backend once per move — what a medium
  // without incremental maintenance would be forced to do.
  const auto spec = flood_config(topo::MobilityKind::kNone).scenario;
  const auto positions = spec.positions();
  const auto bounds = spec.world_bounds();
  const phy::MediumConfig medium_config = spec.medium_config();
  sim::Simulation sim(1);
  phy::Medium medium(sim, medium_config);
  std::vector<std::unique_ptr<phy::Phy>> phy_storage;
  std::vector<phy::Phy*> phys;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    phy_storage.push_back(std::make_unique<phy::Phy>(
        sim, medium, phy::PhyConfig{.position = positions[i]},
        static_cast<std::uint32_t>(i)));
    phys.push_back(phy_storage.back().get());
  }

  const auto lists_total = [](const phy::DeliveryBackend& backend,
                              const std::vector<phy::Phy*>& sources) {
    std::uint64_t lists = 0;
    for (const phy::Phy* phy : sources) {
      lists += backend.deliveries(*phy).size();
    }
    return lists;
  };

  // The move schedule is shared by both paths so they end at identical
  // positions (and therefore identical delivery lists).
  constexpr int kMoves = 500;
  sim::Rng schedule_rng(7);
  std::vector<std::pair<std::uint32_t, phy::Position>> schedule;
  for (int i = 0; i < kMoves; ++i) {
    const auto target = static_cast<std::uint32_t>(
        schedule_rng.uniform() * static_cast<double>(phys.size()));
    schedule.push_back(
        {target % static_cast<std::uint32_t>(phys.size()),
         phy::Position{bounds.min.x_m + schedule_rng.uniform() * bounds.width_m(),
                       bounds.min.y_m + schedule_rng.uniform() * bounds.height_m()}});
  }

  (void)medium.backend();  // build the initial lists outside the timing
  auto started = std::chrono::steady_clock::now();
  for (const auto& [target, destination] : schedule) {
    medium.move_node(*phys[target], destination);
  }
  (void)medium.backend();  // settle (no-op when every move was absorbed)
  const double incremental_ms = wall_since(started) * 1e3;
  HYDRA_ASSERT_MSG(medium.incremental_moves() == kMoves,
                   "an in-bounds move fell off the incremental path");
  const std::uint64_t incremental_lists = lists_total(medium.backend(), phys);

  // Reference: a second PHY set (so the medium above keeps its patched
  // state for the parity check) with a standalone backend rebuilt from
  // scratch after every move of the same schedule.
  sim::Simulation ref_sim(1);
  phy::Medium ref_medium(ref_sim, medium_config);
  std::vector<std::unique_ptr<phy::Phy>> ref_storage;
  std::vector<phy::Phy*> ref_phys;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    ref_storage.push_back(std::make_unique<phy::Phy>(
        ref_sim, ref_medium, phy::PhyConfig{.position = positions[i]},
        static_cast<std::uint32_t>(i)));
    ref_phys.push_back(ref_storage.back().get());
  }
  const auto rebuild_backend =
      phy::make_delivery_backend(phy::DeliveryPolicy::kCulled);
  rebuild_backend->rebuild(ref_phys, medium_config);  // warm-up
  // Rebuilding per move is quadratic-ish work; time a slice of the
  // schedule and scale, so the bench stays fast.
  constexpr int kRebuildSample = 50;
  started = std::chrono::steady_clock::now();
  for (int i = 0; i < kRebuildSample; ++i) {
    const auto& [target, destination] = schedule[i];
    ref_medium.move_node(*ref_phys[target], destination);
    rebuild_backend->rebuild(ref_phys, medium_config);
  }
  const double rebuild_sample_ms = wall_since(started) * 1e3;
  const double rebuild_ms_per_op = rebuild_sample_ms / kRebuildSample;
  // Apply the rest of the schedule untimed, then rebuild once: both
  // paths must land on identical totals.
  for (int i = kRebuildSample; i < kMoves; ++i) {
    const auto& [target, destination] = schedule[i];
    ref_medium.move_node(*ref_phys[target], destination);
  }
  rebuild_backend->rebuild(ref_phys, medium_config);
  const std::uint64_t rebuild_lists = lists_total(*rebuild_backend, ref_phys);
  HYDRA_ASSERT_MSG(rebuild_lists == incremental_lists,
                   "incremental maintenance diverged from rebuilding");

  stats::Table move_table({"path", "moves", "incremental", "lists",
                           "wall ms/op", "wall speedup"});
  const double incremental_ms_per_op = incremental_ms / kMoves;
  move_table.add_row({"move_node incremental", std::to_string(kMoves),
                      std::to_string(medium.incremental_moves()),
                      std::to_string(incremental_lists),
                      stats::Table::num(incremental_ms_per_op, 3),
                      stats::Table::num(
                          rebuild_ms_per_op / incremental_ms_per_op, 1)});
  move_table.add_row({"rebuild per move", std::to_string(kMoves), "0",
                      std::to_string(rebuild_lists),
                      stats::Table::num(rebuild_ms_per_op, 3),
                      stats::Table::num(1.0, 1)});
  bench::emit(move_table);

  // ---- Incremental detach/re-attach (join/leave churn) -------------
  constexpr int kChurns = 200;
  sim::Rng churn_rng(11);
  started = std::chrono::steady_clock::now();
  for (int i = 0; i < kChurns; ++i) {
    phy::Phy& target = *phys[static_cast<std::size_t>(
        churn_rng.uniform() * static_cast<double>(phys.size())) %
                             phys.size()];
    medium.detach(target);
    medium.attach(target);
    (void)medium.backend();
  }
  const double churn_ms = wall_since(started) * 1e3;
  HYDRA_ASSERT_MSG(medium.incremental_detaches() == kChurns,
                   "a detach fell off the incremental path");
  HYDRA_ASSERT_MSG(lists_total(medium.backend(), phys) == incremental_lists,
                   "detach/re-attach churn did not restore the lists");

  stats::Table churn_table(
      {"path", "cycles", "incr detaches", "rebuilds", "wall ms/op"});
  churn_table.add_row({"detach+attach incremental", std::to_string(kChurns),
                       std::to_string(medium.incremental_detaches()),
                       std::to_string(medium.rebuilds()),
                       stats::Table::num(churn_ms / kChurns, 3)});
  bench::emit(churn_table);

  bench::comment(
      "\nExpected shape: every in-bounds move and every detach is absorbed "
      "incrementally (incr == ops, rebuilds stays at the initial build), "
      "and the \"lists\" column is identical for the incremental and "
      "rebuild-per-move paths — same positions, same lists.");
  bench::comment(
      "Scaling: the incremental path recomputes only the two 3x3 cell "
      "neighborhoods a move touches, so its wall ms/op should sit an "
      "order of magnitude under the per-move rebuild at N = 1000.");
  return 0;
}
