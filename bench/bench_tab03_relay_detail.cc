// Table 3: 2-hop relay-node detail — average frame size, transmissions
// (as % of the NA count) and size overhead for NA / UA / BA / DBA.
//
// Paper: 765B/2662B/2727B/3477B frame sizes; 100/33.7/26.7/21.1% TXs;
// 15.1/6.83/6.55/5.8% size overhead.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Table 3", "2-hop relay node detail (TCP)",
                      "Size overhead = (MAC+PHY header bytes)/total bytes.");

  struct Row {
    const char* name;
    core::AggregationPolicy policy;
  };
  const Row rows[] = {
      {"NA", core::AggregationPolicy::na()},
      {"UA", core::AggregationPolicy::ua()},
      {"BA", core::AggregationPolicy::ba()},
      {"DBA", core::AggregationPolicy::dba(3)},
  };

  constexpr std::size_t kModeIdx = 0;  // 0.65 Mbps
  stats::Table table({"Scheme", "Frame Size", "Total TXs", "Size overhead"});
  std::uint64_t na_frames = 0;
  for (const auto& row : rows) {
    const auto r = app::run_experiment(
        bench::tcp_config(topo::ScenarioSpec::two_hop(), row.policy, kModeIdx));
    const auto& relay = r.relay_stats();
    if (na_frames == 0) na_frames = relay.data_frames_tx;
    table.add_row(
        {row.name, stats::Table::bytes(relay.avg_frame_bytes()),
         stats::Table::percent(static_cast<double>(relay.data_frames_tx) /
                               static_cast<double>(na_frames)),
         stats::Table::percent(
             stats::size_overhead(relay, proto::mode_by_index(kModeIdx)), 2)});
  }
  bench::emit(table);
  bench::comment("\nPaper:      765B / 2662B / 2727B / 3477B;"
              "  100 / 33.7 / 26.7 / 21.1%%;  15.1 / 6.83 / 6.55 / 5.8%%.");
  return 0;
}
