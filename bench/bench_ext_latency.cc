// Extension bench: the latency cost of aggregation.
//
// Throughput is only half the story — aggregation (and especially the
// delayed variant) holds frames to build bigger aggregates. This bench
// pings across a 2-hop relay while a TCP transfer occupies the channel
// and reports the probe RTT under each policy.
#include "bench_common.h"

#include <memory>
#include <vector>

#include "app/file_transfer.h"
#include "app/ping.h"
#include "net/node.h"
#include "phy/medium.h"
#include "sim/simulation.h"

using namespace hydra;

namespace {

struct LatencyResult {
  double avg_ms;
  double max_ms;
  double loss;
};

LatencyResult run(const core::AggregationPolicy& policy, std::uint64_t seed) {
  sim::Simulation simulation(seed);
  phy::Medium medium(simulation);

  std::vector<std::unique_ptr<net::Node>> nodes;
  for (std::uint32_t i = 0; i < 3; ++i) {
    net::NodeConfig nc;
    nc.position = {2.5 * i, 0};
    nc.policy = policy;
    // Paper applies the delay at relays only.
    if (i != 1) nc.policy.delay_min_subframes = 0;
    nc.unicast_mode = proto::mode_by_index(1);
    nc.broadcast_mode = proto::mode_by_index(1);
    nodes.push_back(std::make_unique<net::Node>(simulation, medium, i, nc));
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      nodes[i]->routes().add_route(proto::Ipv4Address::for_node(j),
                                   proto::Ipv4Address::for_node(j > i ? i + 1
                                                                    : i - 1));
    }
  }

  // Background TCP load 0 -> 2 for the whole window.
  app::FileReceiverApp receiver(simulation, *nodes[2], 5001, 2'000'000);
  app::FileSenderApp sender(simulation, *nodes[0],
                            {proto::Ipv4Address::for_node(2), 5001},
                            2'000'000);
  sender.start();

  // Probes 0 -> 2 -> 0.
  app::PingResponderApp responder(*nodes[2], 9200);
  app::PingConfig pc;
  pc.destination = {proto::Ipv4Address::for_node(2), 9200};
  pc.interval = sim::Duration::millis(150);
  app::PingApp ping(simulation, *nodes[0], pc);
  ping.start();

  simulation.run_until(sim::TimePoint::at(sim::Duration::seconds(25)));
  return {ping.avg_rtt().millis_f(), ping.max_rtt().millis_f(),
          ping.loss_fraction()};
}

}  // namespace

int main() {
  bench::print_header("Extension: latency under load",
                      "2-hop probe RTT while TCP saturates the relay",
                      "Probes every 150 ms at 1.3 Mbps.");

  struct Scheme {
    const char* name;
    core::AggregationPolicy policy;
  };
  const Scheme schemes[] = {
      {"NA", core::AggregationPolicy::na()},
      {"UA", core::AggregationPolicy::ua()},
      {"BA", core::AggregationPolicy::ba()},
      {"DBA", core::AggregationPolicy::dba(3)},
  };

  stats::Table table({"Scheme", "avg RTT (ms)", "max RTT (ms)", "loss"});
  for (const auto& scheme : schemes) {
    double avg = 0, mx = 0, loss = 0;
    constexpr int kRuns = 3;
    for (int seed = 1; seed <= kRuns; ++seed) {
      const auto r = run(scheme.policy, static_cast<std::uint64_t>(seed));
      avg += r.avg_ms / kRuns;
      mx = std::max(mx, r.max_ms);
      loss += r.loss / kRuns;
    }
    table.add_row({scheme.name, stats::Table::num(avg, 1),
                   stats::Table::num(mx, 1), stats::Table::percent(loss)});
  }
  bench::emit(table);
  bench::comment("\nExpected: aggregation reduces queueing RTT (fewer, larger "
              "transmissions drain the queue faster); DBA gives some of "
              "that back by holding frames for aggregation.");
  return 0;
}
