// Figure 8: TCP throughput vs PHY data rate with and without unicast
// aggregation, over 2-hop and 3-hop linear topologies.
//
// Paper: UA beats NA on both topologies, and the improvement grows with
// the data rate.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Figure 8", "TCP throughput vs rate, NA vs UA",
                      "One-way 0.2 MB transfer (paper workload).");

  stats::Table table({"Rate (Mbps)", "2-hop NA", "2-hop UA", "3-hop NA",
                      "3-hop UA"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    std::vector<std::string> row = {bench::rate_label(mode_idx)};
    for (const auto& topology :
         {topo::ScenarioSpec::two_hop(), topo::ScenarioSpec::three_hop()}) {
      for (const auto& policy :
           {core::AggregationPolicy::na(), core::AggregationPolicy::ua()}) {
        row.push_back(stats::Table::num(
            bench::avg_throughput(bench::tcp_config(topology, policy,
                                                    mode_idx)),
            3));
      }
    }
    // Reorder: the loop above produced 2NA,2UA,3NA,3UA already.
    table.add_row(std::move(row));
  }
  bench::emit(table);
  bench::comment("\nExpected shape: UA > NA everywhere; the gap widens as the "
              "rate rises.");

  // Ablation (transport seam): the same UA transfers under the three
  // ACK policies. Delayed/adaptive ACKs halve the reverse-channel MAC
  // contention (fewer pure-ACK frames competing with data for airtime);
  // the adaptive policy additionally tunes its delay to the measured
  // inter-segment gap, i.e. the MAC aggregation interval.
  stats::Table ack_table({"Rate (Mbps)", "2-hop imm", "2-hop del",
                          "2-hop adpt", "3-hop imm", "3-hop del",
                          "3-hop adpt"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    std::vector<std::string> row = {bench::rate_label(mode_idx)};
    for (const auto& topology :
         {topo::ScenarioSpec::two_hop(), topo::ScenarioSpec::three_hop()}) {
      for (const auto ack :
           {transport::AckScheme::kImmediate, transport::AckScheme::kDelayed,
            transport::AckScheme::kAdaptive}) {
        auto cfg = bench::tcp_config(topology, core::AggregationPolicy::ua(),
                                     mode_idx);
        cfg.tcp.tuning.ack = ack;
        row.push_back(
            stats::Table::num(bench::avg_throughput(cfg, false, 3), 3));
      }
    }
    ack_table.add_row(std::move(row));
  }
  bench::emit(ack_table);
  bench::comment("\nAblation shape: fewer reverse-channel ACK frames help "
              "most where ACK airtime is dearest (high rates, more hops).");
  return 0;
}
