// Figure 8: TCP throughput vs PHY data rate with and without unicast
// aggregation, over 2-hop and 3-hop linear topologies.
//
// Paper: UA beats NA on both topologies, and the improvement grows with
// the data rate.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Figure 8", "TCP throughput vs rate, NA vs UA",
                      "One-way 0.2 MB transfer (paper workload).");

  stats::Table table({"Rate (Mbps)", "2-hop NA", "2-hop UA", "3-hop NA",
                      "3-hop UA"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    std::vector<std::string> row = {bench::rate_label(mode_idx)};
    for (const auto& topology :
         {topo::ScenarioSpec::two_hop(), topo::ScenarioSpec::three_hop()}) {
      for (const auto& policy :
           {core::AggregationPolicy::na(), core::AggregationPolicy::ua()}) {
        row.push_back(stats::Table::num(
            bench::avg_throughput(bench::tcp_config(topology, policy,
                                                    mode_idx)),
            3));
      }
    }
    // Reorder: the loop above produced 2NA,2UA,3NA,3UA already.
    table.add_row(std::move(row));
  }
  bench::emit(table);
  bench::comment("\nExpected shape: UA > NA everywhere; the gap widens as the "
              "rate rises.");
  return 0;
}
