// Extension bench (paper §7 future work): block ACK.
//
// Past the channel-coherence cliff the paper's all-or-nothing receive
// rule discards entire aggregates (Fig. 7's collapse). With a block-ACK
// bitmap the good prefix survives and only the stale tail retransmits.
// This bench quantifies that: 1-hop UDP throughput vs aggregation size,
// with and without block ACK.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Extension: block ACK",
                      "Throughput past the aggregation cliff",
                      "1-hop UDP at 0.65 Mbps; cliff at ~5 KB.");

  stats::Table table({"Agg size (KB)", "All-or-nothing", "Block ACK"});
  for (const std::size_t kb : {2, 4, 5, 6, 8, 12, 16}) {
    std::vector<std::string> row = {std::to_string(kb)};
    for (const bool block_ack : {false, true}) {
      auto cfg = bench::udp_config(topo::ScenarioSpec::one_hop(),
                                   core::AggregationPolicy::ua(), 0);
      cfg.scenario.node.policy.max_aggregate_bytes = kb * 1024;
      cfg.scenario.node.policy.block_ack = block_ack;
      cfg.udp_packets_per_tick = 16;
      row.push_back(stats::Table::num(bench::avg_throughput(cfg), 3));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table);
  bench::comment("\nExpected: identical below the cliff; block ACK degrades "
              "gracefully beyond it instead of collapsing to ~0.");
  return 0;
}
