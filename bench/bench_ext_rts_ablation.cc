// Ablation bench: how much of aggregation's win is saved floor
// acquisitions / control exchange vs saved headers?
//
// Related work (§2) contrasts the paper's design with 802.11n
// bi-directional transfer, which saves floor acquisitions but not
// headers. Disabling RTS/CTS removes most of the per-transmission
// control cost, letting us separate the two effects.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Ablation: RTS/CTS",
                      "2-hop TCP with and without the RTS/CTS exchange",
                      "Gap(NA-UA) with RTS/CTS off isolates header savings.");

  stats::Table table({"Rate (Mbps)", "NA rts", "UA rts", "gain",
                      "NA no-rts", "UA no-rts", "gain"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    std::vector<std::string> row = {bench::rate_label(mode_idx)};
    for (const bool use_rts : {true, false}) {
      double thr[2];
      int i = 0;
      for (const auto& policy :
           {core::AggregationPolicy::na(), core::AggregationPolicy::ua()}) {
        auto cfg = bench::tcp_config(topo::ScenarioSpec::two_hop(), policy,
                                     mode_idx);
        cfg.scenario.node.use_rts_cts = use_rts;
        const double t = bench::avg_throughput(cfg);
        thr[i++] = t;
        row.push_back(stats::Table::num(t, 3));
      }
      row.push_back(stats::Table::percent((thr[1] - thr[0]) / thr[0]));
    }
    table.add_row(std::move(row));
  }
  bench::emit(table);
  return 0;
}
