// Extension: allocation-free hot path at scale — flooded grids up to
// N = 10000 nodes under the culled and sharded media and both
// scheduler policies, plus a pooled-vs-heap ablation. Not a paper
// figure; it charts what the recycling memory subsystem (util::pool,
// SmallFn callbacks, pooled packets/PDUs/transmissions) buys: the
// paper's testbed stops at 6 nodes, and memory churn is what stands
// between an event simulator and city-block topologies.
//
// Unlike the other scale benches this one drives topo::Scenario
// directly instead of going through app::run_experiment, for two
// reasons. First, the meter: run_experiment charges the O(N) scenario
// build to the same counters as the event loop, and at N = 10000 the
// build dwarfs the run — here the allocation and wall meters wrap
// simulation.run_until() alone, so the columns describe the hot path.
// Second, the load: run_experiment staggers flooders 17 ms apart, so a
// short sim only ever ignites the first sim_time/17ms nodes; this bench
// staggers modulo 100, keeping offered load proportional to N.
//
// Table 1 (ablation, run first so the pool's warm state is identical
// on every rerun): one mid-size flood with pooling on vs off. The
// run-loop allocation columns are deterministic in serial mode — the
// exact same event sequence asks for the exact same storage — so they
// are baseline-gated like any other metric; peak RSS and wall time are
// host-dependent and excluded (the driver skips wall/rss columns).
//
// Table 2 (scale): N = 1024 / 4096 / 10000 across {culled, sharded@4}
// × {serial, windows@4}. Transmissions, deliveries, fan-out and
// executed events are pinned by the determinism contract across every
// backend (asserted here before the table is emitted, and gated by the
// baseline); deliveries per wall-second ride along unguarded as the
// throughput-shape column.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "app/flood.h"
#include "bench_common.h"
#include "topo/scenario.h"
#include "util/alloc_stats.h"
#include "util/assert.h"
#include "util/pool.h"

using namespace hydra;

namespace {

constexpr std::uint64_t kSeed = 1;

topo::ScenarioSpec flood_spec(std::size_t rows, std::size_t cols,
                              topo::MediumPolicy medium,
                              std::size_t shard_threads,
                              topo::SchedulerPolicy sched, unsigned workers) {
  auto spec = topo::ScenarioSpec::grid(rows, cols);
  // 10 m spacing: the reach radius (~36.5 m) covers a few rings of the
  // lattice, so culled fan-out stays ~constant as N grows.
  spec.spacing_m = 10.0;
  // No sessions and no static routes: flooding needs no routing graph,
  // and skipping it keeps the N = 10000 build out of the O(N^2)
  // next-hop matrix.
  spec.sessions.clear();
  spec.medium.policy = medium;
  spec.medium.shard_threads = shard_threads;
  spec.scheduler.policy = sched;
  spec.scheduler.workers = workers;
  return spec;
}

double wall_since(std::chrono::steady_clock::time_point started) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started)
      .count();
}

struct Run {
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t events = 0;
  // Hot-path meters: deltas across the event loop only, build excluded.
  std::uint64_t heap_allocations = 0;
  std::uint64_t heap_bytes = 0;
  std::uint64_t pool_requests = 0;
  std::uint64_t pool_recycled = 0;
  std::uint64_t peak_rss_kb = 0;
  double build_wall = 0.0;
  double run_wall = 0.0;
};

Run run_flood(const topo::ScenarioSpec& spec, sim::Duration sim_time) {
  const auto build_started = std::chrono::steady_clock::now();
  auto scenario = topo::Scenario::build(spec, kSeed);

  // Every node floods: 40 B payloads every 250 ms, phases staggered
  // modulo 100 so offered load grows with N instead of saturating at
  // the first sim_time/17ms nodes.
  std::vector<std::unique_ptr<app::FloodApp>> flooders;
  flooders.reserve(scenario.size());
  for (std::uint32_t i = 0; i < scenario.size(); ++i) {
    app::FloodConfig fc;
    fc.payload_bytes = 40;
    fc.interval = sim::Duration::millis(250);
    fc.initial_offset = sim::Duration::millis(17) * (i % 100 + 1);
    flooders.push_back(
        std::make_unique<app::FloodApp>(scenario.sim(), scenario.node(i), fc));
    flooders.back()->start();
  }

  Run run;
  run.build_wall = wall_since(build_started);

  const auto alloc_before = util::alloc_snapshot();
  const auto pool_before = util::BufferPool::stats();
  const auto run_started = std::chrono::steady_clock::now();
  scenario.sim().run_until(sim::TimePoint::at(sim_time));
  run.run_wall = wall_since(run_started);
  const auto alloc_after = util::alloc_snapshot();
  const auto pool_after = util::BufferPool::stats();

  run.transmissions = scenario.medium().transmissions_started();
  run.deliveries = scenario.medium().deliveries_scheduled();
  run.events = scenario.sim().scheduler().executed_events();
  run.heap_allocations = alloc_after.allocations - alloc_before.allocations;
  run.heap_bytes = alloc_after.bytes - alloc_before.bytes;
  run.pool_requests = pool_after.requests - pool_before.requests;
  run.pool_recycled = pool_after.recycled - pool_before.recycled;
  run.peak_rss_kb = util::peak_rss_kb();
  return run;
}

void ablation_table() {
  // 32×32 = 1024 nodes, culled medium, serial scheduler: one thread,
  // one shard, so the run-loop allocation counters are exact.
  const auto spec =
      flood_spec(32, 32, topo::MediumPolicy::kCulled, 0,
                 topo::SchedulerPolicy::kSerial, 1);
  const auto sim_time = sim::Duration::seconds(2);

  util::set_pooling_enabled(true);
  const Run pooled = run_flood(spec, sim_time);
  util::set_pooling_enabled(false);
  const Run heap = run_flood(spec, sim_time);
  util::set_pooling_enabled(true);

  // Storage origin must be invisible to the simulation itself.
  HYDRA_ASSERT_MSG(pooled.transmissions == heap.transmissions &&
                       pooled.deliveries == heap.deliveries &&
                       pooled.events == heap.events,
                   "pooling changed the simulation itself");

  stats::Table table({"memory path", "events", "run heap allocs",
                      "allocs/event", "run heap MB", "pool req", "recycled",
                      "recycle %", "peak rss MB", "run wall s"});
  const auto add = [&table](const char* label, const Run& run) {
    const double events = static_cast<double>(run.events ? run.events : 1);
    table.add_row(
        {label, std::to_string(run.events),
         std::to_string(run.heap_allocations),
         stats::Table::num(static_cast<double>(run.heap_allocations) / events,
                           4),
         stats::Table::num(static_cast<double>(run.heap_bytes) / 1e6, 1),
         std::to_string(run.pool_requests), std::to_string(run.pool_recycled),
         stats::Table::num(
             run.pool_requests
                 ? 100.0 * static_cast<double>(run.pool_recycled) /
                       static_cast<double>(run.pool_requests)
                 : 0.0,
             1),
         stats::Table::num(static_cast<double>(run.peak_rss_kb) / 1024.0, 1),
         stats::Table::num(run.run_wall, 3)});
  };
  add("pooled", pooled);
  add("heap", heap);
  bench::emit(table);

  const double ratio =
      static_cast<double>(heap.heap_allocations) /
      static_cast<double>(pooled.heap_allocations ? pooled.heap_allocations
                                                  : 1);
  bench::comment("N = 1024 flood, culled medium, serial scheduler; meters "
                 "wrap the event loop only. Pooling cuts operator-new "
                 "traffic %.1fx (recycle rate %.1f%%); identical "
                 "events/transmissions both ways.",
                 ratio,
                 pooled.pool_requests
                     ? 100.0 * static_cast<double>(pooled.pool_recycled) /
                           static_cast<double>(pooled.pool_requests)
                     : 0.0);
}

void scale_table() {
  struct Size {
    std::size_t rows, cols;
    sim::Duration sim_time;
  };
  // Larger worlds get shorter sim spans so offered load per run stays
  // comparable; the point is allocation and delivery-rate shape versus
  // N, not total event count.
  const Size sizes[] = {{32, 32, sim::Duration::seconds(2)},
                        {64, 64, sim::Duration::seconds(1)},
                        {100, 100, sim::Duration::millis(500)}};
  struct Config {
    const char* label;
    topo::MediumPolicy medium;
    std::size_t shard_threads;
    topo::SchedulerPolicy sched;
    unsigned workers;
  };
  const Config configs[] = {
      {"culled/serial", topo::MediumPolicy::kCulled, 0,
       topo::SchedulerPolicy::kSerial, 1},
      {"culled/win4", topo::MediumPolicy::kCulled, 0,
       topo::SchedulerPolicy::kParallelWindows, 4},
      {"sharded4/serial", topo::MediumPolicy::kSharded, 4,
       topo::SchedulerPolicy::kSerial, 1},
      {"sharded4/win4", topo::MediumPolicy::kSharded, 4,
       topo::SchedulerPolicy::kParallelWindows, 4},
  };

  stats::Table table({"config", "nodes", "tx frames", "deliveries",
                      "fan-out", "events", "Mdeliv/s run wall", "run wall s",
                      "build wall s"});
  for (const Size& size : sizes) {
    const std::size_t nodes = size.rows * size.cols;
    std::vector<Run> runs;
    for (const Config& c : configs) {
      runs.push_back(run_flood(flood_spec(size.rows, size.cols, c.medium,
                                          c.shard_threads, c.sched, c.workers),
                               size.sim_time));
    }
    // The determinism contract, asserted before publication: same
    // traffic and same event sequence under every backend pairing.
    const Run& reference = runs.front();
    for (const Run& run : runs) {
      HYDRA_ASSERT_MSG(run.transmissions == reference.transmissions &&
                           run.deliveries == reference.deliveries &&
                           run.events == reference.events,
                       "delivery backends diverged on a flooded grid");
    }
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const Run& run = runs[i];
      char label[64];
      std::snprintf(label, sizeof label, "N=%zu/%s", nodes, configs[i].label);
      table.add_row(
          {label, std::to_string(nodes), std::to_string(run.transmissions),
           std::to_string(run.deliveries),
           stats::Table::num(static_cast<double>(run.deliveries) /
                                 static_cast<double>(run.transmissions),
                             1),
           std::to_string(run.events),
           stats::Table::num(static_cast<double>(run.deliveries) /
                                 run.run_wall / 1e6,
                             2),
           stats::Table::num(run.run_wall, 3),
           stats::Table::num(run.build_wall, 3)});
    }
  }
  bench::emit(table);
  bench::comment("Mdeliv/s run wall is millions of scheduled deliveries per "
                 "host second, event loop only. Expected shape: culled "
                 "fan-out stays ~flat as N grows (10 m lattice, fixed "
                 "reach), so deliveries/sec holds roughly steady 1k -> 10k "
                 "instead of collapsing with N.");
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: allocation-free scale (N = 10k)",
      "pooled memory path on flooded grids, 1024 to 10000 nodes",
      "Every node floods 40 B every 250 ms on a 10 m lattice. Table 1 "
      "ablates pooled vs heap storage (identical simulations, gated "
      "run-loop allocation counts); table 2 scales N across "
      "medium/scheduler backends.");
  bench::record_threads(4);  // the sharded/windowed rows use 4 workers
  ablation_table();
  scale_table();
  return 0;
}
