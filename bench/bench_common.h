// Shared helpers for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper; the helpers standardize
// configuration and formatting.
#pragma once

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "app/experiment.h"
#include "core/policy.h"
#include "proto/mode.h"
#include "stats/metrics.h"
#include "stats/table.h"
#include "topo/experiment.h"

namespace hydra::bench {

namespace detail {

// Accumulates the bench header, every table passed to emit() and every
// bench::comment() line so the process can mirror them to
// BENCH_<id>.json at exit (the `bench_all` build target collects
// these). The comments carry the free-form commentary — the "Paper: ..."
// comparison footers and expected-shape notes — so the JSON reports are
// self-describing without the stdout stream.
struct JsonReport {
  std::string id;
  std::string paper_result;
  std::string note;
  // Worker threads the bench's parallel sections used (1 = serial);
  // bench_driver.py folds it into the per-bench metadata so baseline
  // diffs across machines stay interpretable.
  unsigned threads = 1;
  // Sweep-cache accounting as a pre-rendered JSON object ("" = the
  // bench ran no disk-backed sweep); bench_driver.py aggregates these
  // into BENCH_REPORT.json so a rerun shows how much it skipped.
  std::string sweep_cache_json;
  std::vector<std::string> tables_json;
  std::vector<std::string> comments;
};

inline JsonReport& json_report() {
  static JsonReport report;
  return report;
}

inline std::string slug(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

inline void write_json_report() {
  using stats::append_json_string;
  const auto& report = json_report();
  if (report.id.empty()) return;
  std::string doc = "{\"bench\": ";
  append_json_string(doc, report.id);
  doc += ", \"paper_result\": ";
  append_json_string(doc, report.paper_result);
  doc += ", \"note\": ";
  append_json_string(doc, report.note);
  doc += ", \"threads\": " + std::to_string(report.threads);
  if (!report.sweep_cache_json.empty()) {
    doc += ", \"sweep_cache\": " + report.sweep_cache_json;
  }
  doc += ", \"tables\": [";
  for (std::size_t i = 0; i < report.tables_json.size(); ++i) {
    if (i > 0) doc += ", ";
    doc += report.tables_json[i];
  }
  doc += "], \"comments\": [";
  for (std::size_t i = 0; i < report.comments.size(); ++i) {
    if (i > 0) doc += ", ";
    append_json_string(doc, report.comments[i]);
  }
  doc += "]}\n";
  const std::string path = "BENCH_" + slug(report.id) + ".json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
  }
}

}  // namespace detail

// Prints a table to stdout and records it for the JSON report.
inline void emit(const stats::Table& table) {
  table.print();
  detail::json_report().tables_json.push_back(table.to_json());
}

// Records a sweep cache's hit/miss accounting in the JSON report. Pass
// the counters, not the cache, so this header stays independent of
// app/sweep.h. memory_hits counts in-process serves, disk_hits serves
// from the persistent directory (a rerun's "skipped unchanged figure"
// count), misses points simulated from scratch.
inline void record_sweep_cache(std::size_t size, std::uint64_t memory_hits,
                               std::uint64_t disk_hits,
                               std::uint64_t disk_stores,
                               std::uint64_t misses) {
  detail::json_report().sweep_cache_json =
      "{\"size\": " + std::to_string(size) +
      ", \"memory_hits\": " + std::to_string(memory_hits) +
      ", \"disk_hits\": " + std::to_string(disk_hits) +
      ", \"disk_stores\": " + std::to_string(disk_stores) +
      ", \"misses\": " + std::to_string(misses) + "}";
}

// Records the worker-thread count a bench's parallel sections ran with
// (the JSON report's "threads" field; defaults to 1 for the serial
// benches). Wall-clock columns from a 4-thread run and a 1-thread run
// are not comparable — this is the metadata that says which is which.
inline void record_threads(unsigned threads) {
  detail::json_report().threads = threads == 0 ? 1 : threads;
}

// Prints a line of free-form commentary (paper comparisons, expected
// shapes, sweep notes) and records it in the JSON report's "comments"
// array. Leading/trailing whitespace is stripped from the recorded form
// so callers can keep their stdout spacing (e.g. a leading "\n").
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
inline void
comment(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  const int written = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (written < 0) return;  // encoding error: buf is indeterminate
  std::printf("%s\n", buf);
  std::string recorded = buf;
  const auto first = recorded.find_first_not_of(" \t\n");
  const auto last = recorded.find_last_not_of(" \t\n");
  recorded = first == std::string::npos
                 ? std::string{}
                 : recorded.substr(first, last - first + 1);
  if (!recorded.empty()) detail::json_report().comments.push_back(recorded);
}

// The four rates the paper's experiments use (§5).
inline const std::vector<std::size_t> kPaperModeIndices = {0, 1, 2, 3};

inline std::string rate_label(std::size_t mode_idx) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.2f",
                proto::mode_by_index(mode_idx).rate.mbps());
  return buf;
}

// Builds a TCP experiment at one rate (broadcast rate = unicast rate).
inline topo::ExperimentConfig tcp_config(topo::ScenarioSpec scenario,
                                         core::AggregationPolicy policy,
                                         std::size_t mode_idx,
                                         std::uint64_t file_bytes = 200'000) {
  topo::ExperimentConfig cfg;
  cfg.scenario = std::move(scenario);
  cfg.scenario.node.policy = policy;
  cfg.traffic = topo::TrafficKind::kTcp;
  cfg.tcp_file_bytes = file_bytes;
  cfg.scenario.node.unicast_mode = proto::mode_by_index(mode_idx);
  cfg.scenario.node.broadcast_mode = proto::mode_by_index(mode_idx);
  return cfg;
}

// Builds a saturating UDP experiment at one rate.
inline topo::ExperimentConfig udp_config(topo::ScenarioSpec scenario,
                                         core::AggregationPolicy policy,
                                         std::size_t mode_idx) {
  topo::ExperimentConfig cfg;
  cfg.scenario = std::move(scenario);
  cfg.scenario.node.policy = policy;
  cfg.traffic = topo::TrafficKind::kUdp;
  cfg.scenario.node.unicast_mode = proto::mode_by_index(mode_idx);
  cfg.scenario.node.broadcast_mode = proto::mode_by_index(mode_idx);
  cfg.udp_interval = sim::Duration::millis(100);
  cfg.udp_packets_per_tick = 8;  // saturates every paper rate
  cfg.udp_duration = sim::Duration::seconds(20);
  return cfg;
}

inline void print_header(const char* id, const char* paper_result,
                         const char* note) {
  std::printf("== %s — %s ==\n", id, paper_result);
  if (note && note[0]) std::printf("%s\n", note);
  auto& report = detail::json_report();
  report.id = id;
  report.paper_result = paper_result;
  report.note = note ? note : "";
  std::atexit(detail::write_json_report);
}

// Number of independent runs each data point is averaged over (the
// paper's testbed numbers are averages of repeated transfers; DCF
// collision luck makes single runs noisy).
inline constexpr int kDefaultRuns = 5;

// Mean of `metric` over `runs` seeds.
template <typename F>
double avg_metric(topo::ExperimentConfig cfg, F metric,
                  int runs = kDefaultRuns) {
  double sum = 0.0;
  for (int seed = 1; seed <= runs; ++seed) {
    cfg.seed = static_cast<std::uint64_t>(seed);
    sum += metric(app::run_experiment(cfg));
  }
  return sum / runs;
}

// Mean first-flow (or worst-flow) throughput over `runs` seeds.
inline double avg_throughput(const topo::ExperimentConfig& cfg,
                             bool worst_case = false,
                             int runs = kDefaultRuns) {
  return avg_metric(
      cfg,
      [worst_case](const topo::ExperimentResult& r) {
        return worst_case ? r.worst_throughput_mbps()
                          : r.flows[0].throughput_mbps;
      },
      runs);
}

}  // namespace hydra::bench
