// Table 8: average frame size at every node (server, relays, client) for
// UA and BA over 2-hop and 3-hop topologies.
//
// Paper: relay aggregation grows with hop count — the UA-vs-BA frame
// size difference at the relay is 65B for 2 hops but 154B/446B at the
// two relays of the 3-hop chain.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Table 8", "Frame size at all nodes, 2-hop and 3-hop",
                      "Node 0 = TCP server (file sender); last = client.");

  constexpr std::size_t kModeIdx = 0;
  const auto run = [&](const topo::ScenarioSpec& t, core::AggregationPolicy p) {
    return app::run_experiment(bench::tcp_config(t, p, kModeIdx));
  };

  const auto ua2 = run(topo::ScenarioSpec::two_hop(), core::AggregationPolicy::ua());
  const auto ba2 = run(topo::ScenarioSpec::two_hop(), core::AggregationPolicy::ba());
  const auto ua3 =
      run(topo::ScenarioSpec::three_hop(), core::AggregationPolicy::ua());
  const auto ba3 =
      run(topo::ScenarioSpec::three_hop(), core::AggregationPolicy::ba());

  const auto size = [](const topo::ExperimentResult& r, std::size_t node) {
    return stats::Table::bytes(r.node_stats[node].avg_frame_bytes());
  };

  stats::Table table({"Scheme", "Server(2)", "Relay(2)", "Client(2)",
                      "Server(3)", "Relay1(3)", "Relay2(3)", "Client(3)"});
  table.add_row({"UA", size(ua2, 0), size(ua2, 1), size(ua2, 2), size(ua3, 0),
                 size(ua3, 1), size(ua3, 2), size(ua3, 3)});
  table.add_row({"BA", size(ba2, 0), size(ba2, 1), size(ba2, 2), size(ba3, 0),
                 size(ba3, 1), size(ba3, 2), size(ba3, 3)});
  bench::emit(table);
  bench::comment("\nPaper UA: 3897 / 2662 / 463 / 3451 / 2384 / 2224 / 443 B\n"
              "Paper BA: 3488 / 2727 / 447 / 3313 / 2538 / 2670 / 430 B");
  return 0;
}
