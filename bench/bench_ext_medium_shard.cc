// Extension: medium sharding — the kSharded delivery backend against
// its serial siblings at N = 1000. Not a paper figure; it charts the
// two halves of the sharding contract:
//
//   1. Parity: a 2 s flooding load on the 25×40 grid must schedule
//      exactly the deliveries kCulled schedules (the deterministic
//      deliv/frame cells are baseline-gated; the trace-digest half of
//      the contract is pinned by the shard_determinism test suite).
//   2. Scaling: repeated delivery-list rebuilds — the dynamic-topology
//      churn a mobility workload would generate — fanned across the
//      persistent worker pool. The "lists" column (total precomputed
//      deliveries) is identical for every backend by construction; the
//      wall columns show the stripe parallelism, ≥2× at 4 threads on a
//      host with ≥4 cores.
#include <chrono>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "phy/phy.h"
#include "util/assert.h"

using namespace hydra;

namespace {

constexpr unsigned kThreads = 4;

topo::ExperimentConfig flood_config(topo::MediumPolicy policy) {
  topo::ExperimentConfig cfg;
  cfg.scenario = topo::ScenarioSpec::grid(25, 40);
  // 10 m spacing: the reach radius (~36.5 m) covers a few rings of the
  // lattice, and the 390 m wide world spans ~11 grid cell columns — the
  // stripes the sharded backend actually cuts.
  cfg.scenario.spacing_m = 10.0;
  cfg.scenario.sessions.clear();
  cfg.scenario.medium.policy = policy;
  cfg.scenario.medium.shard_threads = kThreads;
  cfg.flooding = true;
  cfg.flood_interval = sim::Duration::millis(250);
  cfg.flood_payload_bytes = 40;
  cfg.max_sim_time = sim::Duration::seconds(2);
  return cfg;
}

double wall_since(std::chrono::steady_clock::time_point started) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started)
      .count();
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: medium sharding",
      "sharded delivery == culled delivery, computed across a worker pool",
      "N = 1000 flooded grid: delivery parity per frame, then repeated "
      "delivery-list rebuilds (mobility-style churn) at 1/2/4 stripe "
      "workers.");
  bench::record_threads(kThreads);

  // ---- Parity under a flooding load --------------------------------
  stats::Table flood_table({"scenario", "nodes", "tx frames", "deliveries",
                            "deliv/frame", "shards", "wall s"});
  for (const auto policy :
       {topo::MediumPolicy::kFullMesh, topo::MediumPolicy::kCulled,
        topo::MediumPolicy::kSharded}) {
    const auto cfg = flood_config(policy);
    const auto started = std::chrono::steady_clock::now();
    const auto result = app::run_experiment(cfg);
    const double wall = wall_since(started);
    const double per_frame =
        result.phy_transmissions == 0
            ? 0.0
            : static_cast<double>(result.phy_deliveries) /
                  static_cast<double>(result.phy_transmissions);
    flood_table.add_row(
        {cfg.scenario.label() + "/" + topo::to_string(policy),
         std::to_string(cfg.scenario.node_count()),
         std::to_string(result.phy_transmissions),
         std::to_string(result.phy_deliveries),
         stats::Table::num(per_frame, 1), std::to_string(result.phy_shards),
         stats::Table::num(wall, 3)});
  }
  bench::emit(flood_table);

  // ---- Rebuild scaling across stripe workers -----------------------
  // The same 1000 PHYs, rebuilt repeatedly through the backend seam the
  // way a dynamic topology would force; the serial culled backend is
  // the 1.0× reference.
  const auto spec = flood_config(topo::MediumPolicy::kCulled).scenario;
  const auto positions = spec.positions();
  sim::Simulation sim(1);
  phy::MediumConfig medium_config = spec.medium_config();
  phy::Medium medium(sim, medium_config);
  std::vector<std::unique_ptr<phy::Phy>> phy_storage;
  std::vector<phy::Phy*> phys;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    phy_storage.push_back(std::make_unique<phy::Phy>(
        sim, medium, phy::PhyConfig{.position = positions[i]},
        static_cast<std::uint32_t>(i)));
    phys.push_back(phy_storage.back().get());
  }

  constexpr int kRounds = 30;
  const auto timed_rebuilds = [&](phy::DeliveryBackend& backend,
                                  std::size_t threads) {
    medium_config.shard_threads = threads;
    backend.rebuild(phys, medium_config);  // warm-up: pool spawn, caches
    const auto started = std::chrono::steady_clock::now();
    for (int round = 0; round < kRounds; ++round) {
      backend.rebuild(phys, medium_config);
    }
    const double wall_ms = wall_since(started) * 1e3;
    std::uint64_t lists = 0;
    for (const phy::Phy* phy : phys) {
      lists += backend.deliveries(*phy).size();
    }
    return std::pair<double, std::uint64_t>{wall_ms, lists};
  };

  stats::Table rebuild_table({"backend", "shards", "lists",
                              "rebuild wall ms", "wall speedup"});
  const auto culled = phy::make_delivery_backend(phy::DeliveryPolicy::kCulled);
  const auto [serial_ms, serial_lists] = timed_rebuilds(*culled, 1);
  rebuild_table.add_row({"culled", "1", std::to_string(serial_lists),
                         stats::Table::num(serial_ms, 1),
                         stats::Table::num(1.0, 2)});
  const auto sharded =
      phy::make_delivery_backend(phy::DeliveryPolicy::kSharded);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    const auto [wall_ms, lists] = timed_rebuilds(*sharded, threads);
    HYDRA_ASSERT_MSG(lists == serial_lists,
                     "sharded rebuild diverged from culled");
    char label[32];
    std::snprintf(label, sizeof label, "sharded-%zu", threads);
    rebuild_table.add_row({label, std::to_string(sharded->shards()),
                           std::to_string(lists),
                           stats::Table::num(wall_ms, 1),
                           stats::Table::num(serial_ms / wall_ms, 2)});
  }
  bench::emit(rebuild_table);

  bench::comment(
      "\nExpected shape: deliveries and deliv/frame identical for culled "
      "and sharded (the parity contract; trace digests are pinned by the "
      "shard_determinism suite), full mesh at N-1 = 999.");
  bench::comment(
      "Rebuild scaling: >=2x wall speedup at 4 stripe workers on a host "
      "with >=4 cores; the \"lists\" column is bit-identical across "
      "backends by construction. On fewer cores the speedup column "
      "degrades toward 1.0x (see the report's threads/host_cpus "
      "metadata).");
  return 0;
}
