// Micro-benchmarks of the hot paths (google-benchmark): event scheduler,
// CRC-32/FCS, wire-format round trips, aggregate assembly, and a full
// small experiment as an end-to-end figure of merit.
#include <benchmark/benchmark.h>

#include "app/experiment.h"
#include "core/aggregator.h"
#include "proto/frames.h"
#include "proto/packet.h"
#include "sim/scheduler.h"
#include "topo/experiment.h"
#include "util/crc32.h"

namespace {

using namespace hydra;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sched.schedule_in(sim::Duration::micros(static_cast<std::int64_t>(
                            (i * 7919) % 100000)),
                        [&sum, i] { sum += i; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(10000);

// The timer-heavy protocol pattern (MAC retries, TCP RTO): arm, cancel
// most before they fire, re-arm into the recycled slots, then drain.
// Exercises the scheduler's generation-stamped slot vector.
void BM_SchedulerCancelChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<sim::EventId> ids(n);
  for (auto _ : state) {
    sim::Scheduler sched;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = sched.schedule_in(sim::Duration::micros(static_cast<
                                     std::int64_t>((i * 7919) % 100000)),
                                 [&sum, i] { sum += i; });
    }
    for (std::size_t i = 0; i < n; i += 2) {
      benchmark::DoNotOptimize(sched.cancel(ids[i]));
    }
    for (std::size_t i = 0; i < n; i += 4) {
      sched.schedule_in(sim::Duration::micros(static_cast<std::int64_t>(
                            (i * 104729) % 100000)),
                        [&sum, i] { sum += i; });
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerCancelChurn)->Arg(1000)->Arg(10000);

// The parallel-window engine against plain serial stepping, on a pure
// scheduler workload (no medium, no MAC): `batch` same-instant events
// per window tick across 8 node affinities, a fixed fat lookahead so
// every tick forms one window. Charts the per-window overhead — event
// collection, group partition, the barrier commit — that the
// conservative mode pays even when a window holds a single event
// (batch = 1), against the gain when windows are dense (batch = 4096).
void BM_SchedulerWindowCommit(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const bool parallel = state.range(1) != 0;
  constexpr std::size_t kEvents = 8192;
  for (auto _ : state) {
    sim::Scheduler sched;
    if (parallel) {
      sched.set_lookahead_provider([] { return sim::Duration::micros(5); });
      sched.set_execution(sim::ExecutionPolicy::kParallelWindows, 4);
    }
    std::uint64_t sum = 0;
    std::size_t scheduled = 0;
    for (std::int64_t tick = 0; scheduled < kEvents; ++tick) {
      for (std::size_t i = 0; i < batch && scheduled < kEvents;
           ++i, ++scheduled) {
        const sim::Scheduler::AffinityScope scope(
            static_cast<std::uint32_t>(i % 8));
        sched.schedule_at(
            sim::TimePoint::at(sim::Duration::micros(tick * 10)),
            [&sum, i] { sum += i; });
      }
    }
    sched.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents));
}
BENCHMARK(BM_SchedulerWindowCommit)
    ->ArgsProduct({{1, 64, 4096}, {0, 1}});

void BM_Crc32(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(160)->Arg(1464)->Arg(5120);

proto::MacSubframe make_subframe() {
  proto::MacSubframe sf;
  sf.receiver = proto::MacAddress(1);
  sf.transmitter = proto::MacAddress(2);
  sf.source = proto::MacAddress(2);
  sf.sequence = 42;
  sf.packet = proto::make_tcp_packet(proto::Ipv4Address::for_node(0),
                                   proto::Ipv4Address::for_node(1), 1, 2, 100,
                                   200, {.ack = true}, 21712, 1357);
  return sf;
}

void BM_SubframeSerialize(benchmark::State& state) {
  const auto sf = make_subframe();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sf.serialize());
  }
}
BENCHMARK(BM_SubframeSerialize);

void BM_SubframeParse(benchmark::State& state) {
  const auto bytes = make_subframe().serialize();
  for (auto _ : state) {
    BufferReader r(bytes);
    benchmark::DoNotOptimize(proto::MacSubframe::parse(r));
  }
}
BENCHMARK(BM_SubframeParse);

void BM_AggregatorBuild(benchmark::State& state) {
  core::Aggregator agg(core::AggregationPolicy::ba());
  for (auto _ : state) {
    state.PauseTiming();
    core::DualQueue q(64);
    for (int i = 0; i < 4; ++i) {
      auto sf = make_subframe();
      q.unicast().push(sf, {});
      auto ack = make_subframe();
      ack.packet = proto::make_tcp_packet(proto::Ipv4Address::for_node(1),
                                        proto::Ipv4Address::for_node(0), 2, 1,
                                        0, 0, {.ack = true}, 21712, 0);
      q.broadcast().push(ack, {});
    }
    state.ResumeTiming();
    while (!q.empty()) {
      benchmark::DoNotOptimize(agg.build(q));
    }
  }
}
BENCHMARK(BM_AggregatorBuild);

void BM_FullExperimentTcp(benchmark::State& state) {
  for (auto _ : state) {
    topo::ExperimentConfig cfg;
    cfg.scenario = topo::ScenarioSpec::two_hop();
    cfg.scenario.node.policy = core::AggregationPolicy::ba();
    cfg.tcp_file_bytes = 50'000;
    benchmark::DoNotOptimize(app::run_experiment(cfg));
  }
}
BENCHMARK(BM_FullExperimentTcp)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
