// Figure 9: 2-hop UDP throughput under broadcast flooding, aggregation
// (UA+BA) vs no aggregation, as a function of the flooding interval.
//
// Paper: the throughput gap between aggregation and no aggregation grows
// as the flooding interval shrinks (flooding gets more aggressive).
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Figure 9", "2-hop UDP under flooding",
                      "Every node floods a 160 B control frame per interval.");

  const double intervals_s[] = {0.1, 0.25, 0.5, 1.0, 3.0, 5.0};
  stats::Table table({"Flood interval (s)", "Agg @0.65", "NA @0.65",
                      "Agg @1.3", "NA @1.3"});
  for (const double interval : intervals_s) {
    std::vector<std::string> row = {stats::Table::num(interval, 1)};
    for (const auto mode_idx : {std::size_t{0}, std::size_t{1}}) {
      for (const auto& policy :
           {core::AggregationPolicy::ba(), core::AggregationPolicy::na()}) {
        auto cfg = bench::udp_config(topo::ScenarioSpec::two_hop(), policy,
                                     mode_idx);
        cfg.flooding = true;
        cfg.flood_interval = sim::Duration::from_seconds(interval);
        row.push_back(stats::Table::num(bench::avg_throughput(cfg), 3));
      }
    }
    table.add_row(std::move(row));
  }
  bench::emit(table);
  bench::comment("\nExpected shape: aggregation's margin over NA grows as the "
              "interval shrinks.");
  return 0;
}
