// Figure 7: throughput vs maximum aggregation size.
//
// Paper: 1-hop UDP with enough queueing that aggregation engages;
// throughput rises with the size cap and then collapses to ~0 once the
// aggregate exceeds the channel-coherence limit (~120 Ksamples: 5 KB at
// 0.65 Mbps, 11 KB at 1.3 Mbps, 15 KB at 1.95 Mbps).
#include "bench_common.h"

#include "phy/timing.h"

using namespace hydra;

int main() {
  bench::print_header(
      "Figure 7", "Throughput vs aggregation size (1-hop UDP)",
      "Expect a rise, then a cliff to ~0 when the aggregate outlives the\n"
      "channel coherence time (~120 Ksamples).");

  const std::vector<std::size_t> modes = {0, 1, 2};  // 0.65 / 1.3 / 1.95
  stats::Table table({"Agg size (KB)", "0.65 Mbps", "1.30 Mbps",
                      "1.95 Mbps", "Ksamples @1.95"});

  for (std::size_t kb = 1; kb <= 20; ++kb) {
    std::vector<std::string> row = {std::to_string(kb)};
    for (const auto mode_idx : modes) {
      auto cfg = bench::udp_config(topo::ScenarioSpec::one_hop(),
                                   core::AggregationPolicy::ua(), mode_idx);
      cfg.scenario.node.policy.max_aggregate_bytes = kb * 1024;
      cfg.udp_packets_per_tick = 16;  // deep queue: aggregation engages
      row.push_back(stats::Table::num(bench::avg_throughput(cfg), 3));
    }
    // Sample count of a full aggregate at the highest rate in the row.
    phy::PortionSpec spec;
    spec.mode = proto::mode_by_index(2);
    spec.subframe_bytes.assign(kb * 1024 / 1140, 1140);
    const auto timing = phy::frame_timing({}, spec);
    row.push_back(std::to_string(phy::samples_for(timing.total) / 1000));
    table.add_row(std::move(row));
  }
  bench::emit(table);
  bench::comment(
      "\nPaper thresholds: 5 KB @0.65, 11 KB @1.3, 15 KB @1.95 "
      "(all ~120 Ksamples).");
  return 0;
}
