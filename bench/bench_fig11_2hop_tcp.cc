// Figure 11: 2-hop TCP throughput vs rate — NA vs UA vs BA, with the
// broadcast portion at the same rate as the unicast portion.
//
// Paper: BA always outperforms UA (max gap ~10%); both dwarf NA.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Figure 11", "2-hop TCP: NA vs UA vs BA (same rate)",
                      "");

  stats::Table table({"Rate (Mbps)", "NA", "UA", "BA", "BA vs UA"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    const double t_na = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::two_hop(), core::AggregationPolicy::na(), mode_idx));
    const double t_ua = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::two_hop(), core::AggregationPolicy::ua(), mode_idx));
    const double t_ba = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::two_hop(), core::AggregationPolicy::ba(), mode_idx));
    table.add_row({bench::rate_label(mode_idx),
                   stats::Table::num(t_na, 3),
                   stats::Table::num(t_ua, 3), stats::Table::num(t_ba, 3),
                   stats::Table::percent((t_ba - t_ua) / t_ua)});
  }
  bench::emit(table);
  bench::comment("\nPaper: BA > UA at every rate, maximum gap ~10%%.");
  return 0;
}
