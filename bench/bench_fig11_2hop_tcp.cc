// Figure 11: 2-hop TCP throughput vs rate — NA vs UA vs BA, with the
// broadcast portion at the same rate as the unicast portion.
//
// Paper: BA always outperforms UA (max gap ~10%); both dwarf NA.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Figure 11", "2-hop TCP: NA vs UA vs BA (same rate)",
                      "");

  stats::Table table({"Rate (Mbps)", "NA", "UA", "BA", "BA vs UA"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    const double t_na = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::two_hop(), core::AggregationPolicy::na(), mode_idx));
    const double t_ua = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::two_hop(), core::AggregationPolicy::ua(), mode_idx));
    const double t_ba = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::two_hop(), core::AggregationPolicy::ba(), mode_idx));
    table.add_row({bench::rate_label(mode_idx),
                   stats::Table::num(t_na, 3),
                   stats::Table::num(t_ua, 3), stats::Table::num(t_ba, 3),
                   stats::Table::percent((t_ba - t_ua) / t_ua)});
  }
  bench::emit(table);
  bench::comment("\nPaper: BA > UA at every rate, maximum gap ~10%%.");

  // Ablation (transport seam): the same 2-hop BA transfers with a 5%
  // deterministic channel loss injected on the relay's forward link
  // (every 20th TCP data frame, counter-based — no RNG). NewReno reads
  // every drop as congestion and halves ssthresh; CERL's RTT-threshold
  // differentiator retransmits channel-classified drops without the
  // multiplicative backoff.
  stats::Table loss_table({"Rate (Mbps)", "NewReno", "CERL", "CERL gain",
                           "chan/run", "cong/run", "drops/run"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    const auto lossy_cfg = [&](transport::CcScheme scheme) {
      auto cfg = bench::tcp_config(topo::ScenarioSpec::two_hop(),
                                   core::AggregationPolicy::ba(), mode_idx);
      cfg.tcp.tuning.cc = scheme;
      cfg.losses.push_back(
          {.node_index = 1, .next_hop_index = -1, .period = 20, .offset = 10});
      return cfg;
    };
    constexpr int kRuns = 3;
    double t_reno = 0.0, t_cerl = 0.0;
    double chan = 0.0, cong = 0.0, drops = 0.0;
    for (int seed = 1; seed <= kRuns; ++seed) {
      auto reno_cfg = lossy_cfg(transport::CcScheme::kNewReno);
      reno_cfg.seed = static_cast<std::uint64_t>(seed);
      t_reno += app::run_experiment(reno_cfg).flows[0].throughput_mbps / kRuns;

      auto cerl_cfg = lossy_cfg(transport::CcScheme::kCerl);
      cerl_cfg.seed = static_cast<std::uint64_t>(seed);
      const auto r = app::run_experiment(cerl_cfg);
      t_cerl += r.flows[0].throughput_mbps / kRuns;
      chan += static_cast<double>(r.tcp_channel_losses) / kRuns;
      cong += static_cast<double>(r.tcp_congestion_losses) / kRuns;
      drops += static_cast<double>(r.transport_injected_drops) / kRuns;
    }
    loss_table.add_row({bench::rate_label(mode_idx),
                        stats::Table::num(t_reno, 3),
                        stats::Table::num(t_cerl, 3),
                        stats::Table::percent((t_cerl - t_reno) / t_reno),
                        stats::Table::num(chan, 1), stats::Table::num(cong, 1),
                        stats::Table::num(drops, 1)});
  }
  bench::emit(loss_table);
  bench::comment("\nAblation shape: CERL >= NewReno under channel loss; the "
              "chan/cong split shows how the differentiator classified the "
              "injected drops.");
  return 0;
}
