// Tables 5, 6, 7: relay-node frame size, size overhead and transmission
// percentage, star topology vs 2-hop linear, for UA and BA.
//
// Paper: UA's frame size is nearly identical on both topologies (same-
// destination-only aggregation gains nothing from the star), while BA's
// grows from 2727B to 3432B because ACKs to different destinations
// aggregate at the center.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Tables 5-7",
                      "Relay detail: 2-hop linear vs star (UA, BA)", "");

  constexpr std::size_t kModeIdx = 0;

  const auto run = [&](const topo::ScenarioSpec& t, core::AggregationPolicy p) {
    return app::run_experiment(bench::tcp_config(t, p, kModeIdx));
  };
  const auto ua2 = run(topo::ScenarioSpec::two_hop(), core::AggregationPolicy::ua());
  const auto ba2 = run(topo::ScenarioSpec::two_hop(), core::AggregationPolicy::ba());
  const auto na2 = run(topo::ScenarioSpec::two_hop(), core::AggregationPolicy::na());
  const auto uas = run(topo::ScenarioSpec::fig6_star(), core::AggregationPolicy::ua());
  const auto bas = run(topo::ScenarioSpec::fig6_star(), core::AggregationPolicy::ba());
  const auto nas = run(topo::ScenarioSpec::fig6_star(), core::AggregationPolicy::na());

  stats::Table t5({"Scheme", "2-hop", "Star"});
  t5.set_title("Table 5: relay frame size");
  t5.add_row({"UA", stats::Table::bytes(ua2.relay_stats().avg_frame_bytes()),
              stats::Table::bytes(uas.relay_stats().avg_frame_bytes())});
  t5.add_row({"BA", stats::Table::bytes(ba2.relay_stats().avg_frame_bytes()),
              stats::Table::bytes(bas.relay_stats().avg_frame_bytes())});
  bench::emit(t5);
  bench::comment("Paper: UA 2662B/2651B;  BA 2727B/3432B.");

  const auto& mode = proto::mode_by_index(kModeIdx);
  stats::Table t6({"Scheme", "2-hop", "Star"});
  t6.set_title("Table 6: relay size overhead");
  t6.add_row(
      {"UA",
       stats::Table::percent(stats::size_overhead(ua2.relay_stats(), mode), 2),
       stats::Table::percent(stats::size_overhead(uas.relay_stats(), mode),
                             2)});
  t6.add_row(
      {"BA",
       stats::Table::percent(stats::size_overhead(ba2.relay_stats(), mode), 2),
       stats::Table::percent(stats::size_overhead(bas.relay_stats(), mode),
                             2)});
  bench::emit(t6);
  bench::comment("Paper: UA 6.83%%/6.83%%;  BA 6.55%%/5.93%%.");

  stats::Table t7({"Scheme", "2-hop", "Star"});
  t7.set_title("Table 7: relay transmissions (% of NA)");
  const auto pct = [](const topo::ExperimentResult& r,
                      const topo::ExperimentResult& na) {
    return stats::Table::percent(
        static_cast<double>(r.relay_stats().data_frames_tx) /
        static_cast<double>(na.relay_stats().data_frames_tx));
  };
  t7.add_row({"UA", pct(ua2, na2), pct(uas, nas)});
  t7.add_row({"BA", pct(ba2, na2), pct(bas, nas)});
  bench::emit(t7);
  bench::comment("Paper: UA 33.7%%/30.7%%;  BA 26.7%%/22.5%%.");
  return 0;
}
