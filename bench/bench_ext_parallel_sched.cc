// Extension: conservative parallel event execution — the scheduler's
// lookahead-window mode against serial stepping. Not a paper figure; it
// charts the two halves of the parallel-scheduler contract:
//
//   1. Parity: a flooded grid must execute exactly the serial event
//      sequence (the deterministic events/windows cells are
//      baseline-gated; the trace-digest half of the contract is pinned
//      by the parallel_sched test suite). The executed-event and
//      transmission counts are asserted equal across every row before
//      the table is emitted.
//   2. Scaling: the same load at 1/2/4 window workers. The wall columns
//      show whatever overlap the medium's minimum-propagation lookahead
//      exposes; windows and parallel-event counts are worker-invariant
//      by construction (window formation is single-threaded).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/assert.h"

using namespace hydra;

namespace {

topo::ExperimentConfig flood_config(std::size_t rows, std::size_t cols,
                                    sim::Duration sim_time) {
  topo::ExperimentConfig cfg;
  cfg.scenario = topo::ScenarioSpec::grid(rows, cols);
  // 10 m spacing, as in the medium-shard bench: the reach radius
  // (~36.5 m) covers a few rings of the lattice.
  cfg.scenario.spacing_m = 10.0;
  // No sessions and no static routes: flooding needs no routing graph,
  // and skipping it keeps the N = 10000 build out of the O(N^2)
  // next-hop matrix.
  cfg.scenario.sessions.clear();
  cfg.flooding = true;
  cfg.flood_interval = sim::Duration::millis(250);
  cfg.flood_payload_bytes = 40;
  cfg.max_sim_time = sim_time;
  return cfg;
}

double wall_since(std::chrono::steady_clock::time_point started) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started)
      .count();
}

void run_size(std::size_t rows, std::size_t cols, sim::Duration sim_time) {
  struct Row {
    std::string label;
    topo::ExperimentResult result;
    double wall = 0.0;
  };
  std::vector<Row> table_rows;
  const auto run_one = [&](const std::string& label,
                           topo::SchedulerPolicy policy, unsigned workers) {
    auto cfg = flood_config(rows, cols, sim_time);
    cfg.scenario.scheduler.policy = policy;
    cfg.scenario.scheduler.workers = workers;
    const auto started = std::chrono::steady_clock::now();
    Row row{label, app::run_experiment(cfg), 0.0};
    row.wall = wall_since(started);
    table_rows.push_back(std::move(row));
  };

  run_one("serial", topo::SchedulerPolicy::kSerial, 1);
  for (const unsigned workers : {1u, 2u, 4u}) {
    char label[32];
    std::snprintf(label, sizeof label, "windows-%u", workers);
    run_one(label, topo::SchedulerPolicy::kParallelWindows, workers);
  }

  const auto& serial = table_rows.front().result;
  HYDRA_ASSERT(serial.sched_windows == 0);
  for (const Row& row : table_rows) {
    // Parity before publication: same events, same traffic, every row.
    HYDRA_ASSERT_MSG(
        row.result.sched_executed_events == serial.sched_executed_events,
        "parallel windows diverged from the serial event sequence");
    HYDRA_ASSERT_MSG(
        row.result.phy_transmissions == serial.phy_transmissions,
        "parallel windows changed the traffic itself");
  }

  char title[64];
  std::snprintf(title, sizeof title, "N = %zu", rows * cols);
  stats::Table table({"scheduler", "nodes", "tx frames", "events", "windows",
                      "parallel ev", "wall s", "wall speedup"});
  const double serial_wall = table_rows.front().wall;
  for (const Row& row : table_rows) {
    table.add_row({std::string(title) + "/" + row.label,
                   std::to_string(rows * cols),
                   std::to_string(row.result.phy_transmissions),
                   std::to_string(row.result.sched_executed_events),
                   std::to_string(row.result.sched_windows),
                   std::to_string(row.result.sched_parallel_events),
                   stats::Table::num(row.wall, 3),
                   stats::Table::num(serial_wall / row.wall, 2)});
  }
  bench::emit(table);
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: parallel scheduler",
      "lookahead windows execute the exact serial event sequence",
      "Flooded grids at N = 1000 and N = 10000: serial stepping vs "
      "conservative parallel windows at 1/2/4 workers. Event, window and "
      "parallel-event counts are deterministic and baseline-gated; wall "
      "columns are host-dependent and excluded from the gate.");
  bench::record_threads(4);

  run_size(25, 40, sim::Duration::seconds(2));
  run_size(100, 100, sim::Duration::millis(500));

  bench::comment(
      "\nExpected shape: events/windows/parallel-ev identical across the "
      "windows-* rows (window formation is single-threaded and "
      "worker-invariant); the serial row pins windows = 0. The wall "
      "speedup tracks how much same-window overlap the minimum-propagation "
      "lookahead exposes — with nanosecond-scale lookahead it hovers near "
      "1.0x and the bench is primarily a parity harness at scale.");
  return 0;
}
