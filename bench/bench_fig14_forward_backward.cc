// Figure 14: forward vs backward aggregation — BA with forward
// aggregation disabled isolates the benefit of combining TCP data with
// opposite-direction ACKs in one transmission.
//
// Paper (3-hop): the gap between full BA and backward-only BA grows with
// the unicast rate; both beat no aggregation.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Figure 14", "BA vs BA without forward aggregation",
                      "3-hop linear topology.");

  stats::Table table({"Rate (Mbps)", "NA", "BA backward-only", "BA full",
                      "full vs backward"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    const double t_na = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::three_hop(), core::AggregationPolicy::na(), mode_idx));
    auto backward_cfg = bench::tcp_config(
        topo::ScenarioSpec::three_hop(), core::AggregationPolicy::ba(), mode_idx);
    backward_cfg.scenario.node.policy.forward_aggregation = false;
    const double t_b = bench::avg_throughput(backward_cfg);
    const double t_f = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::three_hop(), core::AggregationPolicy::ba(), mode_idx));
    table.add_row({bench::rate_label(mode_idx),
                   stats::Table::num(t_na, 3),
                   stats::Table::num(t_b, 3), stats::Table::num(t_f, 3),
                   stats::Table::percent((t_f - t_b) / t_b)});
  }
  bench::emit(table);
  bench::comment("\nExpected shape: the full-vs-backward gap widens as the "
              "rate increases.");
  return 0;
}
