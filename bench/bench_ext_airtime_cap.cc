// Extension bench (paper §6.1 future work: "we leave the possibility of
// changing the aggregation size as a function of rate to future work").
//
// The paper fixes a 5 KB byte cap — safe at every rate, but it wastes
// most of the ~120 Ksample coherence budget at high rates (5 KB at
// 2.6 Mbps is only ~31 Ksamples of airtime). The airtime-capped policy
// sizes aggregates by time-on-air instead, so each rate fills the same
// fraction of the coherence window.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header(
      "Extension: rate-adaptive aggregation size",
      "1-hop saturated UDP: fixed 5 KB cap vs airtime cap",
      "Airtime cap = 48 ms (~96 Ksamples, safely below the 62 ms "
      "coherence window).");

  stats::Table table({"Rate (Mbps)", "5 KB cap", "airtime cap", "gain",
                      "airtime-cap KB"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    auto fixed = bench::udp_config(topo::ScenarioSpec::one_hop(),
                                   core::AggregationPolicy::ua(), mode_idx);
    fixed.udp_packets_per_tick = 64;  // ~5.4 Mbps offered: saturates 2.6

    auto timed = fixed;
    timed.scenario.node.policy.max_aggregate_airtime = sim::Duration::millis(48);
    // Equivalent byte budget at this rate, for the table.
    const double cap_kb =
        48e-3 * proto::mode_by_index(mode_idx).rate.bits_per_second() / 8.0 /
        1024.0;

    const double thr_fixed = bench::avg_throughput(fixed);
    const double thr_timed = bench::avg_throughput(timed);
    table.add_row({bench::rate_label(mode_idx),
                   stats::Table::num(thr_fixed, 3),
                   stats::Table::num(thr_timed, 3),
                   stats::Table::percent((thr_timed - thr_fixed) /
                                         thr_fixed),
                   stats::Table::num(cap_kb, 1)});
  }
  bench::emit(table);
  bench::comment("\nExpected: identical at 0.65 Mbps (both caps bind near the "
              "same size); growing gains at higher rates as the airtime cap "
              "admits far larger aggregates.");
  return 0;
}
