// Extension: scenario scaling — TCP throughput and simulation wall-clock
// versus topology size for the chain, grid and star families. Not a
// paper figure; it charts how far the unified scenario subsystem
// stretches beyond the four paper topologies, and what a hop (or a
// contender) costs.
#include <chrono>

#include "app/sweep.h"
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header(
      "Extension: scenario scaling",
      "TCP vs topology size across scenario families",
      "100 KB transfer per session, BA policy, base rate; wall = host "
      "seconds for the whole simulation.");

  app::SweepGrid grid;
  grid.scenarios = {{"", topo::ScenarioSpec::chain(2)},
                    {"", topo::ScenarioSpec::chain(3)},
                    {"", topo::ScenarioSpec::chain(4)},
                    {"", topo::ScenarioSpec::chain(6)},
                    {"", topo::ScenarioSpec::chain(8)},
                    {"", topo::ScenarioSpec::grid(2, 2)},
                    {"", topo::ScenarioSpec::grid(2, 3)},
                    {"", topo::ScenarioSpec::grid(3, 3)},
                    {"", topo::ScenarioSpec::grid(4, 4)},
                    {"", topo::ScenarioSpec::star(1)},
                    {"", topo::ScenarioSpec::star(2)},
                    {"", topo::ScenarioSpec::star(4)},
                    {"", topo::ScenarioSpec::star(6)}};
  grid.policies = {{"BA", core::AggregationPolicy::ba()}};
  grid.base.traffic = topo::TrafficKind::kTcp;
  grid.base.tcp_file_bytes = 100'000;

  // The first sweep populates the cache; the re-sweep below is the
  // figure-regeneration path, served entirely from it. With
  // HYDRA_SWEEP_CACHE_DIR set (the bench driver's default), results
  // also persist across processes, so a rerun of this bench skips the
  // cold sweep too.
  app::SweepCache cache;
  cache.attach_env_disk_dir();
  const auto started = std::chrono::steady_clock::now();
  const auto outcomes = app::sweep_experiments(grid, 0, &cache);
  const double sweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  stats::Table table({"scenario", "nodes", "hops", "flows", "total Mbps",
                      "worst Mbps", "sim s", "wall s"});
  for (const auto& o : outcomes) {
    const auto& spec = o.point.config.scenario;
    table.add_row({o.point.scenario_label,
                   std::to_string(spec.node_count()),
                   std::to_string(o.result.relay_indices.size() + 1),
                   std::to_string(o.result.flows.size()),
                   stats::Table::num(o.result.total_throughput_mbps(), 3),
                   stats::Table::num(o.result.worst_throughput_mbps(), 3),
                   stats::Table::num(o.result.sim_time.seconds_f(), 1),
                   stats::Table::num(o.wall_seconds, 3)});
  }
  bench::emit(table);
  bench::comment("\nSweep of %zu simulations took %.2f s wall "
              "(thread-parallel; each point is one simulation).",
              outcomes.size(), sweep_wall);

  const auto restarted = std::chrono::steady_clock::now();
  const auto resweep = app::sweep_experiments(grid, 0, &cache);
  const double resweep_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    restarted)
          .count();
  std::size_t hits = 0;
  for (const auto& o : resweep) hits += o.from_cache;
  bench::comment("Re-sweep served %zu/%zu points from the SweepCache in "
              "%.3f s (cold sweep: %.2f s).",
              hits, resweep.size(), resweep_wall, sweep_wall);
  bench::comment("Expected shape: per-flow throughput decays with hop count; "
              "star worst-case decays with sender count.");
  bench::record_sweep_cache(cache.size(), cache.hits(), cache.disk_hits(),
                            cache.disk_stores(), cache.misses());
  return 0;
}
