// Table 2: 2-hop UDP throughput, no aggregation vs unicast aggregation.
//
// Paper: 0.253 vs 0.273 Mbps (+7.9%) at 0.65 Mbps and 0.430 vs
// 0.481 Mbps (+11.9%) at 1.3 Mbps; the gain grows with rate.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Table 2", "2-hop UDP throughput, NA vs UA", "");

  stats::Table table({"Data rate", "No Aggregation", "Unicast Aggregation",
                      "Difference"});
  for (const auto mode_idx : {std::size_t{0}, std::size_t{1}}) {
    const double thr_na = bench::avg_throughput(bench::udp_config(
        topo::ScenarioSpec::two_hop(), core::AggregationPolicy::na(), mode_idx));
    const double thr_ua = bench::avg_throughput(bench::udp_config(
        topo::ScenarioSpec::two_hop(), core::AggregationPolicy::ua(), mode_idx));
    table.add_row({bench::rate_label(mode_idx) + " Mbps",
                   stats::Table::num(thr_na, 3) + " Mbps",
                   stats::Table::num(thr_ua, 3) + " Mbps",
                   stats::Table::percent((thr_ua - thr_na) / thr_na)});
  }
  bench::emit(table);
  bench::comment("\nPaper: 0.253 -> 0.273 (+7.9%%) at 0.65; "
              "0.430 -> 0.481 (+11.9%%) at 1.3.");
  return 0;
}
