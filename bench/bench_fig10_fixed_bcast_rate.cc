// Figure 10: 2-hop TCP with broadcast aggregation where the broadcast
// (TCP ACK) portion uses a FIXED rate while the unicast rate sweeps.
//
// Paper: BA(0.65) only helps at low unicast rates and falls off as the
// slow broadcast ACKs dominate airtime; BA(1.3) wins up to 1.3 Mbps;
// BA(2.6) beats UA across the whole range.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Figure 10",
                      "TCP ACK aggregation with fixed broadcast rate",
                      "Parenthesised value = fixed broadcast-portion rate.");

  stats::Table table({"Unicast rate", "BA(0.65)", "BA(1.3)", "BA(2.6)",
                      "UA"});
  const std::size_t fixed_modes[] = {0, 1, 3};  // 0.65, 1.3, 2.6
  for (const auto mode_idx : bench::kPaperModeIndices) {
    std::vector<std::string> row = {bench::rate_label(mode_idx)};
    for (const auto fixed : fixed_modes) {
      auto cfg = bench::tcp_config(topo::ScenarioSpec::two_hop(),
                                   core::AggregationPolicy::ba(), mode_idx);
      cfg.scenario.node.broadcast_mode = proto::mode_by_index(fixed);
      row.push_back(stats::Table::num(bench::avg_throughput(cfg), 3));
    }
    row.push_back(stats::Table::num(
        bench::avg_throughput(bench::tcp_config(
            topo::ScenarioSpec::two_hop(), core::AggregationPolicy::ua(),
            mode_idx)),
        3));
    table.add_row(std::move(row));
  }
  bench::emit(table);
  bench::comment("\nExpected shape: BA(0.65) falls behind UA at high unicast "
              "rates; BA(2.6) always ahead.");
  return 0;
}
