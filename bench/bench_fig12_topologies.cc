// Figure 12: TCP over more complex topologies — 3-hop linear and star
// (two sessions through one relay; worst-case session reported).
//
// Paper: BA's margin over UA grows with hop count (12.2% at 3 hops vs
// 10% at 2) and under congestion (11% on the star).
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header("Figure 12", "TCP over 3-hop linear and star",
                      "Star reports the slowest of the two sessions.");

  stats::Table table({"Rate (Mbps)", "3hop NA", "3hop UA", "3hop BA",
                      "3hop BA/UA", "star UA", "star BA", "star BA/UA"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    std::vector<std::string> row = {bench::rate_label(mode_idx)};

    const double na3 = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::three_hop(), core::AggregationPolicy::na(), mode_idx));
    const double ua3 = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::three_hop(), core::AggregationPolicy::ua(), mode_idx));
    const double ba3 = bench::avg_throughput(bench::tcp_config(
        topo::ScenarioSpec::three_hop(), core::AggregationPolicy::ba(), mode_idx));
    row.push_back(stats::Table::num(na3, 3));
    row.push_back(stats::Table::num(ua3, 3));
    row.push_back(stats::Table::num(ba3, 3));
    row.push_back(stats::Table::percent((ba3 - ua3) / ua3));

    const double ua_s = bench::avg_throughput(
        bench::tcp_config(topo::ScenarioSpec::fig6_star(),
                          core::AggregationPolicy::ua(), mode_idx),
        /*worst_case=*/true);
    const double ba_s = bench::avg_throughput(
        bench::tcp_config(topo::ScenarioSpec::fig6_star(),
                          core::AggregationPolicy::ba(), mode_idx),
        /*worst_case=*/true);
    row.push_back(stats::Table::num(ua_s, 3));
    row.push_back(stats::Table::num(ba_s, 3));
    row.push_back(stats::Table::percent((ba_s - ua_s) / ua_s));
    table.add_row(std::move(row));
  }
  bench::emit(table);
  bench::comment("\nPaper: max BA-over-UA gap 12.2%% (3-hop), 11%% (star).");
  return 0;
}
