// Extension bench: bi-directional TCP.
//
// The paper's flows are one-way; its §7 future work plans richer traffic
// mixes. With file transfers running in BOTH directions, every node
// carries data one way and ACKs the other — the exact situation
// broadcast aggregation was designed for, at both endpoints and relays.
#include "bench_common.h"

using namespace hydra;

int main() {
  bench::print_header(
      "Extension: bi-directional TCP",
      "2-hop chain, simultaneous 0.2 MB transfers both ways",
      "Cells are the two flows' combined throughput.");

  stats::Table table({"Rate (Mbps)", "NA", "UA", "BA", "BA vs UA"});
  for (const auto mode_idx : bench::kPaperModeIndices) {
    std::vector<std::string> row = {bench::rate_label(mode_idx)};
    double thr[3];
    int i = 0;
    for (const auto& policy :
         {core::AggregationPolicy::na(), core::AggregationPolicy::ua(),
          core::AggregationPolicy::ba()}) {
      auto cfg = bench::tcp_config(topo::ScenarioSpec::two_hop(), policy,
                                   mode_idx);
      cfg.traffic = topo::TrafficKind::kTcpBidirectional;
      thr[i] = bench::avg_metric(cfg, [](const topo::ExperimentResult& r) {
        return r.total_throughput_mbps();
      });
      row.push_back(stats::Table::num(thr[i], 3));
      ++i;
    }
    row.push_back(stats::Table::percent((thr[2] - thr[1]) / thr[1]));
    table.add_row(std::move(row));
  }
  bench::emit(table);
  bench::comment("\nExpected: BA's margin over UA exceeds the one-way case "
              "(Fig. 11) because ACK-with-data aggregation opportunities "
              "now exist at every node.");
  return 0;
}
